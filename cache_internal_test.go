package idm

import (
	"testing"
	"time"
)

// TestQueryCacheWholesaleClear exercises the eviction path: when the
// cache reaches capacity, put clears it wholesale and records every
// dropped entry as an eviction.
func TestQueryCacheWholesaleClear(t *testing.T) {
	c := newQueryCache(4)
	res := &Result{}
	for _, q := range []string{"a", "b", "c", "d"} {
		c.put(q, 1, res, 0)
	}
	st := c.stats()
	if st.Size != 4 || st.Evictions != 0 {
		t.Fatalf("before clear: size=%d evictions=%d", st.Size, st.Evictions)
	}
	// The fifth insert finds the cache full, clears all four entries,
	// then stores itself.
	c.put("e", 1, res, 0)
	st = c.stats()
	if st.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", st.Evictions)
	}
	if st.Size != 1 {
		t.Errorf("size after clear = %d, want 1", st.Size)
	}
	if _, ok := c.get("a", 1); ok {
		t.Error("entry survived wholesale clear")
	}
	if r, ok := c.get("e", 1); !ok || r != res {
		t.Error("triggering entry not cached")
	}
	// A second round of fills clears again; evictions accumulate.
	for _, q := range []string{"f", "g", "h"} {
		c.put(q, 1, res, 0)
	}
	c.put("i", 1, res, 0)
	if st = c.stats(); st.Evictions != 8 {
		t.Errorf("evictions after second clear = %d, want 8", st.Evictions)
	}
}

// TestQueryCacheLatencyAndAge drives the latency and entry-age
// accounting with a stepping fake clock, so the reported durations are
// exact rather than wall-clock-dependent.
func TestQueryCacheLatencyAndAge(t *testing.T) {
	clock := time.Unix(0, 0)
	c := newQueryCache(8)
	c.now = func() time.Time { return clock }
	res := &Result{}

	// Two fills with known evaluation costs: mean miss latency 15ms.
	c.put("a", 1, res, 10*time.Millisecond)
	clock = clock.Add(time.Second)
	c.put("b", 1, res, 20*time.Millisecond)
	clock = clock.Add(time.Second)

	// Hits observe the time get itself takes; with a frozen clock that
	// is exactly zero, so step the clock inside get via a wrapper.
	step := 100 * time.Microsecond
	c.now = func() time.Time {
		now := clock
		clock = clock.Add(step)
		return now
	}
	if _, ok := c.get("a", 1); !ok {
		t.Fatal("expected hit")
	}
	c.now = func() time.Time { return clock }

	st := c.stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("hits/misses = %d/%d, want 1/0", st.Hits, st.Misses)
	}
	if st.HitLatency != step {
		t.Errorf("HitLatency = %v, want %v", st.HitLatency, step)
	}
	if st.MissLatency != 15*time.Millisecond {
		t.Errorf("MissLatency = %v, want 15ms", st.MissLatency)
	}
	// The hit stepped the clock twice (start + hit record), so entry
	// "a" is 2s+2·step old and entry "b" 1s+2·step: oldest is a's age,
	// average the midpoint.
	wantOldest := 2*time.Second + 2*step
	if st.OldestEntryAge != wantOldest {
		t.Errorf("OldestEntryAge = %v, want %v", st.OldestEntryAge, wantOldest)
	}
	wantAvg := (wantOldest + time.Second + 2*step) / 2
	if st.AvgEntryAge != wantAvg {
		t.Errorf("AvgEntryAge = %v, want %v", st.AvgEntryAge, wantAvg)
	}
}

// TestQueryCacheMissLatencyUnaffectedByHits checks that hit timing never
// leaks into the miss-cost average.
func TestQueryCacheMissLatencyUnaffectedByHits(t *testing.T) {
	c := newQueryCache(8)
	res := &Result{}
	c.put("q", 1, res, 40*time.Millisecond)
	for i := 0; i < 5; i++ {
		if _, ok := c.get("q", 1); !ok {
			t.Fatal("expected hit")
		}
	}
	st := c.stats()
	if st.MissLatency != 40*time.Millisecond {
		t.Errorf("MissLatency = %v, want 40ms", st.MissLatency)
	}
	if st.HitLatency > 10*time.Millisecond {
		t.Errorf("HitLatency = %v, implausibly slow for an in-memory map hit", st.HitLatency)
	}
}
