package idm

import "testing"

// TestQueryCacheWholesaleClear exercises the eviction path: when the
// cache reaches capacity, put clears it wholesale and records every
// dropped entry as an eviction.
func TestQueryCacheWholesaleClear(t *testing.T) {
	c := newQueryCache(4)
	res := &Result{}
	for _, q := range []string{"a", "b", "c", "d"} {
		c.put(q, 1, res)
	}
	st := c.stats()
	if st.Size != 4 || st.Evictions != 0 {
		t.Fatalf("before clear: size=%d evictions=%d", st.Size, st.Evictions)
	}
	// The fifth insert finds the cache full, clears all four entries,
	// then stores itself.
	c.put("e", 1, res)
	st = c.stats()
	if st.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", st.Evictions)
	}
	if st.Size != 1 {
		t.Errorf("size after clear = %d, want 1", st.Size)
	}
	if _, ok := c.get("a", 1); ok {
		t.Error("entry survived wholesale clear")
	}
	if r, ok := c.get("e", 1); !ok || r != res {
		t.Error("triggering entry not cached")
	}
	// A second round of fills clears again; evictions accumulate.
	for _, q := range []string{"f", "g", "h"} {
		c.put(q, 1, res)
	}
	c.put("i", 1, res)
	if st = c.stats(); st.Evictions != 8 {
		t.Errorf("evictions after second clear = %d, want 8", st.Evictions)
	}
}
