package idm_test

import (
	"fmt"
	"strings"
	"testing"

	idm "repro"
	"repro/internal/iql"
)

// rowKey renders a result's rows into one canonical comparable string.
func rowKey(res *idm.Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for _, it := range row {
			fmt.Fprintf(&b, "(%d,%s)", it.OID, it.Path)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestReplicaDifferential is the grammar-driven differential suite: 1000
// generated iQL queries (every production reachable — both axes,
// wildcards, predicates, has(), unions, joins) are evaluated on the
// leader and on three caught-up replicas, one per planner lane (serial
// rule-based, forced-parallel rule-based, adaptive cost-based). Every
// lane must return exactly the leader's rows: replication equivalence
// must hold regardless of how the follower plans its queries. The suite
// runs against both storage backends — shipping reads the leader's tail
// through the same Engine interface either way — with a reduced
// generation count on the compact lane (the record stream is identical;
// only the tail-serving path differs).
func TestReplicaDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-generation differential suite")
	}
	for _, c := range []struct {
		backend     idm.StorageBackend
		generations int
	}{
		{idm.BackendWAL, 1000},
		{idm.BackendCompact, 200},
	} {
		t.Run(c.backend.String(), func(t *testing.T) {
			replicaDifferential(t, c.backend, c.generations)
		})
	}
}

func replicaDifferential(t *testing.T, backend idm.StorageBackend, generations int) {
	leaderSys, _ := durableLeaderB(t, backend)
	leader := leaderSys.ReplicationLeader()

	lanes := []struct {
		name string
		cfg  idm.Config
	}{
		{"serial", idm.Config{Parallelism: 1, RulePlanner: true, Now: fixedNow}},
		{"parallel", idm.Config{Parallelism: 8, RulePlanner: true, Now: fixedNow}},
		{"adaptive", idm.Config{Parallelism: 8, Now: fixedNow}},
	}
	type lane struct {
		name string
		rep  *idm.Replica
	}
	var reps []lane
	for _, l := range lanes {
		rep, err := idm.OpenReplica(t.TempDir(), leader, l.cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Close()
		if err := rep.CatchUp(); err != nil {
			t.Fatal(err)
		}
		if rep.StateDigest() != leaderSys.StateDigest() {
			t.Fatalf("lane %s replica not caught up", l.name)
		}
		reps = append(reps, lane{l.name, rep})
	}

	g := iql.NewGen(42, iql.DefaultVocab())
	errQueries := 0
	for i := 0; i < generations; i++ {
		q := g.Query()
		want, wantErr := leaderSys.Query(q)
		if wantErr != nil {
			errQueries++
		}
		for _, l := range reps {
			got, gotErr := l.rep.Query(q)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("gen %d %q: leader err %v, %s replica err %v", i, q, wantErr, l.name, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if got.Stale {
				t.Fatalf("gen %d %q: caught-up %s replica answered stale", i, q, l.name)
			}
			if gk, wk := rowKey(got), rowKey(want); gk != wk {
				t.Fatalf("gen %d %q: %s replica rows diverge\nleader:\n%s\nreplica:\n%s",
					i, q, l.name, wk, gk)
			}
		}
	}
	if errQueries == generations {
		t.Fatal("every generated query errored; the generator is broken")
	}
	t.Logf("%d generations × %d lanes, %d error-parity queries", generations, len(reps), errQueries)
}
