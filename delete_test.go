package idm_test

import (
	"strings"
	"testing"

	idm "repro"
)

func deleteSystem(t *testing.T) (*idm.System, *idm.FS, *idm.MailStore) {
	t.Helper()
	fs := idm.NewFileSystem()
	fs.MkdirAll("/docs")
	fs.WriteFile("/docs/keep.txt", []byte("keeper file"))
	fs.WriteFile("/docs/junk1.tmp", []byte("temporary junk alpha"))
	fs.WriteFile("/docs/junk2.tmp", []byte("temporary junk beta"))
	store := idm.NewMailStore()
	store.Append(&idm.MailMessage{Folder: "INBOX", Subject: "spam offer", Body: "buy spamword now"})
	store.Append(&idm.MailMessage{Folder: "INBOX", Subject: "keep me", Body: "important"})

	sys := idm.Open(idm.Config{Now: fixedNow})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMail("email", store); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys, fs, store
}

func TestDeleteFilesWriteThrough(t *testing.T) {
	sys, fs, _ := deleteSystem(t)
	n, err := sys.Delete(`delete //[name = "*.tmp"]`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("deleted = %d", n)
	}
	// Write-through: the files are gone from the filesystem itself.
	if fs.Exists("/docs/junk1.tmp") || fs.Exists("/docs/junk2.tmp") {
		t.Error("files survive in the source")
	}
	if !fs.Exists("/docs/keep.txt") {
		t.Error("unrelated file deleted")
	}
	// The indexes reflect the deletion after the automatic resync.
	res, _ := sys.Query(`"temporary junk"`)
	if res.Count() != 0 {
		t.Errorf("deleted content still indexed: %d", res.Count())
	}
	// The change journal recorded the removals.
	removed := 0
	for _, c := range sys.Changes(0) {
		if c.Kind == idm.ChangeRemoved {
			removed++
		}
	}
	if removed != 2 {
		t.Errorf("journal removals = %d", removed)
	}
}

func TestDeleteEmailMessage(t *testing.T) {
	sys, _, store := deleteSystem(t)
	n, err := sys.Delete(`delete //[class="emailmessage" and "spamword"]`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("deleted = %d", n)
	}
	if got := store.PollSince(0); len(got) != 1 || got[0].Subject != "keep me" {
		t.Errorf("store after delete: %v", got)
	}
}

func TestDeleteDerivedViewRefused(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/p.tex", []byte("\\section{Victim}\ntext"))
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()
	n, err := sys.Delete(`delete //Victim`)
	if n != 0 {
		t.Errorf("deleted %d derived views", n)
	}
	if err == nil || !strings.Contains(err.Error(), "derived view") {
		t.Errorf("err = %v", err)
	}
	if !fs.Exists("/d/p.tex") {
		t.Error("base file was deleted")
	}
}

func TestDeleteReadOnlySourceRefused(t *testing.T) {
	db := idm.NewRelDB("d")
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddRelational("reldb", db)
	sys.Index()
	// The reldb root view itself is a base item of a read-only source.
	n, err := sys.Delete(`delete //d[class="reldb"]`)
	if n != 0 || err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("n=%d err=%v", n, err)
	}
}

func TestDeleteRequiresStatement(t *testing.T) {
	sys, _, _ := deleteSystem(t)
	if _, err := sys.Delete(`//docs`); err == nil {
		t.Error("plain query accepted by Delete")
	}
	// And conversely, the read path refuses delete statements.
	if _, err := sys.Query(`delete //docs`); err == nil {
		t.Error("delete statement accepted by Query")
	}
}

func TestDeleteNoMatches(t *testing.T) {
	sys, _, _ := deleteSystem(t)
	n, err := sys.Delete(`delete //[name = "nothing-matches-this"]`)
	if err != nil || n != 0 {
		t.Errorf("n=%d err=%v", n, err)
	}
}
