package idm_test

import (
	"fmt"

	idm "repro"
)

// ExampleOpen builds the Figure 1 dataspace of the paper and answers its
// introduction's Query 1 — a single query bridging the folder hierarchy
// outside files and the LaTeX structure inside them.
func ExampleOpen() {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/Projects/PIM")
	fs.WriteFile("/Projects/PIM/vldb2006.tex",
		[]byte("\\section{Introduction}\nDataspaces, after Mike Franklin."))
	fs.Link("/Projects/PIM/All Projects", "/Projects") // cycles are fine

	sys := idm.Open(idm.Config{})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()

	res, _ := sys.Query(`//PIM//Introduction[class="latex_section" and "Mike Franklin"]`)
	for _, item := range res.Items {
		fmt.Println(item.Path)
	}
	// Output:
	// /filesystem/Projects/PIM/vldb2006.tex/document/Introduction
}

// ExampleSystem_Query shows keyword search and attribute predicates over
// the same dataspace.
func ExampleSystem_Query() {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/notes")
	fs.WriteFile("/notes/a.txt", []byte("database tuning is an art"))
	fs.WriteFile("/notes/b.txt", []byte("gardening is also an art"))

	sys := idm.Open(idm.Config{})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()

	res, _ := sys.Query(`"database tuning"`)
	fmt.Println("phrase:", res.Count())
	res, _ = sys.Query(`[size > 20 and name = "*.txt"]`)
	fmt.Println("predicates:", res.Count())
	// Output:
	// phrase: 1
	// predicates: 2
}

// ExampleSystem_Delete executes a write-through iQL delete statement.
func ExampleSystem_Delete() {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/keep.txt", []byte("keep"))
	fs.WriteFile("/d/junk.tmp", []byte("junk"))

	sys := idm.Open(idm.Config{})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()

	n, _ := sys.Delete(`delete //[name = "*.tmp"]`)
	fmt.Println("deleted:", n)
	fmt.Println("still on disk:", fs.Exists("/d/junk.tmp"))
	// Output:
	// deleted: 1
	// still on disk: false
}

// ExampleSystem_Subscribe registers a continuous query: matches are
// pushed as the Synchronization Manager indexes them.
func ExampleSystem_Subscribe() {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/inbox")
	fs.WriteFile("/inbox/m1.txt", []byte("urgent: server down"))
	fs.WriteFile("/inbox/m2.txt", []byte("lunch plans"))

	sys := idm.Open(idm.Config{})
	sys.AddFileSystem("filesystem", fs)
	sub, _ := sys.Subscribe(`"urgent"`)
	defer sub.Stop()

	sys.Index() // delivery happens during indexing, synchronously
	item := <-sub.C
	fmt.Println("matched:", item.Name)
	// Output:
	// matched: m1.txt
}

// ExampleFederation_Query fans one query out to two PDSMS peers.
func ExampleFederation_Query() {
	peer := func(file, text string) *idm.System {
		fs := idm.NewFileSystem()
		fs.MkdirAll("/d")
		fs.WriteFile("/d/"+file, []byte(text))
		sys := idm.Open(idm.Config{})
		sys.AddFileSystem("filesystem", fs)
		sys.Index()
		return sys
	}
	fed := idm.NewFederation()
	fed.AddPeer("laptop", peer("notes.txt", "shared dataspace"))
	fed.AddPeer("desktop", peer("work.txt", "shared dataspace"))

	res, _ := fed.Query(`"shared dataspace"`)
	for _, row := range res.Rows {
		fmt.Println(row.Peer, row.Row[0].Name)
	}
	// Output:
	// desktop work.txt
	// laptop notes.txt
}

// ExampleExplain normalizes an iQL query without evaluating it.
func ExampleExplain() {
	out, _ := idm.Explain(`join( //a as A , //b as B , A.name = B.tuple.label )`)
	fmt.Println(out)
	// Output:
	// join( //a as A, //b as B, A.name = B.tuple.label )
}
