package idm_test

import (
	"testing"

	idm "repro"
)

// TestScaleProportionality indexes the synthetic dataset at two scales
// and checks that the Table 2 shape is preserved while counts grow
// roughly linearly. Skipped under -short.
func TestScaleProportionality(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep skipped in -short mode")
	}
	breakdown := func(scale float64) (fs, email idm.SourceBreakdown) {
		d := idm.GenerateDataset(idm.DatasetConfig{Scale: scale, Seed: 42})
		sys, err := idm.OpenDataset(d, idm.Config{Now: fixedNow})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Index(); err != nil {
			t.Fatal(err)
		}
		return sys.Breakdown("filesystem"), sys.Breakdown("email")
	}
	smallFS, smallEmail := breakdown(0.04)
	bigFS, bigEmail := breakdown(0.16)

	// Growth: 4x scale should give roughly 2.5x-6x the views (the
	// always-planted items damp small scales).
	fsRatio := float64(bigFS.Total) / float64(smallFS.Total)
	if fsRatio < 2 || fsRatio > 8 {
		t.Errorf("fs growth ratio = %.2f (small %d, big %d)", fsRatio, smallFS.Total, bigFS.Total)
	}
	emailRatio := float64(bigEmail.Total) / float64(smallEmail.Total)
	if emailRatio < 2 || emailRatio > 8 {
		t.Errorf("email growth ratio = %.2f", emailRatio)
	}
	// Shape at both scales: filesystem derived > base; email derived < base.
	for _, b := range []idm.SourceBreakdown{smallFS, bigFS} {
		if b.DerivedXML+b.DerivedLatex <= b.Base {
			t.Errorf("fs derived %d <= base %d at %s", b.DerivedXML+b.DerivedLatex, b.Base, b.Source)
		}
	}
	for _, b := range []idm.SourceBreakdown{smallEmail, bigEmail} {
		if b.DerivedXML+b.DerivedLatex >= b.Base {
			t.Errorf("email derived %d >= base %d", b.DerivedXML+b.DerivedLatex, b.Base)
		}
	}
	// Paper-shape ratio: XML-derived views outnumber LaTeX-derived.
	if bigFS.DerivedXML <= bigFS.DerivedLatex {
		t.Errorf("xml %d <= latex %d", bigFS.DerivedXML, bigFS.DerivedLatex)
	}
}
