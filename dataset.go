package idm

import (
	"repro/internal/dataset"
)

// DatasetConfig controls synthetic personal dataset generation (the
// substitute for the real personal dataset of §7.1 of the paper; see
// DESIGN.md for the substitution rationale).
type DatasetConfig = dataset.Config

// DatasetInfo reports what a generator run produced.
type DatasetInfo = dataset.Info

// Dataset is a generated personal dataspace: filesystem, email store,
// RSS server and relational database.
type Dataset = dataset.Dataset

// DefaultDatasetConfig is a CI-friendly scale (5% of the paper shape).
func DefaultDatasetConfig() DatasetConfig { return dataset.DefaultConfig() }

// PaperDatasetConfig reproduces the paper's dataset shape at full scale.
func PaperDatasetConfig() DatasetConfig { return dataset.PaperConfig() }

// GenerateDataset builds a deterministic synthetic personal dataspace
// shaped like the paper's evaluation dataset, with the Table 4 query
// targets planted.
func GenerateDataset(cfg DatasetConfig) *Dataset { return dataset.Generate(cfg) }

// OpenDataset opens a System over every source of a generated dataset,
// registered under the paper's two primary source names ("filesystem",
// "email") plus "rss" and "reldb".
func OpenDataset(d *Dataset, cfg Config) (*System, error) {
	sys := Open(cfg)
	if err := sys.AddDataset(d); err != nil {
		return nil, err
	}
	return sys, nil
}

// AddDataset registers every source of a generated dataset — what
// OpenDataset does, for systems opened another way (e.g. OpenDurable).
func (s *System) AddDataset(d *Dataset) error {
	if err := s.AddFileSystem("filesystem", d.FS); err != nil {
		return err
	}
	if err := s.AddMail("email", d.Mail); err != nil {
		return err
	}
	if err := s.AddRSS("rss", d.RSS, 0); err != nil {
		return err
	}
	return s.AddRelational("reldb", d.Rel)
}
