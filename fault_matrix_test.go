package idm_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	idm "repro"
	"repro/internal/fault"
	"repro/internal/iql"
	"repro/internal/rss"
	"repro/internal/sources"
)

// faultFS builds a filesystem-backed system with a fault injector and an
// optional resilience policy wired in.
func faultFS(t *testing.T, cfg idm.Config, preIndex ...idm.FaultRule) (*idm.System, *idm.FaultInjector) {
	t.Helper()
	inj := idm.NewFaultInjector(1)
	for _, r := range preIndex {
		inj.Add(r)
	}
	cfg.Now = fixedNow
	cfg.Faults = inj
	fs := idm.NewFileSystem()
	fs.MkdirAll("/docs")
	fs.WriteFile("/docs/paper.tex", []byte(`\section{Introduction} dataspace vision text`))
	fs.WriteFile("/docs/notes.txt", []byte("resilient keyword content"))
	sys := idm.Open(cfg)
	if err := sys.AddFileSystem("fs", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys, inj
}

// TestFaultMatrix drives every fault kind through every built-in plugin
// family and checks the system's contract for each: root errors degrade
// the source but never corrupt the replica; read and convert faults are
// contained to the affected view; latency faults only slow the sync.
func TestFaultMatrix(t *testing.T) {
	t.Run("fs", func(t *testing.T) {
		cases := []struct {
			name string
			rule idm.FaultRule
			// wantSyncErr: the re-sync must fail and the source degrade.
			wantSyncErr bool
			// preIndex injects the rule before the first Index instead of
			// before a re-sync (read faults only matter while content is
			// first indexed; an unchanged view is not re-read).
			preIndex bool
			// query → wantCount after the faulty sync round.
			query     string
			wantCount int
		}{
			{name: "error@root", rule: idm.FaultRule{Point: "fs/root", Kind: idm.FaultError, Times: 1},
				wantSyncErr: true, query: `"resilient keyword"`, wantCount: 1},
			{name: "latency@root", rule: idm.FaultRule{Point: "fs/root", Kind: idm.FaultLatency, Latency: time.Millisecond, Times: 1},
				query: `"resilient keyword"`, wantCount: 1},
			// A partial read drops the file's content from the index but
			// must not fail the sync or touch other views.
			{name: "partial@read", rule: idm.FaultRule{Point: "fs/read", Kind: idm.FaultPartialRead, Fraction: 0.3},
				preIndex: true, query: `"resilient keyword"`, wantCount: 0},
			// Corrupted converter input must not crash the converter or
			// the sync; the structural views may be lost, the base file
			// stays indexed.
			{name: "corrupt@convert", rule: idm.FaultRule{Point: "fs/convert", Kind: idm.FaultCorrupt, Fraction: 0.4},
				query: `//paper.tex`, wantCount: 1},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				var sys *idm.System
				var inj *idm.FaultInjector
				var err error
				if tc.preIndex {
					sys, inj = faultFS(t, idm.Config{}, tc.rule)
				} else {
					sys, inj = faultFS(t, idm.Config{})
					inj.Add(tc.rule)
					_, err = sys.Manager().SyncSource("fs")
				}
				if tc.wantSyncErr {
					if err == nil {
						t.Fatal("faulty sync succeeded")
					}
					if !idm.IsFaultInjected(err) {
						t.Fatalf("error lost the injected sentinel: %v", err)
					}
					if got := sys.DegradedSources(); len(got) != 1 || got[0] != "fs" {
						t.Fatalf("DegradedSources = %v", got)
					}
				} else if err != nil {
					t.Fatalf("sync: %v", err)
				}
				res, err := sys.Query(tc.query)
				if err != nil {
					t.Fatalf("query after fault: %v", err)
				}
				if res.Count() != tc.wantCount {
					t.Fatalf("%q = %d rows, want %d", tc.query, res.Count(), tc.wantCount)
				}
				if inj.FiredTotal() == 0 {
					t.Fatal("rule never fired")
				}
			})
		}
	})

	t.Run("mail", func(t *testing.T) {
		for _, point := range []string{"mail/root", "mail/fetch"} {
			t.Run("error@"+point, func(t *testing.T) {
				inj := idm.NewFaultInjector(1)
				store := idm.NewMailStore()
				store.Append(&idm.MailMessage{Folder: "INBOX", Subject: "hello", Body: "mail body words"})
				sys := idm.Open(idm.Config{Now: fixedNow, Faults: inj})
				if err := sys.AddMail("mail", store); err != nil {
					t.Fatal(err)
				}
				inj.Add(idm.FaultRule{Point: point, Kind: idm.FaultError, Times: 1})
				_, err := sys.Index()
				if point == "mail/root" && err == nil {
					t.Fatal("root fault not surfaced")
				}
				// Recovery: the one-shot rule is spent; message views are
				// rebuilt lazily on the next sync.
				if _, err := sys.Manager().SyncSource("mail"); err != nil {
					t.Fatalf("recovery sync: %v", err)
				}
			})
		}
	})

	t.Run("rel", func(t *testing.T) {
		inj := idm.NewFaultInjector(1)
		db := idm.NewRelDB("persdb")
		sys := idm.Open(idm.Config{Now: fixedNow, Faults: inj})
		if err := sys.AddRelational("rel", db); err != nil {
			t.Fatal(err)
		}
		inj.Add(idm.FaultRule{Point: "rel/root", Kind: idm.FaultError, Times: 1})
		if _, err := sys.Index(); err == nil {
			t.Fatal("root fault not surfaced")
		}
		if _, err := sys.Manager().SyncSource("rel"); err != nil {
			t.Fatalf("recovery sync: %v", err)
		}
	})

	t.Run("rss", func(t *testing.T) {
		inj := idm.NewFaultInjector(1)
		srv := idm.NewRSSServer()
		srv.Publish("news", rss.Item{Title: "headline", Description: "feed words"})
		sys := idm.Open(idm.Config{Now: fixedNow, Faults: inj})
		if err := sys.AddRSS("rss", srv, 0); err != nil {
			t.Fatal(err)
		}
		inj.Add(idm.FaultRule{Point: "rss/root", Kind: idm.FaultError, Times: 1})
		if _, err := sys.Index(); err == nil {
			t.Fatal("root fault not surfaced")
		}
		if _, err := sys.Manager().SyncSource("rss"); err != nil {
			t.Fatalf("recovery sync: %v", err)
		}
	})
}

// TestSourceDownServesStaleResults is the issue's acceptance scenario:
// with a source forced down, a keyword query still returns results —
// flagged stale — and the retries and breaker trip show up in the
// metrics registry.
func TestSourceDownServesStaleResults(t *testing.T) {
	sys, inj := faultFS(t, idm.Config{
		Resilience: &idm.ResiliencePolicy{
			MaxRetries:      2,
			RetryBase:       time.Microsecond,
			BreakerFailures: 1,
			BreakerCooldown: time.Hour,
			Sleep:           func(time.Duration) {},
		},
	})
	// Force the source down for every future root call.
	inj.Add(idm.FaultRule{Point: "fs/root", Kind: idm.FaultError})
	if _, err := sys.Manager().SyncSource("fs"); err == nil {
		t.Fatal("sync of a downed source succeeded")
	}

	res, err := sys.Query(`"resilient keyword"`)
	if err != nil {
		t.Fatalf("degraded query errored: %v", err)
	}
	if res.Count() != 1 {
		t.Fatalf("stale rows = %d, want 1", res.Count())
	}
	if !res.Stale || len(res.StaleSources) != 1 || res.StaleSources[0] != "fs" {
		t.Fatalf("Stale = %v, StaleSources = %v", res.Stale, res.StaleSources)
	}
	if !strings.Contains(res.Plan, "degraded sources") {
		t.Errorf("plan does not note the degradation: %q", res.Plan)
	}

	snap := sys.Metrics().Snapshot()
	if snap.Counters["source_fs_retries_total"] != 2 {
		t.Errorf("retries_total = %d, want 2", snap.Counters["source_fs_retries_total"])
	}
	if snap.Counters["source_fs_breaker_opens_total"] == 0 {
		t.Error("breaker never opened")
	}
	if snap.Gauges["source_fs_breaker_state"] != int64(sources.BreakerOpen) {
		t.Errorf("breaker_state gauge = %d", snap.Gauges["source_fs_breaker_state"])
	}
	if snap.Counters["idm_stale_queries_total"] == 0 {
		t.Error("idm_stale_queries_total not incremented")
	}
	if snap.Counters["rvm_sync_errors_total"] == 0 {
		t.Error("rvm_sync_errors_total not incremented")
	}
	if h := sys.Health(); len(h) != 1 || !h[0].Degraded || h[0].Breaker != "open" {
		t.Fatalf("health = %+v", h)
	}

	// Recovery: lift the fault, wait out the breaker via a fresh sync
	// after cooldown is irrelevant here — clear the rules and re-open
	// the breaker path by resetting the injector; the half-open probe
	// happens after cooldown, which we shortcut by a direct reset.
	inj.Reset()
}

// TestFailClosedPolicy pins the strict degradation mode: queries are
// rejected with ErrDegraded while a source is down, and work again after
// recovery.
func TestFailClosedPolicy(t *testing.T) {
	sys, inj := faultFS(t, idm.Config{DegradedReads: idm.FailClosed})
	inj.Add(idm.FaultRule{Point: "fs/root", Kind: idm.FaultError, Times: 1})
	if _, err := sys.Manager().SyncSource("fs"); err == nil {
		t.Fatal("faulty sync succeeded")
	}
	if _, err := sys.Query(`"resilient keyword"`); !errors.Is(err, idm.ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if _, err := sys.Manager().SyncSource("fs"); err != nil {
		t.Fatalf("recovery sync: %v", err)
	}
	res, err := sys.Query(`"resilient keyword"`)
	if err != nil || res.Count() != 1 || res.Stale {
		t.Fatalf("post-recovery: %v, %+v", err, res)
	}
}

// TestStaleResultsBypassCache checks the cache never launders away the
// Stale flag: a result cached while healthy must not be served unflagged
// during degradation.
func TestStaleResultsBypassCache(t *testing.T) {
	sys, inj := faultFS(t, idm.Config{})
	// Prime the cache while healthy.
	if res, err := sys.Query(`"resilient keyword"`); err != nil || res.Stale {
		t.Fatalf("healthy query: %v %+v", err, res)
	}
	inj.Add(idm.FaultRule{Point: "fs/root", Kind: idm.FaultError, Times: 1})
	if _, err := sys.Manager().SyncSource("fs"); err == nil {
		t.Fatal("faulty sync succeeded")
	}
	res, err := sys.Query(`"resilient keyword"`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stale {
		t.Fatal("cached result served without the Stale flag during degradation")
	}
}

// TestDifferentialUnderFaults runs grammar-generated queries against a
// degraded live system, asserting serial and parallel evaluation still
// agree while stale replicas are being served.
func TestDifferentialUnderFaults(t *testing.T) {
	sys, inj := faultFS(t, idm.Config{})
	inj.Add(idm.FaultRule{Point: "fs/root", Kind: idm.FaultError})
	if _, err := sys.Manager().SyncSource("fs"); err == nil {
		t.Fatal("sync of downed source succeeded")
	}
	vocab := iql.Vocab{
		Names:     []string{"fs", "docs", "paper.tex", "notes.txt", "Introduction"},
		Phrases:   []string{"dataspace vision", "resilient keyword", "section"},
		Classes:   []string{"folder", "file", "latexfile", "latex_section"},
		IntAttrs:  []string{"size"},
		DateAttrs: []string{"lastmodified"},
	}
	g := iql.NewGen(3, vocab)
	serial := iql.NewEngine(sys.Manager(), iql.Options{Now: fixedNow, Parallelism: 1})
	parallel := iql.NewEngine(sys.Manager(), iql.Options{Now: fixedNow, Parallelism: 8})
	for i := 0; i < 300; i++ {
		q := g.Query()
		rs, errS := serial.Query(q)
		rp, errP := parallel.Query(q)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("gen %d %q: serial err %v, parallel err %v", i, q, errS, errP)
		}
		if errS != nil {
			continue
		}
		a, b := rs.OIDs(), rp.OIDs()
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("gen %d %q: %v vs %v", i, q, a, b)
		}
		if len(rs.Plan.StaleSources) != 1 || rs.Plan.StaleSources[0] != "fs" {
			t.Fatalf("gen %d %q: StaleSources = %v", i, q, rs.Plan.StaleSources)
		}
	}
}

// TestRemoveSourceInvalidatesCache pins the unregister path: cached
// results that drew rows from the removed source are dropped, unrelated
// entries survive, and the source's views leave the indexes.
func TestRemoveSourceInvalidatesCache(t *testing.T) {
	fsA := idm.NewFileSystem()
	fsA.MkdirAll("/a")
	fsA.WriteFile("/a/keep.txt", []byte("alpha content stays"))
	fsB := idm.NewFileSystem()
	fsB.MkdirAll("/b")
	fsB.WriteFile("/b/gone.txt", []byte("beta content leaves"))
	sys := idm.Open(idm.Config{Now: fixedNow})
	if err := sys.AddFileSystem("a", fsA); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddFileSystem("b", fsB); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	if res, _ := sys.Query(`"alpha content"`); res.Count() != 1 {
		t.Fatal("setup a")
	}
	if res, _ := sys.Query(`"beta content"`); res.Count() != 1 {
		t.Fatal("setup b")
	}
	if st := sys.CacheStats(); st.Size != 2 {
		t.Fatalf("cache size = %d, want 2", st.Size)
	}

	if err := sys.RemoveSource("b"); err != nil {
		t.Fatal(err)
	}
	st := sys.CacheStats()
	if st.Size != 1 {
		t.Fatalf("cache size after removal = %d, want 1 (b's entry dropped)", st.Size)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	res, err := sys.Query(`"beta content"`)
	if err != nil || res.Count() != 0 {
		t.Fatalf("removed source still answers: %v (%d)", err, res.Count())
	}
	if res, _ := sys.Query(`"alpha content"`); res.Count() != 1 {
		t.Fatal("surviving source lost")
	}
	if got := sys.Sources(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("sources = %v", got)
	}
	if err := sys.RemoveSource("b"); err == nil {
		t.Fatal("double removal not rejected")
	}
}

// TestResilienceAbsorbsTransientFaults: with retries configured, a
// transient root failure never surfaces to Index at all.
func TestResilienceAbsorbsTransientFaults(t *testing.T) {
	sys, inj := faultFS(t, idm.Config{
		Resilience: &idm.ResiliencePolicy{
			MaxRetries:      3,
			RetryBase:       time.Microsecond,
			BreakerFailures: -1,
			Sleep:           func(time.Duration) {},
		},
	})
	inj.Add(idm.FaultRule{Point: "fs/root", Kind: idm.FaultError, Times: 2})
	if _, err := sys.Manager().SyncSource("fs"); err != nil {
		t.Fatalf("transient faults surfaced through retries: %v", err)
	}
	if got := sys.DegradedSources(); len(got) != 0 {
		t.Fatalf("DegradedSources = %v", got)
	}
	if sys.Metrics().Snapshot().Counters["source_fs_retries_total"] != 2 {
		t.Error("retries not recorded")
	}
}

// TestParseFaultRuleRoundTrip covers the -fault flag's spec format at
// the facade level.
func TestParseFaultRuleRoundTrip(t *testing.T) {
	r, err := idm.ParseFaultRule("fs/root:error:0.5:3")
	if err != nil {
		t.Fatal(err)
	}
	if r.Point != "fs/root" || r.Kind != idm.FaultError || r.P != 0.5 || r.Times != 3 {
		t.Fatalf("rule = %+v", r)
	}
	if _, err := idm.ParseFaultRule("fs/root:latency@5ms"); err != nil {
		t.Fatal(err)
	}
	if _, err := idm.ParseFaultRule("nonsense:kind"); err == nil {
		t.Fatal("bad kind accepted")
	}
	_ = fault.Error // the internal package stays importable for tests
}
