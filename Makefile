GO ?= go

.PHONY: check test build vet bench bench-iql obs-bench fuzz-smoke repl-chaos storage-matrix load-smoke

# Full verification: vet + build + race-enabled tests.
check:
	sh scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short fuzzing pass over the iQL parser, evaluator, the
# serial-vs-parallel differential harness, the durable store's WAL and
# snapshot decoders, and the compacted-segment decoder (30s per target;
# iQL seed corpora live in internal/iql/testdata/fuzz/, the segment
# seed is testdata/store/compact.seg, store corpora are generated
# in-test). Each target must run alone: `go test -fuzz` accepts only
# one fuzz target per invocation.
fuzz-smoke:
	$(GO) test ./internal/iql -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/iql -run '^$$' -fuzz '^FuzzEval$$' -fuzztime 30s
	$(GO) test ./internal/iql -run '^$$' -fuzz '^FuzzDifferential$$' -fuzztime 30s
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzWALDecode$$' -fuzztime 30s
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzSnapshotLoad$$' -fuzztime 30s
	$(GO) test ./internal/repl -run '^$$' -fuzz '^FuzzShipDecode$$' -fuzztime 30s
	$(GO) test ./internal/storage -run '^$$' -fuzz '^FuzzSegmentDecode$$' -fuzztime 30s
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzServerRequest$$' -fuzztime 30s

# Quick multi-tenant soak: the imemexd load harness at a smoke scale
# (20 tenants × 5 clients, several iterations) under the race detector.
# The full gate (200 tenants, the flag defaults) runs in `make check`
# via the server gate; see docs/SERVER.md.
load-smoke:
	$(GO) test -race ./internal/server -run 'TestLoadConcurrentTenants' -v \
		-args -load-tenants=20 -load-clients=5 -load-iters=4

# Storage-backend matrix: the Engine conformance suite (append, tail,
# recovery, drop, digest, crash matrix, dir lock) against both backends,
# plus every root-level crash/chaos/differential harness that is
# backend-parameterized (docs/PERSISTENCE.md).
storage-matrix:
	$(GO) test -race -v -run 'TestConformance|TestDirLock' ./internal/storage
	$(GO) test -race -run 'TestCrashMatrix|TestCrashDuringSnapshot|TestDoubleCrashDuringRecovery|TestReplicaDifferential' .

# Replication chaos suite at the pinned seed: every lane (drop, dup,
# reorder, torn, all) of the hostile-transport schedule replays
# deterministically from -chaos-seed, so a failure here reproduces
# bit-for-bit (docs/REPLICATION.md).
repl-chaos:
	$(GO) test -race -run 'TestReplChaos' . -args -chaos-seed=1

# Planner regression gate: run the three-lane benchmark (serial,
# forced-parallel, planner-adaptive) at the evaluation scale and at 10×,
# and fail if the adaptive planner falls below 0.95× of serial on any
# query — the planner must never lose to the strategy it replaces.
bench:
	$(GO) run ./cmd/idmbench -exp iql -scale 0.05 -runs 10 -parallelism 8 -obsreps 0 -tenx -minspeedup 0.95

# Regenerate BENCH_iql.json (three-lane engine microbenchmark at base
# and 10x scale, the obs_overhead instrumentation-cost section, and the
# index_build cold-start section at the paper scale; schema_version 5,
# see internal/experiments.BenchReport).
bench-iql:
	$(GO) run ./cmd/idmbench -exp iql -scale 0.05 -runs 10 -parallelism 8 -tenx -minspeedup 0.95 -ixreps 3 -ixscale 1.0 -json BENCH_iql.json

# Re-measure only the observability overhead (obs_overhead section of
# BENCH_iql.json) and gate it: mean disabled overhead <= 2%, mean
# query-log-enabled overhead <= 3% (see docs/OBSERVABILITY.md). The
# gate is opt-in here rather than in scripts/check.sh because
# percent-level timing bounds need a quiet machine.
obs-bench:
	$(GO) run ./cmd/idmbench -exp iql -scale 0.05 -runs 10 -parallelism 8 -obsreps 4 -obsgate -json BENCH_iql.json
