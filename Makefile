GO ?= go

.PHONY: check test build vet bench-iql

# Full verification: vet + build + race-enabled tests.
check:
	sh scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate BENCH_iql.json (serial vs parallel engine microbenchmark;
# schema_version 1, see internal/experiments.BenchReport).
bench-iql:
	$(GO) run ./cmd/idmbench -exp iql -scale 0.05 -runs 10 -parallelism 8 -json BENCH_iql.json
