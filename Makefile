GO ?= go

.PHONY: check test build vet bench-iql obs-bench

# Full verification: vet + build + race-enabled tests.
check:
	sh scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate BENCH_iql.json (serial vs parallel engine microbenchmark
# plus the obs_overhead instrumentation-cost section; schema_version 2,
# see internal/experiments.BenchReport).
bench-iql:
	$(GO) run ./cmd/idmbench -exp iql -scale 0.05 -runs 10 -parallelism 8 -json BENCH_iql.json

# Re-measure only the observability overhead (obs_overhead section of
# BENCH_iql.json; target: mean disabled overhead <= 2%, see
# docs/OBSERVABILITY.md).
obs-bench:
	$(GO) run ./cmd/idmbench -exp iql -scale 0.05 -runs 10 -parallelism 8 -obsreps 4 -json BENCH_iql.json
