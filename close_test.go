package idm_test

import (
	"errors"
	"sync"
	"testing"

	idm "repro"
)

// closeTestSystem opens a small durable dataspace for the Close
// idempotence suite.
func closeTestSystem(t *testing.T) *idm.System {
	t.Helper()
	sys, _, err := idm.OpenDurable(idm.Config{DataDir: t.TempDir(), Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	fs := idm.NewFileSystem()
	fs.MkdirAll("/docs")
	fs.WriteFile("/docs/a.txt", []byte("alpha close test"))
	fs.WriteFile("/docs/b.txt", []byte("beta close test"))
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCloseIdempotent pins the facade contract: the first Close wins
// (nil on a healthy store), every later Close returns ErrClosed —
// deterministically, never a panic or a double-close of the engine.
func TestCloseIdempotent(t *testing.T) {
	sys := closeTestSystem(t)
	if err := sys.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := sys.Close(); !errors.Is(err, idm.ErrClosed) {
			t.Fatalf("Close #%d = %v, want ErrClosed", i+2, err)
		}
	}

	// In-memory systems have nothing to close: always nil.
	mem := idm.Open(idm.Config{})
	if err := mem.Close(); err != nil {
		t.Fatalf("in-memory Close: %v", err)
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("in-memory second Close: %v", err)
	}
}

// TestCloseConcurrentWithQuery is the eviction-race regression: many
// goroutines Close while others Query. Exactly one Close may return
// nil; the rest get ErrClosed; queries keep answering from the
// in-memory indexes and nothing panics (run under -race).
func TestCloseConcurrentWithQuery(t *testing.T) {
	sys := closeTestSystem(t)
	const closers, queriers, iters = 8, 8, 25

	var wg sync.WaitGroup
	var nilCloses, errCloses int64
	var mu sync.Mutex
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				err := sys.Close()
				mu.Lock()
				switch {
				case err == nil:
					nilCloses++
				case errors.Is(err, idm.ErrClosed):
					errCloses++
				default:
					t.Errorf("unexpected Close error: %v", err)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				res, err := sys.Query(`"close"`)
				if err != nil {
					t.Errorf("Query during Close: %v", err)
					return
				}
				if res.Count() == 0 {
					t.Error("Query during Close lost rows")
					return
				}
			}
		}()
	}
	wg.Wait()
	if nilCloses != 1 {
		t.Errorf("got %d nil Closes, want exactly 1 (ErrClosed: %d)", nilCloses, errCloses)
	}
	if want := int64(closers*iters) - 1; errCloses != want {
		t.Errorf("got %d ErrClosed, want %d", errCloses, want)
	}
}
