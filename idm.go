// Package idm is a from-scratch Go implementation of the iMeMex Data
// Model and Personal Dataspace Management System described in
// "iDM: A Unified and Versatile Data Model for Personal Dataspace
// Management" (Dittrich and Vaz Salles, VLDB 2006).
//
// The package is the public facade over the full stack:
//
//   - the iDM core model: resource views with name/tuple/content/group
//     components, lazy and infinite components, resource view classes
//     and graph algorithms (internal/core);
//   - data source plugins for filesystems, IMAP-style email stores,
//     relational databases and RSS feeds (internal/sources/...);
//   - Content2iDM converters for XML and LaTeX (internal/convert);
//   - the Resource View Manager with its catalog, name/tuple/content
//     indexes and group replica (internal/rvm);
//   - the iQL query language: keyword search, path expressions,
//     attribute and class predicates, union and join (internal/iql).
//
// A minimal session:
//
//	sys := idm.Open(idm.Config{})
//	fs := idm.NewFileSystem()
//	fs.MkdirAll("/Projects/PIM")
//	fs.WriteFile("/Projects/PIM/paper.tex", []byte(`\section{Introduction}...`))
//	sys.AddFileSystem("filesystem", fs)
//	sys.Index()
//	res, _ := sys.Query(`//PIM//Introduction[class="latex_section"]`)
//	for _, item := range res.Items {
//		fmt.Println(item.Path, item.Class)
//	}
package idm

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/iql"
	"repro/internal/mail"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/rss"
	"repro/internal/rvm"
	"repro/internal/sources"
	"repro/internal/sources/fsplugin"
	"repro/internal/sources/mailplugin"
	"repro/internal/sources/relplugin"
	"repro/internal/sources/rssplugin"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/vfs"
)

// Re-exported core types: the iDM data model itself is part of the
// public API.
type (
	// ResourceView is the central iDM abstraction (Definition 1 of the
	// paper): a 4-tuple of name, tuple, content and group components,
	// each obtainable through a get-method and computable lazily.
	ResourceView = core.ResourceView
	// TupleComponent is the τ component: a (schema, tuple) pair.
	TupleComponent = core.TupleComponent
	// Content is the χ component: a finite or infinite symbol string.
	Content = core.Content
	// Group is the γ component: a set and a sequence of related views.
	Group = core.Group
	// OID is the stable catalog identifier of a managed resource view.
	OID = catalog.OID
	// FS is the in-memory virtual filesystem substrate.
	FS = vfs.FS
	// MailStore is the simulated IMAP-style message store.
	MailStore = mail.Store
	// MailMessage is one email message.
	MailMessage = mail.Message
	// MailAttachment is one message attachment.
	MailAttachment = mail.Attachment
	// MailLatency models remote access cost per store operation.
	MailLatency = mail.Latency
	// RelDB is the embedded relational database substrate.
	RelDB = relstore.DB
	// RSSServer is the simulated RSS/ATOM feed server.
	RSSServer = rss.Server
	// Source is a data source plugin.
	Source = sources.Source
	// SyncReport carries per-source indexing timings (Figure 5).
	SyncReport = rvm.SyncReport
	// SyncTiming is one source's indexing time breakdown.
	SyncTiming = rvm.SyncTiming
	// IndexSizes reports index/replica footprints (Table 3).
	IndexSizes = rvm.IndexSizes
	// SourceBreakdown is one row of Table 2.
	SourceBreakdown = rvm.SourceBreakdown
	// ChangeRecord is one entry of the dataspace change journal
	// (versioning, §8 of the paper).
	ChangeRecord = rvm.ChangeRecord
	// LineageStep is one hop of a view's provenance chain (lineage,
	// §8 of the paper).
	LineageStep = rvm.LineageStep
	// ResiliencePolicy tunes the per-source retry/timeout/circuit-breaker
	// proxy wrapped around every registered plugin (see
	// docs/RESILIENCE.md). The zero value applies sensible defaults.
	ResiliencePolicy = sources.Policy
	// SourceHealth is one source's degradation status as tracked by the
	// Resource View Manager.
	SourceHealth = rvm.SourceHealth
	// FaultInjector deterministically injects failures at named points in
	// the source layer; for tests and chaos drills.
	FaultInjector = fault.Injector
	// FaultRule describes one injected failure.
	FaultRule = fault.Rule
	// FaultKind classifies what a FaultRule injects.
	FaultKind = fault.Kind
	// SyncPolicy selects when the durable store fsyncs its write-ahead
	// log (see docs/PERSISTENCE.md).
	SyncPolicy = store.SyncPolicy
	// RecoveryInfo reports what a durable open reconstructed: snapshot
	// loaded, WAL records replayed, torn tails tolerated, warnings.
	RecoveryInfo = store.RecoveryInfo
	// StorageBackend selects the durable storage engine for
	// Config.Backend (see docs/PERSISTENCE.md).
	StorageBackend = storage.Backend
	// StorageEngine is the pluggable storage contract both backends
	// satisfy (see internal/storage).
	StorageEngine = storage.Engine
)

// Storage backends for Config.Backend.
const (
	// BackendWAL (the default) is the write-optimized engine: per-source
	// WAL segments plus atomic snapshots.
	BackendWAL = storage.BackendWAL
	// BackendCompact is the read-optimized engine: one immutable sorted
	// segment per source, rebuilt by compaction, plus an append tail —
	// suited to read-heavy replicas.
	BackendCompact = storage.BackendCompact
)

// ParseStorageBackend parses a backend name ("wal", "compact"; ""
// selects the default) — the imemex -backend flag uses it.
func ParseStorageBackend(s string) (StorageBackend, error) { return storage.ParseBackend(s) }

// Fsync policies for Config.Fsync.
const (
	// SyncOnCommit (the default) fsyncs at each sync walk's commit point
	// (the edge-commit record) and on source drops.
	SyncOnCommit = store.SyncOnCommit
	// SyncAlways fsyncs after every WAL record.
	SyncAlways = store.SyncAlways
	// SyncNever leaves flushing to the OS (crash-unsafe; benchmarks).
	SyncNever = store.SyncNever
)

// Fault kinds a FaultRule can inject.
const (
	FaultError       = fault.Error
	FaultLatency     = fault.Latency
	FaultPartialRead = fault.PartialRead
	FaultCorrupt     = fault.Corrupt
)

// NewFaultInjector returns a deterministic fault injector; register it
// via Config.Faults before adding sources.
func NewFaultInjector(seed int64) *FaultInjector { return fault.New(seed) }

// ParseFaultRule parses a "point:kind[:p[:times]]" rule spec (see
// fault.ParseRule); used by the imemex -fault flag.
func ParseFaultRule(spec string) (FaultRule, error) { return fault.ParseRule(spec) }

// IsFaultInjected reports whether err originates from a FaultInjector.
func IsFaultInjected(err error) bool { return fault.IsInjected(err) }

// Change journal record kinds.
const (
	ChangeAdded   = rvm.ChangeAdded
	ChangeUpdated = rvm.ChangeUpdated
	ChangeRemoved = rvm.ChangeRemoved
)

// NewFileSystem returns an empty virtual filesystem.
func NewFileSystem() *FS { return vfs.New() }

// NewMailStore returns an empty mail store.
func NewMailStore() *MailStore { return mail.NewStore() }

// NewRelDB returns an empty relational database with the given name.
func NewRelDB(name string) *RelDB { return relstore.NewDB(name) }

// NewRSSServer returns an empty feed server.
func NewRSSServer() *RSSServer { return rss.NewServer() }

// Expansion selects the iQL path-evaluation strategy.
type Expansion = iql.Expansion

// QueryStats is the per-query resource accounting attached to every
// Result (see iql.QueryStats for field semantics).
type QueryStats = iql.QueryStats

// Expansion strategies: the paper's prototype uses forward expansion;
// backward and automatic expansion implement the improvement §7.2
// proposes for Q8-style queries.
const (
	Forward  = iql.ForwardExpansion
	Backward = iql.BackwardExpansion
	Auto     = iql.AutoExpansion
)

// Config tunes a System.
type Config struct {
	// ReplicateGroups controls the group replica (default on, matching
	// the paper's evaluation). Disabling it switches navigation to
	// query shipping against the live sources.
	ReplicateGroups *bool
	// Expansion selects the path strategy (default Forward).
	Expansion Expansion
	// Parallelism sets the iQL engine's worker count (default
	// runtime.GOMAXPROCS(0); 1 forces serial execution). Results are
	// identical at any setting.
	Parallelism int
	// RulePlanner reverts the iQL engine to the legacy rule-based
	// planner (fixed parallelism, anchor choice by raw candidate
	// counts). The default is the cost-based adaptive planner, which
	// consults catalog and index statistics to choose serial vs
	// parallel per stage, pick expansion direction and join build
	// sides, and elide residual filters on index-covered steps.
	// Results are identical under either planner.
	RulePlanner bool
	// Now supplies the clock for iQL date functions (default time.Now).
	Now func() time.Time
	// MaxContentBytes bounds per-view content indexing (default 4 MiB).
	MaxContentBytes int64
	// InfinitePrefix bounds the stream window drawn from infinite group
	// components during indexing (default 1024).
	InfinitePrefix int
	// DisableQueryCache turns off result caching. The cache is keyed by
	// query text and invalidated by the dataspace version (every change
	// bumps it), so cached results are never stale; disable it only for
	// measurement (the cold bars of Figure 6).
	DisableQueryCache bool
	// IndexImages additionally indexes binary content (photos, audio)
	// in a histogram-based similarity index — the QBIC-style content
	// index §5.2 of the paper gives as an example; query it with
	// SimilarImages.
	IndexImages bool
	// DisableMetrics opens the metrics registry disabled: instruments
	// stay wired through the stack but record nothing (one atomic load
	// per call). Re-enable at runtime with Metrics().SetEnabled(true).
	DisableMetrics bool
	// SlowQuery is the query log's slow threshold: queries at or over it
	// additionally retain a full EXPLAIN-style trace render (see
	// QueryLog). Zero applies DefaultSlowQuery; negative disables slow
	// capture while keeping the log.
	SlowQuery time.Duration
	// QueryLogSize is the per-ring capacity of the query log (recent and
	// slow rings). Zero applies obs.DefaultQueryLogSize; negative
	// disables query logging entirely.
	QueryLogSize int
	// Resilience wraps every registered source in a retry/timeout/
	// circuit-breaker proxy with this policy. nil leaves sources
	// unwrapped: a failing source fails its sync on the first error.
	Resilience *ResiliencePolicy
	// DegradedReads selects what Query does while a source is degraded
	// (its last sync failed): ServeStale (default) answers from the
	// last-good replica and flags the result; FailClosed returns
	// ErrDegraded instead.
	DegradedReads DegradedReadPolicy
	// Faults, when set, is handed to every registered source plugin that
	// supports fault injection (all built-in plugins do), and to the
	// durable store when DataDir is set. Testing only.
	Faults *FaultInjector
	// DataDir, when non-empty, makes the dataspace durable: replica
	// commits are written to a checksummed write-ahead log under this
	// directory before they are applied, and OpenDurable recovers the
	// catalog, indexes and replicas from it after a crash or restart.
	// Empty keeps the system fully in-memory. See docs/PERSISTENCE.md.
	DataDir string
	// Fsync selects the WAL flush policy (default SyncOnCommit); only
	// meaningful with DataDir.
	Fsync SyncPolicy
	// Backend selects the storage engine for DataDir (default
	// BackendWAL, the write-optimized per-source WAL store; see
	// BackendCompact for the read-optimized compacted segment store).
	// Only meaningful with DataDir, and must match what the directory
	// was created with. See docs/PERSISTENCE.md.
	Backend StorageBackend
}

// DefaultSlowQuery is the slow-query threshold applied when
// Config.SlowQuery is zero.
const DefaultSlowQuery = 250 * time.Millisecond

// DegradedReadPolicy selects query behaviour while sources are degraded.
type DegradedReadPolicy int

const (
	// ServeStale answers queries from the last successfully synced
	// replica, marking results Stale (graceful degradation).
	ServeStale DegradedReadPolicy = iota
	// FailClosed rejects queries with ErrDegraded while any source is
	// degraded.
	FailClosed
)

// ErrDegraded is returned by Query under Config{DegradedReads:
// FailClosed} while at least one source is degraded.
var ErrDegraded = errors.New("idm: dataspace degraded")

// System is an iMeMex-style Personal Dataspace Management System: a
// Resource View Manager plus an iQL query processor.
type System struct {
	mgr        *rvm.Manager
	engine     *iql.Engine
	converters *convert.Registry
	now        func() time.Time
	par        int
	planner    iql.PlannerMode
	cache      *queryCache // nil when disabled
	metrics    *obs.Registry
	qlog       *obs.QueryLog // nil when disabled
	met        systemMetrics
	degraded   DegradedReadPolicy
	store      storage.Engine // nil when in-memory

	// closeOnce makes Close idempotent: the first call closes the store
	// and keeps its error, later calls (an eviction race, a deferred
	// Close after an explicit one) return ErrClosed instead of touching
	// the store again.
	closeOnce sync.Once
	closeErr  error
}

// systemMetrics bundles the facade's own instruments (idm_* series);
// engine, manager and plugin instruments live in the same registry
// under their own prefixes.
type systemMetrics struct {
	queries     *obs.Counter
	queryNs     *obs.Histogram
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	// staleQueries counts queries answered from stale replicas while a
	// source was degraded.
	staleQueries *obs.Counter
}

func newSystemMetrics(reg *obs.Registry) systemMetrics {
	return systemMetrics{
		queries:      reg.Counter("idm_queries_total"),
		queryNs:      reg.Histogram("idm_query_ns", nil),
		cacheHits:    reg.Counter("idm_cache_hits_total"),
		cacheMisses:  reg.Counter("idm_cache_misses_total"),
		staleQueries: reg.Counter("idm_stale_queries_total"),
	}
}

// The manager implements the statistics surface the cost-based planner
// consults; without it the adaptive planner falls back to rule-based
// decisions.
var _ iql.StatsProvider = (*rvm.Manager)(nil)

// Open creates an in-memory System. Config.DataDir is ignored here —
// use OpenDurable for a dataspace backed by the durable store.
func Open(cfg Config) *System {
	return open(cfg, catalog.New(), nil, nil)
}

// OpenDurable creates a System backed by the durable store rooted at
// cfg.DataDir: the latest valid snapshot is loaded, the write-ahead-log
// tail replayed (tolerating a torn final record), and the catalog, text
// and tuple indexes and group replica rebuilt from the recovered graph.
// Sources still need to be re-added; until they are re-synced, queries
// answer from the recovered replicas exactly as they do for a degraded
// source. The returned RecoveryInfo describes what was reconstructed.
//
// With an empty DataDir it degrades to Open (nil RecoveryInfo).
func OpenDurable(cfg Config) (*System, *RecoveryInfo, error) {
	if cfg.DataDir == "" {
		return Open(cfg), nil, nil
	}
	reg := obs.NewRegistry()
	if cfg.DisableMetrics {
		reg.SetEnabled(false)
	}
	st, info, err := storage.Open(cfg.DataDir, storage.Options{
		Backend: cfg.Backend,
		Sync:    cfg.Fsync,
		Metrics: reg,
		Faults:  cfg.Faults,
	})
	if err != nil {
		return nil, nil, err
	}
	state := st.State()
	cat := catalog.Rebuild(state.NextOID, state.Entries())
	sys := open(cfg, cat, st, reg)
	sys.mgr.RestoreFromState(state)
	return sys, &info, nil
}

// ErrClosed is returned by the second and later calls to Close. The
// first Close wins and returns the store's close error; concurrent or
// repeated closers (e.g. an LRU evictor racing a deferred Close) get
// ErrClosed deterministically, never a panic or a double-close.
var ErrClosed = errors.New("idm: system closed")

// Close flushes and closes the durable store (a no-op for in-memory
// systems). Close is idempotent and safe to call concurrently: exactly
// one caller performs the close, later calls return ErrClosed. Reads
// (Query) against a closed System still answer from the in-memory
// indexes; mutations that need the store fail.
func (s *System) Close() error {
	if s.store == nil {
		return nil
	}
	first := false
	s.closeOnce.Do(func() {
		first = true
		s.closeErr = s.store.Close()
	})
	if first {
		return s.closeErr
	}
	return ErrClosed
}

// Checkpoint compacts the durable state into a fresh snapshot and
// truncates the write-ahead log; a no-op for in-memory systems.
func (s *System) Checkpoint() error { return s.mgr.Checkpoint() }

// StateDigest returns the stable digest of the durable state ("" for
// in-memory systems) — equal digests mean byte-identical recovered
// graphs.
func (s *System) StateDigest() string { return s.mgr.StateDigest() }

// OpenWithCatalog creates a System whose Resource View Catalog is read
// from r (previously written by SaveCatalog). OIDs stay stable across
// restarts: re-adding the same sources and indexing re-associates live
// views with their persisted identities.
func OpenWithCatalog(cfg Config, r io.Reader) (*System, error) {
	cat, err := catalog.Load(r)
	if err != nil {
		return nil, err
	}
	return open(cfg, cat, nil, nil), nil
}

// open assembles a System. st and reg are non-nil only on the durable
// path (OpenDurable creates the registry early so the store's recovery
// instruments land in the same registry as everything else).
func open(cfg Config, cat *catalog.Catalog, st storage.Engine, reg *obs.Registry) *System {
	opts := rvm.DefaultOptions()
	if cfg.ReplicateGroups != nil {
		opts.ReplicateGroups = *cfg.ReplicateGroups
	}
	opts.MaxContentBytes = cfg.MaxContentBytes
	opts.InfinitePrefix = cfg.InfinitePrefix
	opts.IndexImages = cfg.IndexImages
	opts.Resilience = cfg.Resilience
	opts.Faults = cfg.Faults
	opts.Store = st
	if reg == nil {
		reg = obs.NewRegistry()
		if cfg.DisableMetrics {
			reg.SetEnabled(false)
		}
	}
	opts.Metrics = reg
	mgr := rvm.NewWithCatalog(opts, cat)
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	planner := iql.PlannerAdaptive
	if cfg.RulePlanner {
		planner = iql.PlannerRule
	}
	var qlog *obs.QueryLog
	if cfg.QueryLogSize >= 0 {
		slow := cfg.SlowQuery
		if slow == 0 {
			slow = DefaultSlowQuery
		}
		qlog = obs.NewQueryLog(cfg.QueryLogSize, slow)
	}
	engine := iql.NewEngine(mgr, iql.Options{
		Expansion:   cfg.Expansion,
		Now:         now,
		Parallelism: cfg.Parallelism,
		Planner:     planner,
		Metrics:     reg,
		QueryLog:    qlog,
	})
	s := &System{
		mgr:        mgr,
		engine:     engine,
		converters: convert.Default(),
		now:        now,
		par:        cfg.Parallelism,
		planner:    planner,
		metrics:    reg,
		qlog:       qlog,
		met:        newSystemMetrics(reg),
		degraded:   cfg.DegradedReads,
		store:      st,
	}
	if !cfg.DisableQueryCache {
		s.cache = newQueryCache(0)
	}
	return s
}

// SaveCatalog persists the Resource View Catalog to w; OpenWithCatalog
// restores it.
func (s *System) SaveCatalog(w io.Writer) error { return s.mgr.Catalog().Save(w) }

// Converters returns the Content2iDM converter registry; custom
// converters may be registered before indexing.
func (s *System) Converters() *convert.Registry { return s.converters }

// Manager exposes the underlying Resource View Manager for advanced use
// (index sizes, per-source breakdowns, the push broker).
func (s *System) Manager() *rvm.Manager { return s.mgr }

// AddFileSystem registers a filesystem data source under the given id.
func (s *System) AddFileSystem(id string, fs *FS) error {
	return s.mgr.AddSource(fsplugin.New(id, fs, s.converters.Func()))
}

// AddMail registers an email data source under the given id.
func (s *System) AddMail(id string, store *MailStore) error {
	return s.mgr.AddSource(mailplugin.New(id, store, s.converters.Func()))
}

// AddRelational registers a relational database source.
func (s *System) AddRelational(id string, db *RelDB) error {
	return s.mgr.AddSource(relplugin.New(id, db))
}

// AddRSS registers an RSS/ATOM source, polling for new items on the
// given interval (0 disables polling).
func (s *System) AddRSS(id string, server *RSSServer, poll time.Duration) error {
	return s.mgr.AddSource(rssplugin.New(id, server, poll))
}

// AddSource registers a custom data source plugin.
func (s *System) AddSource(src Source) error { return s.mgr.AddSource(src) }

// RemoveSource unregisters a source: its plugin is closed, every view it
// contributed is removed from the catalog, indexes and replica (journaled
// as removals), and cached query results that drew rows from it are
// dropped.
func (s *System) RemoveSource(id string) error {
	if s.cache != nil {
		s.cache.invalidateSource(id)
	}
	return s.mgr.RemoveSource(id)
}

// Health reports per-source degradation status: whether the last sync
// failed, the error, consecutive failures, and the circuit-breaker state
// when Config.Resilience is set.
func (s *System) Health() []SourceHealth { return s.mgr.Health() }

// DegradedSources lists sources whose last sync failed; queries answered
// while this is non-empty carry Result.Stale (under the default
// ServeStale policy).
func (s *System) DegradedSources() []string { return s.mgr.DegradedSources() }

// Index synchronizes every registered source: it walks each source's
// resource view graph, registers every view in the catalog and feeds the
// name, tuple and content indexes and the group replica.
func (s *System) Index() (SyncReport, error) { return s.mgr.SyncAll() }

// Refresh resynchronizes sources marked dirty by change notifications.
func (s *System) Refresh() ([]string, error) { return s.mgr.ProcessPending() }

// StartPolling runs Refresh over all sources on the interval; call the
// returned stop function to halt.
func (s *System) StartPolling(interval time.Duration) (stop func()) {
	return s.mgr.StartPolling(interval)
}

// Count returns the number of managed resource views.
func (s *System) Count() int { return s.mgr.Count() }

// Query parses and evaluates an iQL query. Results are cached per
// dataspace version (see Config.DisableQueryCache); treat them as
// read-only.
func (s *System) Query(q string) (*Result, error) {
	start := time.Now()
	s.met.queries.Inc()
	// Degraded sources: FailClosed rejects outright; ServeStale bypasses
	// the cache so every result honestly carries its Stale flag (a failed
	// sync does not bump the version, so cached rows would be identical
	// but unflagged).
	stale := s.mgr.DegradedSources()
	if len(stale) > 0 && s.degraded == FailClosed {
		return nil, fmt.Errorf("%w: %s", ErrDegraded, strings.Join(stale, ", "))
	}
	useCache := s.cache != nil && len(stale) == 0
	var version uint64
	if useCache {
		version = s.mgr.Version()
		if res, ok := s.cache.get(q, version); ok {
			s.met.cacheHits.Inc()
			s.met.queryNs.ObserveSince(start)
			// The cached Result is shared; hand out a shallow copy whose
			// Stats carry the hit flag and the hit-path latency. The
			// engine never sees cache hits, so the facade logs them.
			elapsed := time.Since(start)
			hit := *res
			hit.Stats.CacheHit = true
			hit.Stats.ElapsedNs = int64(elapsed)
			s.recordCacheHit(q, &hit, elapsed)
			return &hit, nil
		}
		s.met.cacheMisses.Inc()
	}
	r, err := s.engine.Query(q)
	if err != nil {
		return nil, err
	}
	res := s.buildResult(r)
	res.Stats.ElapsedNs = int64(time.Since(start))
	if useCache {
		// The elapsed time is what this miss cost; the cache reports it
		// as MissLatency against the hit path's HitLatency.
		s.cache.put(q, version, res, time.Since(start))
	}
	s.met.queryNs.ObserveSince(start)
	return res, nil
}

// recordCacheHit logs a cache-served query. The record keeps the cached
// result's resource stats — what the result originally cost to compute —
// with CacheHit marking that this serving paid none of it.
func (s *System) recordCacheHit(q string, res *Result, elapsed time.Duration) {
	if s.qlog == nil {
		return
	}
	s.qlog.Record(obs.QueryRecord{
		Query:      q,
		DurationNs: int64(elapsed),
		Rows:       int64(len(res.Rows)),
		CacheHit:   true,
		Stale:      res.Stale,
		Strategy:   res.Stats.Strategy,
		Stats: obs.QueryStatsRecord{
			RowsScanned:     res.Stats.RowsScanned,
			PostingsRead:    res.Stats.PostingsRead,
			ResidualFilters: res.Stats.ResidualFilters,
			ViewsExpanded:   res.Stats.ViewsExpanded,
			PeakFrontier:    res.Stats.PeakFrontier,
			IndexAccesses:   res.Stats.IndexAccesses,
			EstimatedRows:   res.Stats.EstimatedRows,
		},
	})
}

// QueryLog returns the system's query log: a ring of the most recent
// queries (text, latency, resource stats) plus a ring of queries at or
// over the slow threshold, each with a full trace render. nil when
// disabled with Config.QueryLogSize < 0. Attach it to the debug HTTP
// surface with obs.ServeWith, or read it directly (Recent, Slow,
// Snapshot).
func (s *System) QueryLog() *obs.QueryLog { return s.qlog }

// CacheStats reports query-cache hits, misses, current size and the
// latency/age detail of cache.go.
func (s *System) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.stats()
}

// Metrics returns the system's metrics registry. Every layer records
// into it: idm_* (facade and cache), iql_* (query engine), rvm_* and
// stream_* (Resource View Manager), source_<id>_* (plugins). Snapshot
// it for export, or disable it with SetEnabled(false).
func (s *System) Metrics() *obs.Registry { return s.metrics }

// Trace evaluates a query with span-based tracing and returns the
// resolved result together with the parse → plan → eval span tree
// (including per-worker spans for sharded stages). Trace bypasses the
// query cache — its purpose is to show evaluation, not memoization.
func (s *System) Trace(q string) (*Result, *obs.Trace, error) {
	r, tr, err := s.engine.QueryTraced(q)
	if err != nil {
		return nil, tr, err
	}
	return s.buildResult(r), tr, nil
}

// Explain evaluates the query with tracing and returns the rendered
// span tree — an EXPLAIN ANALYZE over the iQL engine. (The package-level
// Explain renders only the normalized parse, without evaluating.)
func (s *System) Explain(q string) (string, error) {
	_, tr, err := s.Trace(q)
	if err != nil {
		return "", err
	}
	return tr.Render(), nil
}

// IndexTraced synchronizes every source like Index, additionally
// recording one span per source with the Figure 5 timing breakdown
// (catalog insert, component indexing, data source access) as span
// attributes.
func (s *System) IndexTraced() (SyncReport, *obs.Trace, error) {
	tr := obs.NewTrace("index")
	rep, err := s.mgr.SyncAllTraced(tr)
	tr.Finish()
	return rep, tr, err
}

// QueryWith evaluates with an explicit expansion strategy, overriding
// the system default for this query.
func (s *System) QueryWith(q string, exp Expansion) (*Result, error) {
	engine := iql.NewEngine(s.mgr, iql.Options{Expansion: exp, Now: s.now, Parallelism: s.par, Planner: s.planner})
	r, err := engine.Query(q)
	if err != nil {
		return nil, err
	}
	return s.buildResult(r), nil
}

// Delete executes an iQL delete statement (`delete <query>`): views
// matched by the inner query are removed from their underlying data
// sources, write-through. Only base items of sources that support
// mutation (filesystems, mail stores) are deletable; derived views and
// read-only sources produce per-item errors. Affected sources are
// resynchronized, so the catalog, indexes and change journal reflect
// the deletions. The returned count is the number of items actually
// removed.
func (s *System) Delete(stmt string) (int, error) {
	parsed, err := iql.ParseWith(stmt, iql.ParseOptions{Now: s.now})
	if err != nil {
		return 0, err
	}
	del, ok := parsed.(*iql.DeleteQuery)
	if !ok {
		return 0, fmt.Errorf("idm: Delete needs a `delete <query>` statement, got %q", stmt)
	}
	res, err := s.engine.Exec(del.Inner)
	if err != nil {
		return 0, err
	}

	var errs []string
	affected := make(map[string]bool)
	deleted := 0
	for _, oid := range res.OIDs() {
		e, err := s.mgr.Entry(oid)
		if err != nil {
			continue
		}
		if e.Derived {
			errs = append(errs, fmt.Sprintf("%s: derived view, delete its base item", e.URI))
			continue
		}
		src, ok := s.mgr.Source(e.Source)
		if !ok {
			errs = append(errs, fmt.Sprintf("%s: source %q gone", e.URI, e.Source))
			continue
		}
		mut, ok := src.(sources.Mutator)
		if !ok {
			errs = append(errs, fmt.Sprintf("%s: source %q is read-only", e.URI, e.Source))
			continue
		}
		if err := mut.Delete(e.URI); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", e.URI, err))
			continue
		}
		deleted++
		affected[e.Source] = true
	}
	for src := range affected {
		if _, err := s.mgr.SyncSource(src); err != nil {
			errs = append(errs, fmt.Sprintf("resync %s: %v", src, err))
		}
	}
	if len(errs) > 0 {
		return deleted, fmt.Errorf("idm: delete: %s", strings.Join(errs, "; "))
	}
	return deleted, nil
}

// QueryRanked evaluates a query and orders the rows by relevance: the
// summed content-occurrence counts of the query's phrases. The result's
// Scores align with Rows.
func (s *System) QueryRanked(q string) (*Result, error) {
	engine := iql.NewEngine(s.mgr, iql.Options{Now: s.now, Rank: true, Parallelism: s.par, Planner: s.planner})
	r, err := engine.Query(q)
	if err != nil {
		return nil, err
	}
	out := s.buildResult(r)
	out.Scores = r.Scores
	return out, nil
}

// Item is one result entry, resolved against the catalog.
type Item struct {
	OID    OID
	Name   string
	Class  string
	Source string
	URI    string
	// Path is the slash-joined name chain from the source root.
	Path string
}

// Row is one result row: one item for path/keyword queries, two for
// joins.
type Row []Item

// Result is a resolved query result.
type Result struct {
	// Columns names the row entries ("view", or the join aliases).
	Columns []string
	Rows    []Row
	// Items flattens the first column.
	Items []Item
	// Plan carries the rule-based planner's notes.
	Plan string
	// Intermediates counts views touched during path expansion.
	Intermediates int
	// Scores aligns with Rows for ranked queries (QueryRanked); nil
	// otherwise.
	Scores []float64
	// Stale reports that at least one source was degraded when the query
	// ran: rows drawn from its replica reflect the last successful sync,
	// not the live source. StaleSources names the degraded sources.
	Stale        bool
	StaleSources []string
	// Stats is the per-query resource accounting: rows scanned, index
	// postings read, views expanded, planner strategy, cache-hit flag.
	Stats QueryStats
}

// Count returns the number of result rows.
func (r *Result) Count() int { return len(r.Rows) }

func (s *System) buildResult(r *iql.Result) *Result {
	out := &Result{
		Columns:       r.Columns,
		Plan:          r.Plan.String(),
		Intermediates: int(r.Plan.Intermediates),
		Stale:         len(r.Plan.StaleSources) > 0,
		StaleSources:  r.Plan.StaleSources,
		Stats:         r.Stats,
	}
	if out.Stale {
		s.met.staleQueries.Inc()
	}
	// Ancestors repeat heavily across the rows of one result; memoize
	// path fragments while resolving it.
	paths := make(map[OID]string)
	for _, row := range r.Rows {
		resolved := make(Row, len(row))
		for i, oid := range row {
			resolved[i] = s.itemMemo(oid, paths)
		}
		out.Rows = append(out.Rows, resolved)
	}
	for _, oid := range r.OIDs() {
		out.Items = append(out.Items, s.itemMemo(oid, paths))
	}
	return out
}

func (s *System) item(oid OID) Item {
	return s.itemMemo(oid, nil)
}

func (s *System) itemMemo(oid OID, paths map[OID]string) Item {
	e, err := s.mgr.Entry(oid)
	if err != nil {
		return Item{OID: oid, Name: "<unknown>"}
	}
	return Item{
		OID:    oid,
		Name:   e.Name,
		Class:  e.Class,
		Source: e.Source,
		URI:    e.URI,
		Path:   s.pathMemo(oid, paths),
	}
}

// Path renders the name chain from the source root to the view,
// following catalog Parent links.
func (s *System) Path(oid OID) string { return s.pathMemo(oid, nil) }

func (s *System) pathMemo(oid OID, memo map[OID]string) string {
	// The depth bound guards against malformed parent cycles.
	return s.pathBounded(oid, memo, 128)
}

func (s *System) pathBounded(oid OID, memo map[OID]string, depth int) string {
	if depth <= 0 {
		return "/..."
	}
	if memo != nil {
		if p, ok := memo[oid]; ok {
			return p
		}
	}
	e, err := s.mgr.Entry(oid)
	if err != nil {
		return "/<unknown>"
	}
	name := e.Name
	if name == "" {
		name = "(" + e.Class + ")"
	}
	var path string
	if e.Parent == 0 {
		path = "/" + name
	} else {
		path = s.pathBounded(e.Parent, memo, depth-1) + "/" + name
	}
	if memo != nil {
		memo[oid] = path
	}
	return path
}

// View returns the live resource view under oid.
func (s *System) View(oid OID) (ResourceView, bool) { return s.mgr.View(oid) }

// Version returns the current dataspace version: logically, each change
// creates a new version of the whole dataspace (§8 of the paper).
func (s *System) Version() uint64 { return s.mgr.Version() }

// Changes returns the change journal records with version > since.
func (s *System) Changes(since uint64) []ChangeRecord { return s.mgr.Changes(since) }

// Lineage returns the provenance chain of a view: itself, the converter
// that derived it (for content subgraphs), its containing base item, and
// the containment chain to the source root, plus any explicit
// derivations recorded with RecordDerivation.
func (s *System) Lineage(oid OID) ([]LineageStep, error) { return s.mgr.Lineage(oid) }

// RecordDerivation records an explicit provenance edge: dst was produced
// from src by the given transformation (e.g. "copy").
func (s *System) RecordDerivation(dst, src OID, how string) {
	s.mgr.RecordDerivation(dst, src, how)
}

// Subscription is a continuous query (an information filter, §4.4.2 of
// the paper): items matching the predicate are delivered on C as the
// Synchronization Manager registers or updates them. Slow consumers
// drop matches rather than blocking the sync.
type Subscription struct {
	// C delivers matching items.
	C      <-chan Item
	cancel func()
}

// Stop ends the subscription; C stops receiving (but is not closed, as
// deliveries may be in flight).
func (sub *Subscription) Stop() { sub.cancel() }

// Subscribe registers a continuous query: a predicate-only iQL
// expression (keyword phrases, attribute and class predicates) that is
// evaluated push-based against every view added or updated by future
// indexing. Path expressions, unions and joins are not supported as
// filters.
func (s *System) Subscribe(query string) (*Subscription, error) {
	parsed, err := iql.ParseWith(query, iql.ParseOptions{Now: s.now})
	if err != nil {
		return nil, err
	}
	pq, ok := parsed.(*iql.PredQuery)
	if !ok {
		return nil, fmt.Errorf("idm: Subscribe needs a predicate query, got %T", parsed)
	}
	isA := s.mgr.Registry().IsA
	ch := make(chan Item, 256)
	cancel := s.mgr.Broker().Subscribe(rvm.TopicAllViews, stream.OperatorFunc(func(e stream.Event) {
		pv, ok := e.View.(*rvm.PublishedView)
		if !ok {
			return
		}
		if !iql.MatchView(pq.Pred, pv.ResourceView, isA, 0) {
			return
		}
		select {
		case ch <- s.item(pv.OID):
		default: // drop on slow consumer
		}
	}))
	return &Subscription{C: ch, cancel: cancel}, nil
}

// Breakdown returns the Table 2 row for a source.
func (s *System) Breakdown(source string) SourceBreakdown { return s.mgr.Breakdown(source) }

// Sizes returns the Table 3 index and replica sizes.
func (s *System) Sizes() IndexSizes { return s.mgr.IndexSizes() }

// NetInputBytes returns the bytes of textual content indexed per source.
func (s *System) NetInputBytes(source string) int64 { return s.mgr.NetInputBytes(source) }

// Sources lists registered source ids.
func (s *System) Sources() []string { return s.mgr.Sources() }

// Compact reclaims index space left behind by deletions (tombstoned
// postings in the name and content indexes). Queries are unaffected;
// run it after bulk removals.
func (s *System) Compact() int { return s.mgr.Compact() }

// SimilarItem is one image-similarity result.
type SimilarItem struct {
	Item
	// Similarity is the cosine similarity of the byte histograms, in
	// [0, 1].
	Similarity float64
}

// SimilarImages returns the k binary-content views most similar to oid
// (histogram cosine similarity). Requires Config.IndexImages; without it
// the index is empty and the result nil.
func (s *System) SimilarImages(oid OID, k int) []SimilarItem {
	hits := s.mgr.SimilarImages(oid, k)
	out := make([]SimilarItem, len(hits))
	for i, h := range hits {
		out[i] = SimilarItem{Item: s.item(h.OID), Similarity: h.Similarity}
	}
	return out
}

// Explain parses a query and returns its normalized rendering, without
// evaluating it.
func Explain(q string) (string, error) {
	parsed, err := iql.Parse(q)
	if err != nil {
		return "", err
	}
	return parsed.String(), nil
}

// Validate checks iQL syntax.
func Validate(q string) error {
	_, err := iql.Parse(q)
	if err != nil {
		return fmt.Errorf("invalid iQL: %w", err)
	}
	return nil
}
