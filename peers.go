package idm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Federation queries multiple PDSMS instances as one logical dataspace —
// the "networks of P2P iMeMex instances" the paper's conclusion plans.
// Each peer keeps its own sources, catalog and indexes; a federated
// query fans out to every peer concurrently and merges the results,
// tagging each row with the peer it came from.
//
// The federation is observable end to end: every query records into the
// federation's own metrics registry (fed_* series, one latency histogram
// and error counter per peer), QueryTraced returns a single merged trace
// with one timed span per peer (adopting each peer's own query trace),
// and FedResult carries per-peer timing and resource stats.
type Federation struct {
	mu    sync.RWMutex
	peers map[string]Peer
	order []string
	inst  map[string]peerInstruments

	reg     *obs.Registry
	queries *obs.Counter
	queryNs *obs.Histogram
	// failures counts per-peer failures across all federated queries
	// (query errors and column mismatches).
	failures *obs.Counter
}

// Peer is what the federation needs from a member: evaluate an iQL query
// string. *System implements it; tests substitute fakes to exercise
// failure and mismatch handling.
type Peer interface {
	Query(q string) (*Result, error)
}

// TracedPeer is an optional Peer extension: peers that can evaluate with
// span tracing contribute their own span tree to the federated trace.
// *System implements it via Trace.
type TracedPeer interface {
	Trace(q string) (*Result, *obs.Trace, error)
}

var (
	_ Peer       = (*System)(nil)
	_ TracedPeer = (*System)(nil)
)

// peerInstruments are one peer's federation-side instruments.
type peerInstruments struct {
	queryNs *obs.Histogram
	errors  *obs.Counter
}

// ErrColumnMismatch marks a peer whose result schema disagreed with the
// federation's merged schema; its rows are dropped and the wrapped error
// recorded per peer in FedResult.Errors.
var ErrColumnMismatch = errors.New("idm: federated peer returned mismatched columns")

// NewFederation returns an empty federation.
func NewFederation() *Federation {
	reg := obs.NewRegistry()
	return &Federation{
		peers:    make(map[string]Peer),
		inst:     make(map[string]peerInstruments),
		reg:      reg,
		queries:  reg.Counter("fed_queries_total"),
		queryNs:  reg.Histogram("fed_query_ns", nil),
		failures: reg.Counter("fed_peer_failures_total"),
	}
}

// AddPeer registers a peer system under a unique name and creates its
// fed_peer_<name>_query_ns / fed_peer_<name>_errors_total instruments.
func (f *Federation) AddPeer(name string, sys Peer) error {
	if name == "" || sys == nil {
		return fmt.Errorf("idm: federation peer needs a name and a system")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.peers[name]; dup {
		return fmt.Errorf("idm: peer %q already registered", name)
	}
	f.peers[name] = sys
	f.order = append(f.order, name)
	sort.Strings(f.order)
	f.inst[name] = peerInstruments{
		queryNs: f.reg.Histogram("fed_peer_"+name+"_query_ns", nil),
		errors:  f.reg.Counter("fed_peer_" + name + "_errors_total"),
	}
	return nil
}

// Peers lists peer names in sorted order.
func (f *Federation) Peers() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string(nil), f.order...)
}

// Metrics returns the federation's own registry: fed_queries_total,
// fed_query_ns, fed_peer_failures_total, and per-peer
// fed_peer_<name>_query_ns / fed_peer_<name>_errors_total.
func (f *Federation) Metrics() *obs.Registry { return f.reg }

// FedRow is one federated result row with its origin peer.
type FedRow struct {
	Peer string
	Row  Row
}

// PeerStats is one peer's contribution to a federated query.
type PeerStats struct {
	// DurationNs is the peer's query latency within the federated call.
	DurationNs int64
	// Rows is the number of rows the peer contributed to the merge (0 on
	// failure or column mismatch).
	Rows int
	// Strategy, Stale and Stats mirror the peer's own Result; zero when
	// the peer failed.
	Strategy string
	Stale    bool
	Stats    QueryStats
	// Err is the peer's failure message ("" on success), mirroring
	// FedResult.Errors.
	Err string
}

// FedResult is a merged federated query result.
type FedResult struct {
	Columns []string
	Rows    []FedRow
	// Errors records peers that failed, by name; a federation degrades
	// gracefully when individual peers are unreachable or reject the
	// query. A peer answering with a different result schema than the
	// merged one is recorded here wrapped in ErrColumnMismatch, and its
	// rows are dropped rather than merged under the wrong columns.
	Errors map[string]error
	// Peers carries per-peer timing and resource stats for every peer
	// that was queried, including failed ones.
	Peers map[string]PeerStats
}

// Count returns the number of merged rows.
func (r *FedResult) Count() int { return len(r.Rows) }

// Query evaluates q on every peer concurrently and merges the rows,
// ordered by peer name then by the peers' own row order. Per-peer
// failures are collected in Errors rather than failing the federation;
// the call errors only when every peer fails.
func (f *Federation) Query(q string) (*FedResult, error) {
	res, _, err := f.query(q, false)
	return res, err
}

// QueryTraced is Query with a single merged trace: the root span covers
// the scatter-gather, with one timed child span per peer annotated with
// the peer's rows, latency and outcome. Peers that support tracing
// (TracedPeer) contribute their own query span tree, grafted under
// their peer span — one trace shows the whole federated evaluation.
func (f *Federation) QueryTraced(q string) (*FedResult, *obs.Trace, error) {
	return f.query(q, true)
}

func (f *Federation) query(q string, traced bool) (*FedResult, *obs.Trace, error) {
	f.mu.RLock()
	names := append([]string(nil), f.order...)
	peers := make([]Peer, len(names))
	insts := make([]peerInstruments, len(names))
	for i, n := range names {
		peers[i] = f.peers[n]
		insts[i] = f.inst[n]
	}
	f.mu.RUnlock()
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("idm: federation has no peers")
	}

	f.queries.Inc()
	t0 := time.Now()
	var trace *obs.Trace
	if traced {
		trace = obs.NewTrace("federated query " + q)
		trace.Root().SetInt("peers", int64(len(names)))
	}

	type answer struct {
		res     *Result
		err     error
		elapsed time.Duration
	}
	answers := make([]answer, len(names))
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := trace.Root().Start("peer " + names[i])
			p0 := time.Now()
			var res *Result
			var err error
			if tp, ok := peers[i].(TracedPeer); ok && traced {
				var ptr *obs.Trace
				res, ptr, err = tp.Trace(q)
				sp.Adopt(ptr.Root())
			} else {
				res, err = peers[i].Query(q)
			}
			elapsed := time.Since(p0)
			insts[i].queryNs.Observe(int64(elapsed))
			if err != nil {
				insts[i].errors.Inc()
				sp.Set("error", err.Error())
			} else {
				sp.SetInt("rows", int64(len(res.Rows)))
			}
			sp.Finish()
			answers[i] = answer{res: res, err: err, elapsed: elapsed}
		}(i)
	}
	wg.Wait()

	out := &FedResult{
		Errors: make(map[string]error),
		Peers:  make(map[string]PeerStats, len(names)),
	}
	failures := 0
	fail := func(i int, name string, err error) {
		out.Errors[name] = err
		out.Peers[name] = PeerStats{
			DurationNs: int64(answers[i].elapsed),
			Err:        err.Error(),
		}
		f.failures.Inc()
		failures++
	}
	for i, name := range names {
		if answers[i].err != nil {
			fail(i, name, answers[i].err)
			continue
		}
		res := answers[i].res
		if out.Columns == nil {
			out.Columns = res.Columns
		} else if !equalColumns(out.Columns, res.Columns) {
			// A peer answering a different shape (e.g. a join against
			// path results) cannot merge row-wise; dropping its rows and
			// surfacing the mismatch beats silently mixing schemas.
			insts[i].errors.Inc()
			fail(i, name, fmt.Errorf("%w: peer %q returned %v, federation merged %v",
				ErrColumnMismatch, name, res.Columns, out.Columns))
			continue
		}
		out.Peers[name] = PeerStats{
			DurationNs: int64(answers[i].elapsed),
			Rows:       len(res.Rows),
			Strategy:   res.Stats.Strategy,
			Stale:      res.Stale,
			Stats:      res.Stats,
		}
		for _, row := range res.Rows {
			out.Rows = append(out.Rows, FedRow{Peer: name, Row: row})
		}
	}
	f.queryNs.ObserveSince(t0)
	if trace != nil {
		trace.Root().SetInt("rows", int64(len(out.Rows)))
		trace.Root().SetInt("failures", int64(failures))
		trace.Finish()
	}
	if failures == len(names) {
		return nil, trace, fmt.Errorf("idm: all %d peers failed, first error: %w", failures, out.Errors[names[0]])
	}
	return out, trace, nil
}

func equalColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
