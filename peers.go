package idm

import (
	"fmt"
	"sort"
	"sync"
)

// Federation queries multiple PDSMS instances as one logical dataspace —
// the "networks of P2P iMeMex instances" the paper's conclusion plans.
// Each peer keeps its own sources, catalog and indexes; a federated
// query fans out to every peer concurrently and merges the results,
// tagging each row with the peer it came from.
type Federation struct {
	mu    sync.RWMutex
	peers map[string]*System
	order []string
}

// NewFederation returns an empty federation.
func NewFederation() *Federation {
	return &Federation{peers: make(map[string]*System)}
}

// AddPeer registers a peer system under a unique name.
func (f *Federation) AddPeer(name string, sys *System) error {
	if name == "" || sys == nil {
		return fmt.Errorf("idm: federation peer needs a name and a system")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.peers[name]; dup {
		return fmt.Errorf("idm: peer %q already registered", name)
	}
	f.peers[name] = sys
	f.order = append(f.order, name)
	sort.Strings(f.order)
	return nil
}

// Peers lists peer names in sorted order.
func (f *Federation) Peers() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string(nil), f.order...)
}

// FedRow is one federated result row with its origin peer.
type FedRow struct {
	Peer string
	Row  Row
}

// FedResult is a merged federated query result.
type FedResult struct {
	Columns []string
	Rows    []FedRow
	// Errors records peers that failed, by name; a federation degrades
	// gracefully when individual peers are unreachable or reject the
	// query.
	Errors map[string]error
}

// Count returns the number of merged rows.
func (r *FedResult) Count() int { return len(r.Rows) }

// Query evaluates q on every peer concurrently and merges the rows,
// ordered by peer name then by the peers' own row order. Per-peer
// failures are collected in Errors rather than failing the federation;
// the call errors only when every peer fails.
func (f *Federation) Query(q string) (*FedResult, error) {
	f.mu.RLock()
	names := append([]string(nil), f.order...)
	peers := make([]*System, len(names))
	for i, n := range names {
		peers[i] = f.peers[n]
	}
	f.mu.RUnlock()
	if len(names) == 0 {
		return nil, fmt.Errorf("idm: federation has no peers")
	}

	type answer struct {
		res *Result
		err error
	}
	answers := make([]answer, len(names))
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := peers[i].Query(q)
			answers[i] = answer{res: res, err: err}
		}(i)
	}
	wg.Wait()

	out := &FedResult{Errors: make(map[string]error)}
	failures := 0
	for i, name := range names {
		if answers[i].err != nil {
			out.Errors[name] = answers[i].err
			failures++
			continue
		}
		res := answers[i].res
		if out.Columns == nil {
			out.Columns = res.Columns
		}
		for _, row := range res.Rows {
			out.Rows = append(out.Rows, FedRow{Peer: name, Row: row})
		}
	}
	if failures == len(names) {
		return nil, fmt.Errorf("idm: all %d peers failed, first error: %w", failures, out.Errors[names[0]])
	}
	return out, nil
}
