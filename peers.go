package idm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Federation queries multiple PDSMS instances as one logical dataspace —
// the "networks of P2P iMeMex instances" the paper's conclusion plans.
// Each peer keeps its own sources, catalog and indexes; a federated
// query fans out to every peer concurrently and merges the results,
// tagging each row with the peer it came from.
//
// The federation is observable end to end: every query records into the
// federation's own metrics registry (fed_* series, one latency histogram
// and error counter per peer), QueryTraced returns a single merged trace
// with one timed span per peer (adopting each peer's own query trace),
// and FedResult carries per-peer timing and resource stats.
type Federation struct {
	mu    sync.RWMutex
	peers map[string]Peer
	// replicas holds each peer's read replicas (AddPeerReplicas): the
	// hedging and failover targets for that peer's slice of the
	// dataspace.
	replicas map[string][]Peer
	order    []string
	inst     map[string]peerInstruments
	policy   FedPolicy

	reg     *obs.Registry
	queries *obs.Counter
	queryNs *obs.Histogram
	// failures counts per-peer failures across all federated queries
	// (query errors and column mismatches).
	failures *obs.Counter
	// hedges counts hedged requests sent to peer replicas; timeouts
	// counts peers cut off by the per-peer deadline.
	hedges   *obs.Counter
	timeouts *obs.Counter
}

// FedPolicy tunes the federation's scatter-gather tail-latency
// behaviour. The zero value (no deadline, no hedging) preserves the
// plain fan-out.
type FedPolicy struct {
	// PeerTimeout bounds how long the federation waits for one peer; a
	// peer still unanswered at the deadline is recorded as failed with
	// ErrPeerTimeout (its late answer is discarded). Zero waits forever.
	PeerTimeout time.Duration
	// HedgeAfter, for peers that have replicas, sends a hedged copy of
	// the query to the peer's first replica when the primary has not
	// answered within this delay; the first successful answer wins.
	// Zero disables hedging (a failed primary still fails over to the
	// replica immediately).
	HedgeAfter time.Duration
}

// SetPolicy installs the scatter-gather policy for subsequent queries.
func (f *Federation) SetPolicy(p FedPolicy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policy = p
}

// ErrPeerTimeout marks a peer that did not answer within
// FedPolicy.PeerTimeout; recorded per peer in FedResult.Errors.
var ErrPeerTimeout = errors.New("idm: federated peer timed out")

// Peer is what the federation needs from a member: evaluate an iQL query
// string. *System implements it; tests substitute fakes to exercise
// failure and mismatch handling.
type Peer interface {
	Query(q string) (*Result, error)
}

// TracedPeer is an optional Peer extension: peers that can evaluate with
// span tracing contribute their own span tree to the federated trace.
// *System implements it via Trace.
type TracedPeer interface {
	Trace(q string) (*Result, *obs.Trace, error)
}

var (
	_ Peer       = (*System)(nil)
	_ TracedPeer = (*System)(nil)
)

// peerInstruments are one peer's federation-side instruments.
type peerInstruments struct {
	queryNs *obs.Histogram
	errors  *obs.Counter
}

// ErrColumnMismatch marks a peer whose result schema disagreed with the
// federation's merged schema; its rows are dropped and the wrapped error
// recorded per peer in FedResult.Errors.
var ErrColumnMismatch = errors.New("idm: federated peer returned mismatched columns")

// NewFederation returns an empty federation.
func NewFederation() *Federation {
	reg := obs.NewRegistry()
	return &Federation{
		peers:    make(map[string]Peer),
		replicas: make(map[string][]Peer),
		inst:     make(map[string]peerInstruments),
		reg:      reg,
		queries:  reg.Counter("fed_queries_total"),
		queryNs:  reg.Histogram("fed_query_ns", nil),
		failures: reg.Counter("fed_peer_failures_total"),
		hedges:   reg.Counter("fed_hedges_total"),
		timeouts: reg.Counter("fed_peer_timeouts_total"),
	}
}

// AddPeerReplicas attaches read replicas to an already-registered peer.
// Replicas answer hedged requests (FedPolicy.HedgeAfter) and catch
// failover when the primary errors; a lagging replica's rows arrive
// flagged Stale like any other stale result.
func (f *Federation) AddPeerReplicas(name string, replicas ...Peer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.peers[name]; !ok {
		return fmt.Errorf("idm: peer %q not registered", name)
	}
	for _, r := range replicas {
		if r == nil {
			return fmt.Errorf("idm: nil replica for peer %q", name)
		}
	}
	f.replicas[name] = append(f.replicas[name], replicas...)
	return nil
}

// AddPeer registers a peer system under a unique name and creates its
// fed_peer_<name>_query_ns / fed_peer_<name>_errors_total instruments.
func (f *Federation) AddPeer(name string, sys Peer) error {
	if name == "" || sys == nil {
		return fmt.Errorf("idm: federation peer needs a name and a system")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.peers[name]; dup {
		return fmt.Errorf("idm: peer %q already registered", name)
	}
	f.peers[name] = sys
	f.order = append(f.order, name)
	sort.Strings(f.order)
	f.inst[name] = peerInstruments{
		queryNs: f.reg.Histogram("fed_peer_"+name+"_query_ns", nil),
		errors:  f.reg.Counter("fed_peer_" + name + "_errors_total"),
	}
	return nil
}

// Peers lists peer names in sorted order.
func (f *Federation) Peers() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string(nil), f.order...)
}

// Metrics returns the federation's own registry: fed_queries_total,
// fed_query_ns, fed_peer_failures_total, and per-peer
// fed_peer_<name>_query_ns / fed_peer_<name>_errors_total.
func (f *Federation) Metrics() *obs.Registry { return f.reg }

// FedRow is one federated result row with its origin peer.
type FedRow struct {
	Peer string
	Row  Row
}

// PeerStats is one peer's contribution to a federated query.
type PeerStats struct {
	// DurationNs is the peer's query latency within the federated call.
	DurationNs int64
	// Rows is the number of rows the peer contributed to the merge (0 on
	// failure or column mismatch).
	Rows int
	// Strategy, Stale and Stats mirror the peer's own Result; zero when
	// the peer failed.
	Strategy string
	Stale    bool
	Stats    QueryStats
	// Hedged reports that a hedged (or failover) request was sent to one
	// of the peer's replicas during this query.
	Hedged bool
	// Err is the peer's failure message ("" on success), mirroring
	// FedResult.Errors.
	Err string
}

// FedResult is a merged federated query result.
type FedResult struct {
	Columns []string
	Rows    []FedRow
	// Errors records peers that failed, by name; a federation degrades
	// gracefully when individual peers are unreachable or reject the
	// query. A peer answering with a different result schema than the
	// merged one is recorded here wrapped in ErrColumnMismatch, and its
	// rows are dropped rather than merged under the wrong columns.
	Errors map[string]error
	// Peers carries per-peer timing and resource stats for every peer
	// that was queried, including failed ones.
	Peers map[string]PeerStats
	// Stale reports that at least one contributing answer was stale —
	// a degraded source on a peer, or a lagging read replica answering
	// a hedged request. StalePeers names them.
	Stale      bool
	StalePeers []string
}

// Count returns the number of merged rows.
func (r *FedResult) Count() int { return len(r.Rows) }

// Query evaluates q on every peer concurrently and merges the rows,
// ordered by peer name then by the peers' own row order. Per-peer
// failures are collected in Errors rather than failing the federation;
// the call errors only when every peer fails.
func (f *Federation) Query(q string) (*FedResult, error) {
	res, _, err := f.query(q, false)
	return res, err
}

// QueryTraced is Query with a single merged trace: the root span covers
// the scatter-gather, with one timed child span per peer annotated with
// the peer's rows, latency and outcome. Peers that support tracing
// (TracedPeer) contribute their own query span tree, grafted under
// their peer span — one trace shows the whole federated evaluation.
func (f *Federation) QueryTraced(q string) (*FedResult, *obs.Trace, error) {
	return f.query(q, true)
}

// peerAnswer is one peer's outcome within a federated query.
type peerAnswer struct {
	res     *Result
	trace   *obs.Trace
	err     error
	elapsed time.Duration
	hedged  bool
}

// ask queries one peer, applying the per-peer deadline and, when the
// peer has replicas, hedging and failover: a hedged copy goes to the
// first replica after HedgeAfter (or immediately when the primary
// errors), and the first successful answer wins. When everything fails
// the PRIMARY's error is returned — callers and the all-fail path
// depend on that error surviving unwrapping.
func (f *Federation) ask(primary Peer, replicas []Peer, pol FedPolicy, name, q string, traced bool) peerAnswer {
	start := time.Now()
	type outcome struct {
		res    *Result
		tr     *obs.Trace
		err    error
		hedged bool
	}
	// Buffered for every request this call can launch: late answers
	// (after a timeout return) park in the buffer and the goroutines
	// exit; nothing leaks.
	ch := make(chan outcome, 1+len(replicas))
	run := func(p Peer, hedged bool) {
		var res *Result
		var tr *obs.Trace
		var err error
		if tp, ok := p.(TracedPeer); ok && traced {
			res, tr, err = tp.Trace(q)
		} else {
			res, err = p.Query(q)
		}
		ch <- outcome{res: res, tr: tr, err: err, hedged: hedged}
	}
	go run(primary, false)

	var hedgeC, deadC <-chan time.Time
	if pol.HedgeAfter > 0 && len(replicas) > 0 {
		hedgeTimer := time.NewTimer(pol.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	if pol.PeerTimeout > 0 {
		deadTimer := time.NewTimer(pol.PeerTimeout)
		defer deadTimer.Stop()
		deadC = deadTimer.C
	}

	pending := 1
	hedges := 0
	anyHedged := false
	var primaryErr error
	hedge := func() {
		if hedges < len(replicas) {
			f.hedges.Inc()
			anyHedged = true
			pending++
			go run(replicas[hedges], true)
			hedges++
		}
	}
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				return peerAnswer{res: o.res, trace: o.tr, elapsed: time.Since(start), hedged: anyHedged}
			}
			if !o.hedged {
				primaryErr = o.err
			}
			// Failover: an errored request immediately tries the next
			// replica, independent of the hedge delay.
			hedge()
			if pending == 0 {
				err := primaryErr
				if err == nil {
					err = o.err
				}
				return peerAnswer{err: err, elapsed: time.Since(start), hedged: anyHedged}
			}
		case <-hedgeC:
			hedgeC = nil
			hedge()
		case <-deadC:
			f.timeouts.Inc()
			return peerAnswer{
				err:     fmt.Errorf("%w: peer %q after %v", ErrPeerTimeout, name, pol.PeerTimeout),
				elapsed: time.Since(start),
				hedged:  anyHedged,
			}
		}
	}
}

func (f *Federation) query(q string, traced bool) (*FedResult, *obs.Trace, error) {
	f.mu.RLock()
	names := append([]string(nil), f.order...)
	peers := make([]Peer, len(names))
	reps := make([][]Peer, len(names))
	insts := make([]peerInstruments, len(names))
	for i, n := range names {
		peers[i] = f.peers[n]
		reps[i] = append([]Peer(nil), f.replicas[n]...)
		insts[i] = f.inst[n]
	}
	pol := f.policy
	f.mu.RUnlock()
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("idm: federation has no peers")
	}

	f.queries.Inc()
	t0 := time.Now()
	var trace *obs.Trace
	if traced {
		trace = obs.NewTrace("federated query " + q)
		trace.Root().SetInt("peers", int64(len(names)))
	}

	answers := make([]peerAnswer, len(names))
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := trace.Root().Start("peer " + names[i])
			a := f.ask(peers[i], reps[i], pol, names[i], q, traced)
			insts[i].queryNs.Observe(int64(a.elapsed))
			if a.trace != nil {
				sp.Adopt(a.trace.Root())
			}
			if a.hedged {
				sp.Set("hedged", "true")
			}
			if a.err != nil {
				insts[i].errors.Inc()
				sp.Set("error", a.err.Error())
			} else {
				sp.SetInt("rows", int64(len(a.res.Rows)))
			}
			sp.Finish()
			answers[i] = a
		}(i)
	}
	wg.Wait()

	out := &FedResult{
		Errors: make(map[string]error),
		Peers:  make(map[string]PeerStats, len(names)),
	}
	failures := 0
	fail := func(i int, name string, err error) {
		out.Errors[name] = err
		out.Peers[name] = PeerStats{
			DurationNs: int64(answers[i].elapsed),
			Hedged:     answers[i].hedged,
			Err:        err.Error(),
		}
		f.failures.Inc()
		failures++
	}
	for i, name := range names {
		if answers[i].err != nil {
			fail(i, name, answers[i].err)
			continue
		}
		res := answers[i].res
		if out.Columns == nil {
			out.Columns = res.Columns
		} else if !equalColumns(out.Columns, res.Columns) {
			// A peer answering a different shape (e.g. a join against
			// path results) cannot merge row-wise; dropping its rows and
			// surfacing the mismatch beats silently mixing schemas.
			insts[i].errors.Inc()
			fail(i, name, fmt.Errorf("%w: peer %q returned %v, federation merged %v",
				ErrColumnMismatch, name, res.Columns, out.Columns))
			continue
		}
		out.Peers[name] = PeerStats{
			DurationNs: int64(answers[i].elapsed),
			Rows:       len(res.Rows),
			Strategy:   res.Stats.Strategy,
			Stale:      res.Stale,
			Stats:      res.Stats,
			Hedged:     answers[i].hedged,
		}
		if res.Stale {
			// Lag-aware merge: a stale contribution (degraded source or
			// lagging replica) flags the whole federated result, naming
			// the peer, mirroring Result.Stale/StaleSources.
			out.Stale = true
			out.StalePeers = append(out.StalePeers, name)
		}
		for _, row := range res.Rows {
			out.Rows = append(out.Rows, FedRow{Peer: name, Row: row})
		}
	}
	f.queryNs.ObserveSince(t0)
	if trace != nil {
		trace.Root().SetInt("rows", int64(len(out.Rows)))
		trace.Root().SetInt("failures", int64(failures))
		trace.Finish()
	}
	if failures == len(names) {
		return nil, trace, fmt.Errorf("idm: all %d peers failed, first error: %w", failures, out.Errors[names[0]])
	}
	return out, trace, nil
}

func equalColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
