package idm_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	idm "repro"
	"repro/internal/store"
	"repro/internal/vfs"
)

// durableFS builds the deterministic fixture the durability tests sync:
// a LaTeX paper (whose converter output adds derived section/figure/ref
// views) plus a plain note. The filesystem clock is pinned so the
// mtime-derived stamps — and therefore the WAL bytes — are identical
// across runs.
func durableFS() *vfs.FS {
	fs := vfs.NewWithClock(fixedNow)
	fs.MkdirAll("/papers/VLDB2006")
	fs.WriteFile("/papers/VLDB2006/vldb.tex", []byte(
		"\\section{Introduction} Mike Franklin dataspaces vision \\ref{fig:index}\n"+
			"\\section{GrandVision} Franklin agrees systems\n"+
			"\\begin{figure}\\label{fig:index} indexing time plot \\end{figure}\n"))
	fs.WriteFile("/papers/notes.txt", []byte("dataspaces reading notes"))
	return fs
}

// crashBackends are the storage backends every crash-safety matrix in
// this file runs against (see docs/PERSISTENCE.md).
var crashBackends = []idm.StorageBackend{idm.BackendWAL, idm.BackendCompact}

func durableConfig(dir string, inj *idm.FaultInjector) idm.Config {
	return durableConfigB(dir, idm.BackendWAL, inj)
}

func durableConfigB(dir string, b idm.StorageBackend, inj *idm.FaultInjector) idm.Config {
	return idm.Config{DataDir: dir, Backend: b, Now: fixedNow, Parallelism: 1, Faults: inj}
}

// logRelPaths lists the append-log files under a data directory,
// relative to it, sorted: the WAL backend's wal/seg-*.wal segments
// and/or the compact backend's compact/tail.wal.
func logRelPaths(t *testing.T, dir string) []string {
	t.Helper()
	var rels []string
	if ents, err := os.ReadDir(filepath.Join(dir, "wal")); err == nil {
		for _, e := range ents {
			rels = append(rels, filepath.Join("wal", e.Name()))
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "compact", "tail.wal")); err == nil {
		rels = append(rels, filepath.Join("compact", "tail.wal"))
	}
	if len(rels) == 0 {
		t.Fatalf("no append-log files under %s", dir)
	}
	sort.Strings(rels)
	return rels
}

// walPrefixDigests merge-replays the append logs under dir in LSN
// order — exactly as recovery does — and returns the state digest after
// every record prefix: digests[k] is the digest with the first k records
// applied, so digests[0] is the empty state and digests[len-1] the full
// one. Works for both backends: the compact backend's tail.wal uses the
// same frame format as the WAL backend's segments.
func walPrefixDigests(t *testing.T, dir string) []string {
	t.Helper()
	type walRec struct {
		lsn uint64
		rec store.Record
	}
	var all []walRec
	for _, rel := range logRelPaths(t, dir) {
		b, err := os.ReadFile(filepath.Join(dir, rel))
		if err != nil {
			t.Fatal(err)
		}
		res, err := store.ReplayBytes(b, func(lsn uint64, rec store.Record) error {
			all = append(all, walRec{lsn, rec})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Warning != "" {
			t.Fatalf("reference log %s not clean: %s", rel, res.Warning)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].lsn < all[j].lsn })
	st := store.NewState()
	digests := []string{st.Digest()}
	for _, wr := range all {
		st.Apply(wr.rec)
		digests = append(digests, st.Digest())
	}
	return digests
}

// assertSegmentPrefixes asserts that every append-log file the crashed
// run left behind is a byte-prefix of the reference run's same-named
// file: a crash — at a boundary or mid-record — can only lose tail
// bytes of the deterministic append stream, never diverge from it.
func assertSegmentPrefixes(t *testing.T, crashedDir, refDir string) {
	t.Helper()
	for _, rel := range logRelPaths(t, crashedDir) {
		got, err := os.ReadFile(filepath.Join(crashedDir, rel))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(refDir, rel))
		if err != nil {
			t.Fatalf("crashed run wrote log %s the reference run never had: %v", rel, err)
		}
		if len(got) > len(want) || !bytes.Equal(got, want[:len(got)]) {
			t.Errorf("log %s of the crashed run is not a byte-prefix of the reference (%d vs %d bytes)",
				rel, len(got), len(want))
		}
	}
}

// TestCrashMatrix is the crash matrix of ISSUE 5: a scripted sync is
// killed at every WAL record boundary (crash before append k) and
// mid-record (crash halfway through writing record k), the directory is
// recovered, and the recovered graph must be byte-equal — via the stable
// serialization digest — to the reference run's state at the same
// prefix. Re-syncing the source afterwards must converge byte-equal to
// the reference final state.
func TestCrashMatrix(t *testing.T) {
	for _, backend := range crashBackends {
		t.Run(backend.String(), func(t *testing.T) { crashMatrix(t, backend) })
	}
}

func crashMatrix(t *testing.T, backend idm.StorageBackend) {
	fs := durableFS()

	// Reference run: the same scripted sync with no faults.
	refDir := t.TempDir()
	ref, _, err := idm.OpenDurable(durableConfigB(refDir, backend, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Index(); err != nil {
		t.Fatal(err)
	}
	refFinal := ref.StateDigest()
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	prefixes := walPrefixDigests(t, refDir)
	n := len(prefixes) - 1
	if n < 5 {
		t.Fatalf("reference run logged only %d records; fixture too small for a matrix", n)
	}
	if prefixes[n] != refFinal {
		t.Fatalf("reference replay digest %s != live digest %s", prefixes[n], refFinal)
	}
	t.Logf("crash matrix over %d WAL records × 2 crash modes", n)

	modes := []struct {
		name  string
		point string
	}{
		{"boundary", store.FaultAppend}, // crash before record k is written
		{"torn", store.FaultTorn},       // crash after half of record k is written
	}
	for _, mode := range modes {
		for k := 1; k <= n; k++ {
			t.Run(fmt.Sprintf("%s/record-%02d", mode.name, k), func(t *testing.T) {
				dir := t.TempDir()
				inj := idm.NewFaultInjector(1)
				inj.Add(idm.FaultRule{Point: mode.point, Kind: idm.FaultError, After: k - 1, Times: 1})
				sys, _, err := idm.OpenDurable(durableConfigB(dir, backend, inj))
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.AddFileSystem("filesystem", fs); err != nil {
					t.Fatal(err)
				}
				if _, err := sys.Index(); err == nil {
					t.Fatal("injected crash did not abort the sync")
				}
				sys.Close()

				assertSegmentPrefixes(t, dir, refDir)

				// Recover. Both crash modes lose exactly record k and
				// everything after it: the recovered graph must be
				// byte-equal to the reference prefix of k-1 records.
				re, info, err := idm.OpenDurable(durableConfigB(dir, backend, nil))
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				if got := re.StateDigest(); got != prefixes[k-1] {
					t.Fatalf("recovered digest != reference prefix digest after %d records\n got %s\nwant %s",
						k-1, got, prefixes[k-1])
				}
				if mode.point == store.FaultTorn {
					if info.TornTails == 0 || len(info.Warnings) == 0 {
						t.Fatalf("mid-record crash recovered without a torn-tail warning: %+v", info)
					}
				} else if len(info.Warnings) != 0 {
					t.Fatalf("boundary crash recovery should be clean, got warnings: %v", info.Warnings)
				}

				// Re-adding the source and re-syncing converges on the
				// reference final state, byte for byte.
				if err := re.AddFileSystem("filesystem", fs); err != nil {
					t.Fatal(err)
				}
				if _, err := re.Index(); err != nil {
					t.Fatalf("post-recovery sync: %v", err)
				}
				if got := re.StateDigest(); got != refFinal {
					t.Fatalf("post-recovery resync diverged from reference\n got %s\nwant %s", got, refFinal)
				}
				if err := re.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCrashDuringSnapshot kills the store at the snapshot fault point:
// the checkpoint fails, but the WAL is intact and recovery still
// reproduces the full state.
func TestCrashDuringSnapshot(t *testing.T) {
	for _, backend := range crashBackends {
		t.Run(backend.String(), func(t *testing.T) { crashDuringSnapshot(t, backend) })
	}
}

func crashDuringSnapshot(t *testing.T, backend idm.StorageBackend) {
	fs := durableFS()
	dir := t.TempDir()
	inj := idm.NewFaultInjector(1)
	inj.Add(idm.FaultRule{Point: "store/snapshot/write", Kind: idm.FaultError, Times: 1})
	sys, _, err := idm.OpenDurable(durableConfigB(dir, backend, inj))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	want := sys.StateDigest()
	if err := sys.Checkpoint(); err == nil {
		t.Fatal("injected snapshot crash did not surface")
	}
	sys.Close()

	re, info, err := idm.OpenDurable(durableConfigB(dir, backend, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.SnapshotSeq != 0 {
		t.Fatalf("crashed checkpoint left snapshot %d", info.SnapshotSeq)
	}
	if re.StateDigest() != want {
		t.Fatal("recovery after snapshot crash lost state")
	}
}

// TestDoubleCrashDuringRecovery crashes the system a second time while
// it is STILL RECOVERING from the first crash — the replay loop itself
// is killed at every record position — and then recovers cleanly. The
// matrix proves recovery is idempotent and re-entrant: a crash during
// replay destroys nothing, and the eventual clean recovery reaches the
// exact reference state no matter where the replay died.
func TestDoubleCrashDuringRecovery(t *testing.T) {
	for _, backend := range crashBackends {
		t.Run(backend.String(), func(t *testing.T) { doubleCrashDuringRecovery(t, backend) })
	}
}

func doubleCrashDuringRecovery(t *testing.T, backend idm.StorageBackend) {
	fs := durableFS()
	dir := t.TempDir()
	sys, _, err := idm.OpenDurable(durableConfigB(dir, backend, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	want := sys.StateDigest()
	// First crash: the process dies without a clean close.
	sys.Close()

	prefixes := walPrefixDigests(t, dir)
	n := len(prefixes) - 1
	if n < 5 {
		t.Fatalf("fixture logged only %d records", n)
	}
	for k := 1; k <= n; k++ {
		t.Run(fmt.Sprintf("replay-crash-at-%02d", k), func(t *testing.T) {
			// Second crash: recovery itself dies at replayed record k.
			inj := idm.NewFaultInjector(1)
			inj.Add(idm.FaultRule{Point: store.FaultReplay, Kind: idm.FaultError, After: k - 1, Times: 1})
			if _, _, err := idm.OpenDurable(durableConfigB(dir, backend, inj)); err == nil {
				t.Fatal("injected replay crash did not abort recovery")
			} else if !errors.Is(err, store.ErrCrashed) {
				t.Fatalf("replay crash error = %v, want store.ErrCrashed", err)
			}

			// Third open, clean: recovery must be unaffected by having
			// been killed mid-replay and reach the full reference state.
			re, info, err := idm.OpenDurable(durableConfigB(dir, backend, nil))
			if err != nil {
				t.Fatalf("recovery after replay crash: %v", err)
			}
			defer re.Close()
			if len(info.Warnings) != 0 {
				t.Fatalf("re-entrant recovery produced warnings: %v", info.Warnings)
			}
			if got := re.StateDigest(); got != want {
				t.Fatalf("re-entrant recovery diverged\n got %s\nwant %s", got, want)
			}
		})
	}
}
