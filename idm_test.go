package idm_test

import (
	"strings"
	"testing"
	"time"

	idm "repro"
)

// paperQueries are the eight evaluation queries of Table 4, with two
// parameter adaptations for the synthetic dataset documented in
// EXPERIMENTS.md: Q3's size threshold fits the synthetic file sizes, and
// Q7 selects figures by name pattern and class on one step (our LaTeX
// converter emits figures as leaf environment views).
var paperQueries = map[string]string{
	"Q1": `"database"`,
	"Q2": `"database tuning"`,
	"Q3": `[size > 4200 and lastmodified < @12.06.2005]`,
	"Q4": `//papers//*Vision/*["Franklin"]`,
	"Q5": `//VLDB200?//?onclusion*/*["systems"]`,
	"Q6": `union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])`,
	"Q7": `join( //VLDB2006//*[class="texref"] as A, //VLDB2006//figure*[class="environment"] as B, A.name=B.tuple.label)`,
	"Q8": `join( //*[class="emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )`,
}

func fixedNow() time.Time {
	return time.Date(2005, 6, 15, 10, 0, 0, 0, time.UTC)
}

func openIndexed(t *testing.T) *idm.System {
	t.Helper()
	d := idm.GenerateDataset(idm.DatasetConfig{Scale: 0.02, Seed: 42})
	sys, err := idm.OpenDataset(d, idm.Config{Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sys.Index()
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalViews() == 0 {
		t.Fatal("indexing registered no views")
	}
	return sys
}

func TestEndToEndPaperQueries(t *testing.T) {
	sys := openIndexed(t)
	counts := map[string]int{}
	for name, q := range paperQueries {
		res, err := sys.Query(q)
		if err != nil {
			t.Fatalf("%s (%s): %v", name, q, err)
		}
		counts[name] = res.Count()
		if res.Count() == 0 {
			t.Errorf("%s returned no results: %s", name, q)
		}
	}
	t.Logf("query result counts: %v", counts)
	// Shape assertions mirroring Table 4's selectivity ordering.
	if counts["Q2"] >= counts["Q1"] {
		t.Errorf("Q2 (phrase, %d) should be rarer than Q1 (keyword, %d)", counts["Q2"], counts["Q1"])
	}
	if counts["Q4"] > 10 {
		t.Errorf("Q4 should be highly selective, got %d", counts["Q4"])
	}
	// Q8 must find at least the two planted attachment/paper name pairs.
	if counts["Q8"] < 2 {
		t.Errorf("Q8 = %d, want >= 2 planted matches", counts["Q8"])
	}
}

func TestExpansionStrategiesAgree(t *testing.T) {
	sys := openIndexed(t)
	for name, q := range paperQueries {
		fwd, err := sys.QueryWith(q, idm.Forward)
		if err != nil {
			t.Fatalf("%s forward: %v", name, err)
		}
		bwd, err := sys.QueryWith(q, idm.Backward)
		if err != nil {
			t.Fatalf("%s backward: %v", name, err)
		}
		auto, err := sys.QueryWith(q, idm.Auto)
		if err != nil {
			t.Fatalf("%s auto: %v", name, err)
		}
		if fwd.Count() != bwd.Count() || fwd.Count() != auto.Count() {
			t.Errorf("%s: forward=%d backward=%d auto=%d", name, fwd.Count(), bwd.Count(), auto.Count())
		}
	}
}

func TestIntroductionQuery1(t *testing.T) {
	// Query 1 of the paper's introduction: LaTeX Introduction sections
	// pertaining to project PIM that contain "Mike Franklin".
	sys := openIndexed(t)
	res, err := sys.Query(`//PIM//Introduction[class="latex_section" and "Mike Franklin"]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() == 0 {
		t.Fatal("Query 1 found nothing")
	}
	for _, item := range res.Items {
		if item.Name != "Introduction" || item.Class != "latex_section" {
			t.Errorf("item = %+v", item)
		}
		if !strings.Contains(item.Path, "PIM") {
			t.Errorf("result not under PIM: %s", item.Path)
		}
	}
}

func TestIntroductionQuery2(t *testing.T) {
	// Query 2 of the introduction: documents pertaining to project OLAP
	// with a figure whose label/caption mentions "Indexing time" —
	// crossing the filesystem and the email attachments.
	sys := openIndexed(t)
	res, err := sys.Query(`//OLAP//[class="figure" and "Indexing time"]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() < 2 {
		t.Fatalf("Query 2 = %d results, want >= 2 (file + attachment)", res.Count())
	}
	srcs := map[string]bool{}
	for _, item := range res.Items {
		srcs[item.Source] = true
	}
	if !srcs["filesystem"] || !srcs["email"] {
		t.Errorf("Query 2 should cross subsystems, got sources %v", srcs)
	}
}

func TestRefreshPicksUpChanges(t *testing.T) {
	d := idm.GenerateDataset(idm.DatasetConfig{Scale: 0.01, Seed: 1})
	sys, err := idm.OpenDataset(d, idm.Config{Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	before, _ := sys.Query(`"xyzzyplugh"`)
	if before.Count() != 0 {
		t.Fatal("sentinel already present")
	}
	d.FS.WriteFile("/private/sentinel.txt", []byte("xyzzyplugh appears"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		ids, err := sys.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("change notification never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	after, err := sys.Query(`"xyzzyplugh"`)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count() != 1 {
		t.Errorf("after refresh: %d results", after.Count())
	}
}

func TestPathRendering(t *testing.T) {
	sys := openIndexed(t)
	res, err := sys.Query(`//papers//*Vision`)
	if err != nil || res.Count() == 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	p := res.Items[0].Path
	if !strings.HasPrefix(p, "/filesystem/papers/") {
		t.Errorf("path = %q", p)
	}
	if !strings.Contains(p, "Vision") {
		t.Errorf("path lacks the view name: %q", p)
	}
}

func TestJoinRowsResolved(t *testing.T) {
	sys := openIndexed(t)
	res, err := sys.Query(paperQueries["Q8"])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "A" || res.Columns[1] != "B" {
		t.Fatalf("columns = %v", res.Columns)
	}
	for _, row := range res.Rows {
		if len(row) != 2 {
			t.Fatalf("row arity = %d", len(row))
		}
		if row[0].Name != row[1].Name {
			t.Errorf("join key mismatch: %q vs %q", row[0].Name, row[1].Name)
		}
		if row[0].Source != "email" || row[1].Source != "filesystem" {
			t.Errorf("row sources = %q, %q", row[0].Source, row[1].Source)
		}
	}
}

func TestBreakdownAndSizes(t *testing.T) {
	sys := openIndexed(t)
	fsB := sys.Breakdown("filesystem")
	if fsB.Base == 0 || fsB.DerivedXML == 0 || fsB.DerivedLatex == 0 {
		t.Errorf("filesystem breakdown = %+v", fsB)
	}
	// Derived views outnumber base items (the headline of Table 2).
	if fsB.DerivedXML+fsB.DerivedLatex <= 0 {
		t.Error("no derived views")
	}
	emailB := sys.Breakdown("email")
	if emailB.Base == 0 {
		t.Errorf("email breakdown = %+v", emailB)
	}
	sizes := sys.Sizes()
	if sizes.Total() <= 0 || sizes.Content <= 0 {
		t.Errorf("sizes = %+v", sizes)
	}
	if sys.NetInputBytes("filesystem") <= 0 {
		t.Error("net input not tracked")
	}
}

func TestExplainAndValidate(t *testing.T) {
	out, err := idm.Explain(paperQueries["Q7"])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "join(") {
		t.Errorf("explain = %q", out)
	}
	if err := idm.Validate(`//a[`); err == nil {
		t.Error("invalid query validated")
	}
	if err := idm.Validate(paperQueries["Q5"]); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestQueryPlanExposed(t *testing.T) {
	sys := openIndexed(t)
	res, err := sys.Query(paperQueries["Q4"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == "" {
		t.Error("plan empty")
	}
	if res.Intermediates < 0 {
		t.Error("intermediates negative")
	}
}

func TestViewAccess(t *testing.T) {
	sys := openIndexed(t)
	res, _ := sys.Query(`//vldb2006.tex`)
	if res.Count() == 0 {
		t.Fatal("file view missing")
	}
	v, ok := sys.View(res.Items[0].OID)
	if !ok {
		t.Fatal("live view missing")
	}
	if v.Name() != "vldb2006.tex" {
		t.Errorf("live name = %q", v.Name())
	}
	if size, ok := v.Tuple().Get("size"); !ok || size.Int <= 0 {
		t.Errorf("size = %v, %v", size, ok)
	}
}
