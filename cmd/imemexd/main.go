// Command imemexd is the multi-tenant iMeMex dataspace daemon: an
// HTTP/JSON server hosting many isolated personal dataspaces, one
// durable idm.System per tenant under -root/<tenant>, lazily opened on
// first request and LRU-evicted under -max-open-tenants.
//
// Usage:
//
//	imemexd -root /var/lib/imemex [-addr :7133] [-backend wal|compact]
//	        [-fsync commit|always|never] [-max-open-tenants 32]
//	        [-max-concurrent 256] [-quota-sources 16] [-quota-rows 1000]
//	        [-quota-queries 4] [-tokens tokens.txt]
//
// The API (see docs/SERVER.md):
//
//	GET    /healthz                       daemon health
//	POST   /v1/t/{tenant}/query          {"q","cursor","limit"} → rows + next_cursor
//	POST   /v1/t/{tenant}/sync           index every registered source
//	POST   /v1/t/{tenant}/checkpoint     compact WAL into a snapshot
//	GET    /v1/t/{tenant}/digest         durable-state digest
//	GET    /v1/t/{tenant}/sources        list sources
//	POST   /v1/t/{tenant}/sources       {"id","type","files",...} add a source
//	DELETE /v1/t/{tenant}/sources/{id}  remove a source
//	POST   /v1/t/{tenant}/evict          force-evict (drains in-flight work)
//	GET    /debug/...                     srv_* metrics, prom exposition, pprof
//
// -tokens enables bearer auth from a file of "tenant:token" lines
// (blank lines and #-comments ignored); without it the daemon is open
// — fine on localhost, not on a shared network.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	idm "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7133", "listen address")
	root := flag.String("root", "", "data root directory (required); tenant t lives in <root>/t")
	backend := flag.String("backend", "wal", "per-tenant storage backend, wal|compact")
	fsync := flag.String("fsync", "commit", "per-tenant WAL flush policy, commit|always|never")
	maxOpen := flag.Int("max-open-tenants", 32, "max concurrently open tenant systems (LRU-evicted beyond)")
	maxConc := flag.Int("max-concurrent", 256, "global in-flight request cap (429 beyond)")
	quotaSources := flag.Int("quota-sources", 16, "per-tenant source cap")
	quotaRows := flag.Int("quota-rows", 1000, "per-tenant query page-size cap")
	quotaQueries := flag.Int("quota-queries", 4, "per-tenant concurrent query cap (429 beyond)")
	tokensFile := flag.String("tokens", "", "bearer-token file of tenant:token lines; empty disables auth")
	parallelism := flag.Int("tenant-parallelism", 1, "per-query worker count inside each tenant")
	flag.Parse()

	if *root == "" {
		fmt.Fprintln(os.Stderr, "imemexd: -root is required")
		os.Exit(2)
	}
	cfg := server.Config{
		Root:              *root,
		MaxOpenTenants:    *maxOpen,
		MaxConcurrent:     *maxConc,
		TenantParallelism: *parallelism,
		Quota: server.Quota{
			MaxSources:           *quotaSources,
			MaxResultRows:        *quotaRows,
			MaxConcurrentQueries: *quotaQueries,
		},
	}
	var err error
	if cfg.Backend, err = idm.ParseStorageBackend(*backend); err != nil {
		fmt.Fprintf(os.Stderr, "imemexd: %v\n", err)
		os.Exit(2)
	}
	switch strings.ToLower(*fsync) {
	case "commit", "":
		cfg.Fsync = idm.SyncOnCommit
	case "always":
		cfg.Fsync = idm.SyncAlways
	case "never":
		cfg.Fsync = idm.SyncNever
	default:
		fmt.Fprintf(os.Stderr, "imemexd: unknown -fsync policy %q (commit|always|never)\n", *fsync)
		os.Exit(2)
	}
	if *tokensFile != "" {
		cfg.Tokens, err = loadTokens(*tokensFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imemexd: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "auth enabled: %d tenant token(s)\n", len(cfg.Tokens))
	} else {
		fmt.Fprintln(os.Stderr, "warning: no -tokens file; the daemon is open to any tenant name")
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bound, shutdown, err := srv.Serve(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "imemexd serving on http://%s (root %s, backend %s, cap %d tenants)\n",
		bound, *root, *backend, *maxOpen)
	fmt.Fprintf(os.Stderr, "debug surface on http://%s/debug/\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "shutting down: draining requests and closing tenants...")
	shutdown()
	fmt.Fprintln(os.Stderr, "bye")
}

// loadTokens reads a tenant:token file. Lines are "tenant:token";
// blanks and #-comments are skipped.
func loadTokens(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		tenant, token, ok := strings.Cut(s, ":")
		if !ok || tenant == "" || token == "" {
			return nil, fmt.Errorf("%s:%d: want tenant:token, got %q", path, line, s)
		}
		out[tenant] = token
	}
	return out, sc.Err()
}
