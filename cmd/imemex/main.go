// Command imemex is an interactive shell and one-shot query tool for an
// iDM personal dataspace: it generates the synthetic dataset, indexes it
// through the Resource View Manager and evaluates iQL queries.
//
// Usage:
//
//	imemex [-scale 0.05] [-seed 42] [-expansion forward|backward|auto] [query...]
//
// With query arguments, each is evaluated and printed; without, an
// interactive read-eval-print loop starts. REPL commands (`:` and `\`
// prefixes are interchangeable):
//
//	\help            show help
//	\sources         list data sources and their Table 2 breakdowns
//	\sizes           show index sizes (Table 3)
//	\plan <query>    show the rule-based plan for a query
//	\explain <query> evaluate with tracing and print the span tree
//	\stats           session metrics and query-cache statistics
//	\history [n]     recent queries from the query log (latency + stats)
//	\slow [n]        slow queries (≥ -slow-query) with their trace renders
//	\health          per-source degradation and circuit-breaker status
//	\checkpoint      compact the durable store into a fresh snapshot
//	\quit            exit
//
// -data-dir makes the dataspace durable: replica commits are written to
// a checksummed write-ahead log before they are applied, and a restart
// recovers the catalog, indexes and replicas from the latest snapshot
// plus the WAL tail (see docs/PERSISTENCE.md). -fsync tunes the flush
// policy.
//
// -resilient wraps every source in the retry/timeout/circuit-breaker
// proxy; -fault injects deterministic failures for chaos drills (e.g.
// -fault 'filesystem/root:error:0.5'); see docs/RESILIENCE.md. Queries
// answered while a source is down print a stale-results banner.
//
// -debug-addr serves the observability surface over HTTP:
// /debug/metrics (JSON snapshot), /debug/metrics/prom (Prometheus text
// exposition), /debug/queries (query log), /debug/vars (expvar) and
// /debug/pprof/ (see docs/OBSERVABILITY.md). -slow-query sets the
// slow-query threshold and -query-log the log's ring capacity.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	idm "repro"
	"repro/internal/obs"
	"repro/internal/osload"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = paper shape)")
	seed := flag.Int64("seed", 42, "dataset generator seed")
	dir := flag.String("dir", "", "index a real directory instead of the synthetic dataspace")
	maxFile := flag.Int64("maxfile", 1<<20, "with -dir: skip files larger than this many bytes")
	hidden := flag.Bool("hidden", false, "with -dir: include hidden files and directories")
	expansion := flag.String("expansion", "forward", "path evaluation: forward|backward|auto")
	limit := flag.Int("limit", 10, "max results to print per query")
	debugAddr := flag.String("debug-addr", "", "serve /debug/metrics, /debug/queries, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	slowQuery := flag.Duration("slow-query", 250*time.Millisecond, "slow-query threshold: queries at or over it retain a full trace in the query log (0 disables)")
	queryLog := flag.Int("query-log", 0, "query log ring capacity (0 = default 256, negative disables the log)")
	resilient := flag.Bool("resilient", false, "wrap sources in the retry/timeout/circuit-breaker proxy (docs/RESILIENCE.md)")
	failClosed := flag.Bool("fail-closed", false, "reject queries while a source is degraded instead of serving stale replicas")
	dataDir := flag.String("data-dir", "", "durable dataspace directory: WAL + snapshots, recovered on startup (docs/PERSISTENCE.md)")
	fsync := flag.String("fsync", "commit", "with -data-dir: WAL flush policy, commit|always|never")
	backend := flag.String("backend", "wal", "with -data-dir: storage backend, wal|compact (must match the existing directory)")
	replicaDir := flag.String("replica-dir", "", "with -data-dir: attach a WAL-shipping read replica in this directory (docs/REPLICATION.md)")
	var faultRules []idm.FaultRule
	flag.Func("fault", "inject a fault, spec point:kind[:p[:times]] (repeatable; kind error|latency[@dur]|partial|corrupt)", func(spec string) error {
		r, err := idm.ParseFaultRule(spec)
		if err != nil {
			return err
		}
		faultRules = append(faultRules, r)
		return nil
	})
	flag.Parse()

	exp, err := parseExpansion(*expansion)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := idm.Config{Expansion: exp, QueryLogSize: *queryLog}
	if *slowQuery > 0 {
		cfg.SlowQuery = *slowQuery
	} else {
		cfg.SlowQuery = -1 // 0 means "default" to the library; the flag's 0 means off
	}
	if *resilient {
		cfg.Resilience = &idm.ResiliencePolicy{}
	}
	if *failClosed {
		cfg.DegradedReads = idm.FailClosed
	}
	cfg.DataDir = *dataDir
	switch strings.ToLower(*fsync) {
	case "commit", "":
		cfg.Fsync = idm.SyncOnCommit
	case "always":
		cfg.Fsync = idm.SyncAlways
	case "never":
		cfg.Fsync = idm.SyncNever
	default:
		fmt.Fprintf(os.Stderr, "imemex: unknown -fsync policy %q (commit|always|never)\n", *fsync)
		os.Exit(2)
	}
	if cfg.Backend, err = idm.ParseStorageBackend(*backend); err != nil {
		fmt.Fprintf(os.Stderr, "imemex: %v\n", err)
		os.Exit(2)
	}
	if len(faultRules) > 0 {
		inj := idm.NewFaultInjector(*seed)
		for _, r := range faultRules {
			inj.Add(r)
		}
		cfg.Faults = inj
		fmt.Fprintf(os.Stderr, "fault injection armed: %d rule(s)\n", len(faultRules))
	}

	var sys *idm.System
	if *dir != "" {
		fmt.Fprintf(os.Stderr, "importing %s...\n", *dir)
		vf := idm.NewFileSystem()
		st, err := osload.Load(vf, *dir, osload.Options{MaxFileBytes: *maxFile, IncludeHidden: *hidden})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "imported %d files in %d folders (%.1f MB; skipped %d large, %d other)\n",
			st.Files, st.Folders, float64(st.Bytes)/(1<<20), st.SkippedLarge, st.SkippedOther)
		sys = openDurable(cfg)
		if err := sys.AddFileSystem("filesystem", vf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintf(os.Stderr, "generating synthetic personal dataspace (scale %.2f, seed %d)...\n", *scale, *seed)
		data := idm.GenerateDataset(idm.DatasetConfig{Scale: *scale, Seed: *seed})
		cfg.Now = evalClock
		sys = openDurable(cfg)
		if err := sys.AddDataset(data); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	defer sys.Close()
	start := time.Now()
	report, err := sys.Index()
	if err != nil {
		// With fault injection or flaky real sources the sync may partially
		// fail; healthy sources are still indexed, so keep going and let
		// \health and the stale banner tell the story.
		fmt.Fprintf(os.Stderr, "warning: partial index: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "indexed %d resource views from %d sources in %v\n\n",
		report.TotalViews(), len(report.Timings), time.Since(start).Round(time.Millisecond))

	if *debugAddr != "" {
		bound, shutdown, err := obs.ServeWith(*debugAddr, sys.Metrics(), sys.QueryLog())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "debug surface on http://%s/debug/\n\n", bound)
	}

	var rep *idm.Replica
	if *replicaDir != "" {
		leader := sys.ReplicationLeader()
		if leader == nil {
			fmt.Fprintln(os.Stderr, "imemex: -replica-dir requires -data-dir (the replica tails the durable WAL)")
			os.Exit(2)
		}
		rep, err = idm.OpenReplica(*replicaDir, leader, idm.Config{Expansion: exp, Now: cfg.Now})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer rep.Close()
		if err := rep.CatchUp(); err != nil {
			fmt.Fprintf(os.Stderr, "warning: replica catch-up: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "read replica at %s: applied LSN %d, lag %d\n\n",
			*replicaDir, rep.AppliedLSN(), rep.Lag())
	}

	if flag.NArg() > 0 {
		for _, q := range flag.Args() {
			runQuery(sys, q, *limit)
		}
		return
	}
	repl(sys, rep, *limit)
}

// openDurable opens the system, printing a recovery banner when
// -data-dir resumed a persisted dataspace.
func openDurable(cfg idm.Config) *idm.System {
	sys, info, err := idm.OpenDurable(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if info != nil {
		fmt.Fprintf(os.Stderr, "recovered %d views from %s (snapshot #%d + %d WAL records) in %v\n",
			info.Views, cfg.DataDir, info.SnapshotSeq, info.WALRecords,
			info.Elapsed.Round(time.Millisecond))
		for _, w := range info.Warnings {
			fmt.Fprintf(os.Stderr, "  recovery warning: %s\n", w)
		}
	}
	return sys
}

// evalClock pins "now" into the paper's era so date functions such as
// yesterday() interact sensibly with the generated timestamps.
func evalClock() time.Time {
	return time.Date(2005, 6, 15, 10, 0, 0, 0, time.UTC)
}

func parseExpansion(s string) (idm.Expansion, error) {
	switch strings.ToLower(s) {
	case "forward":
		return idm.Forward, nil
	case "backward":
		return idm.Backward, nil
	case "auto":
		return idm.Auto, nil
	default:
		return idm.Forward, fmt.Errorf("imemex: unknown expansion %q", s)
	}
}

func runQuery(sys *idm.System, q string, limit int) {
	start := time.Now()
	res, err := sys.Query(q)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	rate := ""
	if sec := elapsed.Seconds(); sec > 0 && res.Count() > 0 {
		rate = fmt.Sprintf(", %s rows/s", fmtRate(float64(res.Count())/sec))
	}
	// The session mean comes from the idm_query_ns histogram, which has
	// seen every query this process ran (including this one).
	h := sys.Metrics().Snapshot().Histograms["idm_query_ns"]
	session := ""
	if h.Count > 1 {
		session = fmt.Sprintf(" (session mean %v over %d queries)",
			time.Duration(h.Mean()).Round(time.Microsecond), h.Count)
	}
	fmt.Printf("iql> %s\n%d results in %v%s%s\n", q, res.Count(), elapsed.Round(time.Microsecond), rate, session)
	printRows(res, limit)
}

// runReplicaQuery evaluates q on the attached read replica; a lagging
// replica flags its answers stale with the replication-lag tag.
func runReplicaQuery(rep *idm.Replica, q string, limit int) {
	start := time.Now()
	res, err := rep.Query(q)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	fmt.Printf("replica> %s\n%d results in %v\n", q, res.Count(), elapsed.Round(time.Microsecond))
	printRows(res, limit)
}

func printRows(res *idm.Result, limit int) {
	if res.Stale {
		fmt.Printf("  ⚠ stale: %s — serving last-good replicas (\\health for detail)\n",
			strings.Join(res.StaleSources, ", "))
	}
	for i, row := range res.Rows {
		if i >= limit {
			fmt.Printf("  ... and %d more\n", res.Count()-limit)
			break
		}
		var parts []string
		for j, item := range row {
			col := ""
			if len(res.Columns) > j && len(row) > 1 {
				col = res.Columns[j] + "="
			}
			parts = append(parts, fmt.Sprintf("%s%s [%s] %s", col, item.Name, item.Class, item.Path))
		}
		fmt.Printf("  %s\n", strings.Join(parts, "  ⋈  "))
	}
	fmt.Println()
}

func repl(sys *idm.System, rep *idm.Replica, limit int) {
	fmt.Println(`iMeMex iQL shell — \help for commands, \quit to exit`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("iql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		// `:stats` and `\stats` are the same command.
		if strings.HasPrefix(line, ":") {
			line = `\` + line[1:]
		}
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			printHelp()
		case line == `\sources`:
			for _, src := range sys.Sources() {
				b := sys.Breakdown(src)
				fmt.Printf("  %-12s base=%d derived(xml=%d latex=%d other=%d) total=%d\n",
					src, b.Base, b.DerivedXML, b.DerivedLatex, b.DerivedOther, b.Total)
			}
		case line == `\sizes`:
			s := sys.Sizes()
			fmt.Printf("  name=%s tuple=%s content=%s group=%s catalog=%s total=%s\n",
				mb(s.Name), mb(s.Tuple), mb(s.Content), mb(s.Group), mb(s.Catalog), mb(s.Total()))
		case line == `\stats`:
			printStats(sys)
		case line == `\history` || strings.HasPrefix(line, `\history `):
			printHistory(sys, logLimit(line, `\history`), false)
		case line == `\slow` || strings.HasPrefix(line, `\slow `):
			printHistory(sys, logLimit(line, `\slow`), true)
		case line == `\health`:
			printHealth(sys)
		case line == `\checkpoint`:
			if err := sys.Checkpoint(); err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			if d := sys.StateDigest(); d != "" {
				fmt.Printf("checkpointed; state digest %s\n", d[:16])
			} else {
				fmt.Println("in-memory dataspace — nothing to checkpoint (run with -data-dir)")
			}
		case line == `\repl`:
			if rep == nil {
				fmt.Println("no replica attached — run with -replica-dir (and -data-dir)")
				continue
			}
			fmt.Printf("  applied LSN %d / leader LSN %d  (lag %d)\n",
				rep.AppliedLSN(), rep.LeaderLSN(), rep.Lag())
			if d := rep.StateDigest(); d != "" {
				fmt.Printf("  replica state digest %s\n", d[:16])
			}
			if d := sys.StateDigest(); d != "" {
				fmt.Printf("  leader  state digest %s\n", d[:16])
			}
		case line == `\catchup`:
			if rep == nil {
				fmt.Println("no replica attached — run with -replica-dir (and -data-dir)")
				continue
			}
			before := rep.AppliedLSN()
			start := time.Now()
			if err := rep.CatchUp(); err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Printf("applied %d record(s) in %v; now at LSN %d (lag %d)\n",
				rep.AppliedLSN()-before, time.Since(start).Round(time.Microsecond),
				rep.AppliedLSN(), rep.Lag())
		case strings.HasPrefix(line, `\rquery `):
			if rep == nil {
				fmt.Println("no replica attached — run with -replica-dir (and -data-dir)")
				continue
			}
			runReplicaQuery(rep, strings.TrimPrefix(line, `\rquery `), limit)
		case strings.HasPrefix(line, `\explain `):
			out, err := sys.Explain(strings.TrimPrefix(line, `\explain `))
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Print(out)
		case strings.HasPrefix(line, `\plan `):
			q := strings.TrimPrefix(line, `\plan `)
			res, err := sys.Query(q)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Println(res.Plan)
		case strings.HasPrefix(line, `\rank `):
			q := strings.TrimPrefix(line, `\rank `)
			res, err := sys.QueryRanked(q)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Printf("%d results (ranked)\n", res.Count())
			for i, row := range res.Rows {
				if i >= limit {
					break
				}
				fmt.Printf("  %6.0f  %s\n", res.Scores[i], row[0].Path)
			}
		case strings.HasPrefix(line, `\lineage `):
			q := strings.TrimPrefix(line, `\lineage `)
			res, err := sys.Query(q)
			if err != nil || res.Count() == 0 {
				fmt.Printf("error: %v (%d results)\n", err, res.Count())
				continue
			}
			steps, err := sys.Lineage(res.Items[0].OID)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			for _, s := range steps {
				name := s.Name
				if name == "" {
					name = "(" + s.Class + ")"
				}
				fmt.Printf("  %-24s %s\n", s.Relation, name)
			}
		case line == `\changes`:
			changes := sys.Changes(0)
			start := 0
			if len(changes) > limit {
				start = len(changes) - limit
				fmt.Printf("  ... %d earlier changes\n", start)
			}
			for _, c := range changes[start:] {
				fmt.Printf("  v%-4d %-8s %s %s\n", c.Version, c.Kind, c.Source, c.URI)
			}
		case strings.HasPrefix(line, `\delete `):
			stmt := "delete " + strings.TrimPrefix(line, `\delete `)
			n, err := sys.Delete(stmt)
			if err != nil {
				fmt.Printf("deleted %d; error: %v\n", n, err)
				continue
			}
			fmt.Printf("deleted %d item(s)\n", n)
		case strings.HasPrefix(line, `\`):
			fmt.Printf("unknown command %q — \\help lists commands\n", line)
		default:
			if strings.HasPrefix(strings.ToLower(line), "delete ") {
				n, err := sys.Delete(line)
				if err != nil {
					fmt.Printf("deleted %d; error: %v\n", n, err)
					continue
				}
				fmt.Printf("deleted %d item(s)\n", n)
				continue
			}
			runQuery(sys, line, limit)
		}
	}
}

// printStats renders the session's metrics snapshot: query and cache
// counters, latency percentiles, and per-layer activity.
func printStats(sys *idm.System) {
	snap := sys.Metrics().Snapshot()
	if h, ok := snap.Histograms["idm_query_ns"]; ok && h.Count > 0 {
		fmt.Printf("queries: %d  mean %v  p50 %v  p90 %v  max %v\n",
			h.Count,
			time.Duration(h.Mean()).Round(time.Microsecond),
			time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.9)).Round(time.Microsecond),
			time.Duration(h.Max).Round(time.Microsecond))
	} else {
		fmt.Println("queries: none yet")
	}
	cs := sys.CacheStats()
	fmt.Printf("cache:   %d hits / %d misses (size %d, evictions %d)\n",
		cs.Hits, cs.Misses, cs.Size, cs.Evictions)
	if cs.Hits > 0 || cs.Misses > 0 {
		fmt.Printf("         hit %v vs miss %v; entry age avg %v, oldest %v\n",
			cs.HitLatency.Round(time.Microsecond), cs.MissLatency.Round(time.Microsecond),
			cs.AvgEntryAge.Round(time.Millisecond), cs.OldestEntryAge.Round(time.Millisecond))
	}
	fmt.Println("counters:")
	for _, name := range snap.CounterNames() {
		if v := snap.Counters[name]; v != 0 {
			fmt.Printf("  %-40s %d\n", name, v)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("gauges:")
		for _, name := range snap.GaugeNames() {
			fmt.Printf("  %-40s %d\n", name, snap.Gauges[name])
		}
	}
}

// logLimit parses the optional [n] argument of \history and \slow.
func logLimit(line, cmd string) int {
	arg := strings.TrimSpace(strings.TrimPrefix(line, cmd))
	if arg == "" {
		return 10
	}
	n := 0
	if _, err := fmt.Sscanf(arg, "%d", &n); err != nil || n <= 0 {
		return 10
	}
	return n
}

// printHistory renders the query log's recent (or slow) ring, newest
// first: latency, outcome and the per-query resource accounting. Slow
// records additionally print their retained trace.
func printHistory(sys *idm.System, n int, slow bool) {
	l := sys.QueryLog()
	if l == nil {
		fmt.Println("query log disabled (run without -query-log -1)")
		return
	}
	recs := l.Recent(n)
	kind := "queries"
	total := l.Total()
	if slow {
		recs = l.Slow(n)
		kind = fmt.Sprintf("slow queries (≥ %v)", l.SlowThreshold())
		total = l.SlowTotal()
	}
	if len(recs) == 0 {
		fmt.Printf("no %s recorded\n", kind)
		return
	}
	fmt.Printf("%d of %d %s, newest first:\n", len(recs), total, kind)
	for _, r := range recs {
		flags := ""
		if r.CacheHit {
			flags += " cache-hit"
		}
		if r.Stale {
			flags += " stale"
		}
		if r.Slow {
			flags += " SLOW"
		}
		outcome := fmt.Sprintf("%d rows", r.Rows)
		if r.Error != "" {
			outcome = "error: " + r.Error
		}
		fmt.Printf("  #%-4d %-10v %-24s %s%s\n", r.ID,
			time.Duration(r.DurationNs).Round(time.Microsecond), outcome, r.Query, flags)
		if r.Error == "" {
			fmt.Printf("        scanned=%d postings=%d expanded=%d frontier=%d idx=%d strategy=%s\n",
				r.Stats.RowsScanned, r.Stats.PostingsRead, r.Stats.ViewsExpanded,
				r.Stats.PeakFrontier, r.Stats.IndexAccesses, r.Strategy)
		}
		if slow && r.Trace != "" {
			for _, ln := range strings.Split(strings.TrimRight(r.Trace, "\n"), "\n") {
				fmt.Printf("        %s\n", ln)
			}
		}
	}
}

// printHealth renders per-source degradation status: last sync outcome,
// consecutive failures and the circuit-breaker state (when -resilient).
func printHealth(sys *idm.System) {
	hs := sys.Health()
	if len(hs) == 0 {
		fmt.Println("no sources registered")
		return
	}
	for _, h := range hs {
		state := "ok"
		if h.Degraded {
			state = fmt.Sprintf("DEGRADED (%d consecutive failures): %s", h.ConsecutiveFailures, h.LastError)
		}
		breaker := ""
		if h.Breaker != "" {
			breaker = "  breaker=" + h.Breaker
		}
		last := "never"
		if !h.LastSuccess.IsZero() {
			last = time.Since(h.LastSuccess).Round(time.Millisecond).String() + " ago"
		}
		fmt.Printf("  %-12s %s%s  last success %s\n", h.Source, state, breaker, last)
	}
}

func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

func printHelp() {
	fmt.Print(`commands (: works like \):
  \sources         per-source resource view breakdown (Table 2)
  \sizes           index and replica sizes (Table 3)
  \plan <query>    show the rule-based query plan
  \explain <query> evaluate with tracing and print the span tree
  \stats           session metrics and query-cache statistics
  \history [n]     recent queries from the query log (latency + stats)
  \slow [n]        slow queries (≥ -slow-query) with their trace renders
  \health          per-source degradation and circuit-breaker status
  \rank <query>    evaluate with tf-ranked results
  \lineage <query> provenance chain of the first result
  \changes         tail of the dataspace change journal
  \delete <query>  write-through delete (also: delete <query>)
  \checkpoint      compact the durable store into a fresh snapshot
  \repl            replication status: applied/leader LSN, lag, digests
  \catchup         pull the attached replica up to the leader's LSN
  \rquery <query>  evaluate on the read replica (stale answers are flagged)
  \quit            exit
example queries (Table 4 of the paper):
  "database"
  "database tuning"
  [size > 4200 and lastmodified < @12.06.2005]
  //papers//*Vision/*["Franklin"]
  //VLDB200?//?onclusion*/*["systems"]
  union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])
  join( //VLDB2006//*[class="texref"] as A, //VLDB2006//figure*[class="environment"] as B, A.name=B.tuple.label)
  join( //*[class="emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )
`)
}

func mb(b int64) string { return fmt.Sprintf("%.2fMB", float64(b)/(1<<20)) }
