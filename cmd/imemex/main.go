// Command imemex is an interactive shell and one-shot query tool for an
// iDM personal dataspace: it generates the synthetic dataset, indexes it
// through the Resource View Manager and evaluates iQL queries.
//
// Usage:
//
//	imemex [-scale 0.05] [-seed 42] [-expansion forward|backward|auto] [query...]
//
// With query arguments, each is evaluated and printed; without, an
// interactive read-eval-print loop starts. REPL commands:
//
//	\help            show help
//	\sources         list data sources and their Table 2 breakdowns
//	\sizes           show index sizes (Table 3)
//	\classes         list resource view classes
//	\plan <query>    show the rule-based plan for a query
//	\quit            exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	idm "repro"
	"repro/internal/osload"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = paper shape)")
	seed := flag.Int64("seed", 42, "dataset generator seed")
	dir := flag.String("dir", "", "index a real directory instead of the synthetic dataspace")
	maxFile := flag.Int64("maxfile", 1<<20, "with -dir: skip files larger than this many bytes")
	hidden := flag.Bool("hidden", false, "with -dir: include hidden files and directories")
	expansion := flag.String("expansion", "forward", "path evaluation: forward|backward|auto")
	limit := flag.Int("limit", 10, "max results to print per query")
	flag.Parse()

	exp, err := parseExpansion(*expansion)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sys *idm.System
	if *dir != "" {
		fmt.Fprintf(os.Stderr, "importing %s...\n", *dir)
		vf := idm.NewFileSystem()
		st, err := osload.Load(vf, *dir, osload.Options{MaxFileBytes: *maxFile, IncludeHidden: *hidden})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "imported %d files in %d folders (%.1f MB; skipped %d large, %d other)\n",
			st.Files, st.Folders, float64(st.Bytes)/(1<<20), st.SkippedLarge, st.SkippedOther)
		sys = idm.Open(idm.Config{Expansion: exp})
		if err := sys.AddFileSystem("filesystem", vf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintf(os.Stderr, "generating synthetic personal dataspace (scale %.2f, seed %d)...\n", *scale, *seed)
		data := idm.GenerateDataset(idm.DatasetConfig{Scale: *scale, Seed: *seed})
		sys, err = idm.OpenDataset(data, idm.Config{Expansion: exp, Now: evalClock})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	start := time.Now()
	report, err := sys.Index()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "indexed %d resource views from %d sources in %v\n\n",
		report.TotalViews(), len(report.Timings), time.Since(start).Round(time.Millisecond))

	if flag.NArg() > 0 {
		for _, q := range flag.Args() {
			runQuery(sys, q, *limit)
		}
		return
	}
	repl(sys, *limit)
}

// evalClock pins "now" into the paper's era so date functions such as
// yesterday() interact sensibly with the generated timestamps.
func evalClock() time.Time {
	return time.Date(2005, 6, 15, 10, 0, 0, 0, time.UTC)
}

func parseExpansion(s string) (idm.Expansion, error) {
	switch strings.ToLower(s) {
	case "forward":
		return idm.Forward, nil
	case "backward":
		return idm.Backward, nil
	case "auto":
		return idm.Auto, nil
	default:
		return idm.Forward, fmt.Errorf("imemex: unknown expansion %q", s)
	}
}

func runQuery(sys *idm.System, q string, limit int) {
	start := time.Now()
	res, err := sys.Query(q)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	fmt.Printf("iql> %s\n%d results in %v\n", q, res.Count(), elapsed.Round(time.Microsecond))
	for i, row := range res.Rows {
		if i >= limit {
			fmt.Printf("  ... and %d more\n", res.Count()-limit)
			break
		}
		var parts []string
		for j, item := range row {
			col := ""
			if len(res.Columns) > j && len(row) > 1 {
				col = res.Columns[j] + "="
			}
			parts = append(parts, fmt.Sprintf("%s%s [%s] %s", col, item.Name, item.Class, item.Path))
		}
		fmt.Printf("  %s\n", strings.Join(parts, "  ⋈  "))
	}
	fmt.Println()
}

func repl(sys *idm.System, limit int) {
	fmt.Println(`iMeMex iQL shell — \help for commands, \quit to exit`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("iql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			printHelp()
		case line == `\sources`:
			for _, src := range sys.Sources() {
				b := sys.Breakdown(src)
				fmt.Printf("  %-12s base=%d derived(xml=%d latex=%d other=%d) total=%d\n",
					src, b.Base, b.DerivedXML, b.DerivedLatex, b.DerivedOther, b.Total)
			}
		case line == `\sizes`:
			s := sys.Sizes()
			fmt.Printf("  name=%s tuple=%s content=%s group=%s catalog=%s total=%s\n",
				mb(s.Name), mb(s.Tuple), mb(s.Content), mb(s.Group), mb(s.Catalog), mb(s.Total()))
		case strings.HasPrefix(line, `\plan `):
			q := strings.TrimPrefix(line, `\plan `)
			res, err := sys.Query(q)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Println(res.Plan)
		case strings.HasPrefix(line, `\rank `):
			q := strings.TrimPrefix(line, `\rank `)
			res, err := sys.QueryRanked(q)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Printf("%d results (ranked)\n", res.Count())
			for i, row := range res.Rows {
				if i >= limit {
					break
				}
				fmt.Printf("  %6.0f  %s\n", res.Scores[i], row[0].Path)
			}
		case strings.HasPrefix(line, `\lineage `):
			q := strings.TrimPrefix(line, `\lineage `)
			res, err := sys.Query(q)
			if err != nil || res.Count() == 0 {
				fmt.Printf("error: %v (%d results)\n", err, res.Count())
				continue
			}
			steps, err := sys.Lineage(res.Items[0].OID)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			for _, s := range steps {
				name := s.Name
				if name == "" {
					name = "(" + s.Class + ")"
				}
				fmt.Printf("  %-24s %s\n", s.Relation, name)
			}
		case line == `\changes`:
			changes := sys.Changes(0)
			start := 0
			if len(changes) > limit {
				start = len(changes) - limit
				fmt.Printf("  ... %d earlier changes\n", start)
			}
			for _, c := range changes[start:] {
				fmt.Printf("  v%-4d %-8s %s %s\n", c.Version, c.Kind, c.Source, c.URI)
			}
		case strings.HasPrefix(line, `\delete `):
			stmt := "delete " + strings.TrimPrefix(line, `\delete `)
			n, err := sys.Delete(stmt)
			if err != nil {
				fmt.Printf("deleted %d; error: %v\n", n, err)
				continue
			}
			fmt.Printf("deleted %d item(s)\n", n)
		case strings.HasPrefix(line, `\`):
			fmt.Printf("unknown command %q — \\help lists commands\n", line)
		default:
			if strings.HasPrefix(strings.ToLower(line), "delete ") {
				n, err := sys.Delete(line)
				if err != nil {
					fmt.Printf("deleted %d; error: %v\n", n, err)
					continue
				}
				fmt.Printf("deleted %d item(s)\n", n)
				continue
			}
			runQuery(sys, line, limit)
		}
	}
}

func printHelp() {
	fmt.Print(`commands:
  \sources         per-source resource view breakdown (Table 2)
  \sizes           index and replica sizes (Table 3)
  \plan <query>    show the rule-based query plan
  \rank <query>    evaluate with tf-ranked results
  \lineage <query> provenance chain of the first result
  \changes         tail of the dataspace change journal
  \delete <query>  write-through delete (also: delete <query>)
  \quit            exit
example queries (Table 4 of the paper):
  "database"
  "database tuning"
  [size > 4200 and lastmodified < @12.06.2005]
  //papers//*Vision/*["Franklin"]
  //VLDB200?//?onclusion*/*["systems"]
  union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])
  join( //VLDB2006//*[class="texref"] as A, //VLDB2006//figure*[class="environment"] as B, A.name=B.tuple.label)
  join( //*[class="emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )
`)
}

func mb(b int64) string { return fmt.Sprintf("%.2fMB", float64(b)/(1<<20)) }
