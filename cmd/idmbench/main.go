// Command idmbench regenerates the tables and figures of §7 of the iDM
// paper against the synthetic personal dataset and prints them in the
// paper's layout.
//
// Usage:
//
//	idmbench [-exp all|table2|table3|figure5|table4|figure6|iql] [-scale 0.05] [-seed 42] [-runs 5]
//	         [-json BENCH_iql.json] [-parallelism N] [-obsreps 3]
//
// -json writes the serial-vs-parallel iQL engine microbenchmark
// (experiments.BenchReport, schema_version 2) to the given path,
// including the obs_overhead section that compares instrumented vs
// uninstrumented ns/op (-obsreps 0 skips it).
//
// See EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/iql"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|table2|table3|figure5|table4|figure6|iql")
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = paper shape)")
	seed := flag.Int64("seed", 42, "generator seed")
	runs := flag.Int("runs", 5, "warm-cache repetitions per query (figure 6)")
	expansion := flag.String("expansion", "forward", "path evaluation: forward|backward|auto")
	jsonPath := flag.String("json", "", "write the serial-vs-parallel iQL benchmark report to this path")
	parallelism := flag.Int("parallelism", 0, "engine worker count for the parallel half of -json (0 = GOMAXPROCS)")
	obsReps := flag.Int("obsreps", 3, "min-of-N repetitions for the obs_overhead section of -json (0 = skip)")
	flag.Parse()

	strategy := iql.ForwardExpansion
	switch *expansion {
	case "forward":
	case "backward":
		strategy = iql.BackwardExpansion
	case "auto":
		strategy = iql.AutoExpansion
	default:
		fail(fmt.Errorf("unknown expansion %q", *expansion))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Table 3 indexes each source into its own manager; run it first so
	// its timing is undisturbed, then build the shared setup.
	if want("table3") {
		rows, err := experiments.Table3(*scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTable3(rows))
	}
	if want("figure5") {
		rows, err := experiments.Figure5(*scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFigure5(rows))
	}
	wantBench := *jsonPath != "" || want("iql")
	if want("table2") || want("table4") || want("figure6") || wantBench {
		s, err := experiments.NewSetup(*scale, *seed, false)
		if err != nil {
			fail(err)
		}
		if err := s.Index(); err != nil {
			fail(err)
		}
		if want("table2") {
			fmt.Println(experiments.RenderTable2(experiments.Table2(s)))
		}
		if want("table4") || want("figure6") {
			rows, err := experiments.RunQueries(s, strategy, *runs)
			if err != nil {
				fail(err)
			}
			if want("table4") {
				fmt.Println(experiments.RenderTable4(rows))
				for _, r := range rows {
					if r.Note != "" {
						fmt.Printf("note (%s): %s\n", r.ID, r.Note)
					}
				}
				fmt.Println()
			}
			if want("figure6") {
				fmt.Println(experiments.RenderFigure6(rows))
			}
		}
		if wantBench {
			rep, err := experiments.BenchIQL(s, *runs, *parallelism)
			if err != nil {
				fail(err)
			}
			for _, q := range rep.Queries {
				fmt.Printf("%-3s serial %10d ns/op  parallel(%d) %10d ns/op  speedup %.2fx  results %d\n",
					q.ID, q.Serial.NsPerOp, rep.Parallelism, q.Parallel.NsPerOp, q.Speedup, q.Serial.Results)
			}
			if *obsReps > 0 {
				oo, err := experiments.BenchObsOverhead(s, *runs, *obsReps)
				if err != nil {
					fail(err)
				}
				rep.ObsOverhead = oo
				for _, q := range oo.Queries {
					fmt.Printf("%-3s obs baseline %10d ns/op  disabled %+6.2f%%  enabled %+6.2f%%\n",
						q.ID, q.BaselineNsPerOp, q.DisabledOverheadPct, q.EnabledOverheadPct)
				}
				fmt.Printf("obs overhead mean: disabled %+.2f%%  enabled %+.2f%%\n",
					oo.MeanDisabledOverheadPct, oo.MeanEnabledOverheadPct)
			}
			if *jsonPath != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					fail(err)
				}
				if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
					fail(err)
				}
				fmt.Printf("wrote %s\n", *jsonPath)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "idmbench:", err)
	os.Exit(1)
}
