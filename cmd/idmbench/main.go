// Command idmbench regenerates the tables and figures of §7 of the iDM
// paper against the synthetic personal dataset and prints them in the
// paper's layout.
//
// Usage:
//
//	idmbench [-exp all|table2|table3|figure5|table4|figure6] [-scale 0.05] [-seed 42] [-runs 5]
//
// See EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/iql"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|table2|table3|figure5|table4|figure6")
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = paper shape)")
	seed := flag.Int64("seed", 42, "generator seed")
	runs := flag.Int("runs", 5, "warm-cache repetitions per query (figure 6)")
	expansion := flag.String("expansion", "forward", "path evaluation: forward|backward|auto")
	flag.Parse()

	strategy := iql.ForwardExpansion
	switch *expansion {
	case "forward":
	case "backward":
		strategy = iql.BackwardExpansion
	case "auto":
		strategy = iql.AutoExpansion
	default:
		fail(fmt.Errorf("unknown expansion %q", *expansion))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Table 3 indexes each source into its own manager; run it first so
	// its timing is undisturbed, then build the shared setup.
	if want("table3") {
		rows, err := experiments.Table3(*scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTable3(rows))
	}
	if want("figure5") {
		rows, err := experiments.Figure5(*scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFigure5(rows))
	}
	if want("table2") || want("table4") || want("figure6") {
		s, err := experiments.NewSetup(*scale, *seed, false)
		if err != nil {
			fail(err)
		}
		if err := s.Index(); err != nil {
			fail(err)
		}
		if want("table2") {
			fmt.Println(experiments.RenderTable2(experiments.Table2(s)))
		}
		if want("table4") || want("figure6") {
			rows, err := experiments.RunQueries(s, strategy, *runs)
			if err != nil {
				fail(err)
			}
			if want("table4") {
				fmt.Println(experiments.RenderTable4(rows))
				for _, r := range rows {
					if r.Note != "" {
						fmt.Printf("note (%s): %s\n", r.ID, r.Note)
					}
				}
				fmt.Println()
			}
			if want("figure6") {
				fmt.Println(experiments.RenderFigure6(rows))
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "idmbench:", err)
	os.Exit(1)
}
