// Command idmbench regenerates the tables and figures of §7 of the iDM
// paper against the synthetic personal dataset and prints them in the
// paper's layout.
//
// Usage:
//
//	idmbench [-exp all|table2|table3|figure5|table4|figure6|iql] [-scale 0.05] [-seed 42] [-runs 5]
//	         [-json BENCH_iql.json] [-parallelism N] [-obsreps 3] [-tenx] [-minspeedup X] [-obsgate]
//
// -json writes the iQL engine microbenchmark (experiments.BenchReport,
// schema_version 5: serial vs forced-parallel vs planner-adaptive, with
// the adaptive planner's strategy and estimated-vs-actual rows per
// query) to the given path, including the obs_overhead section that
// compares instrumented vs uninstrumented ns/op across four postures —
// no registry, disabled registry, enabled registry, enabled registry
// plus query log (-obsreps 0 skips it).
// -tenx adds the scale_10x section (the same measurement at 10× -scale).
// -ixreps adds the index_build section: cold-start index construction
// from a recovered durable state at -ixscale (default 1.0, the paper
// shape), per-view incremental insertion vs the sort-based bulk build.
// -minspeedup fails the run (exit 1) if any query's adaptive speedup
// over serial falls below the threshold — the planner regression gate.
// -obsgate fails the run if the mean disabled overhead exceeds 2% or
// the mean query-log-enabled overhead exceeds 3% — the observability
// cost gate (opt-in: percent-level bounds need a quiet machine).
//
// See EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/iql"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|table2|table3|figure5|table4|figure6|iql")
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = paper shape)")
	seed := flag.Int64("seed", 42, "generator seed")
	runs := flag.Int("runs", 5, "warm-cache repetitions per query (figure 6)")
	expansion := flag.String("expansion", "forward", "path evaluation: forward|backward|auto")
	jsonPath := flag.String("json", "", "write the iQL benchmark report to this path")
	parallelism := flag.Int("parallelism", 0, "engine worker count for the parallel lane of -json (0 = GOMAXPROCS)")
	obsReps := flag.Int("obsreps", 3, "min-of-N repetitions for the obs_overhead section of -json (0 = skip)")
	tenx := flag.Bool("tenx", false, "additionally measure the iQL benchmark at 10x -scale (scale_10x section)")
	ixReps := flag.Int("ixreps", 0, "min-of-N repetitions for the index_build section of -json (0 = skip)")
	ixScale := flag.Float64("ixscale", 1.0, "dataset scale for the index_build section")
	minSpeedup := flag.Float64("minspeedup", 0, "fail unless every query's adaptive speedup over serial is at least this (0 = no gate)")
	obsGate := flag.Bool("obsgate", false, "fail unless mean obs overhead is within bounds (disabled <= 2%, query-log <= 3%); needs -obsreps > 0")
	flag.Parse()

	strategy := iql.ForwardExpansion
	switch *expansion {
	case "forward":
	case "backward":
		strategy = iql.BackwardExpansion
	case "auto":
		strategy = iql.AutoExpansion
	default:
		fail(fmt.Errorf("unknown expansion %q", *expansion))
	}

	// A worker count above GOMAXPROCS would record a benchmark the
	// scheduler cannot actually run: raise GOMAXPROCS to match so the
	// "parallel" lane really is parallel, and warn when the hardware
	// cannot back it (the adaptive lane will then plan serially, which
	// is the planner working as intended, not a measurement error).
	if *parallelism > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(*parallelism)
	}
	if *parallelism > runtime.NumCPU() {
		fmt.Fprintf(os.Stderr,
			"idmbench: warning: -parallelism %d exceeds the machine's %d CPU core(s); "+
				"forced-parallel numbers will show scheduling overhead, not speedup\n",
			*parallelism, runtime.NumCPU())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Table 3 indexes each source into its own manager; run it first so
	// its timing is undisturbed, then build the shared setup.
	if want("table3") {
		rows, err := experiments.Table3(*scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTable3(rows))
	}
	if want("figure5") {
		rows, err := experiments.Figure5(*scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFigure5(rows))
	}
	wantBench := *jsonPath != "" || want("iql")
	if want("table2") || want("table4") || want("figure6") || wantBench {
		s, err := experiments.NewSetup(*scale, *seed, false)
		if err != nil {
			fail(err)
		}
		if err := s.Index(); err != nil {
			fail(err)
		}
		if want("table2") {
			fmt.Println(experiments.RenderTable2(experiments.Table2(s)))
		}
		if want("table4") || want("figure6") {
			rows, err := experiments.RunQueries(s, strategy, *runs)
			if err != nil {
				fail(err)
			}
			if want("table4") {
				fmt.Println(experiments.RenderTable4(rows))
				for _, r := range rows {
					if r.Note != "" {
						fmt.Printf("note (%s): %s\n", r.ID, r.Note)
					}
				}
				fmt.Println()
			}
			if want("figure6") {
				fmt.Println(experiments.RenderFigure6(rows))
			}
		}
		if wantBench {
			rep, err := experiments.BenchIQL(s, *runs, *parallelism)
			if err != nil {
				fail(err)
			}
			printQueries(rep.Queries, rep.Parallelism)
			if *tenx {
				sec, err := experiments.BenchIQLAtScale(*scale*10, *seed, *runs, *parallelism)
				if err != nil {
					fail(err)
				}
				rep.Scale10x = sec
				fmt.Printf("--- scale %g (10x) ---\n", sec.Scale)
				printQueries(sec.Queries, rep.Parallelism)
			}
			if *obsReps > 0 {
				oo, err := experiments.BenchObsOverhead(s, *runs, *obsReps)
				if err != nil {
					fail(err)
				}
				rep.ObsOverhead = oo
				for _, q := range oo.Queries {
					fmt.Printf("%-3s obs baseline %10d ns/op  disabled %+6.2f%%  enabled %+6.2f%%  querylog %+6.2f%%\n",
						q.ID, q.BaselineNsPerOp, q.DisabledOverheadPct, q.EnabledOverheadPct, q.QueryLogOverheadPct)
				}
				fmt.Printf("obs overhead mean: disabled %+.2f%%  enabled %+.2f%%  querylog %+.2f%%\n",
					oo.MeanDisabledOverheadPct, oo.MeanEnabledOverheadPct, oo.MeanQueryLogOverheadPct)
				if *obsGate {
					if err := gateObs(oo); err != nil {
						fail(err)
					}
					fmt.Println("obs gate passed: disabled <= 2%, query-log <= 3%")
				}
			} else if *obsGate {
				fail(fmt.Errorf("-obsgate needs -obsreps > 0"))
			}
			if *ixReps > 0 {
				ib, err := experiments.BenchIndexBuild(*ixScale, *seed, *ixReps)
				if err != nil {
					fail(err)
				}
				rep.IndexBuild = ib
				fmt.Printf("index build (scale %g, %d views): incremental %d ns  bulk %d ns  (%.2fx)\n",
					ib.Scale, ib.Views, ib.IncrementalNs, ib.BulkNs, ib.Speedup)
			}
			if *jsonPath != "" {
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					fail(err)
				}
				if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
					fail(err)
				}
				fmt.Printf("wrote %s\n", *jsonPath)
			}
			if *minSpeedup > 0 {
				if err := gateSpeedup(rep, *minSpeedup); err != nil {
					fail(err)
				}
				fmt.Printf("planner gate passed: adaptive speedup >= %.2f on every query\n", *minSpeedup)
			}
		}
	}
}

// printQueries prints one line per measured query, including the
// adaptive lane and its planner decision.
func printQueries(queries []experiments.BenchQuery, parallelism int) {
	for _, q := range queries {
		fmt.Printf("%-3s serial %10d ns/op  parallel(%d) %10d ns/op (%.2fx)  adaptive %10d ns/op (%.2fx)  "+
			"plan %s est %d actual %d\n",
			q.ID, q.Serial.NsPerOp, parallelism, q.Parallel.NsPerOp, q.Speedup,
			q.Adaptive.NsPerOp, q.AdaptiveSpeedup,
			q.Planner.Strategy, q.Planner.EstimatedRows, q.Planner.ActualRows)
	}
}

// gateSpeedup fails when any query — at the base scale or in the 10×
// section — ran slower under the adaptive planner than the given
// fraction of serial time.
func gateSpeedup(rep *experiments.BenchReport, min float64) error {
	var bad []string
	check := func(label string, queries []experiments.BenchQuery) {
		for _, q := range queries {
			if q.AdaptiveSpeedup < min {
				bad = append(bad, fmt.Sprintf("%s%s %.2fx", label, q.ID, q.AdaptiveSpeedup))
			}
		}
	}
	check("", rep.Queries)
	if rep.Scale10x != nil {
		check("10x:", rep.Scale10x.Queries)
	}
	if len(bad) > 0 {
		return fmt.Errorf("adaptive speedup below %.2f: %v", min, bad)
	}
	return nil
}

// gateObs enforces the observability cost bounds on the measured means:
// instruments wired but disabled must stay within 2% of the
// uninstrumented baseline, and the full posture — enabled registry plus
// query-log recording — within 3%.
func gateObs(oo *experiments.ObsOverhead) error {
	if oo.MeanDisabledOverheadPct > 2 {
		return fmt.Errorf("obs gate: mean disabled overhead %.2f%% exceeds 2%%", oo.MeanDisabledOverheadPct)
	}
	if oo.MeanQueryLogOverheadPct > 3 {
		return fmt.Errorf("obs gate: mean query-log overhead %.2f%% exceeds 3%%", oo.MeanQueryLogOverheadPct)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "idmbench:", err)
	os.Exit(1)
}
