// Command idmgen generates the synthetic personal dataset and reports
// its characteristics; with -dump it also materializes the virtual
// filesystem into a real directory for inspection.
//
// Usage:
//
//	idmgen [-scale 0.05] [-seed 42] [-dump DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	idm "repro"
	"repro/internal/vfs"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = paper shape)")
	seed := flag.Int64("seed", 42, "generator seed")
	dump := flag.String("dump", "", "directory to materialize the virtual filesystem into")
	flag.Parse()

	d := idm.GenerateDataset(idm.DatasetConfig{Scale: *scale, Seed: *seed})
	info := d.Info
	fmt.Printf("synthetic personal dataspace (scale %.2f, seed %d)\n\n", *scale, *seed)
	fmt.Printf("filesystem: %6d folders, %6d files (%6.2f MB)\n", info.Folders, info.Files, mb(info.FSBytes))
	fmt.Printf("            %6d LaTeX docs, %6d XML docs, %6d binary files\n",
		info.LatexDocs, info.XMLDocs, info.BinaryFiles)
	fmt.Printf("email:      %6d messages in %d folders (%6.2f MB)\n", info.Messages, info.MailFolders, mb(info.MailBytes))
	fmt.Printf("            %6d attachments (%d .tex, %d .xml)\n", info.Attachments, info.TexAttach, info.XMLAttach)
	fmt.Printf("rss:        %6d feeds\n", len(d.RSS.Feeds()))
	fmt.Printf("relational: %6d relations\n", len(d.Rel.Relations()))

	if *dump != "" {
		n, err := materialize(d, *dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "idmgen:", err)
			os.Exit(1)
		}
		fmt.Printf("\nmaterialized %d nodes under %s\n", n, *dump)
	}
}

// materialize writes the virtual filesystem to a real directory (links
// become empty marker files to avoid real symlink cycles).
func materialize(d *idm.Dataset, dir string) (int, error) {
	count := 0
	err := d.FS.Walk(func(path string, n *vfs.Node) error {
		target := filepath.Join(dir, filepath.FromSlash(path))
		switch n.Kind() {
		case vfs.KindFolder:
			if err := os.MkdirAll(target, 0o755); err != nil {
				return err
			}
		case vfs.KindFile:
			b, err := d.FS.ReadFile(path)
			if err != nil {
				return err
			}
			if err := os.WriteFile(target, b, 0o644); err != nil {
				return err
			}
		case vfs.KindLink:
			marker := []byte("-> " + d.FS.Path(n.Target()) + "\n")
			if err := os.WriteFile(target+".link", marker, 0o644); err != nil {
				return err
			}
		}
		count++
		return nil
	})
	return count, err
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
