// Command idmload drives a running imemexd daemon with concurrent
// multi-tenant load: it seeds N tenants (one inline filesystem source
// each, carrying a tenant-unique marker word), then runs C clients per
// tenant issuing paginated queries, periodic syncs and checkpoints for
// the given duration, and reports throughput, latency, 429 backpressure
// counts and any isolation violations (a tenant seeing another
// tenant's marker).
//
// Usage:
//
//	idmload -addr localhost:7133 [-tenants 50] [-clients 4] [-duration 30s]
//	        [-token-file tokens.txt]
//
// The in-repo load/soak/chaos harness lives in internal/server's tests
// (make load-smoke); idmload is the out-of-process flavor for hammering
// a real deployment.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

type counters struct {
	requests atomic.Int64
	rows     atomic.Int64
	throttle atomic.Int64
	errors   atomic.Int64
	leaks    atomic.Int64
	totalNs  atomic.Int64
}

func main() {
	addr := flag.String("addr", "localhost:7133", "imemexd address")
	tenants := flag.Int("tenants", 50, "number of tenants")
	clients := flag.Int("clients", 4, "concurrent clients per tenant")
	duration := flag.Duration("duration", 30*time.Second, "load duration")
	tokenFile := flag.String("token-file", "", "optional tenant:token file (same format as imemexd -tokens)")
	flag.Parse()

	tokens := map[string]string{}
	if *tokenFile != "" {
		b, err := os.ReadFile(*tokenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, line := range bytes.Split(b, []byte("\n")) {
			if t, tok, ok := bytes.Cut(bytes.TrimSpace(line), []byte(":")); ok {
				tokens[string(t)] = string(tok)
			}
		}
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}
	var c counters

	fmt.Fprintf(os.Stderr, "seeding %d tenants...\n", *tenants)
	var wg sync.WaitGroup
	for i := 0; i < *tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant%03d", i)
			body := map[string]any{
				"id":   "docs",
				"files": map[string]string{
					"/docs/a.txt": fmt.Sprintf("alpha document for marker%03d", i),
					"/docs/b.txt": fmt.Sprintf("beta notes with marker%03d inside", i),
					"/docs/c.txt": fmt.Sprintf("gamma report marker%03d edition", i),
				},
				"sync": true,
			}
			if _, _, err := call(client, tokens, base, name, "POST", "/sources", body, &c); err != nil {
				fmt.Fprintf(os.Stderr, "seed %s: %v\n", name, err)
			}
		}(i)
	}
	wg.Wait()

	fmt.Fprintf(os.Stderr, "running %d×%d clients for %v...\n", *tenants, *clients, *duration)
	deadline := time.Now().Add(*duration)
	for i := 0; i < *tenants; i++ {
		for j := 0; j < *clients; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				name := fmt.Sprintf("tenant%03d", i)
				marker := fmt.Sprintf("marker%03d", i)
				other := fmt.Sprintf("marker%03d", (i+1)%*tenants)
				for k := 0; time.Now().Before(deadline); k++ {
					switch k % 8 {
					case 6: // cross-tenant probe: must see nothing
						_, rows, err := call(client, tokens, base, name, "POST", "/query",
							map[string]any{"q": fmt.Sprintf("%q", other)}, &c)
						if err == nil && rows > 0 {
							c.leaks.Add(1)
						}
					case 7:
						call(client, tokens, base, name, "POST", "/checkpoint", map[string]any{}, &c)
					default:
						cursor := ""
						for {
							body := map[string]any{"q": fmt.Sprintf("%q", marker), "limit": 2}
							if cursor != "" {
								body["cursor"] = cursor
							}
							next, _, err := call(client, tokens, base, name, "POST", "/query", body, &c)
							if err != nil || next == "" {
								break
							}
							cursor = next
						}
					}
				}
			}(i, j)
		}
	}
	wg.Wait()

	elapsed := duration.Seconds()
	n := c.requests.Load()
	fmt.Printf("requests   %d (%.0f/s)\n", n, float64(n)/elapsed)
	fmt.Printf("rows       %d\n", c.rows.Load())
	fmt.Printf("throttled  %d (429 backpressure)\n", c.throttle.Load())
	fmt.Printf("errors     %d\n", c.errors.Load())
	fmt.Printf("leaks      %d (cross-tenant rows — MUST be 0)\n", c.leaks.Load())
	if n > 0 {
		fmt.Printf("mean lat   %v\n", time.Duration(c.totalNs.Load()/n).Round(time.Microsecond))
	}
	if c.leaks.Load() > 0 {
		os.Exit(1)
	}
}

// call issues one tenant API request, retrying 429s once after the
// advertised Retry-After. Returns the next_cursor and row count for
// query responses.
func call(client *http.Client, tokens map[string]string, base, tenant, method, path string, body any, c *counters) (next string, rows int, err error) {
	b, _ := json.Marshal(body)
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, base+"/v1/t/"+tenant+path, bytes.NewReader(b))
		if err != nil {
			return "", 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if tok := tokens[tenant]; tok != "" {
			req.Header.Set("Authorization", "Bearer "+tok)
		}
		start := time.Now()
		resp, err := client.Do(req)
		c.requests.Add(1)
		c.totalNs.Add(int64(time.Since(start)))
		if err != nil {
			c.errors.Add(1)
			return "", 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			c.throttle.Add(1)
			if attempt < 1 {
				time.Sleep(time.Second)
				continue
			}
			return "", 0, nil
		}
		var out struct {
			NextCursor string            `json:"next_cursor"`
			Rows       []json.RawMessage `json:"rows"`
			Error      string            `json:"error"`
		}
		dec := json.NewDecoder(resp.Body)
		decErr := dec.Decode(&out)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			c.errors.Add(1)
			return "", 0, fmt.Errorf("%s %s: %d %s", method, path, resp.StatusCode, out.Error)
		}
		if decErr != nil {
			c.errors.Add(1)
			return "", 0, decErr
		}
		c.rows.Add(int64(len(out.Rows)))
		return out.NextCursor, len(out.Rows), nil
	}
}
