package idm_test

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	idm "repro"
)

var updateGolden = flag.Bool("update", false, "rewrite the EXPLAIN golden files")

// durRE matches the wall-clock durations the span renderer prints; they
// are the only nondeterministic part of an EXPLAIN over a fixed store
// evaluated serially.
var durRE = regexp.MustCompile(`[0-9]+(\.[0-9]+)?(ns|µs|ms|s)`)

func normalizeExplain(s string) string {
	return durRE.ReplaceAllString(s, "<dur>")
}

// explainSystem builds the deterministic paper-example dataspace the
// golden files are pinned against: a folder tree holding a LaTeX paper
// whose converter output includes sections, a figure environment and a
// \ref cross edge.
func explainSystem(t *testing.T) *idm.System {
	t.Helper()
	fs := idm.NewFileSystem()
	fs.MkdirAll("/papers/VLDB2006")
	fs.WriteFile("/papers/VLDB2006/vldb.tex", []byte(
		"\\section{Introduction} Mike Franklin dataspaces vision \\ref{fig:index}\n"+
			"\\section{GrandVision} Franklin agrees systems\n"+
			"\\begin{figure}\\label{fig:index} indexing time plot \\end{figure}\n"))
	sys := idm.Open(idm.Config{Now: fixedNow, Parallelism: 1})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestExplainGolden pins the full EXPLAIN (parse → plan → eval span
// tree) of three paper example queries — a keyword query, a path query
// with a class predicate, and a texref/figure join — against golden
// files. Run `go test -run TestExplainGolden -update .` after deliberate
// planner or tracer changes.
func TestExplainGolden(t *testing.T) {
	sys := explainSystem(t)
	cases := []struct {
		name  string
		query string
	}{
		{"keyword", `"Mike Franklin"`},
		{"path", `//VLDB2006//Introduction[class="latex_section"]`},
		{"join", `join( //[class="texref"] as A, //figure*[class="environment"] as B, A.name = B.tuple.label )`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := sys.Explain(tc.query)
			if err != nil {
				t.Fatalf("Explain(%q): %v", tc.query, err)
			}
			got := normalizeExplain(out)
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
