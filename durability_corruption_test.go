package idm_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/store"
)

// The corruption suite pins the recovery contract against binary golden
// fixtures under testdata/store: a WAL segment and a snapshot written by
// the current format, plus the stable-serialization digest of every
// record prefix. Each corruption — truncated tail, bit-flipped checksum,
// zero-filled pages, damaged snapshot — must recover to the last good
// prefix with a logged warning, never a panic. If the on-disk format
// drifts, the byte fixtures stop matching and this suite fails; run
// `go test -run TestCorruption -update .` only after a deliberate format
// change.

const corruptionSource = "fs"

// corruptionRecords is the fixed mutation script behind the fixtures.
func corruptionRecords() []store.Record {
	tc := core.TupleComponent{
		Schema: core.Schema{
			{Name: "size", Domain: core.DomainInt},
			{Name: "title", Domain: core.DomainString},
		},
		Tuple: core.Tuple{core.Int(4242), core.String("iDM")},
	}
	up := func(oid catalog.OID, uri, text string) store.Record {
		return store.Record{Kind: store.KindUpsert, View: &store.ViewRecord{
			Entry: catalog.Entry{
				OID: oid, Name: filepath.Base(uri), Class: "file",
				Source: corruptionSource, URI: uri, Parent: oid - 1,
				HasTuple: true, HasContent: text != "",
				ContentSize: int64(len(text)), Stamp: fmt.Sprintf("sz:%d", len(text)),
			},
			Tuple: tc,
			Text:  text,
		}}
	}
	return []store.Record{
		up(1, "/papers", ""),
		up(2, "/papers/vldb.tex", "dataspaces vision"),
		up(3, "/papers/notes.txt", "reading notes"),
		{Kind: store.KindEdges, Source: corruptionSource, Edges: []store.EdgeList{
			{Parent: 1, Children: []catalog.OID{2, 3}},
		}},
		up(4, "/papers/old.txt", "obsolete"),
		{Kind: store.KindRemove, OID: 4},
		{Kind: store.KindEdges, Source: corruptionSource, Edges: []store.EdgeList{
			{Parent: 1, Children: []catalog.OID{2, 3}},
		}},
	}
}

func corruptionFixtureDir() string { return filepath.Join("testdata", "store") }

// writeCorruptionFixtures regenerates segment.wal, snapshot.snap and
// digests.golden through the real store, so fixture bytes are exactly
// what the current implementation writes.
func writeCorruptionFixtures(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(corruptionFixtureDir(), 0o755); err != nil {
		t.Fatal(err)
	}
	run := func(snapshot bool) string {
		dir := t.TempDir()
		s, _, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range corruptionRecords() {
			if err := s.Append(corruptionSource, rec); err != nil {
				t.Fatal(err)
			}
		}
		if snapshot {
			if err := s.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	seg, err := os.ReadFile(segmentPath(run(false)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corruptionFixtureDir(), "segment.wal"), seg, 0o644); err != nil {
		t.Fatal(err)
	}

	snaps, err := filepath.Glob(filepath.Join(run(true), "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshot fixture: %v (%d files)", err, len(snaps))
	}
	img, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corruptionFixtureDir(), "snapshot.snap"), img, 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	st := store.NewState()
	fmt.Fprintf(&out, "prefix 0: %s\n", st.Digest())
	for i, rec := range corruptionRecords() {
		st.Apply(rec)
		fmt.Fprintf(&out, "prefix %d: %s\n", i+1, st.Digest())
	}
	if err := os.WriteFile(filepath.Join(corruptionFixtureDir(), "digests.golden"), []byte(out.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// segmentPath locates the fixture source's segment inside a store dir.
func segmentPath(dir string) string {
	return filepath.Join(dir, "wal", fmt.Sprintf("seg-%x.wal", corruptionSource))
}

// loadCorruptionFixtures returns the segment bytes, the snapshot bytes,
// and the per-prefix digests.
func loadCorruptionFixtures(t *testing.T) (seg, snap []byte, digests []string) {
	t.Helper()
	var err error
	if seg, err = os.ReadFile(filepath.Join(corruptionFixtureDir(), "segment.wal")); err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if snap, err = os.ReadFile(filepath.Join(corruptionFixtureDir(), "snapshot.snap")); err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(corruptionFixtureDir(), "digests.golden"))
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		_, d, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("malformed digests.golden line %q", line)
		}
		digests = append(digests, d)
	}
	return seg, snap, digests
}

// frameOffsets walks the segment's frame headers and returns the byte
// offset of every frame start plus the final end offset.
func frameOffsets(t *testing.T, seg []byte) []int {
	t.Helper()
	offs := []int{0}
	off := 0
	for off < len(seg) {
		if len(seg)-off < 8 {
			t.Fatalf("fixture segment has torn tail at %d", off)
		}
		plen := int(binary.LittleEndian.Uint32(seg[off:]))
		off += 8 + plen
		offs = append(offs, off)
	}
	return offs
}

// openScenario materializes a store directory with the given segment
// bytes (and optional snapshot image), recovers it, and returns the
// recovery info plus the recovered digest. It is the "reboot after
// corruption" half of every scenario.
func openScenario(t *testing.T, seg, snap []byte) (store.RecoveryInfo, string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if seg != nil {
		if err := os.WriteFile(segmentPath(dir), seg, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if snap != nil {
		if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000001.snap"), snap, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, info, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("recovery must tolerate corruption, got: %v", err)
	}
	defer s.Close()
	return info, s.Digest()
}

func TestCorruptionMatrix(t *testing.T) {
	if *updateGolden {
		writeCorruptionFixtures(t)
	}
	seg, snap, digests := loadCorruptionFixtures(t)
	offs := frameOffsets(t, seg)
	n := len(offs) - 1
	if n != len(corruptionRecords()) {
		t.Fatalf("fixture holds %d frames, script has %d records (run with -update after format changes)", n, len(corruptionRecords()))
	}

	t.Run("pristine-wal", func(t *testing.T) {
		info, digest := openScenario(t, seg, nil)
		if len(info.Warnings) != 0 {
			t.Fatalf("pristine segment warned: %v", info.Warnings)
		}
		if digest != digests[n] {
			t.Fatalf("digest %s, want %s — the WAL format drifted from the golden fixture", digest, digests[n])
		}
	})

	t.Run("pristine-snapshot", func(t *testing.T) {
		info, digest := openScenario(t, nil, snap)
		if len(info.Warnings) != 0 || info.SnapshotSeq != 1 {
			t.Fatalf("pristine snapshot: %+v", info)
		}
		if digest != digests[n] {
			t.Fatalf("digest %s, want %s — the snapshot format drifted from the golden fixture", digest, digests[n])
		}
	})

	t.Run("truncated-tail", func(t *testing.T) {
		// Cut into the last frame: recovery keeps the n-1 prefix.
		cut := offs[n-1] + (offs[n]-offs[n-1])/2
		info, digest := openScenario(t, seg[:cut], nil)
		if info.TornTails != 1 || len(info.Warnings) == 0 {
			t.Fatalf("truncated tail not reported: %+v", info)
		}
		if digest != digests[n-1] {
			t.Fatalf("digest %s, want last-good prefix %s", digest, digests[n-1])
		}
	})

	t.Run("bit-flipped-checksum", func(t *testing.T) {
		// Flip one payload byte in the middle frame: its checksum fails
		// and recovery keeps everything before it.
		j := n / 2
		mut := append([]byte(nil), seg...)
		mut[offs[j]+8] ^= 0x01
		info, digest := openScenario(t, mut, nil)
		if len(info.Warnings) == 0 || !strings.Contains(strings.Join(info.Warnings, "\n"), "checksum mismatch") {
			t.Fatalf("flip not detected as checksum mismatch: %+v", info)
		}
		if digest != digests[j] {
			t.Fatalf("digest %s, want prefix %s (records 1..%d)", digest, digests[j], j)
		}
	})

	t.Run("zero-filled-pages", func(t *testing.T) {
		// A lost write leaving zero pages after the good data: the zero
		// length marks the frame invalid, the full prefix survives.
		mut := append(append([]byte(nil), seg...), make([]byte, 4096)...)
		info, digest := openScenario(t, mut, nil)
		if len(info.Warnings) == 0 || !strings.Contains(strings.Join(info.Warnings, "\n"), "invalid frame length") {
			t.Fatalf("zero pages not detected: %+v", info)
		}
		if digest != digests[n] {
			t.Fatalf("digest %s, want full prefix %s", digest, digests[n])
		}
	})

	t.Run("zero-overwritten-tail", func(t *testing.T) {
		// The last frame's bytes were zeroed in place (page lost inside
		// the file): recovery keeps the prefix before it.
		mut := append([]byte(nil), seg...)
		for i := offs[n-1]; i < offs[n]; i++ {
			mut[i] = 0
		}
		info, digest := openScenario(t, mut, nil)
		if len(info.Warnings) == 0 {
			t.Fatalf("zeroed tail not reported: %+v", info)
		}
		if digest != digests[n-1] {
			t.Fatalf("digest %s, want last-good prefix %s", digest, digests[n-1])
		}
	})

	t.Run("corrupt-snapshot-falls-back-to-wal", func(t *testing.T) {
		// The snapshot is damaged but the WAL still holds every record:
		// recovery warns, skips the snapshot, and replays the full state.
		mut := append([]byte(nil), snap...)
		mut[len(mut)/2] ^= 0xff
		info, digest := openScenario(t, seg, mut)
		if len(info.Warnings) == 0 || info.SnapshotSeq != 0 {
			t.Fatalf("corrupt snapshot not skipped: %+v", info)
		}
		if digest != digests[n] {
			t.Fatalf("digest %s, want full prefix %s", digest, digests[n])
		}
	})

	t.Run("truncated-snapshot", func(t *testing.T) {
		// A snapshot missing its end marker (crash mid-write before the
		// rename... or media truncation) is rejected whole.
		info, digest := openScenario(t, nil, snap[:len(snap)-3])
		if len(info.Warnings) == 0 || info.SnapshotSeq != 0 {
			t.Fatalf("truncated snapshot not rejected: %+v", info)
		}
		if digest != digests[0] {
			t.Fatalf("digest %s, want empty state %s", digest, digests[0])
		}
	})
}

// TestCorruptionFixtureBytesStable pins that regenerating the fixtures
// through the current store produces the exact committed bytes — i.e.
// the on-disk format is deterministic and unchanged.
func TestCorruptionFixtureBytesStable(t *testing.T) {
	seg, _, _ := loadCorruptionFixtures(t)
	dir := t.TempDir()
	s, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, rec := range corruptionRecords() {
		if err := s.Append(corruptionSource, rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(segmentPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seg) {
		t.Fatal("re-running the fixture script produced different segment bytes: the WAL format is nondeterministic or drifted (run with -update if deliberate)")
	}
}
