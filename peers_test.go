package idm_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	idm "repro"
)

// newPeer builds a small indexed system whose one file contains marker.
func newPeer(t *testing.T, marker string) *idm.System {
	t.Helper()
	fs := idm.NewFileSystem()
	fs.MkdirAll("/docs")
	fs.WriteFile("/docs/note.txt", []byte("shared federated text plus "+marker))
	sys := idm.Open(idm.Config{Now: fixedNow})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFederationMergesPeers(t *testing.T) {
	fed := idm.NewFederation()
	if err := fed.AddPeer("laptop", newPeer(t, "laptopmarker")); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddPeer("desktop", newPeer(t, "desktopmarker")); err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query(`"shared federated text"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("rows = %d", res.Count())
	}
	peers := map[string]bool{}
	for _, r := range res.Rows {
		peers[r.Peer] = true
		if r.Row[0].Name != "note.txt" {
			t.Errorf("row item = %+v", r.Row[0])
		}
	}
	if !peers["laptop"] || !peers["desktop"] {
		t.Errorf("peers = %v", peers)
	}
	// Rows arrive peer-sorted.
	if res.Rows[0].Peer != "desktop" {
		t.Errorf("first peer = %q", res.Rows[0].Peer)
	}
	if len(res.Errors) != 0 {
		t.Errorf("errors = %v", res.Errors)
	}
}

func TestFederationPeerLocalResults(t *testing.T) {
	fed := idm.NewFederation()
	fed.AddPeer("a", newPeer(t, "onlyona"))
	fed.AddPeer("b", newPeer(t, "onlyonb"))
	res, err := fed.Query(`"onlyona"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 || res.Rows[0].Peer != "a" {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestFederationDuplicateAndEmpty(t *testing.T) {
	fed := idm.NewFederation()
	sys := newPeer(t, "x")
	if err := fed.AddPeer("p", sys); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddPeer("p", sys); err == nil {
		t.Error("duplicate peer accepted")
	}
	if err := fed.AddPeer("", sys); err == nil {
		t.Error("empty peer name accepted")
	}
	empty := idm.NewFederation()
	if _, err := empty.Query(`"x"`); err == nil {
		t.Error("empty federation answered")
	}
	if got := fed.Peers(); len(got) != 1 || got[0] != "p" {
		t.Errorf("peers = %v", got)
	}
}

func TestFederationAllPeersFail(t *testing.T) {
	fed := idm.NewFederation()
	fed.AddPeer("a", newPeer(t, "x"))
	if _, err := fed.Query(`//bad[`); err == nil {
		t.Error("universally failing query did not error")
	} else if !strings.Contains(err.Error(), "peers failed") {
		t.Errorf("err = %v", err)
	}
}

// fakePeer answers every query with a canned result or error; it lets
// the tests exercise failure and schema-mismatch handling that real
// systems cannot easily produce.
type fakePeer struct {
	res *idm.Result
	err error
}

func (p fakePeer) Query(string) (*idm.Result, error) { return p.res, p.err }

func TestFederationColumnMismatch(t *testing.T) {
	fed := idm.NewFederation()
	if err := fed.AddPeer("alpha", newPeer(t, "sharedmarker")); err != nil {
		t.Fatal(err)
	}
	// Sorted after "alpha", so the real peer establishes the merged schema
	// and the fake's two-column answer must be rejected.
	odd := &idm.Result{
		Columns: []string{"left", "right"},
		Rows:    []idm.Row{{idm.Item{Name: "x"}, idm.Item{Name: "y"}}},
	}
	if err := fed.AddPeer("zeta", fakePeer{res: odd}); err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query(`"shared federated text"`)
	if err != nil {
		t.Fatalf("federation failed outright: %v", err)
	}
	for _, r := range res.Rows {
		if r.Peer == "zeta" {
			t.Fatalf("mismatched peer's rows merged: %+v", r)
		}
	}
	if res.Count() != 1 {
		t.Fatalf("rows = %d, want only the matching peer's 1", res.Count())
	}
	merr := res.Errors["zeta"]
	if merr == nil {
		t.Fatal("mismatch not recorded in Errors")
	}
	if !errors.Is(merr, idm.ErrColumnMismatch) {
		t.Fatalf("Errors[zeta] = %v, want ErrColumnMismatch", merr)
	}
	if !strings.Contains(merr.Error(), "left") || !strings.Contains(merr.Error(), "zeta") {
		t.Fatalf("mismatch error does not name the peer and its schema: %v", merr)
	}
	ps, ok := res.Peers["zeta"]
	if !ok || ps.Err == "" || ps.Rows != 0 {
		t.Fatalf("Peers[zeta] = %+v, want failure stats with zero rows", ps)
	}
	snap := fed.Metrics().Snapshot()
	if got := snap.Counters["fed_peer_zeta_errors_total"]; got != 1 {
		t.Errorf("fed_peer_zeta_errors_total = %d, want 1", got)
	}
	if got := snap.Counters["fed_peer_failures_total"]; got != 1 {
		t.Errorf("fed_peer_failures_total = %d, want 1", got)
	}
}

func TestFederationAllPeersFailCollectsErrors(t *testing.T) {
	sentinelA := errors.New("peer a down")
	sentinelB := errors.New("peer b down")
	fed := idm.NewFederation()
	fed.AddPeer("a", fakePeer{err: sentinelA})
	fed.AddPeer("b", fakePeer{err: sentinelB})
	_, err := fed.Query(`//anything`)
	if err == nil {
		t.Fatal("all-peers-fail query succeeded")
	}
	if !strings.Contains(err.Error(), "all 2 peers failed") {
		t.Errorf("err = %v, want the all-peers-failed summary", err)
	}
	// The federation error wraps the first peer's failure.
	if !errors.Is(err, sentinelA) {
		t.Errorf("err = %v does not wrap the first peer's error", err)
	}
	snap := fed.Metrics().Snapshot()
	if got := snap.Counters["fed_peer_failures_total"]; got != 2 {
		t.Errorf("fed_peer_failures_total = %d, want 2", got)
	}
	for _, name := range []string{"a", "b"} {
		if got := snap.Counters["fed_peer_"+name+"_errors_total"]; got != 1 {
			t.Errorf("fed_peer_%s_errors_total = %d, want 1", name, got)
		}
	}
}

func TestFederationTracedQuery(t *testing.T) {
	fed := idm.NewFederation()
	if err := fed.AddPeer("laptop", newPeer(t, "laptopmarker")); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddPeer("desktop", newPeer(t, "desktopmarker")); err != nil {
		t.Fatal(err)
	}
	res, trace, err := fed.QueryTraced(`"shared federated text"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("rows = %d, want 2", res.Count())
	}
	if trace == nil {
		t.Fatal("QueryTraced returned no trace")
	}
	// One merged trace: a timed peer span per peer, each carrying the
	// peer's own query trace grafted underneath.
	for _, name := range []string{"laptop", "desktop"} {
		sp := trace.Root().Find("peer " + name)
		if sp == nil {
			t.Fatalf("trace has no span for peer %q:\n%s", name, trace.Render())
		}
		if sp.Duration() <= 0 {
			t.Errorf("peer %q span is not timed", name)
		}
		if sp.FindPrefix("query") == nil {
			t.Errorf("peer %q span did not adopt the peer's own query trace:\n%s", name, trace.Render())
		}
		ps, ok := res.Peers[name]
		if !ok {
			t.Fatalf("FedResult.Peers missing %q", name)
		}
		if ps.DurationNs <= 0 || ps.Rows != 1 || ps.Err != "" {
			t.Errorf("Peers[%s] = %+v, want timed success with 1 row", name, ps)
		}
		if ps.Strategy == "" {
			t.Errorf("Peers[%s] carries no planner strategy", name)
		}
	}
	render := trace.Render()
	if !strings.Contains(render, "federated query") {
		t.Errorf("trace root missing:\n%s", render)
	}
	snap := fed.Metrics().Snapshot()
	if snap.Counters["fed_queries_total"] != 1 {
		t.Errorf("fed_queries_total = %d, want 1", snap.Counters["fed_queries_total"])
	}
	for _, name := range []string{"laptop", "desktop"} {
		h := snap.Histograms["fed_peer_"+name+"_query_ns"]
		if h.Count != 1 {
			t.Errorf("fed_peer_%s_query_ns count = %d, want 1", name, h.Count)
		}
	}
}

func TestQueryRankedFacade(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/many.txt", []byte("idm idm idm idm"))
	fs.WriteFile("/d/few.txt", []byte("idm once"))
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()
	res, err := sys.QueryRanked(`"idm"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != res.Count() || res.Count() != 2 {
		t.Fatalf("scores=%v count=%d", res.Scores, res.Count())
	}
	if res.Rows[0][0].Name != "many.txt" || res.Scores[0] != 4 {
		t.Errorf("top = %+v score %v", res.Rows[0][0], res.Scores[0])
	}
	if res.Scores[1] != 1 {
		t.Errorf("second score = %v", res.Scores[1])
	}
}

// slowPeer answers after a fixed delay — the tail-latency straggler the
// hedging policy exists for.
type slowPeer struct {
	res   *idm.Result
	err   error
	delay time.Duration
}

func (p slowPeer) Query(string) (*idm.Result, error) {
	time.Sleep(p.delay)
	return p.res, p.err
}

// peerDownError is a typed failure used to pin errors.As through the
// federation's wrapping.
type peerDownError struct{ code int }

func (e *peerDownError) Error() string { return fmt.Sprintf("peer down (code %d)", e.code) }

func oneRow(name string) *idm.Result {
	return &idm.Result{Columns: []string{"view"}, Rows: []idm.Row{{idm.Item{Name: name}}}}
}

// TestFederationAllFailErrorIdentity is the regression for the all-fail
// path's error wrapping: the first peer's error must survive both
// errors.Is and errors.As through the federation's wrap — and keep
// surviving when replicas were tried and failed too (failover must not
// replace the primary's error with a replica's).
func TestFederationAllFailErrorIdentity(t *testing.T) {
	primaryErr := &peerDownError{code: 42}
	fed := idm.NewFederation()
	fed.AddPeer("alpha", fakePeer{err: primaryErr})
	if err := fed.AddPeerReplicas("alpha", fakePeer{err: errors.New("replica down")}); err != nil {
		t.Fatal(err)
	}
	_, err := fed.Query(`//x`)
	if err == nil {
		t.Fatal("all-fail query succeeded")
	}
	var down *peerDownError
	if !errors.As(err, &down) {
		t.Fatalf("errors.As failed through the federation wrap: %v", err)
	}
	if down.code != 42 {
		t.Fatalf("unwrapped wrong error: %+v", down)
	}
	if !errors.Is(err, primaryErr) {
		t.Fatalf("errors.Is lost the primary's error: %v", err)
	}
	if strings.Contains(err.Error(), "replica down") {
		t.Fatalf("failover replaced the primary's error: %v", err)
	}
	// AddPeerReplicas guards its inputs.
	if err := fed.AddPeerReplicas("ghost", fakePeer{}); err == nil {
		t.Error("replicas attached to an unregistered peer")
	}
	if err := fed.AddPeerReplicas("alpha", nil); err == nil {
		t.Error("nil replica accepted")
	}
}

// TestFederationHedging pins the hedged-request path: a slow primary
// with a fast replica answers via the hedge well before the primary
// would, the result is flagged Hedged, and fed_hedges_total counts it.
func TestFederationHedging(t *testing.T) {
	fed := idm.NewFederation()
	fed.AddPeer("slow", slowPeer{res: oneRow("primary"), delay: 2 * time.Second})
	if err := fed.AddPeerReplicas("slow", fakePeer{res: oneRow("replica")}); err != nil {
		t.Fatal(err)
	}
	fed.SetPolicy(idm.FedPolicy{HedgeAfter: 5 * time.Millisecond})

	start := time.Now()
	res, err := fed.Query(`//x`)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not cut the tail: %v", elapsed)
	}
	if res.Count() != 1 || res.Rows[0].Row[0].Name != "replica" {
		t.Fatalf("rows = %+v, want the replica's answer", res.Rows)
	}
	ps := res.Peers["slow"]
	if !ps.Hedged {
		t.Fatalf("Peers[slow] = %+v, want Hedged", ps)
	}
	snap := fed.Metrics().Snapshot()
	if got := snap.Counters["fed_hedges_total"]; got != 1 {
		t.Errorf("fed_hedges_total = %d, want 1", got)
	}
}

// TestFederationPeerTimeout pins the per-peer deadline: a peer that
// cannot answer in time is recorded failed with ErrPeerTimeout while the
// healthy peer's rows still arrive.
func TestFederationPeerTimeout(t *testing.T) {
	fed := idm.NewFederation()
	fed.AddPeer("healthy", fakePeer{res: oneRow("ok")})
	fed.AddPeer("stuck", slowPeer{res: oneRow("late"), delay: 2 * time.Second})
	fed.SetPolicy(idm.FedPolicy{PeerTimeout: 20 * time.Millisecond})

	res, err := fed.Query(`//x`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 || res.Rows[0].Peer != "healthy" {
		t.Fatalf("rows = %+v, want only the healthy peer's", res.Rows)
	}
	terr := res.Errors["stuck"]
	if terr == nil || !errors.Is(terr, idm.ErrPeerTimeout) {
		t.Fatalf("Errors[stuck] = %v, want ErrPeerTimeout", terr)
	}
	if !strings.Contains(terr.Error(), "stuck") {
		t.Fatalf("timeout error does not name the peer: %v", terr)
	}
	snap := fed.Metrics().Snapshot()
	if got := snap.Counters["fed_peer_timeouts_total"]; got != 1 {
		t.Errorf("fed_peer_timeouts_total = %d, want 1", got)
	}
}

// TestFederationFailoverOnError pins immediate failover: a primary that
// errors outright is covered by its replica with no hedge delay
// configured, and the peer still contributes rows.
func TestFederationFailoverOnError(t *testing.T) {
	fed := idm.NewFederation()
	fed.AddPeer("flaky", fakePeer{err: errors.New("primary exploded")})
	if err := fed.AddPeerReplicas("flaky", fakePeer{res: oneRow("replica")}); err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query(`//x`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 || res.Rows[0].Row[0].Name != "replica" {
		t.Fatalf("rows = %+v, want the replica's answer", res.Rows)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("failover still recorded errors: %v", res.Errors)
	}
	if !res.Peers["flaky"].Hedged {
		t.Fatalf("Peers[flaky] = %+v, want Hedged (failover)", res.Peers["flaky"])
	}
}

// TestFederationReplicaLagStale pins the lag-aware merge: a lagging
// read replica serving as a peer flags its rows stale, and the
// federated result surfaces Stale + StalePeers without special cases.
func TestFederationReplicaLagStale(t *testing.T) {
	leaderSys, _ := durableLeader(t)
	leader := leaderSys.ReplicationLeader()
	leader.SetMaxBatch(5)
	rep, err := idm.OpenReplica(t.TempDir(), leader, idm.Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Pull(); err != nil { // one capped pull: still lagging
		t.Fatal(err)
	}
	if rep.Lag() == 0 {
		t.Fatal("fixture replica is not lagging")
	}

	fed := idm.NewFederation()
	if err := fed.AddPeer("replica", rep); err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query(`//*`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stale {
		t.Fatal("lagging replica's answer did not flag the federated result stale")
	}
	if len(res.StalePeers) != 1 || res.StalePeers[0] != "replica" {
		t.Fatalf("StalePeers = %v, want [replica]", res.StalePeers)
	}
	if !res.Peers["replica"].Stale {
		t.Fatalf("Peers[replica] = %+v, want Stale", res.Peers["replica"])
	}

	// Catching up clears the flag end to end.
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	res, err = fed.Query(`//*`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || len(res.StalePeers) != 0 {
		t.Fatalf("caught-up replica still stale: %v", res.StalePeers)
	}
}
