package idm_test

import (
	"strings"
	"testing"

	idm "repro"
)

// newPeer builds a small indexed system whose one file contains marker.
func newPeer(t *testing.T, marker string) *idm.System {
	t.Helper()
	fs := idm.NewFileSystem()
	fs.MkdirAll("/docs")
	fs.WriteFile("/docs/note.txt", []byte("shared federated text plus "+marker))
	sys := idm.Open(idm.Config{Now: fixedNow})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFederationMergesPeers(t *testing.T) {
	fed := idm.NewFederation()
	if err := fed.AddPeer("laptop", newPeer(t, "laptopmarker")); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddPeer("desktop", newPeer(t, "desktopmarker")); err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query(`"shared federated text"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("rows = %d", res.Count())
	}
	peers := map[string]bool{}
	for _, r := range res.Rows {
		peers[r.Peer] = true
		if r.Row[0].Name != "note.txt" {
			t.Errorf("row item = %+v", r.Row[0])
		}
	}
	if !peers["laptop"] || !peers["desktop"] {
		t.Errorf("peers = %v", peers)
	}
	// Rows arrive peer-sorted.
	if res.Rows[0].Peer != "desktop" {
		t.Errorf("first peer = %q", res.Rows[0].Peer)
	}
	if len(res.Errors) != 0 {
		t.Errorf("errors = %v", res.Errors)
	}
}

func TestFederationPeerLocalResults(t *testing.T) {
	fed := idm.NewFederation()
	fed.AddPeer("a", newPeer(t, "onlyona"))
	fed.AddPeer("b", newPeer(t, "onlyonb"))
	res, err := fed.Query(`"onlyona"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 || res.Rows[0].Peer != "a" {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestFederationDuplicateAndEmpty(t *testing.T) {
	fed := idm.NewFederation()
	sys := newPeer(t, "x")
	if err := fed.AddPeer("p", sys); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddPeer("p", sys); err == nil {
		t.Error("duplicate peer accepted")
	}
	if err := fed.AddPeer("", sys); err == nil {
		t.Error("empty peer name accepted")
	}
	empty := idm.NewFederation()
	if _, err := empty.Query(`"x"`); err == nil {
		t.Error("empty federation answered")
	}
	if got := fed.Peers(); len(got) != 1 || got[0] != "p" {
		t.Errorf("peers = %v", got)
	}
}

func TestFederationAllPeersFail(t *testing.T) {
	fed := idm.NewFederation()
	fed.AddPeer("a", newPeer(t, "x"))
	if _, err := fed.Query(`//bad[`); err == nil {
		t.Error("universally failing query did not error")
	} else if !strings.Contains(err.Error(), "peers failed") {
		t.Errorf("err = %v", err)
	}
}

func TestQueryRankedFacade(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/many.txt", []byte("idm idm idm idm"))
	fs.WriteFile("/d/few.txt", []byte("idm once"))
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()
	res, err := sys.QueryRanked(`"idm"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != res.Count() || res.Count() != 2 {
		t.Fatalf("scores=%v count=%d", res.Scores, res.Count())
	}
	if res.Rows[0][0].Name != "many.txt" || res.Scores[0] != 4 {
		t.Errorf("top = %+v score %v", res.Rows[0][0], res.Scores[0])
	}
	if res.Scores[1] != 1 {
		t.Errorf("second score = %v", res.Scores[1])
	}
}
