package idm_test

import (
	"testing"

	idm "repro"
)

func cacheSystem(t *testing.T, disable bool) (*idm.System, *idm.FS) {
	t.Helper()
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/a.txt", []byte("cachable content"))
	sys := idm.Open(idm.Config{Now: fixedNow, DisableQueryCache: disable})
	sys.AddFileSystem("filesystem", fs)
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys, fs
}

func TestQueryCacheHitsOnRepeat(t *testing.T) {
	sys, _ := cacheSystem(t, false)
	for i := 0; i < 3; i++ {
		res, err := sys.Query(`"cachable content"`)
		if err != nil || res.Count() != 1 {
			t.Fatalf("run %d: %v (%d)", i, err, res.Count())
		}
	}
	st := sys.CacheStats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", st)
	}
	if st.Size != 1 {
		t.Errorf("size = %d", st.Size)
	}
}

func TestQueryCacheInvalidatedByChange(t *testing.T) {
	sys, fs := cacheSystem(t, false)
	res, _ := sys.Query(`"cachable content"`)
	if res.Count() != 1 {
		t.Fatal("setup")
	}
	// A change bumps the dataspace version; the stale entry must not
	// be served.
	fs.WriteFile("/d/b.txt", []byte("more cachable content here"))
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`"cachable content"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Errorf("after change: %d results (stale cache?)", res.Count())
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	sys, _ := cacheSystem(t, true)
	sys.Query(`"cachable content"`)
	sys.Query(`"cachable content"`)
	if st := sys.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Size != 0 {
		t.Errorf("disabled cache has stats %+v", st)
	}
}

// TestQueryCacheLatencyStats checks the System-level surface of the
// latency/age accounting: a miss records its evaluation cost, hits stay
// far cheaper, and live entries age.
func TestQueryCacheLatencyStats(t *testing.T) {
	sys, _ := cacheSystem(t, false)
	for i := 0; i < 3; i++ {
		if _, err := sys.Query(`"cachable content"`); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.CacheStats()
	if st.MissLatency <= 0 {
		t.Errorf("MissLatency = %v, want > 0 (the miss paid a full evaluation)", st.MissLatency)
	}
	if st.HitLatency > st.MissLatency {
		t.Errorf("HitLatency %v exceeds MissLatency %v", st.HitLatency, st.MissLatency)
	}
	if st.OldestEntryAge < 0 || st.AvgEntryAge < 0 {
		t.Errorf("negative entry age: %+v", st)
	}
	if st.AvgEntryAge > st.OldestEntryAge {
		t.Errorf("AvgEntryAge %v exceeds OldestEntryAge %v", st.AvgEntryAge, st.OldestEntryAge)
	}
}

func TestQueryCacheErrorsNotCached(t *testing.T) {
	sys, _ := cacheSystem(t, false)
	if _, err := sys.Query(`//bad[`); err == nil {
		t.Fatal("bad query accepted")
	}
	if st := sys.CacheStats(); st.Size != 0 {
		t.Errorf("error cached: %+v", st)
	}
}
