package idm

import (
	"sync"
	"time"
)

// queryCache memoizes query results keyed by query text, invalidated by
// the dataspace version: any change the Synchronization Manager applies
// bumps the version, so cached results are never stale. This is the
// "warm cache" of the paper's Figure 6 made explicit.
type queryCache struct {
	// now supplies the cache's clock (latency and entry-age accounting);
	// injectable for tests.
	now func() time.Time

	mu        sync.Mutex
	entries   map[string]cacheEntry
	cap       int
	hits      int64
	misses    int64
	evictions int64
	// hitNanos accumulates the time get spent serving hits; missNanos
	// the evaluation cost callers paid to fill entries (reported by put),
	// over fills entries.
	hitNanos  int64
	missNanos int64
	fills     int64
}

type cacheEntry struct {
	version uint64
	res     *Result
	added   time.Time
	// sources names the sources whose views appear in res, so
	// invalidateSource can drop exactly the entries a source
	// unregistration affects.
	sources map[string]bool
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &queryCache{
		now:     time.Now,
		entries: make(map[string]cacheEntry, capacity),
		cap:     capacity,
	}
}

// get returns the cached result for a query at the given dataspace
// version.
func (c *queryCache) get(query string, version uint64) (*Result, bool) {
	start := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[query]
	if !ok || e.version != version {
		c.misses++
		return nil, false
	}
	c.hits++
	c.hitNanos += int64(c.now().Sub(start))
	return e.res, true
}

// put stores a result together with the evaluation cost the caller paid
// to compute it — the price of the preceding miss. When the cache is
// full it is cleared wholesale — queries repeat within sessions, so a
// periodic cold start is cheaper than tracking recency.
func (c *queryCache) put(query string, version uint64, res *Result, cost time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.cap {
		c.evictions += int64(len(c.entries))
		c.entries = make(map[string]cacheEntry, c.cap)
	}
	c.missNanos += int64(cost)
	c.fills++
	var srcs map[string]bool
	for _, row := range res.Rows {
		for _, item := range row {
			if item.Source == "" {
				continue
			}
			if srcs == nil {
				srcs = make(map[string]bool)
			}
			srcs[item.Source] = true
		}
	}
	c.entries[query] = cacheEntry{version: version, res: res, added: c.now(), sources: srcs}
}

// invalidateSource drops every entry whose result contains rows from the
// given source. Unregistering a source bumps the dataspace version (its
// views are journaled as removals), which already guards correctness;
// dropping the affected entries eagerly keeps the cache from carrying
// dead results until the wholesale clear.
func (c *queryCache) invalidateSource(id string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for q, e := range c.entries {
		if e.sources[id] {
			delete(c.entries, q)
			dropped++
		}
	}
	c.evictions += int64(dropped)
	return dropped
}

// CacheStats reports query-cache effectiveness.
type CacheStats struct {
	Hits   int64
	Misses int64
	Size   int
	// Evictions counts entries dropped by wholesale clears: the cache
	// evicts everything at once when full, so this grows in steps of
	// the capacity reached.
	Evictions int64
	// HitLatency is the mean time a cache hit took to serve.
	HitLatency time.Duration
	// MissLatency is the mean evaluation cost paid to fill an entry —
	// what a miss costs compared to HitLatency.
	MissLatency time.Duration
	// AvgEntryAge and OldestEntryAge describe how stale the current
	// entries are (age since insertion; entries are version-checked, so
	// old entries are still correct, just cold candidates).
	AvgEntryAge    time.Duration
	OldestEntryAge time.Duration
}

func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Size:      len(c.entries),
		Evictions: c.evictions,
	}
	if c.hits > 0 {
		st.HitLatency = time.Duration(c.hitNanos / c.hits)
	}
	if c.fills > 0 {
		st.MissLatency = time.Duration(c.missNanos / c.fills)
	}
	if len(c.entries) > 0 {
		now := c.now()
		var sum time.Duration
		for _, e := range c.entries {
			age := now.Sub(e.added)
			sum += age
			if age > st.OldestEntryAge {
				st.OldestEntryAge = age
			}
		}
		st.AvgEntryAge = sum / time.Duration(len(c.entries))
	}
	return st
}
