package idm

import "sync"

// queryCache memoizes query results keyed by query text, invalidated by
// the dataspace version: any change the Synchronization Manager applies
// bumps the version, so cached results are never stale. This is the
// "warm cache" of the paper's Figure 6 made explicit.
type queryCache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	cap       int
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	version uint64
	res     *Result
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &queryCache{entries: make(map[string]cacheEntry), cap: capacity}
}

// get returns the cached result for a query at the given dataspace
// version.
func (c *queryCache) get(query string, version uint64) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[query]
	if !ok || e.version != version {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.res, true
}

// put stores a result. When the cache is full it is cleared wholesale —
// queries repeat within sessions, so a periodic cold start is cheaper
// than tracking recency.
func (c *queryCache) put(query string, version uint64, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.cap {
		c.evictions += int64(len(c.entries))
		c.entries = make(map[string]cacheEntry, c.cap)
	}
	c.entries[query] = cacheEntry{version: version, res: res}
}

// CacheStats reports query-cache effectiveness.
type CacheStats struct {
	Hits   int64
	Misses int64
	Size   int
	// Evictions counts entries dropped by wholesale clears: the cache
	// evicts everything at once when full, so this grows in steps of
	// the capacity reached.
	Evictions int64
}

func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: len(c.entries), Evictions: c.evictions}
}
