package idm_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	idm "repro"
	"repro/internal/obs"
)

// parallelSystem builds a dataspace wide enough (256 sibling documents)
// that the iQL engine's sharded stages pass their parallel threshold,
// so traced queries show per-worker spans. It pins the rule planner:
// these tests exercise forced fan-out regardless of the host's core
// count, which the adaptive planner deliberately refuses on small
// machines.
func parallelSystem(t *testing.T, parallelism int) *idm.System {
	t.Helper()
	fs := idm.NewFileSystem()
	fs.MkdirAll("/docs")
	for i := 0; i < 256; i++ {
		fs.WriteFile(fmt.Sprintf("/docs/doc%03d.txt", i),
			[]byte("wide blob content for shard testing"))
	}
	sys := idm.Open(idm.Config{Now: fixedNow, Parallelism: parallelism, RulePlanner: true})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSystemTraceSpanTree is the tentpole acceptance check: Trace on a
// parallel system returns the parse → plan → eval span tree with
// per-worker spans for the sharded stages.
func TestSystemTraceSpanTree(t *testing.T) {
	sys := parallelSystem(t, 4)
	res, tr, err := sys.Trace(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 256 {
		t.Fatalf("result count = %d, want 256", res.Count())
	}
	if tr == nil {
		t.Fatal("Trace returned nil trace")
	}
	out := tr.Render()
	for _, want := range []string{"parse", "plan", "eval", "worker "} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Explain renders the same evaluation.
	explained, err := sys.Explain(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explained, "eval") {
		t.Errorf("Explain missing eval span:\n%s", explained)
	}
}

func TestSystemTraceSerialHasNoWorkerSpans(t *testing.T) {
	sys := parallelSystem(t, 1)
	_, tr, err := sys.Trace(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if out := tr.Render(); strings.Contains(out, "worker ") {
		t.Errorf("serial trace has worker spans:\n%s", out)
	}
}

func TestIndexTraced(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/a.txt", []byte("indexed content"))
	sys := idm.Open(idm.Config{Now: fixedNow})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	rep, tr, err := sys.IndexTraced()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalViews() == 0 {
		t.Fatal("IndexTraced registered no views")
	}
	out := tr.Render()
	for _, want := range []string{"sync filesystem", "views=", "source access="} {
		if !strings.Contains(out, want) {
			t.Errorf("index trace missing %q:\n%s", want, out)
		}
	}
}

// TestSystemMetricsEndToEnd checks that one System call path lights up
// every layer's instruments in the shared registry.
func TestSystemMetricsEndToEnd(t *testing.T) {
	sys := parallelSystem(t, 2)
	for i := 0; i < 2; i++ {
		if _, err := sys.Query(`"blob"`); err != nil {
			t.Fatal(err)
		}
	}
	snap := sys.Metrics().Snapshot()
	if got := snap.Counters["idm_queries_total"]; got != 2 {
		t.Errorf("idm_queries_total = %d, want 2", got)
	}
	if snap.Counters["idm_cache_misses_total"] != 1 || snap.Counters["idm_cache_hits_total"] != 1 {
		t.Errorf("cache counters = %d miss / %d hit, want 1/1",
			snap.Counters["idm_cache_misses_total"], snap.Counters["idm_cache_hits_total"])
	}
	if snap.Histograms["idm_query_ns"].Count != 2 {
		t.Errorf("idm_query_ns count = %d, want 2", snap.Histograms["idm_query_ns"].Count)
	}
	// The cache hit never reached the engine.
	if got := snap.Counters["iql_queries_total"]; got != 1 {
		t.Errorf("iql_queries_total = %d, want 1", got)
	}
	if snap.Counters["rvm_syncs_total"] == 0 {
		t.Error("rvm_syncs_total did not record")
	}
	if snap.Counters["source_filesystem_root_calls_total"] == 0 {
		t.Error("source instruments did not record")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
}

func TestDisableMetrics(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/a.txt", []byte("quiet content"))
	sys := idm.Open(idm.Config{Now: fixedNow, DisableMetrics: true})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(`"quiet content"`); err != nil {
		t.Fatal(err)
	}
	snap := sys.Metrics().Snapshot()
	for name, v := range snap.Counters {
		if v != 0 {
			t.Errorf("disabled registry recorded %s = %d", name, v)
		}
	}
	// Re-enabling at runtime starts recording without rewiring.
	sys.Metrics().SetEnabled(true)
	if _, err := sys.Query(`"quiet content"`); err != nil {
		t.Fatal(err)
	}
	if sys.Metrics().Snapshot().Counters["idm_queries_total"] != 1 {
		t.Error("re-enabled registry did not record")
	}
}

// TestConcurrentQueriesWithMetricsScrape is the -race gate: parallel
// query evaluation (sharded workers inside each query, several queries
// in flight) while another goroutine continuously snapshots and
// serializes the registry.
func TestConcurrentQueriesWithMetricsScrape(t *testing.T) {
	sys := parallelSystem(t, 4)
	queries := []string{
		`"blob"`,
		`//doc*[ "blob" ]`,
		`//docs/*`,
		`"shard testing"`,
	}
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := sys.Metrics().Snapshot()
			var buf bytes.Buffer
			_ = snap.WriteJSON(&buf)
			_ = sys.CacheStats()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := sys.Query(q); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if i%10 == 0 {
					if _, _, err := sys.Trace(q); err != nil {
						t.Errorf("worker %d trace: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraped
	snap := sys.Metrics().Snapshot()
	if snap.Counters["idm_queries_total"] != 100 {
		t.Errorf("idm_queries_total = %d, want 100", snap.Counters["idm_queries_total"])
	}
}

// TestQueryLogFacadeStats checks the per-query resource accounting end
// to end: Result.Stats is populated, the query log retains it, and a
// cache hit is logged as such while keeping the original cost figures.
func TestQueryLogFacadeStats(t *testing.T) {
	sys := parallelSystem(t, 2)
	res, err := sys.Query(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows != 256 {
		t.Errorf("Stats.Rows = %d, want 256", res.Stats.Rows)
	}
	if res.Stats.ElapsedNs <= 0 {
		t.Error("Stats.ElapsedNs not set")
	}
	if res.Stats.Strategy == "" {
		t.Error("Stats.Strategy not set")
	}
	if res.Stats.PostingsRead == 0 && res.Stats.RowsScanned == 0 {
		t.Errorf("stats show no work done: %+v", res.Stats)
	}
	qlog := sys.QueryLog()
	if qlog == nil {
		t.Fatal("QueryLog() = nil with default config")
	}
	recent := qlog.Recent(1)
	if len(recent) != 1 {
		t.Fatalf("query log retained %d records, want 1", len(recent))
	}
	rec := recent[0]
	if rec.Query != `//doc*[ "blob" ]` || rec.Rows != 256 || rec.CacheHit {
		t.Errorf("logged record = %+v", rec)
	}
	if rec.Stats.PostingsRead != res.Stats.PostingsRead || rec.Stats.RowsScanned != res.Stats.RowsScanned {
		t.Errorf("log stats %+v disagree with result stats %+v", rec.Stats, res.Stats)
	}

	// The same query again is served from the cache and logged as a hit
	// that kept the original cost accounting.
	hit, err := sys.Query(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Stats.CacheHit {
		t.Error("cached result's Stats.CacheHit not set")
	}
	if got := qlog.Total(); got != 2 {
		t.Fatalf("query log total = %d, want 2", got)
	}
	hitRec := qlog.Recent(1)[0]
	if !hitRec.CacheHit {
		t.Errorf("cache hit logged without CacheHit: %+v", hitRec)
	}
	if hitRec.Stats.PostingsRead != rec.Stats.PostingsRead {
		t.Errorf("cache-hit record lost the original stats: %+v", hitRec.Stats)
	}
}

// TestQueryLogSlowTraceCapture checks the slow-query path: with a
// threshold every query clears, the log retains a full trace render;
// a negative threshold keeps the log but disables slow capture; a
// negative log size disables logging entirely.
func TestQueryLogSlowTraceCapture(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/a.txt", []byte("slow capture content"))

	sys := idm.Open(idm.Config{Now: fixedNow, SlowQuery: time.Nanosecond})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(`"slow capture content"`); err != nil {
		t.Fatal(err)
	}
	qlog := sys.QueryLog()
	if got := qlog.SlowTotal(); got != 1 {
		t.Fatalf("SlowTotal = %d, want 1 (threshold 1ns)", got)
	}
	slow := qlog.Slow(1)
	if len(slow) != 1 || !slow[0].Slow {
		t.Fatalf("Slow(1) = %+v", slow)
	}
	for _, want := range []string{"parse", "eval"} {
		if !strings.Contains(slow[0].Trace, want) {
			t.Errorf("slow record's trace missing %q:\n%s", want, slow[0].Trace)
		}
	}

	// SlowQuery < 0: log stays on, slow capture off.
	quiet := idm.Open(idm.Config{Now: fixedNow, SlowQuery: -1})
	quiet.AddFileSystem("filesystem", fs)
	quiet.Index()
	if _, err := quiet.Query(`"slow capture content"`); err != nil {
		t.Fatal(err)
	}
	if quiet.QueryLog().Total() != 1 || quiet.QueryLog().SlowTotal() != 0 {
		t.Errorf("negative SlowQuery: total=%d slow=%d, want 1/0",
			quiet.QueryLog().Total(), quiet.QueryLog().SlowTotal())
	}

	// QueryLogSize < 0: no log at all, queries unaffected.
	off := idm.Open(idm.Config{Now: fixedNow, QueryLogSize: -1})
	off.AddFileSystem("filesystem", fs)
	off.Index()
	if _, err := off.Query(`"slow capture content"`); err != nil {
		t.Fatal(err)
	}
	if off.QueryLog() != nil {
		t.Error("QueryLog() != nil with QueryLogSize -1")
	}
}

// TestDebugSurfaceQueryLogEndpoint checks /debug/queries and the index
// page of the debug mux.
func TestDebugSurfaceQueryLogEndpoint(t *testing.T) {
	sys := parallelSystem(t, 1)
	for _, q := range []string{`"blob"`, `"blob"`, `//docs/*`} {
		if _, err := sys.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(obs.HandlerWith(sys.Metrics(), sys.QueryLog()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/queries?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var snap obs.QueryLogSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/debug/queries JSON invalid: %v", err)
	}
	if !snap.Enabled || snap.Total != 3 {
		t.Errorf("snapshot = enabled %v total %d, want true/3", snap.Enabled, snap.Total)
	}
	if len(snap.Recent) != 2 {
		t.Fatalf("?n=2 returned %d records", len(snap.Recent))
	}
	if snap.Recent[0].ID <= snap.Recent[1].ID {
		t.Errorf("records not newest-first: %d then %d", snap.Recent[0].ID, snap.Recent[1].ID)
	}
	if snap.Recent[0].Query != `//docs/*` {
		t.Errorf("newest record = %q", snap.Recent[0].Query)
	}
	// The middle query was a cache hit; ?n=3 shows it flagged.
	resp3, err := http.Get(srv.URL + "/debug/queries?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var snap3 obs.QueryLogSnapshot
	if err := json.NewDecoder(resp3.Body).Decode(&snap3); err != nil {
		t.Fatal(err)
	}
	if len(snap3.Recent) != 3 || !snap3.Recent[1].CacheHit {
		t.Errorf("cache hit not flagged in log: %+v", snap3.Recent)
	}

	// Index page links every endpoint.
	home, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer home.Body.Close()
	page, _ := io.ReadAll(home.Body)
	for _, want := range []string{"/debug/metrics", "/debug/metrics/prom", "/debug/queries", "/debug/vars", "/debug/pprof/"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("index page missing %q", want)
		}
	}

	// A mux without a query log reports enabled: false rather than 404.
	bare := httptest.NewServer(obs.Handler(sys.Metrics()))
	defer bare.Close()
	respOff, err := http.Get(bare.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer respOff.Body.Close()
	var off obs.QueryLogSnapshot
	if err := json.NewDecoder(respOff.Body).Decode(&off); err != nil {
		t.Fatal(err)
	}
	if off.Enabled {
		t.Error("logless mux reports an enabled query log")
	}
}

// TestDebugSurfacePromParses scrapes /debug/metrics/prom and parses
// every line of the exposition, validating what a Prometheus scraper
// relies on: the name charset, one TYPE declaration per family,
// cumulative non-decreasing buckets, and le="+Inf" == _count.
func TestDebugSurfacePromParses(t *testing.T) {
	sys := parallelSystem(t, 2)
	if _, err := sys.Query(`"blob"`); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(obs.HandlerWith(sys.Metrics(), sys.QueryLog()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("content type = %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]+)"\})? (-?\d+)$`)

	types := map[string]string{}    // family -> kind
	samples := map[string]int64{}   // bare sample name -> value
	buckets := map[string][]int64{} // histogram -> finite bucket values in order
	infs := map[string]int64{}      // histogram -> +Inf bucket
	counts := map[string]int64{}    // histogram -> _count
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			if _, dup := types[m[1]]; dup {
				t.Fatalf("duplicate TYPE declaration for %s", m[1])
			}
			types[m[1]] = m[2]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line %q", line)
		}
		name, le := m[1], m[2]
		v, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && le != "":
			base := strings.TrimSuffix(name, "_bucket")
			if types[base] != "histogram" {
				t.Fatalf("bucket sample %q for undeclared histogram %q", line, base)
			}
			if le == "+Inf" {
				infs[base] = v
			} else {
				if _, err := strconv.ParseInt(le, 10, 64); err != nil {
					t.Fatalf("non-numeric bucket bound in %q", line)
				}
				buckets[base] = append(buckets[base], v)
			}
		case strings.HasSuffix(name, "_sum") && types[strings.TrimSuffix(name, "_sum")] == "histogram":
			// value recorded only for existence
		case strings.HasSuffix(name, "_count") && types[strings.TrimSuffix(name, "_count")] == "histogram":
			counts[strings.TrimSuffix(name, "_count")] = v
		default:
			kind := types[name]
			if kind != "counter" && kind != "gauge" {
				t.Fatalf("sample %q has no TYPE declaration", line)
			}
			samples[name] = v
		}
	}

	for base, kind := range types {
		if kind != "histogram" {
			continue
		}
		var prev int64
		for i, v := range buckets[base] {
			if v < prev {
				t.Errorf("%s buckets not cumulative at index %d: %d < %d", base, i, v, prev)
			}
			prev = v
		}
		inf, ok := infs[base]
		if !ok {
			t.Errorf("%s has no +Inf bucket", base)
		}
		if prev > inf {
			t.Errorf("%s finite buckets (%d) exceed +Inf (%d)", base, prev, inf)
		}
		if inf != counts[base] {
			t.Errorf("%s +Inf bucket %d != _count %d", base, inf, counts[base])
		}
	}

	// Known series from the query above must be present with sane values.
	if samples["idm_queries_total"] < 1 {
		t.Errorf("idm_queries_total = %d, want >= 1", samples["idm_queries_total"])
	}
	if types["idm_query_ns"] != "histogram" || counts["idm_query_ns"] < 1 {
		t.Errorf("idm_query_ns: type %q count %d, want histogram with >= 1 observation",
			types["idm_query_ns"], counts["idm_query_ns"])
	}
}
