package idm_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	idm "repro"
)

// parallelSystem builds a dataspace wide enough (256 sibling documents)
// that the iQL engine's sharded stages pass their parallel threshold,
// so traced queries show per-worker spans. It pins the rule planner:
// these tests exercise forced fan-out regardless of the host's core
// count, which the adaptive planner deliberately refuses on small
// machines.
func parallelSystem(t *testing.T, parallelism int) *idm.System {
	t.Helper()
	fs := idm.NewFileSystem()
	fs.MkdirAll("/docs")
	for i := 0; i < 256; i++ {
		fs.WriteFile(fmt.Sprintf("/docs/doc%03d.txt", i),
			[]byte("wide blob content for shard testing"))
	}
	sys := idm.Open(idm.Config{Now: fixedNow, Parallelism: parallelism, RulePlanner: true})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSystemTraceSpanTree is the tentpole acceptance check: Trace on a
// parallel system returns the parse → plan → eval span tree with
// per-worker spans for the sharded stages.
func TestSystemTraceSpanTree(t *testing.T) {
	sys := parallelSystem(t, 4)
	res, tr, err := sys.Trace(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 256 {
		t.Fatalf("result count = %d, want 256", res.Count())
	}
	if tr == nil {
		t.Fatal("Trace returned nil trace")
	}
	out := tr.Render()
	for _, want := range []string{"parse", "plan", "eval", "worker "} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Explain renders the same evaluation.
	explained, err := sys.Explain(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explained, "eval") {
		t.Errorf("Explain missing eval span:\n%s", explained)
	}
}

func TestSystemTraceSerialHasNoWorkerSpans(t *testing.T) {
	sys := parallelSystem(t, 1)
	_, tr, err := sys.Trace(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if out := tr.Render(); strings.Contains(out, "worker ") {
		t.Errorf("serial trace has worker spans:\n%s", out)
	}
}

func TestIndexTraced(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/a.txt", []byte("indexed content"))
	sys := idm.Open(idm.Config{Now: fixedNow})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	rep, tr, err := sys.IndexTraced()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalViews() == 0 {
		t.Fatal("IndexTraced registered no views")
	}
	out := tr.Render()
	for _, want := range []string{"sync filesystem", "views=", "source access="} {
		if !strings.Contains(out, want) {
			t.Errorf("index trace missing %q:\n%s", want, out)
		}
	}
}

// TestSystemMetricsEndToEnd checks that one System call path lights up
// every layer's instruments in the shared registry.
func TestSystemMetricsEndToEnd(t *testing.T) {
	sys := parallelSystem(t, 2)
	for i := 0; i < 2; i++ {
		if _, err := sys.Query(`"blob"`); err != nil {
			t.Fatal(err)
		}
	}
	snap := sys.Metrics().Snapshot()
	if got := snap.Counters["idm_queries_total"]; got != 2 {
		t.Errorf("idm_queries_total = %d, want 2", got)
	}
	if snap.Counters["idm_cache_misses_total"] != 1 || snap.Counters["idm_cache_hits_total"] != 1 {
		t.Errorf("cache counters = %d miss / %d hit, want 1/1",
			snap.Counters["idm_cache_misses_total"], snap.Counters["idm_cache_hits_total"])
	}
	if snap.Histograms["idm_query_ns"].Count != 2 {
		t.Errorf("idm_query_ns count = %d, want 2", snap.Histograms["idm_query_ns"].Count)
	}
	// The cache hit never reached the engine.
	if got := snap.Counters["iql_queries_total"]; got != 1 {
		t.Errorf("iql_queries_total = %d, want 1", got)
	}
	if snap.Counters["rvm_syncs_total"] == 0 {
		t.Error("rvm_syncs_total did not record")
	}
	if snap.Counters["source_filesystem_root_calls_total"] == 0 {
		t.Error("source instruments did not record")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
}

func TestDisableMetrics(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/a.txt", []byte("quiet content"))
	sys := idm.Open(idm.Config{Now: fixedNow, DisableMetrics: true})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(`"quiet content"`); err != nil {
		t.Fatal(err)
	}
	snap := sys.Metrics().Snapshot()
	for name, v := range snap.Counters {
		if v != 0 {
			t.Errorf("disabled registry recorded %s = %d", name, v)
		}
	}
	// Re-enabling at runtime starts recording without rewiring.
	sys.Metrics().SetEnabled(true)
	if _, err := sys.Query(`"quiet content"`); err != nil {
		t.Fatal(err)
	}
	if sys.Metrics().Snapshot().Counters["idm_queries_total"] != 1 {
		t.Error("re-enabled registry did not record")
	}
}

// TestConcurrentQueriesWithMetricsScrape is the -race gate: parallel
// query evaluation (sharded workers inside each query, several queries
// in flight) while another goroutine continuously snapshots and
// serializes the registry.
func TestConcurrentQueriesWithMetricsScrape(t *testing.T) {
	sys := parallelSystem(t, 4)
	queries := []string{
		`"blob"`,
		`//doc*[ "blob" ]`,
		`//docs/*`,
		`"shard testing"`,
	}
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := sys.Metrics().Snapshot()
			var buf bytes.Buffer
			_ = snap.WriteJSON(&buf)
			_ = sys.CacheStats()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := sys.Query(q); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if i%10 == 0 {
					if _, _, err := sys.Trace(q); err != nil {
						t.Errorf("worker %d trace: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraped
	snap := sys.Metrics().Snapshot()
	if snap.Counters["idm_queries_total"] != 100 {
		t.Errorf("idm_queries_total = %d, want 100", snap.Counters["idm_queries_total"])
	}
}
