package idm_test

import (
	"errors"
	"fmt"
	"testing"

	idm "repro"
	"repro/internal/repl"
)

// durableLeader runs the deterministic fixture sync on a durable System
// and returns it (still open, ready to ship its WAL).
func durableLeader(t *testing.T) (*idm.System, string) {
	return durableLeaderB(t, idm.BackendWAL)
}

// durableLeaderB is durableLeader on an explicit storage backend —
// record shipping is backend-independent, and the differential suite
// proves it.
func durableLeaderB(t *testing.T, backend idm.StorageBackend) (*idm.System, string) {
	t.Helper()
	dir := t.TempDir()
	sys, _, err := idm.OpenDurable(durableConfigB(dir, backend, nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.AddFileSystem("filesystem", durableFS()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys, dir
}

// TestReplicaCrashMatrix is the crash-a-follower matrix: a replica is
// killed at every shipped-record boundary (crash before appending record
// k to its local WAL) and mid-record (crash after half of record k is
// written), then reopened from its directory; catch-up must converge to
// the leader's StateDigest every time. The crashed replica's recovered
// prefix must also be byte-equal — via the stable serialization digest —
// to the reference state after k-1 records, proving the follower's
// durability has the same last-good-prefix contract as the leader's.
func TestReplicaCrashMatrix(t *testing.T) {
	leaderSys, leaderDir := durableLeader(t)
	leader := leaderSys.ReplicationLeader()
	if leader == nil {
		t.Fatal("durable system has no replication leader")
	}
	refFinal := leaderSys.StateDigest()
	prefixes := walPrefixDigests(t, leaderDir)
	n := len(prefixes) - 1
	if n < 5 {
		t.Fatalf("leader logged only %d records; fixture too small for a matrix", n)
	}
	t.Logf("replica crash matrix over %d shipped records × 2 crash modes", n)

	modes := []struct {
		name  string
		point string
	}{
		{"boundary", repl.FaultApply},       // crash before record k is logged
		{"mid-record", repl.FaultApplyTorn}, // crash after half of record k
	}
	for _, mode := range modes {
		for k := 1; k <= n; k++ {
			t.Run(fmt.Sprintf("%s/record-%02d", mode.name, k), func(t *testing.T) {
				dir := t.TempDir()
				inj := idm.NewFaultInjector(1)
				inj.Add(idm.FaultRule{Point: mode.point, Kind: idm.FaultError, After: k - 1, Times: 1})
				rep, err := idm.OpenReplica(dir, leader, idm.Config{Parallelism: 1, Faults: inj})
				if err != nil {
					t.Fatal(err)
				}
				err = rep.CatchUp()
				if !errors.Is(err, repl.ErrCrashed) {
					t.Fatalf("injected crash did not kill the replica: %v", err)
				}
				// Dead means dead: the crashed replica refuses further
				// pulls until reopened, like a killed process.
				if _, err := rep.Pull(); !errors.Is(err, repl.ErrCrashed) {
					t.Fatalf("dead replica pulled anyway: %v", err)
				}
				rep.Close()

				// Reopen. Both crash modes lose exactly record k and
				// everything after it; the recovered durable state must be
				// the reference prefix of k-1 records.
				re, err := idm.OpenReplica(dir, leader, idm.Config{Parallelism: 1})
				if err != nil {
					t.Fatalf("replica recovery: %v", err)
				}
				defer re.Close()
				if got := re.StateDigest(); got != prefixes[k-1] {
					t.Fatalf("recovered digest != reference prefix after %d records\n got %s\nwant %s",
						k-1, got, prefixes[k-1])
				}
				if got := re.AppliedLSN(); got != uint64(k-1) {
					t.Fatalf("recovered applied LSN %d, want %d", got, k-1)
				}
				// Catch-up converges on the leader's exact state.
				if err := re.CatchUp(); err != nil {
					t.Fatalf("post-recovery catch-up: %v", err)
				}
				if got := re.StateDigest(); got != refFinal {
					t.Fatalf("caught-up replica diverged from leader\n got %s\nwant %s", got, refFinal)
				}
				if re.Lag() != 0 {
					t.Fatalf("caught-up replica reports lag %d", re.Lag())
				}
			})
		}
	}
}

// TestReplicaQueriesConverge pins query-level equivalence after a crash
// and recovery: the reopened, caught-up replica answers exactly like the
// leader.
func TestReplicaQueriesConverge(t *testing.T) {
	leaderSys, _ := durableLeader(t)
	leader := leaderSys.ReplicationLeader()

	dir := t.TempDir()
	inj := idm.NewFaultInjector(1)
	inj.Add(idm.FaultRule{Point: repl.FaultApply, Kind: idm.FaultError, After: 4, Times: 1})
	rep, err := idm.OpenReplica(dir, leader, idm.Config{Parallelism: 1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CatchUp(); !errors.Is(err, repl.ErrCrashed) {
		t.Fatalf("injected crash did not kill the replica: %v", err)
	}
	rep.Close()

	re, err := idm.OpenReplica(dir, leader, idm.Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.CatchUp(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`//*`,
		`//*.tex`,
		`//VLDB2006//Introduction[class="latex_section"]`,
		`//["dataspaces"]`,
	} {
		want, err := leaderSys.Query(q)
		if err != nil {
			t.Fatalf("leader %q: %v", q, err)
		}
		got, err := re.Query(q)
		if err != nil {
			t.Fatalf("replica %q: %v", q, err)
		}
		if got.Stale {
			t.Fatalf("caught-up replica answered %q stale: %v", q, got.StaleSources)
		}
		if len(got.Items) != len(want.Items) {
			t.Fatalf("%q: replica %d items, leader %d", q, len(got.Items), len(want.Items))
		}
		for i := range want.Items {
			if got.Items[i].OID != want.Items[i].OID || got.Items[i].Path != want.Items[i].Path {
				t.Fatalf("%q row %d: replica (%d, %s) leader (%d, %s)", q, i,
					got.Items[i].OID, got.Items[i].Path, want.Items[i].OID, want.Items[i].Path)
			}
		}
	}
}
