package idm_test

import (
	"testing"

	idm "repro"
	"repro/internal/core"
	"repro/internal/rss"
)

func relSystem(t *testing.T) *idm.System {
	t.Helper()
	db := idm.NewRelDB("persdb")
	schema := core.Schema{
		{Name: "title", Domain: core.DomainString},
		{Name: "venue", Domain: core.DomainString},
		{Name: "year", Domain: core.DomainInt},
	}
	if _, err := db.CreateRelation("publications", schema); err != nil {
		t.Fatal(err)
	}
	rows := []core.Tuple{
		{core.String("iDM"), core.String("VLDB"), core.Int(2006)},
		{core.String("iMeMex demo"), core.String("VLDB"), core.Int(2005)},
		{core.String("AGILE"), core.String("SIGMOD"), core.Int(2005)},
	}
	for _, r := range rows {
		if err := db.Insert("publications", r); err != nil {
			t.Fatal(err)
		}
	}
	sys := idm.Open(idm.Config{Now: fixedNow})
	if err := sys.AddRelational("reldb", db); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestIQLOverRelationalSource(t *testing.T) {
	sys := relSystem(t)
	// Tuple views carry (W, T); attribute predicates work on them.
	res, err := sys.Query(`//publications/[year > 2005]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 {
		t.Fatalf("year > 2005: %d results", res.Count())
	}
	if res.Items[0].Class != "tuple" {
		t.Errorf("class = %q", res.Items[0].Class)
	}
	// Class predicates reach relations and the database view.
	res, err = sys.Query(`//[class="relation"]`)
	if err != nil || res.Count() != 1 {
		t.Fatalf("relations: %v (%d)", err, res.Count())
	}
	res, err = sys.Query(`//[class="tuple" and venue = "VLDB"]`)
	if err != nil || res.Count() != 2 {
		t.Fatalf("VLDB tuples: %v (%d)", err, res.Count())
	}
}

func TestIQLOverRSSSource(t *testing.T) {
	srv := idm.NewRSSServer()
	srv.Publish("dbnews", rss.Item{Title: "iDM accepted at VLDB", Description: "unified dataspace model"})
	srv.Publish("dbnews", rss.Item{Title: "Dataspaces tutorial", Description: "Franklin Halevy Maier"})
	sys := idm.Open(idm.Config{Now: fixedNow})
	if err := sys.AddRSS("rss", srv, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	// Feed items are xmldoc/xmlelem subgraphs; their text is indexed.
	res, err := sys.Query(`"unified dataspace model"`)
	if err != nil || res.Count() == 0 {
		t.Fatalf("feed text: %v (%d)", err, res.Count())
	}
	// Element names are queryable as path steps.
	res, err = sys.Query(`//dbnews//item`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("items = %d", res.Count())
	}
}
