package tupleindex

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

func benchIndex(n int) *Index {
	rng := rand.New(rand.NewSource(1))
	ix := New()
	base := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		ix.Add(DocID(i+1), core.TupleComponent{
			Schema: core.FSSchema,
			Tuple: core.Tuple{
				core.Int(rng.Int63n(1 << 20)),
				core.Time(base.Add(time.Duration(rng.Intn(1e6)) * time.Second)),
				core.Time(base.Add(time.Duration(rng.Intn(1e6)) * time.Second)),
			},
		})
	}
	return ix
}

func BenchmarkTupleAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchIndex(1024)
	}
}

var sinkIDs []DocID

func BenchmarkTupleRangeQuery(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("rows-%d", n), func(b *testing.B) {
			ix := benchIndex(n)
			ix.Query("size", GT, core.Int(0)) // force the sort once
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkIDs = ix.Query("size", GT, core.Int(1<<19))
			}
		})
	}
}

func BenchmarkTupleEqualityQuery(b *testing.B) {
	ix := benchIndex(4096)
	ix.Query("size", GT, core.Int(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkIDs = ix.Query("size", EQ, core.Int(4242))
	}
}
