// Package tupleindex implements the tuple-component index & replica of
// §7.2 of the iDM paper: an in-memory replica of all resource views'
// tuple components plus an auxiliary sorted index based on vertical
// partitioning (the decomposition storage model of Copeland and
// Khoshafian, which the paper cites). Each attribute gets its own sorted
// column of (value, doc) pairs, so attribute predicates such as
// [size > 42000 and lastmodified < yesterday()] evaluate with binary
// search per attribute.
package tupleindex

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// DocID identifies one indexed resource view (its catalog OID).
type DocID uint64

// Op is a comparison operator for range queries.
type Op int

// Comparison operators.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
)

func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// entry is one (value, doc) pair of a column.
type entry struct {
	value core.Value
	doc   DocID
}

// column is the vertical partition for one attribute.
type column struct {
	entries []entry
	sorted  bool
}

// Index is the tuple index & replica. Index is safe for concurrent use.
type Index struct {
	mu      sync.RWMutex
	columns map[string]*column
	replica map[DocID]core.TupleComponent
}

// New returns an empty tuple index.
func New() *Index {
	return &Index{
		columns: make(map[string]*column),
		replica: make(map[DocID]core.TupleComponent),
	}
}

// Add indexes and replicates the tuple component of a document. Adding a
// document twice replaces its previous tuple. Attribute names are
// normalized to lower case.
func (ix *Index) Add(doc DocID, tc core.TupleComponent) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, exists := ix.replica[doc]; exists {
		ix.removeLocked(doc)
	}
	ix.replica[doc] = tc
	for i, attr := range tc.Schema {
		if i >= len(tc.Tuple) {
			break
		}
		name := strings.ToLower(attr.Name)
		col, ok := ix.columns[name]
		if !ok {
			col = &column{}
			ix.columns[name] = col
		}
		col.entries = append(col.entries, entry{value: tc.Tuple[i], doc: doc})
		col.sorted = false
	}
}

// Delete removes a document from the replica and all columns.
func (ix *Index) Delete(doc DocID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(doc)
}

func (ix *Index) removeLocked(doc DocID) {
	delete(ix.replica, doc)
	for name, col := range ix.columns {
		kept := col.entries[:0]
		for _, e := range col.entries {
			if e.doc != doc {
				kept = append(kept, e)
			}
		}
		col.entries = kept
		if len(col.entries) == 0 {
			delete(ix.columns, name)
		}
	}
}

// Tuple returns the replicated tuple component of a document.
func (ix *Index) Tuple(doc DocID) (core.TupleComponent, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	tc, ok := ix.replica[doc]
	return tc, ok
}

// DocCount returns the number of replicated documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.replica)
}

// Attributes returns the indexed attribute names in sorted order.
func (ix *Index) Attributes() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.columns))
	for n := range ix.columns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ensureSorted sorts a column by value (incomparable values order by
// domain, then by doc id for stability). Caller holds the write lock.
func (col *column) ensureSorted() {
	if col.sorted {
		return
	}
	sort.SliceStable(col.entries, func(i, j int) bool {
		a, b := col.entries[i], col.entries[j]
		if c, err := core.Compare(a.value, b.value); err == nil {
			if c != 0 {
				return c < 0
			}
			return a.doc < b.doc
		}
		if a.value.Kind != b.value.Kind {
			return a.value.Kind < b.value.Kind
		}
		return a.doc < b.doc
	})
	col.sorted = true
}

// Query returns the ids of documents whose attribute satisfies (op,
// value), in ascending id order. Documents lacking the attribute never
// match (including for NE). Values incomparable with the probe are
// skipped.
func (ix *Index) Query(attr string, op Op, value core.Value) []DocID {
	name := strings.ToLower(attr)
	// Fast path: an already-sorted column can be scanned under the read
	// lock, concurrently with other queries. The lock is held for the
	// whole scan — writers compact and re-sort col.entries in place, so
	// a snapshot of the slice header is not safe to read unlocked.
	ix.mu.RLock()
	col, ok := ix.columns[name]
	if ok && col.sorted {
		defer ix.mu.RUnlock()
		return col.query(op, value)
	}
	ix.mu.RUnlock()
	// Slow path after a write: sort under the write lock, then scan.
	ix.mu.Lock()
	defer ix.mu.Unlock()
	col, ok = ix.columns[name]
	if !ok {
		return nil
	}
	col.ensureSorted()
	return col.query(op, value)
}

// query scans a sorted column; the caller holds ix.mu (read or write).
func (col *column) query(op Op, value core.Value) []DocID {
	entries := col.entries
	var out []DocID
	if op == EQ {
		// Binary search both boundaries of the equal run.
		lo := sort.Search(len(entries), func(i int) bool {
			c, err := core.Compare(entries[i].value, value)
			if err != nil {
				return entries[i].value.Kind >= value.Kind
			}
			return c >= 0
		})
		hi := sort.Search(len(entries), func(i int) bool {
			c, err := core.Compare(entries[i].value, value)
			if err != nil {
				return entries[i].value.Kind > value.Kind
			}
			return c > 0
		})
		for _, e := range entries[lo:hi] {
			if c, err := core.Compare(e.value, value); err == nil && c == 0 {
				out = append(out, e.doc)
			}
		}
		return sortIDs(out)
	}
	if op == NE {
		for _, e := range entries {
			c, err := core.Compare(e.value, value)
			if err != nil {
				continue
			}
			if c != 0 {
				out = append(out, e.doc)
			}
		}
		return sortIDs(out)
	}

	// Range scan over the comparable span: binary search the boundary.
	lower := sort.Search(len(entries), func(i int) bool {
		c, err := core.Compare(entries[i].value, value)
		if err != nil {
			// Order incomparable domains by Kind to keep Search monotone.
			return entries[i].value.Kind >= value.Kind
		}
		switch op {
		case GT:
			return c > 0
		case GE:
			return c >= 0
		default: // LT, LE: search the first entry beyond the span
			if op == LT {
				return c >= 0
			}
			return c > 0
		}
	})
	var span []entry
	switch op {
	case GT, GE:
		span = entries[lower:]
	case LT, LE:
		span = entries[:lower]
	}
	for _, e := range span {
		if _, err := core.Compare(e.value, value); err == nil {
			out = append(out, e.doc)
		}
	}
	return sortIDs(out)
}

// AttrCard returns the number of column entries for an attribute (one
// per document carrying it). Planner statistics surface.
func (ix *Index) AttrCard(attr string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	col, ok := ix.columns[strings.ToLower(attr)]
	if !ok {
		return 0
	}
	return len(col.entries)
}

// CardEstimate bounds the number of documents whose attribute satisfies
// (op, value) using the same binary searches as Query but without
// materializing ids: the width of the matching span (incomparable
// values at the span edges may inflate the bound slightly). O(log n)
// after the column is sorted.
func (ix *Index) CardEstimate(attr string, op Op, value core.Value) int {
	name := strings.ToLower(attr)
	ix.mu.Lock()
	col, ok := ix.columns[name]
	if !ok {
		ix.mu.Unlock()
		return 0
	}
	col.ensureSorted()
	entries := col.entries
	ix.mu.Unlock()

	lo := sort.Search(len(entries), func(i int) bool {
		c, err := core.Compare(entries[i].value, value)
		if err != nil {
			return entries[i].value.Kind >= value.Kind
		}
		return c >= 0
	})
	hi := sort.Search(len(entries), func(i int) bool {
		c, err := core.Compare(entries[i].value, value)
		if err != nil {
			return entries[i].value.Kind > value.Kind
		}
		return c > 0
	})
	switch op {
	case EQ:
		return hi - lo
	case NE:
		return len(entries) - (hi - lo)
	case LT:
		return lo
	case LE:
		return hi
	case GT:
		return len(entries) - hi
	case GE:
		return len(entries) - lo
	default:
		return len(entries)
	}
}

// Scan calls fn for every replicated document; iteration order is
// unspecified. fn returning false stops the scan.
func (ix *Index) Scan(fn func(DocID, core.TupleComponent) bool) {
	ix.mu.RLock()
	docs := make([]DocID, 0, len(ix.replica))
	for d := range ix.replica {
		docs = append(docs, d)
	}
	ix.mu.RUnlock()
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	for _, d := range docs {
		tc, ok := ix.Tuple(d)
		if !ok {
			continue
		}
		if !fn(d, tc) {
			return
		}
	}
}

// SizeBytes estimates the memory footprint of the replica and columns
// for the Table 3 reproduction.
func (ix *Index) SizeBytes() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var n int64
	for name, col := range ix.columns {
		n += int64(len(name)) + 16
		n += int64(len(col.entries)) * 40
	}
	for _, tc := range ix.replica {
		n += 16
		for _, a := range tc.Schema {
			n += int64(len(a.Name)) + 8
		}
		for _, v := range tc.Tuple {
			n += 24 + int64(len(v.Str)) + int64(len(v.Bytes))
		}
	}
	return n
}

func sortIDs(ids []DocID) []DocID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Deduplicate (a doc may carry the same attribute once only, but be
	// defensive about repeated values after re-adds).
	out := ids[:0]
	var prev DocID
	for i, d := range ids {
		if i == 0 || d != prev {
			out = append(out, d)
			prev = d
		}
	}
	return out
}
