package tupleindex

import (
	"strings"

	"repro/internal/core"
)

// Builder constructs an Index with a bulk build: Add appends column
// entries without locking or duplicate probing (the caller feeds each
// document at most once per build, as a state restore does), and Build
// sorts every column exactly once — so the first post-restore query
// never pays the lazy re-sort, and re-added documents never trigger the
// O(column) compaction the incremental path performs. A Builder is
// single-use and not safe for concurrent use; the Index it returns is.
type Builder struct {
	ix *Index
}

// NewBuilder returns an empty bulk builder.
func NewBuilder() *Builder { return &Builder{ix: New()} }

// Add spills one document's tuple component. Re-adding a document falls
// back to the incremental replace path to keep semantics identical to
// Index.Add.
func (b *Builder) Add(doc DocID, tc core.TupleComponent) {
	if _, exists := b.ix.replica[doc]; exists {
		b.ix.removeLocked(doc)
	}
	b.ix.replica[doc] = tc
	for i, attr := range tc.Schema {
		if i >= len(tc.Tuple) {
			break
		}
		name := strings.ToLower(attr.Name)
		col, ok := b.ix.columns[name]
		if !ok {
			col = &column{}
			b.ix.columns[name] = col
		}
		col.entries = append(col.entries, entry{value: tc.Tuple[i], doc: doc})
	}
}

// DocCount returns the number of documents added so far.
func (b *Builder) DocCount() int { return len(b.ix.replica) }

// Build sorts every column once and returns the index. The builder
// must not be used afterwards.
func (b *Builder) Build() *Index {
	for _, col := range b.ix.columns {
		col.ensureSorted()
	}
	ix := b.ix
	b.ix = nil
	return ix
}
