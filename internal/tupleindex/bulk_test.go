package tupleindex

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestBuilderMatchesIncremental differentially pins the bulk build
// against the incremental path, including a re-added document (which
// the builder routes through the replace path).
func TestBuilderMatchesIncremental(t *testing.T) {
	feed := func(add func(DocID, core.TupleComponent)) {
		add(1, fsTC(100, day(1)))
		add(3, fsTC(500000, day(12)))
		add(2, fsTC(42000, day(10)))
		add(4, fsTC(420001, day(20)))
		add(3, fsTC(77, day(3))) // re-add replaces
	}
	inc := New()
	feed(inc.Add)
	b := NewBuilder()
	feed(b.Add)
	built := b.Build()

	if got, want := built.DocCount(), inc.DocCount(); got != want {
		t.Fatalf("DocCount %d, want %d", got, want)
	}
	if got, want := built.Attributes(), inc.Attributes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Attributes %v, want %v", got, want)
	}
	probes := []struct {
		attr  string
		op    Op
		value core.Value
	}{
		{"size", GT, core.Int(0)},
		{"size", LE, core.Int(42000)},
		{"size", EQ, core.Int(77)},
		{"size", EQ, core.Int(500000)}, // superseded value must be gone
		{"lastmodified", LT, core.Time(day(12))},
		{"owner", EQ, core.String("x")},
	}
	for _, p := range probes {
		if got, want := built.Query(p.attr, p.op, p.value), inc.Query(p.attr, p.op, p.value); !reflect.DeepEqual(got, want) {
			t.Errorf("Query(%s %s %v) = %v, want %v", p.attr, p.op, p.value, got, want)
		}
	}
	for _, doc := range []DocID{1, 2, 3, 4, 9} {
		gt, gok := built.Tuple(doc)
		wt, wok := inc.Tuple(doc)
		if gok != wok || !reflect.DeepEqual(gt, wt) {
			t.Errorf("Tuple(%d) = (%v,%v), want (%v,%v)", doc, gt, gok, wt, wok)
		}
	}
}
