package tupleindex

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func day(d int) time.Time {
	return time.Date(2005, 6, d, 0, 0, 0, 0, time.UTC)
}

func fsTC(size int64, mod time.Time) core.TupleComponent {
	return core.TupleComponent{
		Schema: core.FSSchema,
		Tuple:  core.Tuple{core.Int(size), core.Time(day(1)), core.Time(mod)},
	}
}

func seedIndex() *Index {
	ix := New()
	ix.Add(1, fsTC(100, day(1)))
	ix.Add(2, fsTC(42000, day(10)))
	ix.Add(3, fsTC(500000, day(12)))
	ix.Add(4, fsTC(420001, day(20)))
	return ix
}

func TestQueryRangeOps(t *testing.T) {
	ix := seedIndex()
	cases := []struct {
		op    Op
		value core.Value
		want  []DocID
	}{
		{GT, core.Int(42000), []DocID{3, 4}},
		{GE, core.Int(42000), []DocID{2, 3, 4}},
		{LT, core.Int(42000), []DocID{1}},
		{LE, core.Int(42000), []DocID{1, 2}},
		{EQ, core.Int(42000), []DocID{2}},
		{NE, core.Int(42000), []DocID{1, 3, 4}},
		{GT, core.Int(999999999), nil},
		{LT, core.Int(0), nil},
	}
	for _, c := range cases {
		got := ix.Query("size", c.op, c.value)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Query(size %s %v) = %v, want %v", c.op, c.value, got, c.want)
		}
	}
}

func TestQueryDates(t *testing.T) {
	ix := seedIndex()
	got := ix.Query("lastmodified", LT, core.Time(day(12)))
	if !reflect.DeepEqual(got, []DocID{1, 2}) {
		t.Errorf("date query = %v", got)
	}
}

func TestQueryAttributeCaseInsensitive(t *testing.T) {
	ix := seedIndex()
	if got := ix.Query("SIZE", GT, core.Int(0)); len(got) != 4 {
		t.Errorf("case-insensitive attr = %v", got)
	}
}

func TestQueryMissingAttribute(t *testing.T) {
	ix := seedIndex()
	if got := ix.Query("owner", EQ, core.String("x")); got != nil {
		t.Errorf("missing attribute = %v", got)
	}
}

func TestQueryNumericCoercion(t *testing.T) {
	ix := New()
	ix.Add(1, core.TupleComponent{
		Schema: core.Schema{{Name: "w", Domain: core.DomainFloat}},
		Tuple:  core.Tuple{core.Float(2.5)},
	})
	if got := ix.Query("w", GT, core.Int(2)); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("float vs int probe = %v", got)
	}
}

func TestQueryMixedDomainsSkipsIncomparable(t *testing.T) {
	ix := New()
	ix.Add(1, core.TupleComponent{
		Schema: core.Schema{{Name: "v", Domain: core.DomainString}},
		Tuple:  core.Tuple{core.String("zebra")},
	})
	ix.Add(2, core.TupleComponent{
		Schema: core.Schema{{Name: "v", Domain: core.DomainInt}},
		Tuple:  core.Tuple{core.Int(7)},
	})
	if got := ix.Query("v", GT, core.Int(1)); !reflect.DeepEqual(got, []DocID{2}) {
		t.Errorf("int probe over mixed column = %v", got)
	}
	if got := ix.Query("v", GE, core.String("a")); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("string probe over mixed column = %v", got)
	}
}

func TestReplica(t *testing.T) {
	ix := seedIndex()
	tc, ok := ix.Tuple(2)
	if !ok {
		t.Fatal("replica missing doc 2")
	}
	if v, _ := tc.Get("size"); v.Int != 42000 {
		t.Errorf("replicated size = %v", v)
	}
	if _, ok := ix.Tuple(99); ok {
		t.Error("phantom replica")
	}
}

func TestDelete(t *testing.T) {
	ix := seedIndex()
	ix.Delete(2)
	if got := ix.Query("size", GE, core.Int(0)); !reflect.DeepEqual(got, []DocID{1, 3, 4}) {
		t.Errorf("after delete = %v", got)
	}
	if _, ok := ix.Tuple(2); ok {
		t.Error("replica survives delete")
	}
	if ix.DocCount() != 3 {
		t.Errorf("count = %d", ix.DocCount())
	}
}

func TestReAddReplaces(t *testing.T) {
	ix := seedIndex()
	ix.Add(1, fsTC(999999, day(25)))
	got := ix.Query("size", EQ, core.Int(100))
	if len(got) != 0 {
		t.Errorf("old value survives re-add: %v", got)
	}
	if got := ix.Query("size", EQ, core.Int(999999)); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("new value missing: %v", got)
	}
}

func TestScanOrdered(t *testing.T) {
	ix := seedIndex()
	var ids []DocID
	ix.Scan(func(d DocID, tc core.TupleComponent) bool {
		ids = append(ids, d)
		return true
	})
	if !reflect.DeepEqual(ids, []DocID{1, 2, 3, 4}) {
		t.Errorf("scan order = %v", ids)
	}
	// Early stop.
	n := 0
	ix.Scan(func(DocID, core.TupleComponent) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop scanned %d", n)
	}
}

func TestAttributes(t *testing.T) {
	ix := seedIndex()
	attrs := ix.Attributes()
	want := []string{"creationtime", "lastmodified", "size"}
	if !reflect.DeepEqual(attrs, want) {
		t.Errorf("attributes = %v", attrs)
	}
}

func TestSizeBytes(t *testing.T) {
	ix := New()
	empty := ix.SizeBytes()
	ix.Add(1, fsTC(1, day(1)))
	if ix.SizeBytes() <= empty {
		t.Error("size did not grow")
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{EQ: "=", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v String = %q", int(op), op.String())
		}
	}
}

// Property: for a column of random ints, Query results agree with a
// naive scan for every operator.
func TestQueryAgainstNaiveQuick(t *testing.T) {
	schema := core.Schema{{Name: "v", Domain: core.DomainInt}}
	f := func(values []int16, probe int16) bool {
		ix := New()
		for i, v := range values {
			ix.Add(DocID(i+1), core.TupleComponent{Schema: schema, Tuple: core.Tuple{core.Int(int64(v))}})
		}
		for _, op := range []Op{EQ, NE, LT, LE, GT, GE} {
			var want []DocID
			for i, v := range values {
				keep := false
				switch op {
				case EQ:
					keep = v == probe
				case NE:
					keep = v != probe
				case LT:
					keep = v < probe
				case LE:
					keep = v <= probe
				case GT:
					keep = v > probe
				case GE:
					keep = v >= probe
				}
				if keep {
					want = append(want, DocID(i+1))
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := ix.Query("v", op, core.Int(int64(probe)))
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
