// Package store is the durability layer of the Replica & Indexes module
// (§5 of the iDM paper): an append-only, checksummed write-ahead log of
// resource-view-graph mutations plus periodic compacted snapshots. The
// Resource View Manager logs every replica commit here before applying
// it, so a crash or restart recovers the dataspace to the last durable
// prefix instead of discarding it and re-walking every source.
//
// Layout of a data directory:
//
//	<dir>/snap-<seq>.snap   compacted snapshot (atomic tmp+rename)
//	<dir>/wal/meta.wal      global records (source drops, OID counter)
//	<dir>/wal/seg-<hex>.wal per-source mutation segments
//
// Every WAL frame is [len][crc32c][payload] with the payload carrying a
// global log sequence number (LSN), so recovery merges the per-source
// segments back into one totally ordered mutation stream. A torn final
// frame — the signature of a crash mid-append — is detected by the
// checksum and truncated away with a logged warning, never a panic.
//
// The package is stdlib-only; see docs/PERSISTENCE.md for the format
// diagram, the recovery protocol and the fsync policy.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
)

// Kind classifies one WAL record.
type Kind uint8

// Record kinds.
const (
	kindInvalid Kind = iota
	// KindUpsert registers or updates one resource view: its catalog
	// entry, tuple component and the text/binary content fed to the
	// content indexes.
	KindUpsert
	// KindRemove deregisters one resource view.
	KindRemove
	// KindEdges atomically replaces a source's slice of the group
	// replica — the buffered last-good commit of a successful sync walk.
	KindEdges
	// KindDropSource removes a source and every view it contributed
	// (System.RemoveSource); logged to the meta segment because the
	// source's own segment is deleted.
	KindDropSource
	// KindMeta carries the OID and LSN counters; written at snapshot
	// time and when a source is dropped, so neither counter regresses.
	KindMeta
	// KindSnapshotEnd terminates a snapshot file; a snapshot without it
	// is invalid (crash mid-write) and recovery falls back.
	KindSnapshotEnd
)

func (k Kind) String() string {
	switch k {
	case KindUpsert:
		return "upsert"
	case KindRemove:
		return "remove"
	case KindEdges:
		return "edges"
	case KindDropSource:
		return "drop-source"
	case KindMeta:
		return "meta"
	case KindSnapshotEnd:
		return "snapshot-end"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ViewRecord is the durable form of one resource view: the catalog
// entry plus the replicated components the indexes are rebuilt from.
type ViewRecord struct {
	Entry catalog.Entry
	// Tuple is the replicated τ component (tuple index & replica).
	Tuple core.TupleComponent
	// Text is the textual content fed to the content index (the
	// paper's "net input"), already truncated to MaxContentBytes.
	Text string
	// Binary is the binary content fed to the image similarity index;
	// empty unless image indexing is on.
	Binary []byte
}

// EdgeList is one parent's ordered children in a group-replica commit.
type EdgeList struct {
	Parent   catalog.OID
	Children []catalog.OID
}

// Record is one WAL mutation.
type Record struct {
	Kind Kind
	// View is set for KindUpsert.
	View *ViewRecord
	// OID is set for KindRemove.
	OID catalog.OID
	// Source is set for KindEdges and KindDropSource.
	Source string
	// Edges is set for KindEdges: the full replacement of the source's
	// group edges, parents in ascending OID order.
	Edges []EdgeList
	// NextOID and NextLSN are set for KindMeta.
	NextOID catalog.OID
	NextLSN uint64
}

// MaxRecordBytes bounds one encoded record; larger frames are treated
// as corruption. Content is capped upstream (Options.MaxContentBytes,
// default 4 MiB), so the bound is generous.
const MaxRecordBytes = 64 << 20

var errCorrupt = errors.New("store: corrupt record")

// appendUvarint/appendString are the primitive encoders; all multi-byte
// integers in the format are uvarints except CRC and frame length.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w at offset %d", errCorrupt, d.off)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// length reads a length prefix bounded by the remaining buffer, so a
// corrupt (or adversarial) length can never force a huge allocation.
func (d *decoder) length() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *decoder) string() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytes() []byte {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, d.b[d.off:d.off+n])
	d.off += n
	return p
}

// encodeValue writes one atomic tuple value. Times are stored as Unix
// seconds + nanos and reconstructed in UTC, which preserves Compare
// semantics (and therefore index answers) across restarts.
func encodeValue(b []byte, v core.Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case core.DomainNull:
	case core.DomainString:
		b = appendString(b, v.Str)
	case core.DomainInt:
		b = appendVarint(b, v.Int)
	case core.DomainFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float))
	case core.DomainBool:
		if v.Bool {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case core.DomainTime:
		if v.Time.IsZero() {
			b = append(b, 0)
		} else {
			b = append(b, 1)
			b = appendVarint(b, v.Time.Unix())
			b = appendVarint(b, int64(v.Time.Nanosecond()))
		}
	case core.DomainBytes:
		b = appendBytes(b, v.Bytes)
	}
	return b
}

func (d *decoder) value() core.Value {
	kind := core.Domain(d.byte())
	switch kind {
	case core.DomainNull:
		return core.Value{}
	case core.DomainString:
		return core.String(d.string())
	case core.DomainInt:
		return core.Int(d.varint())
	case core.DomainFloat:
		if d.err != nil {
			return core.Value{}
		}
		if d.off+8 > len(d.b) {
			d.fail()
			return core.Value{}
		}
		bits := binary.LittleEndian.Uint64(d.b[d.off:])
		d.off += 8
		return core.Float(math.Float64frombits(bits))
	case core.DomainBool:
		return core.Bool(d.byte() != 0)
	case core.DomainTime:
		if d.byte() == 0 {
			return core.Value{Kind: core.DomainTime}
		}
		sec := d.varint()
		nsec := d.varint()
		if nsec < 0 || nsec > int64(time.Second) {
			d.fail()
			return core.Value{}
		}
		return core.Time(time.Unix(sec, nsec).UTC())
	case core.DomainBytes:
		return core.BytesValue(d.bytes())
	default:
		d.fail()
		return core.Value{}
	}
}

func encodeTuple(b []byte, tc core.TupleComponent) []byte {
	n := len(tc.Schema)
	if len(tc.Tuple) < n {
		n = len(tc.Tuple)
	}
	b = appendUvarint(b, uint64(n))
	for i := 0; i < n; i++ {
		b = appendString(b, tc.Schema[i].Name)
		b = append(b, byte(tc.Schema[i].Domain))
		b = encodeValue(b, tc.Tuple[i])
	}
	return b
}

func (d *decoder) tuple() core.TupleComponent {
	n := d.length() // one attribute is ≥ 3 bytes, so len bounds arity
	if d.err != nil || n == 0 {
		return core.TupleComponent{}
	}
	tc := core.TupleComponent{
		Schema: make(core.Schema, 0, n),
		Tuple:  make(core.Tuple, 0, n),
	}
	for i := 0; i < n && d.err == nil; i++ {
		name := d.string()
		dom := core.Domain(d.byte())
		v := d.value()
		tc.Schema = append(tc.Schema, core.Attribute{Name: name, Domain: dom})
		tc.Tuple = append(tc.Tuple, v)
	}
	return tc
}

func encodeEntry(b []byte, e catalog.Entry) []byte {
	b = appendUvarint(b, uint64(e.OID))
	b = appendString(b, e.Name)
	b = appendString(b, e.Class)
	b = appendString(b, e.Source)
	b = appendString(b, e.URI)
	b = appendUvarint(b, uint64(e.Parent))
	var flags byte
	if e.HasTuple {
		flags |= 1
	}
	if e.HasContent {
		flags |= 2
	}
	if e.Derived {
		flags |= 4
	}
	b = append(b, flags)
	b = appendVarint(b, e.ContentSize)
	b = appendString(b, e.Stamp)
	return b
}

func (d *decoder) entry() catalog.Entry {
	var e catalog.Entry
	e.OID = catalog.OID(d.uvarint())
	e.Name = d.string()
	e.Class = d.string()
	e.Source = d.string()
	e.URI = d.string()
	e.Parent = catalog.OID(d.uvarint())
	flags := d.byte()
	e.HasTuple = flags&1 != 0
	e.HasContent = flags&2 != 0
	e.Derived = flags&4 != 0
	e.ContentSize = d.varint()
	e.Stamp = d.string()
	return e
}

// EncodeRecord serializes a record (without its frame) deterministically:
// re-encoding a decoded record yields identical bytes, which is what the
// crash-matrix's byte-equality assertions rely on.
func EncodeRecord(b []byte, rec Record) ([]byte, error) {
	b = append(b, byte(rec.Kind))
	switch rec.Kind {
	case KindUpsert:
		if rec.View == nil {
			return b, errors.New("store: upsert record without view")
		}
		b = encodeEntry(b, rec.View.Entry)
		b = encodeTuple(b, rec.View.Tuple)
		b = appendString(b, rec.View.Text)
		b = appendBytes(b, rec.View.Binary)
	case KindRemove:
		b = appendUvarint(b, uint64(rec.OID))
	case KindEdges:
		b = appendString(b, rec.Source)
		b = appendUvarint(b, uint64(len(rec.Edges)))
		for _, el := range rec.Edges {
			b = appendUvarint(b, uint64(el.Parent))
			b = appendUvarint(b, uint64(len(el.Children)))
			for _, c := range el.Children {
				b = appendUvarint(b, uint64(c))
			}
		}
	case KindDropSource:
		b = appendString(b, rec.Source)
	case KindMeta:
		b = appendUvarint(b, uint64(rec.NextOID))
		b = appendUvarint(b, rec.NextLSN)
	case KindSnapshotEnd:
	default:
		return b, fmt.Errorf("store: cannot encode kind %s", rec.Kind)
	}
	return b, nil
}

// DecodeRecord parses one record previously written by EncodeRecord. It
// never panics and never allocates more than the input's length, however
// corrupt the bytes are.
func DecodeRecord(b []byte) (Record, error) {
	d := &decoder{b: b}
	rec := Record{Kind: Kind(d.byte())}
	switch rec.Kind {
	case KindUpsert:
		v := &ViewRecord{}
		v.Entry = d.entry()
		v.Tuple = d.tuple()
		v.Text = d.string()
		v.Binary = d.bytes()
		rec.View = v
	case KindRemove:
		rec.OID = catalog.OID(d.uvarint())
	case KindEdges:
		rec.Source = d.string()
		n := d.length() // each edge list is ≥ 2 bytes
		rec.Edges = make([]EdgeList, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			el := EdgeList{Parent: catalog.OID(d.uvarint())}
			cn := d.length()
			el.Children = make([]catalog.OID, 0, cn)
			for j := 0; j < cn && d.err == nil; j++ {
				el.Children = append(el.Children, catalog.OID(d.uvarint()))
			}
			rec.Edges = append(rec.Edges, el)
		}
	case KindDropSource:
		rec.Source = d.string()
	case KindMeta:
		rec.NextOID = catalog.OID(d.uvarint())
		rec.NextLSN = d.uvarint()
	case KindSnapshotEnd:
	default:
		d.fail()
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if d.off != len(b) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(b)-d.off)
	}
	return rec, nil
}
