package store

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"repro/internal/catalog"
)

// State is the durable resource-view graph: exactly what a recovery
// reconstructs and what a snapshot compacts. The store maintains it as a
// shadow of the manager's replicas — every appended record is also
// applied here — so a snapshot never has to consult the live manager,
// and the crash-matrix can compare a recovered state byte-for-byte
// against a reference run via Serialize.
type State struct {
	// NextOID mirrors the catalog's OID counter (the last OID handed
	// out), so removed sources never cause OID reuse.
	NextOID catalog.OID
	// Views holds every registered view keyed by OID.
	Views map[catalog.OID]*ViewRecord
	// Edges holds the group replica per source: parent → ordered
	// children. Group edges never cross sources (a sync walk registers
	// every reachable view under its own source).
	Edges map[string]map[catalog.OID][]catalog.OID
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Views: make(map[catalog.OID]*ViewRecord),
		Edges: make(map[string]map[catalog.OID][]catalog.OID),
	}
}

// Apply folds one record into the state. Replaying a WAL is exactly
// repeated Apply in LSN order; the store also Applies each record as it
// is appended, keeping the shadow state equal to what a recovery of the
// current directory would produce.
func (st *State) Apply(rec Record) {
	switch rec.Kind {
	case KindUpsert:
		v := *rec.View
		st.Views[v.Entry.OID] = &v
		if v.Entry.OID > st.NextOID {
			st.NextOID = v.Entry.OID
		}
	case KindRemove:
		v, ok := st.Views[rec.OID]
		if !ok {
			return
		}
		delete(st.Views, rec.OID)
		if edges := st.Edges[v.Entry.Source]; edges != nil {
			delete(edges, rec.OID)
			for parent, children := range edges {
				edges[parent] = removeOID(children, rec.OID)
				if len(edges[parent]) == 0 {
					delete(edges, parent)
				}
			}
			if len(edges) == 0 {
				delete(st.Edges, v.Entry.Source)
			}
		}
	case KindEdges:
		if len(rec.Edges) == 0 {
			delete(st.Edges, rec.Source)
			return
		}
		m := make(map[catalog.OID][]catalog.OID, len(rec.Edges))
		for _, el := range rec.Edges {
			m[el.Parent] = append([]catalog.OID(nil), el.Children...)
		}
		st.Edges[rec.Source] = m
	case KindDropSource:
		for oid, v := range st.Views {
			if v.Entry.Source == rec.Source {
				delete(st.Views, oid)
			}
		}
		delete(st.Edges, rec.Source)
	case KindMeta:
		if rec.NextOID > st.NextOID {
			st.NextOID = rec.NextOID
		}
	}
}

func removeOID(list []catalog.OID, oid catalog.OID) []catalog.OID {
	out := list[:0]
	for _, o := range list {
		if o != oid {
			out = append(out, o)
		}
	}
	return out
}

// Records flattens the state into its canonical record sequence: one
// Meta record, every view in ascending OID order, then every source's
// edges in sorted source order with parents ascending. Child order is
// preserved — it carries the group sequence semantics. Snapshots write
// exactly this sequence, and Serialize hashes it.
func (st *State) Records() []Record {
	recs := make([]Record, 0, len(st.Views)+len(st.Edges)+1)
	recs = append(recs, Record{Kind: KindMeta, NextOID: st.NextOID})
	oids := make([]catalog.OID, 0, len(st.Views))
	for oid := range st.Views {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		recs = append(recs, Record{Kind: KindUpsert, View: st.Views[oid]})
	}
	srcs := make([]string, 0, len(st.Edges))
	for src := range st.Edges {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		edges := st.Edges[src]
		parents := make([]catalog.OID, 0, len(edges))
		for p := range edges {
			parents = append(parents, p)
		}
		sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
		rec := Record{Kind: KindEdges, Source: src}
		for _, p := range parents {
			rec.Edges = append(rec.Edges, EdgeList{Parent: p, Children: edges[p]})
		}
		recs = append(recs, rec)
	}
	return recs
}

// Serialize renders the state as a stable byte string: equal states
// always serialize identically, whatever mutation order produced them.
// The crash-matrix and recovery-equivalence tests compare these bytes.
func (st *State) Serialize() []byte {
	var b []byte
	b = append(b, "IDMSTATE1\n"...)
	for _, rec := range st.Records() {
		b = appendUvarint(b, 0) // no LSN in the canonical form
		b, _ = EncodeRecord(b, rec)
	}
	return b
}

// Digest returns the SHA-256 of Serialize in hex — a cheap equality
// witness for "recovered graph ≡ reference graph".
func (st *State) Digest() string {
	sum := sha256.Sum256(st.Serialize())
	return hex.EncodeToString(sum[:])
}

// Clone returns a deep copy of the state.
func (st *State) Clone() *State {
	out := NewState()
	out.NextOID = st.NextOID
	for oid, v := range st.Views {
		c := *v
		out.Views[oid] = &c
	}
	for src, edges := range st.Edges {
		m := make(map[catalog.OID][]catalog.OID, len(edges))
		for p, cs := range edges {
			m[p] = append([]catalog.OID(nil), cs...)
		}
		out.Edges[src] = m
	}
	return out
}

// Entries returns every catalog entry in ascending OID order — the
// persisted name→OID mappings the catalog is rebuilt from.
func (st *State) Entries() []catalog.Entry {
	out := make([]catalog.Entry, 0, len(st.Views))
	for _, v := range st.Views {
		out = append(out, v.Entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	return out
}
