package store

import (
	"testing"

	"repro/internal/catalog"
)

// seedTail appends a small multi-source stream and returns the records.
func seedTail(t *testing.T, s *Store) []Record {
	t.Helper()
	recs := []Record{
		upsert(1, "fs", "/a"),
		upsert(2, "fs", "/b"),
		upsert(3, "mail", "/inbox/1"),
		{Kind: KindEdges, Source: "fs", Edges: []EdgeList{{Parent: 1, Children: []catalog.OID{2}}}},
		{Kind: KindRemove, OID: 2},
	}
	for _, rec := range recs {
		src := "fs"
		switch rec.Kind {
		case KindUpsert:
			src = rec.View.Entry.Source
		case KindEdges:
			src = rec.Source
		}
		if err := s.Append(src, rec); err != nil {
			t.Fatal(err)
		}
	}
	return recs
}

func TestTailSinceGlobalOrder(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Sync: SyncNever})
	defer s.Close()
	recs := seedTail(t, s)

	out, next, ok, err := s.TailSince(0)
	if err != nil || !ok {
		t.Fatalf("TailSince(0): ok=%v err=%v", ok, err)
	}
	if len(out) != len(recs) {
		t.Fatalf("tailed %d records, want %d", len(out), len(recs))
	}
	if next != s.NextLSN() {
		t.Fatalf("next %d != NextLSN %d", next, s.NextLSN())
	}
	// Dense, strictly increasing LSNs starting at 1: the merge across
	// per-source segments must restore global order.
	for i, tr := range out {
		if tr.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d", i, tr.LSN, i+1)
		}
	}
	// Replaying the tail into a fresh state reproduces the shadow state.
	st := NewState()
	for _, tr := range out {
		st.Apply(tr.Rec)
	}
	if st.Digest() != s.Digest() {
		t.Fatal("tail replay digest != store digest")
	}

	// A mid-log tail returns only the suffix.
	out2, _, ok, err := s.TailSince(3)
	if err != nil || !ok {
		t.Fatalf("TailSince(3): ok=%v err=%v", ok, err)
	}
	if len(out2) != 2 || out2[0].LSN != 4 || out2[1].LSN != 5 {
		t.Fatalf("suffix tail wrong: %+v", out2)
	}
	// A caught-up tail is empty but still ok.
	out3, _, ok, err := s.TailSince(next - 1)
	if err != nil || !ok || len(out3) != 0 {
		t.Fatalf("caught-up tail: len=%d ok=%v err=%v", len(out3), ok, err)
	}
}

func TestTailSinceCoverageAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Sync: SyncNever})
	defer s.Close()
	seedTail(t, s)
	preSnap := s.NextLSN() - 1

	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if base := s.BaseLSN(); base != s.NextLSN() {
		t.Fatalf("BaseLSN %d after snapshot, want NextLSN %d", base, s.NextLSN())
	}
	// A follower behind the snapshot can no longer tail incrementally.
	_, _, ok, err := s.TailSince(preSnap - 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("TailSince covered history the snapshot compacted away")
	}
	// A caught-up follower still can (empty tail).
	out, _, ok, err := s.TailSince(s.NextLSN() - 1)
	if err != nil || !ok || len(out) != 0 {
		t.Fatalf("caught-up post-snapshot tail: len=%d ok=%v err=%v", len(out), ok, err)
	}
	// New appends after the snapshot tail incrementally again.
	if err := s.Append("fs", upsert(9, "fs", "/c")); err != nil {
		t.Fatal(err)
	}
	out, _, ok, err = s.TailSince(s.NextLSN() - 2)
	if err != nil || !ok || len(out) != 1 {
		t.Fatalf("post-snapshot incremental tail: len=%d ok=%v err=%v", len(out), ok, err)
	}
}

func TestTailSinceDropSourceGap(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Sync: SyncNever})
	defer s.Close()
	seedTail(t, s)
	// DropSource deletes the mail segment: LSN 3 is gone from the WAL,
	// but the drop record's higher LSN supersedes it.
	if err := s.DropSource("mail", 10); err != nil {
		t.Fatal(err)
	}
	out, _, ok, err := s.TailSince(0)
	if err != nil || !ok {
		t.Fatalf("TailSince after drop: ok=%v err=%v", ok, err)
	}
	var lsns []uint64
	for _, tr := range out {
		lsns = append(lsns, tr.LSN)
	}
	// 1,2 (fs upserts), 4,5 (edges, remove), 6,7 (drop + meta) — 3 is
	// the gap the deleted mail segment leaves.
	want := []uint64{1, 2, 4, 5, 6, 7}
	if len(lsns) != len(want) {
		t.Fatalf("tailed LSNs %v, want %v", lsns, want)
	}
	for i := range want {
		if lsns[i] != want[i] {
			t.Fatalf("tailed LSNs %v, want %v", lsns, want)
		}
	}
	// The gapped tail still reproduces the shadow state.
	st := NewState()
	for _, tr := range out {
		st.Apply(tr.Rec)
	}
	if st.Digest() != s.Digest() {
		t.Fatal("gapped tail replay digest != store digest")
	}
}

func TestCloneStateIsolated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Sync: SyncNever})
	defer s.Close()
	seedTail(t, s)
	st, next := s.CloneState()
	if next != s.NextLSN() {
		t.Fatalf("CloneState next %d != NextLSN %d", next, s.NextLSN())
	}
	digest := st.Digest()
	if digest != s.Digest() {
		t.Fatal("clone digest != store digest")
	}
	// Mutating the store must not reach the clone.
	if err := s.Append("fs", upsert(9, "fs", "/c")); err != nil {
		t.Fatal(err)
	}
	if st.Digest() != digest {
		t.Fatal("clone mutated by a later append")
	}
}
