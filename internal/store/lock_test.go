package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDirLockReportsHolder pins the diagnosable-double-open satellite:
// the losing acquire's error names the pid and hostname the winner
// stamped into the LOCK file, so a multi-tenant double-open failure
// identifies its holder instead of just saying "locked".
func TestDirLockReportsHolder(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()

	_, err = AcquireDirLock(dir)
	if err == nil {
		t.Fatal("second acquire of a held lock succeeded")
	}
	msg := err.Error()
	if want := fmt.Sprintf("pid=%d", os.Getpid()); !strings.Contains(msg, want) {
		t.Errorf("error %q does not name the holder pid %s", msg, want)
	}
	if host, _ := os.Hostname(); host != "" && !strings.Contains(msg, "host="+host) {
		t.Errorf("error %q does not name the holder host %q", msg, host)
	}

	// Release and reacquire: the stamp is rewritten by the new holder.
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	defer l2.Release()
	b, err := os.ReadFile(filepath.Join(dir, LockFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), fmt.Sprintf("pid=%d", os.Getpid())) {
		t.Errorf("LOCK content %q missing holder stamp", b)
	}
}

// TestDirLockEmptyStampStillErrors covers lock files created by older
// code (or truncated stamps): the error stays clear without a holder.
func TestDirLockEmptyStampStillErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	// Blank the stamp behind the holder's back.
	if err := os.Truncate(filepath.Join(dir, LockFileName), 0); err != nil {
		t.Fatal(err)
	}
	_, err = AcquireDirLock(dir)
	if err == nil {
		t.Fatal("second acquire succeeded")
	}
	if !strings.Contains(err.Error(), "locked by another process") {
		t.Errorf("fallback error lost clarity: %v", err)
	}
}
