package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TailRecord is one WAL record paired with its global LSN, as handed to
// a replication follower.
type TailRecord struct {
	LSN uint64
	Rec Record
}

// TailSince returns every WAL record with LSN > fromLSN, merged across
// all segments in global-LSN order, plus the store's next LSN. ok is
// false when the WAL no longer covers fromLSN+1 — a snapshot compacted
// the history away — in which case the caller must fall back to a
// full-state transfer (CloneState). Gaps above the base are legal:
// DropSource deletes a segment, but the drop record's higher LSN
// supersedes every record the deleted segment held.
//
// TailSince reads the segment files under the store mutex, so it can
// never observe a half-written frame from a concurrent Append, and a
// concurrent Snapshot cannot delete segments out from under it.
func (s *Store) TailSince(fromLSN uint64) ([]TailRecord, uint64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return nil, 0, false, s.dead
	}
	if fromLSN+1 < s.baseLSN {
		return nil, s.nextLSN, false, nil
	}
	ents, err := os.ReadDir(s.walDir)
	if err != nil {
		return nil, 0, false, err
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []TailRecord
	for _, name := range names {
		path := filepath.Join(s.walDir, name)
		res, err := replayFile(path, func(lsn uint64, rec Record) error {
			if lsn > fromLSN {
				out = append(out, TailRecord{LSN: lsn, Rec: rec})
			}
			return nil
		})
		if err != nil {
			return nil, 0, false, err
		}
		if res.Warning != "" {
			// Appends hold the mutex for the full frame write, so a torn
			// tail here is real on-disk damage, not a read race.
			return nil, 0, false, fmt.Errorf("store: tail %s: %s", name, res.Warning)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out, s.nextLSN, true, nil
}

// NextLSN returns the LSN the next appended record will receive; the
// highest LSN in the log is NextLSN()-1.
func (s *Store) NextLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextLSN
}

// BaseLSN returns the lowest LSN the WAL still covers (0 before any
// snapshot: the WAL covers everything).
func (s *Store) BaseLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseLSN
}

// CloneState returns a deep copy of the shadow state and the next LSN —
// a consistent full-state image for replication fallback when the WAL
// no longer covers a follower's applied LSN.
func (s *Store) CloneState() (*State, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Clone(), s.nextLSN
}
