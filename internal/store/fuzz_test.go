package store

import (
	"bytes"
	"testing"
)

// fuzzSeedWAL builds a small valid WAL byte stream for the seed corpus.
func fuzzSeedWAL(tb testing.TB) []byte {
	tb.Helper()
	var b []byte
	var err error
	for i, rec := range sampleRecords() {
		if rec.Kind == KindSnapshotEnd {
			continue // never appears in a WAL segment
		}
		if b, err = encodeFrame(b, uint64(i+1), rec); err != nil {
			tb.Fatal(err)
		}
	}
	return b
}

// fuzzSeedSnapshot builds a small valid snapshot image for the seed
// corpus.
func fuzzSeedSnapshot(tb testing.TB) []byte {
	tb.Helper()
	st := NewState()
	for _, rec := range sampleRecords() {
		st.Apply(rec)
	}
	st.Apply(sampleRecords()[0]) // keep at least one view after the drop
	img, err := encodeSnapshot(st, 42)
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// FuzzWALDecode pins the recovery contract on arbitrary segment bytes:
// ReplayBytes never panics, consumes a valid prefix, and truncating at
// goodOffset yields a clean (warning-free) replay of the same records.
func FuzzWALDecode(f *testing.F) {
	seed := fuzzSeedWAL(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])          // torn mid-stream
	f.Add(append(seed, 0, 0, 0, 0))    // zero-filled tail
	f.Add([]byte{})                    // empty segment
	f.Add(bytes.Repeat([]byte{0}, 64)) // zero page
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		var count int
		res, err := ReplayBytes(b, func(lsn uint64, rec Record) error {
			count++
			// Every replayed record must re-encode: recovery feeds these
			// to snapshots, which would otherwise fail later.
			if _, eerr := EncodeRecord(nil, rec); eerr != nil {
				t.Fatalf("replayed record does not re-encode: %v", eerr)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("fn returned nil but ReplayBytes errored: %v", err)
		}
		if res.Records != count {
			t.Fatalf("res.Records=%d but fn saw %d", res.Records, count)
		}
		if res.GoodOffset < 0 || res.GoodOffset > len(b) {
			t.Fatalf("goodOffset %d out of range [0,%d]", res.GoodOffset, len(b))
		}
		if res.Warning == "" && res.GoodOffset != len(b) {
			t.Fatalf("clean replay stopped early at %d/%d", res.GoodOffset, len(b))
		}
		// The good prefix replays cleanly and identically — what recovery
		// relies on after truncating a torn tail.
		res2, _ := ReplayBytes(b[:res.GoodOffset], func(uint64, Record) error { return nil })
		if res2.Warning != "" || res2.Records != res.Records {
			t.Fatalf("good prefix not clean: %+v vs %+v", res2, res)
		}
	})
}

// FuzzSnapshotLoad pins the all-or-nothing snapshot contract on
// arbitrary bytes: DecodeSnapshot never panics, and any accepted image
// yields a state whose canonical re-encoding is accepted too.
func FuzzSnapshotLoad(f *testing.F) {
	seed := fuzzSeedSnapshot(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])               // missing end marker
	f.Add(seed[:len(snapshotMagic)])        // header only
	f.Add([]byte("IDMSNAP1\n"))             // bare magic
	f.Add([]byte("NOTASNAP!\nxxxxxxxxxxx")) // bad magic
	f.Add([]byte{})
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		st, nextLSN, err := DecodeSnapshot(b)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatal("nil state without error")
		}
		img, eerr := encodeSnapshot(st, nextLSN)
		if eerr != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", eerr)
		}
		st2, lsn2, derr := DecodeSnapshot(img)
		if derr != nil {
			t.Fatalf("canonical re-encoding rejected: %v", derr)
		}
		if lsn2 != nextLSN {
			t.Fatalf("LSN watermark drifted: %d -> %d", nextLSN, lsn2)
		}
		if st2.Digest() != st.Digest() {
			t.Fatal("snapshot roundtrip changed the state")
		}
	})
}
