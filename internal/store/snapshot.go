package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// snapshotMagic heads every snapshot file; a file without it (or without
// the terminating KindSnapshotEnd frame) is invalid and recovery falls
// back to the previous snapshot, then to an empty state.
const snapshotMagic = "IDMSNAP1\n"

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.snap", seq))
}

// encodeSnapshot renders a snapshot file image: magic, the state's
// canonical record sequence framed like WAL records (every frame
// carrying the snapshot's LSN watermark), then a SnapshotEnd frame.
func encodeSnapshot(st *State, nextLSN uint64) ([]byte, error) {
	b := []byte(snapshotMagic)
	var err error
	for _, rec := range st.Records() {
		if rec.Kind == KindMeta {
			rec.NextLSN = nextLSN
		}
		if b, err = encodeFrame(b, nextLSN, rec); err != nil {
			return nil, err
		}
	}
	b, err = encodeFrame(b, nextLSN, Record{Kind: KindSnapshotEnd})
	return b, err
}

// EncodeState renders a full-state image in the snapshot file format —
// replication full-state transfers reuse it so followers install leader
// images with the same DecodeSnapshot path recovery uses.
func EncodeState(st *State, nextLSN uint64) ([]byte, error) {
	return encodeSnapshot(st, nextLSN)
}

// DecodeSnapshot parses a snapshot image into a state. Unlike WAL
// replay, a snapshot is all-or-nothing: any torn or corrupt frame, or a
// missing end marker, invalidates the whole file (it was written
// atomically, so damage means the write never completed or the media
// corrupted it). Never panics on arbitrary input (FuzzSnapshotLoad).
func DecodeSnapshot(b []byte) (*State, uint64, error) {
	if len(b) < len(snapshotMagic) {
		return nil, 0, fmt.Errorf("store: snapshot: truncated header")
	}
	if string(b[:len(snapshotMagic)]) != snapshotMagic {
		return nil, 0, fmt.Errorf("store: snapshot: bad magic")
	}
	st := NewState()
	var nextLSN uint64
	ended := false
	res, err := ReplayBytes(b[len(snapshotMagic):], func(lsn uint64, rec Record) error {
		if ended {
			return fmt.Errorf("store: snapshot: frames after end marker")
		}
		switch rec.Kind {
		case KindSnapshotEnd:
			ended = true
		case KindMeta:
			if rec.NextLSN > nextLSN {
				nextLSN = rec.NextLSN
			}
			st.Apply(rec)
		default:
			st.Apply(rec)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if res.Warning != "" {
		return nil, 0, fmt.Errorf("store: snapshot: %s", res.Warning)
	}
	if !ended {
		return nil, 0, fmt.Errorf("store: snapshot: missing end marker")
	}
	return st, nextLSN, nil
}

// writeSnapshotFile atomically writes the snapshot image for seq:
// tmp file → fsync → rename → fsync(dir).
func writeSnapshotFile(dir string, seq uint64, img []byte) error {
	tmp := filepath.Join(dir, fmt.Sprintf(".snap-%016d.tmp", seq))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snapshotPath(dir, seq)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// listSnapshots returns the snapshot sequence numbers present in dir,
// ascending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is advisory on some platforms; ignore its error.
	d.Sync()
	return nil
}
