package store

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/obs"
)

// SyncPolicy selects when the WAL is fsynced; see docs/PERSISTENCE.md.
type SyncPolicy int

const (
	// SyncOnCommit (default) fsyncs at replica-commit boundaries (Edges,
	// DropSource and Meta records) and on Close — a crash loses at most
	// the uncommitted tail of one sync walk, which recovery discards
	// anyway because the last Edges record defines the commit point.
	SyncOnCommit SyncPolicy = iota
	// SyncAlways fsyncs after every record.
	SyncAlways
	// SyncNever leaves flushing to the OS (tests and bulk loads).
	SyncNever
)

// Fault-injection points the store consults (internal/fault); the crash
// matrix arms them to kill the store at exact WAL positions.
const (
	// FaultAppend fires before a record is written: a crash at a record
	// boundary.
	FaultAppend = "store/wal/append"
	// FaultTorn fires after half of a frame is written: a crash
	// mid-record, leaving a torn tail.
	FaultTorn = "store/wal/torn"
	// FaultFsync fires in place of a WAL fsync.
	FaultFsync = "store/wal/fsync"
	// FaultSnapshot fires before a snapshot file is written.
	FaultSnapshot = "store/snapshot/write"
	// FaultReplay fires once per record during Open's WAL replay: a crash
	// in the middle of recovery itself (the double-crash matrix arms it
	// to prove recovery is re-entrant).
	FaultReplay = "store/wal/replay"
)

// ErrCrashed is returned by every operation after an injected crash or
// an unrecoverable I/O error: the store refuses further writes, exactly
// as a dead process would.
var ErrCrashed = errors.New("store: crashed")

// Options tunes a Store.
type Options struct {
	// Sync selects the fsync policy (default SyncOnCommit).
	Sync SyncPolicy
	// Metrics receives the store's instruments (wal_* and store_*
	// series); nil leaves the store uninstrumented.
	Metrics *obs.Registry
	// Faults is consulted at the Fault* points; nil injects nothing.
	Faults *fault.Injector
}

type storeMetrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	snapshots   *obs.Counter
	snapshotNs  *obs.Histogram
	recoveryNs  *obs.Histogram
	replayed    *obs.Counter
	warnings    *obs.Counter
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	return storeMetrics{
		appends:     reg.Counter("wal_appends_total"),
		appendBytes: reg.Counter("wal_append_bytes_total"),
		fsyncs:      reg.Counter("wal_fsyncs_total"),
		snapshots:   reg.Counter("store_snapshots_total"),
		snapshotNs:  reg.Histogram("store_snapshot_ns", nil),
		recoveryNs:  reg.Histogram("store_recovery_ns", nil),
		replayed:    reg.Counter("wal_replayed_records_total"),
		warnings:    reg.Counter("store_recovery_warnings_total"),
	}
}

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence of the snapshot loaded (0 = none).
	SnapshotSeq uint64
	// SnapshotViews counts views restored from the snapshot.
	SnapshotViews int
	// WALRecords counts records replayed from the segments.
	WALRecords int
	// TornTails counts segments whose final record was torn or corrupt
	// and was truncated away.
	TornTails int
	// Warnings describes everything recovery tolerated (torn tails,
	// invalid snapshots); empty for a clean recovery.
	Warnings []string
	// Views is the number of views in the recovered state.
	Views int
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
	// Trace is the recovery span tree ("recovery" → "load snapshot",
	// "replay wal"), renderable like an EXPLAIN.
	Trace *obs.Trace
}

// Store is a durable write-ahead log + snapshot store rooted at one data
// directory. All methods are safe for concurrent use.
type Store struct {
	dir    string
	walDir string
	opts   Options
	met    storeMetrics

	mu       sync.Mutex
	dead     error // non-nil after a crash; every op returns it
	state    *State
	nextLSN  uint64
	baseLSN  uint64 // WAL covers LSNs >= baseLSN; older ones live only in the snapshot
	snapSeq  uint64
	segments map[string]*os.File // source → open segment
	dropped  map[string]bool     // sources whose segments were dropped
	lock     *DirLock            // exclusive data-dir lock, held for the store's lifetime
}

// segmentName maps a source id to its WAL segment file name. Hex keeps
// arbitrary ids filesystem-safe and cannot collide with "meta.wal".
func segmentName(source string) string {
	return "seg-" + hex.EncodeToString([]byte(source)) + ".wal"
}

const metaSegment = "meta.wal"

// sourceOfSegment inverts segmentName ("" for the meta segment or an
// unparseable name).
func sourceOfSegment(name string) string {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return ""
	}
	b, err := hex.DecodeString(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"))
	if err != nil {
		return ""
	}
	return string(b)
}

// Open opens (creating if needed) the store at dir and recovers its
// state: the newest valid snapshot is loaded, then every WAL segment is
// replayed in one LSN-ordered merge, tolerating a torn final record per
// segment (the tail is truncated with a warning). Open never fails on
// corruption — it recovers the last good prefix — only on I/O errors.
func Open(dir string, opts Options) (*Store, RecoveryInfo, error) {
	start := time.Now()
	s := &Store{
		dir:      dir,
		walDir:   filepath.Join(dir, "wal"),
		opts:     opts,
		met:      newStoreMetrics(opts.Metrics),
		state:    NewState(),
		nextLSN:  1,
		segments: make(map[string]*os.File),
		dropped:  make(map[string]bool),
	}
	if err := os.MkdirAll(s.walDir, 0o755); err != nil {
		return nil, RecoveryInfo{}, err
	}
	lock, err := AcquireDirLock(dir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	s.lock = lock
	// Every error return below must give the lock back — a failed open
	// holds nothing.
	opened := false
	defer func() {
		if !opened {
			lock.Release()
		}
	}()
	tr := obs.NewTrace("recovery")
	info := RecoveryInfo{Trace: tr}

	// --- Phase 1: newest valid snapshot. ------------------------------
	sp := tr.Root().Start("load snapshot")
	seqs, err := listSnapshots(dir)
	if err != nil {
		return nil, info, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		img, err := os.ReadFile(snapshotPath(dir, seqs[i]))
		if err != nil {
			return nil, info, err
		}
		st, nextLSN, derr := DecodeSnapshot(img)
		if derr != nil {
			info.Warnings = append(info.Warnings,
				fmt.Sprintf("snapshot %d invalid, falling back: %v", seqs[i], derr))
			continue
		}
		s.state = st
		if nextLSN >= s.nextLSN {
			s.nextLSN = nextLSN + 1
		}
		s.baseLSN = nextLSN
		info.SnapshotSeq = seqs[i]
		info.SnapshotViews = len(st.Views)
		break
	}
	if len(seqs) > 0 {
		s.snapSeq = seqs[len(seqs)-1]
	}
	sp.SetInt("seq", int64(info.SnapshotSeq))
	sp.SetInt("views", int64(info.SnapshotViews))
	sp.Finish()

	// --- Phase 2: merge-replay the WAL segments by LSN. ---------------
	sp = tr.Root().Start("replay wal")
	segFiles, err := os.ReadDir(s.walDir)
	if err != nil {
		return nil, info, err
	}
	var names []string
	for _, e := range segFiles {
		if strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic tie-break order
	var all []walRecord
	for _, name := range names {
		path := filepath.Join(s.walDir, name)
		res, err := replayFile(path, func(lsn uint64, rec Record) error {
			all = append(all, walRecord{lsn: lsn, rec: rec})
			return nil
		})
		if err != nil {
			return nil, info, err
		}
		if res.Warning != "" {
			info.TornTails++
			info.Warnings = append(info.Warnings, fmt.Sprintf("%s: %s (truncating tail)", name, res.Warning))
			if err := os.Truncate(path, int64(res.GoodOffset)); err != nil {
				return nil, info, err
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].lsn < all[j].lsn })
	for _, wr := range all {
		if err := opts.Faults.Fail(FaultReplay); err != nil {
			// A crash during recovery replay: the directory is untouched
			// beyond the (idempotent) torn-tail truncations above, so a
			// second recovery must reach the same state.
			return nil, info, fmt.Errorf("%w: %w", ErrCrashed, err)
		}
		s.state.Apply(wr.rec)
		if wr.lsn >= s.nextLSN {
			s.nextLSN = wr.lsn + 1
		}
	}
	info.WALRecords = len(all)
	sp.SetInt("records", int64(len(all)))
	sp.SetInt("segments", int64(len(names)))
	sp.Finish()
	tr.Finish()

	info.Views = len(s.state.Views)
	info.Elapsed = time.Since(start)
	s.met.replayed.Add(int64(info.WALRecords))
	s.met.warnings.Add(int64(len(info.Warnings)))
	s.met.recoveryNs.Observe(int64(info.Elapsed))
	log := obs.Logger("store")
	for _, w := range info.Warnings {
		log.Warn("recovery tolerated corruption", "detail", w)
	}
	log.Debug("recovered", "views", info.Views, "wal_records", info.WALRecords,
		"snapshot", info.SnapshotSeq, "elapsed", info.Elapsed)
	opened = true
	return s, info, nil
}

// State returns the shadow state: the graph a recovery of the current
// directory would reconstruct. Callers must not mutate it while the
// store is in use; Clone for a stable copy.
func (s *Store) State() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Digest returns the stable-serialization digest of the durable state.
func (s *Store) Digest() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Digest()
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) segment(source string) (*os.File, error) {
	name := metaSegment
	if source != "" {
		name = segmentName(source)
	}
	if f, ok := s.segments[name]; ok {
		return f, nil
	}
	f, err := os.OpenFile(filepath.Join(s.walDir, name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	s.segments[name] = f
	return f, nil
}

// crash marks the store dead and returns the wrapped cause. The dir
// lock is released: a really-crashed process loses its flock, and the
// crash-matrix tests reopen the directory within one process.
func (s *Store) crash(cause error) error {
	s.dead = fmt.Errorf("%w: %w", ErrCrashed, cause)
	s.lock.Release()
	return s.dead
}

// Append logs one record for source (source "" targets the meta
// segment), applies it to the shadow state and fsyncs according to the
// policy. The record is durable (up to the fsync policy) before the
// caller applies it to any in-memory replica — write-ahead order.
func (s *Store) Append(source string, rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	if s.dropped[source] {
		// The source's segment was just dropped (RemoveSource); stray
		// trailing records for it are meaningless until it is re-added,
		// which necessarily starts with an Upsert.
		if rec.Kind != KindUpsert {
			return nil
		}
		delete(s.dropped, source)
	}
	return s.appendLocked(source, rec)
}

func (s *Store) appendLocked(source string, rec Record) error {
	f, err := s.segment(source)
	if err != nil {
		return s.crash(err)
	}
	lsn := s.nextLSN
	frame, err := encodeFrame(nil, lsn, rec)
	if err != nil {
		return err
	}
	if err := s.opts.Faults.Fail(FaultAppend); err != nil {
		return s.crash(err)
	}
	if err := s.opts.Faults.Fail(FaultTorn); err != nil {
		// Simulate a crash mid-write: half the frame reaches the disk.
		f.Write(frame[:len(frame)/2])
		f.Sync()
		return s.crash(err)
	}
	if _, err := f.Write(frame); err != nil {
		return s.crash(err)
	}
	s.nextLSN = lsn + 1
	s.met.appends.Inc()
	s.met.appendBytes.Add(int64(len(frame)))

	// Keep the shadow state exactly equal to what a replay of the bytes
	// just written would produce: apply the decoded payload, not the
	// caller's record (roundtripping normalizes times and nil slices).
	payload := frame[frameHeaderLen:]
	if _, n := binary.Uvarint(payload); n > 0 {
		if decoded, derr := DecodeRecord(payload[n:]); derr == nil {
			s.state.Apply(decoded)
		}
	}

	commit := rec.Kind == KindEdges || rec.Kind == KindDropSource || rec.Kind == KindMeta
	if s.opts.Sync == SyncAlways || (s.opts.Sync == SyncOnCommit && commit) {
		if err := s.opts.Faults.Fail(FaultFsync); err != nil {
			return s.crash(err)
		}
		if err := f.Sync(); err != nil {
			return s.crash(err)
		}
		s.met.fsyncs.Inc()
	}
	return nil
}

// DropSource durably removes a source: a DropSource record (plus a Meta
// record pinning the OID counter) is committed to the meta segment, then
// the source's segment file is deleted. Replay order is safe in both
// crash windows: the drop record's LSN orders it after every record the
// deleted segment held.
func (s *Store) DropSource(source string, nextOID catalog.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	if err := s.appendLocked("", Record{Kind: KindDropSource, Source: source}); err != nil {
		return err
	}
	if err := s.appendLocked("", Record{Kind: KindMeta, NextOID: nextOID}); err != nil {
		return err
	}
	name := segmentName(source)
	if f, ok := s.segments[name]; ok {
		f.Close()
		delete(s.segments, name)
	}
	if err := os.Remove(filepath.Join(s.walDir, name)); err != nil && !os.IsNotExist(err) {
		return s.crash(err)
	}
	s.dropped[source] = true
	return syncDir(s.walDir)
}

// HasSegment reports whether a WAL segment file exists for source (test
// and tooling hook).
func (s *Store) HasSegment(source string) bool {
	_, err := os.Stat(filepath.Join(s.walDir, segmentName(source)))
	return err == nil
}

// Snapshot compacts the durable state: the shadow state is written as a
// new snapshot (atomic tmp+rename), then every WAL segment and every
// older snapshot is deleted. A crash at any point leaves a recoverable
// directory — replaying pre-snapshot records over the snapshot is
// idempotent because upserts carry full view state and edge commits are
// full replacements.
func (s *Store) Snapshot() error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	if err := s.opts.Faults.Fail(FaultSnapshot); err != nil {
		return s.crash(err)
	}
	img, err := encodeSnapshot(s.state, s.nextLSN)
	if err != nil {
		return err
	}
	seq := s.snapSeq + 1
	if err := writeSnapshotFile(s.dir, seq, img); err != nil {
		return s.crash(err)
	}
	s.snapSeq = seq
	// Records below nextLSN are now only recoverable from the snapshot;
	// tailing from an older LSN requires a full-state transfer.
	s.baseLSN = s.nextLSN
	// The snapshot is durable: the WAL segments are now redundant.
	for name, f := range s.segments {
		f.Close()
		delete(s.segments, name)
	}
	ents, err := os.ReadDir(s.walDir)
	if err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".wal") {
				os.Remove(filepath.Join(s.walDir, e.Name()))
			}
		}
	}
	// Keep one previous snapshot as insurance against media corruption
	// of the newest; delete anything older.
	if seqs, err := listSnapshots(s.dir); err == nil {
		for _, old := range seqs {
			if old+1 < seq {
				os.Remove(snapshotPath(s.dir, old))
			}
		}
	}
	syncDir(s.dir)
	s.met.snapshots.Inc()
	s.met.snapshotNs.ObserveSince(start)
	obs.Logger("store").Debug("snapshot written", "seq", seq,
		"views", len(s.state.Views), "bytes", len(img), "elapsed", time.Since(start))
	return nil
}

// SnapshotSeq returns the sequence of the newest snapshot (0 = none).
func (s *Store) SnapshotSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq
}

// Close fsyncs and closes every open segment. The store is unusable
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for name, f := range s.segments {
		if s.opts.Sync != SyncNever {
			if err := f.Sync(); err != nil {
				errs = append(errs, err)
			}
		}
		if err := f.Close(); err != nil {
			errs = append(errs, err)
		}
		delete(s.segments, name)
	}
	if s.dead == nil {
		s.dead = errors.New("store: closed")
	}
	if err := s.lock.Release(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
