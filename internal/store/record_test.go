package store

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
)

// sampleRecords covers every record kind and every tuple value domain.
func sampleRecords() []Record {
	tc := core.TupleComponent{
		Schema: core.Schema{
			{Name: "name", Domain: core.DomainString},
			{Name: "size", Domain: core.DomainInt},
			{Name: "ratio", Domain: core.DomainFloat},
			{Name: "hidden", Domain: core.DomainBool},
			{Name: "lastmodified", Domain: core.DomainTime},
			{Name: "blob", Domain: core.DomainBytes},
			{Name: "missing", Domain: core.DomainNull},
		},
		Tuple: core.Tuple{
			core.String("vldb.tex"),
			core.Int(4242),
			core.Float(0.75),
			core.Bool(true),
			core.Time(time.Date(2005, 6, 12, 9, 30, 0, 123456789, time.UTC)),
			core.BytesValue([]byte{0, 1, 2, 0xff}),
			core.Value{},
		},
	}
	return []Record{
		{Kind: KindUpsert, View: &ViewRecord{
			Entry: catalog.Entry{
				OID: 7, Name: "vldb.tex", Class: "file", Source: "fs",
				URI: "/papers/vldb.tex", Parent: 3, HasTuple: true,
				HasContent: true, ContentSize: 4242, Stamp: "sz:4242",
			},
			Tuple:  tc,
			Text:   "dataspaces vision",
			Binary: []byte{9, 8, 7},
		}},
		{Kind: KindUpsert, View: &ViewRecord{
			Entry: catalog.Entry{OID: 8, Source: "fs", URI: "/x", ContentSize: -1, Derived: true},
		}},
		{Kind: KindRemove, OID: 7},
		{Kind: KindEdges, Source: "fs", Edges: []EdgeList{
			{Parent: 1, Children: []catalog.OID{2, 3}},
			{Parent: 3, Children: []catalog.OID{7}},
		}},
		{Kind: KindEdges, Source: "empty"},
		{Kind: KindDropSource, Source: "fs"},
		{Kind: KindMeta, NextOID: 99, NextLSN: 1234},
		{Kind: KindSnapshotEnd},
	}
}

func TestRecordRoundtrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		b, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatalf("encode %s: %v", rec.Kind, err)
		}
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("decode %s: %v", rec.Kind, err)
		}
		// Re-encoding the decoded record must yield identical bytes —
		// the determinism the crash-matrix digests rely on.
		b2, err := EncodeRecord(nil, got)
		if err != nil {
			t.Fatalf("re-encode %s: %v", rec.Kind, err)
		}
		if !bytes.Equal(b, b2) {
			t.Errorf("%s: re-encode differs\n first: %x\nsecond: %x", rec.Kind, b, b2)
		}
		if rec.Kind == KindUpsert {
			if got.View.Entry != rec.View.Entry {
				t.Errorf("entry roundtrip: got %+v want %+v", got.View.Entry, rec.View.Entry)
			}
			if got.View.Text != rec.View.Text {
				t.Errorf("text roundtrip: got %q want %q", got.View.Text, rec.View.Text)
			}
			for i, v := range rec.View.Tuple.Tuple {
				g := got.View.Tuple.Tuple[i]
				if g.Kind != v.Kind {
					t.Errorf("tuple value %d kind: got %v want %v", i, g.Kind, v.Kind)
				}
				if c, err := core.Compare(g, v); err == nil && c != 0 {
					t.Errorf("tuple value %d: got %v want %v", i, g, v)
				}
			}
		}
	}
}

func TestRecordDecodeRejectsTrailing(t *testing.T) {
	b, err := EncodeRecord(nil, Record{Kind: KindRemove, OID: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecord(append(b, 0)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}

func TestRecordDecodeCorruptNeverPanics(t *testing.T) {
	for _, rec := range sampleRecords() {
		b, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		// Truncate at every length and flip every byte: decode must
		// either succeed or return an error, never panic or over-allocate.
		for n := 0; n < len(b); n++ {
			DecodeRecord(b[:n])
		}
		for i := range b {
			mut := append([]byte(nil), b...)
			mut[i] ^= 0xff
			DecodeRecord(mut)
		}
	}
}

func TestStateApplyAndCanonicalOrder(t *testing.T) {
	st := NewState()
	for _, rec := range []Record{
		{Kind: KindUpsert, View: &ViewRecord{Entry: catalog.Entry{OID: 2, Source: "b", URI: "/2"}}},
		{Kind: KindUpsert, View: &ViewRecord{Entry: catalog.Entry{OID: 1, Source: "a", URI: "/1"}}},
		{Kind: KindEdges, Source: "a", Edges: []EdgeList{{Parent: 1, Children: []catalog.OID{2}}}},
	} {
		st.Apply(rec)
	}
	// A state reached by a different mutation order serializes identically.
	st2 := NewState()
	for _, rec := range []Record{
		{Kind: KindUpsert, View: &ViewRecord{Entry: catalog.Entry{OID: 1, Source: "a", URI: "/old"}}},
		{Kind: KindUpsert, View: &ViewRecord{Entry: catalog.Entry{OID: 1, Source: "a", URI: "/1"}}},
		{Kind: KindEdges, Source: "a", Edges: []EdgeList{{Parent: 9, Children: []catalog.OID{1}}}},
		{Kind: KindEdges, Source: "a", Edges: []EdgeList{{Parent: 1, Children: []catalog.OID{2}}}},
		{Kind: KindUpsert, View: &ViewRecord{Entry: catalog.Entry{OID: 2, Source: "b", URI: "/2"}}},
	} {
		st2.Apply(rec)
	}
	if st.Digest() != st2.Digest() {
		t.Fatalf("equal states digest differently:\n%s\n%s", st.Digest(), st2.Digest())
	}
	if st.NextOID != 2 {
		t.Fatalf("NextOID = %d, want 2", st.NextOID)
	}

	// Remove scrubs the view from its source's edges.
	st.Apply(Record{Kind: KindRemove, OID: 2})
	if _, ok := st.Views[2]; ok {
		t.Fatal("removed view still present")
	}
	st.Apply(Record{Kind: KindUpsert, View: &ViewRecord{Entry: catalog.Entry{OID: 3, Source: "a", URI: "/3"}}})
	st.Apply(Record{Kind: KindDropSource, Source: "a"})
	if len(st.Views) != 0 || len(st.Edges) != 0 {
		t.Fatalf("drop source left views=%d edges=%d", len(st.Views), len(st.Edges))
	}
	if st.NextOID != 3 {
		t.Fatalf("NextOID regressed to %d after drop", st.NextOID)
	}

	clone := st.Clone()
	if clone.Digest() != st.Digest() {
		t.Fatal("clone digest differs")
	}
	entries := st.Entries()
	if !reflect.DeepEqual(entries, []catalog.Entry{}) && len(entries) != 0 {
		t.Fatalf("entries of empty state: %v", entries)
	}
}
