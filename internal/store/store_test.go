package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/fault"
)

func upsert(oid catalog.OID, source, uri string) Record {
	return Record{Kind: KindUpsert, View: &ViewRecord{Entry: catalog.Entry{
		OID: oid, Name: filepath.Base(uri), Class: "file", Source: source,
		URI: uri, ContentSize: -1,
	}}}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, RecoveryInfo) {
	t.Helper()
	s, info, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, info
}

func TestStoreAppendReopenEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	recs := []Record{
		upsert(1, "fs", "/a"),
		upsert(2, "fs", "/b"),
		{Kind: KindEdges, Source: "fs", Edges: []EdgeList{{Parent: 1, Children: []catalog.OID{2}}}},
		upsert(3, "mail", "/inbox/1"),
		{Kind: KindEdges, Source: "mail", Edges: []EdgeList{{Parent: 3, Children: nil}}},
		{Kind: KindRemove, OID: 2},
	}
	for _, rec := range recs {
		src := ""
		if rec.Kind == KindUpsert {
			src = rec.View.Entry.Source
		} else if rec.Kind == KindEdges {
			src = rec.Source
		} else if rec.Kind == KindRemove {
			src = "fs"
		}
		if err := s.Append(src, rec); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The shadow state must equal what recovery reconstructs.
	s2, info := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := s2.Digest(); got != want {
		t.Fatalf("recovered digest %s != shadow digest %s", got, want)
	}
	if info.WALRecords != len(recs) {
		t.Fatalf("replayed %d records, want %d", info.WALRecords, len(recs))
	}
	if len(info.Warnings) != 0 {
		t.Fatalf("clean recovery produced warnings: %v", info.Warnings)
	}
	if st := s2.State(); len(st.Views) != 2 {
		t.Fatalf("recovered %d views, want 2", len(st.Views))
	}
}

func TestStoreDeadAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	s.Close()
	if err := s.Append("fs", upsert(1, "fs", "/a")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestStoreSnapshotRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	for i := 1; i <= 5; i++ {
		if err := s.Append("fs", upsert(catalog.OID(i), "fs", fmt.Sprintf("/f%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Digest()
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if s.SnapshotSeq() != 1 {
		t.Fatalf("snapshot seq %d, want 1", s.SnapshotSeq())
	}
	// The WAL is truncated after a snapshot.
	ents, _ := os.ReadDir(filepath.Join(dir, "wal"))
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			t.Fatalf("WAL segment %s survived the snapshot", e.Name())
		}
	}
	// Appends continue after a snapshot; recovery = snapshot + tail.
	if err := s.Append("fs", upsert(6, "fs", "/f6")); err != nil {
		t.Fatal(err)
	}
	want6 := s.Digest()
	if want6 == want {
		t.Fatal("digest did not change after post-snapshot append")
	}
	s.Close()

	s2, info := mustOpen(t, dir, Options{})
	if info.SnapshotSeq != 1 || info.SnapshotViews != 5 || info.WALRecords != 1 {
		t.Fatalf("recovery info %+v, want snapshot 1 with 5 views + 1 WAL record", info)
	}
	if s2.Digest() != want6 {
		t.Fatal("snapshot+tail recovery diverged from shadow state")
	}

	// A second snapshot keeps exactly one previous snapshot around.
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 2 || seqs[1] != 3 {
		t.Fatalf("snapshots on disk: %v, want [2 3]", seqs)
	}
	s2.Close()
}

func TestStoreInvalidSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append("fs", upsert(1, "fs", "/a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("fs", upsert(2, "fs", "/b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := s.Digest()
	s.Close()

	// Corrupt the newest snapshot: recovery must fall back to the
	// previous one (which holds the same state minus nothing here, since
	// the second snapshot added /b — so fall-back recovers only /a).
	newest := snapshotPath(dir, 2)
	img, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0xff
	if err := os.WriteFile(newest, img, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, info := mustOpen(t, dir, Options{})
	defer s2.Close()
	if info.SnapshotSeq != 1 {
		t.Fatalf("fell back to snapshot %d, want 1", info.SnapshotSeq)
	}
	if len(info.Warnings) == 0 {
		t.Fatal("silent fall-back: want a warning")
	}
	if got := s2.Digest(); got == want {
		t.Fatal("recovered full state from a corrupt snapshot?")
	}
	if len(s2.State().Views) != 1 {
		t.Fatalf("fallback recovered %d views, want 1", len(s2.State().Views))
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append("fs", upsert(1, "fs", "/a")); err != nil {
		t.Fatal(err)
	}
	want := s.Digest()
	s.Close()

	seg := filepath.Join(dir, "wal", segmentName("fs"))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Append half of a duplicate frame: the classic crash mid-write.
	if err := os.WriteFile(seg, append(b, b[:len(b)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, info := mustOpen(t, dir, Options{})
	if info.TornTails != 1 || len(info.Warnings) == 0 {
		t.Fatalf("torn tail not reported: %+v", info)
	}
	if s2.Digest() != want {
		t.Fatal("torn tail changed the recovered state")
	}
	s2.Close()
	// The tail was physically truncated: a second recovery is clean.
	s3, info3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	if info3.TornTails != 0 || len(info3.Warnings) != 0 {
		t.Fatalf("tail not truncated, second recovery still warns: %+v", info3)
	}
}

func TestStoreDropSource(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append("fs", upsert(1, "fs", "/a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("mail", upsert(2, "mail", "/m")); err != nil {
		t.Fatal(err)
	}
	if !s.HasSegment("fs") {
		t.Fatal("no segment for fs")
	}
	if err := s.DropSource("fs", 2); err != nil {
		t.Fatal(err)
	}
	if s.HasSegment("fs") {
		t.Fatal("fs segment survived DropSource")
	}
	// Stray post-drop records for the source are suppressed...
	if err := s.Append("fs", Record{Kind: KindRemove, OID: 1}); err != nil {
		t.Fatal(err)
	}
	if s.HasSegment("fs") {
		t.Fatal("suppressed record re-created the segment")
	}
	// ...until an upsert re-adds it.
	if err := s.Append("fs", upsert(3, "fs", "/new")); err != nil {
		t.Fatal(err)
	}
	if !s.HasSegment("fs") {
		t.Fatal("re-added source has no segment")
	}
	want := s.Digest()
	s.Close()

	s2, _ := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Digest() != want {
		t.Fatal("drop + re-add did not survive recovery")
	}
	st := s2.State()
	if _, ok := st.Views[1]; ok {
		t.Fatal("dropped view resurrected")
	}
	// The Meta record pinned the OID counter across the drop.
	if st.NextOID != 3 {
		t.Fatalf("NextOID %d, want 3", st.NextOID)
	}
}

func TestStoreCrashPoints(t *testing.T) {
	for _, point := range []string{FaultAppend, FaultTorn, FaultFsync} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			inj := fault.New(1).Add(fault.Rule{Point: point, Kind: fault.Error, After: 1, Times: 1})
			s, _ := mustOpen(t, dir, Options{Sync: SyncAlways, Faults: inj})
			if err := s.Append("fs", upsert(1, "fs", "/a")); err != nil {
				t.Fatalf("first append: %v", err)
			}
			want := s.Digest()
			err := s.Append("fs", upsert(2, "fs", "/b"))
			if err == nil {
				t.Fatal("injected crash did not surface")
			}
			if !fault.IsInjected(err) {
				t.Fatalf("crash error %v does not unwrap to the injection", err)
			}
			// The store is dead, like a killed process.
			if err := s.Append("fs", upsert(3, "fs", "/c")); err == nil {
				t.Fatal("append on crashed store succeeded")
			}

			s2, info := mustOpen(t, dir, Options{})
			defer s2.Close()
			if point == FaultTorn && info.TornTails == 0 {
				t.Fatalf("mid-record crash left no torn tail: %+v", info)
			}
			// FaultFsync crashes after the write: the record may or may not
			// be durable (that is the fsync contract); both states are valid
			// recovery targets. Append/torn crashes lose exactly the record.
			if point != FaultFsync && s2.Digest() != want {
				t.Fatalf("recovered digest differs from pre-crash commit")
			}
		})
	}
}

// TestReplay100k pins the ISSUE acceptance bound: recovery over a
// 100k-mutation WAL completes in under 2 seconds.
func TestReplay100k(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Sync: SyncNever})
	const n = 100_000
	for i := 1; i <= n; i++ {
		src := "fs"
		if i%2 == 0 {
			src = "mail"
		}
		if err := s.Append(src, upsert(catalog.OID(i), src, fmt.Sprintf("/f/%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	s2, info := mustOpen(t, dir, Options{})
	elapsed := time.Since(start)
	defer s2.Close()
	if info.WALRecords != n {
		t.Fatalf("replayed %d records, want %d", info.WALRecords, n)
	}
	if s2.Digest() != want {
		t.Fatal("bulk recovery diverged")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("recovery of %d records took %v, want < 2s", n, elapsed)
	}
	t.Logf("replayed %d records in %v", n, elapsed)
}
