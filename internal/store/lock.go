package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// LockFileName is the advisory-lock file every storage backend creates
// at the root of its data directory. The lock is exclusive: a second
// process (or a second engine in the same process) opening the same
// directory fails immediately instead of corrupting the log behind the
// first one's back.
const LockFileName = "LOCK"

// DirLock is a held exclusive lock on a data directory. The zero value
// and nil are both safe to Release (no-ops), so error paths can release
// unconditionally.
type DirLock struct {
	f *os.File
}

// AcquireDirLock takes the exclusive flock on dir's LOCK file without
// blocking. A directory already locked — by another process or another
// engine in this one — fails with an error naming the holder (the
// pid/hostname stamp the winning acquire wrote into the file), so a
// multi-tenant double-open is diagnosable from the message alone. The
// lock dies with the process, so a crashed owner never wedges the
// directory.
func AcquireDirLock(dir string) (*DirLock, error) {
	path := filepath.Join(dir, LockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		holder := readLockOwner(f)
		f.Close()
		if holder != "" {
			return nil, fmt.Errorf("store: data dir %s is locked by %s (%v)", dir, holder, err)
		}
		return nil, fmt.Errorf("store: data dir %s is locked by another process (%v)", dir, err)
	}
	writeLockOwner(f)
	return &DirLock{f: f}, nil
}

// Release drops the lock. Idempotent; safe on nil.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return f.Close()
}

// writeLockOwner stamps the held lock file with who owns it. Best
// effort: the stamp is diagnostic only (the flock is the lock), so
// write errors are ignored.
func writeLockOwner(f *os.File) {
	host, _ := os.Hostname()
	stamp := fmt.Sprintf("pid=%d host=%s acquired=%s\n",
		os.Getpid(), host, time.Now().UTC().Format(time.RFC3339))
	if err := f.Truncate(0); err != nil {
		return
	}
	f.WriteAt([]byte(stamp), 0)
}

// readLockOwner reads the holder stamp out of a contended lock file.
// Returns "" when the file is empty (pre-stamp lockers) or unreadable.
func readLockOwner(f *os.File) string {
	buf := make([]byte, 256)
	n, _ := f.ReadAt(buf, 0)
	s := strings.TrimSpace(string(buf[:n]))
	if s == "" || strings.ContainsAny(s, "\x00") {
		return ""
	}
	// Keep only the first line; a torn or oversized stamp is clipped.
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
