package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// LockFileName is the advisory-lock file every storage backend creates
// at the root of its data directory. The lock is exclusive: a second
// process (or a second engine in the same process) opening the same
// directory fails immediately instead of corrupting the log behind the
// first one's back.
const LockFileName = "LOCK"

// DirLock is a held exclusive lock on a data directory. The zero value
// and nil are both safe to Release (no-ops), so error paths can release
// unconditionally.
type DirLock struct {
	f *os.File
}

// AcquireDirLock takes the exclusive flock on dir's LOCK file without
// blocking. A directory already locked — by another process or another
// engine in this one — fails with a clear error. The lock dies with the
// process, so a crashed owner never wedges the directory.
func AcquireDirLock(dir string) (*DirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, LockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data dir %s is locked by another process (%v)", dir, err)
	}
	return &DirLock{f: f}, nil
}

// Release drops the lock. Idempotent; safe on nil.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return f.Close()
}
