package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Frame layout: [len uint32le][crc32c uint32le][payload], where payload
// is uvarint(LSN) + EncodeRecord bytes and the checksum covers the whole
// payload. len == 0 is invalid (no record encodes to an empty payload),
// which makes zero-filled pages — the classic lost-write corruption —
// detectably corrupt instead of an endless stream of empty records.
const frameHeaderLen = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame appends a framed payload carrying lsn and rec to b.
func encodeFrame(b []byte, lsn uint64, rec Record) ([]byte, error) {
	payloadStart := len(b) + frameHeaderLen
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	b = appendUvarint(b, lsn)
	b, err := EncodeRecord(b, rec)
	if err != nil {
		return b, err
	}
	payload := b[payloadStart:]
	if len(payload) > MaxRecordBytes {
		return b, fmt.Errorf("store: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	binary.LittleEndian.PutUint32(b[payloadStart-8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[payloadStart-4:], crc32.Checksum(payload, crcTable))
	return b, nil
}

// AppendFrame appends a framed payload carrying lsn and rec to b using
// the exact on-disk WAL frame layout — the replication shipping format
// is the WAL format, so followers decode batches with ReplayBytes.
func AppendFrame(b []byte, lsn uint64, rec Record) ([]byte, error) {
	return encodeFrame(b, lsn, rec)
}

// walRecord is one decoded WAL record with its log sequence number.
type walRecord struct {
	lsn uint64
	rec Record
}

// ReplayResult reports how far a replay got through one byte stream.
type ReplayResult struct {
	Records int
	// goodOffset is the byte offset just past the last valid frame; a
	// torn or corrupt tail starts there.
	GoodOffset int
	// warning describes why the replay stopped early ("" when the whole
	// stream was consumed cleanly).
	Warning string
}

// ReplayBytes decodes frames from b in order, calling fn for each
// record. It stops at the first torn or corrupt frame — the recovery
// contract is "last good prefix" — and reports how far it got. It never
// panics on arbitrary input (FuzzWALDecode pins this).
func ReplayBytes(b []byte, fn func(lsn uint64, rec Record) error) (ReplayResult, error) {
	var res ReplayResult
	off := 0
	for {
		if off == len(b) {
			res.GoodOffset = off
			return res, nil
		}
		if len(b)-off < frameHeaderLen {
			res.GoodOffset = off
			res.Warning = fmt.Sprintf("torn frame header at offset %d (%d trailing bytes)", off, len(b)-off)
			return res, nil
		}
		plen := int(binary.LittleEndian.Uint32(b[off:]))
		crc := binary.LittleEndian.Uint32(b[off+4:])
		if plen == 0 || plen > MaxRecordBytes || plen > len(b)-off-frameHeaderLen {
			res.GoodOffset = off
			res.Warning = fmt.Sprintf("invalid frame length %d at offset %d", plen, off)
			return res, nil
		}
		payload := b[off+frameHeaderLen : off+frameHeaderLen+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			res.GoodOffset = off
			res.Warning = fmt.Sprintf("checksum mismatch at offset %d", off)
			return res, nil
		}
		lsn, n := binary.Uvarint(payload)
		if n <= 0 {
			res.GoodOffset = off
			res.Warning = fmt.Sprintf("bad LSN varint at offset %d", off)
			return res, nil
		}
		rec, err := DecodeRecord(payload[n:])
		if err != nil {
			// The frame checksummed correctly but does not decode: a
			// format bug or a deliberate corruption that preserved the
			// CRC. Treat it like a torn tail.
			res.GoodOffset = off
			res.Warning = fmt.Sprintf("undecodable record at offset %d: %v", off, err)
			return res, nil
		}
		if err := fn(lsn, rec); err != nil {
			return res, err
		}
		res.Records++
		off += frameHeaderLen + plen
	}
}

// replayFile replays one segment file, tolerating a missing file (an
// empty segment) and a torn tail.
func replayFile(path string, fn func(lsn uint64, rec Record) error) (ReplayResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ReplayResult{}, nil
		}
		return ReplayResult{}, err
	}
	return ReplayBytes(b, fn)
}
