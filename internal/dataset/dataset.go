// Package dataset generates a deterministic synthetic personal dataspace
// shaped like the real dataset of §7.1 of the iDM paper: a filesystem
// with folder hierarchies, LaTeX and XML documents (whose structural
// content dominates the derived resource view counts, as in Table 2),
// plain text and binary files, a remote-ish email store with folders,
// messages and attachments, an RSS server, and a small relational
// database.
//
// The paper evaluated on one author's personal files (4.2 GB, 14,297
// files&folders, 282 LaTeX + 47 XML documents) and IMAP email (6,335
// base items, 7 LaTeX + 13 XML attachments). Generate reproduces those
// *ratios* at a configurable scale and plants the words and phrases the
// evaluation queries (Table 4) search for, so Q1–Q8 have non-trivial
// results with the paper's selectivity shape.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mail"
	"repro/internal/relstore"
	"repro/internal/rss"
	"repro/internal/vfs"
)

// Config controls generation.
type Config struct {
	// Scale multiplies the paper's dataset shape; 1.0 reproduces the
	// paper-scale counts (expensive), 0.02–0.1 suits tests and CI.
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
	// MailLatency configures the simulated IMAP access cost.
	MailLatency mail.Latency
}

// DefaultConfig is a CI-friendly scale.
func DefaultConfig() Config { return Config{Scale: 0.05, Seed: 42} }

// PaperConfig reproduces the paper's dataset shape at full scale.
func PaperConfig() Config { return Config{Scale: 1.0, Seed: 42} }

// Info reports what was generated.
type Info struct {
	Folders     int
	Files       int
	LatexDocs   int
	XMLDocs     int
	BinaryFiles int
	Messages    int
	Attachments int
	MailFolders int
	TexAttach   int
	XMLAttach   int
	FSBytes     int64
	MailBytes   int64
}

// Dataset is a generated personal dataspace.
type Dataset struct {
	FS   *vfs.FS
	Mail *mail.Store
	RSS  *rss.Server
	Rel  *relstore.DB
	Info Info
}

// paper-scale shape constants (Table 2 and §7.1).
const (
	paperFiles      = 12870
	paperLatexDocs  = 282
	paperXMLDocs    = 47
	paperMessages   = 5900
	paperAttachMisc = 380
	paperTexAttach  = 7
	paperXMLAttach  = 13
)

func scaled(n int, s float64, min int) int {
	v := int(float64(n) * s)
	if v < min {
		return min
	}
	return v
}

// Generate builds a dataset.
func Generate(cfg Config) *Dataset {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	clock := newClock()
	d := &Dataset{
		FS:   vfs.NewWithClock(clock.next),
		Mail: mail.NewStore(),
		RSS:  rss.NewServer(),
		Rel:  relstore.NewDB("persdb"),
	}
	d.Mail.SetLatency(cfg.MailLatency)

	g := &generator{cfg: cfg, rng: rng, d: d, clock: clock}
	g.buildFilesystem()
	g.buildMail()
	g.buildRSS()
	g.buildRelational()
	return d
}

// clock produces deterministic, strictly increasing timestamps in the
// paper's era (2004–2005).
type clock struct{ t time.Time }

func newClock() *clock {
	return &clock{t: time.Date(2004, 1, 5, 8, 0, 0, 0, time.UTC)}
}

func (c *clock) next() time.Time {
	c.t = c.t.Add(137 * time.Second)
	return c.t
}

type generator struct {
	cfg   Config
	rng   *rand.Rand
	d     *Dataset
	clock *clock
}

// --- text generation -----------------------------------------------------

// words produces n random vocabulary words, planting "database" with
// ~4% probability per word and the "database tuning" phrase rarely.
func (g *generator) words(n int, theme string) string {
	var b strings.Builder
	themed := themedWords[theme]
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch r := g.rng.Float64(); {
		case r < 0.0001:
			b.WriteString(phraseDBTuning)
		case r < 0.008:
			b.WriteString(wordDatabase)
		case r < 0.0085:
			b.WriteString(phraseKnuth)
		case r < 0.06 && len(themed) > 0:
			b.WriteString(themed[g.rng.Intn(len(themed))])
		default:
			b.WriteString(commonWords[g.rng.Intn(len(commonWords))])
		}
	}
	return b.String()
}

// latexDoc builds a LaTeX document with roughly nodesTarget structural
// nodes (the paper derives ~41 views per LaTeX document on average).
type latexOpts struct {
	theme string
	// plantFranklinVision adds a "* Vision" section containing Franklin
	// (Q4); plantConclusionSystems plants "systems" in the Conclusion
	// (Q5); plantDocuments sprinkles "documents" (Q6); figures with
	// "Indexing time" captions serve example Query 2 and Q7.
	plantFranklinVision    bool
	plantConclusionSystems bool
	plantDocuments         bool
	plantIndexTimeFigure   bool
	plantFranklinIntro     bool
	figures                int
	sections               int
}

func (g *generator) latexDoc(o latexOpts) string {
	if o.sections <= 0 {
		o.sections = 4 + g.rng.Intn(4)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\\documentclass{article}\n\\title{%s}\n", strings.Title(g.words(4, o.theme)))
	b.WriteString("\\begin{document}\n\\begin{abstract}\n")
	b.WriteString(g.words(80, o.theme))
	b.WriteString("\n\\end{abstract}\n")

	figCount := 0
	writeFigure := func(caption string) {
		figCount++
		fmt.Fprintf(&b, "\\begin{figure}\n\\caption{%s}\n\\label{fig:%s%d}\n\\end{figure}\n",
			caption, strings.ToLower(o.theme), figCount)
	}
	for i := 0; i < o.sections; i++ {
		title := sectionTitles[i%len(sectionTitles)]
		fmt.Fprintf(&b, "\\section{%s}\n\\label{sec:s%d}\n", title, i)
		text := g.words(70, o.theme)
		if o.plantFranklinIntro && title == "Introduction" {
			text += " as " + phraseFranklin + " argues in the dataspaces vision"
		}
		if o.plantDocuments {
			text += " these " + wordDocuments + " matter"
		}
		b.WriteString(text)
		b.WriteByte('\n')
		// Subsections with text and occasional refs back to sections.
		subs := 1 + g.rng.Intn(2)
		for j := 0; j < subs; j++ {
			fmt.Fprintf(&b, "\\subsection{%s}\n", subsectionTitles[(i+j)%len(subsectionTitles)])
			b.WriteString(g.words(50, o.theme))
			if figCount > 0 && g.rng.Float64() < 0.5 {
				fmt.Fprintf(&b, " see Figure \\ref{fig:%s%d}", strings.ToLower(o.theme), 1+g.rng.Intn(figCount))
			}
			if i > 0 && g.rng.Float64() < 0.3 {
				fmt.Fprintf(&b, " cf. Section \\ref{sec:s%d}", g.rng.Intn(i))
			}
			b.WriteByte('\n')
		}
		if o.figures > figCount && g.rng.Float64() < 0.7 {
			caption := strings.Title(g.words(3, o.theme)) + " over " + g.words(2, o.theme)
			if o.plantIndexTimeFigure && figCount == 0 {
				caption = phraseIndexTime + " for the " + o.theme + " workload"
			}
			writeFigure(caption)
		}
	}
	if o.plantIndexTimeFigure && figCount == 0 {
		writeFigure(phraseIndexTime + " for the " + o.theme + " workload")
	}
	if o.plantFranklinVision {
		b.WriteString("\\section{The Dataspace Vision}\n")
		b.WriteString("Franklin, Halevy and Maier describe dataspaces; Franklin presents the vision.\n")
	}
	b.WriteString("\\section{Conclusion}\n")
	concl := g.words(40, o.theme)
	if o.plantConclusionSystems {
		concl += " future " + wordSystems + " should adopt unified models for " + wordSystems
	}
	b.WriteString(concl)
	b.WriteString("\n\\end{document}\n")
	return b.String()
}

// xmlDoc builds an XML document with roughly the paper's ~2500 derived
// views per document (scaled down below full scale to keep generation
// cheap while preserving the XML≫LaTeX derived-view ratio).
func (g *generator) xmlDoc(entries int, theme string) string {
	var b strings.Builder
	b.WriteString("<dataset>\n")
	for i := 0; i < entries; i++ {
		fmt.Fprintf(&b, "  <record id=\"%d\" kind=\"%s\">\n", i+1, themeOf(theme, i))
		fmt.Fprintf(&b, "    <title>%s</title>\n", xmlEscape(strings.Title(g.words(3, theme))))
		fmt.Fprintf(&b, "    <body>%s</body>\n", xmlEscape(g.words(8, theme)))
		b.WriteString("  </record>\n")
	}
	b.WriteString("</dataset>\n")
	return b.String()
}

func themeOf(theme string, i int) string {
	if theme == "" {
		return "misc"
	}
	return strings.ToLower(theme)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// --- filesystem ----------------------------------------------------------

var projectNames = []string{
	"PIM", "OLAP", "XML", "Streams", "Indexing", "P2P",
	"DBTuning", "Lectures", "PhD", "Grants", "Demo", "Cache",
}

func (g *generator) buildFilesystem() {
	s := g.cfg.Scale
	fs := g.d.FS
	mk := func(p string) {
		if _, err := fs.MkdirAll(p); err == nil {
			g.d.Info.Folders++
		}
	}
	write := func(p string, content []byte) {
		if _, err := fs.WriteFile(p, content); err == nil {
			g.d.Info.Files++
			g.d.Info.FSBytes += int64(len(content))
		}
	}

	// Folder skeleton.
	mk("/Projects")
	for _, p := range projectNames {
		mk("/Projects/" + p)
		mk("/Projects/" + p + "/docs")
		mk("/Projects/" + p + "/data")
	}
	mk("/papers")
	mk("/papers/VLDB2005")
	mk("/papers/VLDB2006")
	mk("/papers/drafts")
	mk("/teaching")
	mk("/teaching/databases")
	mk("/teaching/infosys")
	mk("/photos")
	mk("/music")
	mk("/private")

	// The paper-example link that puts a cycle in the graph (Figure 1).
	if _, err := fs.Link("/Projects/PIM/All Projects", "/Projects"); err == nil {
		g.d.Info.Folders++ // counted as a base item
	}

	// --- always-planted documents the evaluation queries target -------
	write("/Projects/PIM/vldb2006.tex", []byte(g.latexDoc(latexOpts{
		theme: "PIM", plantFranklinIntro: true, plantFranklinVision: true,
		plantConclusionSystems: true, plantIndexTimeFigure: true,
		plantDocuments: true, figures: 2,
	})))
	g.d.Info.LatexDocs++
	write("/papers/VLDB2006/vldb2006.tex", []byte(g.latexDoc(latexOpts{
		theme: "PIM", plantFranklinIntro: true, plantFranklinVision: true,
		plantConclusionSystems: true, plantIndexTimeFigure: true,
		plantDocuments: true, figures: 3,
	})))
	g.d.Info.LatexDocs++
	write("/papers/VLDB2005/imemex-demo.tex", []byte(g.latexDoc(latexOpts{
		theme: "PIM", plantConclusionSystems: true, plantDocuments: true,
		figures: 1,
	})))
	g.d.Info.LatexDocs++
	write("/Projects/OLAP/docs/olap-paper.tex", []byte(g.latexDoc(latexOpts{
		theme: "OLAP", plantIndexTimeFigure: true, plantConclusionSystems: true,
		figures: 2,
	})))
	g.d.Info.LatexDocs++

	// --- bulk LaTeX documents -----------------------------------------
	nLatex := scaled(paperLatexDocs, s, 6) - g.d.Info.LatexDocs
	for i := 0; i < nLatex; i++ {
		theme := projectNames[g.rng.Intn(len(projectNames))]
		dir := g.latexDir(theme, i)
		o := latexOpts{theme: theme, figures: g.rng.Intn(3)}
		// A slice of the corpus mentions "documents" and Franklin so
		// Q4/Q6 selectivity resembles the paper's.
		o.plantDocuments = g.rng.Float64() < 0.15
		o.plantConclusionSystems = g.rng.Float64() < 0.25
		name := fmt.Sprintf("%s/%s-%03d.tex", dir, fileStems[g.rng.Intn(len(fileStems))], i)
		write(name, []byte(g.latexDoc(o)))
		g.d.Info.LatexDocs++
	}

	// --- bulk XML documents --------------------------------------------
	nXML := scaled(paperXMLDocs, s, 3)
	// Derived-view budget per doc: the paper has ~2500 views per XML
	// document; cap generation cost below full scale.
	entries := 110
	if s >= 0.5 {
		entries = 400
	}
	for i := 0; i < nXML; i++ {
		theme := projectNames[g.rng.Intn(len(projectNames))]
		name := fmt.Sprintf("/Projects/%s/data/export-%03d.xml", theme, i)
		write(name, []byte(g.xmlDoc(entries, theme)))
		g.d.Info.XMLDocs++
	}

	// --- plain text and binary filler ----------------------------------
	nFiles := scaled(paperFiles, s, 40) - g.d.Info.Files
	for i := 0; i < nFiles; i++ {
		r := g.rng.Float64()
		switch {
		case r < 0.12: // binary junk (photos, music) — excluded from net input
			ext := ".jpg"
			dir := "/photos"
			if g.rng.Intn(2) == 0 {
				ext = ".mp3"
				dir = "/music"
			}
			junk := make([]byte, 256+g.rng.Intn(1024))
			g.rng.Read(junk)
			write(fmt.Sprintf("%s/item-%05d%s", dir, i, ext), junk)
			g.d.Info.BinaryFiles++
		default:
			theme := projectNames[g.rng.Intn(len(projectNames))]
			dir := g.textDir(theme, i)
			stem := fileStems[g.rng.Intn(len(fileStems))]
			ext := []string{".txt", ".doc", ".md", ".log"}[g.rng.Intn(4)]
			body := g.words(250+g.rng.Intn(500), theme)
			write(fmt.Sprintf("%s/%s-%05d%s", dir, stem, i, ext), []byte(body))
		}
	}
}

func (g *generator) latexDir(theme string, i int) string {
	switch i % 4 {
	case 0:
		return "/papers/drafts"
	case 1:
		return "/papers/VLDB2005"
	case 2:
		return "/papers/VLDB2006"
	default:
		return "/Projects/" + theme + "/docs"
	}
}

func (g *generator) textDir(theme string, i int) string {
	switch i % 5 {
	case 0:
		return "/teaching/databases"
	case 1:
		return "/private"
	case 2:
		return "/Projects/" + theme
	default:
		return "/Projects/" + theme + "/docs"
	}
}

// --- email -----------------------------------------------------------

func (g *generator) buildMail() {
	s := g.cfg.Scale
	st := g.d.Mail
	folders := []string{"Sent", "Projects/OLAP", "Projects/PIM", "lists/dbworld", "lists/sigmod"}
	for _, f := range folders {
		st.CreateFolder(f)
	}
	g.d.Info.MailFolders = len(st.Folders())

	appendMsg := func(m *mail.Message) {
		if _, err := st.Append(m); err == nil {
			g.d.Info.Messages++
			g.d.Info.Attachments += len(m.Attachments)
			g.d.Info.MailBytes += m.Size()
		}
	}

	// --- planted messages for Q2/Q8 -------------------------------------
	appendMsg(&mail.Message{
		Folder:  "Projects/OLAP",
		From:    "alice@" + mailDomains[0],
		To:      []string{"jens.dittrich@inf.ethz.ch"},
		Subject: "OLAP indexing results",
		Date:    g.clock.next(),
		Body:    "attached the figures; the " + phraseIndexTime + " plot is fixed now",
		Attachments: []mail.Attachment{{
			Filename:    "olap-results.tex",
			ContentType: "application/x-tex",
			Data: []byte(g.latexDoc(latexOpts{
				theme: "OLAP", plantIndexTimeFigure: true, figures: 2,
			})),
		}},
	})
	g.d.Info.TexAttach++
	// Attachments whose names collide with /papers files → Q8 join rows.
	for _, name := range []string{"vldb2006.tex", "imemex-demo.tex"} {
		appendMsg(&mail.Message{
			Folder:  "Projects/PIM",
			From:    "marcos@" + mailDomains[1],
			To:      []string{"jens.dittrich@inf.ethz.ch"},
			Subject: "draft " + name,
			Date:    g.clock.next(),
			Body:    "latest draft of our paper attached " + wordDatabase,
			Attachments: []mail.Attachment{{
				Filename:    name,
				ContentType: "application/x-tex",
				Data: []byte(g.latexDoc(latexOpts{
					theme: "PIM", plantFranklinIntro: true, figures: 1,
				})),
			}},
		})
		g.d.Info.TexAttach++
	}

	// --- bulk messages ---------------------------------------------------
	nMsgs := scaled(paperMessages, s, 30) - g.d.Info.Messages
	nAttach := scaled(paperAttachMisc, s, 4)
	nTex := scaled(paperTexAttach, s, 0)
	nXML := scaled(paperXMLAttach, s, 1)
	allFolders := append([]string{"INBOX"}, folders...)
	for i := 0; i < nMsgs; i++ {
		theme := projectNames[g.rng.Intn(len(projectNames))]
		m := &mail.Message{
			Folder:  allFolders[g.rng.Intn(len(allFolders))],
			From:    strings.ToLower(peopleNames[g.rng.Intn(len(peopleNames))]) + "@" + mailDomains[g.rng.Intn(len(mailDomains))],
			To:      []string{"jens.dittrich@inf.ethz.ch"},
			Subject: strings.Title(g.words(3, theme)),
			Date:    g.clock.next(),
			Body:    g.words(80+g.rng.Intn(200), theme),
		}
		switch {
		case nTex > 0 && i%97 == 0:
			nTex--
			m.Attachments = append(m.Attachments, mail.Attachment{
				Filename: fmt.Sprintf("notes-%03d.tex", i), ContentType: "application/x-tex",
				Data: []byte(g.latexDoc(latexOpts{theme: theme, figures: 1})),
			})
			g.d.Info.TexAttach++
		case nXML > 0 && i%53 == 0:
			nXML--
			m.Attachments = append(m.Attachments, mail.Attachment{
				Filename: fmt.Sprintf("data-%03d.xml", i), ContentType: "text/xml",
				Data: []byte(g.xmlDoc(25, theme)),
			})
			g.d.Info.XMLAttach++
		case nAttach > 0 && i%17 == 0:
			nAttach--
			m.Attachments = append(m.Attachments, mail.Attachment{
				Filename: fmt.Sprintf("attachment-%04d.txt", i), ContentType: "text/plain",
				Data: []byte(g.words(150, theme)),
			})
		}
		appendMsg(m)
	}
}

// --- rss and relational ----------------------------------------------

func (g *generator) buildRSS() {
	for _, feed := range rssFeedNames {
		g.d.RSS.CreateFeed(feed)
		n := 3 + g.rng.Intn(5)
		for i := 0; i < n; i++ {
			g.d.RSS.Publish(feed, rss.Item{
				Title:       strings.Title(g.words(4, "")),
				Description: g.words(15, ""),
				PubDate:     g.clock.next(),
			})
		}
	}
}

func (g *generator) buildRelational() {
	schema := core.Schema{
		{Name: "name", Domain: core.DomainString},
		{Name: "email", Domain: core.DomainString},
		{Name: "affiliation", Domain: core.DomainString},
	}
	g.d.Rel.CreateRelation("contacts", schema)
	for _, p := range peopleNames {
		g.d.Rel.Insert("contacts", core.Tuple{
			core.String(p),
			core.String(strings.ToLower(p) + "@" + mailDomains[g.rng.Intn(len(mailDomains))]),
			core.String("ETH Zurich"),
		})
	}
	pubs := core.Schema{
		{Name: "title", Domain: core.DomainString},
		{Name: "venue", Domain: core.DomainString},
		{Name: "year", Domain: core.DomainInt},
	}
	g.d.Rel.CreateRelation("publications", pubs)
	g.d.Rel.Insert("publications", core.Tuple{
		core.String("iDM: A Unified and Versatile Data Model"), core.String("VLDB"), core.Int(2006)})
	g.d.Rel.Insert("publications", core.Tuple{
		core.String("iMeMex: Escapes from the Personal Information Jungle"), core.String("VLDB"), core.Int(2005)})
}
