package dataset

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/latex"
	"repro/internal/vfs"
	"repro/internal/xmlkit"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Scale: 0.02, Seed: 7})
	b := Generate(Config{Scale: 0.02, Seed: 7})
	if a.Info != b.Info {
		t.Errorf("same seed, different info:\n%+v\n%+v", a.Info, b.Info)
	}
	sa, sb := a.FS.Stats(), b.FS.Stats()
	if sa != sb {
		t.Errorf("fs stats differ: %+v vs %+v", sa, sb)
	}
	c := Generate(Config{Scale: 0.02, Seed: 8})
	if a.Info == c.Info {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateShapeRatios(t *testing.T) {
	d := Generate(Config{Scale: 0.05, Seed: 42})
	info := d.Info
	if info.Files == 0 || info.Folders == 0 {
		t.Fatalf("info = %+v", info)
	}
	// LaTeX documents outnumber XML documents (282 vs 47 in the paper).
	if info.LatexDocs <= info.XMLDocs {
		t.Errorf("latex=%d should exceed xml=%d", info.LatexDocs, info.XMLDocs)
	}
	// Messages dominate email base items; tex/xml attachments are rare.
	if info.Messages < 100 {
		t.Errorf("messages = %d", info.Messages)
	}
	if info.TexAttach == 0 || info.XMLAttach == 0 {
		t.Errorf("attachments: tex=%d xml=%d", info.TexAttach, info.XMLAttach)
	}
	if info.TexAttach+info.XMLAttach >= info.Messages/10 {
		t.Errorf("structured attachments too common: %d of %d", info.TexAttach+info.XMLAttach, info.Messages)
	}
	// Counted stats agree with the stores.
	fsStats := d.FS.Stats()
	if fsStats.Files != info.Files {
		t.Errorf("fs files: stats=%d info=%d", fsStats.Files, info.Files)
	}
	mailStats := d.Mail.Stats()
	if mailStats.Messages != info.Messages || mailStats.Attachments != info.Attachments {
		t.Errorf("mail stats=%+v info=%+v", mailStats, info)
	}
}

func TestPlantedQueryTargets(t *testing.T) {
	d := Generate(Config{Scale: 0.02, Seed: 42})

	// Q1/Q4 targets: the flagship paper exists and parses, with the
	// planted sections.
	b, err := d.FS.ReadFile("/papers/VLDB2006/vldb2006.tex")
	if err != nil {
		t.Fatal(err)
	}
	src := string(b)
	for _, want := range []string{"Mike Franklin", "Dataspace Vision", "Conclusion", "systems", "Indexing time", "documents"} {
		if !strings.Contains(src, want) {
			t.Errorf("vldb2006.tex lacks %q", want)
		}
	}
	doc, err := latex.Parse(src)
	if err != nil {
		t.Fatalf("planted document does not parse: %v", err)
	}
	if len(doc.Refs) == 0 {
		t.Error("planted document has no refs (Q7 needs them)")
	}
	foundFig := false
	for key, n := range doc.Labels {
		if strings.HasPrefix(key, "fig:") && strings.Contains(n.Caption, "Indexing time") {
			foundFig = true
		}
	}
	if !foundFig {
		t.Error("no figure labeled with an Indexing time caption")
	}

	// Cycle link exists.
	if !d.FS.Exists("/Projects/PIM/All Projects") {
		t.Error("All Projects link missing")
	}

	// Q8 targets: attachments named like /papers files.
	var attachNames []string
	for _, m := range d.Mail.PollSince(0) {
		for _, a := range m.Attachments {
			attachNames = append(attachNames, a.Filename)
		}
	}
	joined := strings.Join(attachNames, ",")
	if !strings.Contains(joined, "vldb2006.tex") || !strings.Contains(joined, "imemex-demo.tex") {
		t.Errorf("Q8 attachment names missing: %v", attachNames)
	}
}

func TestBinaryFilesPresent(t *testing.T) {
	d := Generate(Config{Scale: 0.05, Seed: 42})
	if d.Info.BinaryFiles == 0 {
		t.Error("no binary files generated (Table 3 net-input exclusion needs them)")
	}
}

func TestRSSAndRelationalPopulated(t *testing.T) {
	d := Generate(Config{Scale: 0.02, Seed: 42})
	if len(d.RSS.Feeds()) != len(rssFeedNames) {
		t.Errorf("feeds = %v", d.RSS.Feeds())
	}
	for _, f := range d.RSS.Feeds() {
		if _, err := d.RSS.FetchDocument(f); err != nil {
			t.Errorf("feed %q: %v", f, err)
		}
	}
	rels := d.Rel.Relations()
	if len(rels) != 2 {
		t.Errorf("relations = %v", rels)
	}
	n := 0
	d.Rel.Scan("contacts", func(core.Tuple) bool { n++; return true })
	if n == 0 {
		t.Error("contacts relation empty")
	}
}

func TestScaleGrowsDataset(t *testing.T) {
	small := Generate(Config{Scale: 0.02, Seed: 42})
	big := Generate(Config{Scale: 0.08, Seed: 42})
	if big.Info.Files <= small.Info.Files {
		t.Errorf("files: %d !> %d", big.Info.Files, small.Info.Files)
	}
	if big.Info.Messages <= small.Info.Messages {
		t.Errorf("messages: %d !> %d", big.Info.Messages, small.Info.Messages)
	}
	if big.Info.LatexDocs <= small.Info.LatexDocs {
		t.Errorf("latex docs: %d !> %d", big.Info.LatexDocs, small.Info.LatexDocs)
	}
}

func TestDefaultScaleOnInvalidConfig(t *testing.T) {
	d := Generate(Config{Scale: -1, Seed: 1})
	if d.Info.Files == 0 {
		t.Error("invalid scale not defaulted")
	}
}

func TestAllLatexDocsParse(t *testing.T) {
	d := Generate(Config{Scale: 0.03, Seed: 42})
	checked := 0
	err := d.FS.Walk(func(path string, n *vfs.Node) error {
		if n.Kind() != vfs.KindFile || !strings.HasSuffix(path, ".tex") {
			return nil
		}
		b, err := d.FS.ReadFile(path)
		if err != nil {
			return err
		}
		if _, err := latex.Parse(string(b)); err != nil {
			t.Errorf("%s does not parse: %v", path, err)
		}
		checked++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no .tex files checked")
	}
}

func TestAllXMLDocsParse(t *testing.T) {
	d := Generate(Config{Scale: 0.03, Seed: 42})
	checked := 0
	d.FS.Walk(func(path string, n *vfs.Node) error {
		if n.Kind() != vfs.KindFile || !strings.HasSuffix(path, ".xml") {
			return nil
		}
		b, _ := d.FS.ReadFile(path)
		if _, err := xmlkit.ParseString(string(b)); err != nil {
			t.Errorf("%s does not parse: %v", path, err)
		}
		checked++
		return nil
	})
	if checked == 0 {
		t.Fatal("no .xml files checked")
	}
}
