package dataset

// Vocabulary for synthetic text. The evaluation queries of the paper
// (Table 4) search for specific words and phrases; the generator plants
// them with controlled frequencies so that Q1–Q8 return non-trivial
// result counts whose *shape* matches the paper (Q1 "database" is a
// frequent keyword, Q2 "database tuning" a much rarer phrase, and so
// on).
var commonWords = []string{
	"the", "a", "of", "and", "to", "in", "we", "for", "is", "that",
	"model", "data", "query", "system", "file", "folder", "email",
	"stream", "index", "graph", "view", "resource", "personal",
	"information", "management", "search", "structure", "content",
	"semantic", "schema", "relational", "document", "section",
	"figure", "evaluation", "result", "time", "approach", "paper",
	"work", "user", "desktop", "storage", "processing", "language",
	"engine", "operator", "plan", "optimizer", "catalog", "replica",
	"server", "client", "protocol", "network", "cache", "memory",
	"disk", "benchmark", "experiment", "dataset", "workload",
	"latency", "throughput", "scalability", "architecture", "layer",
	"module", "plugin", "converter", "wrapper", "integration",
	"heterogeneous", "unified", "versatile", "lazy", "intensional",
	"extensional", "infinite", "finite", "component", "tuple",
	"attribute", "predicate", "keyword", "phrase", "path", "step",
	"expansion", "navigation", "hierarchy", "cycle", "tree", "node",
	"edge", "xml", "latex", "office", "project", "meeting", "draft",
	"review", "deadline", "proposal", "budget", "report", "agenda",
}

// themedWords appear in project-specific text with higher probability.
var themedWords = map[string][]string{
	"PIM":      {"dataspace", "imemex", "pim", "desktop", "jungle"},
	"OLAP":     {"olap", "cube", "rollup", "drilldown", "aggregate"},
	"XML":      {"xpath", "xquery", "infoset", "element", "namespace"},
	"Streams":  {"window", "tuple", "push", "notification", "filter"},
	"Indexing": {"btree", "inverted", "posting", "partition", "hash"},
}

// Planted query targets (Table 4):
//
//	Q1  "database"            — frequent keyword
//	Q2  "database tuning"     — rare phrase
//	Q4  "Franklin"            — inside *Vision sections under papers
//	Q5  "systems"             — inside Conclusion sections
//	Q6  "documents"           — under VLDB2005/VLDB2006
//	Q2' "Indexing time"       — figure captions (also example Query 2)
const (
	wordDatabase    = "database"
	phraseDBTuning  = "database tuning"
	phraseFranklin  = "Mike Franklin"
	wordSystems     = "systems"
	wordDocuments   = "documents"
	phraseIndexTime = "Indexing time"
	phraseKnuth     = "Donald Knuth"
)

// sectionTitles for generated LaTeX documents.
var sectionTitles = []string{
	"Introduction", "Preliminaries", "The Problem", "Our Contributions",
	"Data Model", "Architecture", "Implementation", "Evaluation",
	"Related Work", "Discussion", "Future Work",
}

var subsectionTitles = []string{
	"Motivation", "Overview", "Definitions", "Examples", "Analysis",
	"Setup", "Results", "Limitations", "Extensions",
}

// fileStems name generated files.
var fileStems = []string{
	"notes", "draft", "report", "summary", "minutes", "todo", "ideas",
	"outline", "review", "feedback", "plan", "spec", "design", "memo",
	"log", "journal", "readme", "abstract", "slides", "budget",
}

var peopleNames = []string{
	"Alice", "Bob", "Carol", "Dave", "Erika", "Frank", "Grace",
	"Heidi", "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy",
}

var mailDomains = []string{
	"example.org", "inf.ethz.ch", "db.example.edu", "mail.example.com",
}

var rssFeedNames = []string{"dbworld", "vldb-news", "sigmod-record"}
