// Package sources defines the Data Source Plugin contract of §5.2 of the
// iDM paper. The Data Source Proxy of the Resource View Manager holds a
// set of plugins, each of which exposes one subsystem (a filesystem, an
// IMAP server, a relational database, an RSS feed) as an initial iDM
// resource view graph. Content2iDM converters are injected into plugins
// as a ConvertFunc so that the structural content inside files (XML,
// LaTeX) is exposed as resource view subgraphs.
package sources

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// ConvertFunc is the Content2iDM conversion hook: given an item name and
// its raw content, it returns the resource view subgraph reflecting the
// content's structure, or nil when no converter applies.
type ConvertFunc func(name string, data []byte) []core.ResourceView

// ChangeType classifies change notifications from a source.
type ChangeType int

// Change notification types.
const (
	Created ChangeType = iota
	Updated
	Removed
)

func (t ChangeType) String() string {
	switch t {
	case Created:
		return "created"
	case Updated:
		return "updated"
	case Removed:
		return "removed"
	default:
		return fmt.Sprintf("changetype(%d)", int(t))
	}
}

// Change is one notification that an item of a source changed.
type Change struct {
	Type ChangeType
	// URI locates the changed item within the source.
	URI string
}

// Source is a Data Source Plugin.
type Source interface {
	// ID returns the unique name of the data source.
	ID() string
	// Root returns the root resource view of the source's graph. The
	// graph may be computed lazily; Root itself should be cheap.
	Root() (core.ResourceView, error)
	// Changes returns a channel of change notifications, or nil when
	// the source cannot push (the Synchronization Manager then falls
	// back to polling).
	Changes() <-chan Change
	// Close releases the source's resources.
	Close() error
}

// SourceMetrics carries one plugin's instruments within the Data Source
// Proxy. Instrument names are prefixed "source_<id>_", so a dataspace
// with several plugins keeps per-source series apart. Every method is
// safe on a nil receiver (the uninstrumented case), so plugins record
// unconditionally.
type SourceMetrics struct {
	roots      *obs.Counter
	rootErrors *obs.Counter
	rootNs     *obs.Histogram
	changes    *obs.Counter
	views      *obs.Counter
	// Resilience instruments, recorded by the Resilient proxy.
	retries      *obs.Counter
	timeouts     *obs.Counter
	breakerOpens *obs.Counter
	breakerState *obs.Gauge
}

// NewSourceMetrics returns the instrument set for the plugin id,
// registered in reg. A nil registry yields a nil (no-op) SourceMetrics.
func NewSourceMetrics(reg *obs.Registry, id string) *SourceMetrics {
	if reg == nil {
		return nil
	}
	prefix := "source_" + id + "_"
	return &SourceMetrics{
		roots:        reg.Counter(prefix + "root_calls_total"),
		rootErrors:   reg.Counter(prefix + "root_errors_total"),
		rootNs:       reg.Histogram(prefix+"root_ns", nil),
		changes:      reg.Counter(prefix + "changes_total"),
		views:        reg.Counter(prefix + "views_built_total"),
		retries:      reg.Counter(prefix + "retries_total"),
		timeouts:     reg.Counter(prefix + "timeouts_total"),
		breakerOpens: reg.Counter(prefix + "breaker_opens_total"),
		breakerState: reg.Gauge(prefix + "breaker_state"),
	}
}

// RecordRoot records one Root() call with its duration and outcome.
func (sm *SourceMetrics) RecordRoot(d time.Duration, err error) {
	if sm == nil {
		return
	}
	sm.roots.Inc()
	sm.rootNs.Observe(int64(d))
	if err != nil {
		sm.rootErrors.Inc()
	}
}

// RecordChange records one emitted change notification.
func (sm *SourceMetrics) RecordChange() {
	if sm == nil {
		return
	}
	sm.changes.Inc()
}

// RecordViewBuilt records one resource view materialized by the plugin.
func (sm *SourceMetrics) RecordViewBuilt() {
	if sm == nil {
		return
	}
	sm.views.Inc()
}

// RecordRetry records one retried call.
func (sm *SourceMetrics) RecordRetry() {
	if sm == nil {
		return
	}
	sm.retries.Inc()
}

// RecordTimeout records one call abandoned on deadline.
func (sm *SourceMetrics) RecordTimeout() {
	if sm == nil {
		return
	}
	sm.timeouts.Inc()
}

// RecordBreaker records the circuit breaker's state (and, on a
// transition to Open, the trip itself).
func (sm *SourceMetrics) RecordBreaker(s BreakerState, tripped bool) {
	if sm == nil {
		return
	}
	sm.breakerState.Set(int64(s))
	if tripped {
		sm.breakerOpens.Inc()
	}
}

// MetricsSetter is the optional instrumentation interface of a data
// source: the Resource View Manager hands an instrumented plugin its
// SourceMetrics when the manager itself carries a metrics registry.
// SetMetrics may be called after the plugin's goroutines have started,
// so implementations must publish the pointer safely (atomically).
type MetricsSetter interface {
	SetMetrics(*SourceMetrics)
}

// FaultSetter is the optional fault-injection interface of a data
// source: plugins that expose named failure points implement it, and the
// Resource View Manager hands them the dataspace's Injector. Like
// SetMetrics, SetFaults may be called after the plugin's goroutines have
// started, so implementations must publish the pointer atomically.
type FaultSetter interface {
	SetFaults(*fault.Injector)
}

// Mutator is the optional write-through interface of a data source:
// plugins whose subsystem supports deletion implement it, enabling iQL
// delete statements to remove base items from the underlying system
// (files from the filesystem, messages from the mail store). URIs are
// the same stable identifiers the catalog uses.
type Mutator interface {
	// Delete removes the base item at uri from the subsystem.
	Delete(uri string) error
}

// Item is a resource view annotated with its location within a data
// source: the stable URI the catalog keys on, and whether the view
// represents a base item of the subsystem (file, folder, email message)
// or was derived from content. Plugins wrap their base views in Items;
// derived views are plain core views and receive synthetic URIs from the
// Resource View Manager.
type Item struct {
	core.ResourceView
	uri  string
	base bool
}

// Annotate wraps v with a source URI. base marks base items (Table 2 of
// the paper counts base and derived views separately).
func Annotate(v core.ResourceView, uri string, base bool) *Item {
	return &Item{ResourceView: v, uri: uri, base: base}
}

// URI returns the view's stable URI within its source.
func (it *Item) URI() string { return it.uri }

// IsBase reports whether the view represents a base item.
func (it *Item) IsBase() bool { return it.base }

// Unwrap returns the wrapped resource view.
func (it *Item) Unwrap() core.ResourceView { return it.ResourceView }
