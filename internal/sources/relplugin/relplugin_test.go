package relplugin

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/sources"
)

func seedDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB("persdb")
	schema := core.Schema{
		{Name: "name", Domain: core.DomainString},
		{Name: "year", Domain: core.DomainInt},
	}
	if _, err := db.CreateRelation("publications", schema); err != nil {
		t.Fatal(err)
	}
	db.Insert("publications", core.Tuple{core.String("iDM"), core.Int(2006)})
	db.Insert("publications", core.Tuple{core.String("iMeMex demo"), core.Int(2005)})
	return db
}

func TestRootShapeAndURIs(t *testing.T) {
	p := New("reldb", seedDB(t))
	if p.ID() != "reldb" {
		t.Errorf("id = %q", p.ID())
	}
	root, err := p.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root.Name() != "persdb" || root.Class() != core.ClassRelDB {
		t.Errorf("root name=%q class=%q", root.Name(), root.Class())
	}
	rels, _ := core.Children(root)
	if len(rels) != 1 || rels[0].Name() != "publications" {
		t.Fatalf("relations = %v", rels)
	}
	tuples, _ := core.Children(rels[0])
	if len(tuples) != 2 {
		t.Fatalf("tuples = %d", len(tuples))
	}
	uris := map[string]bool{}
	for _, tv := range tuples {
		item, ok := tv.(*sources.Item)
		if !ok {
			t.Fatal("tuple view not annotated")
		}
		uris[item.URI()] = true
		if tv.Class() != core.ClassTuple {
			t.Errorf("tuple class = %q", tv.Class())
		}
	}
	if !uris["publications#1"] || !uris["publications#2"] {
		t.Errorf("tuple URIs = %v", uris)
	}
}

func TestChangesNil(t *testing.T) {
	p := New("reldb", seedDB(t))
	if p.Changes() != nil {
		t.Error("relational source should not push")
	}
	if err := p.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestLazySeesInserts(t *testing.T) {
	db := seedDB(t)
	p := New("reldb", db)
	root, _ := p.Root()
	rels, _ := core.Children(root)
	db.Insert("publications", core.Tuple{core.String("new"), core.Int(2007)})
	tuples, _ := core.Children(rels[0])
	if len(tuples) != 3 {
		t.Errorf("lazy relation sees %d tuples, want 3", len(tuples))
	}
}
