// Package relplugin exposes an embedded relational database
// (internal/relstore) as an iDM resource view graph, following the
// reldb / relation / tuple resource view classes of Table 1 of the
// paper.
package relplugin

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/relstore"
	"repro/internal/sources"
)

// Plugin is a relational data source.
//
// Failure points (internal/fault): "<id>/root" (error, latency).
type Plugin struct {
	id     string
	db     *relstore.DB
	met    atomic.Pointer[sources.SourceMetrics]
	faults atomic.Pointer[fault.Injector]
}

// New returns a plugin exposing db under the given source id.
func New(id string, db *relstore.DB) *Plugin {
	return &Plugin{id: id, db: db}
}

// ID implements sources.Source.
func (p *Plugin) ID() string { return p.id }

// SetMetrics implements sources.MetricsSetter.
func (p *Plugin) SetMetrics(sm *sources.SourceMetrics) { p.met.Store(sm) }

// SetFaults implements sources.FaultSetter.
func (p *Plugin) SetFaults(in *fault.Injector) { p.faults.Store(in) }

// Changes implements sources.Source; the store does not push.
func (p *Plugin) Changes() <-chan sources.Change { return nil }

// Close implements sources.Source.
func (p *Plugin) Close() error { return nil }

// Root implements sources.Source. Relation and tuple views are annotated
// with stable URIs (relation name; relation name plus tuple ordinal).
func (p *Plugin) Root() (core.ResourceView, error) {
	start := time.Now()
	if err := p.faults.Load().Fail(p.id + "/root"); err != nil {
		p.met.Load().RecordRoot(time.Since(start), err)
		return nil, err
	}
	defer func() { p.met.Load().RecordRoot(time.Since(start), nil) }()
	names := p.db.Relations()
	relViews := make([]core.ResourceView, 0, len(names))
	for _, name := range names {
		name := name
		rel, err := p.db.Relation(name)
		if err != nil {
			continue
		}
		schema := rel.Schema()
		lv := &core.LazyView{
			VName:  name,
			VClass: core.ClassRelation,
			GroupFn: func() core.Group {
				var tupleViews []core.ResourceView
				i := 0
				p.db.Scan(name, func(t core.Tuple) bool {
					i++
					tv := &core.StaticView{
						VClass: core.ClassTuple,
						VTuple: core.TupleComponent{Schema: schema, Tuple: t},
					}
					tupleViews = append(tupleViews,
						sources.Annotate(tv, fmt.Sprintf("%s#%d", name, i), true))
					p.met.Load().RecordViewBuilt()
					return true
				})
				return core.SetGroup(tupleViews...)
			},
		}
		relViews = append(relViews, sources.Annotate(lv, name, true))
	}
	root := core.NewView(p.db.Name(), core.ClassRelDB).
		WithGroup(core.SetGroup(relViews...))
	return sources.Annotate(root, "/", true), nil
}
