package rssplugin

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rss"
	"repro/internal/sources"
)

func seedServer() *rss.Server {
	s := rss.NewServer()
	s.Publish("dbnews", rss.Item{Title: "VLDB 2006", Description: "Seoul"})
	s.Publish("dbnews", rss.Item{Title: "Dataspaces", Description: "vision paper"})
	s.Publish("weather", rss.Item{Title: "Sunny in Zurich"})
	return s
}

func TestRootOneDocPerFeed(t *testing.T) {
	srv := seedServer()
	p := New("rss", srv, 0)
	defer p.Close()
	root, err := p.Root()
	if err != nil {
		t.Fatal(err)
	}
	feeds, _ := core.Children(root)
	if len(feeds) != 2 {
		t.Fatalf("feed views = %d", len(feeds))
	}
	for _, f := range feeds {
		if f.Class() != core.ClassXMLDoc {
			t.Errorf("feed %q class = %q", f.Name(), f.Class())
		}
		item, ok := f.(*sources.Item)
		if !ok || item.URI() == "" {
			t.Errorf("feed %q not annotated", f.Name())
		}
	}
	// The dbnews document graph contains the item titles as xmltext.
	var dbnews core.ResourceView
	for _, f := range feeds {
		if f.Name() == "dbnews" {
			dbnews = f
		}
	}
	n, _ := core.CountReachable(dbnews, core.WalkOptions{MaxDepth: -1})
	if n < 10 {
		t.Errorf("dbnews graph has %d views", n)
	}
}

func TestPollingChanges(t *testing.T) {
	srv := seedServer()
	p := New("rss", srv, 5*time.Millisecond)
	defer p.Close()
	ch := p.Changes()
	// All seed items arrive as initial changes; drain until we see one
	// from each feed, then publish and expect the delta.
	deadline := time.After(2 * time.Second)
	seen := 0
	for seen < 3 {
		select {
		case <-ch:
			seen++
		case <-deadline:
			t.Fatalf("initial poll delivered only %d changes", seen)
		}
	}
	srv.Publish("weather", rss.Item{Title: "Rain", GUID: "w-rain"})
	for {
		select {
		case c := <-ch:
			if c.URI == "weather/w-rain" {
				if c.Type != sources.Created {
					t.Errorf("change type = %v", c.Type)
				}
				return
			}
		case <-deadline:
			t.Fatal("published item never polled")
		}
	}
}

func TestCloseIdempotentWithoutPolling(t *testing.T) {
	p := New("rss", seedServer(), 0)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
