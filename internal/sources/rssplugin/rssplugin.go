// Package rssplugin exposes a simulated RSS/ATOM server (internal/rss)
// as an iDM resource view graph. Per Table 1 of the paper an RSS/ATOM
// stream admits two representations; this plugin uses the xmldoc state
// representation for its Root graph (one lazy xmldoc view per feed) and
// offers a pseudo data stream of item views via polling (§4.4.1,
// footnote 5) through Changes.
package rssplugin

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rss"
	"repro/internal/sources"
)

// Plugin is an RSS/ATOM data source.
//
// Failure points (internal/fault): "<id>/root" (error, latency),
// "<id>/poll" (error: that polling round is skipped, as a feed timeout
// would be).
type Plugin struct {
	id     string
	server *rss.Server
	met    atomic.Pointer[sources.SourceMetrics]
	faults atomic.Pointer[fault.Injector]

	changes chan sources.Change
	stop    chan struct{}
	done    chan struct{}
}

// New returns a plugin exposing server under the given source id,
// polling each feed for new items on the given interval (0 disables
// polling).
func New(id string, server *rss.Server, pollEvery time.Duration) *Plugin {
	p := &Plugin{
		id:      id,
		server:  server,
		changes: make(chan sources.Change, 1024),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if pollEvery > 0 {
		go p.poll(pollEvery)
	} else {
		close(p.done)
	}
	return p
}

// ID implements sources.Source.
func (p *Plugin) ID() string { return p.id }

// SetMetrics implements sources.MetricsSetter.
func (p *Plugin) SetMetrics(sm *sources.SourceMetrics) { p.met.Store(sm) }

// SetFaults implements sources.FaultSetter.
func (p *Plugin) SetFaults(in *fault.Injector) { p.faults.Store(in) }

// Changes implements sources.Source: one Created change per new feed
// item, detected by polling.
func (p *Plugin) Changes() <-chan sources.Change { return p.changes }

// Close implements sources.Source. The change channel is closed once the
// poller has stopped, so consumers draining it terminate too.
func (p *Plugin) Close() error {
	select {
	case <-p.stop:
	default:
		close(p.stop)
		<-p.done
		close(p.changes)
		return nil
	}
	<-p.done
	return nil
}

func (p *Plugin) poll(every time.Duration) {
	defer close(p.done)
	clients := make(map[string]*rss.Client)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			if p.faults.Load().Fail(p.id+"/poll") != nil {
				continue
			}
			for _, feed := range p.server.Feeds() {
				c, ok := clients[feed]
				if !ok {
					c = rss.NewClient(p.server, feed)
					clients[feed] = c
				}
				items, err := c.Poll()
				if err != nil {
					continue
				}
				for _, it := range items {
					select {
					case p.changes <- sources.Change{Type: sources.Created, URI: feed + "/" + it.GUID}:
						p.met.Load().RecordChange()
					default:
					}
				}
			}
		}
	}
}

// Root implements sources.Source: a root view whose group set holds one
// lazy xmldoc view per feed.
func (p *Plugin) Root() (core.ResourceView, error) {
	start := time.Now()
	if err := p.faults.Load().Fail(p.id + "/root"); err != nil {
		p.met.Load().RecordRoot(time.Since(start), err)
		return nil, err
	}
	defer func() { p.met.Load().RecordRoot(time.Since(start), nil) }()
	feeds := p.server.Feeds()
	views := make([]core.ResourceView, len(feeds))
	for i, feed := range feeds {
		views[i] = sources.Annotate(rss.DocumentView(p.server, feed), feed, true)
		p.met.Load().RecordViewBuilt()
	}
	// The root is deliberately class-less: iDM supports schema-never
	// modelling, and no Table 1 class describes "a set of feeds".
	root := core.NewView(p.id, "").WithGroup(core.SetGroup(views...))
	return sources.Annotate(root, "/", true), nil
}
