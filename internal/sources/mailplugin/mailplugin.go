// Package mailplugin exposes a simulated IMAP store (internal/mail) as an
// iDM resource view graph: the email use-case of §4.4.1 of the paper.
// The plugin models the *state* of the mailbox (Option 1): folders become
// emailfolder views, messages become emailmessage views named by their
// subject with headers in τ and the body in χ, and attachments become
// attachment views (a specialization of file) whose contents are
// Content2iDM-converted like any other file. Stream exposes the incoming
// message flow as an infinite datstream view (Option 2).
//
// Every message fetch goes through the store and is charged its
// simulated latency — reproducing the remote data-source access cost
// that dominates email indexing in Figure 5 of the paper.
package mailplugin

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mail"
	"repro/internal/sources"
	"repro/internal/stream"
)

// Plugin is an email data source.
//
// Failure points (internal/fault): "<id>/root" (error, latency),
// "<id>/fetch" (error or latency on message fetch; a failed fetch yields
// an empty message view, as a flaky IMAP server would), "<id>/convert"
// (corrupt attachment converter input).
type Plugin struct {
	id      string
	store   *mail.Store
	convert sources.ConvertFunc
	met     atomic.Pointer[sources.SourceMetrics]
	faults  atomic.Pointer[fault.Injector]

	changes chan sources.Change
	stop    chan struct{}
	done    chan struct{}
}

// New returns a plugin exposing store under the given source id.
func New(id string, store *mail.Store, convert sources.ConvertFunc) *Plugin {
	p := &Plugin{
		id:      id,
		store:   store,
		convert: convert,
		changes: make(chan sources.Change, 1024),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	msgs := store.Watch() // subscribe before returning so no event is missed
	go p.forwardEvents(msgs)
	return p
}

// ID implements sources.Source.
func (p *Plugin) ID() string { return p.id }

// SetMetrics implements sources.MetricsSetter.
func (p *Plugin) SetMetrics(sm *sources.SourceMetrics) { p.met.Store(sm) }

// SetFaults implements sources.FaultSetter.
func (p *Plugin) SetFaults(in *fault.Injector) { p.faults.Store(in) }

// Changes implements sources.Source.
func (p *Plugin) Changes() <-chan sources.Change { return p.changes }

// Close implements sources.Source. The change channel is closed once the
// forwarder has stopped, so consumers draining it terminate too.
func (p *Plugin) Close() error {
	close(p.stop)
	<-p.done
	close(p.changes)
	return nil
}

func (p *Plugin) forwardEvents(msgs <-chan *mail.Message) {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			return
		case m, ok := <-msgs:
			if !ok {
				return
			}
			select {
			case p.changes <- sources.Change{Type: sources.Created, URI: messageURI(m.Folder, m.UID)}:
				p.met.Load().RecordChange()
			default:
			}
		}
	}
}

func messageURI(folder string, uid uint64) string {
	return fmt.Sprintf("%s/;uid=%d", folder, uid)
}

// parseMessageURI inverts messageURI.
func parseMessageURI(uri string) (folder string, uid uint64, ok bool) {
	i := strings.LastIndex(uri, "/;uid=")
	if i < 0 {
		return "", 0, false
	}
	var n uint64
	if _, err := fmt.Sscanf(uri[i+len("/;uid="):], "%d", &n); err != nil {
		return "", 0, false
	}
	return uri[:i], n, true
}

// Delete implements sources.Mutator: it removes the message at the URI
// from the store. Folders and attachments are not deletable through the
// mail protocol.
func (p *Plugin) Delete(uri string) error {
	folder, uid, ok := parseMessageURI(uri)
	if !ok {
		return fmt.Errorf("mailplugin: %q does not identify a message", uri)
	}
	if strings.Contains(uri[strings.LastIndex(uri, ";uid="):], "/") {
		return fmt.Errorf("mailplugin: %q is an attachment; delete its message instead", uri)
	}
	return p.store.Delete(folder, uid)
}

// Root implements sources.Source: the mailbox state as a view graph.
func (p *Plugin) Root() (core.ResourceView, error) {
	start := time.Now()
	if err := p.faults.Load().Fail(p.id + "/root"); err != nil {
		p.met.Load().RecordRoot(time.Since(start), err)
		return nil, err
	}
	names := p.store.Folders()
	root := &core.LazyView{
		VName:  p.id,
		VClass: core.ClassEmailFolder,
		GroupFn: func() core.Group {
			return core.SetGroup(p.folderViews(names, "")...)
		},
	}
	p.met.Load().RecordRoot(time.Since(start), nil)
	return sources.Annotate(root, "/", true), nil
}

// folderViews builds views for the direct child folders of prefix.
func (p *Plugin) folderViews(all []string, prefix string) []core.ResourceView {
	seen := make(map[string]bool)
	var out []core.ResourceView
	for _, name := range all {
		if prefix != "" {
			if !strings.HasPrefix(name, prefix+"/") {
				continue
			}
			name = name[len(prefix)+1:]
		}
		head := name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			head = name[:i]
		}
		if head == "" || seen[head] {
			continue
		}
		seen[head] = true
		full := head
		if prefix != "" {
			full = prefix + "/" + head
		}
		out = append(out, p.folderView(all, full, head))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

func (p *Plugin) folderView(all []string, full, name string) core.ResourceView {
	lv := &core.LazyView{
		VName:  name,
		VClass: core.ClassEmailFolder,
		GroupFn: func() core.Group {
			subs := p.folderViews(all, full)
			uids, err := p.store.UIDs(full)
			if err != nil {
				return core.SetGroup(subs...)
			}
			msgs := make([]core.ResourceView, len(uids))
			for i, uid := range uids {
				msgs[i] = p.messageView(full, uid)
			}
			// Subfolders are unordered (S); the message window is the
			// ordered INBOX state (Q), per §4.4.1 Option 1.
			return core.Group{Set: core.SliceViews(subs...), Seq: core.SliceViews(msgs...)}
		},
	}
	return sources.Annotate(lv, full, true)
}

// messageView builds a lazy emailmessage view. The underlying message is
// fetched from the store at most once, when any component is first
// requested — each fetch pays the store's simulated latency.
func (p *Plugin) messageView(folder string, uid uint64) core.ResourceView {
	var once sync.Once
	var msg *mail.Message
	load := func() *mail.Message {
		once.Do(func() {
			if err := p.faults.Load().Fail(p.id + "/fetch"); err != nil {
				p.met.Load().RecordViewBuilt()
				return
			}
			m, err := p.store.Fetch(folder, uid)
			if err == nil {
				msg = m
			}
			p.met.Load().RecordViewBuilt()
		})
		return msg
	}
	lv := &core.LazyView{
		VName:  fmt.Sprintf("message %d", uid),
		VClass: core.ClassEmailMessage,
		TupleFn: func() core.TupleComponent {
			m := load()
			if m == nil {
				return core.EmptyTuple()
			}
			return core.TupleComponent{
				Schema: core.Schema{
					{Name: "subject", Domain: core.DomainString},
					{Name: "from", Domain: core.DomainString},
					{Name: "to", Domain: core.DomainString},
					{Name: "date", Domain: core.DomainTime},
					{Name: "size", Domain: core.DomainInt},
				},
				Tuple: core.Tuple{
					core.String(m.Subject),
					core.String(m.From),
					core.String(strings.Join(m.To, ", ")),
					core.Time(m.Date),
					core.Int(m.Size()),
				},
			}
		},
		ContentFn: func() core.Content {
			m := load()
			if m == nil {
				return core.EmptyContent()
			}
			return core.StringContent(m.Subject + "\n" + m.Body)
		},
		GroupFn: func() core.Group {
			m := load()
			if m == nil || len(m.Attachments) == 0 {
				return core.EmptyGroup()
			}
			atts := make([]core.ResourceView, len(m.Attachments))
			for i, a := range m.Attachments {
				atts[i] = p.attachmentView(m, a)
			}
			return core.SeqGroup(atts...)
		},
	}
	// The UID-based name is stable and cheap (no fetch); the subject is
	// exposed through the tuple component and the content component, so
	// keyword queries still find messages by subject.
	return sources.Annotate(lv, messageURI(folder, uid), true)
}

func (p *Plugin) attachmentView(m *mail.Message, a mail.Attachment) core.ResourceView {
	data := a.Data
	name := a.Filename
	lv := &core.LazyView{
		VName:  name,
		VClass: core.ClassAttachment,
		TupleFn: func() core.TupleComponent {
			return core.TupleComponent{
				Schema: core.FSSchema,
				Tuple: core.Tuple{
					core.Int(int64(len(data))),
					core.Time(m.Date),
					core.Time(m.Date),
				},
			}
		},
		ContentFn: func() core.Content { return core.BytesContent(data) },
		GroupFn: func() core.Group {
			if p.convert == nil {
				return core.EmptyGroup()
			}
			sub := p.convert(name, p.faults.Load().Corrupt(p.id+"/convert", data))
			if len(sub) == 0 {
				return core.EmptyGroup()
			}
			return core.SeqGroup(sub...)
		},
	}
	return sources.Annotate(lv, messageURI(m.Folder, m.UID)+"/"+name, true)
}

// Stream exposes the incoming message flow as an infinite datstream view
// (Option 2 of §4.4.1): messages appended to the store after the call
// appear on the stream; the stream is one-shot.
func (p *Plugin) Stream() core.ResourceView {
	ch := make(chan core.ResourceView, 256)
	msgs := p.store.Watch()
	go func() {
		defer close(ch)
		for {
			select {
			case <-p.stop:
				return
			case m, ok := <-msgs:
				if !ok {
					return
				}
				select {
				case ch <- p.messageView(m.Folder, m.UID):
				case <-p.stop:
					return
				}
			}
		}
	}()
	return stream.StreamView(p.id+" stream", stream.InfiniteViews(ch))
}
