package mailplugin

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/latex"
	"repro/internal/mail"
	"repro/internal/sources"
)

func texConvert(name string, data []byte) []core.ResourceView {
	if !strings.HasSuffix(name, ".tex") {
		return nil
	}
	d, err := latex.Parse(string(data))
	if err != nil {
		return nil
	}
	return latex.ToViews(d)
}

func seedStore(t *testing.T) *mail.Store {
	t.Helper()
	s := mail.NewStore()
	if err := s.CreateFolder("Projects/OLAP"); err != nil {
		t.Fatal(err)
	}
	msgs := []*mail.Message{
		{Folder: "INBOX", From: "bob@example.org", Subject: "hello", Body: "hi there",
			Date: time.Date(2005, 5, 1, 8, 0, 0, 0, time.UTC)},
		{Folder: "Projects/OLAP", From: "alice@example.org", Subject: "OLAP results",
			Body: "see attachment",
			Date: time.Date(2005, 6, 2, 9, 0, 0, 0, time.UTC),
			Attachments: []mail.Attachment{{
				Filename: "results.tex", ContentType: "application/x-tex",
				Data: []byte("\\section{Results}\nIndexing time improved."),
			}},
		},
	}
	for _, m := range msgs {
		if _, err := s.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRootFolderHierarchy(t *testing.T) {
	s := seedStore(t)
	p := New("email", s, nil)
	defer p.Close()
	root, err := p.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root.Name() != "email" || root.Class() != core.ClassEmailFolder {
		t.Errorf("root name=%q class=%q", root.Name(), root.Class())
	}
	top, _ := core.Children(root)
	names := map[string]bool{}
	for _, v := range top {
		names[v.Name()] = true
	}
	if !names["INBOX"] || !names["Projects"] {
		t.Errorf("top folders = %v", names)
	}
	// Projects contains the OLAP subfolder.
	var projects core.ResourceView
	for _, v := range top {
		if v.Name() == "Projects" {
			projects = v
		}
	}
	sub, _ := core.Children(projects)
	if len(sub) != 1 || sub[0].Name() != "OLAP" {
		t.Fatalf("Projects children = %v", sub)
	}
}

func TestMessageViewComponents(t *testing.T) {
	s := seedStore(t)
	p := New("email", s, nil)
	defer p.Close()
	root, _ := p.Root()
	var msg core.ResourceView
	core.Walk(root, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		if v.Class() == core.ClassEmailMessage {
			if subj, ok := v.Tuple().Get("subject"); ok && subj.Str == "OLAP results" {
				msg = v
				return core.ErrWalkStop
			}
		}
		return nil
	})
	if msg == nil {
		t.Fatal("OLAP message view missing")
	}
	from, _ := msg.Tuple().Get("from")
	if from.Str != "alice@example.org" {
		t.Errorf("from = %v", from)
	}
	b, _ := core.ReadAllContent(msg.Content(), 0)
	if !strings.Contains(string(b), "see attachment") || !strings.Contains(string(b), "OLAP results") {
		t.Errorf("χ = %q", b)
	}
}

func TestAttachmentConversion(t *testing.T) {
	s := seedStore(t)
	p := New("email", s, texConvert)
	defer p.Close()
	root, _ := p.Root()
	var att, section core.ResourceView
	core.Walk(root, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		switch v.Class() {
		case core.ClassAttachment:
			att = v
		case core.ClassLatexSection:
			section = v
		}
		return nil
	})
	if att == nil || att.Name() != "results.tex" {
		t.Fatalf("attachment view = %v", att)
	}
	if section == nil || section.Name() != "Results" {
		t.Fatalf("section view inside attachment = %v", section)
	}
	b, _ := core.ReadAllContent(section.Content(), 0)
	if !strings.Contains(string(b), "Indexing time") {
		t.Errorf("section χ = %q", b)
	}
	// The attachment conforms to the attachment class (is-a file, W_FS).
	reg := core.StandardRegistry()
	if err := reg.Conforms(att, core.ClassAttachment, 8); err != nil {
		t.Errorf("attachment conformance: %v", err)
	}
}

func TestMessageFetchLaziness(t *testing.T) {
	s := seedStore(t)
	p := New("email", s, nil)
	defer p.Close()
	before := s.Calls()
	root, _ := p.Root()
	_ = root.Name()
	// Root may list folders but must not fetch any message.
	if got := s.Calls() - before; got > 1 {
		t.Errorf("Root performed %d store calls, want at most a folder listing", got)
	}
	// The walk forces each message exactly once; afterwards, accessing
	// every component again is free (memoized fetch).
	var msg core.ResourceView
	core.Walk(root, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		if v.Class() == core.ClassEmailMessage && msg == nil {
			msg = v
		}
		return nil
	})
	calls := s.Calls()
	msg.Tuple()
	msg.Content()
	msg.Group()
	if got := s.Calls() - calls; got != 0 {
		t.Errorf("re-reading components forced %d extra fetches, want 0", got)
	}
}

func TestChangesOnAppend(t *testing.T) {
	s := seedStore(t)
	p := New("email", s, nil)
	defer p.Close()
	ch := p.Changes()
	s.Append(&mail.Message{Folder: "INBOX", Subject: "new"})
	select {
	case c := <-ch:
		if c.Type != sources.Created || !strings.HasPrefix(c.URI, "INBOX/;uid=") {
			t.Errorf("change = %+v", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no change event")
	}
}

func TestStreamOption2(t *testing.T) {
	s := seedStore(t)
	p := New("email", s, nil)
	defer p.Close()
	sv := p.Stream()
	if sv.Class() != core.ClassDatStream {
		t.Errorf("stream class = %q", sv.Class())
	}
	it := sv.Group().Seq.Iter()
	s.Append(&mail.Message{Folder: "INBOX", Subject: "streamed", Body: "b"})
	done := make(chan core.ResourceView, 1)
	go func() {
		v, err := it.Next()
		if err == nil {
			done <- v
		}
	}()
	select {
	case v := <-done:
		if subj, ok := v.Tuple().Get("subject"); !ok || subj.Str != "streamed" {
			t.Errorf("streamed view subject = %v", subj)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream delivered nothing")
	}
}

func TestDeleteWriteThrough(t *testing.T) {
	s := seedStore(t)
	p := New("email", s, nil)
	defer p.Close()
	if p.ID() != "email" {
		t.Errorf("id = %q", p.ID())
	}
	uids, _ := s.UIDs("INBOX")
	uri := "INBOX/;uid=" + itoa(uids[0])
	if err := p.Delete(uri); err != nil {
		t.Fatal(err)
	}
	if after, _ := s.UIDs("INBOX"); len(after) != 0 {
		t.Errorf("message survives delete: %v", after)
	}
	// Attachments and malformed URIs are refused.
	if err := p.Delete("Projects/OLAP/;uid=2/results.tex"); err == nil {
		t.Error("attachment delete accepted")
	}
	if err := p.Delete("not-a-message-uri"); err == nil {
		t.Error("malformed URI accepted")
	}
	if err := p.Delete("INBOX/;uid=99999"); err == nil {
		t.Error("missing message delete accepted")
	}
}

func itoa(u uint64) string {
	return fmt.Sprintf("%d", u)
}

func TestParseMessageURI(t *testing.T) {
	folder, uid, ok := parseMessageURI("Projects/OLAP/;uid=42")
	if !ok || folder != "Projects/OLAP" || uid != 42 {
		t.Errorf("parse = %q %d %v", folder, uid, ok)
	}
	if _, _, ok := parseMessageURI("no-uid-here"); ok {
		t.Error("malformed URI parsed")
	}
}

func TestURIsAnnotated(t *testing.T) {
	s := seedStore(t)
	p := New("email", s, texConvert)
	defer p.Close()
	root, _ := p.Root()
	var sawMessage, sawAttachment bool
	core.Walk(root, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		item, ok := v.(*sources.Item)
		if !ok {
			// Derived views (latex subgraph) are not annotated.
			return nil
		}
		switch item.Class() {
		case core.ClassEmailMessage:
			sawMessage = true
			if !strings.Contains(item.URI(), ";uid=") {
				t.Errorf("message URI = %q", item.URI())
			}
		case core.ClassAttachment:
			sawAttachment = true
			if !strings.HasSuffix(item.URI(), "/results.tex") {
				t.Errorf("attachment URI = %q", item.URI())
			}
		}
		return nil
	})
	if !sawMessage || !sawAttachment {
		t.Errorf("message=%v attachment=%v", sawMessage, sawAttachment)
	}
}
