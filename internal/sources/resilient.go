package sources

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// ErrBreakerOpen is returned (wrapped) when a source's circuit breaker
// rejects a call without attempting it.
var ErrBreakerOpen = errors.New("circuit breaker open")

// ErrCallTimeout wraps calls abandoned on their per-attempt deadline.
var ErrCallTimeout = errors.New("source call timed out")

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states, ordered so the exported gauge reads naturally:
// 0 = healthy, 1 = probing, 2 = tripped.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return fmt.Sprintf("breakerstate(%d)", int(s))
	}
}

// Policy tunes the Resilient proxy. The zero value gets sensible
// defaults from normalize; fields are knobs, not required settings.
type Policy struct {
	// MaxRetries is how many times a failed Root call is retried after
	// the initial attempt. Negative disables retries; 0 means default
	// (2).
	MaxRetries int
	// RetryBase is the first backoff delay (default 50ms); each retry
	// doubles it up to RetryMax (default 2s). A seeded jitter of up to
	// half the delay is added so synchronized sources do not stampede.
	RetryBase time.Duration
	RetryMax  time.Duration
	// JitterSeed seeds the backoff jitter; 0 derives a fixed default so
	// schedules stay reproducible.
	JitterSeed int64
	// Timeout bounds each Root attempt via context; 0 means no deadline.
	Timeout time.Duration
	// BreakerFailures is how many consecutive failed calls trip the
	// breaker (default 3; negative disables the breaker).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects calls before
	// letting a half-open probe through (default 5s).
	BreakerCooldown time.Duration
	// Now and Sleep are test hooks for the breaker clock and the backoff
	// sleeper; nil means real time.
	Now   func() time.Time
	Sleep func(time.Duration)
}

func (p Policy) normalize() Policy {
	switch {
	case p.MaxRetries < 0:
		p.MaxRetries = 0
	case p.MaxRetries == 0:
		p.MaxRetries = 2
	}
	if p.RetryBase <= 0 {
		p.RetryBase = 50 * time.Millisecond
	}
	if p.RetryMax <= 0 {
		p.RetryMax = 2 * time.Second
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	switch {
	case p.BreakerFailures < 0:
		p.BreakerFailures = 0
	case p.BreakerFailures == 0:
		p.BreakerFailures = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 5 * time.Second
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Resilient wraps a Data Source Plugin with the fault handling the
// paper's intermittently-connected sources demand: per-call timeouts,
// retry with exponential backoff and seeded jitter, and a circuit
// breaker that stops hammering a source that keeps failing. It is itself
// a Source, so the Resource View Manager can wrap any plugin
// transparently; Changes, Close, metrics, fault and mutation interfaces
// are forwarded to the wrapped plugin.
type Resilient struct {
	inner Source
	pol   Policy
	met   atomic.Pointer[SourceMetrics]

	jmu sync.Mutex
	rng *rand.Rand

	bmu      sync.Mutex
	state    BreakerState
	fails    int // consecutive Root failures
	openedAt time.Time
}

// NewResilient wraps src under pol.
func NewResilient(src Source, pol Policy) *Resilient {
	pol = pol.normalize()
	return &Resilient{
		inner: src,
		pol:   pol,
		rng:   rand.New(rand.NewSource(pol.JitterSeed)),
	}
}

// Unwrap returns the wrapped plugin.
func (r *Resilient) Unwrap() Source { return r.inner }

// ID forwards to the wrapped plugin.
func (r *Resilient) ID() string { return r.inner.ID() }

// Changes forwards to the wrapped plugin.
func (r *Resilient) Changes() <-chan Change { return r.inner.Changes() }

// Close forwards to the wrapped plugin.
func (r *Resilient) Close() error { return r.inner.Close() }

// SetMetrics keeps the instrument set for breaker/retry accounting and
// forwards it to the wrapped plugin.
func (r *Resilient) SetMetrics(sm *SourceMetrics) {
	r.met.Store(sm)
	if ms, ok := r.inner.(MetricsSetter); ok {
		ms.SetMetrics(sm)
	}
}

// SetFaults forwards the injector to the wrapped plugin.
func (r *Resilient) SetFaults(in *fault.Injector) {
	if fs, ok := r.inner.(FaultSetter); ok {
		fs.SetFaults(in)
	}
}

// Delete forwards to the wrapped plugin when it is a Mutator.
func (r *Resilient) Delete(uri string) error {
	if m, ok := r.inner.(Mutator); ok {
		return m.Delete(uri)
	}
	return fmt.Errorf("source %s does not support deletion", r.ID())
}

// Breaker reports the breaker's state and the consecutive-failure count
// feeding it.
func (r *Resilient) Breaker() (BreakerState, int) {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	// Surface the pending half-open transition so health reads do not
	// claim "open" after the cooldown has already lapsed.
	if r.state == BreakerOpen && r.pol.Now().Sub(r.openedAt) >= r.pol.BreakerCooldown {
		return BreakerHalfOpen, r.fails
	}
	return r.state, r.fails
}

// Root calls the wrapped plugin's Root under the policy: the breaker may
// reject the call outright; otherwise up to 1+MaxRetries attempts run,
// each bounded by Timeout, with exponential backoff between them.
func (r *Resilient) Root() (core.ResourceView, error) {
	if err := r.admit(); err != nil {
		return nil, err
	}
	met := r.met.Load()
	var lastErr error
	attempts := 1 + r.pol.MaxRetries
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			met.RecordRetry()
			r.pol.Sleep(r.backoff(attempt))
		}
		v, err := r.callRoot()
		if err == nil {
			r.recordSuccess()
			return v, nil
		}
		if errors.Is(err, ErrCallTimeout) {
			met.RecordTimeout()
		}
		lastErr = err
	}
	r.recordFailure()
	return nil, fmt.Errorf("source %s: %w", r.ID(), lastErr)
}

// callRoot runs one Root attempt, abandoning it if the policy's timeout
// elapses first. Source plugins predate context in their contract, so
// the deadline is imposed from outside: the attempt keeps running in its
// goroutine, but the proxy stops waiting for it.
func (r *Resilient) callRoot() (core.ResourceView, error) {
	if r.pol.Timeout <= 0 {
		return r.inner.Root()
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.pol.Timeout)
	defer cancel()
	type result struct {
		v   core.ResourceView
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := r.inner.Root()
		ch <- result{v, err}
	}()
	select {
	case res := <-ch:
		return res.v, res.err
	case <-ctx.Done():
		return nil, fmt.Errorf("%w after %v", ErrCallTimeout, r.pol.Timeout)
	}
}

// backoff returns the delay before retry attempt n (1-based), doubling
// from RetryBase and capped at RetryMax, plus up to 50% seeded jitter.
func (r *Resilient) backoff(n int) time.Duration {
	d := r.pol.RetryBase << uint(n-1)
	if d > r.pol.RetryMax || d <= 0 {
		d = r.pol.RetryMax
	}
	r.jmu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.jmu.Unlock()
	return d + j
}

// admit applies the breaker: closed and half-open calls proceed, open
// calls are rejected until the cooldown lapses (the first call after it
// becomes the half-open probe).
func (r *Resilient) admit() error {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	if r.pol.BreakerFailures == 0 || r.state != BreakerOpen {
		return nil
	}
	if r.pol.Now().Sub(r.openedAt) < r.pol.BreakerCooldown {
		return fmt.Errorf("source %s: %w", r.inner.ID(), ErrBreakerOpen)
	}
	r.state = BreakerHalfOpen
	r.met.Load().RecordBreaker(r.state, false)
	return nil
}

func (r *Resilient) recordSuccess() {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	changed := r.state != BreakerClosed || r.fails != 0
	r.state = BreakerClosed
	r.fails = 0
	if changed {
		r.met.Load().RecordBreaker(r.state, false)
	}
}

func (r *Resilient) recordFailure() {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	r.fails++
	if r.pol.BreakerFailures == 0 {
		return
	}
	// A failed half-open probe re-opens immediately; otherwise the
	// consecutive-failure threshold trips the breaker.
	if r.state == BreakerHalfOpen || r.fails >= r.pol.BreakerFailures {
		r.state = BreakerOpen
		r.openedAt = r.pol.Now()
		r.met.Load().RecordBreaker(r.state, true)
	}
}
