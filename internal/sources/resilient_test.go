package sources

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// scriptedSource fails Root a configurable number of times, then
// succeeds; it also records call counts and optional per-call hangs.
type scriptedSource struct {
	mu       sync.Mutex
	id       string
	failures int
	calls    int
	hang     time.Duration
	deleted  []string
	faults   *fault.Injector
	met      *SourceMetrics
}

func (s *scriptedSource) ID() string { return s.id }

func (s *scriptedSource) Root() (core.ResourceView, error) {
	s.mu.Lock()
	s.calls++
	fail := s.calls <= s.failures
	hang := s.hang
	s.mu.Unlock()
	if hang > 0 {
		time.Sleep(hang)
	}
	if fail {
		return nil, errors.New("transient outage")
	}
	return core.NewView(s.id, "group"), nil
}

func (s *scriptedSource) Changes() <-chan Change { return nil }
func (s *scriptedSource) Close() error           { return nil }

func (s *scriptedSource) SetMetrics(m *SourceMetrics) { s.mu.Lock(); s.met = m; s.mu.Unlock() }
func (s *scriptedSource) SetFaults(in *fault.Injector) {
	s.mu.Lock()
	s.faults = in
	s.mu.Unlock()
}
func (s *scriptedSource) Delete(uri string) error {
	s.mu.Lock()
	s.deleted = append(s.deleted, uri)
	s.mu.Unlock()
	return nil
}

func (s *scriptedSource) callCount() int { s.mu.Lock(); defer s.mu.Unlock(); return s.calls }

// fastPolicy retries immediately on a fake clock so tests never sleep.
func fastPolicy(now *time.Time) Policy {
	return Policy{
		MaxRetries:      2,
		RetryBase:       time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: time.Minute,
		Now:             func() time.Time { return *now },
		Sleep:           func(time.Duration) {},
	}
}

func TestResilientRetriesUntilSuccess(t *testing.T) {
	now := time.Unix(0, 0)
	src := &scriptedSource{id: "fs", failures: 2}
	r := NewResilient(src, fastPolicy(&now))
	reg := obs.NewRegistry()
	r.SetMetrics(NewSourceMetrics(reg, "fs"))

	if _, err := r.Root(); err != nil {
		t.Fatalf("Root after retries: %v", err)
	}
	if got := src.callCount(); got != 3 {
		t.Fatalf("inner Root called %d times, want 3", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["source_fs_retries_total"] != 2 {
		t.Fatalf("retries_total = %d, want 2", snap.Counters["source_fs_retries_total"])
	}
	if st, _ := r.Breaker(); st != BreakerClosed {
		t.Fatalf("breaker %v after success, want closed", st)
	}
}

func TestResilientBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	src := &scriptedSource{id: "mail", failures: 1000}
	pol := fastPolicy(&now)
	r := NewResilient(src, pol)
	reg := obs.NewRegistry()
	r.SetMetrics(NewSourceMetrics(reg, "mail"))

	// Two exhausted call chains (BreakerFailures=2) trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := r.Root(); err == nil {
			t.Fatal("Root unexpectedly succeeded")
		}
	}
	if st, fails := r.Breaker(); st != BreakerOpen || fails != 2 {
		t.Fatalf("breaker %v/%d, want open/2", st, fails)
	}
	callsWhenOpen := src.callCount()

	// While open, calls are rejected without touching the plugin.
	_, err := r.Root()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	if src.callCount() != callsWhenOpen {
		t.Fatal("open breaker still called the plugin")
	}

	// After the cooldown a half-open probe goes through; its failure
	// re-opens the breaker immediately.
	now = now.Add(pol.BreakerCooldown)
	if _, err := r.Root(); err == nil {
		t.Fatal("half-open probe unexpectedly succeeded")
	}
	if st, _ := r.Breaker(); st != BreakerOpen {
		t.Fatalf("breaker %v after failed probe, want open", st)
	}

	// Let the source heal; the next probe closes the breaker.
	src.mu.Lock()
	src.failures = 0
	src.calls = 0
	src.mu.Unlock()
	now = now.Add(pol.BreakerCooldown)
	if _, err := r.Root(); err != nil {
		t.Fatalf("Root after recovery: %v", err)
	}
	if st, fails := r.Breaker(); st != BreakerClosed || fails != 0 {
		t.Fatalf("breaker %v/%d after recovery, want closed/0", st, fails)
	}
	snap := reg.Snapshot()
	if snap.Counters["source_mail_breaker_opens_total"] < 2 {
		t.Fatalf("breaker_opens_total = %d, want >= 2", snap.Counters["source_mail_breaker_opens_total"])
	}
	if snap.Gauges["source_mail_breaker_state"] != int64(BreakerClosed) {
		t.Fatalf("breaker_state gauge = %d, want closed", snap.Gauges["source_mail_breaker_state"])
	}
}

func TestResilientTimeout(t *testing.T) {
	src := &scriptedSource{id: "rel", hang: 200 * time.Millisecond}
	pol := Policy{
		MaxRetries:      -1, // no retries: one attempt
		Timeout:         10 * time.Millisecond,
		BreakerFailures: -1,
	}
	r := NewResilient(src, pol)
	reg := obs.NewRegistry()
	r.SetMetrics(NewSourceMetrics(reg, "rel"))
	_, err := r.Root()
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout, got %v", err)
	}
	if reg.Snapshot().Counters["source_rel_timeouts_total"] != 1 {
		t.Fatal("timeout not recorded")
	}
}

func TestResilientForwardsOptionalInterfaces(t *testing.T) {
	src := &scriptedSource{id: "fs"}
	r := NewResilient(src, Policy{})
	inj := fault.New(1)
	r.SetFaults(inj)
	if src.faults != inj {
		t.Fatal("SetFaults not forwarded")
	}
	if err := r.Delete("file:///tmp/x"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if len(src.deleted) != 1 || src.deleted[0] != "file:///tmp/x" {
		t.Fatalf("Delete not forwarded: %v", src.deleted)
	}
	if r.ID() != "fs" || r.Unwrap() != Source(src) {
		t.Fatal("identity not forwarded")
	}
}

func TestResilientBackoffIsBoundedAndJittered(t *testing.T) {
	now := time.Unix(0, 0)
	var slept []time.Duration
	pol := Policy{
		MaxRetries:      3,
		RetryBase:       10 * time.Millisecond,
		RetryMax:        15 * time.Millisecond,
		BreakerFailures: -1,
		Now:             func() time.Time { return now },
		Sleep:           func(d time.Duration) { slept = append(slept, d) },
	}
	src := &scriptedSource{id: "fs", failures: 1000}
	r := NewResilient(src, pol)
	if _, err := r.Root(); err == nil {
		t.Fatal("Root unexpectedly succeeded")
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	// Attempt 1 backs off >= base; later attempts cap at RetryMax, and
	// jitter never exceeds 50% of the pre-jitter delay.
	if slept[0] < 10*time.Millisecond || slept[0] > 15*time.Millisecond {
		t.Fatalf("first backoff %v outside [10ms, 15ms]", slept[0])
	}
	for i, d := range slept[1:] {
		if d < 15*time.Millisecond || d > 22500*time.Microsecond {
			t.Fatalf("backoff %d = %v outside [cap, cap*1.5]", i+2, d)
		}
	}
}
