package fsplugin

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/latex"
	"repro/internal/sources"
	"repro/internal/vfs"
	"repro/internal/xmlkit"
)

// testConvert is a minimal Content2iDM hook: XML and LaTeX by extension.
func testConvert(name string, data []byte) []core.ResourceView {
	switch {
	case strings.HasSuffix(name, ".xml"):
		doc, err := xmlkit.ParseString(string(data))
		if err != nil {
			return nil
		}
		dv, err := xmlkit.ToViews(doc)
		if err != nil {
			return nil
		}
		return []core.ResourceView{dv}
	case strings.HasSuffix(name, ".tex"):
		d, err := latex.Parse(string(data))
		if err != nil {
			return nil
		}
		return latex.ToViews(d)
	default:
		return nil
	}
}

func paperFS(t *testing.T) *vfs.FS {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/Projects/PIM")
	fs.WriteFile("/Projects/PIM/vldb 2006.tex",
		[]byte("\\section{Introduction}\nPIM matters to Mike Franklin."))
	fs.WriteFile("/Projects/PIM/Grant.doc", []byte("grant proposal text"))
	fs.WriteFile("/Projects/PIM/data.xml", []byte("<data><entry>42</entry></data>"))
	fs.Link("/Projects/PIM/All Projects", "/Projects")
	return fs
}

func TestRootGraphShape(t *testing.T) {
	fs := paperFS(t)
	p := New("filesystem", fs, testConvert)
	defer p.Close()

	root, err := p.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root.Name() != "filesystem" || root.Class() != core.ClassFolder {
		t.Errorf("root name=%q class=%q", root.Name(), root.Class())
	}
	children, _ := core.Children(root)
	if len(children) != 1 || children[0].Name() != "Projects" {
		t.Fatalf("root children = %v", children)
	}
	pim, _ := core.Children(children[0])
	if len(pim) != 1 || pim[0].Name() != "PIM" {
		t.Fatalf("Projects children = %v", pim)
	}
	files, _ := core.Children(pim[0])
	if len(files) != 4 {
		t.Fatalf("PIM children = %d", len(files))
	}
}

func TestFileClassesByExtension(t *testing.T) {
	fs := paperFS(t)
	p := New("fs", fs, nil)
	defer p.Close()
	root, _ := p.Root()
	classes := map[string]string{}
	core.Walk(root, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		classes[v.Name()] = v.Class()
		return nil
	})
	if classes["vldb 2006.tex"] != core.ClassLatexFile {
		t.Errorf("tex class = %q", classes["vldb 2006.tex"])
	}
	if classes["data.xml"] != core.ClassXMLFile {
		t.Errorf("xml class = %q", classes["data.xml"])
	}
	if classes["Grant.doc"] != core.ClassFile {
		t.Errorf("doc class = %q", classes["Grant.doc"])
	}
}

func TestFileContentAndTuple(t *testing.T) {
	fs := paperFS(t)
	p := New("fs", fs, nil)
	defer p.Close()
	root, _ := p.Root()
	var grant core.ResourceView
	core.Walk(root, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		if v.Name() == "Grant.doc" {
			grant = v
		}
		return nil
	})
	if grant == nil {
		t.Fatal("Grant.doc view missing")
	}
	b, _ := core.ReadAllContent(grant.Content(), 0)
	if string(b) != "grant proposal text" {
		t.Errorf("χ = %q", b)
	}
	size, ok := grant.Tuple().Get("size")
	if !ok || size.Int != int64(len("grant proposal text")) {
		t.Errorf("size = %v, %v", size, ok)
	}
	if _, ok := grant.Tuple().Get("lastmodified"); !ok {
		t.Error("lastmodified missing from W_FS tuple")
	}
}

func TestConversionInsideFiles(t *testing.T) {
	fs := paperFS(t)
	p := New("fs", fs, testConvert)
	defer p.Close()
	root, _ := p.Root()
	var intro core.ResourceView
	core.Walk(root, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		if v.Name() == "Introduction" && v.Class() == core.ClassLatexSection {
			intro = v
		}
		return nil
	})
	if intro == nil {
		t.Fatal("Introduction section view not reachable through the file")
	}
	b, _ := core.ReadAllContent(intro.Content(), 0)
	if !strings.Contains(string(b), "Mike Franklin") {
		t.Errorf("section χ = %q", b)
	}
}

func TestLinkCreatesCycleInViewGraph(t *testing.T) {
	fs := paperFS(t)
	p := New("fs", fs, nil)
	defer p.Close()
	root, _ := p.Root()
	cyc, err := core.HasCycle(root, core.WalkOptions{MaxDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !cyc {
		t.Error("folder link did not create a cycle")
	}
	// The walk over the cyclic graph terminates and visits each view once.
	n, err := core.CountReachable(root, core.WalkOptions{MaxDepth: -1})
	if err != nil || n != 7 { // root, Projects, PIM, 3 files, link
		t.Errorf("reachable = %d, %v; want 7", n, err)
	}
}

func TestViewIdentityStable(t *testing.T) {
	fs := paperFS(t)
	p := New("fs", fs, nil)
	defer p.Close()
	r1, _ := p.Root()
	r2, _ := p.Root()
	if r1 != r2 {
		t.Error("Root not identity-stable")
	}
}

func TestURIsAnnotated(t *testing.T) {
	fs := paperFS(t)
	p := New("fs", fs, nil)
	defer p.Close()
	root, _ := p.Root()
	uris := map[string]bool{}
	core.Walk(root, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		item, ok := v.(*sources.Item)
		if !ok {
			t.Errorf("view %q is not annotated", core.NameOf(v))
			return nil
		}
		if !item.IsBase() {
			t.Errorf("filesystem node %q not marked base", item.URI())
		}
		uris[item.URI()] = true
		return nil
	})
	for _, want := range []string{"/", "/Projects", "/Projects/PIM", "/Projects/PIM/Grant.doc", "/Projects/PIM/All Projects"} {
		if !uris[want] {
			t.Errorf("URI %q missing (have %v)", want, uris)
		}
	}
}

func TestChangesForwarded(t *testing.T) {
	fs := paperFS(t)
	p := New("fs", fs, nil)
	defer p.Close()
	ch := p.Changes()
	fs.WriteFile("/Projects/new.txt", []byte("x"))
	select {
	case c := <-ch:
		if c.Type != sources.Created || c.URI != "/Projects/new.txt" {
			t.Errorf("change = %+v", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no change event")
	}
}

func TestDeleteWriteThrough(t *testing.T) {
	fs := paperFS(t)
	p := New("fs", fs, nil)
	defer p.Close()
	if p.ID() != "fs" {
		t.Errorf("id = %q", p.ID())
	}
	if err := p.Delete("/Projects/PIM/Grant.doc"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/Projects/PIM/Grant.doc") {
		t.Error("file survives delete")
	}
	if err := p.Delete("/nope"); err == nil {
		t.Error("missing path delete accepted")
	}
}

func TestConformanceOfBaseViews(t *testing.T) {
	fs := paperFS(t)
	p := New("fs", fs, testConvert)
	defer p.Close()
	reg := core.StandardRegistry()
	root, _ := p.Root()
	err := core.Walk(root, core.WalkOptions{MaxDepth: 2}, func(v core.ResourceView, _ int) error {
		if v.Class() == "" {
			return nil
		}
		return reg.Conforms(v, v.Class(), 16)
	})
	if err != nil {
		t.Errorf("conformance: %v", err)
	}
}
