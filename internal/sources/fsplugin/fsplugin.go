// Package fsplugin exposes a virtual filesystem (internal/vfs) as an iDM
// resource view graph: the files&folders instantiation of §3.2 of the
// paper. Folders become folder-class views whose group set holds their
// children; files become file-class views whose χ is the file content
// and whose group sequence is the Content2iDM conversion of that content
// (computed lazily, §4.1); folder links become views whose group points
// at the link target, which is how the cyclic 'All Projects' example of
// Figure 1 enters the graph.
package fsplugin

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sources"
	"repro/internal/vfs"
)

// Plugin is a files&folders data source.
//
// Failure points (internal/fault): "<id>/root" (error, latency),
// "<id>/read" (error, latency, partial read of file content),
// "<id>/convert" (corrupt converter input).
type Plugin struct {
	id      string
	fs      *vfs.FS
	convert sources.ConvertFunc
	met     atomic.Pointer[sources.SourceMetrics]
	faults  atomic.Pointer[fault.Injector]

	mu    sync.Mutex
	cache map[*vfs.Node]*sources.Item

	changes chan sources.Change
	stop    chan struct{}
	done    chan struct{}
}

// New returns a plugin exposing fs under the given source id. convert
// may be nil, in which case file contents are not enriched.
func New(id string, fs *vfs.FS, convert sources.ConvertFunc) *Plugin {
	p := &Plugin{
		id:      id,
		fs:      fs,
		convert: convert,
		cache:   make(map[*vfs.Node]*sources.Item),
		changes: make(chan sources.Change, 1024),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	events := fs.Watch() // subscribe before returning so no event is missed
	go p.forwardEvents(events)
	return p
}

// ID implements sources.Source.
func (p *Plugin) ID() string { return p.id }

// SetMetrics implements sources.MetricsSetter.
func (p *Plugin) SetMetrics(sm *sources.SourceMetrics) { p.met.Store(sm) }

// SetFaults implements sources.FaultSetter.
func (p *Plugin) SetFaults(in *fault.Injector) { p.faults.Store(in) }

// Root implements sources.Source.
func (p *Plugin) Root() (core.ResourceView, error) {
	start := time.Now()
	if err := p.faults.Load().Fail(p.id + "/root"); err != nil {
		p.met.Load().RecordRoot(time.Since(start), err)
		return nil, err
	}
	v := p.view(p.fs.Root())
	p.met.Load().RecordRoot(time.Since(start), nil)
	return v, nil
}

// Changes implements sources.Source, adapting the filesystem's event
// feed.
func (p *Plugin) Changes() <-chan sources.Change { return p.changes }

// Close implements sources.Source. The change channel is closed once the
// forwarder has stopped, so consumers draining it terminate too.
func (p *Plugin) Close() error {
	close(p.stop)
	<-p.done
	close(p.changes)
	return nil
}

// Delete implements sources.Mutator: it removes the file or folder at
// the URI (recursively for folders) from the filesystem.
func (p *Plugin) Delete(uri string) error {
	return p.fs.Remove(uri)
}

func (p *Plugin) forwardEvents(events <-chan vfs.Event) {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			return
		case e, ok := <-events:
			if !ok {
				return
			}
			var t sources.ChangeType
			switch e.Type {
			case vfs.EventCreate:
				t = sources.Created
			case vfs.EventModify:
				t = sources.Updated
			case vfs.EventRemove:
				t = sources.Removed
			}
			select {
			case p.changes <- sources.Change{Type: t, URI: e.Path}:
				p.met.Load().RecordChange()
			default:
			}
		}
	}
}

// view returns the (cached) resource view for a filesystem node.
func (p *Plugin) view(n *vfs.Node) *sources.Item {
	p.mu.Lock()
	if v, ok := p.cache[n]; ok {
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()

	built := p.build(n)
	p.met.Load().RecordViewBuilt()
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.cache[n]; ok {
		return v // lost the race; keep the first
	}
	p.cache[n] = built
	return built
}

// build constructs a dynamic view over a node: component suppliers read
// the filesystem on every access, so re-synchronizations observe file
// modifications, new children and deletions.
func (p *Plugin) build(n *vfs.Node) *sources.Item {
	uri := p.fs.Path(n)
	name := n.Name()
	if name == "/" {
		name = p.id
	}
	switch n.Kind() {
	case vfs.KindFile:
		dv := &core.DynamicView{
			VName:   name,
			VClass:  fileClass(name),
			TupleFn: func() core.TupleComponent { return fsTuple(n) },
			ContentFn: func() core.Content {
				return core.FuncContent(func() io.ReadCloser {
					b, err := p.fs.ReadNode(n)
					if err != nil || p.faults.Load().Fail(p.id+"/read") != nil {
						b = nil
					}
					r := p.faults.Load().Reader(p.id+"/read", strings.NewReader(string(b)), int64(len(b)))
					return io.NopCloser(r)
				}, true, n.Size())
			},
			GroupFn: func() core.Group {
				if p.convert == nil {
					return core.EmptyGroup()
				}
				b, err := p.fs.ReadNode(n)
				if err != nil {
					return core.EmptyGroup()
				}
				b = p.faults.Load().Corrupt(p.id+"/convert", b)
				sub := p.convert(name, b)
				if len(sub) == 0 {
					return core.EmptyGroup()
				}
				return core.SeqGroup(sub...)
			},
		}
		return sources.Annotate(dv, uri, true)
	case vfs.KindLink:
		dv := &core.DynamicView{
			VName:   name,
			VClass:  core.ClassFolder,
			TupleFn: func() core.TupleComponent { return fsTuple(n) },
			GroupFn: func() core.Group {
				return core.SetGroup(p.view(n.Target()))
			},
		}
		return sources.Annotate(dv, uri, true)
	default: // folder
		dv := &core.DynamicView{
			VName:   name,
			VClass:  core.ClassFolder,
			TupleFn: func() core.TupleComponent { return fsTuple(n) },
			GroupFn: func() core.Group {
				children, err := p.fs.ListNode(n)
				if err != nil {
					return core.EmptyGroup()
				}
				views := make([]core.ResourceView, len(children))
				for i, c := range children {
					views[i] = p.view(c)
				}
				return core.SetGroup(views...)
			},
		}
		return sources.Annotate(dv, uri, true)
	}
}

func fsTuple(n *vfs.Node) core.TupleComponent {
	return core.TupleComponent{
		Schema: core.FSSchema,
		Tuple: core.Tuple{
			core.Int(n.Size()),
			core.Time(n.Created()),
			core.Time(n.Modified()),
		},
	}
}

// fileClass picks the file view class by extension, so that xmlfile and
// latexfile views specialize file (Table 1 and §3.2).
func fileClass(name string) string {
	switch {
	case strings.HasSuffix(name, ".xml"):
		return core.ClassXMLFile
	case strings.HasSuffix(name, ".tex"):
		return core.ClassLatexFile
	default:
		return core.ClassFile
	}
}
