package oidset

import (
	"sync"
	"testing"

	"repro/internal/catalog"
)

// TestGrowAtWordBoundaries pins growth behaviour exactly at the 64-bit
// word edges, where an off-by-one in the word index silently drops or
// misplaces bits.
func TestGrowAtWordBoundaries(t *testing.T) {
	for _, oid := range []catalog.OID{63, 64, 65, 127, 128, 129, 4095, 4096} {
		s := New(0)
		if !s.Add(oid) {
			t.Fatalf("Add(%d) on empty set = false", oid)
		}
		if !s.Contains(oid) {
			t.Fatalf("Contains(%d) after Add = false", oid)
		}
		if s.Contains(oid-1) || s.Contains(oid+1) {
			t.Fatalf("neighbours of %d leaked in", oid)
		}
		if s.Len() != 1 {
			t.Fatalf("Len after Add(%d) = %d", oid, s.Len())
		}
		if got := s.Slice(); len(got) != 1 || got[0] != oid {
			t.Fatalf("Slice = %v, want [%d]", got, oid)
		}
	}
}

// TestContainsBeyondCapacity: membership probes past the allocated words
// must report false, not panic.
func TestContainsBeyondCapacity(t *testing.T) {
	s := New(10)
	if s.Contains(1 << 20) {
		t.Fatal("ghost membership far beyond capacity")
	}
	var zero Set
	if zero.Contains(1) {
		t.Fatal("zero-value set claims membership")
	}
	if zero.Len() != 0 || len(zero.Slice()) != 0 {
		t.Fatal("zero-value set not empty")
	}
}

// TestFromSliceDuplicates: duplicate inputs collapse to one element.
func TestFromSliceDuplicates(t *testing.T) {
	s := FromSlice([]catalog.OID{5, 5, 5, 64, 64, 1})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	want := []catalog.OID{1, 5, 64}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
	if s := FromSlice(nil); s.Len() != 0 {
		t.Fatalf("FromSlice(nil).Len = %d", s.Len())
	}
}

// TestClearReuse: Clear empties without shrinking, and the set accepts
// the same elements again.
func TestClearReuse(t *testing.T) {
	s := New(0)
	for i := 1; i <= 200; i++ {
		s.Add(catalog.OID(i))
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Len after Clear = %d", s.Len())
	}
	for i := 1; i <= 200; i++ {
		if s.Contains(catalog.OID(i)) {
			t.Fatalf("Contains(%d) after Clear", i)
		}
	}
	if !s.Add(64) || s.Len() != 1 {
		t.Fatal("set unusable after Clear")
	}
}

// TestConcurrentReaders exercises the documented contract — concurrent
// readers are safe once mutation stops — under -race: many goroutines
// run Contains/Slice/Range/AppendTo/Len against a frozen set.
func TestConcurrentReaders(t *testing.T) {
	s := New(0)
	for i := 1; i <= 1000; i += 3 {
		s.Add(catalog.OID(i))
	}
	union := New(0) // reader-side UnionWith target mutates only its receiver
	union.UnionWith(s)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				if !s.Contains(1) || s.Contains(2) {
					t.Error("membership changed under concurrent read")
					return
				}
				if got := s.Len(); got != 334 {
					t.Errorf("Len = %d", got)
					return
				}
				n := 0
				s.Range(func(catalog.OID) bool { n++; return true })
				if n != 334 {
					t.Errorf("Range visited %d", n)
					return
				}
				if got := s.Slice(); len(got) != 334 || got[0] != 1 {
					t.Errorf("Slice head = %v", got[:1])
					return
				}
				_ = s.AppendTo(nil)
			}
		}(g)
	}
	wg.Wait()
}
