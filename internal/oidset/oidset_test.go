package oidset

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/catalog"
)

func TestAddContainsLen(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Contains(3) {
		t.Fatal("fresh set not empty")
	}
	if !s.Add(3) || s.Add(3) {
		t.Error("Add newness wrong")
	}
	if !s.Contains(3) || s.Contains(2) || s.Contains(1000) {
		t.Error("Contains wrong")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	// Growth across word boundaries.
	for _, o := range []catalog.OID{0, 63, 64, 65, 127, 128, 4096} {
		s.Add(o)
	}
	if s.Len() != 8 {
		t.Errorf("Len after growth = %d", s.Len())
	}
	for _, o := range []catalog.OID{0, 3, 63, 64, 65, 127, 128, 4096} {
		if !s.Contains(o) {
			t.Errorf("lost %d", o)
		}
	}
}

func TestSliceAscending(t *testing.T) {
	s := FromSlice([]catalog.OID{9, 1, 128, 64, 1, 9})
	got := s.Slice()
	want := []catalog.OID{1, 9, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestUnionWithAndClear(t *testing.T) {
	a := FromSlice([]catalog.OID{1, 2, 3})
	b := FromSlice([]catalog.OID{3, 4, 500})
	a.UnionWith(b)
	if a.Len() != 5 {
		t.Errorf("union len = %d", a.Len())
	}
	for _, o := range []catalog.OID{1, 2, 3, 4, 500} {
		if !a.Contains(o) {
			t.Errorf("union lost %d", o)
		}
	}
	a.UnionWith(nil) // no-op
	a.Clear()
	if a.Len() != 0 || a.Contains(1) {
		t.Error("Clear left members")
	}
	// Capacity survives; re-adding works.
	a.Add(500)
	if a.Len() != 1 || !a.Contains(500) {
		t.Error("set unusable after Clear")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := FromSlice([]catalog.OID{5, 10, 15})
	var seen []catalog.OID
	s.Range(func(o catalog.OID) bool {
		seen = append(seen, o)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 10 {
		t.Errorf("Range = %v", seen)
	}
}

// TestAgainstMapModel fuzzes the set against the map it replaces.
func TestAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(0)
	model := make(map[catalog.OID]bool)
	for i := 0; i < 5000; i++ {
		oid := catalog.OID(rng.Intn(2000))
		if rng.Intn(2) == 0 {
			s.Add(oid)
			model[oid] = true
		} else if s.Contains(oid) != model[oid] {
			t.Fatalf("Contains(%d) diverged at step %d", oid, i)
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	want := make([]catalog.OID, 0, len(model))
	for o := range model {
		want = append(want, o)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := s.Slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// The replacement target: set-insert plus sorted extraction, the
// per-level pattern of path expansion.
func BenchmarkSetAddAndSort(b *testing.B) {
	oids := make([]catalog.OID, 4096)
	for i := range oids {
		oids[i] = catalog.OID(i * 3)
	}
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New(len(oids) * 3)
			for _, o := range oids {
				s.Add(o)
			}
			_ = s.Slice()
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[catalog.OID]bool)
			for _, o := range oids {
				m[o] = true
			}
			out := make([]catalog.OID, 0, len(m))
			for o := range m {
				out = append(out, o)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		}
	})
}
