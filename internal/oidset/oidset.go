// Package oidset provides a dense bitset over catalog OIDs. The catalog
// allocates OIDs sequentially from 1, so the populated range of any
// dataspace is small and dense — a bitset beats map[catalog.OID]bool on
// both memory (one bit per OID in range vs ~50 bytes per map entry) and
// iteration (ascending order falls out of the word scan, so no sort is
// needed to produce canonical result slices). The iQL evaluator uses it
// for expansion frontiers, visited sets, match sets and memoized index
// lookups.
package oidset

import (
	"math/bits"

	"repro/internal/catalog"
)

const wordBits = 64

// Set is a dense bitset of OIDs. The zero value is an empty set ready
// for use. Set is not safe for concurrent mutation; concurrent readers
// are fine once mutation stops.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set sized for OIDs up to max (a capacity hint;
// the set grows on demand).
func New(max int) *Set {
	if max < 0 {
		max = 0
	}
	return &Set{words: make([]uint64, max/wordBits+1)}
}

// FromSlice builds a set holding the given OIDs.
func FromSlice(oids []catalog.OID) *Set {
	var hi catalog.OID
	for _, o := range oids {
		if o > hi {
			hi = o
		}
	}
	s := New(int(hi))
	for _, o := range oids {
		s.Add(o)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	words := make([]uint64, word+1+word/2)
	copy(words, s.words)
	s.words = words
}

// Add inserts oid and reports whether it was newly added.
func (s *Set) Add(oid catalog.OID) bool {
	w, b := int(oid/wordBits), oid%wordBits
	s.grow(w)
	if s.words[w]&(1<<b) != 0 {
		return false
	}
	s.words[w] |= 1 << b
	s.n++
	return true
}

// Contains reports membership.
func (s *Set) Contains(oid catalog.OID) bool {
	w := int(oid / wordBits)
	return w < len(s.words) && s.words[w]&(1<<(oid%wordBits)) != 0
}

// Len returns the number of members.
func (s *Set) Len() int { return s.n }

// Clear empties the set, keeping its capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.n = 0
}

// UnionWith adds every member of t.
func (s *Set) UnionWith(t *Set) {
	if t == nil || t.n == 0 {
		return
	}
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		added := w &^ s.words[i]
		if added != 0 {
			s.words[i] |= w
			s.n += bits.OnesCount64(added)
		}
	}
}

// AppendTo appends the members to dst in ascending order.
func (s *Set) AppendTo(dst []catalog.OID) []catalog.OID {
	for i, w := range s.words {
		base := uint64(i) * wordBits
		for w != 0 {
			dst = append(dst, catalog.OID(base+uint64(bits.TrailingZeros64(w))))
			w &= w - 1
		}
	}
	return dst
}

// Slice returns the members in ascending order.
func (s *Set) Slice() []catalog.OID {
	return s.AppendTo(make([]catalog.OID, 0, s.n))
}

// Range calls fn for each member in ascending order until fn returns
// false.
func (s *Set) Range(fn func(catalog.OID) bool) {
	for i, w := range s.words {
		base := uint64(i) * wordBits
		for w != 0 {
			if !fn(catalog.OID(base + uint64(bits.TrailingZeros64(w)))) {
				return
			}
			w &= w - 1
		}
	}
}
