package latex

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property: the parser never panics on arbitrary input, and returns
// exactly one of (document, error).
func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		d, err := Parse(src)
		return (d != nil && err == nil) || (d == nil && err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: inputs assembled from LaTeX-ish fragments never panic and,
// when they parse, produce a non-nil tree whose PlainText does not
// contain command markers.
func TestParseFragmentSoupQuick(t *testing.T) {
	// Note: a lone "\\" fragment is deliberately absent — `\\` escapes
	// the following character, so `\\` + `\section{A}` legitimately
	// turns the command into literal text.
	fragments := []string{
		"\\section{A}", "\\subsection{B}", "\\label{x}", "\\ref{x}",
		"\\begin{figure}", "\\end{figure}", "\\caption{C}", "text ",
		"{", "}", "%comment\n", "\\emph{e}", "\\begin{document}",
		"\\end{document}", "\\documentclass{a}", "\\title{T}", "$x$",
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		var b strings.Builder
		n := rng.Intn(12)
		for i := 0; i < n; i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			d, err := Parse(src)
			if err != nil {
				return
			}
			if d == nil || d.Root == nil {
				t.Fatalf("nil doc without error for %q", src)
			}
			txt := d.Root.PlainText()
			if strings.Contains(txt, "\\section") {
				t.Fatalf("command leaked into text of %q: %q", src, txt)
			}
		}()
	}
}

// Property: ToViews on any parseable document yields views whose group
// invariant holds everywhere.
func TestToViewsInvariantsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	titles := []string{"A", "B", "C"}
	for trial := 0; trial < 100; trial++ {
		var b strings.Builder
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			b.WriteString("\\section{" + titles[rng.Intn(len(titles))] + "}\n")
			b.WriteString("words here\n")
			if rng.Intn(2) == 0 {
				b.WriteString("\\label{l" + titles[rng.Intn(len(titles))] + "}\n")
			}
			if rng.Intn(2) == 0 {
				b.WriteString("see \\ref{l" + titles[rng.Intn(len(titles))] + "}\n")
			}
		}
		d, err := Parse(b.String())
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range ToViews(d) {
			err := core.Walk(v, core.WalkOptions{MaxDepth: -1}, func(w core.ResourceView, _ int) error {
				return core.CheckGroupInvariant(w.Group(), 0)
			})
			if err != nil {
				t.Fatalf("invariant violated for %q: %v", b.String(), err)
			}
		}
	}
}
