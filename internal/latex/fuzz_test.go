package latex

import "testing"

// FuzzParse asserts the LaTeX parser never panics and that parseable
// documents convert to views without panicking.
func FuzzParse(f *testing.F) {
	seeds := []string{
		paperDoc,
		"\\section{A}\ntext",
		"\\begin{figure}\\caption{C}\\label{l}\\end{figure}",
		"\\begin{document}\\section{S}\\end{document}",
		"\\ref{x} \\label{y}",
		"50\\% of } { braces",
		"%only a comment",
		"\\begin{a}\\begin{b}\\end{b}\\end{a}",
		"\\", "\\section", "\\section{", "\\end{nothing}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(src)
		if err != nil {
			return
		}
		if d == nil || d.Root == nil {
			t.Fatal("nil doc without error")
		}
		ToViews(d)
		CountViews(d)
		d.Root.PlainText()
	})
}
