package latex

import "testing"

func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(paperDoc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(paperDoc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToViews(b *testing.B) {
	d, err := Parse(paperDoc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if views := ToViews(d); len(views) == 0 {
			b.Fatal("no views")
		}
	}
}
