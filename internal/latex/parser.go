// Package latex instantiates graph-structured LaTeX documents in iDM.
// The paper (§1.2, §2.3, Figure 1) uses LaTeX as its example of
// graph-structured content inside files: sections and subsections form a
// tree, while \label/\ref pairs add cross edges that turn the tree into
// an arbitrary directed graph. This package parses the LaTeX subset the
// paper exercises — \documentclass, \title, abstract, (sub)sections,
// figure and generic environments, \caption, \label and \ref — and
// converts the result to a resource view graph using the latex_* resource
// view classes.
package latex

import (
	"fmt"
	"strings"
)

// NodeKind discriminates structural nodes of a parsed document.
type NodeKind int

// Structural node kinds.
const (
	KindDocument NodeKind = iota
	KindDocclass
	KindTitle
	KindAbstract
	KindSection
	KindSubsection
	KindText
	KindRef
	KindEnvironment
	KindFigure
)

func (k NodeKind) String() string {
	switch k {
	case KindDocument:
		return "document"
	case KindDocclass:
		return "documentclass"
	case KindTitle:
		return "title"
	case KindAbstract:
		return "abstract"
	case KindSection:
		return "section"
	case KindSubsection:
		return "subsection"
	case KindText:
		return "text"
	case KindRef:
		return "ref"
	case KindEnvironment:
		return "environment"
	case KindFigure:
		return "figure"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one structural node of a parsed LaTeX document.
type Node struct {
	Kind NodeKind
	// Title is the section title, environment name, documentclass name,
	// document title, or the target key of a \ref.
	Title string
	// Label is the \label key attached to this node, if any.
	Label string
	// Caption is the \caption text (figures and environments).
	Caption string
	// Text is the raw text run (text nodes only).
	Text string
	// Children are the nested structural nodes in document order.
	Children []*Node
}

// Doc is a parsed LaTeX document.
type Doc struct {
	// Root is the document node; its children are the top-level nodes
	// (documentclass, title, abstract, sections).
	Root *Node
	// Labels maps \label keys to the node carrying the label.
	Labels map[string]*Node
	// Refs lists every \ref node in document order.
	Refs []*Node
}

// ParseError reports malformed LaTeX input.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("latex: parse at byte %d: %s", e.Pos, e.Msg) }

type parser struct {
	src string
	pos int
}

// Parse parses LaTeX source into a structural document tree. The parser
// is tolerant: commands outside the handled subset are skipped (their
// braced arguments contribute text), and a document without any handled
// command becomes a single text node.
func Parse(src string) (*Doc, error) {
	p := &parser{src: stripComments(src)}
	doc := &Node{Kind: KindDocument, Title: "document"}
	if err := p.parseInto(doc, ""); err != nil {
		return nil, err
	}
	restructure(doc)
	d := &Doc{Root: doc, Labels: make(map[string]*Node)}
	collectLabelsAndRefs(doc, d)
	return d, nil
}

// stripComments removes LaTeX %-comments (but keeps escaped \%).
func stripComments(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == '\\' && i+1 < len(src) {
			b.WriteByte(c)
			b.WriteByte(src[i+1])
			i++
			continue
		}
		if c == '%' {
			for i < len(src) && src[i] != '\n' {
				i++
			}
			if i < len(src) {
				b.WriteByte('\n')
			}
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// parseInto parses nodes into parent until the end of input or until
// \end{env} for the given enclosing environment name.
func (p *parser) parseInto(parent *Node, env string) error {
	var text strings.Builder
	flush := func() {
		t := strings.TrimSpace(text.String())
		text.Reset()
		if t != "" {
			parent.Children = append(parent.Children, &Node{Kind: KindText, Text: t})
		}
	}
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c != '\\' {
			text.WriteByte(c)
			p.pos++
			continue
		}
		start := p.pos
		name := p.commandName()
		switch name {
		case "documentclass":
			p.skipOptArg()
			arg, err := p.bracedArg()
			if err != nil {
				return err
			}
			flush()
			parent.Children = append(parent.Children, &Node{Kind: KindDocclass, Title: arg})
		case "title":
			arg, err := p.bracedArg()
			if err != nil {
				return err
			}
			flush()
			parent.Children = append(parent.Children, &Node{Kind: KindTitle, Title: arg})
		case "section", "section*", "subsection", "subsection*", "subsubsection", "subsubsection*":
			arg, err := p.bracedArg()
			if err != nil {
				return err
			}
			flush()
			kind := KindSection
			if strings.HasPrefix(name, "subsection") || strings.HasPrefix(name, "subsubsection") {
				kind = KindSubsection
			}
			parent.Children = append(parent.Children, &Node{Kind: kind, Title: arg})
		case "label":
			arg, err := p.bracedArg()
			if err != nil {
				return err
			}
			flush()
			attachLabel(parent, arg)
		case "ref":
			arg, err := p.bracedArg()
			if err != nil {
				return err
			}
			flush()
			parent.Children = append(parent.Children, &Node{Kind: KindRef, Title: arg})
		case "caption":
			arg, err := p.bracedArg()
			if err != nil {
				return err
			}
			flush()
			parent.Children = append(parent.Children, &Node{Kind: KindText, Text: arg})
			attachCaption(parent, arg)
		case "begin":
			arg, err := p.bracedArg()
			if err != nil {
				return err
			}
			flush()
			kind := KindEnvironment
			switch arg {
			case "document":
				// The document environment is transparent: its contents
				// belong to the document node itself.
				if err := p.parseInto(parent, "document"); err != nil {
					return err
				}
				continue
			case "abstract":
				kind = KindAbstract
			case "figure", "figure*":
				kind = KindFigure
			}
			child := &Node{Kind: kind, Title: arg}
			if err := p.parseInto(child, arg); err != nil {
				return err
			}
			parent.Children = append(parent.Children, child)
		case "end":
			arg, err := p.bracedArg()
			if err != nil {
				return err
			}
			if arg != env {
				return &ParseError{Pos: start, Msg: fmt.Sprintf("\\end{%s} does not match open environment %q", arg, env)}
			}
			flush()
			return nil
		case "":
			// Lone backslash or escaped symbol (\%, \&, \\): keep the
			// escaped character as text.
			p.pos++ // consume '\'
			if p.pos < len(p.src) {
				text.WriteByte(p.src[p.pos])
				p.pos++
			}
		default:
			// Unknown command: skip it; a braced argument, if present,
			// contributes its text (e.g. \emph{word}).
			p.skipOptArg()
			if p.peek() == '{' {
				arg, err := p.bracedArg()
				if err != nil {
					return err
				}
				text.WriteString(arg)
			}
		}
	}
	if env != "" && env != "document" {
		return &ParseError{Pos: p.pos, Msg: fmt.Sprintf("unclosed environment %q", env)}
	}
	flush()
	return nil
}

// commandName consumes the backslash and letters of a command, including
// a trailing star.
func (p *parser) commandName() string {
	p.pos++ // consume '\'
	start := p.pos
	for p.pos < len(p.src) && isLetter(p.src[p.pos]) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if name != "" && p.pos < len(p.src) && p.src[p.pos] == '*' {
		name += "*"
		p.pos++
	}
	if name == "" {
		p.pos = start - 1 // rewind to the backslash for the caller
	}
	return name
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (p *parser) peek() byte {
	// Skip whitespace between a command and its argument.
	i := p.pos
	for i < len(p.src) && (p.src[i] == ' ' || p.src[i] == '\n' || p.src[i] == '\t') {
		i++
	}
	if i >= len(p.src) {
		return 0
	}
	return p.src[i]
}

// skipOptArg consumes an optional [..] argument.
func (p *parser) skipOptArg() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\n' || p.src[p.pos] == '\t') {
		p.pos++
	}
	if p.pos < len(p.src) && p.src[p.pos] == '[' {
		depth := 0
		for p.pos < len(p.src) {
			switch p.src[p.pos] {
			case '[':
				depth++
			case ']':
				depth--
				if depth == 0 {
					p.pos++
					return
				}
			}
			p.pos++
		}
	}
}

// bracedArg consumes a {..} argument with balanced nested braces and
// returns its contents with commands flattened to text.
func (p *parser) bracedArg() (string, error) {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\n' || p.src[p.pos] == '\t') {
		p.pos++
	}
	if p.pos >= len(p.src) || p.src[p.pos] != '{' {
		return "", &ParseError{Pos: p.pos, Msg: "expected '{'"}
	}
	depth := 0
	start := p.pos + 1
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				arg := p.src[start:p.pos]
				p.pos++
				return strings.TrimSpace(arg), nil
			}
		case '\\':
			p.pos++ // skip escaped char
		}
		p.pos++
	}
	return "", &ParseError{Pos: start - 1, Msg: "unclosed '{'"}
}

// attachLabel attaches a \label key to the most recent labelable child of
// parent (a section, subsection, figure or environment), or to parent
// itself when it is labelable.
func attachLabel(parent *Node, key string) {
	for i := len(parent.Children) - 1; i >= 0; i-- {
		c := parent.Children[i]
		switch c.Kind {
		case KindSection, KindSubsection, KindFigure, KindEnvironment:
			if c.Label == "" {
				c.Label = key
				return
			}
		case KindText, KindRef:
			continue
		}
		break
	}
	if parent.Label == "" {
		switch parent.Kind {
		case KindSection, KindSubsection, KindFigure, KindEnvironment, KindAbstract:
			parent.Label = key
		}
	}
}

func attachCaption(parent *Node, caption string) {
	if parent.Kind == KindFigure || parent.Kind == KindEnvironment {
		if parent.Caption == "" {
			parent.Caption = caption
		}
	}
}

// restructure converts the flat (sub)section markers emitted by the
// parser into a proper nesting: text and environments following a
// section heading become its children, and subsections nest under the
// preceding section.
func restructure(doc *Node) {
	doc.Children = nest(doc.Children)
}

func nest(flat []*Node) []*Node {
	var out []*Node
	var curSection *Node
	var curSub *Node
	appendTo := func(n *Node) {
		switch {
		case curSub != nil:
			curSub.Children = append(curSub.Children, n)
		case curSection != nil:
			curSection.Children = append(curSection.Children, n)
		default:
			out = append(out, n)
		}
	}
	for _, n := range flat {
		// Recursively nest environment bodies (figures keep their flat
		// caption/text children).
		if len(n.Children) > 0 && n.Kind != KindSection && n.Kind != KindSubsection {
			n.Children = nest(n.Children)
		}
		switch n.Kind {
		case KindSection:
			curSection = n
			curSub = nil
			out = append(out, n)
		case KindSubsection:
			curSub = n
			if curSection != nil {
				curSection.Children = append(curSection.Children, n)
			} else {
				out = append(out, n)
			}
		default:
			appendTo(n)
		}
	}
	return out
}

func collectLabelsAndRefs(n *Node, d *Doc) {
	if n.Label != "" {
		d.Labels[n.Label] = n
	}
	if n.Kind == KindRef {
		d.Refs = append(d.Refs, n)
	}
	for _, c := range n.Children {
		collectLabelsAndRefs(c, d)
	}
}

// PlainText returns the concatenated text beneath n, including captions,
// in document order.
func (n *Node) PlainText() string {
	var b strings.Builder
	var rec func(*Node)
	rec = func(m *Node) {
		if m.Kind == KindText {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(m.Text)
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return b.String()
}

// CountNodes returns the number of structural nodes beneath and including
// n, excluding the document node itself when n is the root.
func CountNodes(n *Node) int {
	count := 0
	var rec func(*Node)
	rec = func(m *Node) {
		if m.Kind != KindDocument {
			count++
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return count
}
