package latex

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// paperDoc mimics the structure of 'vldb 2006.tex' in Figure 1 of the
// paper: documentclass, title, abstract, sections with subsections, a
// figure with caption and label, and a \ref back to a labeled section.
const paperDoc = `\documentclass{vldb}
% a comment line
\title{iDM: A Unified and Versatile Data Model}
\begin{document}
\begin{abstract}
Personal Information Management Systems require a powerful data model.
\end{abstract}
\section{Introduction}
\label{sec:intro}
This paper is about PIM and Mike Franklin's dataspaces vision.
\subsection{The Problem}
See Section~\ref{sec:prelim} for details.
\subsection{Our Contributions}
We present the iMeMex Data Model.
\section{Preliminaries}
\label{sec:prelim}
Definitions follow.
\begin{figure}
\caption{Indexing Time for the personal dataset}
\label{fig:indexing}
\end{figure}
\section{Conclusion}
Systems should use \emph{unified} models.
\end{document}`

func mustParse(t *testing.T, src string) *Doc {
	t.Helper()
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func childrenOfKind(n *Node, k NodeKind) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

func TestParseTopLevelStructure(t *testing.T) {
	d := mustParse(t, paperDoc)
	root := d.Root
	if len(childrenOfKind(root, KindDocclass)) != 1 {
		t.Error("documentclass missing")
	}
	if len(childrenOfKind(root, KindTitle)) != 1 {
		t.Error("title missing")
	}
	if len(childrenOfKind(root, KindAbstract)) != 1 {
		t.Error("abstract missing")
	}
	sections := childrenOfKind(root, KindSection)
	if len(sections) != 3 {
		t.Fatalf("sections = %d, want 3", len(sections))
	}
	if sections[0].Title != "Introduction" || sections[1].Title != "Preliminaries" || sections[2].Title != "Conclusion" {
		t.Errorf("section titles: %q %q %q", sections[0].Title, sections[1].Title, sections[2].Title)
	}
}

func TestParseSubsectionNesting(t *testing.T) {
	d := mustParse(t, paperDoc)
	intro := childrenOfKind(d.Root, KindSection)[0]
	subs := childrenOfKind(intro, KindSubsection)
	if len(subs) != 2 {
		t.Fatalf("Introduction subsections = %d, want 2", len(subs))
	}
	if subs[0].Title != "The Problem" || subs[1].Title != "Our Contributions" {
		t.Errorf("subsection titles: %q, %q", subs[0].Title, subs[1].Title)
	}
	// The ref lives inside "The Problem".
	refs := childrenOfKind(subs[0], KindRef)
	if len(refs) != 1 || refs[0].Title != "sec:prelim" {
		t.Errorf("refs in The Problem = %+v", refs)
	}
}

func TestParseLabelsAndRefs(t *testing.T) {
	d := mustParse(t, paperDoc)
	if n, ok := d.Labels["sec:intro"]; !ok || n.Title != "Introduction" {
		t.Errorf("label sec:intro → %+v", n)
	}
	if n, ok := d.Labels["sec:prelim"]; !ok || n.Title != "Preliminaries" {
		t.Errorf("label sec:prelim → %+v", n)
	}
	fig, ok := d.Labels["fig:indexing"]
	if !ok || fig.Kind != KindFigure {
		t.Fatalf("label fig:indexing → %+v", fig)
	}
	if fig.Caption != "Indexing Time for the personal dataset" {
		t.Errorf("figure caption = %q", fig.Caption)
	}
	if len(d.Refs) != 1 {
		t.Errorf("refs = %d, want 1", len(d.Refs))
	}
}

func TestParseCommentStripping(t *testing.T) {
	d := mustParse(t, "\\section{A}\nvisible % hidden\ntext")
	sec := childrenOfKind(d.Root, KindSection)[0]
	txt := sec.PlainText()
	if !strings.Contains(txt, "visible") || strings.Contains(txt, "hidden") {
		t.Errorf("comment handling: %q", txt)
	}
}

func TestParseEscapedPercent(t *testing.T) {
	d := mustParse(t, "\\section{A}\n50\\% of files")
	txt := childrenOfKind(d.Root, KindSection)[0].PlainText()
	if !strings.Contains(txt, "50% of files") {
		t.Errorf("escaped percent: %q", txt)
	}
}

func TestParseUnknownCommandKeepsArgText(t *testing.T) {
	d := mustParse(t, "\\section{A}\nuse \\emph{unified} models")
	txt := childrenOfKind(d.Root, KindSection)[0].PlainText()
	if !strings.Contains(txt, "unified") {
		t.Errorf("emph arg lost: %q", txt)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"\\begin{figure} unclosed",
		"\\begin{a}\\end{b}",
		"\\section{unclosed",
		"\\section",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", src)
		}
	}
}

func TestParsePlainTextOnly(t *testing.T) {
	d := mustParse(t, "just plain text, no commands")
	if len(d.Root.Children) != 1 || d.Root.Children[0].Kind != KindText {
		t.Errorf("plain text doc: %+v", d.Root.Children)
	}
}

func TestPlainTextIncludesCaption(t *testing.T) {
	d := mustParse(t, paperDoc)
	prelim := childrenOfKind(d.Root, KindSection)[1]
	if !strings.Contains(prelim.PlainText(), "Indexing Time") {
		t.Errorf("section text lacks caption: %q", prelim.PlainText())
	}
}

func TestToViewsShape(t *testing.T) {
	d := mustParse(t, paperDoc)
	top := ToViews(d)
	// documentclass, title, abstract, document
	if len(top) != 4 {
		t.Fatalf("top views = %d, want 4", len(top))
	}
	classes := []string{core.ClassLatexDocclass, core.ClassLatexTitle, core.ClassLatexAbstract, core.ClassLatexDocument}
	for i, v := range top {
		if v.Class() != classes[i] {
			t.Errorf("top[%d] class = %q, want %q", i, v.Class(), classes[i])
		}
	}
	docView := top[3]
	sections, _ := core.CollectViews(docView.Group().Seq, 0)
	if len(sections) != 3 {
		t.Fatalf("document has %d section views", len(sections))
	}
	if sections[0].Name() != "Introduction" {
		t.Errorf("first section = %q", sections[0].Name())
	}
}

func TestToViewsSectionContentSearchable(t *testing.T) {
	d := mustParse(t, paperDoc)
	top := ToViews(d)
	docView := top[3]
	sections, _ := core.CollectViews(docView.Group().Seq, 0)
	b, _ := core.ReadAllContent(sections[0].Content(), 0)
	if !strings.Contains(string(b), "Mike Franklin") {
		t.Errorf("Introduction χ lacks phrase: %q", b)
	}
}

func TestToViewsRefCrossEdge(t *testing.T) {
	d := mustParse(t, paperDoc)
	top := ToViews(d)
	docView := top[3]
	// Find the texref view and the Preliminaries section view.
	var refView, prelimView core.ResourceView
	core.Walk(docView, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		switch {
		case v.Class() == core.ClassTexRef:
			refView = v
		case v.Name() == "Preliminaries":
			prelimView = v
		}
		return nil
	})
	if refView == nil || prelimView == nil {
		t.Fatal("ref or target view missing")
	}
	if refView.Name() != "sec:prelim" {
		t.Errorf("texref name = %q (Q7 joins on this)", refView.Name())
	}
	targets, _ := core.CollectViews(refView.Group().Set, 0)
	if len(targets) != 1 || targets[0] != prelimView {
		t.Error("texref does not point at Preliminaries (cross edge missing)")
	}
	// Preliminaries is now reachable from two parents: document tree and ref.
	related, err := core.IndirectlyRelated(refView, prelimView, core.WalkOptions{MaxDepth: -1})
	if err != nil || !related {
		t.Errorf("ref →* target = %v, %v", related, err)
	}
}

func TestToViewsFigureTuple(t *testing.T) {
	d := mustParse(t, paperDoc)
	top := ToViews(d)
	var fig core.ResourceView
	core.Walk(top[3], core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		if v.Class() == core.ClassFigure {
			fig = v
		}
		return nil
	})
	if fig == nil {
		t.Fatal("figure view missing")
	}
	if fig.Name() != "figure" {
		t.Errorf("figure name = %q", fig.Name())
	}
	if label, ok := fig.Tuple().Get("label"); !ok || label.Str != "fig:indexing" {
		t.Errorf("figure label = %v, %v", label, ok)
	}
	if cap, ok := fig.Tuple().Get("caption"); !ok || !strings.Contains(cap.Str, "Indexing Time") {
		t.Errorf("figure caption = %v, %v", cap, ok)
	}
	b, _ := core.ReadAllContent(fig.Content(), 0)
	if !strings.Contains(string(b), "Indexing Time") {
		t.Errorf("figure χ = %q", b)
	}
}

func TestToViewsDanglingRef(t *testing.T) {
	d := mustParse(t, "\\section{A}\nsee \\ref{nowhere}")
	top := ToViews(d)
	var ref core.ResourceView
	core.Walk(top[0], core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		if v.Class() == core.ClassTexRef {
			ref = v
		}
		return nil
	})
	// ToViews returns only the document view here (no docclass etc.).
	if ref == nil {
		core.Walk(top[len(top)-1], core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
			if v.Class() == core.ClassTexRef {
				ref = v
			}
			return nil
		})
	}
	if ref == nil {
		t.Fatal("texref view missing")
	}
	if !ref.Group().IsEmpty() {
		t.Error("dangling ref should have empty group")
	}
}

func TestCountViewsMatchesGraph(t *testing.T) {
	d := mustParse(t, paperDoc)
	top := ToViews(d)
	var total int
	seen := make(map[core.ResourceView]bool)
	for _, v := range top {
		core.Walk(v, core.WalkOptions{MaxDepth: -1}, func(w core.ResourceView, _ int) error {
			if !seen[w] {
				seen[w] = true
				total++
			}
			return nil
		})
	}
	if want := CountViews(d); total != want {
		t.Errorf("reachable views = %d, CountViews = %d", total, want)
	}
}

func TestParseOptionalArguments(t *testing.T) {
	// \documentclass[11pt,a4paper]{article} — the optional argument is
	// skipped, including nested brackets.
	d := mustParse(t, "\\documentclass[11pt,[nested],a4paper]{article}\n\\section{A}\nbody")
	dc := childrenOfKind(d.Root, KindDocclass)
	if len(dc) != 1 || dc[0].Title != "article" {
		t.Errorf("docclass = %+v", dc)
	}
	// Unknown command with optional arg: \includegraphics[width=1]{f.png}.
	d = mustParse(t, "\\section{A}\n\\includegraphics[width=0.5]{fig.png} done")
	txt := childrenOfKind(d.Root, KindSection)[0].PlainText()
	if !strings.Contains(txt, "fig.png") || !strings.Contains(txt, "done") {
		t.Errorf("text = %q", txt)
	}
	if strings.Contains(txt, "width") {
		t.Errorf("optional arg leaked: %q", txt)
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Parse("\\section{unclosed")
	if err == nil {
		t.Fatal("no error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("%T", err)
	}
	if !strings.Contains(pe.Error(), "latex: parse") {
		t.Errorf("message = %q", pe.Error())
	}
}

func TestCountViewsWithoutBody(t *testing.T) {
	// A document with only front matter has no synthetic document view.
	d := mustParse(t, "\\documentclass{a}\n\\title{T}")
	top := ToViews(d)
	if len(top) != 2 {
		t.Fatalf("top = %d", len(top))
	}
	total := 0
	seen := map[core.ResourceView]bool{}
	for _, v := range top {
		core.Walk(v, core.WalkOptions{MaxDepth: -1}, func(w core.ResourceView, _ int) error {
			if !seen[w] {
				seen[w] = true
				total++
			}
			return nil
		})
	}
	if want := CountViews(d); total != want {
		t.Errorf("views = %d, CountViews = %d", total, want)
	}
	if CountViews(nil) != 0 {
		t.Error("CountViews(nil) != 0")
	}
}

func TestAllNodeKindStrings(t *testing.T) {
	for k := KindDocument; k <= KindFigure; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d unnamed", int(k))
		}
	}
}

func TestNodeKindString(t *testing.T) {
	kinds := map[NodeKind]string{
		KindDocument: "document", KindSection: "section", KindFigure: "figure",
		KindRef: "ref", KindText: "text",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// Property: documents generated with n sections parse into exactly n
// section nodes and ToViews yields the matching count.
func TestParseSectionsPropertyQuick(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%10) + 1
		var b strings.Builder
		for i := 0; i < count; i++ {
			b.WriteString("\\section{S")
			b.WriteByte(byte('0' + i%10))
			b.WriteString("}\nbody text here\n")
		}
		d, err := Parse(b.String())
		if err != nil {
			return false
		}
		return len(childrenOfKind(d.Root, KindSection)) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
