package latex

import (
	"repro/internal/core"

	"strings"
)

// ToViews converts a parsed LaTeX document into the resource view
// subgraph that hangs off a latexfile view (Figure 1 of the paper): the
// result slice contains the documentclass, title, abstract and document
// views, in that order where present. Sections and subsections become
// latex_section / latex_subsection views named by their headings; figure
// environments become figure views whose τ carries the label and caption;
// every \ref becomes a texref view whose group component points at the
// referenced view, adding the cross edges that make the content graph
// non-tree-shaped (V_Preliminaries in Figure 1 is directly related to
// both V_document and V_ref).
func ToViews(d *Doc) []core.ResourceView {
	if d == nil || d.Root == nil {
		return nil
	}
	c := &converter{nodeView: make(map[*Node]core.ResourceView)}

	var top []core.ResourceView
	var bodyNodes []*Node
	for _, n := range d.Root.Children {
		switch n.Kind {
		case KindDocclass:
			top = append(top, c.convert(n))
		case KindTitle:
			top = append(top, c.convert(n))
		case KindAbstract:
			top = append(top, c.convert(n))
		default:
			bodyNodes = append(bodyNodes, n)
		}
	}
	if len(bodyNodes) > 0 {
		docChildren := make([]core.ResourceView, 0, len(bodyNodes))
		var docText []string
		for _, n := range bodyNodes {
			docChildren = append(docChildren, c.convert(n))
			docText = append(docText, n.PlainText())
		}
		docView := core.NewView("document", core.ClassLatexDocument).
			WithContent(core.StringContent(strings.Join(docText, " "))).
			WithGroup(core.SeqGroup(docChildren...))
		top = append(top, docView)
	}

	// Second pass: resolve \ref cross edges now that every labeled node
	// has a view.
	for _, ref := range d.Refs {
		rv, ok := c.nodeView[ref].(*core.StaticView)
		if !ok {
			continue
		}
		if target, ok := d.Labels[ref.Title]; ok {
			if tv, ok := c.nodeView[target]; ok {
				rv.VGroup = core.SetGroup(tv)
			}
		}
	}
	return top
}

type converter struct {
	nodeView map[*Node]core.ResourceView
}

func (c *converter) convert(n *Node) core.ResourceView {
	v := &core.StaticView{}
	switch n.Kind {
	case KindDocclass:
		v.VName = n.Title
		v.VClass = core.ClassLatexDocclass
	case KindTitle:
		v.VName = "title"
		v.VClass = core.ClassLatexTitle
		v.VContent = core.StringContent(n.Title)
	case KindAbstract:
		v.VName = "abstract"
		v.VClass = core.ClassLatexAbstract
		v.VContent = core.StringContent(n.PlainText())
	case KindSection:
		v.VName = n.Title
		v.VClass = core.ClassLatexSection
		v.VContent = core.StringContent(n.PlainText())
	case KindSubsection:
		v.VName = n.Title
		v.VClass = core.ClassLatexSubsection
		v.VContent = core.StringContent(n.PlainText())
	case KindText:
		v.VClass = core.ClassLatexText
		v.VContent = core.StringContent(n.Text)
	case KindRef:
		v.VName = n.Title
		v.VClass = core.ClassTexRef
	case KindFigure:
		v.VName = "figure"
		v.VClass = core.ClassFigure
		v.VContent = core.StringContent(n.PlainText())
	case KindEnvironment:
		v.VName = n.Title
		v.VClass = core.ClassEnvironment
		v.VContent = core.StringContent(n.PlainText())
	default:
		v.VName = n.Title
		v.VClass = core.ClassLatexText
	}

	// Labels and captions populate the tuple component so iQL can join
	// on them (Q7: A.name = B.tuple.label).
	var schema core.Schema
	var tuple core.Tuple
	if n.Label != "" {
		schema = append(schema, core.Attribute{Name: "label", Domain: core.DomainString})
		tuple = append(tuple, core.String(n.Label))
	}
	if n.Caption != "" {
		schema = append(schema, core.Attribute{Name: "caption", Domain: core.DomainString})
		tuple = append(tuple, core.String(n.Caption))
	}
	if len(schema) > 0 {
		v.VTuple = core.TupleComponent{Schema: schema, Tuple: tuple}
	}

	if len(n.Children) > 0 {
		children := make([]core.ResourceView, 0, len(n.Children))
		for _, ch := range n.Children {
			children = append(children, c.convert(ch))
		}
		v.VGroup = core.SeqGroup(children...)
	}
	c.nodeView[n] = v
	return v
}

// CountViews returns the number of resource views ToViews derives from a
// parsed document (structural nodes plus the synthetic document view when
// the document has body content).
func CountViews(d *Doc) int {
	if d == nil || d.Root == nil {
		return 0
	}
	n := CountNodes(d.Root)
	for _, c := range d.Root.Children {
		switch c.Kind {
		case KindDocclass, KindTitle, KindAbstract:
		default:
			return n + 1 // body present: add the synthetic document view
		}
	}
	return n
}
