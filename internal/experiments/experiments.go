// Package experiments regenerates every table and figure of §7 of the
// iDM paper against the synthetic personal dataset:
//
//	Table 2  — dataset characteristics (base vs derived resource views)
//	Table 3  — index sizes per source and structure
//	Figure 5 — indexing times split into catalog insert / component
//	           indexing / data source access
//	Table 4  — the eight evaluation queries and their result counts
//	Figure 6 — warm-cache query response times
//
// plus the ablation experiments DESIGN.md calls out (index vs scan,
// forward vs backward expansion, group replica on/off, push vs poll,
// lazy vs eager). Each experiment returns structured rows and renders a
// paper-style text table; cmd/idmbench prints them and the root
// bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/iql"
	"repro/internal/mail"
	"repro/internal/obs"
	"repro/internal/rvm"
	"repro/internal/sources/fsplugin"
	"repro/internal/sources/mailplugin"
	"repro/internal/sources/relplugin"
	"repro/internal/sources/rssplugin"
	"repro/internal/storage"
	"repro/internal/store"
)

// Setup binds a generated dataset to a Resource View Manager configured
// like the paper's prototype (group replica on, IMAP latency model on).
type Setup struct {
	Data *dataset.Dataset
	Mgr  *rvm.Manager
	// Scale and Seed echo the generation parameters for reports.
	Scale float64
	Seed  int64
	// Report is filled by Index.
	Report rvm.SyncReport
}

// Clock is the fixed evaluation clock (Q3 references @12.06.2005).
func Clock() time.Time { return time.Date(2005, 6, 15, 10, 0, 0, 0, time.UTC) }

// DefaultMailLatency models the remote IMAP server: a small per-call
// round trip plus a per-KB transfer cost. Figure 5's email bar is
// dominated by this.
func DefaultMailLatency() mail.Latency {
	return mail.Latency{PerCall: 200 * time.Microsecond, PerKB: 20 * time.Microsecond}
}

// NewSetup generates the dataset and registers all four sources.
func NewSetup(scale float64, seed int64, withLatency bool) (*Setup, error) {
	return NewSetupWithOptions(scale, seed, withLatency, rvm.DefaultOptions())
}

// NewSetupWithOptions is NewSetup with explicit manager options (used by
// the group-replica ablation).
func NewSetupWithOptions(scale float64, seed int64, withLatency bool, opts rvm.Options) (*Setup, error) {
	cfg := dataset.Config{Scale: scale, Seed: seed}
	if withLatency {
		cfg.MailLatency = DefaultMailLatency()
	}
	d := dataset.Generate(cfg)
	mgr := rvm.New(opts)
	conv := convert.Default().Func()
	for _, err := range []error{
		mgr.AddSource(fsplugin.New("filesystem", d.FS, conv)),
		mgr.AddSource(mailplugin.New("email", d.Mail, conv)),
		mgr.AddSource(rssplugin.New("rss", d.RSS, 0)),
		mgr.AddSource(relplugin.New("reldb", d.Rel)),
	} {
		if err != nil {
			return nil, err
		}
	}
	return &Setup{Data: d, Mgr: mgr, Scale: scale, Seed: seed}, nil
}

// Index runs the full synchronization (the measured phase of Figure 5).
func (s *Setup) Index() error {
	report, err := s.Mgr.SyncAll()
	if err != nil {
		return err
	}
	s.Report = report
	return nil
}

// Engine returns an iQL engine over the setup with the given expansion
// strategy and the default worker count.
func (s *Setup) Engine(exp iql.Expansion) *iql.Engine {
	return s.EngineWith(exp, 0)
}

// EngineWith returns an iQL engine with an explicit worker count
// (1 = serial, 0 = runtime.GOMAXPROCS(0)).
func (s *Setup) EngineWith(exp iql.Expansion, parallelism int) *iql.Engine {
	return iql.NewEngine(s.Mgr, iql.Options{Expansion: exp, Now: Clock, Parallelism: parallelism})
}

// AdaptiveEngine returns an engine driven by the cost-based planner:
// automatic expansion with direction chosen by estimated cost, and
// per-stage serial/parallel decisions capped by the worker count.
func (s *Setup) AdaptiveEngine(parallelism int) *iql.Engine {
	return iql.NewEngine(s.Mgr, iql.Options{
		Expansion:   iql.AutoExpansion,
		Now:         Clock,
		Parallelism: parallelism,
		Planner:     iql.PlannerAdaptive,
	})
}

// ---------------------------------------------------------------------
// Table 4 / Figure 6: the evaluation queries.
// ---------------------------------------------------------------------

// QueryDef is one evaluation query.
type QueryDef struct {
	ID  string
	IQL string
	// Note records any adaptation from the paper's literal query.
	Note string
}

// PaperQueries returns Q1–Q8 of Table 4, adapted where the synthetic
// dataset requires it (noted per query; see EXPERIMENTS.md).
func PaperQueries() []QueryDef {
	return []QueryDef{
		{ID: "Q1", IQL: `"database"`},
		{ID: "Q2", IQL: `"database tuning"`},
		{ID: "Q3", IQL: `[size > 4200 and lastmodified < @12.06.2005]`,
			Note: "size threshold scaled to synthetic file sizes (paper: 420000)"},
		{ID: "Q4", IQL: `//papers//*Vision/*["Franklin"]`},
		{ID: "Q5", IQL: `//VLDB200?//?onclusion*/*["systems"]`},
		{ID: "Q6", IQL: `union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])`},
		{ID: "Q7", IQL: `join( //VLDB2006//*[class="texref"] as A, //VLDB2006//figure*[class="environment"] as B, A.name=B.tuple.label)`,
			Note: "figure selection folded into one step (figures are leaf environments here)"},
		{ID: "Q8", IQL: `join( //*[class="emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )`},
	}
}

// ---------------------------------------------------------------------
// Table 2 — dataset characteristics.
// ---------------------------------------------------------------------

// Table2Row is one row of Table 2.
type Table2Row struct {
	Source       string
	SizeMB       float64
	Base         int
	DerivedXML   int
	DerivedLatex int
	DerivedTotal int
	Total        int
}

// Table2 computes the dataset-characteristics rows for the two primary
// sources plus a total, mirroring the paper's Table 2.
func Table2(s *Setup) []Table2Row {
	rows := make([]Table2Row, 0, 3)
	var total Table2Row
	total.Source = "Total"
	for _, src := range []string{"filesystem", "email"} {
		b := s.Mgr.Breakdown(src)
		var sizeMB float64
		switch src {
		case "filesystem":
			sizeMB = mb(s.Data.Info.FSBytes)
		case "email":
			sizeMB = mb(s.Data.Info.MailBytes)
		}
		r := Table2Row{
			Source:       src,
			SizeMB:       sizeMB,
			Base:         b.Base,
			DerivedXML:   b.DerivedXML,
			DerivedLatex: b.DerivedLatex,
			DerivedTotal: b.DerivedXML + b.DerivedLatex + b.DerivedOther,
			Total:        b.Total,
		}
		rows = append(rows, r)
		total.SizeMB += r.SizeMB
		total.Base += r.Base
		total.DerivedXML += r.DerivedXML
		total.DerivedLatex += r.DerivedLatex
		total.DerivedTotal += r.DerivedTotal
		total.Total += r.Total
	}
	return append(rows, total)
}

// RenderTable2 renders Table 2 in the paper's layout.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Characteristics of the synthetic personal dataset\n")
	fmt.Fprintf(&b, "%-12s %10s %10s | %10s %10s %10s | %10s\n",
		"Data Source", "Size (MB)", "Base", "XML", "LaTeX", "Derived", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.1f %10d | %10d %10d %10d | %10d\n",
			r.Source, r.SizeMB, r.Base, r.DerivedXML, r.DerivedLatex, r.DerivedTotal, r.Total)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table 3 — index sizes.
// ---------------------------------------------------------------------

// Table3Row is one row of Table 3 (sizes in MB).
type Table3Row struct {
	Source     string
	NetInputMB float64
	Name       float64
	Tuple      float64
	Content    float64
	Group      float64
	Catalog    float64
	Total      float64
}

// Table3 measures per-source index sizes by indexing each source into
// its own fresh manager (exact per-source attribution), plus the
// combined total row.
func Table3(scale float64, seed int64) ([]Table3Row, error) {
	d := dataset.Generate(dataset.Config{Scale: scale, Seed: seed})
	conv := convert.Default().Func()

	perSource := []struct {
		name string
		add  func(m *rvm.Manager) error
	}{
		{"filesystem", func(m *rvm.Manager) error {
			return m.AddSource(fsplugin.New("filesystem", d.FS, conv))
		}},
		{"email", func(m *rvm.Manager) error {
			return m.AddSource(mailplugin.New("email", d.Mail, conv))
		}},
	}
	var rows []Table3Row
	var total Table3Row
	total.Source = "Total"
	for _, src := range perSource {
		m := rvm.New(rvm.DefaultOptions())
		if err := src.add(m); err != nil {
			return nil, err
		}
		if _, err := m.SyncAll(); err != nil {
			return nil, err
		}
		sz := m.IndexSizes()
		r := Table3Row{
			Source:     src.name,
			NetInputMB: mb(m.NetInputBytes(src.name)),
			Name:       mb(sz.Name),
			Tuple:      mb(sz.Tuple),
			Content:    mb(sz.Content),
			Group:      mb(sz.Group),
			Catalog:    mb(sz.Catalog),
			Total:      mb(sz.Total()),
		}
		rows = append(rows, r)
		total.NetInputMB += r.NetInputMB
		total.Name += r.Name
		total.Tuple += r.Tuple
		total.Content += r.Content
		total.Group += r.Group
		total.Catalog += r.Catalog
		total.Total += r.Total
	}
	return append(rows, total), nil
}

// RenderTable3 renders Table 3 in the paper's layout.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: Index sizes for the synthetic personal dataset (MB)\n")
	fmt.Fprintf(&b, "%-12s %10s | %8s %8s %8s %8s %8s | %8s\n",
		"Data Source", "Net Input", "Name", "Tuple", "Content", "Group", "Catalog", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.2f | %8.2f %8.2f %8.2f %8.2f %8.2f | %8.2f\n",
			r.Source, r.NetInputMB, r.Name, r.Tuple, r.Content, r.Group, r.Catalog, r.Total)
	}
	if len(rows) > 0 {
		last := rows[len(rows)-1]
		if last.NetInputMB > 0 {
			fmt.Fprintf(&b, "Total index size is %.1f%% of net input data size (paper: 67.5%%)\n",
				100*last.Total/last.NetInputMB)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 5 — indexing times.
// ---------------------------------------------------------------------

// Figure5Row is one bar of Figure 5 (one data source, three segments).
type Figure5Row struct {
	Source            string
	CatalogInsert     time.Duration
	ComponentIndexing time.Duration
	DataSourceAccess  time.Duration
	Views             int
}

// Total returns the bar height.
func (r Figure5Row) Total() time.Duration {
	return r.CatalogInsert + r.ComponentIndexing + r.DataSourceAccess
}

// Figure5 runs a full indexing pass with the IMAP latency model on and
// returns the per-source timing split.
func Figure5(scale float64, seed int64) ([]Figure5Row, error) {
	s, err := NewSetup(scale, seed, true)
	if err != nil {
		return nil, err
	}
	if err := s.Index(); err != nil {
		return nil, err
	}
	var rows []Figure5Row
	for _, t := range s.Report.Timings {
		if t.Source != "filesystem" && t.Source != "email" {
			continue
		}
		rows = append(rows, Figure5Row{
			Source:            t.Source,
			CatalogInsert:     t.CatalogInsert,
			ComponentIndexing: t.ComponentIndexing,
			DataSourceAccess:  t.DataSourceAccess,
			Views:             t.Views,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Source < rows[j].Source })
	return rows, nil
}

// RenderFigure5 renders the indexing-time bars as a text chart.
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: Indexing times per data source\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s %14s %8s\n",
		"Data Source", "Catalog", "Indexing", "Source Access", "Total", "Views")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %14s %14s %14s %14s %8d\n",
			r.Source, r.CatalogInsert.Round(time.Microsecond),
			r.ComponentIndexing.Round(time.Microsecond),
			r.DataSourceAccess.Round(time.Microsecond),
			r.Total().Round(time.Microsecond), r.Views)
	}
	for _, r := range rows {
		if r.Source == "email" && r.Total() > 0 {
			fmt.Fprintf(&b, "Email indexing is %.0f%% data-source access (paper: dominated by access)\n",
				100*float64(r.DataSourceAccess)/float64(r.Total()))
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table 4 and Figure 6 — queries and response times.
// ---------------------------------------------------------------------

// QueryRow is one row of Table 4 plus its Figure 6 response time.
type QueryRow struct {
	ID      string
	IQL     string
	Results int
	// Warm is the warm-cache mean response time over Runs executions.
	Warm time.Duration
	Runs int
	// Intermediates is the expansion work (discussed for Q8 in §7.2).
	Intermediates int
	Note          string
}

// RunQueries evaluates the paper queries with warm-cache repetition,
// producing Table 4 (counts) and Figure 6 (times) in one pass.
func RunQueries(s *Setup, exp iql.Expansion, runs int) ([]QueryRow, error) {
	return RunQueriesWith(s, exp, runs, 0)
}

// RunQueriesWith is RunQueries with an explicit engine worker count.
func RunQueriesWith(s *Setup, exp iql.Expansion, runs, parallelism int) ([]QueryRow, error) {
	if runs <= 0 {
		runs = 5
	}
	engine := s.EngineWith(exp, parallelism)
	var rows []QueryRow
	for _, q := range PaperQueries() {
		// Warm-up run (also yields count and plan stats).
		res, err := engine.Query(q.IQL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		start := time.Now()
		for i := 0; i < runs; i++ {
			if _, err := engine.Query(q.IQL); err != nil {
				return nil, fmt.Errorf("%s: %w", q.ID, err)
			}
		}
		elapsed := time.Since(start)
		rows = append(rows, QueryRow{
			ID:            q.ID,
			IQL:           q.IQL,
			Results:       res.Count(),
			Warm:          elapsed / time.Duration(runs),
			Runs:          runs,
			Intermediates: int(res.Plan.Intermediates),
			Note:          q.Note,
		})
	}
	return rows, nil
}

// RenderTable4 renders the query/result-count table.
func RenderTable4(rows []QueryRow) string {
	var b strings.Builder
	b.WriteString("Table 4: iQL queries used in the evaluation\n")
	fmt.Fprintf(&b, "%-4s %-90s %10s\n", "ID", "iQL Query expression", "# Results")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %-90s %10d\n", r.ID, r.IQL, r.Results)
	}
	return b.String()
}

// RenderFigure6 renders the response-time chart.
func RenderFigure6(rows []QueryRow) string {
	var b strings.Builder
	b.WriteString("Figure 6: Query response times (warm cache)\n")
	var max time.Duration
	for _, r := range rows {
		if r.Warm > max {
			max = r.Warm
		}
	}
	for _, r := range rows {
		barLen := 0
		if max > 0 {
			barLen = int(40 * r.Warm / max)
		}
		fmt.Fprintf(&b, "%-4s %12s  %s (intermediates: %d)\n",
			r.ID, r.Warm.Round(time.Microsecond), strings.Repeat("#", barLen), r.Intermediates)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Scan baseline (grep-style) for the index-vs-scan ablation.
// ---------------------------------------------------------------------

// ScanPhrase answers a content phrase query by walking every live view
// and reading its content — the grep-like baseline the paper's
// introduction contrasts against.
func ScanPhrase(m *rvm.Manager, phrase string) []catalog.OID {
	needle := strings.ToLower(phrase)
	var out []catalog.OID
	for _, oid := range m.AllOIDs() {
		v, ok := m.View(oid)
		if !ok {
			continue
		}
		content := v.Content()
		if core.IsEmptyContent(content) || !content.Finite() {
			continue
		}
		b, err := core.ReadAllContent(content, 4<<20)
		if err != nil {
			continue
		}
		if strings.Contains(strings.ToLower(string(b)), needle) {
			out = append(out, oid)
		}
	}
	return out
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// ---------------------------------------------------------------------
// BENCH_iql.json — serial vs parallel engine microbenchmark.
// ---------------------------------------------------------------------

// BenchMode holds the per-execution-mode numbers of one benchmark query.
type BenchMode struct {
	NsPerOp       int64 `json:"ns_per_op"`
	AllocsPerOp   int64 `json:"allocs_per_op"`
	Intermediates int64 `json:"intermediates"`
	Results       int   `json:"results"`
}

// PlannerChoice records the cost-based planner's decisions for one
// query: the chosen top-level strategy (forward/backward/predicate/
// union/join/single step) and the estimated vs actual result rows, so
// drift in estimation quality is visible in the committed report.
type PlannerChoice struct {
	Strategy      string `json:"strategy"`
	EstimatedRows int64  `json:"estimated_rows"`
	ActualRows    int64  `json:"actual_rows"`
}

// BenchQuery is one Table 4 query measured serial, forced-parallel and
// planner-adaptive.
type BenchQuery struct {
	ID       string    `json:"id"`
	IQL      string    `json:"iql"`
	Serial   BenchMode `json:"serial"`
	Parallel BenchMode `json:"parallel"`
	// Speedup is serial ns/op over parallel ns/op (> 1 means the
	// parallel engine won).
	Speedup float64 `json:"speedup"`
	// Adaptive measures the cost-based planner (schema v3).
	Adaptive BenchMode `json:"adaptive"`
	// AdaptiveSpeedup is serial ns/op over adaptive ns/op.
	AdaptiveSpeedup float64 `json:"adaptive_speedup"`
	// Planner records the adaptive run's plan decisions (schema v3).
	Planner PlannerChoice `json:"planner"`
}

// ScaleSection is the scale_10x section of schema v3: the same
// per-query measurements over a dataset 10× the report's main scale,
// where cost-based planning pays most.
type ScaleSection struct {
	Scale   float64      `json:"scale"`
	Queries []BenchQuery `json:"queries"`
}

// BenchReport is the stable schema of BENCH_iql.json. SchemaVersion
// bumps on additions (incompatible changes would fork the file name):
// version 2 added the optional obs_overhead section; version 3 added
// num_cpu, the per-query adaptive mode with its planner section, and
// the optional scale_10x section; version 4 added the query-log mode
// to obs_overhead; version 5 added the optional index_build section
// (cold-start restore, incremental vs sort-based bulk). Readers of
// older versions still parse newer files by ignoring the unknown keys.
type BenchReport struct {
	SchemaVersion int     `json:"schema_version"`
	Tool          string  `json:"tool"`
	Scale         float64 `json:"scale"`
	Seed          int64   `json:"seed"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	// NumCPU records the machine's core count (schema v3): speedup
	// numbers are meaningless without it, and the adaptive planner's
	// serial-on-small-machines choices only make sense against it.
	NumCPU      int          `json:"num_cpu"`
	Parallelism int          `json:"parallelism"`
	Runs        int          `json:"runs"`
	Queries     []BenchQuery `json:"queries"`
	// Scale10x holds the 10×-scale measurements (schema v3; omitted
	// when not measured).
	Scale10x *ScaleSection `json:"scale_10x,omitempty"`
	// ObsOverhead reports the instrumentation-cost microbenchmark
	// (schema v2; omitted when not measured).
	ObsOverhead *ObsOverhead `json:"obs_overhead,omitempty"`
	// IndexBuild reports the cold-start index construction benchmark
	// (schema v5; omitted when not measured).
	IndexBuild *IndexBuild `json:"index_build,omitempty"`
}

// measureEngine times runs repetitions of one query and derives per-op
// allocation counts from the runtime's Mallocs counter. The returned
// result is the warm-up run's (plan statistics included).
func measureEngine(e *iql.Engine, src string, runs int) (BenchMode, *iql.Result, error) {
	res, err := e.Query(src) // warm-up; also yields count and plan stats
	if err != nil {
		return BenchMode{}, nil, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := e.Query(src); err != nil {
			return BenchMode{}, nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return BenchMode{
		NsPerOp:       elapsed.Nanoseconds() / int64(runs),
		AllocsPerOp:   int64(after.Mallocs-before.Mallocs) / int64(runs),
		Intermediates: res.Plan.Intermediates,
		Results:       res.Count(),
	}, res, nil
}

// benchReps is the number of interleaved timing repetitions per lane;
// each lane reports its fastest repetition. Min-of-reps with the lanes
// interleaved is robust against scheduler noise on small machines,
// where a single timing per lane can swing 2× run to run (the same
// approach BenchObsOverhead uses).
const benchReps = 25

// benchTargetBatchNs is the wall-clock a timing batch aims for. Batches
// are deliberately SHORT (~5ms): each starts from a collected heap, and
// a batch that outruns its allocation headroom pays a GC cycle (and, in
// a CPU-quota'd container, a throttling stall) inside the timed region.
// Measured on the evaluation queries, 50ms batches read 1.5–2× slower
// per op than 5ms batches with an order of magnitude more spread;
// min-of-reps over many short batches is the stable estimator.
const benchTargetBatchNs = 5e6

// timeBatch times iters executions of one query, starting from a
// collected heap so no lane pays another's GC debt.
func timeBatch(e *iql.Engine, src string, iters int) (int64, error) {
	runtime.GC()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := e.Query(src); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / int64(iters), nil
}

// benchQueries measures every Table 4 query in the three lanes (serial,
// forced-parallel, planner-adaptive), checking result equality across
// all of them as it goes.
func benchQueries(s *Setup, runs, parallelism int) ([]BenchQuery, error) {
	lanes := []*iql.Engine{
		s.EngineWith(iql.ForwardExpansion, 1),
		s.EngineWith(iql.ForwardExpansion, parallelism),
		s.AdaptiveEngine(parallelism),
	}
	laneName := []string{"serial", "parallel", "adaptive"}
	var out []BenchQuery
	for _, q := range PaperQueries() {
		modes := make([]BenchMode, len(lanes))
		results := make([]*iql.Result, len(lanes))
		// First pass warms caches and yields alloc counts, result counts
		// and plan statistics per lane.
		for i, e := range lanes {
			m, res, err := measureEngine(e, q.IQL, runs)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", q.ID, laneName[i], err)
			}
			modes[i], results[i] = m, res
		}
		// Calibrate each lane's batch size from its own warm timing (a
		// shared size would make slow lanes pay second-long batches when
		// another lane is a thousand times faster), then time interleaved
		// batches keeping each lane's min.
		iters := make([]int, len(lanes))
		for i, m := range modes {
			iters[i] = runs
			if m.NsPerOp > 0 {
				if n := int(benchTargetBatchNs/m.NsPerOp) + 1; n > iters[i] {
					iters[i] = n
				}
			}
		}
		// Rotate the lane order every repetition: a fixed order hands
		// whichever lane follows the heavy forced-parallel batch a
		// systematic penalty (scheduler and allocator state leak across
		// batches even with a forced GC between them).
		for rep := 0; rep < benchReps; rep++ {
			for k := range lanes {
				i := (rep + k) % len(lanes)
				ns, err := timeBatch(lanes[i], q.IQL, iters[i])
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", q.ID, laneName[i], err)
				}
				if ns < modes[i].NsPerOp {
					modes[i].NsPerOp = ns
				}
			}
		}
		sm, pm, am := modes[0], modes[1], modes[2]
		if sm.Results != pm.Results || sm.Results != am.Results {
			return nil, fmt.Errorf("%s: serial found %d results, parallel %d, adaptive %d",
				q.ID, sm.Results, pm.Results, am.Results)
		}
		bq := BenchQuery{ID: q.ID, IQL: q.IQL, Serial: sm, Parallel: pm, Adaptive: am}
		if pm.NsPerOp > 0 {
			bq.Speedup = float64(sm.NsPerOp) / float64(pm.NsPerOp)
		}
		if am.NsPerOp > 0 {
			bq.AdaptiveSpeedup = float64(sm.NsPerOp) / float64(am.NsPerOp)
		}
		ares := results[2]
		bq.Planner = PlannerChoice{
			Strategy:      ares.Plan.Strategy,
			EstimatedRows: ares.Plan.EstimatedRows,
			ActualRows:    int64(ares.Count()),
		}
		out = append(out, bq)
	}
	return out, nil
}

// BenchIQL measures every Table 4 query with the serial engine, a
// forced-parallel engine of the given worker count (0 = GOMAXPROCS) and
// the cost-based adaptive engine, checking result equality between the
// three as it goes.
func BenchIQL(s *Setup, runs, parallelism int) (*BenchReport, error) {
	if runs <= 0 {
		runs = 10
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	rep := &BenchReport{
		SchemaVersion: 5,
		Tool:          "idmbench",
		Scale:         s.Scale,
		Seed:          s.Seed,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Parallelism:   parallelism,
		Runs:          runs,
	}
	queries, err := benchQueries(s, runs, parallelism)
	if err != nil {
		return nil, err
	}
	rep.Queries = queries
	return rep, nil
}

// BenchIQLAtScale builds and indexes a fresh dataset at the given scale
// and measures the three lanes over it — the scale_10x section of
// schema v3.
func BenchIQLAtScale(scale float64, seed int64, runs, parallelism int) (*ScaleSection, error) {
	if runs <= 0 {
		runs = 10
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	s, err := NewSetup(scale, seed, false)
	if err != nil {
		return nil, err
	}
	if err := s.Index(); err != nil {
		return nil, err
	}
	queries, err := benchQueries(s, runs, parallelism)
	if err != nil {
		return nil, err
	}
	return &ScaleSection{Scale: scale, Queries: queries}, nil
}

// ---------------------------------------------------------------------
// obs_overhead — cost of the observability layer on the query path.
// ---------------------------------------------------------------------

// ObsQueryOverhead is one query's instrumentation-cost measurement:
// ns/op with no registry wired (baseline), with a wired-but-disabled
// registry (the default production posture when metrics are off), with
// recording enabled, and with recording plus the query log (schema v4:
// every completed query appended to the ring).
type ObsQueryOverhead struct {
	ID              string `json:"id"`
	BaselineNsPerOp int64  `json:"baseline_ns_per_op"`
	DisabledNsPerOp int64  `json:"disabled_ns_per_op"`
	EnabledNsPerOp  int64  `json:"enabled_ns_per_op"`
	QueryLogNsPerOp int64  `json:"querylog_ns_per_op"`
	// Overheads are relative to baseline; small negatives are
	// measurement noise.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	EnabledOverheadPct  float64 `json:"enabled_overhead_pct"`
	QueryLogOverheadPct float64 `json:"querylog_overhead_pct"`
}

// ObsOverhead is the obs_overhead section of BENCH_iql.json
// (schema_version 2; the query-log mode is v4). The acceptance targets
// are mean disabled overhead ≤ 2% (wired instruments must be near-free
// when the registry is off) and mean query-log overhead ≤ 3% (full
// per-query accounting plus ring recording stays in noise territory).
type ObsOverhead struct {
	Runs                    int                `json:"runs"`
	Reps                    int                `json:"reps"`
	Queries                 []ObsQueryOverhead `json:"queries"`
	MeanDisabledOverheadPct float64            `json:"mean_disabled_overhead_pct"`
	MeanEnabledOverheadPct  float64            `json:"mean_enabled_overhead_pct"`
	MeanQueryLogOverheadPct float64            `json:"mean_querylog_overhead_pct"`
}

// BenchObsOverhead measures the instrumentation cost on every Table 4
// query with three serial engines over the same manager: no registry,
// disabled registry, enabled registry. Each mode runs reps times
// interleaved and keeps the fastest repetition — min-of-reps is robust
// against scheduler noise on small machines, where a mean would drown
// the sub-percent effect being measured.
func BenchObsOverhead(s *Setup, runs, reps int) (*ObsOverhead, error) {
	if runs <= 0 {
		runs = 10
	}
	if reps <= 0 {
		reps = 3
	}
	baseline := iql.NewEngine(s.Mgr, iql.Options{Expansion: iql.ForwardExpansion, Now: Clock, Parallelism: 1})
	disReg := obs.NewRegistry()
	disReg.SetEnabled(false)
	disabled := iql.NewEngine(s.Mgr, iql.Options{Expansion: iql.ForwardExpansion, Now: Clock, Parallelism: 1, Metrics: disReg})
	enReg := obs.NewRegistry()
	enabled := iql.NewEngine(s.Mgr, iql.Options{Expansion: iql.ForwardExpansion, Now: Clock, Parallelism: 1, Metrics: enReg})
	// The query-log mode is the full production posture: enabled
	// registry plus a query log recording every completed query. The
	// slow threshold is left high enough that no benchmark query
	// triggers the traced re-execution — that path is deliberately
	// expensive and separately documented.
	qlReg := obs.NewRegistry()
	qlog := obs.NewQueryLog(0, time.Hour)
	querylog := iql.NewEngine(s.Mgr, iql.Options{Expansion: iql.ForwardExpansion, Now: Clock, Parallelism: 1, Metrics: qlReg, QueryLog: qlog})

	// time one batch of iters executions; min-of-reps over these batches
	// is the reported ns/op.
	batch := func(e *iql.Engine, src string, iters int) (int64, error) {
		// Start every batch from a collected heap so no mode pays
		// another's GC debt.
		runtime.GC()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := e.Query(src); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / int64(iters), nil
	}

	out := &ObsOverhead{Runs: runs, Reps: reps}
	var disSum, enSum, qlSum float64
	for _, q := range PaperQueries() {
		row := ObsQueryOverhead{ID: q.ID}
		// Warm up and calibrate the batch size so one batch runs long
		// enough (~50ms) that scheduler jitter can't fake a percent-level
		// difference between modes.
		warm := time.Now()
		if _, err := baseline.Query(q.IQL); err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		perOp := time.Since(warm)
		iters := runs
		if perOp > 0 {
			if n := int(40 * time.Millisecond / perOp); n > iters {
				iters = n
			}
		}
		modes := []struct {
			engine *iql.Engine
			out    *int64
		}{
			{baseline, &row.BaselineNsPerOp},
			{disabled, &row.DisabledNsPerOp},
			{enabled, &row.EnabledNsPerOp},
			{querylog, &row.QueryLogNsPerOp},
		}
		for rep := 0; rep < reps; rep++ {
			// Rotate the mode order each repetition so slow drift
			// (thermal, background load) doesn't bias one mode.
			for i := range modes {
				m := modes[(rep+i)%len(modes)]
				v, err := batch(m.engine, q.IQL, iters)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", q.ID, err)
				}
				if *m.out == 0 || v < *m.out {
					*m.out = v
				}
			}
		}
		if row.BaselineNsPerOp > 0 {
			row.DisabledOverheadPct = 100 * float64(row.DisabledNsPerOp-row.BaselineNsPerOp) / float64(row.BaselineNsPerOp)
			row.EnabledOverheadPct = 100 * float64(row.EnabledNsPerOp-row.BaselineNsPerOp) / float64(row.BaselineNsPerOp)
			row.QueryLogOverheadPct = 100 * float64(row.QueryLogNsPerOp-row.BaselineNsPerOp) / float64(row.BaselineNsPerOp)
		}
		disSum += row.DisabledOverheadPct
		enSum += row.EnabledOverheadPct
		qlSum += row.QueryLogOverheadPct
		out.Queries = append(out.Queries, row)
	}
	if n := float64(len(out.Queries)); n > 0 {
		out.MeanDisabledOverheadPct = disSum / n
		out.MeanEnabledOverheadPct = enSum / n
		out.MeanQueryLogOverheadPct = qlSum / n
	}
	return out, nil
}

// ---------------------------------------------------------------------
// index_build — cold-start index construction: incremental vs bulk.
// ---------------------------------------------------------------------

// IndexBuild is the index_build section of BENCH_iql.json (schema v5):
// the time to rebuild the Replica & Indexes module from a recovered
// durable state, with the per-view incremental insertion path and with
// the sort-based bulk build OpenDurable actually uses on a cold start.
type IndexBuild struct {
	Scale float64 `json:"scale"`
	Views int     `json:"views"`
	Reps  int     `json:"reps"`
	// IncrementalNs and BulkNs are each the fastest of Reps interleaved
	// full restores (min-of-reps, like every other section).
	IncrementalNs int64 `json:"incremental_ns"`
	BulkNs        int64 `json:"bulk_ns"`
	// Speedup is IncrementalNs / BulkNs.
	Speedup float64 `json:"speedup"`
}

// BenchIndexBuild generates and indexes a dataset at the given scale
// through a WAL-backed manager, clones the durable state — exactly what
// recovery hands OpenDurable — and times RestoreFromState over it with
// the bulk path forced off and on.
func BenchIndexBuild(scale float64, seed int64, reps int) (*IndexBuild, error) {
	if reps <= 0 {
		reps = 3
	}
	dir, err := os.MkdirTemp("", "idmbench-ixbuild-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	eng, _, err := storage.Open(dir, storage.Options{Sync: store.SyncNever})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	opts := rvm.DefaultOptions()
	opts.Store = eng
	s, err := NewSetupWithOptions(scale, seed, false, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Index(); err != nil {
		return nil, err
	}
	state, _ := eng.CloneState()

	out := &IndexBuild{Scale: scale, Views: len(state.Views), Reps: reps}
	restore := func(noBulk bool) (int64, error) {
		ropts := rvm.DefaultOptions()
		ropts.NoBulkRestore = noBulk
		m := rvm.NewWithCatalog(ropts, catalog.Rebuild(state.NextOID, state.Entries()))
		runtime.GC()
		start := time.Now()
		m.RestoreFromState(state)
		ns := time.Since(start).Nanoseconds()
		if m.Count() != out.Views {
			return 0, fmt.Errorf("restore produced %d views, want %d", m.Count(), out.Views)
		}
		return ns, nil
	}
	// Interleave the two paths and keep each one's fastest repetition.
	for rep := 0; rep < reps; rep++ {
		for _, noBulk := range []bool{rep%2 == 0, rep%2 != 0} {
			ns, err := restore(noBulk)
			if err != nil {
				return nil, err
			}
			switch {
			case noBulk && (out.IncrementalNs == 0 || ns < out.IncrementalNs):
				out.IncrementalNs = ns
			case !noBulk && (out.BulkNs == 0 || ns < out.BulkNs):
				out.BulkNs = ns
			}
		}
	}
	if out.BulkNs > 0 {
		out.Speedup = float64(out.IncrementalNs) / float64(out.BulkNs)
	}
	return out, nil
}
