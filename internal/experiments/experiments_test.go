package experiments

import (
	"strings"
	"testing"

	"repro/internal/iql"
)

const testScale = 0.02

func testSetup(t *testing.T, latency bool) *Setup {
	t.Helper()
	s, err := NewSetup(testScale, 42, latency)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Index(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTable2Shape(t *testing.T) {
	s := testSetup(t, false)
	rows := Table2(s)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	fs, email, total := rows[0], rows[1], rows[2]
	if fs.Source != "filesystem" || email.Source != "email" || total.Source != "Total" {
		t.Fatalf("row order: %v", rows)
	}
	// Paper shape: derived views vastly outnumber base items on the
	// filesystem; most derived views on the filesystem come from
	// XML+LaTeX; email derived count is comparatively small.
	if fs.DerivedTotal <= fs.Base {
		t.Errorf("fs derived %d should exceed base %d", fs.DerivedTotal, fs.Base)
	}
	if email.DerivedTotal >= fs.DerivedTotal {
		t.Errorf("email derived %d should be far below fs %d", email.DerivedTotal, fs.DerivedTotal)
	}
	if total.Total != fs.Total+email.Total {
		t.Error("total row mismatch")
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "filesystem") || !strings.Contains(out, "Total") {
		t.Errorf("render = %q", out)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	total := rows[2]
	// Content index dominates total index size (paper: 118 of 172.5 MB).
	if total.Content < total.Name || total.Content < total.Group {
		t.Errorf("content index should dominate: %+v", total)
	}
	if total.Total <= 0 || total.NetInputMB <= 0 {
		t.Errorf("total = %+v", total)
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "Net Input") {
		t.Errorf("render = %q", out)
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	var email, fs Figure5Row
	for _, r := range rows {
		switch r.Source {
		case "email":
			email = r
		case "filesystem":
			fs = r
		}
	}
	// The paper's headline: email indexing dominated by data source
	// access (remote IMAP), filesystem not.
	if email.DataSourceAccess <= email.CatalogInsert+email.ComponentIndexing {
		t.Errorf("email access should dominate: %+v", email)
	}
	if fs.Views == 0 || email.Views == 0 {
		t.Errorf("views: fs=%d email=%d", fs.Views, email.Views)
	}
	out := RenderFigure5(rows)
	if !strings.Contains(out, "data-source access") {
		t.Errorf("render lacks summary: %q", out)
	}
}

func TestRunQueriesTable4Figure6(t *testing.T) {
	s := testSetup(t, false)
	rows, err := RunQueries(s, iql.ForwardExpansion, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Results == 0 {
			t.Errorf("%s returned nothing", r.ID)
		}
		if r.Warm <= 0 {
			t.Errorf("%s warm time = %v", r.ID, r.Warm)
		}
	}
	// Q8 (cross-subsystem join with forward expansion) touches the most
	// intermediates of the join queries — the §7.2 discussion.
	byID := map[string]QueryRow{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	if byID["Q8"].Intermediates == 0 {
		t.Error("Q8 recorded no expansion work")
	}
	t4 := RenderTable4(rows)
	if !strings.Contains(t4, "Q8") {
		t.Errorf("table 4 render = %q", t4)
	}
	f6 := RenderFigure6(rows)
	if !strings.Contains(f6, "#") {
		t.Errorf("figure 6 render = %q", f6)
	}
}

// TestParallelMatchesSerialOnPaperQueries runs every Table 4 query
// against the real synthetic dataspace with the serial engine and a
// parallel one, under each expansion strategy, requiring byte-identical
// rows.
func TestParallelMatchesSerialOnPaperQueries(t *testing.T) {
	s := testSetup(t, false)
	for _, exp := range []iql.Expansion{iql.ForwardExpansion, iql.BackwardExpansion, iql.AutoExpansion} {
		serial := s.EngineWith(exp, 1)
		parallel := s.EngineWith(exp, 4)
		for _, q := range PaperQueries() {
			want, err := serial.Query(q.IQL)
			if err != nil {
				t.Fatalf("%v %s serial: %v", exp, q.ID, err)
			}
			got, err := parallel.Query(q.IQL)
			if err != nil {
				t.Fatalf("%v %s parallel: %v", exp, q.ID, err)
			}
			if len(want.Rows) != len(got.Rows) {
				t.Fatalf("%v %s: %d rows serial vs %d parallel", exp, q.ID, len(want.Rows), len(got.Rows))
			}
			for i := range want.Rows {
				for j := range want.Rows[i] {
					if want.Rows[i][j] != got.Rows[i][j] {
						t.Fatalf("%v %s: row %d diverges: %v vs %v", exp, q.ID, i, want.Rows[i], got.Rows[i])
					}
				}
			}
			if want.Plan.Intermediates != got.Plan.Intermediates {
				t.Errorf("%v %s: intermediates %d serial vs %d parallel",
					exp, q.ID, want.Plan.Intermediates, got.Plan.Intermediates)
			}
		}
	}
}

// TestBenchIQLReport checks the BENCH_iql.json producer: all eight
// queries present, counts equal across modes, sane measurements.
func TestBenchIQLReport(t *testing.T) {
	s := testSetup(t, false)
	rep, err := BenchIQL(s, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != 5 || rep.Parallelism != 4 || len(rep.Queries) != 8 {
		t.Fatalf("report header = %+v", rep)
	}
	for _, q := range rep.Queries {
		if q.Serial.Results != q.Parallel.Results || q.Serial.Results != q.Adaptive.Results {
			t.Errorf("%s: result counts diverge: serial %d parallel %d adaptive %d",
				q.ID, q.Serial.Results, q.Parallel.Results, q.Adaptive.Results)
		}
		if q.Serial.NsPerOp <= 0 || q.Parallel.NsPerOp <= 0 || q.Adaptive.NsPerOp <= 0 {
			t.Errorf("%s: non-positive timing %+v", q.ID, q)
		}
		if q.AdaptiveSpeedup <= 0 {
			t.Errorf("%s: missing adaptive speedup", q.ID)
		}
		if q.Planner.Strategy == "" {
			t.Errorf("%s: missing planner strategy", q.ID)
		}
		if q.Planner.ActualRows != int64(q.Serial.Results) {
			t.Errorf("%s: planner actual rows %d != result count %d",
				q.ID, q.Planner.ActualRows, q.Serial.Results)
		}
	}
}

// TestBenchObsOverheadReport checks the obs_overhead producer: all eight
// queries measured in all four modes. Overhead percentages are not
// asserted here — one fast repetition in a loaded test run is too noisy;
// the Makefile's obs-bench target measures them properly.
func TestBenchObsOverheadReport(t *testing.T) {
	s := testSetup(t, false)
	oo, err := BenchObsOverhead(s, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(oo.Queries) != 8 {
		t.Fatalf("queries measured = %d, want 8", len(oo.Queries))
	}
	for _, q := range oo.Queries {
		if q.BaselineNsPerOp <= 0 || q.DisabledNsPerOp <= 0 || q.EnabledNsPerOp <= 0 || q.QueryLogNsPerOp <= 0 {
			t.Errorf("%s: non-positive timing %+v", q.ID, q)
		}
	}
}

// TestBenchIndexBuildReport checks the index_build producer at a small
// scale: both paths measured, same view count, sane timings. The bulk
// advantage itself is only asserted at scale 1.0 (make bench), where
// the asymptotic difference dominates the noise.
func TestBenchIndexBuildReport(t *testing.T) {
	ib, err := BenchIndexBuild(0.02, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ib.Views <= 0 {
		t.Fatalf("no views restored: %+v", ib)
	}
	if ib.IncrementalNs <= 0 || ib.BulkNs <= 0 || ib.Speedup <= 0 {
		t.Fatalf("non-positive measurement: %+v", ib)
	}
}

func TestScanPhraseMatchesIndex(t *testing.T) {
	s := testSetup(t, false)
	engine := s.Engine(iql.ForwardExpansion)
	indexed, err := engine.Query(`"database tuning"`)
	if err != nil {
		t.Fatal(err)
	}
	scanned := ScanPhrase(s.Mgr, "database tuning")
	// The scan is a superset-ish baseline: tokenization differs from raw
	// substring matching, so compare with tolerance — every indexed hit
	// must also be found by the scan.
	scanSet := map[interface{}]bool{}
	for _, o := range scanned {
		scanSet[o] = true
	}
	for _, o := range indexed.OIDs() {
		if !scanSet[o] {
			t.Errorf("indexed hit %d missed by scan", o)
		}
	}
	if len(scanned) == 0 {
		t.Error("scan found nothing")
	}
}

func TestPaperQueriesHaveNotesWhereAdapted(t *testing.T) {
	qs := PaperQueries()
	if len(qs) != 8 {
		t.Fatalf("queries = %d", len(qs))
	}
	noted := 0
	for _, q := range qs {
		if q.Note != "" {
			noted++
		}
	}
	if noted != 2 { // Q3 and Q7 adaptations
		t.Errorf("noted adaptations = %d, want 2", noted)
	}
}
