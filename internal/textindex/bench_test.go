package textindex

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func benchCorpus(n int) []string {
	rng := rand.New(rand.NewSource(1))
	vocab := []string{
		"database", "tuning", "system", "index", "query", "view",
		"resource", "stream", "model", "data", "personal", "search",
	}
	docs := make([]string, n)
	for i := range docs {
		var b strings.Builder
		for w := 0; w < 120; w++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteByte(' ')
		}
		docs[i] = b.String()
	}
	return docs
}

func BenchmarkIndexAdd(b *testing.B) {
	docs := benchCorpus(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix := New()
		for d, text := range docs {
			ix.Add(DocID(d+1), text)
		}
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	ix := New()
	for d, text := range benchCorpus(1024) {
		ix.Add(DocID(d+1), text)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup("database")
	}
}

func BenchmarkIndexPhrase(b *testing.B) {
	ix := New()
	for d, text := range benchCorpus(1024) {
		ix.Add(DocID(d+1), text)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Phrase("database tuning")
	}
}

func BenchmarkIndexAnd(b *testing.B) {
	ix := New()
	for d, text := range benchCorpus(1024) {
		ix.Add(DocID(d+1), text)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.And("database", "tuning", "index")
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := benchCorpus(1)[0]
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

var sinkDocs []DocID

func BenchmarkIndexScaling(b *testing.B) {
	for _, n := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("docs-%d", n), func(b *testing.B) {
			ix := New()
			for d, text := range benchCorpus(n) {
				ix.Add(DocID(d+1), text)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkDocs = ix.Phrase("database tuning")
			}
		})
	}
}
