package textindex

import (
	"fmt"
	"reflect"
	"testing"
)

// TestBuilderMatchesIncremental differentially pins the bulk build
// against the incremental path, including the re-add (supersede) case
// the builder handles with its sequence numbers.
func TestBuilderMatchesIncremental(t *testing.T) {
	docs := []struct {
		id   DocID
		text string
	}{
		{1, "intro to personal dataspace management"},
		{2, "the iDM data model unifies files and tuples"},
		{3, "indexing indexing indexing"},
		{4, ""},
		{5, "dataspace queries over a unified model"},
		{2, "revised: the data model after review"}, // re-add supersedes
		{6, "final words on management"},
	}

	inc := New()
	b := NewBuilder()
	for _, d := range docs {
		inc.Add(d.id, d.text)
		b.Add(d.id, d.text)
	}
	built := b.Build()

	if got, want := built.DocCount(), inc.DocCount(); got != want {
		t.Fatalf("DocCount %d, want %d", got, want)
	}
	if got, want := built.TermCount(), inc.TermCount(); got != want {
		t.Fatalf("TermCount %d, want %d", got, want)
	}
	for _, term := range append(inc.MatchTerms(""), "absent") {
		if got, want := built.Lookup(term), inc.Lookup(term); !reflect.DeepEqual(got, want) {
			t.Errorf("Lookup(%q) = %v, want %v", term, got, want)
		}
	}
	for _, phrase := range []string{"data model", "indexing indexing", "personal dataspace", "revised the data"} {
		if got, want := built.Phrase(phrase), inc.Phrase(phrase); !reflect.DeepEqual(got, want) {
			t.Errorf("Phrase(%q) = %v, want %v", phrase, got, want)
		}
	}
	// The superseded postings must be gone entirely, not tombstoned.
	if got := built.Lookup("unifies"); len(got) != 0 {
		t.Fatalf("superseded posting survived the bulk build: %v", got)
	}
}

// TestBuilderPostingOrder pins that bulk-built posting lists are sorted
// by DocID regardless of insertion order — the invariant the
// incremental path maintains with per-insert binary search.
func TestBuilderPostingOrder(t *testing.T) {
	b := NewBuilder()
	for i := 50; i >= 1; i-- { // descending insertion
		b.Add(DocID(i), fmt.Sprintf("common term doc%d", i))
	}
	ix := b.Build()
	docs := ix.Lookup("common")
	if len(docs) != 50 {
		t.Fatalf("Lookup returned %d docs, want 50", len(docs))
	}
	for i := 1; i < len(docs); i++ {
		if docs[i-1] >= docs[i] {
			t.Fatalf("posting list out of order at %d: %v", i, docs[:i+1])
		}
	}
}
