package textindex

import "sort"

// docSpan is one Add call: the document and its contiguous slice of
// spilled term IDs. A token's position is implicit — its offset within
// the span — so the spill itself is a flat []int32 the garbage
// collector never scans and the build never chases pointers through.
type docSpan struct {
	doc   DocID
	start int
	n     int
}

// Builder constructs an Index with a sort-based bulk build: Add spills
// one interned term ID per token (4 bytes, positions implicit in span
// offsets) without touching any posting list, then Build materializes
// every posting list with a counting pass — a bucket sort on term IDs
// into two exactly-sized arenas (one []uint32 for all positions, one
// []posting for all lists). Feeding documents in ascending DocID order
// (the order RestoreFromState scans, and the order compacted segments
// store) keeps each bucket naturally sorted; out-of-order feeds fall
// back to a per-list sort. Compared with the incremental path this
// saves the per-document term map, the per-term binary search and map
// rehash on every insert, and the repeated posting-slice regrowth; the
// build itself is sequential scans plus small dense per-term arrays —
// no per-token map lookups, so it stays fast when the corpus outgrows
// the CPU cache.
//
// The built index is semantically identical to incrementally Add-ing
// the same documents in the same order (the bulk-vs-incremental
// differential test pins this). A Builder is single-use and not safe
// for concurrent use; the Index it returns is.
type Builder struct {
	termID map[string]int32
	terms  []int32 // one interned term ID per spilled token
	spans  []docSpan
	latest map[DocID]int32 // span index of the doc's latest Add
	docs   map[DocID]int
}

// NewBuilder returns an empty bulk builder.
func NewBuilder() *Builder {
	return &Builder{
		termID: make(map[string]int32),
		latest: make(map[DocID]int32),
		docs:   make(map[DocID]int),
	}
}

// Add spills one document's tokens. Re-adding a document supersedes
// its earlier tokens, matching Index.Add.
func (b *Builder) Add(doc DocID, text string) {
	tokens := Tokenize(text)
	b.latest[doc] = int32(len(b.spans))
	b.docs[doc] = len(tokens)
	b.spans = append(b.spans, docSpan{doc: doc, start: len(b.terms), n: len(tokens)})
	for _, tok := range tokens {
		id, ok := b.termID[tok]
		if !ok {
			id = int32(len(b.termID))
			b.termID[tok] = id
		}
		b.terms = append(b.terms, id)
	}
}

// DocCount returns the number of distinct documents added so far.
func (b *Builder) DocCount() int { return len(b.docs) }

// Build assembles the index. One counting pass over the live spans
// sizes every bucket (token occurrences and (term, doc) runs per
// term), then a scatter pass writes positions into a shared arena and
// closes each run into its posting slot. A document's live tokens are
// one contiguous span, so within a term's bucket each document is
// exactly one posting. Only buckets a re-added document left out of
// doc order are sorted afterwards. The builder must not be used after
// Build.
func (b *Builder) Build() *Index {
	nt := len(b.termID)
	tokCount := make([]int32, nt) // live token occurrences per term
	runCount := make([]int32, nt) // live (term, doc) pairs per term
	lastDoc := make([]DocID, nt)
	seen := make([]bool, nt)
	live := 0
	for si := range b.spans {
		sp := &b.spans[si]
		if b.latest[sp.doc] != int32(si) {
			continue // superseded by a later re-add of the same doc
		}
		live += sp.n
		for _, t := range b.terms[sp.start : sp.start+sp.n] {
			tokCount[t]++
			if !seen[t] || lastDoc[t] != sp.doc {
				runCount[t]++
				seen[t] = true
				lastDoc[t] = sp.doc
			}
		}
	}
	posArena := make([]uint32, live)
	posOff := make([]int32, nt)
	postOff := make([]int32, nt)
	var po, ro int32
	for t := 0; t < nt; t++ {
		posOff[t] = po
		po += tokCount[t]
		postOff[t] = ro
		ro += runCount[t]
	}
	postArena := make([]posting, ro)
	posNext := append([]int32(nil), posOff...)
	postNext := append([]int32(nil), postOff...)
	runStart := make([]int32, nt)
	unsorted := make([]bool, nt)
	clear(seen) // reuse as "term has an open run"; lastDoc as the open run's doc
	closeRun := func(t int32) {
		postArena[postNext[t]] = posting{
			doc:       lastDoc[t],
			positions: posArena[runStart[t]:posNext[t]:posNext[t]],
		}
		postNext[t]++
	}
	for si := range b.spans {
		sp := &b.spans[si]
		if b.latest[sp.doc] != int32(si) {
			continue
		}
		for i, t := range b.terms[sp.start : sp.start+sp.n] {
			if !seen[t] || lastDoc[t] != sp.doc {
				if seen[t] {
					closeRun(t)
					if sp.doc < lastDoc[t] {
						unsorted[t] = true
					}
				}
				seen[t] = true
				lastDoc[t] = sp.doc
				runStart[t] = posNext[t]
			}
			posArena[posNext[t]] = uint32(i)
			posNext[t]++
		}
	}
	for t := int32(0); t < int32(nt); t++ {
		if seen[t] {
			closeRun(t)
		}
	}
	ix := New()
	for doc, n := range b.docs {
		ix.docs[doc] = n
	}
	for term, id := range b.termID {
		list := postArena[postOff[id]:postNext[id]:postNext[id]]
		if len(list) == 0 {
			continue
		}
		if unsorted[id] {
			sort.Slice(list, func(i, j int) bool { return list[i].doc < list[j].doc })
		}
		ix.terms[term] = list
	}
	b.terms, b.spans = nil, nil
	return ix
}
