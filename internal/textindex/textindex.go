// Package textindex implements a positional inverted index over text: the
// stdlib substitute for the Apache Lucene indexes the iMeMex prototype
// used for name and content components (§7.2 of the iDM paper). It
// supports keyword lookup, boolean AND/OR, positional phrase queries,
// and prefix matching, along with the size accounting Table 3 reports.
//
// Like Lucene's, this index is not a replica: it cannot return the
// original text that was indexed, only the ids of matching documents.
package textindex

import (
	"sort"
	"strings"
	"sync"
	"unicode"
)

// DocID identifies one indexed document (in iMeMex: one resource view,
// identified by its catalog OID).
type DocID uint64

// posting records the positions of one term within one document.
type posting struct {
	doc       DocID
	positions []uint32
}

// Index is a positional inverted index. Index is safe for concurrent
// use.
type Index struct {
	mu sync.RWMutex
	// terms maps a term to its posting list, sorted by DocID.
	terms map[string][]posting
	// docs tracks indexed documents and their token counts.
	docs map[DocID]int
	// deleted holds tombstones filtered out of query results.
	deleted map[DocID]bool
}

// New returns an empty index.
func New() *Index {
	return &Index{
		terms:   make(map[string][]posting),
		docs:    make(map[DocID]int),
		deleted: make(map[DocID]bool),
	}
}

// Tokenize splits text into lower-case terms: maximal runs of letters and
// digits. This matches the simple analyzer behaviour the evaluation
// queries assume.
func Tokenize(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Add indexes the text of a document. Adding a previously added document
// re-indexes it (the old postings are superseded via delete + re-add).
func (ix *Index) Add(doc DocID, text string) {
	tokens := Tokenize(text)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, exists := ix.docs[doc]; exists {
		ix.removeLocked(doc)
	}
	delete(ix.deleted, doc)
	ix.docs[doc] = len(tokens)
	perTerm := make(map[string][]uint32)
	for pos, tok := range tokens {
		perTerm[tok] = append(perTerm[tok], uint32(pos))
	}
	for term, positions := range perTerm {
		list := ix.terms[term]
		i := sort.Search(len(list), func(i int) bool { return list[i].doc >= doc })
		list = append(list, posting{})
		copy(list[i+1:], list[i:])
		list[i] = posting{doc: doc, positions: positions}
		ix.terms[term] = list
	}
}

// Delete removes a document from the index. Deletion is a tombstone:
// postings are filtered at query time, as in Lucene.
func (ix *Index) Delete(doc DocID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docs[doc]; ok {
		ix.deleted[doc] = true
		delete(ix.docs, doc)
	}
}

// removeLocked physically removes a document's postings (used on
// re-index, where tombstoning would hide the new postings too).
func (ix *Index) removeLocked(doc DocID) {
	delete(ix.docs, doc)
	for term, list := range ix.terms {
		i := sort.Search(len(list), func(i int) bool { return list[i].doc >= doc })
		if i < len(list) && list[i].doc == doc {
			list = append(list[:i], list[i+1:]...)
			if len(list) == 0 {
				delete(ix.terms, term)
			} else {
				ix.terms[term] = list
			}
		}
	}
}

// Compact physically removes tombstoned postings, reclaiming the space
// deletions left behind — the analogue of a Lucene segment merge. It
// returns the number of postings dropped.
func (ix *Index) Compact() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.deleted) == 0 {
		return 0
	}
	dropped := 0
	for term, list := range ix.terms {
		kept := list[:0]
		for _, p := range list {
			if ix.deleted[p.doc] {
				dropped++
				continue
			}
			kept = append(kept, p)
		}
		if len(kept) == 0 {
			delete(ix.terms, term)
		} else {
			ix.terms[term] = kept
		}
	}
	ix.deleted = make(map[DocID]bool)
	return dropped
}

// TombstoneCount returns the number of deleted documents whose postings
// have not been compacted away yet.
func (ix *Index) TombstoneCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.deleted)
}

// DocCount returns the number of live documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// TermCount returns the number of distinct terms.
func (ix *Index) TermCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.terms)
}

// PostingLen returns the posting-list length of a term — an O(1) upper
// bound on the documents containing it (tombstoned documents are still
// counted until Compact). Planner statistics surface.
func (ix *Index) PostingLen(term string) int {
	toks := Tokenize(term)
	if len(toks) != 1 {
		return 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.terms[toks[0]])
}

// PhraseCardUpper bounds the number of documents containing the phrase:
// a phrase match requires every token, so the shortest posting list of
// its tokens bounds the result. O(tokens) with no list materialization.
func (ix *Index) PhraseCardUpper(phrase string) int {
	toks := Tokenize(phrase)
	if len(toks) == 0 {
		return 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	min := -1
	for _, t := range toks {
		n := len(ix.terms[t])
		if min < 0 || n < min {
			min = n
		}
	}
	return min
}

// SizeBytes estimates the on-disk footprint of the index as a
// Lucene-style compressed postings file would store it: term dictionary
// entries, delta+vint encoded document ids with frequencies (~5 bytes
// per posting) and delta+vint encoded positions (~2 bytes each). This
// feeds the Table 3 reproduction, whose prototype used Lucene 1.4.3.
func (ix *Index) SizeBytes() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var n int64
	for term, list := range ix.terms {
		n += int64(len(term)) + 12
		for _, p := range list {
			n += 5 + int64(len(p.positions))*2
		}
	}
	n += int64(len(ix.docs)) * 8
	return n
}

// Lookup returns the ids of live documents containing the term, in
// ascending order. The term is normalized through the tokenizer.
func (ix *Index) Lookup(term string) []DocID {
	toks := Tokenize(term)
	if len(toks) != 1 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.lookupLocked(toks[0])
}

func (ix *Index) lookupLocked(term string) []DocID {
	list := ix.terms[term]
	out := make([]DocID, 0, len(list))
	for _, p := range list {
		if !ix.deleted[p.doc] {
			out = append(out, p.doc)
		}
	}
	return out
}

// And returns documents containing every given term.
func (ix *Index) And(terms ...string) []DocID {
	if len(terms) == 0 {
		return nil
	}
	result := ix.Lookup(terms[0])
	for _, t := range terms[1:] {
		result = intersect(result, ix.Lookup(t))
		if len(result) == 0 {
			return nil
		}
	}
	return result
}

// Or returns documents containing at least one of the given terms.
func (ix *Index) Or(terms ...string) []DocID {
	var result []DocID
	for _, t := range terms {
		result = union(result, ix.Lookup(t))
	}
	return result
}

// Hit is one scored phrase match: the document and the number of
// occurrences of the phrase within it.
type Hit struct {
	Doc  DocID
	Freq int
}

// Phrase returns documents containing the exact token sequence of the
// phrase (consecutive positions). A single-token phrase degenerates to
// Lookup.
func (ix *Index) Phrase(phrase string) []DocID {
	hits := ix.PhraseHits(phrase)
	if len(hits) == 0 {
		return nil
	}
	out := make([]DocID, len(hits))
	for i, h := range hits {
		out[i] = h.Doc
	}
	return out
}

// PhraseHits is Phrase with per-document occurrence counts, in ascending
// document order — the term-frequency signal result ranking uses.
func (ix *Index) PhraseHits(phrase string) []Hit {
	toks := Tokenize(phrase)
	if len(toks) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(toks) == 1 {
		list := ix.terms[toks[0]]
		out := make([]Hit, 0, len(list))
		for _, p := range list {
			if !ix.deleted[p.doc] {
				out = append(out, Hit{Doc: p.doc, Freq: len(p.positions)})
			}
		}
		return out
	}
	// Intersect posting lists positionally.
	lists := make([][]posting, len(toks))
	for i, t := range toks {
		lists[i] = ix.terms[t]
		if len(lists[i]) == 0 {
			return nil
		}
	}
	var out []Hit
	for _, p0 := range lists[0] {
		if ix.deleted[p0.doc] {
			continue
		}
		candidate := p0.positions
		for i := 1; i < len(lists); i++ {
			p := findPosting(lists[i], p0.doc)
			if p == nil {
				candidate = nil
				break
			}
			candidate = shiftIntersect(candidate, p.positions, uint32(i))
			if len(candidate) == 0 {
				break
			}
		}
		if len(candidate) > 0 {
			out = append(out, Hit{Doc: p0.doc, Freq: len(candidate)})
		}
	}
	return out
}

// MatchTerms returns all distinct terms with the given prefix, in sorted
// order; the empty prefix returns every term. Planner support for
// wildcard keywords.
func (ix *Index) MatchTerms(prefix string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []string
	for t := range ix.terms {
		if strings.HasPrefix(t, prefix) {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

func findPosting(list []posting, doc DocID) *posting {
	i := sort.Search(len(list), func(i int) bool { return list[i].doc >= doc })
	if i < len(list) && list[i].doc == doc {
		return &list[i]
	}
	return nil
}

// shiftIntersect keeps base positions p such that p+offset appears in
// next.
func shiftIntersect(base, next []uint32, offset uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(base) && j < len(next) {
		want := base[i] + offset
		switch {
		case next[j] < want:
			j++
		case next[j] > want:
			i++
		default:
			out = append(out, base[i])
			i++
			j++
		}
	}
	return out
}

func intersect(a, b []DocID) []DocID {
	var out []DocID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func union(a, b []DocID) []DocID {
	out := make([]DocID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
