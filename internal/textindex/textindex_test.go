package textindex

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func seedIndex() *Index {
	ix := New()
	ix.Add(1, "Database tuning is an art")
	ix.Add(2, "database systems and database tuning")
	ix.Add(3, "The art of computer programming, by Donald Knuth")
	ix.Add(4, "tuning forks are not database related")
	return ix
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Database tuning", []string{"database", "tuning"}},
		{"Mike Franklin's", []string{"mike", "franklin", "s"}},
		{"  ", nil},
		{"a-b_c", []string{"a", "b", "c"}},
		{"VLDB2006", []string{"vldb2006"}},
		{"Ünïcode Wörds", []string{"ünïcode", "wörds"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLookup(t *testing.T) {
	ix := seedIndex()
	got := ix.Lookup("database")
	want := []DocID{1, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Lookup(database) = %v, want %v", got, want)
	}
	if got := ix.Lookup("DATABASE"); !reflect.DeepEqual(got, want) {
		t.Errorf("lookup must normalize case: %v", got)
	}
	if got := ix.Lookup("missing"); len(got) != 0 {
		t.Errorf("Lookup(missing) = %v", got)
	}
	if got := ix.Lookup("two words"); got != nil {
		t.Errorf("multi-token lookup = %v, want nil", got)
	}
}

func TestAndOr(t *testing.T) {
	ix := seedIndex()
	if got := ix.And("database", "tuning"); !reflect.DeepEqual(got, []DocID{1, 2, 4}) {
		t.Errorf("And = %v", got)
	}
	if got := ix.And("database", "knuth"); len(got) != 0 {
		t.Errorf("And disjoint = %v", got)
	}
	if got := ix.Or("knuth", "forks"); !reflect.DeepEqual(got, []DocID{3, 4}) {
		t.Errorf("Or = %v", got)
	}
	if got := ix.And(); got != nil {
		t.Errorf("And() = %v", got)
	}
}

func TestPhrase(t *testing.T) {
	ix := seedIndex()
	// "database tuning" is consecutive in docs 1 and 2, but doc 4 has
	// the words non-adjacent.
	got := ix.Phrase("database tuning")
	if !reflect.DeepEqual(got, []DocID{1, 2}) {
		t.Errorf("Phrase = %v, want [1 2]", got)
	}
	if got := ix.Phrase("Donald Knuth"); !reflect.DeepEqual(got, []DocID{3}) {
		t.Errorf("Phrase(Donald Knuth) = %v", got)
	}
	if got := ix.Phrase("tuning database"); len(got) != 0 {
		t.Errorf("reversed phrase = %v", got)
	}
	if got := ix.Phrase(""); got != nil {
		t.Errorf("empty phrase = %v", got)
	}
	if got := ix.Phrase("database"); !reflect.DeepEqual(got, []DocID{1, 2, 4}) {
		t.Errorf("single-token phrase = %v", got)
	}
}

func TestPhraseRepeatedToken(t *testing.T) {
	ix := New()
	ix.Add(7, "data data data model")
	if got := ix.Phrase("data data model"); !reflect.DeepEqual(got, []DocID{7}) {
		t.Errorf("repeated-token phrase = %v", got)
	}
	if got := ix.Phrase("data model data"); len(got) != 0 {
		t.Errorf("wrong order = %v", got)
	}
}

func TestPhraseHitsFrequencies(t *testing.T) {
	ix := New()
	ix.Add(1, "data model data model data")
	ix.Add(2, "data model")
	hits := ix.PhraseHits("data model")
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Doc != 1 || hits[0].Freq != 2 {
		t.Errorf("doc 1 hit = %+v, want freq 2", hits[0])
	}
	if hits[1].Doc != 2 || hits[1].Freq != 1 {
		t.Errorf("doc 2 hit = %+v", hits[1])
	}
	// Single-token frequencies count every occurrence.
	single := ix.PhraseHits("data")
	if single[0].Freq != 3 {
		t.Errorf("single-token freq = %d, want 3", single[0].Freq)
	}
	if got := ix.PhraseHits("missing phrase"); got != nil {
		t.Errorf("missing = %v", got)
	}
}

func TestDelete(t *testing.T) {
	ix := seedIndex()
	ix.Delete(2)
	if got := ix.Lookup("database"); !reflect.DeepEqual(got, []DocID{1, 4}) {
		t.Errorf("after delete: %v", got)
	}
	if got := ix.Phrase("database tuning"); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("phrase after delete: %v", got)
	}
	if ix.DocCount() != 3 {
		t.Errorf("doc count = %d", ix.DocCount())
	}
	ix.Delete(99) // unknown: no-op
}

func TestCompact(t *testing.T) {
	ix := seedIndex()
	sizeBefore := ix.SizeBytes()
	ix.Delete(1)
	ix.Delete(3)
	if ix.TombstoneCount() != 2 {
		t.Fatalf("tombstones = %d", ix.TombstoneCount())
	}
	dropped := ix.Compact()
	if dropped == 0 {
		t.Error("nothing compacted")
	}
	if ix.TombstoneCount() != 0 {
		t.Error("tombstones survive compaction")
	}
	if ix.SizeBytes() >= sizeBefore {
		t.Errorf("size did not shrink: %d → %d", sizeBefore, ix.SizeBytes())
	}
	// Queries agree before and after compaction.
	if got := ix.Lookup("database"); !reflect.DeepEqual(got, []DocID{2, 4}) {
		t.Errorf("after compact: %v", got)
	}
	if got := ix.Phrase("database tuning"); !reflect.DeepEqual(got, []DocID{2}) {
		t.Errorf("phrase after compact: %v", got)
	}
	// Idempotent.
	if ix.Compact() != 0 {
		t.Error("second compact dropped postings")
	}
	// Deleted docs can be re-added after compaction.
	ix.Add(1, "revived database")
	if got := ix.Lookup("revived"); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("revive after compact: %v", got)
	}
}

func TestReAdd(t *testing.T) {
	ix := seedIndex()
	ix.Add(1, "completely different words now")
	if got := ix.Lookup("database"); !reflect.DeepEqual(got, []DocID{2, 4}) {
		t.Errorf("old postings survive re-add: %v", got)
	}
	if got := ix.Lookup("completely"); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("new postings missing: %v", got)
	}
	// Delete then re-add revives the document.
	ix.Delete(1)
	ix.Add(1, "revived text")
	if got := ix.Lookup("revived"); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("revived doc not found: %v", got)
	}
}

func TestMatchTerms(t *testing.T) {
	ix := seedIndex()
	got := ix.MatchTerms("tun")
	if !reflect.DeepEqual(got, []string{"tuning"}) {
		t.Errorf("MatchTerms(tun) = %v", got)
	}
	all := ix.MatchTerms("")
	if len(all) != ix.TermCount() {
		t.Errorf("MatchTerms(\"\") returned %d of %d terms", len(all), ix.TermCount())
	}
	if !sort.StringsAreSorted(all) {
		t.Error("terms not sorted")
	}
}

func TestSizeBytesGrows(t *testing.T) {
	ix := New()
	empty := ix.SizeBytes()
	ix.Add(1, "some words to index")
	if ix.SizeBytes() <= empty {
		t.Error("size did not grow after Add")
	}
}

func TestCounts(t *testing.T) {
	ix := seedIndex()
	if ix.DocCount() != 4 {
		t.Errorf("docs = %d", ix.DocCount())
	}
	if ix.TermCount() == 0 {
		t.Error("no terms")
	}
}

// Property: every document added with a sentinel token is found by that
// token, results are sorted and duplicate-free, and And is a subset of
// each term's postings.
func TestIndexPropertyQuick(t *testing.T) {
	f := func(texts []string) bool {
		ix := New()
		for i, txt := range texts {
			ix.Add(DocID(i+1), txt+" sentinelterm")
		}
		got := ix.Lookup("sentinelterm")
		if len(got) != len(texts) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		and := ix.And("sentinelterm", "sentinelterm")
		if len(and) != len(got) {
			return false
		}
		for i := range and {
			if and[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: union and intersection of sorted DocID lists keep sortedness
// and satisfy |A∩B| + |A∪B| = |A| + |B|.
func TestSetOpsPropertyQuick(t *testing.T) {
	f := func(a8, b8 []uint8) bool {
		a := dedupSorted(a8)
		b := dedupSorted(b8)
		in := intersect(a, b)
		un := union(a, b)
		if len(in)+len(un) != len(a)+len(b) {
			return false
		}
		for i := 1; i < len(un); i++ {
			if un[i] <= un[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func dedupSorted(xs []uint8) []DocID {
	seen := make(map[DocID]bool)
	var out []DocID
	for _, x := range xs {
		d := DocID(x)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
