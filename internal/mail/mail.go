// Package mail implements a simulated IMAP-style email store: the email
// substrate of §4.4.1 of the iDM paper. It provides a folder hierarchy,
// RFC-822-flavoured messages with headers, bodies and MIME-like
// attachments, a new-message notification feed (for the push-based
// Option 2 stream modelling) and a configurable per-operation latency
// model.
//
// The latency model substitutes for the remote IMAP server of the
// paper's evaluation: Figure 5's finding — email indexing time dominated
// by data-source access — is a property of remote access cost, which the
// model reproduces without a network.
package mail

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Common errors.
var (
	ErrNoFolder  = errors.New("mail: no such folder")
	ErrNoMessage = errors.New("mail: no such message")
	ErrExists    = errors.New("mail: folder already exists")
)

// Attachment is one MIME-like message part with a filename.
type Attachment struct {
	Filename    string
	ContentType string
	Data        []byte
}

// Message is one email message.
type Message struct {
	// UID is the store-wide unique, monotonically increasing id.
	UID uint64
	// Folder is the full name of the folder holding the message.
	Folder string
	From   string
	To     []string
	CC     []string
	// Subject serves as the message's display name in iDM.
	Subject     string
	Date        time.Time
	Body        string
	Attachments []Attachment
}

// Size returns the approximate wire size of the message: headers, body
// and attachment bytes.
func (m *Message) Size() int64 {
	n := int64(len(m.From) + len(m.Subject) + len(m.Body) + 64)
	for _, t := range m.To {
		n += int64(len(t))
	}
	for _, c := range m.CC {
		n += int64(len(c))
	}
	for _, a := range m.Attachments {
		n += int64(len(a.Filename) + len(a.Data))
	}
	return n
}

// Latency configures the simulated cost of talking to the store, as a
// remote IMAP client would experience it.
type Latency struct {
	// PerCall is charged on every store operation (round trip).
	PerCall time.Duration
	// PerKB is charged per kilobyte of message data fetched.
	PerKB time.Duration
}

func (l Latency) charge(bytes int64) {
	d := l.PerCall + time.Duration(bytes/1024)*l.PerKB
	if d > 0 {
		time.Sleep(d)
	}
}

// Store is an in-memory message store with simulated access latency.
// Store is safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	folders  map[string][]*Message
	nextUID  uint64
	latency  Latency
	watchers []chan *Message
	closed   bool

	// Calls counts store operations, for access-cost accounting.
	calls int64
}

// NewStore returns an empty store with zero latency.
func NewStore() *Store {
	return &Store{folders: map[string][]*Message{"INBOX": nil}}
}

// SetLatency configures the simulated access latency. Safe to call
// before handing the store to consumers.
func (s *Store) SetLatency(l Latency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latency = l
}

// Calls returns the number of store operations performed so far.
func (s *Store) Calls() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.calls
}

// CreateFolder creates a folder with the given full name (segments
// separated by '/'). Parent folders are created implicitly, matching
// IMAP semantics where the hierarchy is derived from names.
func (s *Store) CreateFolder(name string) error {
	name = strings.Trim(name, "/")
	if name == "" {
		return fmt.Errorf("mail: empty folder name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.folders[name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	parts := strings.Split(name, "/")
	for i := range parts {
		prefix := strings.Join(parts[:i+1], "/")
		if _, ok := s.folders[prefix]; !ok {
			s.folders[prefix] = nil
		}
	}
	return nil
}

// Folders lists all folder names in sorted order. The call is charged
// one round trip.
func (s *Store) Folders() []string {
	s.mu.Lock()
	s.calls++
	l := s.latency
	out := make([]string, 0, len(s.folders))
	for n := range s.folders {
		out = append(out, n)
	}
	s.mu.Unlock()
	l.charge(0)
	sort.Strings(out)
	return out
}

// Append delivers a message into its folder, assigning its UID. The
// folder must exist. Watchers are notified.
func (s *Store) Append(m *Message) (uint64, error) {
	s.mu.Lock()
	if _, ok := s.folders[m.Folder]; !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrNoFolder, m.Folder)
	}
	s.nextUID++
	m.UID = s.nextUID
	s.folders[m.Folder] = append(s.folders[m.Folder], m)
	watchers := append([]chan *Message(nil), s.watchers...)
	closed := s.closed
	s.mu.Unlock()
	if !closed {
		for _, ch := range watchers {
			select {
			case ch <- m:
			default:
			}
		}
	}
	return m.UID, nil
}

// UIDs lists the message UIDs in a folder in ascending order. One round
// trip is charged.
func (s *Store) UIDs(folder string) ([]uint64, error) {
	s.mu.Lock()
	s.calls++
	l := s.latency
	msgs, ok := s.folders[folder]
	var out []uint64
	if ok {
		out = make([]uint64, len(msgs))
		for i, m := range msgs {
			out[i] = m.UID
		}
	}
	s.mu.Unlock()
	l.charge(0)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFolder, folder)
	}
	return out, nil
}

// Fetch retrieves one message by folder and UID. A round trip plus the
// message's size is charged.
func (s *Store) Fetch(folder string, uid uint64) (*Message, error) {
	s.mu.Lock()
	s.calls++
	l := s.latency
	msgs, ok := s.folders[folder]
	var found *Message
	if ok {
		for _, m := range msgs {
			if m.UID == uid {
				found = m
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		l.charge(0)
		return nil, fmt.Errorf("%w: %q", ErrNoFolder, folder)
	}
	if found == nil {
		l.charge(0)
		return nil, fmt.Errorf("%w: %s/%d", ErrNoMessage, folder, uid)
	}
	l.charge(found.Size())
	return found, nil
}

// Delete removes a message from its folder.
func (s *Store) Delete(folder string, uid uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	msgs, ok := s.folders[folder]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoFolder, folder)
	}
	for i, m := range msgs {
		if m.UID == uid {
			s.folders[folder] = append(msgs[:i], msgs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: %s/%d", ErrNoMessage, folder, uid)
}

// PollSince returns all messages across folders with UID greater than
// since, in UID order — the generic polling facility of §4.4.1 that turns
// the mailbox state into a pseudo data stream.
func (s *Store) PollSince(since uint64) []*Message {
	s.mu.Lock()
	s.calls++
	l := s.latency
	var out []*Message
	for _, msgs := range s.folders {
		for _, m := range msgs {
			if m.UID > since {
				out = append(out, m)
			}
		}
	}
	s.mu.Unlock()
	l.charge(0)
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out
}

// Watch returns a channel of newly appended messages — the push-based
// message stream of Option 2 in §4.4.1. Events are dropped when the
// subscriber is slow.
func (s *Store) Watch() <-chan *Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan *Message, 1024)
	s.watchers = append(s.watchers, ch)
	return ch
}

// CloseWatchers closes all watcher channels.
func (s *Store) CloseWatchers() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.watchers {
		close(ch)
	}
	s.watchers = nil
}

// Stats summarizes the store contents.
type Stats struct {
	Folders     int
	Messages    int
	Attachments int
	TotalBytes  int64
}

// Stats walks all folders and returns counts and total message bytes.
// No latency is charged; Stats is a harness-side accounting helper, not
// a client operation.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st Stats
	st.Folders = len(s.folders)
	for _, msgs := range s.folders {
		for _, m := range msgs {
			st.Messages++
			st.Attachments += len(m.Attachments)
			st.TotalBytes += m.Size()
		}
	}
	return st
}
