package mail

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func seedStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.CreateFolder("Projects/OLAP"); err != nil {
		t.Fatal(err)
	}
	for i, subj := range []string{"OLAP kickoff", "indexing results", "final report"} {
		m := &Message{
			Folder:  "Projects/OLAP",
			From:    "alice@example.org",
			To:      []string{"jens.dittrich@inf.ethz.ch"},
			Subject: subj,
			Date:    time.Date(2005, 6, 1+i, 9, 0, 0, 0, time.UTC),
			Body:    "body of " + subj,
		}
		if i == 1 {
			m.Attachments = append(m.Attachments, Attachment{
				Filename: "results.tex", ContentType: "application/x-tex",
				Data: []byte("\\section{Results}"),
			})
		}
		if _, err := s.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestCreateFolderImplicitParents(t *testing.T) {
	s := NewStore()
	if err := s.CreateFolder("a/b/c"); err != nil {
		t.Fatal(err)
	}
	folders := s.Folders()
	want := map[string]bool{"INBOX": true, "a": true, "a/b": true, "a/b/c": true}
	if len(folders) != len(want) {
		t.Fatalf("folders = %v", folders)
	}
	for _, f := range folders {
		if !want[f] {
			t.Errorf("unexpected folder %q", f)
		}
	}
}

func TestCreateFolderErrors(t *testing.T) {
	s := NewStore()
	if err := s.CreateFolder(""); err == nil {
		t.Error("empty name accepted")
	}
	s.CreateFolder("x")
	if err := s.CreateFolder("x"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestAppendAssignsMonotonicUIDs(t *testing.T) {
	s := seedStore(t)
	uids, err := s.UIDs("Projects/OLAP")
	if err != nil {
		t.Fatal(err)
	}
	if len(uids) != 3 {
		t.Fatalf("uids = %v", uids)
	}
	for i := 1; i < len(uids); i++ {
		if uids[i] <= uids[i-1] {
			t.Errorf("UIDs not increasing: %v", uids)
		}
	}
}

func TestAppendToMissingFolder(t *testing.T) {
	s := NewStore()
	if _, err := s.Append(&Message{Folder: "nope"}); !errors.Is(err, ErrNoFolder) {
		t.Errorf("err = %v", err)
	}
}

func TestFetch(t *testing.T) {
	s := seedStore(t)
	uids, _ := s.UIDs("Projects/OLAP")
	m, err := s.Fetch("Projects/OLAP", uids[1])
	if err != nil {
		t.Fatal(err)
	}
	if m.Subject != "indexing results" || len(m.Attachments) != 1 {
		t.Errorf("fetched %+v", m)
	}
	if _, err := s.Fetch("Projects/OLAP", 999); !errors.Is(err, ErrNoMessage) {
		t.Errorf("missing uid: %v", err)
	}
	if _, err := s.Fetch("nope", 1); !errors.Is(err, ErrNoFolder) {
		t.Errorf("missing folder: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := seedStore(t)
	uids, _ := s.UIDs("Projects/OLAP")
	if err := s.Delete("Projects/OLAP", uids[0]); err != nil {
		t.Fatal(err)
	}
	after, _ := s.UIDs("Projects/OLAP")
	if len(after) != 2 {
		t.Errorf("after delete: %v", after)
	}
	if err := s.Delete("Projects/OLAP", uids[0]); !errors.Is(err, ErrNoMessage) {
		t.Errorf("double delete: %v", err)
	}
}

func TestPollSince(t *testing.T) {
	s := seedStore(t)
	all := s.PollSince(0)
	if len(all) != 3 {
		t.Fatalf("poll all = %d", len(all))
	}
	rest := s.PollSince(all[0].UID)
	if len(rest) != 2 {
		t.Errorf("poll since first = %d", len(rest))
	}
	for i := 1; i < len(all); i++ {
		if all[i].UID <= all[i-1].UID {
			t.Error("poll results not UID-ordered")
		}
	}
}

func TestWatchPush(t *testing.T) {
	s := NewStore()
	ch := s.Watch()
	s.CreateFolder("f")
	s.Append(&Message{Folder: "f", Subject: "hello"})
	select {
	case m := <-ch:
		if m.Subject != "hello" {
			t.Errorf("pushed %q", m.Subject)
		}
	case <-time.After(time.Second):
		t.Fatal("no push notification")
	}
	s.CloseWatchers()
	if _, ok := <-ch; ok {
		t.Error("channel not closed")
	}
	// Appending after close must not panic.
	s.Append(&Message{Folder: "f", Subject: "late"})
}

func TestMessageSize(t *testing.T) {
	m := &Message{
		From: "a@b", To: []string{"c@d"}, Subject: "s", Body: "bb",
		Attachments: []Attachment{{Filename: "f", Data: []byte("xyz")}},
	}
	if m.Size() <= 0 {
		t.Error("size must be positive")
	}
	bare := &Message{}
	if m.Size() <= bare.Size() {
		t.Error("size must grow with content")
	}
}

func TestLatencyCharged(t *testing.T) {
	s := seedStore(t)
	s.SetLatency(Latency{PerCall: 2 * time.Millisecond})
	start := time.Now()
	s.Folders()
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("latency not charged: %v", elapsed)
	}
	if s.Calls() == 0 {
		t.Error("calls not counted")
	}
}

func TestStats(t *testing.T) {
	s := seedStore(t)
	st := s.Stats()
	if st.Messages != 3 || st.Attachments != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Folders != 3 { // INBOX, Projects, Projects/OLAP
		t.Errorf("folders = %d", st.Folders)
	}
	if st.TotalBytes <= 0 {
		t.Error("bytes not accounted")
	}
}

// Property: appending n messages yields n UIDs, strictly increasing, and
// PollSince(0) returns them all in order.
func TestAppendPollPropertyQuick(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%50) + 1
		s := NewStore()
		for i := 0; i < count; i++ {
			if _, err := s.Append(&Message{Folder: "INBOX", Subject: "m"}); err != nil {
				return false
			}
		}
		got := s.PollSince(0)
		if len(got) != count {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].UID <= got[i-1].UID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
