// Package relstore implements a minimal embedded relational store: the
// relational substrate behind the tuple / relation / reldb resource view
// classes of Table 1 in the iDM paper. It supports named relations with
// per-relation schemas, tuple insertion with domain checking, full
// scans, and simple predicate selection — exactly the surface an iDM
// Data Source Plugin needs to expose a "relational database" subsystem
// as resource views.
package relstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Common errors.
var (
	ErrNoRelation = errors.New("relstore: no such relation")
	ErrExists     = errors.New("relstore: relation already exists")
)

// Relation is one named relation: a schema plus a bag of tuples.
type Relation struct {
	name   string
	schema core.Schema
	tuples []core.Tuple
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() core.Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// DB is an embedded relational database: a set of named relations.
// DB is safe for concurrent use.
type DB struct {
	mu        sync.RWMutex
	name      string
	relations map[string]*Relation
}

// NewDB returns an empty database with the given name (the η of its
// reldb resource view).
func NewDB(name string) *DB {
	return &DB{name: name, relations: make(map[string]*Relation)}
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// CreateRelation creates an empty relation with the given schema.
func (db *DB) CreateRelation(name string, schema core.Schema) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("relstore: empty relation name")
	}
	if len(schema) == 0 {
		return nil, fmt.Errorf("relstore: relation %q needs a schema", name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.relations[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	r := &Relation{name: name, schema: append(core.Schema(nil), schema...)}
	db.relations[name] = r
	return r, nil
}

// Relation returns the named relation.
func (db *DB) Relation(name string) (*Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoRelation, name)
	}
	return r, nil
}

// Relations lists relation names in sorted order.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.relations))
	for n := range db.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert appends a tuple to the named relation after validating it
// against the relation schema.
func (db *DB) Insert(relation string, t core.Tuple) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.relations[relation]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRelation, relation)
	}
	tc := core.TupleComponent{Schema: r.schema, Tuple: t}
	if err := tc.Validate(); err != nil {
		return fmt.Errorf("relstore: insert into %q: %w", relation, err)
	}
	r.tuples = append(r.tuples, append(core.Tuple(nil), t...))
	return nil
}

// Scan calls fn for every tuple of the relation in insertion order,
// stopping early when fn returns false.
func (db *DB) Scan(relation string, fn func(core.Tuple) bool) error {
	db.mu.RLock()
	r, ok := db.relations[relation]
	if !ok {
		db.mu.RUnlock()
		return fmt.Errorf("%w: %q", ErrNoRelation, relation)
	}
	tuples := r.tuples
	db.mu.RUnlock()
	for _, t := range tuples {
		if !fn(t) {
			return nil
		}
	}
	return nil
}

// Select returns all tuples for which pred returns true.
func (db *DB) Select(relation string, pred func(core.Tuple) bool) ([]core.Tuple, error) {
	var out []core.Tuple
	err := db.Scan(relation, func(t core.Tuple) bool {
		if pred(t) {
			out = append(out, t)
		}
		return true
	})
	return out, err
}

// ToViews exposes the database as an iDM resource view graph per Table 1:
// one reldb view whose group set holds one relation view per relation,
// each of which holds one tuple view per tuple (schema in W, the single
// tuple in T). Tuple views are generated lazily so that large relations
// need not be materialized as views up front.
func (db *DB) ToViews() core.ResourceView {
	db.mu.RLock()
	names := make([]string, 0, len(db.relations))
	for n := range db.relations {
		names = append(names, n)
	}
	db.mu.RUnlock()
	sort.Strings(names)

	relViews := make([]core.ResourceView, 0, len(names))
	for _, name := range names {
		name := name
		relViews = append(relViews, &core.LazyView{
			VName:  name,
			VClass: core.ClassRelation,
			GroupFn: func() core.Group {
				r, err := db.Relation(name)
				if err != nil {
					return core.EmptyGroup()
				}
				db.mu.RLock()
				tuples := append([]core.Tuple(nil), r.tuples...)
				schema := r.schema
				db.mu.RUnlock()
				tupleViews := make([]core.ResourceView, len(tuples))
				for i, t := range tuples {
					tupleViews[i] = &core.StaticView{
						VClass: core.ClassTuple,
						VTuple: core.TupleComponent{Schema: schema, Tuple: t},
					}
				}
				return core.SetGroup(tupleViews...)
			},
		})
	}
	return core.NewView(db.name, core.ClassRelDB).WithGroup(core.SetGroup(relViews...))
}
