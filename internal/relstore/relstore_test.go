package relstore

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

var contactsSchema = core.Schema{
	{Name: "name", Domain: core.DomainString},
	{Name: "age", Domain: core.DomainInt},
}

func seedDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB("addressbook")
	if _, err := db.CreateRelation("contacts", contactsSchema); err != nil {
		t.Fatal(err)
	}
	rows := []core.Tuple{
		{core.String("Donald Knuth"), core.Int(68)},
		{core.String("Mike Franklin"), core.Int(40)},
		{core.String("Edgar Codd"), core.Int(82)},
	}
	for _, r := range rows {
		if err := db.Insert("contacts", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateRelationErrors(t *testing.T) {
	db := NewDB("d")
	if _, err := db.CreateRelation("", contactsSchema); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := db.CreateRelation("r", nil); err == nil {
		t.Error("empty schema accepted")
	}
	db.CreateRelation("r", contactsSchema)
	if _, err := db.CreateRelation("r", contactsSchema); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	db := seedDB(t)
	if err := db.Insert("contacts", core.Tuple{core.String("x")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := db.Insert("contacts", core.Tuple{core.Int(1), core.Int(2)}); err == nil {
		t.Error("domain mismatch accepted")
	}
	if err := db.Insert("nope", core.Tuple{}); !errors.Is(err, ErrNoRelation) {
		t.Errorf("missing relation: %v", err)
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	db := NewDB("d")
	db.CreateRelation("r", core.Schema{{Name: "v", Domain: core.DomainInt}})
	row := core.Tuple{core.Int(1)}
	db.Insert("r", row)
	row[0] = core.Int(99)
	got, _ := db.Select("r", func(core.Tuple) bool { return true })
	if got[0][0].Int != 1 {
		t.Error("insert did not copy the tuple")
	}
}

func TestScanAndSelect(t *testing.T) {
	db := seedDB(t)
	n := 0
	if err := db.Scan("contacts", func(core.Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("scanned %d tuples", n)
	}
	// Early stop.
	n = 0
	db.Scan("contacts", func(core.Tuple) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop scanned %d", n)
	}
	old, err := db.Select("contacts", func(tup core.Tuple) bool { return tup[1].Int > 60 })
	if err != nil || len(old) != 2 {
		t.Errorf("select: %d tuples, %v", len(old), err)
	}
	if err := db.Scan("nope", func(core.Tuple) bool { return true }); !errors.Is(err, ErrNoRelation) {
		t.Errorf("scan missing: %v", err)
	}
}

func TestRelationsSorted(t *testing.T) {
	db := NewDB("d")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		db.CreateRelation(n, contactsSchema)
	}
	names := db.Relations()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("relations = %v", names)
	}
}

func TestToViewsShape(t *testing.T) {
	db := seedDB(t)
	root := db.ToViews()
	if root.Name() != "addressbook" || root.Class() != core.ClassRelDB {
		t.Errorf("root: name=%q class=%q", root.Name(), root.Class())
	}
	rels, _ := core.CollectViews(root.Group().Set, 0)
	if len(rels) != 1 || rels[0].Name() != "contacts" || rels[0].Class() != core.ClassRelation {
		t.Fatalf("relation views = %v", rels)
	}
	tuples, _ := core.CollectViews(rels[0].Group().Set, 0)
	if len(tuples) != 3 {
		t.Fatalf("tuple views = %d", len(tuples))
	}
	for _, tv := range tuples {
		if tv.Class() != core.ClassTuple {
			t.Errorf("tuple view class = %q", tv.Class())
		}
		if tv.Name() != "" {
			t.Errorf("tuple views must be nameless (Table 1), got %q", tv.Name())
		}
		if _, ok := tv.Tuple().Get("name"); !ok {
			t.Error("tuple view lacks schema attribute")
		}
	}
	// The whole graph conforms to the standard classes.
	reg := core.StandardRegistry()
	err := core.Walk(root, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		return reg.Conforms(v, v.Class(), 0)
	})
	if err != nil {
		t.Errorf("conformance: %v", err)
	}
}

func TestToViewsLazySeesNewInserts(t *testing.T) {
	db := seedDB(t)
	root := db.ToViews()
	rels, _ := core.CollectViews(root.Group().Set, 0)
	// Insert after building the view graph but before forcing the lazy
	// group: the new tuple must appear (intensional component).
	db.Insert("contacts", core.Tuple{core.String("New"), core.Int(1)})
	tuples, _ := core.CollectViews(rels[0].Group().Set, 0)
	if len(tuples) != 4 {
		t.Errorf("lazy relation sees %d tuples, want 4", len(tuples))
	}
}

// Property: inserting n valid tuples yields n tuple views.
func TestInsertCountPropertyQuick(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n % 64)
		db := NewDB("d")
		db.CreateRelation("r", core.Schema{{Name: "v", Domain: core.DomainInt}})
		for i := 0; i < count; i++ {
			if err := db.Insert("r", core.Tuple{core.Int(int64(i))}); err != nil {
				return false
			}
		}
		root := db.ToViews()
		rels, _ := core.CollectViews(root.Group().Set, 0)
		tuples, err := core.CollectViews(rels[0].Group().Set, 0)
		return err == nil && len(tuples) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
