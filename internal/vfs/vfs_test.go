package vfs

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testClock() func() time.Time {
	t := time.Date(2005, 3, 19, 11, 54, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func buildPaperTree(t *testing.T) *FS {
	t.Helper()
	fs := NewWithClock(testClock())
	mustMkdir := func(p string) {
		if _, err := fs.Mkdir(p); err != nil {
			t.Fatalf("Mkdir(%q): %v", p, err)
		}
	}
	mustMkdir("/Projects")
	mustMkdir("/Projects/PIM")
	mustMkdir("/Projects/OLAP")
	if _, err := fs.WriteFile("/Projects/PIM/vldb 2006.tex", []byte("\\section{Introduction}")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteFile("/Projects/PIM/Grant.doc", []byte("grant proposal")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Link("/Projects/PIM/All Projects", "/Projects"); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestMkdirAndLookup(t *testing.T) {
	fs := buildPaperTree(t)
	n, err := fs.Lookup("/Projects/PIM")
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind() != KindFolder || n.Name() != "PIM" {
		t.Errorf("kind=%v name=%q", n.Kind(), n.Name())
	}
	if !fs.Exists("/Projects/OLAP") {
		t.Error("OLAP folder missing")
	}
	if fs.Exists("/Projects/Nope") {
		t.Error("phantom folder exists")
	}
}

func TestMkdirErrors(t *testing.T) {
	fs := New()
	if _, err := fs.Mkdir("/a/b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing parent: %v", err)
	}
	fs.Mkdir("/a")
	if _, err := fs.Mkdir("/a"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := fs.Mkdir("/"); !errors.Is(err, ErrIsRoot) {
		t.Errorf("root: %v", err)
	}
}

func TestMkdirAll(t *testing.T) {
	fs := New()
	n, err := fs.MkdirAll("/a/b/c")
	if err != nil || n.Name() != "c" {
		t.Fatalf("MkdirAll: %v, %v", n, err)
	}
	// Idempotent.
	if _, err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Errorf("second MkdirAll: %v", err)
	}
	fs.WriteFile("/a/f.txt", []byte("x"))
	if _, err := fs.MkdirAll("/a/f.txt/sub"); !errors.Is(err, ErrNotFolder) {
		t.Errorf("MkdirAll through file: %v", err)
	}
}

func TestWriteAndReadFile(t *testing.T) {
	fs := buildPaperTree(t)
	b, err := fs.ReadFile("/Projects/PIM/Grant.doc")
	if err != nil || string(b) != "grant proposal" {
		t.Fatalf("ReadFile: %q, %v", b, err)
	}
	// Overwrite updates content and modified time.
	before, _ := fs.Lookup("/Projects/PIM/Grant.doc")
	mBefore := before.Modified()
	fs.WriteFile("/Projects/PIM/Grant.doc", []byte("v2"))
	b, _ = fs.ReadFile("/Projects/PIM/Grant.doc")
	if string(b) != "v2" {
		t.Errorf("after overwrite: %q", b)
	}
	after, _ := fs.Lookup("/Projects/PIM/Grant.doc")
	if !after.Modified().After(mBefore) {
		t.Error("modified time not advanced")
	}
	if after.Size() != 2 {
		t.Errorf("size = %d, want 2", after.Size())
	}
	// Mutating the returned slice must not affect the stored content.
	b[0] = 'X'
	b2, _ := fs.ReadFile("/Projects/PIM/Grant.doc")
	if string(b2) != "v2" {
		t.Error("ReadFile does not copy")
	}
}

func TestReadFileErrors(t *testing.T) {
	fs := buildPaperTree(t)
	if _, err := fs.ReadFile("/Projects"); !errors.Is(err, ErrNotFile) {
		t.Errorf("read folder: %v", err)
	}
	if _, err := fs.ReadFile("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("read missing: %v", err)
	}
}

func TestLinkCreatesCycle(t *testing.T) {
	fs := buildPaperTree(t)
	link, err := fs.Lookup("/Projects/PIM/All Projects")
	if err != nil {
		t.Fatal(err)
	}
	if link.Kind() != KindLink {
		t.Fatalf("kind = %v", link.Kind())
	}
	projects, _ := fs.Lookup("/Projects")
	if link.Target() != projects {
		t.Error("link target mismatch")
	}
	// Paths may traverse links.
	n, err := fs.Lookup("/Projects/PIM/All Projects/PIM")
	if err != nil {
		t.Fatal(err)
	}
	pim, _ := fs.Lookup("/Projects/PIM")
	if n != pim {
		t.Error("traversal through link reached wrong node")
	}
}

func TestLinkErrors(t *testing.T) {
	fs := buildPaperTree(t)
	if _, err := fs.Link("/l", "/Projects/PIM/Grant.doc"); !errors.Is(err, ErrNotFolder) {
		t.Errorf("link to file: %v", err)
	}
	if _, err := fs.Link("/Projects", "/Projects"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate name: %v", err)
	}
}

func TestListSorted(t *testing.T) {
	fs := buildPaperTree(t)
	children, err := fs.List("/Projects/PIM")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range children {
		names = append(names, c.Name())
	}
	want := "All Projects,Grant.doc,vldb 2006.tex"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("children = %q, want %q", got, want)
	}
}

func TestRemove(t *testing.T) {
	fs := buildPaperTree(t)
	if err := fs.Remove("/Projects/OLAP"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/Projects/OLAP") {
		t.Error("removed folder still present")
	}
	if err := fs.Remove("/"); !errors.Is(err, ErrIsRoot) {
		t.Errorf("remove root: %v", err)
	}
	if err := fs.Remove("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("remove missing: %v", err)
	}
}

func TestCopy(t *testing.T) {
	fs := buildPaperTree(t)
	n, err := fs.Copy("/Projects/PIM/Grant.doc", "/Projects/OLAP/Grant-v2.doc")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "Grant-v2.doc" {
		t.Errorf("name = %q", n.Name())
	}
	b, _ := fs.ReadFile("/Projects/OLAP/Grant-v2.doc")
	if string(b) != "grant proposal" {
		t.Errorf("content = %q", b)
	}
	// The copy is independent of the original.
	fs.WriteFile("/Projects/PIM/Grant.doc", []byte("changed"))
	b, _ = fs.ReadFile("/Projects/OLAP/Grant-v2.doc")
	if string(b) != "grant proposal" {
		t.Error("copy aliases the original")
	}
	if _, err := fs.Copy("/Projects/PIM/Grant.doc", "/Projects/OLAP/Grant-v2.doc"); !errors.Is(err, ErrExists) {
		t.Errorf("overwrite via copy: %v", err)
	}
	if _, err := fs.Copy("/missing", "/x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("copy missing: %v", err)
	}
	if _, err := fs.Copy("/Projects", "/x"); !errors.Is(err, ErrNotFile) {
		t.Errorf("copy folder: %v", err)
	}
}

func TestPath(t *testing.T) {
	fs := buildPaperTree(t)
	n, _ := fs.Lookup("/Projects/PIM/Grant.doc")
	if p := fs.Path(n); p != "/Projects/PIM/Grant.doc" {
		t.Errorf("Path = %q", p)
	}
	if p := fs.Path(fs.Root()); p != "/" {
		t.Errorf("root path = %q", p)
	}
}

func TestStats(t *testing.T) {
	fs := buildPaperTree(t)
	s := fs.Stats()
	if s.Folders != 3 || s.Files != 2 || s.Links != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.TotalBytes != int64(len("\\section{Introduction}")+len("grant proposal")) {
		t.Errorf("bytes = %d", s.TotalBytes)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	fs := buildPaperTree(t)
	var paths []string
	err := fs.Walk(func(p string, n *Node) error {
		paths = append(paths, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// root + Projects + OLAP + PIM + 3 children of PIM
	if len(paths) != 7 {
		t.Errorf("walked %d paths: %v", len(paths), paths)
	}
	if paths[0] != "/" {
		t.Errorf("first path %q", paths[0])
	}
}

func TestWatchEvents(t *testing.T) {
	fs := New()
	ch := fs.Watch()
	fs.Mkdir("/a")
	fs.WriteFile("/a/f.txt", []byte("1"))
	fs.WriteFile("/a/f.txt", []byte("2"))
	fs.Remove("/a/f.txt")
	fs.CloseWatchers()

	var got []Event
	for e := range ch {
		got = append(got, e)
	}
	want := []Event{
		{EventCreate, "/a", KindFolder},
		{EventCreate, "/a/f.txt", KindFile},
		{EventModify, "/a/f.txt", KindFile},
		{EventRemove, "/a/f.txt", KindFile},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWatchAfterCloseSafe(t *testing.T) {
	fs := New()
	fs.CloseWatchers()
	fs.Mkdir("/a") // must not panic
	fs.CloseWatchers()
}

func TestKindAndEventStrings(t *testing.T) {
	if KindFolder.String() != "folder" || KindFile.String() != "file" || KindLink.String() != "link" {
		t.Error("Kind.String mismatch")
	}
	if EventCreate.String() != "create" || EventModify.String() != "modify" || EventRemove.String() != "remove" {
		t.Error("EventType.String mismatch")
	}
}

// Property: creating n distinct files under one folder yields exactly n
// children listed in sorted order, and Stats agrees.
func TestCreateListPropertyQuick(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%64) + 1
		fs := New()
		fs.Mkdir("/d")
		for i := 0; i < count; i++ {
			name := "/d/f" + strings.Repeat("a", i%7) + string(rune('a'+i%26)) + "-" + itoa(i)
			if _, err := fs.WriteFile(name, []byte{byte(i)}); err != nil {
				return false
			}
		}
		children, err := fs.List("/d")
		if err != nil || len(children) != count {
			return false
		}
		for i := 1; i < len(children); i++ {
			if children[i-1].Name() >= children[i].Name() {
				return false
			}
		}
		return fs.Stats().Files == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	return string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}
