// Package vfs implements an in-memory virtual filesystem: the
// files&folders substrate of §3.2 of the iDM paper. It provides folders,
// files with byte content, per-node metadata conforming to the
// filesystem-level schema W_FS (size, creation time, last modified time),
// folder links (which make the files&folders graph cyclic, as in Figure 1
// of the paper), and a change-notification feed standing in for the
// Mac OS X file-event subscription mentioned in §5.2.
//
// The vfs substitutes for the NTFS volume of the paper's evaluation; an
// iDM Data Source Plugin maps it to resource views.
package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Node kinds.
type Kind int

const (
	// KindFolder is a directory node.
	KindFolder Kind = iota
	// KindFile is a regular file node with byte content.
	KindFile
	// KindLink is a folder link: a named alias for another folder,
	// possibly an ancestor (creating a cycle).
	KindLink
)

func (k Kind) String() string {
	switch k {
	case KindFolder:
		return "folder"
	case KindFile:
		return "file"
	case KindLink:
		return "link"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Common errors.
var (
	ErrNotFound  = errors.New("vfs: no such file or folder")
	ErrExists    = errors.New("vfs: node already exists")
	ErrNotFolder = errors.New("vfs: not a folder")
	ErrNotFile   = errors.New("vfs: not a file")
	ErrIsRoot    = errors.New("vfs: operation not allowed on root")
)

// Node is one file, folder or link. Fields are managed by FS; read them
// only through FS methods or while holding no concurrent writers.
type Node struct {
	name     string
	kind     Kind
	parent   *Node
	children map[string]*Node // folders only
	content  []byte           // files only
	target   *Node            // links only
	created  time.Time
	modified time.Time
}

// Name returns the node's base name.
func (n *Node) Name() string { return n.name }

// Kind returns the node's kind.
func (n *Node) Kind() Kind { return n.kind }

// Created returns the creation time.
func (n *Node) Created() time.Time { return n.created }

// Modified returns the last-modified time.
func (n *Node) Modified() time.Time { return n.modified }

// Size returns the content size for files, and a conventional 4096 for
// folders and links (mirroring how filesystems report directory sizes).
func (n *Node) Size() int64 {
	if n.kind == KindFile {
		return int64(len(n.content))
	}
	return 4096
}

// Target returns the folder a link points to, or nil.
func (n *Node) Target() *Node { return n.target }

// EventType classifies change notifications.
type EventType int

// Change notification types.
const (
	EventCreate EventType = iota
	EventModify
	EventRemove
)

func (e EventType) String() string {
	switch e {
	case EventCreate:
		return "create"
	case EventModify:
		return "modify"
	case EventRemove:
		return "remove"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Event is one filesystem change notification.
type Event struct {
	Type EventType
	Path string
	Kind Kind
}

// FS is an in-memory filesystem. The zero FS is not usable; create one
// with New. FS is safe for concurrent use.
type FS struct {
	mu       sync.RWMutex
	root     *Node
	now      func() time.Time
	watchers []chan Event
	closed   bool
}

// New returns an empty filesystem whose clock is time.Now.
func New() *FS { return NewWithClock(time.Now) }

// NewWithClock returns an empty filesystem using the given clock; tests
// and the dataset generator use a deterministic clock.
func NewWithClock(now func() time.Time) *FS {
	t := now()
	return &FS{
		root: &Node{
			name:     "/",
			kind:     KindFolder,
			children: make(map[string]*Node),
			created:  t,
			modified: t,
		},
		now: now,
	}
}

// Root returns the root folder node.
func (fs *FS) Root() *Node {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.root
}

// splitPath normalizes and splits a slash-separated path. The empty path
// and "/" address the root.
func splitPath(path string) []string {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	return strings.Split(path, "/")
}

// lookup resolves a path to a node without following terminal links.
// Intermediate links are followed so that paths may traverse them.
func (fs *FS) lookup(path string) (*Node, error) {
	n := fs.root
	for _, part := range splitPath(path) {
		if n.kind == KindLink {
			n = n.target
		}
		if n.kind != KindFolder {
			return nil, fmt.Errorf("%w: %q", ErrNotFolder, path)
		}
		c, ok := n.children[part]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		n = c
	}
	return n, nil
}

// Lookup resolves a path to its node.
func (fs *FS) Lookup(path string) (*Node, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.lookup(path)
}

// Exists reports whether a node exists at path.
func (fs *FS) Exists(path string) bool {
	_, err := fs.Lookup(path)
	return err == nil
}

func (fs *FS) parentOf(path string) (*Node, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", ErrIsRoot
	}
	dir := strings.Join(parts[:len(parts)-1], "/")
	p, err := fs.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if p.kind == KindLink {
		p = p.target
	}
	if p.kind != KindFolder {
		return nil, "", fmt.Errorf("%w: %q", ErrNotFolder, dir)
	}
	return p, parts[len(parts)-1], nil
}

// Mkdir creates a folder at path. Parents must exist; use MkdirAll to
// create them.
func (fs *FS) Mkdir(path string) (*Node, error) {
	fs.mu.Lock()
	n, err := fs.mkdirLocked(path)
	fs.mu.Unlock()
	if err == nil {
		fs.notify(Event{Type: EventCreate, Path: clean(path), Kind: KindFolder})
	}
	return n, err
}

func (fs *FS) mkdirLocked(path string) (*Node, error) {
	p, name, err := fs.parentOf(path)
	if err != nil {
		return nil, err
	}
	if _, dup := p.children[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, path)
	}
	t := fs.now()
	n := &Node{
		name: name, kind: KindFolder, parent: p,
		children: make(map[string]*Node),
		created:  t, modified: t,
	}
	p.children[name] = n
	p.modified = t
	return n, nil
}

// MkdirAll creates a folder at path along with any missing parents. It
// succeeds when the folder already exists.
func (fs *FS) MkdirAll(path string) (*Node, error) {
	parts := splitPath(path)
	cur := ""
	var n *Node
	var err error
	for _, part := range parts {
		cur += "/" + part
		n, err = fs.Lookup(cur)
		if err == nil {
			if n.kind == KindLink {
				n = n.target
			}
			if n.kind != KindFolder {
				return nil, fmt.Errorf("%w: %q", ErrNotFolder, cur)
			}
			continue
		}
		n, err = fs.Mkdir(cur)
		if err != nil {
			return nil, err
		}
	}
	if n == nil {
		n = fs.Root()
	}
	return n, nil
}

// WriteFile creates or replaces the file at path with content. Parent
// folders must exist.
func (fs *FS) WriteFile(path string, content []byte) (*Node, error) {
	fs.mu.Lock()
	n, created, err := fs.writeFileLocked(path, content)
	fs.mu.Unlock()
	if err == nil {
		typ := EventModify
		if created {
			typ = EventCreate
		}
		fs.notify(Event{Type: typ, Path: clean(path), Kind: KindFile})
	}
	return n, err
}

func (fs *FS) writeFileLocked(path string, content []byte) (*Node, bool, error) {
	p, name, err := fs.parentOf(path)
	if err != nil {
		return nil, false, err
	}
	t := fs.now()
	if existing, ok := p.children[name]; ok {
		if existing.kind != KindFile {
			return nil, false, fmt.Errorf("%w: %q", ErrNotFile, path)
		}
		existing.content = append(existing.content[:0:0], content...)
		existing.modified = t
		return existing, false, nil
	}
	n := &Node{
		name: name, kind: KindFile, parent: p,
		content: append([]byte(nil), content...),
		created: t, modified: t,
	}
	p.children[name] = n
	p.modified = t
	return n, true, nil
}

// Link creates a folder link at path pointing at the folder at target.
// Links to ancestors create cycles, as in the 'All Projects' link of
// Figure 1 in the paper.
func (fs *FS) Link(path, target string) (*Node, error) {
	fs.mu.Lock()
	n, err := fs.linkLocked(path, target)
	fs.mu.Unlock()
	if err == nil {
		fs.notify(Event{Type: EventCreate, Path: clean(path), Kind: KindLink})
	}
	return n, err
}

func (fs *FS) linkLocked(path, target string) (*Node, error) {
	tgt, err := fs.lookup(target)
	if err != nil {
		return nil, err
	}
	if tgt.kind == KindLink {
		tgt = tgt.target
	}
	if tgt.kind != KindFolder {
		return nil, fmt.Errorf("%w: link target %q", ErrNotFolder, target)
	}
	p, name, err := fs.parentOf(path)
	if err != nil {
		return nil, err
	}
	if _, dup := p.children[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, path)
	}
	t := fs.now()
	n := &Node{name: name, kind: KindLink, parent: p, target: tgt, created: t, modified: t}
	p.children[name] = n
	p.modified = t
	return n, nil
}

// Copy duplicates the file at src to dst (which must not exist). The
// copy gets fresh creation and modification times; pairing Copy with
// lineage recording is the provenance example §8 of the paper gives.
func (fs *FS) Copy(src, dst string) (*Node, error) {
	content, err := fs.ReadFile(src)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	if _, err := fs.lookup(dst); err == nil {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, dst)
	}
	n, _, err := fs.writeFileLocked(dst, content)
	fs.mu.Unlock()
	if err != nil {
		return nil, err
	}
	fs.notify(Event{Type: EventCreate, Path: clean(dst), Kind: KindFile})
	return n, nil
}

// ReadFile returns a copy of the file content at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.kind != KindFile {
		return nil, fmt.Errorf("%w: %q", ErrNotFile, path)
	}
	return append([]byte(nil), n.content...), nil
}

// ReadNode returns a copy of a file node's content.
func (fs *FS) ReadNode(n *Node) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if n.kind != KindFile {
		return nil, fmt.Errorf("%w: %q", ErrNotFile, n.name)
	}
	return append([]byte(nil), n.content...), nil
}

// Remove deletes the node at path (recursively for folders).
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	var kind Kind
	err := func() error {
		n, err := fs.lookup(path)
		if err != nil {
			return err
		}
		if n == fs.root {
			return ErrIsRoot
		}
		kind = n.kind
		delete(n.parent.children, n.name)
		n.parent.modified = fs.now()
		n.parent = nil
		return nil
	}()
	fs.mu.Unlock()
	if err == nil {
		fs.notify(Event{Type: EventRemove, Path: clean(path), Kind: kind})
	}
	return err
}

// List returns the children of the folder (or link-to-folder) at path in
// name order.
func (fs *FS) List(path string) ([]*Node, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	return fs.listNodeLocked(n)
}

// ListNode returns the children of a folder node in name order.
func (fs *FS) ListNode(n *Node) ([]*Node, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.listNodeLocked(n)
}

func (fs *FS) listNodeLocked(n *Node) ([]*Node, error) {
	if n.kind == KindLink {
		n = n.target
	}
	if n.kind != KindFolder {
		return nil, fmt.Errorf("%w: %q", ErrNotFolder, n.name)
	}
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

// Path returns the absolute slash-separated path of a node.
func (fs *FS) Path(n *Node) string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if n == fs.root {
		return "/"
	}
	var parts []string
	for cur := n; cur != nil && cur != fs.root; cur = cur.parent {
		parts = append(parts, cur.name)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// Stats summarizes the filesystem.
type Stats struct {
	Folders    int
	Files      int
	Links      int
	TotalBytes int64
}

// Stats walks the tree (not following links) and returns node counts and
// total file bytes.
func (fs *FS) Stats() Stats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var s Stats
	var rec func(n *Node)
	rec = func(n *Node) {
		switch n.kind {
		case KindFolder:
			s.Folders++
			for _, c := range n.children {
				rec(c)
			}
		case KindFile:
			s.Files++
			s.TotalBytes += int64(len(n.content))
		case KindLink:
			s.Links++
		}
	}
	rec(fs.root)
	s.Folders-- // do not count the root itself
	return s
}

// Watch returns a channel of change notifications. The channel is
// buffered; events are dropped when the buffer is full (matching the
// best-effort semantics of OS file-event APIs). Close the filesystem's
// watchers with CloseWatchers.
func (fs *FS) Watch() <-chan Event {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ch := make(chan Event, 1024)
	fs.watchers = append(fs.watchers, ch)
	return ch
}

// CloseWatchers closes all watcher channels; no further events are sent.
func (fs *FS) CloseWatchers() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return
	}
	fs.closed = true
	for _, ch := range fs.watchers {
		close(ch)
	}
	fs.watchers = nil
}

func (fs *FS) notify(e Event) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return
	}
	for _, ch := range fs.watchers {
		select {
		case ch <- e:
		default: // drop when the watcher is slow
		}
	}
}

func clean(path string) string {
	return "/" + strings.Trim(path, "/")
}

// WalkFunc is invoked for every node during FS.Walk with the node's
// absolute path.
type WalkFunc func(path string, n *Node) error

// Walk visits every node in the tree in depth-first name order, without
// following links (link nodes themselves are visited).
func (fs *FS) Walk(fn WalkFunc) error {
	fs.mu.RLock()
	root := fs.root
	fs.mu.RUnlock()
	return fs.walkNode("/", root, fn)
}

func (fs *FS) walkNode(path string, n *Node, fn WalkFunc) error {
	if err := fn(path, n); err != nil {
		return err
	}
	if n.kind != KindFolder {
		return nil
	}
	children, err := fs.ListNode(n)
	if err != nil {
		return err
	}
	for _, c := range children {
		p := path + "/" + c.name
		if path == "/" {
			p = "/" + c.name
		}
		if err := fs.walkNode(p, c, fn); err != nil {
			return err
		}
	}
	return nil
}
