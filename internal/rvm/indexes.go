package rvm

import (
	"sort"

	"repro/internal/catalog"
)

// IndexSizes reports the footprint of each structure of the
// Replica&Indexes module — the rows of Table 3 in the paper.
type IndexSizes struct {
	Name    int64
	Tuple   int64
	Content int64
	Group   int64
	Catalog int64
}

// Total sums all structures.
func (s IndexSizes) Total() int64 {
	return s.Name + s.Tuple + s.Content + s.Group + s.Catalog
}

// IndexSizes returns the current sizes of all indexes and replicas.
func (m *Manager) IndexSizes() IndexSizes {
	m.mu.RLock()
	var group int64
	for _, children := range m.groupRep {
		group += 16 + int64(len(children))*8
	}
	var nameRep int64
	for _, n := range m.nameRep {
		nameRep += 16 + int64(len(n))
	}
	m.mu.RUnlock()
	return IndexSizes{
		Name:    m.nameIdx.SizeBytes() + nameRep,
		Tuple:   m.tupleIdx.SizeBytes(),
		Content: m.contentIdx.SizeBytes(),
		Group:   group,
		Catalog: m.catalog.SizeBytes(),
	}
}

// NetInputBytes returns the bytes of textual content actually fed to the
// content index for a source — the "Net Input Data Size" column of
// Table 3 (content that could not be converted to text is excluded).
func (m *Manager) NetInputBytes(source string) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.contentBytes[source]
}

// SourceBreakdown is one row of Table 2: the resource views of a data
// source, split into base items and views derived from XML and LaTeX
// content.
type SourceBreakdown struct {
	Source       string
	Base         int
	DerivedXML   int
	DerivedLatex int
	DerivedOther int
	Total        int
	ContentBytes int64
}

// Breakdown computes the Table 2 row for one source.
func (m *Manager) Breakdown(source string) SourceBreakdown {
	st := m.catalog.StatsFor(source)
	b := SourceBreakdown{
		Source:       source,
		Base:         st.Base,
		Total:        st.Base + st.Derived,
		ContentBytes: st.ContentBytes,
	}
	for prefix, n := range st.DerivedByClassPrefix {
		switch prefix {
		case "xml":
			b.DerivedXML += n
		case "latex":
			b.DerivedLatex += n
		default:
			b.DerivedOther += n
		}
	}
	return b
}

// Compact reclaims the space deletions left in the name and content
// indexes (tombstoned postings are otherwise filtered at query time).
// It returns the number of postings dropped.
func (m *Manager) Compact() int {
	return m.nameIdx.Compact() + m.contentIdx.Compact()
}

// GroupReplicaEdges returns the number of edges held by the group
// replica.
func (m *Manager) GroupReplicaEdges() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, children := range m.groupRep {
		n += len(children)
	}
	return n
}

// OIDsByClass returns the OIDs whose class matches exactly, in
// ascending order, answered from the class index maintained by the
// Replica&Indexes module.
func (m *Manager) OIDsByClass(class string) []catalog.OID {
	m.mu.RLock()
	out := make([]catalog.OID, 0, len(m.classRep[class]))
	for oid := range m.classRep[class] {
		out = append(out, oid)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OIDsInClass returns the OIDs whose class is the named class or a
// specialization of it (generalization hierarchies of §3.1: a view
// obeying xmlfile also obeys file). iQL class predicates resolve through
// this method. Class names not present in the registry match exactly.
func (m *Manager) OIDsInClass(class string) []catalog.OID {
	m.mu.RLock()
	var out []catalog.OID
	for c, members := range m.classRep {
		if c == "" {
			continue
		}
		if c == class || m.registry.IsA(c, class) {
			for oid := range members {
				out = append(out, oid)
			}
		}
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
