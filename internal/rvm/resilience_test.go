package rvm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sources"
)

// switchSource serves a good graph until broken is set, then fails Root.
type switchSource struct {
	id     string
	root   core.ResourceView
	broken bool
	faults *fault.Injector
}

func (s *switchSource) ID() string { return s.id }
func (s *switchSource) Root() (core.ResourceView, error) {
	if s.broken {
		return nil, errors.New("source unplugged")
	}
	return s.root, nil
}
func (s *switchSource) Changes() <-chan sources.Change { return nil }
func (s *switchSource) Close() error                   { return nil }
func (s *switchSource) SetFaults(in *fault.Injector)   { s.faults = in }

func namedRoot(rootName, childName, text string) core.ResourceView {
	child := sources.Annotate(core.NewView(childName, core.ClassFile).
		WithContent(core.StringContent(text)), "/"+childName, true)
	root := core.NewView(rootName, "").WithGroup(core.SetGroup(child))
	return sources.Annotate(root, "/", true)
}

func TestSyncAllIsolatesPerSourceFailures(t *testing.T) {
	m := New(DefaultOptions())
	good := &switchSource{id: "good", root: namedRoot("good", "ok.txt", "fine")}
	bad := &flakySource{id: "bad", failures: 1000}
	m.AddSource(good)
	m.AddSource(bad)

	report, err := m.SyncAll()
	if err == nil || !strings.Contains(err.Error(), `source "bad"`) {
		t.Fatalf("err = %v, want the bad source's failure", err)
	}
	// The healthy source synced despite the failure.
	if report.TotalViews() != 2 {
		t.Fatalf("healthy source views = %d, want 2", report.TotalViews())
	}
	if got := m.DegradedSources(); len(got) != 1 || got[0] != "bad" {
		t.Fatalf("DegradedSources = %v, want [bad]", got)
	}
}

func TestProcessPendingIsolatesFailures(t *testing.T) {
	m := New(DefaultOptions())
	good := &switchSource{id: "good", root: namedRoot("good", "ok.txt", "fine")}
	bad := &flakySource{id: "bad", failures: 1, root: flakyRoot()}
	m.AddSource(good)
	m.AddSource(bad)
	ids, err := m.ProcessPending()
	if err == nil {
		t.Fatal("want joined error from failing source")
	}
	if len(ids) != 2 {
		t.Fatalf("processed %v, want both", ids)
	}
	if m.Count() != 2 {
		t.Fatalf("healthy views = %d, want 2", m.Count())
	}
	// The failing source stays dirty and recovers on the next round.
	if _, err := m.ProcessPending(); err != nil {
		t.Fatalf("recovery round: %v", err)
	}
	if got := m.DegradedSources(); len(got) != 0 {
		t.Fatalf("DegradedSources after recovery = %v", got)
	}
}

func TestFailedSyncServesStaleReplica(t *testing.T) {
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Metrics = reg
	m := New(opts)
	src := &switchSource{id: "s", root: namedRoot("s", "doc.txt", "stale but answerable")}
	m.AddSource(src)
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	rootOID := m.MatchNames("s")[0]
	childrenBefore := m.Children(rootOID)
	if len(childrenBefore) != 1 {
		t.Fatalf("children = %v", childrenBefore)
	}

	// The source goes down; the re-sync fails...
	src.broken = true
	if _, err := m.SyncSource("s"); err == nil {
		t.Fatal("sync of a broken source succeeded")
	}
	// ...but the replica, indexes and catalog still answer.
	if got := m.Children(rootOID); len(got) != 1 || got[0] != childrenBefore[0] {
		t.Fatalf("stale group replica lost: %v", got)
	}
	if got := m.ContentOr("stale"); len(got) != 1 {
		t.Fatalf("stale content index lost: %v", got)
	}
	if got := m.DegradedSources(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("DegradedSources = %v", got)
	}
	if reg.Snapshot().Gauges["rvm_degraded_sources"] != 1 {
		t.Fatal("rvm_degraded_sources gauge not set")
	}

	// Health carries the failure detail; recovery clears it.
	h := m.Health()
	if len(h) != 1 || !h[0].Degraded || h[0].ConsecutiveFailures != 1 ||
		!strings.Contains(h[0].LastError, "unplugged") {
		t.Fatalf("health = %+v", h)
	}
	src.broken = false
	if _, err := m.SyncSource("s"); err != nil {
		t.Fatal(err)
	}
	if h := m.Health(); h[0].Degraded || h[0].ConsecutiveFailures != 0 {
		t.Fatalf("health after recovery = %+v", h[0])
	}
	if reg.Snapshot().Gauges["rvm_degraded_sources"] != 0 {
		t.Fatal("rvm_degraded_sources gauge not cleared")
	}
}

func TestMidWalkFailurePreservesReplica(t *testing.T) {
	m := New(DefaultOptions())
	src := &staticSource{id: "s", root: namedRoot("s", "doc.txt", "good graph")}
	m.AddSource(src)
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	rootOID := m.MatchNames("s")[0]
	before := m.Children(rootOID)

	// Swap in a graph that dies mid-walk; the replica must survive.
	src.root = sources.Annotate((&core.StaticView{VName: "s"}).
		WithGroup(core.Group{Set: brokenGroup{after: 1}, Seq: core.NoViews()}), "/", true)
	if _, err := m.SyncSource("s"); err == nil {
		t.Fatal("mid-walk failure not surfaced")
	}
	if got := m.Children(rootOID); len(got) != len(before) || got[0] != before[0] {
		t.Fatalf("group replica corrupted by failed walk: %v != %v", got, before)
	}
}

func TestAddSourceWrapsWithResilience(t *testing.T) {
	opts := DefaultOptions()
	opts.Resilience = &sources.Policy{
		MaxRetries:      2,
		RetryBase:       time.Nanosecond,
		BreakerFailures: -1,
		Sleep:           func(time.Duration) {},
	}
	m := New(opts)
	src := &flakySource{id: "flaky", failures: 2, root: flakyRoot()}
	m.AddSource(src)
	// With the proxy in place one sync absorbs both failures via retry.
	if _, err := m.SyncSource("flaky"); err != nil {
		t.Fatalf("resilient sync failed: %v", err)
	}
	if src.rootCalls != 3 {
		t.Fatalf("root calls = %d, want 3 (1 + 2 retries)", src.rootCalls)
	}
	if _, ok := m.Source("flaky"); !ok {
		t.Fatal("wrapped source not registered under its id")
	}
	if h := m.Health(); len(h) != 1 || h[0].Breaker != "closed" {
		t.Fatalf("health breaker = %+v", h)
	}
}

func TestAddSourceWiresFaultInjector(t *testing.T) {
	inj := fault.New(1)
	opts := DefaultOptions()
	opts.Faults = inj
	m := New(opts)
	src := &switchSource{id: "s", root: namedRoot("s", "doc.txt", "x")}
	m.AddSource(src)
	if src.faults != inj {
		t.Fatal("fault injector not handed to FaultSetter plugin")
	}
}

func TestRemoveSource(t *testing.T) {
	m := New(DefaultOptions())
	keep := &switchSource{id: "keep", root: namedRoot("keep", "k.txt", "kept words")}
	drop := &switchSource{id: "drop", root: namedRoot("drop", "d.txt", "dropped words")}
	m.AddSource(keep)
	m.AddSource(drop)
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if m.Count() != 4 {
		t.Fatalf("count = %d", m.Count())
	}
	v0 := m.Version()

	if err := m.RemoveSource("drop"); err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 {
		t.Fatalf("count after removal = %d", m.Count())
	}
	if got := m.MatchNames("d.txt"); len(got) != 0 {
		t.Fatalf("removed source still in name replica: %v", got)
	}
	if got := m.ContentOr("dropped"); len(got) != 0 {
		t.Fatalf("removed source still content-indexed: %v", got)
	}
	if m.Version() == v0 {
		t.Fatal("removal did not bump the dataspace version")
	}
	if _, ok := m.Source("drop"); ok {
		t.Fatal("source still registered")
	}
	if len(m.Sources()) != 1 {
		t.Fatalf("sources = %v", m.Sources())
	}
	if err := m.RemoveSource("drop"); err == nil {
		t.Fatal("double removal not rejected")
	}
}
