package rvm

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/iql"
	"repro/internal/sources"
	"repro/internal/stream"
)

// testEngineOver builds an iQL engine over a manager (the manager
// satisfies iql.Store).
func testEngineOver(m *Manager) *iql.Engine {
	return iql.NewEngine(m, iql.Options{})
}

// infiniteTupleStream is an endless generator of tuple views.
type infiniteTupleStream struct{}

func (infiniteTupleStream) Iter() core.ViewIter {
	i := 0
	return core.IterFunc(func() (core.ResourceView, error) {
		i++
		v := &core.StaticView{
			VClass: core.ClassTuple,
			VTuple: core.TupleComponent{
				Schema: core.Schema{{Name: "seq", Domain: core.DomainInt}},
				Tuple:  core.Tuple{core.Int(int64(i))},
			},
		}
		return sources.Annotate(v, fmt.Sprintf("tuple/%d", i), true), nil
	})
}
func (infiniteTupleStream) Finite() bool { return false }
func (infiniteTupleStream) Len() int     { return core.LenUnknown }

type streamSource struct{ root core.ResourceView }

func (s *streamSource) ID() string                       { return "stream" }
func (s *streamSource) Root() (core.ResourceView, error) { return s.root, nil }
func (s *streamSource) Changes() <-chan sources.Change   { return nil }
func (s *streamSource) Close() error                     { return nil }

func TestSyncBoundsInfiniteGroupWithStreamWindow(t *testing.T) {
	opts := DefaultOptions()
	opts.InfinitePrefix = 16 // the stream window of §5.2
	m := New(opts)
	root := sources.Annotate(
		stream.StreamView("tuples", infiniteTupleStream{}), "/", true)
	if err := m.AddSource(&streamSource{root: root}); err != nil {
		t.Fatal(err)
	}
	timing, err := m.SyncSource("stream")
	if err != nil {
		t.Fatal(err)
	}
	// Root + the windowed prefix of the infinite sequence.
	if timing.Views != 17 {
		t.Errorf("views = %d, want 17 (window of 16 + root)", timing.Views)
	}
	// The windowed tuples are queryable through the tuple index.
	engine := testEngineOver(m)
	res, err := engine.Query(`//[seq > 10]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 6 { // tuples 11..16
		t.Errorf("seq > 10: %d results", res.Count())
	}
}

func TestResyncAdvancingStreamKeepsOIDsOfStableItems(t *testing.T) {
	// A stream whose items carry stable URIs: re-syncing keeps the OIDs
	// of the items already seen (they fall inside the window again).
	opts := DefaultOptions()
	opts.InfinitePrefix = 8
	m := New(opts)
	root := sources.Annotate(stream.StreamView("tuples", infiniteTupleStream{}), "/", true)
	m.AddSource(&streamSource{root: root})
	m.SyncSource("stream")
	first, err := m.Catalog().ByURI("stream", "tuple/1")
	if err != nil {
		t.Fatal(err)
	}
	m.SyncSource("stream")
	again, err := m.Catalog().ByURI("stream", "tuple/1")
	if err != nil {
		t.Fatal(err)
	}
	if first.OID != again.OID {
		t.Errorf("stream item OID changed: %d → %d", first.OID, again.OID)
	}
}
