package rvm

import (
	"testing"

	"repro/internal/catalog"
)

// TestBulkRestoreEquivalence is the differential pin for the sort-based
// bulk index build: restoring the same durable state through the bulk
// path (fresh manager, empty indexes) and through the forced
// incremental path must leave the two managers indistinguishable to
// every probe query.
func TestBulkRestoreEquivalence(t *testing.T) {
	_, st := durableLeader(t)
	state, _ := st.CloneState()

	bulk := NewWithCatalog(Options{ReplicateGroups: true},
		catalog.Rebuild(state.NextOID, state.Entries()))
	bulk.RestoreFromState(state)

	incr := NewWithCatalog(Options{ReplicateGroups: true, NoBulkRestore: true},
		catalog.Rebuild(state.NextOID, state.Entries()))
	incr.RestoreFromState(state)

	if bulk.Count() == 0 {
		t.Fatal("restore produced an empty manager")
	}
	if got, want := probeDigest(bulk), probeDigest(incr); got != want {
		t.Fatalf("bulk and incremental restores diverge:\nbulk:\n%s\nincremental:\n%s", got, want)
	}
	// The bulk path is only for cold starts: a second restore into the
	// now-populated manager takes the incremental branch and must still
	// converge (full-replacement record semantics make it idempotent).
	bulk.RestoreFromState(state)
	if got, want := probeDigest(bulk), probeDigest(incr); got != want {
		t.Fatalf("warm re-restore diverged:\n%s\nvs\n%s", got, want)
	}
}
