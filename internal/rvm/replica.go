package rvm

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/imageindex"
	"repro/internal/store"
	"repro/internal/textindex"
	"repro/internal/tupleindex"
)

// This file is the follower half of WAL-shipping replication
// (internal/repl, docs/REPLICATION.md): a read-only manager applies the
// leader's WAL records — in global-LSN order — into its own catalog,
// indexes and replicas, reproducing exactly the structures the leader's
// sync walks built. Follower managers run without sources and without a
// store of their own (Options.Store nil keeps the log* helpers no-ops),
// so the only writer is the replication apply loop.

// ApplyRecord applies one shipped WAL record. It is idempotent: every
// index insert replaces the previous posting for the OID, edge commits
// are full replacements, and removals of absent views are no-ops — so
// re-applying an overlapping batch after a crash converges to the same
// state. It mirrors the leader's register/commitReplica/remove paths,
// which keeps leader and caught-up follower query-equivalent.
//
// ApplyRecord is safe under concurrent readers (queries) — it takes the
// same locks the sync paths do. It is NOT safe concurrent with
// ResetFromState; the repl layer serializes the two.
func (m *Manager) ApplyRecord(rec store.Record) error {
	switch rec.Kind {
	case store.KindUpsert:
		if rec.View == nil {
			return fmt.Errorf("rvm: apply: upsert without view")
		}
		m.applyUpsert(rec.View)
	case store.KindRemove:
		// remove journals the change (bumping the version) and is a no-op
		// for unknown OIDs; with no store configured nothing is re-logged.
		return m.remove(rec.OID)
	case store.KindEdges:
		m.applyEdges(rec)
		m.history.bump()
	case store.KindDropSource:
		for _, oid := range m.catalog.SourceOIDs(rec.Source) {
			if err := m.remove(oid); err != nil {
				return err
			}
		}
		m.history.bump()
	case store.KindMeta:
		m.catalog.PinNext(rec.NextOID)
		m.history.bump()
	case store.KindSnapshotEnd:
		// End markers appear only inside snapshot images, never in
		// shipped WAL batches; tolerate them as no-ops.
	default:
		return fmt.Errorf("rvm: apply: unknown record kind %v", rec.Kind)
	}
	m.met.views.Set(int64(m.catalog.Count()))
	return nil
}

// applyUpsert registers one leader view under its leader-assigned OID,
// mirroring syncWalk.register's indexing block (adds replace previous
// postings; name/class bookkeeping cleans up old values).
func (m *Manager) applyUpsert(v *store.ViewRecord) {
	e := v.Entry
	oid := e.OID
	prev, prevErr := m.catalog.Get(oid)
	m.catalog.Put(e)

	m.nameIdx.Add(textindex.DocID(oid), e.Name)
	if !v.Tuple.IsEmpty() {
		m.tupleIdx.Add(tupleindex.DocID(oid), v.Tuple)
	}
	if v.Text != "" {
		m.contentIdx.Add(textindex.DocID(oid), v.Text)
	}
	if len(v.Binary) > 0 && m.opts.IndexImages {
		m.imageIdx.Add(imageindex.DocID(oid), v.Binary)
	}

	m.mu.Lock()
	lowered := strings.ToLower(e.Name)
	if old, ok := m.nameLower[oid]; ok && old != lowered {
		delete(m.byLowerName[old], oid)
	}
	m.nameRep[oid] = e.Name
	m.nameLower[oid] = lowered
	exact := m.byLowerName[lowered]
	if exact == nil {
		exact = make(map[catalog.OID]struct{})
		m.byLowerName[lowered] = exact
	}
	exact[oid] = struct{}{}
	if old, ok := m.classOf[oid]; ok && old != e.Class {
		delete(m.classRep[old], oid)
	}
	m.classOf[oid] = e.Class
	members := m.classRep[e.Class]
	if members == nil {
		members = make(map[catalog.OID]struct{})
		m.classRep[e.Class] = members
	}
	members[oid] = struct{}{}
	if v.Text != "" {
		m.contentBytes[e.Source] += int64(len(v.Text))
	}
	m.mu.Unlock()

	// Journal with the leader's add/update distinction so the follower's
	// change feed and version-keyed caches behave like the leader's. A
	// byte-identical re-apply (overlapping batch) changes nothing and is
	// not journaled — same rule that keeps unchanged re-registrations
	// out of the leader's journal.
	if prevErr != nil {
		m.history.record(ChangeRecord{Kind: ChangeAdded, OID: oid, Source: e.Source, URI: e.URI, Name: e.Name})
	} else if prev.Name != e.Name || prev.Class != e.Class ||
		prev.ContentSize != e.ContentSize || prev.Stamp != e.Stamp {
		m.history.record(ChangeRecord{Kind: ChangeUpdated, OID: oid, Source: e.Source, URI: e.URI, Name: e.Name})
	}
}

// applyEdges replaces the source's slice of the group replica and its
// reverse edges — commitReplica's semantics, driven by a shipped record
// instead of a local sync walk.
func (m *Manager) applyEdges(rec store.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, oid := range m.catalog.SourceOIDs(rec.Source) {
		for _, child := range m.groupRep[oid] {
			m.parentRep[child] = removeOID(m.parentRep[child], oid)
		}
		delete(m.groupRep, oid)
	}
	for _, el := range rec.Edges {
		cs := append([]catalog.OID(nil), el.Children...)
		if m.opts.ReplicateGroups {
			m.groupRep[el.Parent] = cs
		}
		for _, c := range cs {
			m.parentRep[c] = appendUniqueOID(m.parentRep[c], el.Parent)
		}
	}
}

// ResetFromState discards the Replica & Indexes contents and rebuilds
// them from a full leader state image — the replication fallback when
// the leader's WAL no longer covers the follower's applied LSN. The
// catalog is reset in place (concurrent readers holding the pointer see
// old or new contents, never a mix), but the index swap itself is NOT
// safe concurrent with queries; the repl layer excludes readers for the
// duration.
func (m *Manager) ResetFromState(st *store.State) {
	if st == nil {
		return
	}
	m.mu.Lock()
	m.nameIdx = textindex.New()
	m.tupleIdx = tupleindex.New()
	m.contentIdx = textindex.New()
	m.imageIdx = imageindex.New()
	m.nameRep = make(map[catalog.OID]string)
	m.byLowerName = make(map[string]map[catalog.OID]struct{})
	m.nameLower = make(map[catalog.OID]string)
	m.groupRep = make(map[catalog.OID][]catalog.OID)
	m.parentRep = make(map[catalog.OID][]catalog.OID)
	m.classRep = make(map[string]map[catalog.OID]struct{})
	m.classOf = make(map[catalog.OID]string)
	m.views = make(map[catalog.OID]core.ResourceView)
	m.contentBytes = make(map[string]int64)
	m.mu.Unlock()
	m.catalog.Reset(st.NextOID, st.Entries())
	m.RestoreFromState(st)
	m.history.bump()
	m.met.views.Set(int64(m.catalog.Count()))
}
