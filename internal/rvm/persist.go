package rvm

import (
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/imageindex"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/textindex"
	"repro/internal/tupleindex"
)

// This file wires the Resource View Manager to the durability layer
// (internal/store): replica commits are logged to the write-ahead log
// before they are applied, and a manager can be rebuilt from a recovered
// state without re-walking any source. See docs/PERSISTENCE.md.

// Store returns the durability layer the manager logs to (nil when the
// dataspace is in-memory only).
func (m *Manager) Store() storage.Engine { return m.opts.Store }

// Checkpoint compacts the durable state into a fresh snapshot and
// truncates the WAL; a no-op without a store.
func (m *Manager) Checkpoint() error {
	if m.opts.Store == nil {
		return nil
	}
	return m.opts.Store.Snapshot()
}

// StateDigest returns the stable-serialization digest of the durable
// state ("" when the dataspace is in-memory only).
func (m *Manager) StateDigest() string {
	if m.opts.Store == nil {
		return ""
	}
	return m.opts.Store.Digest()
}

// RestoreFromState rebuilds the Replica & Indexes module from a
// recovered durable state: the name, tuple, content and image indexes
// are reconstructed from the replicated components, and the group
// replica (with its reverse edges) from the persisted edge commits.
// Live views stay unresolved until the sources are re-added and synced;
// queries answer from the replicas meanwhile, exactly as they do for a
// degraded source.
//
// When the manager's indexes are still empty — the cold-start case:
// OpenDurable after recovery, or a replica installing a full-state
// image — the text and tuple indexes are built with the sort-based bulk
// path (one spill-sort-merge pass per index) instead of per-view
// incremental insertion; Options.NoBulkRestore forces the incremental
// path. Both paths produce semantically identical indexes (pinned by
// TestBulkRestoreEquivalence).
func (m *Manager) RestoreFromState(st *store.State) {
	if st == nil {
		return
	}
	oids := make([]catalog.OID, 0, len(st.Views))
	for oid := range st.Views {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })

	m.mu.Lock()
	defer m.mu.Unlock()
	bulk := !m.opts.NoBulkRestore &&
		m.nameIdx.DocCount() == 0 && m.contentIdx.DocCount() == 0 && m.tupleIdx.DocCount() == 0
	var nameB, contentB *textindex.Builder
	var tupleB *tupleindex.Builder
	if bulk {
		nameB = textindex.NewBuilder()
		contentB = textindex.NewBuilder()
		tupleB = tupleindex.NewBuilder()
	}
	for _, oid := range oids {
		v := st.Views[oid]
		if bulk {
			nameB.Add(textindex.DocID(oid), v.Entry.Name)
		} else {
			m.nameIdx.Add(textindex.DocID(oid), v.Entry.Name)
		}
		if !v.Tuple.IsEmpty() {
			if bulk {
				tupleB.Add(tupleindex.DocID(oid), v.Tuple)
			} else {
				m.tupleIdx.Add(tupleindex.DocID(oid), v.Tuple)
			}
		}
		if v.Text != "" {
			if bulk {
				contentB.Add(textindex.DocID(oid), v.Text)
			} else {
				m.contentIdx.Add(textindex.DocID(oid), v.Text)
			}
			m.contentBytes[v.Entry.Source] += int64(len(v.Text))
		}
		if len(v.Binary) > 0 && m.opts.IndexImages {
			m.imageIdx.Add(imageindex.DocID(oid), v.Binary)
		}
		lowered := strings.ToLower(v.Entry.Name)
		m.nameRep[oid] = v.Entry.Name
		m.nameLower[oid] = lowered
		exact := m.byLowerName[lowered]
		if exact == nil {
			exact = make(map[catalog.OID]struct{})
			m.byLowerName[lowered] = exact
		}
		exact[oid] = struct{}{}
		m.classOf[oid] = v.Entry.Class
		members := m.classRep[v.Entry.Class]
		if members == nil {
			members = make(map[catalog.OID]struct{})
			m.classRep[v.Entry.Class] = members
		}
		members[oid] = struct{}{}
	}
	if bulk {
		m.nameIdx = nameB.Build()
		m.contentIdx = contentB.Build()
		m.tupleIdx = tupleB.Build()
	}
	for _, edges := range st.Edges {
		for parent, children := range edges {
			cs := append([]catalog.OID(nil), children...)
			if m.opts.ReplicateGroups {
				m.groupRep[parent] = cs
			}
			for _, c := range cs {
				m.parentRep[c] = appendUniqueOID(m.parentRep[c], parent)
			}
		}
	}
	m.met.views.Set(int64(m.catalog.Count()))
}

// logUpsert writes one view registration to the WAL before the caller
// applies it to the in-memory replicas.
func (m *Manager) logUpsert(source string, e catalog.Entry, rec store.ViewRecord) error {
	if m.opts.Store == nil {
		return nil
	}
	rec.Entry = e
	return m.opts.Store.Append(source, store.Record{Kind: store.KindUpsert, View: &rec})
}

// logRemove writes one view removal to the WAL before the caller drops
// it from the in-memory replicas.
func (m *Manager) logRemove(source string, oid catalog.OID) error {
	if m.opts.Store == nil {
		return nil
	}
	return m.opts.Store.Append(source, store.Record{Kind: store.KindRemove, OID: oid})
}

// logEdges writes a source's group-replica commit — the buffered
// last-good graph of one successful sync walk — to the WAL before
// commitReplica swaps it in. This is the WAL's commit point: under the
// default fsync policy the log is flushed here.
func (m *Manager) logEdges(source string, group map[catalog.OID][]catalog.OID) error {
	if m.opts.Store == nil {
		return nil
	}
	rec := store.Record{Kind: store.KindEdges, Source: source}
	parents := make([]catalog.OID, 0, len(group))
	for p := range group {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	for _, p := range parents {
		rec.Edges = append(rec.Edges, store.EdgeList{Parent: p, Children: group[p]})
	}
	return m.opts.Store.Append(source, rec)
}
