package rvm

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestVersioningJournalOnInitialSync(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	if m.Version() != 0 {
		t.Fatalf("fresh version = %d", m.Version())
	}
	m.SyncAll()
	if int(m.Version()) != m.Count() {
		t.Errorf("version %d != %d views (every registration is a change)", m.Version(), m.Count())
	}
	changes := m.Changes(0)
	if len(changes) != m.Count() {
		t.Fatalf("journal has %d records", len(changes))
	}
	for i, c := range changes {
		if c.Kind != ChangeAdded {
			t.Errorf("record %d kind = %v", i, c.Kind)
		}
		if c.Version != uint64(i+1) {
			t.Errorf("record %d version = %d", i, c.Version)
		}
	}
}

func TestVersioningNoChurnOnIdenticalResync(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	v := m.Version()
	if _, err := m.SyncSource("filesystem"); err != nil {
		t.Fatal(err)
	}
	if m.Version() != v {
		t.Errorf("resync of unchanged source bumped version %d → %d (journal churn)", v, m.Version())
	}
}

func TestVersioningRecordsUpdateAndRemove(t *testing.T) {
	m, fs, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	v := m.Version()

	fs.WriteFile("/Projects/PIM/notes.txt", []byte("changed content with more words"))
	m.SyncSource("filesystem")
	changes := m.Changes(v)
	var updated []ChangeRecord
	for _, c := range changes {
		if c.Kind == ChangeUpdated {
			updated = append(updated, c)
		}
	}
	foundNotes := false
	for _, c := range updated {
		if c.URI == "/Projects/PIM/notes.txt" {
			foundNotes = true
		}
	}
	if !foundNotes {
		t.Errorf("file modification not journaled as update: %+v", changes)
	}

	v = m.Version()
	fs.Remove("/Projects/PIM/notes.txt")
	m.SyncSource("filesystem")
	changes = m.Changes(v)
	foundRemove := false
	for _, c := range changes {
		if c.Kind == ChangeRemoved && c.URI == "/Projects/PIM/notes.txt" {
			foundRemove = true
		}
	}
	if !foundRemove {
		t.Errorf("removal not journaled: %+v", changes)
	}
}

func TestChangesSinceFiltering(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	all := m.Changes(0)
	half := m.Changes(uint64(len(all) / 2))
	if len(half) != len(all)-len(all)/2 {
		t.Errorf("Changes(since) returned %d of %d", len(half), len(all))
	}
	if got := m.Changes(m.Version()); got != nil {
		t.Errorf("Changes(latest) = %v, want nil", got)
	}
}

func TestLineageOfDerivedView(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	intro := m.LookupNameTerm("introduction")
	if len(intro) != 1 {
		t.Fatal("introduction section missing")
	}
	steps, err := m.Lineage(intro[0])
	if err != nil {
		t.Fatal(err)
	}
	if steps[0].Relation != "self" || steps[0].Name != "Introduction" {
		t.Errorf("first step = %+v", steps[0])
	}
	var converterHop *LineageStep
	var reachedFile bool
	for i := range steps {
		if strings.HasPrefix(steps[i].Relation, "derived-by") {
			converterHop = &steps[i]
		}
		if steps[i].Name == "vldb 2006.tex" {
			reachedFile = true
		}
	}
	if converterHop == nil {
		t.Fatalf("no converter hop in lineage: %+v", steps)
	}
	if converterHop.Relation != "derived-by latex2idm" {
		t.Errorf("converter = %q", converterHop.Relation)
	}
	if !reachedFile {
		t.Errorf("lineage never reaches the base file: %+v", steps)
	}
	// The chain ends at the source root.
	last := steps[len(steps)-1]
	if last.Name != "filesystem" {
		t.Errorf("lineage root = %+v", last)
	}
}

func TestLineageOfBaseItem(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	pim := m.MatchNames("PIM")
	steps, err := m.Lineage(pim[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps[1:] {
		if s.Relation != "contained-in" {
			t.Errorf("base item hop = %+v", s)
		}
	}
}

func TestExplicitDerivation(t *testing.T) {
	m, fs, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	// Simulate a user copying a file; the system records provenance.
	orig, err := m.Catalog().ByURI("filesystem", "/Projects/PIM/notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("/Projects/PIM/notes-copy.txt", []byte("database tuning notes"))
	m.SyncSource("filesystem")
	cp, err := m.Catalog().ByURI("filesystem", "/Projects/PIM/notes-copy.txt")
	if err != nil {
		t.Fatal(err)
	}
	m.RecordDerivation(cp.OID, orig.OID, "copy")
	steps, err := m.Lineage(cp.OID)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range steps {
		if s.Relation == "copy" && s.OID == orig.OID {
			found = true
		}
	}
	if !found {
		t.Errorf("copy derivation missing: %+v", steps)
	}
}

func TestLineageUnknownOID(t *testing.T) {
	m := New(DefaultOptions())
	if _, err := m.Lineage(999); err == nil {
		t.Error("unknown oid accepted")
	}
}

func TestChangeKindString(t *testing.T) {
	if ChangeAdded.String() != "added" || ChangeUpdated.String() != "updated" || ChangeRemoved.String() != "removed" {
		t.Error("ChangeKind strings wrong")
	}
}

var _ = core.ClassFile
