package rvm

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/mail"
	"repro/internal/sources/fsplugin"
	"repro/internal/sources/mailplugin"
	"repro/internal/stream"
	"repro/internal/tupleindex"
	"repro/internal/vfs"
)

const vldbTex = `\documentclass{vldb}
\title{iDM}
\begin{document}
\section{Introduction}
\label{sec:intro}
This work is about PIM, says Mike Franklin.
\section{Conclusion}
Unified systems win.
\end{document}`

func testSetup(t *testing.T, opts Options) (*Manager, *vfs.FS, *mail.Store) {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/Projects/PIM")
	fs.WriteFile("/Projects/PIM/vldb 2006.tex", []byte(vldbTex))
	fs.WriteFile("/Projects/PIM/notes.txt", []byte("database tuning notes"))
	fs.WriteFile("/Projects/PIM/photo.jpg", []byte{0xff, 0xd8, 0x01, 0x02})
	fs.Link("/Projects/PIM/All Projects", "/Projects")

	store := mail.NewStore()
	store.CreateFolder("Projects/OLAP")
	store.Append(&mail.Message{
		Folder: "Projects/OLAP", From: "alice@example.org",
		Subject: "indexing", Body: "the indexing time looks good",
		Date: time.Date(2005, 6, 2, 0, 0, 0, 0, time.UTC),
		Attachments: []mail.Attachment{{
			Filename: "results.tex",
			Data:     []byte("\\section{Results}\nIndexing time beats grep."),
		}},
	})

	conv := convert.Default().Func()
	m := New(opts)
	if err := m.AddSource(fsplugin.New("filesystem", fs, conv)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSource(mailplugin.New("email", store, conv)); err != nil {
		t.Fatal(err)
	}
	return m, fs, store
}

func TestSyncAllRegistersEverything(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	report, err := m.SyncAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Timings) != 2 {
		t.Fatalf("timings = %d", len(report.Timings))
	}
	if m.Count() == 0 || report.TotalViews() != m.Count() {
		t.Errorf("count=%d reported=%d", m.Count(), report.TotalViews())
	}
	// Derived views (latex sections) are registered alongside base items.
	fsB := m.Breakdown("filesystem")
	if fsB.Base == 0 || fsB.DerivedLatex == 0 {
		t.Errorf("filesystem breakdown = %+v", fsB)
	}
	mailB := m.Breakdown("email")
	if mailB.Base == 0 || mailB.DerivedLatex == 0 {
		t.Errorf("email breakdown = %+v", mailB)
	}
}

func TestSyncTimingBucketsPopulated(t *testing.T) {
	m, _, store := testSetup(t, DefaultOptions())
	store.SetLatency(mail.Latency{PerCall: 500 * time.Microsecond})
	report, err := m.SyncAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, timing := range report.Timings {
		if timing.Views == 0 {
			t.Errorf("%s indexed no views", timing.Source)
		}
		if timing.Total() <= 0 {
			t.Errorf("%s total time = %v", timing.Source, timing.Total())
		}
	}
	// With store latency on, email sync is dominated by data source
	// access — the Figure 5 shape.
	var email SyncTiming
	for _, timing := range report.Timings {
		if timing.Source == "email" {
			email = timing
		}
	}
	if email.DataSourceAccess <= email.CatalogInsert+email.ComponentIndexing {
		t.Errorf("email access=%v catalog=%v indexing=%v; access should dominate",
			email.DataSourceAccess, email.CatalogInsert, email.ComponentIndexing)
	}
}

func TestNameAndContentLookup(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	// Phrase lookup over content spanning base and derived views.
	hits := m.ContentPhrase("Mike Franklin")
	if len(hits) == 0 {
		t.Fatal("phrase not found")
	}
	for _, oid := range hits {
		e, _ := m.Entry(oid)
		if e.Source != "filesystem" {
			t.Errorf("unexpected source %q", e.Source)
		}
	}
	// Name index finds the Introduction section view.
	intro := m.LookupNameTerm("introduction")
	if len(intro) != 1 {
		t.Fatalf("introduction hits = %d", len(intro))
	}
	e, _ := m.Entry(intro[0])
	if e.Class != core.ClassLatexSection {
		t.Errorf("class = %q", e.Class)
	}
}

func TestWildcardNameMatch(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	// ?onclusion* matches "Conclusion" (Q5 of the paper uses this shape).
	oids := m.MatchNames("?onclusion*")
	if len(oids) != 1 || m.NameOf(oids[0]) != "Conclusion" {
		t.Errorf("wildcard match = %v", oids)
	}
	if got := m.MatchNames("*.tex"); len(got) != 2 { // vldb 2006.tex + results.tex
		names := make([]string, len(got))
		for i, o := range got {
			names[i] = m.NameOf(o)
		}
		t.Errorf("*.tex matched %v", names)
	}
}

func TestTupleQueryOverWFS(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	oids := m.TupleQuery("size", tupleindex.GT, core.Int(10))
	if len(oids) == 0 {
		t.Fatal("no views with size > 10")
	}
	for _, oid := range oids {
		tc, ok := m.Tuple(oid)
		if !ok {
			t.Fatalf("tuple replica missing for %d", oid)
		}
		if v, _ := tc.Get("size"); v.Int <= 10 {
			t.Errorf("size = %d", v.Int)
		}
	}
}

func TestGroupReplicaNavigation(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	pim := m.MatchNames("PIM")
	if len(pim) != 1 {
		t.Fatalf("PIM views = %d", len(pim))
	}
	children := m.Children(pim[0])
	if len(children) != 4 {
		t.Fatalf("PIM children = %d, want 4", len(children))
	}
	// Reverse edges: each child names PIM as parent.
	for _, c := range children {
		found := false
		for _, p := range m.Parents(c) {
			if p == pim[0] {
				found = true
			}
		}
		if !found {
			t.Errorf("child %q lacks reverse edge", m.NameOf(c))
		}
	}
}

func TestBinaryContentExcludedFromNetInput(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	// photo.jpg content is not indexed; notes.txt is.
	jpg, err := m.Catalog().ByURI("filesystem", "/Projects/PIM/photo.jpg")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ContentAnd("database", "tuning"); len(got) == 0 {
		t.Error("textual content not indexed")
	}
	for _, oid := range m.ContentOr("jpg") {
		if oid == jpg.OID {
			t.Error("binary content leaked into the content index")
		}
	}
	if m.NetInputBytes("filesystem") <= 0 {
		t.Error("net input not accounted")
	}
}

func TestIndexSizesNonZero(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	s := m.IndexSizes()
	if s.Name == 0 || s.Tuple == 0 || s.Content == 0 || s.Group == 0 || s.Catalog == 0 {
		t.Errorf("sizes = %+v", s)
	}
	if s.Total() != s.Name+s.Tuple+s.Content+s.Group+s.Catalog {
		t.Error("total mismatch")
	}
}

func TestResyncStableOIDs(t *testing.T) {
	m, fs, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	before, err := m.Catalog().ByURI("filesystem", "/Projects/PIM/notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	countBefore := m.Count()
	fs.WriteFile("/Projects/PIM/notes.txt", []byte("database tuning notes v2 with fresh words"))
	if _, err := m.SyncSource("filesystem"); err != nil {
		t.Fatal(err)
	}
	after, err := m.Catalog().ByURI("filesystem", "/Projects/PIM/notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	if after.OID != before.OID {
		t.Errorf("OID changed on resync: %d → %d", before.OID, after.OID)
	}
	if m.Count() != countBefore {
		t.Errorf("count changed: %d → %d", countBefore, m.Count())
	}
	if got := m.ContentPhrase("fresh words"); len(got) != 1 || got[0] != after.OID {
		t.Errorf("updated content not re-indexed: %v", got)
	}
}

func TestResyncRemovesDeleted(t *testing.T) {
	m, fs, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	notes, _ := m.Catalog().ByURI("filesystem", "/Projects/PIM/notes.txt")
	fs.Remove("/Projects/PIM/notes.txt")
	timing, err := m.SyncSource("filesystem")
	if err != nil {
		t.Fatal(err)
	}
	if timing.Removed != 1 {
		t.Errorf("removed = %d, want 1", timing.Removed)
	}
	if _, err := m.Entry(notes.OID); err == nil {
		t.Error("entry survives removal")
	}
	if got := m.ContentAnd("database", "tuning"); len(got) != 0 {
		t.Errorf("content index keeps removed doc: %v", got)
	}
	if _, ok := m.View(notes.OID); ok {
		t.Error("live view survives removal")
	}
}

func TestChangeNotificationMarksDirty(t *testing.T) {
	m, fs, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	fs.WriteFile("/Projects/PIM/new.txt", []byte("zanzibar content"))
	// The plugin pushes the event; wait for the dirty mark, then process.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ids, err := m.ProcessPending()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("change never marked source dirty")
		}
		time.Sleep(time.Millisecond)
	}
	if got := m.ContentOr("zanzibar"); len(got) != 1 {
		t.Errorf("new file not indexed: %v", got)
	}
}

func TestQueryShippingFallback(t *testing.T) {
	opts := DefaultOptions()
	opts.ReplicateGroups = false
	m, _, _ := testSetup(t, opts)
	m.SyncAll()
	pim := m.MatchNames("PIM")
	if len(pim) != 1 {
		t.Fatalf("PIM = %v", pim)
	}
	children := m.Children(pim[0])
	if len(children) != 4 {
		t.Errorf("query-shipping children = %d, want 4", len(children))
	}
	if m.GroupReplicaEdges() != 0 {
		t.Error("group replica populated despite ReplicateGroups=false")
	}
}

func TestBrokerPublishesDuringSync(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	var count int
	m.Broker().Subscribe("views/filesystem", stream.OperatorFunc(func(stream.Event) { count++ }))
	m.SyncAll()
	fsB := m.Breakdown("filesystem")
	if count != fsB.Total {
		t.Errorf("broker saw %d events, catalog has %d filesystem views", count, fsB.Total)
	}
}

func TestOIDsByClass(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	secs := m.OIDsByClass(core.ClassLatexSection)
	if len(secs) != 3 { // Introduction, Conclusion, Results
		names := make([]string, len(secs))
		for i, o := range secs {
			names[i] = m.NameOf(o)
		}
		t.Errorf("sections = %v", names)
	}
}

func TestAddSourceDuplicate(t *testing.T) {
	m, fs, _ := testSetup(t, DefaultOptions())
	err := m.AddSource(fsplugin.New("filesystem", fs, nil))
	if err == nil {
		t.Error("duplicate source accepted")
	}
}

func TestUnknownSourceSync(t *testing.T) {
	m := New(DefaultOptions())
	if _, err := m.SyncSource("nope"); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestWildcardMatch(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"?onclusion*", "Conclusion", true},
		{"?onclusion*", "conclusions", true},
		{"?onclusion*", "onclusion", false},
		{"*Vision", "GrandVision", true},
		{"*Vision", "Vision", true},
		{"*Vision", "Visionary", false},
		{"VLDB200?", "VLDB2006", true},
		{"VLDB200?", "VLDB20066", false},
		{"*.tex", "vldb 2006.tex", true},
		{"a*b*c", "axxbyyc", true},
		{"a*b*c", "acb", false},
	}
	for _, c := range cases {
		if got := WildcardMatch(c.pattern, c.name); got != c.want {
			t.Errorf("WildcardMatch(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestEntryParentChain(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	intro := m.LookupNameTerm("introduction")
	if len(intro) != 1 {
		t.Fatal("introduction missing")
	}
	// Walking Parent links reaches the filesystem root.
	oid := intro[0]
	steps := 0
	for {
		e, err := m.Entry(oid)
		if err != nil {
			t.Fatal(err)
		}
		if e.Parent == 0 {
			if e.URI != "/" {
				t.Errorf("chain ended at %q", e.URI)
			}
			break
		}
		oid = e.Parent
		if steps++; steps > 50 {
			t.Fatal("parent chain too deep")
		}
	}
}

func TestOIDsInClassSpecialization(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	// file must cover latexfile, xmlfile and attachment members.
	files := m.OIDsInClass(core.ClassFile)
	exact := m.OIDsByClass(core.ClassFile)
	if len(files) <= len(exact) {
		t.Errorf("in-class %d should exceed exact %d", len(files), len(exact))
	}
	classes := map[string]bool{}
	for _, oid := range files {
		e, _ := m.Entry(oid)
		classes[e.Class] = true
		if !m.Registry().IsA(e.Class, core.ClassFile) {
			t.Errorf("class %q not a file", e.Class)
		}
	}
	if !classes[core.ClassLatexFile] || !classes[core.ClassAttachment] {
		t.Errorf("classes = %v", classes)
	}
	for i := 1; i < len(files); i++ {
		if files[i-1] >= files[i] {
			t.Fatal("OIDsInClass not sorted")
		}
	}
}

func TestAllOIDsAndAccessors(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	oids := m.AllOIDs()
	if len(oids) != m.Count() {
		t.Errorf("AllOIDs = %d, Count = %d", len(oids), m.Count())
	}
	if _, ok := m.Source("filesystem"); !ok {
		t.Error("Source lookup failed")
	}
	if _, ok := m.Source("nope"); ok {
		t.Error("phantom source")
	}
	freqs := m.ContentPhraseFreqs("database")
	if len(freqs) == 0 {
		t.Error("no phrase freqs")
	}
	for oid, n := range freqs {
		if n <= 0 {
			t.Errorf("freq of %d = %d", oid, n)
		}
	}
}

func TestStartPollingRefreshes(t *testing.T) {
	m, fs, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	stop := m.StartPolling(2 * time.Millisecond)
	defer stop()
	fs.WriteFile("/Projects/PIM/polled.txt", []byte("pollsentinel content"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := m.ContentOr("pollsentinel"); len(got) == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("polling never indexed the new file")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestImageSimilarityIndex(t *testing.T) {
	opts := DefaultOptions()
	opts.IndexImages = true
	fs := vfs.New()
	fs.MkdirAll("/photos")
	img := func(center byte, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = center + byte(i%9)
		}
		return out
	}
	fs.WriteFile("/photos/dark1.jpg", img(20, 2048))
	fs.WriteFile("/photos/dark2.jpg", img(24, 2048))
	fs.WriteFile("/photos/bright.jpg", img(200, 2048))
	fs.WriteFile("/photos/readme.txt", []byte("not an image"))

	m := New(opts)
	if err := m.AddSource(fsplugin.New("fs", fs, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if m.ImageCount() != 3 {
		t.Fatalf("image count = %d, want 3 (text excluded)", m.ImageCount())
	}
	d1, err := m.Catalog().ByURI("fs", "/photos/dark1.jpg")
	if err != nil {
		t.Fatal(err)
	}
	got := m.SimilarImages(d1.OID, 1)
	if len(got) != 1 {
		t.Fatalf("similar = %v", got)
	}
	e, _ := m.Entry(got[0].OID)
	if e.URI != "/photos/dark2.jpg" {
		t.Errorf("nearest to dark1 = %s (sim %.3f)", e.URI, got[0].Similarity)
	}
	// Removal drops the image from the index.
	fs.Remove("/photos/dark2.jpg")
	m.SyncSource("fs")
	if m.ImageCount() != 2 {
		t.Errorf("image count after removal = %d", m.ImageCount())
	}
}

func TestImageIndexOffByDefault(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	if m.ImageCount() != 0 {
		t.Errorf("image index populated without the option: %d", m.ImageCount())
	}
}

func TestCompactAfterRemovals(t *testing.T) {
	m, fs, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	fs.Remove("/Projects/PIM/notes.txt")
	fs.Remove("/Projects/PIM/photo.jpg")
	m.SyncSource("filesystem")
	dropped := m.Compact()
	if dropped == 0 {
		t.Error("nothing to compact after removals")
	}
	// Queries still correct.
	if got := m.ContentAnd("database", "tuning"); len(got) != 0 {
		t.Errorf("removed content resurfaced: %v", got)
	}
	if got := m.ContentPhrase("Mike Franklin"); len(got) == 0 {
		t.Error("live content lost in compaction")
	}
}

func TestConverterForNames(t *testing.T) {
	cases := map[string]string{
		"xmlelem":       "xml2idm",
		"xmltext":       "xml2idm",
		"latex_section": "latex2idm",
		"texref":        "latex2idm",
		"figure":        "latex2idm",
		"environment":   "latex2idm",
		"caption":       "latex2idm",
		"other":         "converter",
	}
	for class, want := range cases {
		if got := converterFor(class); got != want {
			t.Errorf("converterFor(%q) = %q, want %q", class, got, want)
		}
	}
}

var _ = catalog.OID(0)
