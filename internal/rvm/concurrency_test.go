package rvm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/iql"
)

// TestConcurrentQueriesDuringSync hammers the manager with queries and
// navigation while a writer keeps mutating the filesystem and
// re-synchronizing. Run with -race; the assertion is the absence of
// races and panics, plus internally consistent results.
func TestConcurrentQueriesDuringSync(t *testing.T) {
	m, fs, _ := testSetup(t, DefaultOptions())
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	engine := iql.NewEngine(m, iql.Options{})

	var readers, writer sync.WaitGroup
	stop := make(chan struct{})

	// Writer: mutate and resync until the readers are done.
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fs.WriteFile(fmt.Sprintf("/Projects/PIM/gen-%03d.txt", i%20),
				[]byte(fmt.Sprintf("generated content %d with database words", i)))
			if _, err := m.SyncSource("filesystem"); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
		}
	}()

	// Readers: queries, navigation, stats.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			queries := []string{
				`"database"`,
				`//PIM//*[class="latex_section"]`,
				`[size > 10]`,
				`//[name = "*.txt"]`,
			}
			for i := 0; i < 50; i++ {
				q := queries[(i+r)%len(queries)]
				if _, err := engine.Query(q); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for _, oid := range m.AllOIDs()[:min(8, m.Count())] {
					m.Children(oid)
					m.Parents(oid)
					m.NameOf(oid)
				}
				m.IndexSizes()
				m.Breakdown("filesystem")
			}
		}(r)
	}

	// Journal reader.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; i < 200; i++ {
			m.Changes(0)
			m.Version()
		}
	}()

	// The readers are bounded; once they finish, stop the writer.
	readers.Wait()
	close(stop)
	writer.Wait()

	// Post-condition: the dataspace is still consistent.
	if _, err := m.SyncSource("filesystem"); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Query(`"generated content"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() == 0 {
		t.Error("no generated files indexed")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
