package rvm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/convert"
	"repro/internal/sources/fsplugin"
	"repro/internal/vfs"
)

// TestSyncModelConsistency is a model-based test of the Synchronization
// Manager: apply random sequences of filesystem operations, resync, and
// check that the catalog's base-item URIs are exactly the filesystem's
// paths — no stale entries, no missing ones — and that OIDs of
// surviving paths never change.
func TestSyncModelConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 8; trial++ {
		fs := vfs.New()
		fs.MkdirAll("/w")
		m := New(DefaultOptions())
		if err := m.AddSource(fsplugin.New("fs", fs, convert.Default().Func())); err != nil {
			t.Fatal(err)
		}
		if _, err := m.SyncAll(); err != nil {
			t.Fatal(err)
		}

		oidOf := map[string]uint64{}
		var paths []string // live file paths, model state

		for step := 0; step < 40; step++ {
			switch op := rng.Intn(10); {
			case op < 5 || len(paths) == 0: // create
				name := fmt.Sprintf("/w/f%02d-%02d.txt", trial, step)
				if rng.Intn(4) == 0 {
					name = fmt.Sprintf("/w/doc%02d-%02d.tex", trial, step)
				}
				body := fmt.Sprintf("content %d %d", trial, step)
				if strings.HasSuffix(name, ".tex") {
					body = fmt.Sprintf("\\section{S%d}\nwords %d", step, step)
				}
				if _, err := fs.WriteFile(name, []byte(body)); err == nil {
					paths = append(paths, name)
				}
			case op < 7: // update
				p := paths[rng.Intn(len(paths))]
				fs.WriteFile(p, []byte(fmt.Sprintf("updated %d", step)))
			default: // remove
				i := rng.Intn(len(paths))
				fs.Remove(paths[i])
				paths = append(paths[:i], paths[i+1:]...)
			}

			if rng.Intn(3) == 0 { // resync at random points
				if _, err := m.SyncSource("fs"); err != nil {
					t.Fatal(err)
				}
				checkModel(t, m, fs, paths, oidOf)
			}
		}
		if _, err := m.SyncSource("fs"); err != nil {
			t.Fatal(err)
		}
		checkModel(t, m, fs, paths, oidOf)
	}
}

// checkModel compares the catalog's filesystem base items against the
// model's live paths.
func checkModel(t *testing.T, m *Manager, fs *vfs.FS, paths []string, oidOf map[string]uint64) {
	t.Helper()
	var catalogFiles []string
	for _, oid := range m.Catalog().SourceOIDs("fs") {
		e, err := m.Catalog().Get(oid)
		if err != nil {
			t.Fatal(err)
		}
		if e.Derived || !strings.HasPrefix(e.URI, "/w/") || !strings.Contains(e.URI, ".") {
			continue // folders, root, derived views
		}
		catalogFiles = append(catalogFiles, e.URI)
		if prev, seen := oidOf[e.URI]; seen && prev != uint64(e.OID) {
			t.Fatalf("OID of %s changed: %d → %d", e.URI, prev, e.OID)
		}
		oidOf[e.URI] = uint64(e.OID)
	}
	want := append([]string(nil), paths...)
	sort.Strings(want)
	sort.Strings(catalogFiles)
	if fmt.Sprint(want) != fmt.Sprint(catalogFiles) {
		t.Fatalf("catalog diverged from filesystem:\n fs:      %v\n catalog: %v", want, catalogFiles)
	}
	// Every live file is also content-searchable via its unique body.
	for _, p := range paths {
		e, err := m.Catalog().ByURI("fs", p)
		if err != nil {
			t.Fatalf("live path %s unregistered: %v", p, err)
		}
		if _, ok := m.View(e.OID); !ok {
			t.Fatalf("live view missing for %s", p)
		}
	}
}
