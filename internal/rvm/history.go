package rvm

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
)

// This file implements the two §8 follow-ups the paper singles out as
// "strongly simplified once a data model like iDM is in place":
//
// Versioning — logically, each change creates a new version of the whole
// dataspace. The manager keeps a monotonically increasing dataspace
// version and a change journal; every register/update/removal performed
// by the Synchronization Manager appends a record.
//
// Lineage — the history of transformations that originated a resource
// view. Derived views record which base item and which Content2iDM
// converter produced them; explicit derivations (e.g. file copies) may
// be recorded by callers.

// ChangeKind classifies journal records.
type ChangeKind int

// Journal record kinds.
const (
	ChangeAdded ChangeKind = iota
	ChangeUpdated
	ChangeRemoved
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeAdded:
		return "added"
	case ChangeUpdated:
		return "updated"
	case ChangeRemoved:
		return "removed"
	default:
		return fmt.Sprintf("changekind(%d)", int(k))
	}
}

// ChangeRecord is one entry of the dataspace change journal.
type ChangeRecord struct {
	// Version is the dataspace version this change created.
	Version uint64
	Kind    ChangeKind
	OID     catalog.OID
	Source  string
	URI     string
	Name    string
}

// history holds the versioning and lineage state of a manager.
type history struct {
	mu      sync.RWMutex
	version uint64
	journal []ChangeRecord
	// derivations records explicit lineage edges: dst ← src with a
	// transformation label.
	derivations map[catalog.OID][]Derivation
}

// Derivation is one explicit lineage edge.
type Derivation struct {
	From catalog.OID
	How  string
}

func newHistory() *history {
	return &history{derivations: make(map[catalog.OID][]Derivation)}
}

// bump advances the dataspace version without a journal entry — the
// replication apply path uses it for changes that carry no per-view
// journal record (edge commits, source drops, counter pins), so
// version-keyed query and plan caches still invalidate.
func (h *history) bump() {
	h.mu.Lock()
	h.version++
	h.mu.Unlock()
}

func (h *history) record(r ChangeRecord) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.version++
	r.Version = h.version
	h.journal = append(h.journal, r)
}

// Version returns the current dataspace version: the number of changes
// applied since the manager was created.
func (m *Manager) Version() uint64 {
	m.history.mu.RLock()
	defer m.history.mu.RUnlock()
	return m.history.version
}

// Changes returns every journal record with Version > since, oldest
// first.
func (m *Manager) Changes(since uint64) []ChangeRecord {
	m.history.mu.RLock()
	defer m.history.mu.RUnlock()
	// The journal is version-ordered; binary search would do, but the
	// journal is append-only and versions are dense, so index directly.
	if since >= m.history.version {
		return nil
	}
	start := int(since) // versions are 1-based and dense
	if start > len(m.history.journal) {
		start = len(m.history.journal)
	}
	out := make([]ChangeRecord, len(m.history.journal)-start)
	copy(out, m.history.journal[start:])
	return out
}

// RecordDerivation records an explicit lineage edge: the view dst was
// produced from src by the given transformation (e.g. "copy",
// "reference-reconciliation"). Automatic structural lineage (derived
// views to their base item via the converter) needs no recording.
func (m *Manager) RecordDerivation(dst, src catalog.OID, how string) {
	m.history.mu.Lock()
	defer m.history.mu.Unlock()
	m.history.derivations[dst] = append(m.history.derivations[dst], Derivation{From: src, How: how})
}

// LineageStep is one hop of a view's provenance chain.
type LineageStep struct {
	OID catalog.OID
	// Name and Class identify the view at this hop.
	Name  string
	Class string
	// Relation describes how this hop relates to the previous one:
	// "self", "contained-in", "derived-by <converter>", or an explicit
	// derivation label.
	Relation string
}

// Lineage returns the provenance chain of a view, starting at the view
// itself and walking towards its base item: derived views (XML/LaTeX
// subgraphs) resolve through the Content2iDM converter that produced
// them to the file or attachment they came from; base items walk their
// containment chain to the source root. Explicit derivations recorded
// with RecordDerivation are appended after the structural chain.
func (m *Manager) Lineage(oid catalog.OID) ([]LineageStep, error) {
	var steps []LineageStep
	e, err := m.catalog.Get(oid)
	if err != nil {
		return nil, err
	}
	steps = append(steps, LineageStep{OID: e.OID, Name: e.Name, Class: e.Class, Relation: "self"})
	cur := e
	for depth := 0; cur.Parent != 0 && depth < 256; depth++ {
		parent, err := m.catalog.Get(cur.Parent)
		if err != nil {
			break
		}
		relation := "contained-in"
		if cur.Derived && !parent.Derived {
			// Crossing from the derived subgraph into the base item:
			// this is where the converter ran.
			relation = "derived-by " + converterFor(cur.Class)
		}
		steps = append(steps, LineageStep{
			OID: parent.OID, Name: parent.Name, Class: parent.Class, Relation: relation,
		})
		cur = parent
	}
	m.history.mu.RLock()
	for _, d := range m.history.derivations[oid] {
		if src, err := m.catalog.Get(d.From); err == nil {
			steps = append(steps, LineageStep{
				OID: src.OID, Name: src.Name, Class: src.Class, Relation: d.How,
			})
		}
	}
	m.history.mu.RUnlock()
	return steps, nil
}

// converterFor names the Content2iDM converter that produces views of
// the given class.
func converterFor(class string) string {
	switch {
	case strings.HasPrefix(class, "xml"):
		return "xml2idm"
	case strings.HasPrefix(class, "latex"), class == "texref",
		class == "environment", class == "figure", class == "caption":
		return "latex2idm"
	default:
		return "converter"
	}
}
