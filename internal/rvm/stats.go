package rvm

import (
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/tupleindex"
	"repro/internal/wildcard"
)

// This file implements the iql.StatsProvider contract on the manager:
// cheap cardinality estimates answered from index metadata the
// Replica&Indexes module already maintains. Every estimate is an upper
// bound; the query processor uses them only to order work and pick
// strategies, never for correctness.

// estCache memoizes the estimates that would otherwise scan on every
// query: per-root descendant counts for EstimateReach and
// specialization-aware member counts for EstimateClass. Entries are
// valid for one dataspace version: any applied change bumps the
// version and the next estimate rebuilds from an empty cache.
type estCache struct {
	mu         sync.Mutex
	version    uint64
	valid      bool
	counts     map[catalog.OID]int
	classCards map[string]int
}

// resetLocked clears the cache when the dataspace version moved.
// Caller holds c.mu.
func (c *estCache) resetLocked(v uint64) {
	if c.valid && v == c.version {
		return
	}
	c.version = v
	c.valid = true
	c.counts = make(map[catalog.OID]int)
	c.classCards = make(map[string]int)
}

// EstimatePhrase bounds the number of views whose content contains the
// phrase by the shortest posting list of the phrase's tokens.
func (m *Manager) EstimatePhrase(phrase string) int {
	return m.contentIdx.PhraseCardUpper(phrase)
}

// EstimateClass counts the members of the class and its specializations
// from the class index — exact (modulo concurrent changes), O(classes)
// on first ask, memoized per dataspace version afterwards: the scan is
// measurable planner overhead on microsecond-scale queries.
func (m *Manager) EstimateClass(class string) int {
	m.est.mu.Lock()
	defer m.est.mu.Unlock()
	m.est.resetLocked(m.Version())
	if n, ok := m.est.classCards[class]; ok {
		return n
	}
	m.mu.RLock()
	n := 0
	for c, members := range m.classRep {
		if c == "" {
			continue
		}
		if c == class || m.registry.IsA(c, class) {
			n += len(members)
		}
	}
	m.mu.RUnlock()
	m.est.classCards[class] = n
	return n
}

// EstimateNamePattern answers exact-name patterns from the exact-match
// lane of the name replica in O(1). Wildcard patterns would need a scan
// to count, so they report ok = false and the planner falls back to
// other constraints.
func (m *Manager) EstimateNamePattern(pattern string) (int, bool) {
	lowered := strings.ToLower(pattern)
	if wildcard.IsPattern(lowered) {
		return 0, false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byLowerName[lowered]), true
}

// EstimateTuple bounds the number of views whose attribute satisfies
// (op, value) from the sorted column span, O(log n).
func (m *Manager) EstimateTuple(attr string, op tupleindex.Op, value core.Value) int {
	return m.tupleIdx.CardEstimate(attr, op, value)
}

// estimateSampleCap bounds the work of fanout estimation over large
// inputs: beyond it the estimate extrapolates from an even sample.
const estimateSampleCap = 512

// EstimateFanout bounds the number of child edges leaving the given
// views, from the group replica's adjacency lists.
func (m *Manager) EstimateFanout(oids []catalog.OID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(oids) <= estimateSampleCap {
		n := 0
		for _, oid := range oids {
			n += len(m.groupRep[oid])
		}
		return n
	}
	step := len(oids) / estimateSampleCap
	n, sampled := 0, 0
	for i := 0; i < len(oids); i += step {
		n += len(m.groupRep[oids[i]])
		sampled++
	}
	return n * len(oids) / sampled
}

// EstimateReach bounds the number of views reachable from the given
// views through group edges. Per-root subtree sizes are memoized across
// calls and invalidated by dataspace version, so a benchmark or query
// burst over a stable dataspace pays the traversal once; overlapping
// subtrees among roots may be double-counted (the result stays an upper
// bound, capped at the view count).
func (m *Manager) EstimateReach(oids []catalog.OID) int {
	m.est.mu.Lock()
	defer m.est.mu.Unlock()
	m.est.resetLocked(m.Version())
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := len(m.views)
	sum := 0
	for _, oid := range oids {
		sum += m.descCountLocked(oid)
		if sum >= total {
			return total
		}
	}
	return sum
}

// descCountLocked counts the views reachable from oid through group
// edges, memoized in the estimate cache. Cycles (which the group
// replica can represent) are broken with an in-progress marker: an edge
// back into a view being counted contributes only the edge's target
// count from elsewhere, keeping the recursion finite. Caller holds
// est.mu and m.mu (read).
func (m *Manager) descCountLocked(oid catalog.OID) int {
	const inProgress = -1
	if n, ok := m.est.counts[oid]; ok {
		if n == inProgress {
			return 0
		}
		return n
	}
	m.est.counts[oid] = inProgress
	n := 0
	for _, ch := range m.groupRep[oid] {
		n += 1 + m.descCountLocked(ch)
	}
	if cap := len(m.views); n > cap {
		n = cap
	}
	m.est.counts[oid] = n
	return n
}
