package rvm

import (
	"sort"
	"time"

	"repro/internal/sources"
)

// SourceHealth is the Synchronization Manager's view of one data
// source's availability. A source whose last synchronization failed is
// degraded: its previously replicated resource views stay queryable, and
// the query layer flags results touching them as stale (graceful
// degradation, instead of failing the query — the paper's §5.2 sources
// are intermittently connected by design).
type SourceHealth struct {
	Source string
	// Degraded reports that the last sync attempt failed.
	Degraded bool
	// LastError is the last sync failure, "" when healthy.
	LastError string
	// ConsecutiveFailures counts sync failures since the last success.
	ConsecutiveFailures int
	// LastSuccess is when the source last synced completely (zero if
	// never).
	LastSuccess time.Time
	// Breaker is the resilient proxy's circuit state ("closed",
	// "half-open", "open"), or "" when the source is unwrapped.
	Breaker string
}

// Health reports the health of every registered source, sorted by id.
func (m *Manager) Health() []SourceHealth {
	m.mu.RLock()
	out := make([]SourceHealth, 0, len(m.health))
	for id, h := range m.health {
		sh := *h
		if r, ok := m.sources[id].(*sources.Resilient); ok {
			st, _ := r.Breaker()
			sh.Breaker = st.String()
		}
		out = append(out, sh)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// DegradedSources returns the ids of sources whose last sync failed,
// sorted. The query layer consults this to flag results served from
// stale replicas.
func (m *Manager) DegradedSources() []string {
	m.mu.RLock()
	var out []string
	for id, h := range m.health {
		if h.Degraded {
			out = append(out, id)
		}
	}
	m.mu.RUnlock()
	sort.Strings(out)
	return out
}

// recordSyncOutcome updates a source's health after a sync attempt.
func (m *Manager) recordSyncOutcome(id string, err error) {
	m.mu.Lock()
	h := m.health[id]
	if h == nil {
		h = &SourceHealth{Source: id}
		m.health[id] = h
	}
	if err != nil {
		h.Degraded = true
		h.LastError = err.Error()
		h.ConsecutiveFailures++
	} else {
		h.Degraded = false
		h.LastError = ""
		h.ConsecutiveFailures = 0
		h.LastSuccess = time.Now()
	}
	m.mu.Unlock()
	if err != nil {
		m.met.syncErrors.Inc()
	}
	m.updateDegradedGauge()
}

func (m *Manager) updateDegradedGauge() {
	m.mu.RLock()
	n := 0
	for _, h := range m.health {
		if h.Degraded {
			n++
		}
	}
	m.mu.RUnlock()
	m.met.degraded.Set(int64(n))
}
