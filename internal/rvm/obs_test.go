package rvm

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestSyncMetricsAndSourceInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Metrics = reg
	m, _, _ := testSetup(t, opts)
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["rvm_syncs_total"]; got != 2 {
		t.Errorf("rvm_syncs_total = %d, want 2 (filesystem + email)", got)
	}
	if got := snap.Gauges["rvm_views"]; got != int64(m.Count()) {
		t.Errorf("rvm_views = %d, want %d", got, m.Count())
	}
	if snap.Counters["rvm_sync_views_total"] == 0 {
		t.Error("rvm_sync_views_total did not record")
	}
	if snap.Histograms["rvm_sync_ns"].Count != 2 {
		t.Errorf("rvm_sync_ns count = %d, want 2", snap.Histograms["rvm_sync_ns"].Count)
	}
	// The plugins received per-source instruments through AddSource.
	if snap.Counters["source_filesystem_root_calls_total"] != 1 {
		t.Errorf("source_filesystem_root_calls_total = %d, want 1",
			snap.Counters["source_filesystem_root_calls_total"])
	}
	if snap.Counters["source_filesystem_views_built_total"] == 0 {
		t.Error("source_filesystem_views_built_total did not record")
	}
	// The broker carries the shared registry.
	if snap.Counters["stream_events_published_total"] == 0 {
		t.Error("stream_events_published_total did not record")
	}
	// Query-side lookup counters record through the Store interface.
	m.MatchNames("notes*")
	m.ContentPhrase("indexing")
	snap = reg.Snapshot()
	if snap.Counters["rvm_name_matches_total"] != 1 || snap.Counters["rvm_phrase_lookups_total"] != 1 {
		t.Errorf("lookup counters = %d/%d, want 1/1",
			snap.Counters["rvm_name_matches_total"], snap.Counters["rvm_phrase_lookups_total"])
	}
}

func TestSyncAllTracedSpans(t *testing.T) {
	opts := DefaultOptions()
	m, _, _ := testSetup(t, opts)
	tr := obs.NewTrace("sync all")
	if _, err := m.SyncAllTraced(tr); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	out := tr.Render()
	for _, want := range []string{"sync filesystem", "sync email", "views=", "source access="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestUninstrumentedManagerIsInert(t *testing.T) {
	m, _, _ := testSetup(t, DefaultOptions())
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	// No registry anywhere: lookups must not panic.
	m.MatchNames("*")
	m.ContentPhrase("indexing")
	m.Children(1)
}
