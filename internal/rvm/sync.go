package rvm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/imageindex"
	"repro/internal/obs"
	"repro/internal/sources"
	"repro/internal/store"
	"repro/internal/textindex"
	"repro/internal/tupleindex"
)

// SyncTiming is the per-source timing breakdown Figure 5 of the paper
// reports: the time spent registering metadata in the Resource View
// Catalog, the time spent inserting into the index structures, and the
// time spent obtaining data from the underlying data source.
type SyncTiming struct {
	Source            string
	CatalogInsert     time.Duration
	ComponentIndexing time.Duration
	DataSourceAccess  time.Duration
	Views             int
	Removed           int
}

// Total returns the total indexing time for the source.
func (t SyncTiming) Total() time.Duration {
	return t.CatalogInsert + t.ComponentIndexing + t.DataSourceAccess
}

// SyncReport aggregates one full synchronization.
type SyncReport struct {
	Timings []SyncTiming
}

// TotalViews sums the views registered across sources.
func (r SyncReport) TotalViews() int {
	n := 0
	for _, t := range r.Timings {
		n += t.Views
	}
	return n
}

// SyncAll synchronizes every registered source: it walks each source's
// resource view graph and sends every resource view definition to the
// Replica&Indexes module, as the Synchronization Manager does when a
// data source is registered (§5.2).
func (m *Manager) SyncAll() (SyncReport, error) {
	return m.SyncAllTraced(nil)
}

// SyncAllTraced is SyncAll with span-based tracing: one span per source
// under the trace root, annotated with the Figure 5 timing breakdown.
// A nil trace is identical to SyncAll.
//
// Per-source failures are isolated: a failing source does not abort the
// pass, healthy sources still sync, and the failures come back joined
// into one multi-error (errors.Is finds each cause). Sources that fail
// are marked degraded; their previously replicated views remain
// queryable as stale data.
func (m *Manager) SyncAllTraced(trace *obs.Trace) (SyncReport, error) {
	var report SyncReport
	var errs []error
	for _, id := range m.Sources() {
		sp := trace.Root().Start("sync " + id)
		t, err := m.SyncSource(id)
		if sp != nil {
			sp.SetInt("views", int64(t.Views))
			sp.SetInt("removed", int64(t.Removed))
			sp.Set("catalog", t.CatalogInsert.String())
			sp.Set("indexing", t.ComponentIndexing.String())
			sp.Set("source access", t.DataSourceAccess.String())
			if err != nil {
				sp.Set("error", err.Error())
			}
			sp.Finish()
		}
		if err != nil {
			errs = append(errs, err)
			continue
		}
		report.Timings = append(report.Timings, t)
	}
	return report, errors.Join(errs...)
}

// SyncSource (re)synchronizes one source. Catalog OIDs are stable across
// syncs (keyed by source URI); views whose URIs have disappeared are
// deregistered and removed from all indexes and replicas.
//
// The group replica is committed atomically at the end of a successful
// walk: a sync that fails midway (source went down, converter crashed)
// leaves the previous replica intact, so queries keep navigating the
// last good graph — served stale, flagged via DegradedSources.
func (m *Manager) SyncSource(id string) (SyncTiming, error) {
	timing, err := m.syncSource(id)
	m.recordSyncOutcome(id, err)
	return timing, err
}

func (m *Manager) syncSource(id string) (SyncTiming, error) {
	syncStart := time.Now()
	m.mu.RLock()
	src, ok := m.sources[id]
	m.mu.RUnlock()
	if !ok {
		return SyncTiming{}, fmt.Errorf("rvm: unknown source %q", id)
	}

	timing := SyncTiming{Source: id}
	w := &syncWalk{m: m, source: id, timing: &timing,
		viewOID:  make(map[core.ResourceView]catalog.OID),
		expanded: make(map[core.ResourceView]bool),
		seen:     make(map[catalog.OID]bool),
		group:    make(map[catalog.OID][]catalog.OID),
	}

	start := time.Now()
	root, err := src.Root()
	timing.DataSourceAccess += time.Since(start)
	if err != nil {
		return timing, fmt.Errorf("rvm: source %q root: %w", id, err)
	}

	rootOID, err := w.register(root, 0, "", 0)
	if err != nil {
		return timing, err
	}
	if err := w.expandAll(root, rootOID); err != nil {
		return timing, err
	}

	// The walk succeeded: replace the source's slice of the group
	// replica and reverse edges with the newly observed graph. The
	// commit is logged to the WAL before it is applied.
	start = time.Now()
	if err := w.commitReplica(); err != nil {
		return timing, err
	}
	timing.ComponentIndexing += time.Since(start)

	// Deregister views that disappeared from the source.
	for _, oid := range m.catalog.SourceOIDs(id) {
		if !w.seen[oid] {
			if err := m.remove(oid); err != nil {
				return timing, err
			}
			timing.Removed++
		}
	}
	m.mu.Lock()
	delete(m.dirty, id)
	m.mu.Unlock()

	m.met.syncs.Inc()
	m.met.syncNs.ObserveSince(syncStart)
	m.met.syncViews.Add(int64(timing.Views))
	m.met.syncRemoved.Add(int64(timing.Removed))
	m.met.views.Set(int64(m.catalog.Count()))
	obs.Logger("rvm").Debug("sync complete",
		"source", id, "views", timing.Views, "removed", timing.Removed,
		"total", time.Since(syncStart))
	return timing, nil
}

// ProcessPending resynchronizes every source marked dirty by change
// notifications (or by MarkDirty), returning the ids it refreshed. This
// is the deterministic core of the Synchronization Manager's
// notification path; StartPolling drives it on a timer for sources that
// cannot push. Like SyncAll, per-source failures are isolated and
// joined; a failing source stays dirty for the next round.
func (m *Manager) ProcessPending() ([]string, error) {
	m.mu.Lock()
	var ids []string
	for id := range m.dirty {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	var errs []error
	for _, id := range ids {
		if _, err := m.SyncSource(id); err != nil {
			errs = append(errs, err)
		}
	}
	return ids, errors.Join(errs...)
}

// MarkDirty flags a source for the next ProcessPending, used by callers
// that detect updates out of band.
func (m *Manager) MarkDirty(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirty[id] = true
}

// StartPolling runs ProcessPending on every interval until the returned
// stop function is called — the regular polling the Synchronization
// Manager performs "to synchronize the catalog, replicas and indexes for
// updates that were done bypassing the RVM layer" (§5.2). Every poll
// also marks all sources dirty so that pull-only sources are refreshed.
func (m *Manager) StartPolling(interval time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ticker.C:
				for _, id := range m.Sources() {
					m.MarkDirty(id)
				}
				m.ProcessPending()
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
	}
}

// syncWalk carries the state of one source synchronization.
type syncWalk struct {
	m      *Manager
	source string
	timing *SyncTiming
	// viewOID maps each live view touched in this sync to its OID.
	viewOID map[core.ResourceView]catalog.OID
	// expanded marks views whose children have been walked.
	expanded map[core.ResourceView]bool
	// seen collects the OIDs observed, for removal detection.
	seen map[catalog.OID]bool
	// group buffers the group edges observed during the walk; they are
	// committed to the manager's replica only when the whole walk
	// succeeds, so a failing sync never corrupts the last good graph.
	group map[catalog.OID][]catalog.OID
}

// commitReplica atomically replaces the source's slice of the group
// replica (and the reverse edges derived from it) with the edges this
// walk observed. With a durability layer, the commit is logged to the
// WAL (and, under the default policy, fsynced) before it is applied —
// this record is the sync's durable commit point.
func (w *syncWalk) commitReplica() error {
	m := w.m
	if err := m.logEdges(w.source, w.group); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, oid := range m.catalog.SourceOIDs(w.source) {
		for _, child := range m.groupRep[oid] {
			m.parentRep[child] = removeOID(m.parentRep[child], oid)
		}
		delete(m.groupRep, oid)
	}
	for oid, childOIDs := range w.group {
		if m.opts.ReplicateGroups {
			m.groupRep[oid] = childOIDs
		}
		for _, coid := range childOIDs {
			m.parentRep[coid] = appendUniqueOID(m.parentRep[coid], oid)
		}
	}
	return nil
}

// register assigns (or re-finds) the OID for a view and sends its
// component definitions to the Replica&Indexes module. It is idempotent
// per sync. Added or updated views are logged to the WAL before the
// in-memory indexes and replicas are touched; a failed log aborts the
// sync, leaving the previous durable state the recovery target.
func (w *syncWalk) register(v core.ResourceView, parent catalog.OID, parentURI string, ordinal int) (catalog.OID, error) {
	if oid, done := w.viewOID[v]; done {
		return oid, nil
	}
	m := w.m

	// --- Data source access: pull the component values. ---------------
	start := time.Now()
	name := v.Name()
	class := v.Class()
	tc := v.Tuple()
	content := v.Content()
	var text string
	var binary []byte
	var contentSize int64 = -1
	hasContent := !core.IsEmptyContent(content)
	if hasContent {
		if content.Finite() {
			contentSize = content.Size()
			if isTextual(name) {
				b, err := core.ReadAllContent(content, m.opts.MaxContentBytes)
				if err == nil {
					text = string(b)
					if contentSize < 0 {
						contentSize = int64(len(b))
					}
				}
			} else if m.opts.IndexImages {
				b, err := core.ReadAllContent(content, m.opts.MaxContentBytes)
				if err == nil {
					binary = b
				}
			}
		}
	}
	uri, base := "", false
	if item, ok := v.(*sources.Item); ok {
		uri, base = item.URI(), item.IsBase()
	}
	if uri == "" {
		uri = fmt.Sprintf("%s#%d", parentURI, ordinal)
	}
	w.timing.DataSourceAccess += time.Since(start)

	// --- Catalog insert. ----------------------------------------------
	start = time.Now()
	stamp := modStamp(tc, contentSize)
	prev, prevErr := m.catalog.ByURI(w.source, uri)
	ent := catalog.Entry{
		Name:        name,
		Class:       class,
		Source:      w.source,
		URI:         uri,
		Parent:      parent,
		HasTuple:    !tc.IsEmpty(),
		HasContent:  hasContent,
		ContentSize: contentSize,
		Stamp:       stamp,
		Derived:     !base,
	}
	oid := m.catalog.Register(ent)
	ent.OID = oid
	w.timing.CatalogInsert += time.Since(start)

	// --- Versioning journal (§8). ---------------------------------------
	// Each change creates a new version of the dataspace: new URIs are
	// additions; re-registered URIs are updates when any cataloged
	// property changed (unchanged views are not journaled).
	changed := false
	if prevErr != nil {
		changed = true
		m.history.record(ChangeRecord{Kind: ChangeAdded, OID: oid, Source: w.source, URI: uri, Name: name})
	} else if prev.Name != name || prev.Class != class || prev.ContentSize != contentSize || prev.Stamp != stamp {
		changed = true
		m.history.record(ChangeRecord{Kind: ChangeUpdated, OID: oid, Source: w.source, URI: uri, Name: name})
	}

	// --- Write-ahead logging. ------------------------------------------
	// Unchanged re-registrations are not logged: the durable state
	// already carries this exact record (the same fingerprint rule that
	// keeps them out of the change journal and off the broker).
	if changed {
		if err := m.logUpsert(w.source, ent, store.ViewRecord{Tuple: tc, Text: text, Binary: binary}); err != nil {
			return 0, err
		}
	}

	// --- Component indexing. -------------------------------------------
	start = time.Now()
	m.nameIdx.Add(textindex.DocID(oid), name)
	if !tc.IsEmpty() {
		m.tupleIdx.Add(tupleindex.DocID(oid), tc)
	}
	if text != "" {
		m.contentIdx.Add(textindex.DocID(oid), text)
	}
	if len(binary) > 0 {
		m.imageIdx.Add(imageindex.DocID(oid), binary)
	}
	m.mu.Lock()
	lowered := strings.ToLower(name)
	if old, ok := m.nameLower[oid]; ok && old != lowered {
		delete(m.byLowerName[old], oid)
	}
	m.nameRep[oid] = name
	m.nameLower[oid] = lowered
	exact := m.byLowerName[lowered]
	if exact == nil {
		exact = make(map[catalog.OID]struct{})
		m.byLowerName[lowered] = exact
	}
	exact[oid] = struct{}{}
	m.views[oid] = v
	if old, ok := m.classOf[oid]; ok && old != class {
		delete(m.classRep[old], oid)
	}
	m.classOf[oid] = class
	members := m.classRep[class]
	if members == nil {
		members = make(map[catalog.OID]struct{})
		m.classRep[class] = members
	}
	members[oid] = struct{}{}
	if text != "" {
		m.contentBytes[w.source] += int64(len(text))
	}
	m.mu.Unlock()
	w.timing.ComponentIndexing += time.Since(start)

	// Push the change (§4.4.2): only added or updated views flow to the
	// broker, so continuous filters see each change exactly once.
	if changed {
		pv := &PublishedView{ResourceView: v, OID: oid}
		m.broker.Publish("views/"+w.source, pv)
		m.broker.Publish(TopicAllViews, pv)
	}

	w.viewOID[v] = oid
	w.seen[oid] = true
	w.timing.Views++
	return oid, nil
}

// expandAll walks the graph from root iteratively, registering every
// reachable view and buffering the group edges for commitReplica.
func (w *syncWalk) expandAll(root core.ResourceView, rootOID catalog.OID) error {
	m := w.m
	type frame struct {
		v   core.ResourceView
		oid catalog.OID
		uri string
	}
	entry, err := m.catalog.Get(rootOID)
	if err != nil {
		return err
	}
	stack := []frame{{v: root, oid: rootOID, uri: entry.URI}}
	w.expanded[root] = true
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		start := time.Now()
		children, err := childrenBounded(f.v, m.opts.InfinitePrefix)
		w.timing.DataSourceAccess += time.Since(start)
		if err != nil {
			return fmt.Errorf("rvm: expanding %q: %w", core.NameOf(f.v), err)
		}
		var childOIDs []catalog.OID
		for i, c := range children {
			coid, err := w.register(c, f.oid, f.uri, i)
			if err != nil {
				return err
			}
			childOIDs = append(childOIDs, coid)
			if !w.expanded[c] {
				w.expanded[c] = true
				ce, err := m.catalog.Get(coid)
				if err != nil {
					return err
				}
				stack = append(stack, frame{v: c, oid: coid, uri: ce.URI})
			}
		}
		if len(childOIDs) > 0 {
			w.group[f.oid] = childOIDs
		}
	}
	return nil
}

func childrenBounded(v core.ResourceView, prefix int) ([]core.ResourceView, error) {
	g := v.Group()
	var out []core.ResourceView
	for _, part := range []core.Views{g.Set, g.Seq} {
		if part == nil {
			continue
		}
		lim := 0
		if !part.Finite() {
			lim = prefix
		}
		vs, err := core.CollectViews(part, lim)
		if err != nil {
			return out, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// modStamp derives the update fingerprint of a view: the lastmodified
// tuple attribute when present, falling back to the content size.
func modStamp(tc core.TupleComponent, contentSize int64) string {
	if v, ok := tc.Get("lastmodified"); ok {
		return v.String()
	}
	if contentSize >= 0 {
		return fmt.Sprintf("sz:%d", contentSize)
	}
	return ""
}

// remove deregisters one view from the catalog and every index/replica.
// The removal is logged to the WAL before it is applied.
func (m *Manager) remove(oid catalog.OID) error {
	if e, err := m.catalog.Get(oid); err == nil {
		if err := m.logRemove(e.Source, oid); err != nil {
			return err
		}
		m.history.record(ChangeRecord{Kind: ChangeRemoved, OID: oid, Source: e.Source, URI: e.URI, Name: e.Name})
	}
	m.catalog.Remove(oid)
	m.nameIdx.Delete(textindex.DocID(oid))
	m.contentIdx.Delete(textindex.DocID(oid))
	m.tupleIdx.Delete(tupleindex.DocID(oid))
	m.imageIdx.Delete(imageindex.DocID(oid))
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.nameRep, oid)
	if lowered, ok := m.nameLower[oid]; ok {
		delete(m.byLowerName[lowered], oid)
		delete(m.nameLower, oid)
	}
	delete(m.views, oid)
	if class, ok := m.classOf[oid]; ok {
		delete(m.classRep[class], oid)
		delete(m.classOf, oid)
	}
	for _, child := range m.groupRep[oid] {
		m.parentRep[child] = removeOID(m.parentRep[child], oid)
	}
	delete(m.groupRep, oid)
	for _, parent := range m.parentRep[oid] {
		m.groupRep[parent] = removeOID(m.groupRep[parent], oid)
	}
	delete(m.parentRep, oid)
	return nil
}

func appendUniqueOID(list []catalog.OID, oid catalog.OID) []catalog.OID {
	for _, o := range list {
		if o == oid {
			return list
		}
	}
	return append(list, oid)
}

func removeOID(list []catalog.OID, oid catalog.OID) []catalog.OID {
	out := list[:0]
	for _, o := range list {
		if o != oid {
			out = append(out, o)
		}
	}
	return out
}

// isTextual mirrors the paper's "net input" rule: content that cannot be
// converted to a textual representation (image and media formats) is not
// given to the content index. PDF counts as textual — the prototype
// indexed PDF text.
func isTextual(name string) bool {
	dot := strings.LastIndexByte(name, '.')
	if dot < 0 {
		return true
	}
	switch strings.ToLower(name[dot+1:]) {
	case "jpg", "jpeg", "png", "gif", "bmp", "tiff",
		"mp3", "wav", "ogg", "avi", "mov", "mpg", "mp4",
		"zip", "gz", "tar", "exe", "bin", "iso", "dmg":
		return false
	default:
		return true
	}
}
