// Package rvm implements the Resource View Manager of §5.2 of the iDM
// paper: the central instance managing resource views. It assembles the
// four sub-modules of Figure 4 — the Data Source Proxy (a set of
// sources.Source plugins), the Content2iDM converters, the
// Replica&Indexes module (name index & replica, tuple index & replica,
// content index, group replica, resource view catalog), and the
// Synchronization Manager (full sync, change-driven resync, and
// polling).
package rvm

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/imageindex"
	"repro/internal/obs"
	"repro/internal/sources"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/textindex"
	"repro/internal/tupleindex"
	"repro/internal/wildcard"
)

// Options tunes the manager.
type Options struct {
	// ReplicateGroups controls whether group components are replicated
	// inside the RVM (the data-shipping side of the data- vs.
	// query-shipping trade-off of §5.2). When false, navigation falls
	// back to the live source views (query shipping).
	ReplicateGroups bool
	// MaxContentBytes bounds how much of one view's content is read for
	// indexing; <= 0 applies 4 MiB. Infinite content is never indexed.
	MaxContentBytes int64
	// InfinitePrefix bounds how many children are drawn from infinite
	// group components during a sync (the "stream window" of §5.2);
	// <= 0 applies 1024.
	InfinitePrefix int
	// IndexImages additionally indexes binary (non-textual) content in
	// a histogram-based similarity index — the QBIC-style content index
	// §5.2 gives as the example of a non-text content index.
	IndexImages bool
	// Metrics receives the manager's instruments (rvm_* series), the
	// broker's (stream_*) and every plugin's (source_<id>_*); see
	// docs/OBSERVABILITY.md. nil leaves the whole RVM uninstrumented.
	Metrics *obs.Registry
	// Resilience wraps every added source in a resilient Data Source
	// Proxy (retry with backoff, call timeouts, circuit breaker; see
	// docs/RESILIENCE.md). nil leaves plugin calls direct, which is what
	// fault-sensitive tests rely on.
	Resilience *sources.Policy
	// Faults is the dataspace's fault injector, handed to every plugin
	// implementing sources.FaultSetter. nil injects nothing.
	Faults *fault.Injector
	// Store is the durability layer: when set, every replica commit
	// (view upserts, group-edge commits, removals) is written to its
	// log before being applied in memory, and RemoveSource drops the
	// source's persisted segments. Any storage.Engine backend works;
	// nil keeps the dataspace in-memory only. See docs/PERSISTENCE.md.
	Store storage.Engine
	// NoBulkRestore disables the sort-based bulk index build during
	// RestoreFromState, forcing the incremental per-view insert path
	// (the bulk-vs-incremental differential tests and the cold-start
	// benchmark flip this).
	NoBulkRestore bool
}

func (o Options) withDefaults() Options {
	if o.MaxContentBytes <= 0 {
		o.MaxContentBytes = 4 << 20
	}
	if o.InfinitePrefix <= 0 {
		o.InfinitePrefix = 1024
	}
	return o
}

// DefaultOptions replicates groups — the configuration the paper's
// evaluation uses ("Group Replica: a replica of all resource views'
// group components ... kept in-memory").
func DefaultOptions() Options {
	return Options{ReplicateGroups: true}
}

// managerMetrics bundles the manager's instruments. With no registry
// configured every field is a nil (no-op) instrument.
type managerMetrics struct {
	views         *obs.Gauge
	syncs         *obs.Counter
	syncNs        *obs.Histogram
	syncViews     *obs.Counter
	syncRemoved   *obs.Counter
	changeNotifs  *obs.Counter
	childLookups  *obs.Counter
	nameMatches   *obs.Counter
	phraseLookups *obs.Counter
	tupleQueries  *obs.Counter
	syncErrors    *obs.Counter
	degraded      *obs.Gauge
}

func newManagerMetrics(reg *obs.Registry) managerMetrics {
	return managerMetrics{
		views:         reg.Gauge("rvm_views"),
		syncs:         reg.Counter("rvm_syncs_total"),
		syncNs:        reg.Histogram("rvm_sync_ns", nil),
		syncViews:     reg.Counter("rvm_sync_views_total"),
		syncRemoved:   reg.Counter("rvm_sync_removed_total"),
		changeNotifs:  reg.Counter("rvm_change_notifications_total"),
		childLookups:  reg.Counter("rvm_child_lookups_total"),
		nameMatches:   reg.Counter("rvm_name_matches_total"),
		phraseLookups: reg.Counter("rvm_phrase_lookups_total"),
		tupleQueries:  reg.Counter("rvm_tuple_queries_total"),
		syncErrors:    reg.Counter("rvm_sync_errors_total"),
		degraded:      reg.Gauge("rvm_degraded_sources"),
	}
}

// Manager is the Resource View Manager.
type Manager struct {
	opts     Options
	registry *core.Registry
	catalog  *catalog.Catalog
	broker   *stream.Broker
	history  *history
	met      managerMetrics

	mu      sync.RWMutex
	sources map[string]sources.Source
	dirty   map[string]bool
	// health tracks per-source sync outcomes; a source whose last sync
	// failed is degraded and its replicated views are served stale.
	health map[string]*SourceHealth

	// Replica & Indexes module.
	nameIdx *textindex.Index // name index (full text over η)
	nameRep map[catalog.OID]string
	// byLowerName is the exact-match lane of the name replica; lowered
	// full names map to their members.
	byLowerName map[string]map[catalog.OID]struct{}
	nameLower   map[catalog.OID]string
	tupleIdx    *tupleindex.Index // tuple index & replica (DSM columns)
	contentIdx  *textindex.Index  // content index (not a replica)
	imageIdx    *imageindex.Index // similarity index over binary content
	groupRep    map[catalog.OID][]catalog.OID
	parentRep   map[catalog.OID][]catalog.OID
	classRep    map[string]map[catalog.OID]struct{} // class name → members
	classOf     map[catalog.OID]string
	views       map[catalog.OID]core.ResourceView
	// contentBytes records per-source net input (bytes actually fed to
	// the content index) for the Table 3 reproduction.
	contentBytes map[string]int64

	// est memoizes per-root descendant counts and per-class member
	// counts for planner estimates (stats.go); invalidated by dataspace
	// version.
	est estCache
}

// New returns a manager with the standard class registry.
func New(opts Options) *Manager { return NewWithCatalog(opts, catalog.New()) }

// NewWithCatalog returns a manager over a pre-existing catalog (for
// example, one loaded from disk). OIDs registered in the catalog remain
// stable: re-synchronizing the same sources re-associates live views
// and indexes with their persisted identities.
func NewWithCatalog(opts Options, cat *catalog.Catalog) *Manager {
	broker := stream.NewBroker()
	broker.SetMetrics(opts.Metrics)
	return &Manager{
		opts:         opts.withDefaults(),
		registry:     core.StandardRegistry(),
		catalog:      cat,
		broker:       broker,
		history:      newHistory(),
		met:          newManagerMetrics(opts.Metrics),
		sources:      make(map[string]sources.Source),
		dirty:        make(map[string]bool),
		health:       make(map[string]*SourceHealth),
		nameIdx:      textindex.New(),
		nameRep:      make(map[catalog.OID]string),
		byLowerName:  make(map[string]map[catalog.OID]struct{}),
		nameLower:    make(map[catalog.OID]string),
		tupleIdx:     tupleindex.New(),
		contentIdx:   textindex.New(),
		imageIdx:     imageindex.New(),
		groupRep:     make(map[catalog.OID][]catalog.OID),
		parentRep:    make(map[catalog.OID][]catalog.OID),
		classRep:     make(map[string]map[catalog.OID]struct{}),
		classOf:      make(map[catalog.OID]string),
		views:        make(map[catalog.OID]core.ResourceView),
		contentBytes: make(map[string]int64),
	}
}

// Registry returns the resource view class registry.
func (m *Manager) Registry() *core.Registry { return m.registry }

// Catalog returns the resource view catalog.
func (m *Manager) Catalog() *catalog.Catalog { return m.catalog }

// TopicAllViews is the broker topic carrying every view the
// Synchronization Manager registers, across all sources; per-source
// feeds use "views/<source>".
const TopicAllViews = "views"

// PublishedView is the event payload on the broker feeds: the live
// resource view together with its catalog OID.
type PublishedView struct {
	core.ResourceView
	OID catalog.OID
}

// Broker returns the push broker carrying change events (§4.4.2): every
// registered or updated view is published on TopicAllViews and on its
// source's "views/<source>" topic.
func (m *Manager) Broker() *stream.Broker { return m.broker }

// AddSource registers a data source plugin with the Data Source Proxy
// and subscribes to its change notifications when available. When the
// manager carries a metrics registry, plugins implementing
// sources.MetricsSetter receive their per-source instruments here; when
// it carries a fault injector, plugins implementing sources.FaultSetter
// receive it; and when Options.Resilience is set, the plugin is wrapped
// in a resilient proxy before registration.
func (m *Manager) AddSource(src sources.Source) error {
	if fs, ok := src.(sources.FaultSetter); ok && m.opts.Faults != nil {
		fs.SetFaults(m.opts.Faults)
	}
	if m.opts.Resilience != nil {
		src = sources.NewResilient(src, *m.opts.Resilience)
	}
	m.mu.Lock()
	if _, dup := m.sources[src.ID()]; dup {
		m.mu.Unlock()
		return fmt.Errorf("rvm: source %q already registered", src.ID())
	}
	m.sources[src.ID()] = src
	m.dirty[src.ID()] = true
	m.health[src.ID()] = &SourceHealth{Source: src.ID()}
	m.mu.Unlock()

	if ms, ok := src.(sources.MetricsSetter); ok && m.opts.Metrics != nil {
		ms.SetMetrics(sources.NewSourceMetrics(m.opts.Metrics, src.ID()))
	}
	obs.Logger("rvm").Debug("source registered", "source", src.ID())
	if ch := src.Changes(); ch != nil {
		go m.consumeChanges(src.ID(), ch)
	}
	return nil
}

// RemoveSource deregisters a data source plugin: the plugin is closed,
// every view cataloged for it is removed from the catalog, indexes and
// replicas (each removal is journaled, so the dataspace version bumps
// and version-keyed caches invalidate), and its health state is dropped.
// With a durability layer configured, the source's persisted WAL
// segments are dropped too — a drop record in the meta segment ensures
// the views never resurrect on restart, even from an older snapshot.
func (m *Manager) RemoveSource(id string) error {
	m.mu.Lock()
	src, ok := m.sources[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("rvm: unknown source %q", id)
	}
	delete(m.sources, id)
	delete(m.dirty, id)
	delete(m.health, id)
	m.mu.Unlock()

	if err := src.Close(); err != nil {
		obs.Logger("rvm").Debug("source close failed", "source", id, "err", err)
	}
	if m.opts.Store != nil {
		if err := m.opts.Store.DropSource(id, m.catalog.NextOID()); err != nil {
			return fmt.Errorf("rvm: dropping WAL segments of %q: %w", id, err)
		}
	}
	removed := 0
	for _, oid := range m.catalog.SourceOIDs(id) {
		if err := m.remove(oid); err != nil {
			return err
		}
		removed++
	}
	m.met.syncRemoved.Add(int64(removed))
	m.met.views.Set(int64(m.catalog.Count()))
	m.updateDegradedGauge()
	obs.Logger("rvm").Debug("source removed", "source", id, "views", removed)
	return nil
}

// Source returns the registered data source plugin with the given id.
func (m *Manager) Source(id string) (sources.Source, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	src, ok := m.sources[id]
	return src, ok
}

// Sources lists registered source ids in sorted order.
func (m *Manager) Sources() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.sources))
	for id := range m.sources {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// consumeChanges marks the source dirty on every change notification.
// ProcessPending (or the polling loop) then resynchronizes it.
func (m *Manager) consumeChanges(id string, ch <-chan sources.Change) {
	for range ch {
		m.met.changeNotifs.Inc()
		m.mu.Lock()
		m.dirty[id] = true
		m.mu.Unlock()
	}
}

// View returns the live resource view registered under oid.
func (m *Manager) View(oid catalog.OID) (core.ResourceView, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.views[oid]
	return v, ok
}

// Entry returns the catalog entry of oid.
func (m *Manager) Entry(oid catalog.OID) (catalog.Entry, error) {
	return m.catalog.Get(oid)
}

// Count returns the number of managed resource views.
func (m *Manager) Count() int { return m.catalog.Count() }

// AllOIDs returns every managed OID in ascending order.
func (m *Manager) AllOIDs() []catalog.OID {
	entries := m.catalog.All()
	out := make([]catalog.OID, len(entries))
	for i, e := range entries {
		out[i] = e.OID
	}
	return out
}

// NameOf returns the replicated name of oid.
func (m *Manager) NameOf(oid catalog.OID) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nameRep[oid]
}

// Children returns the directly related views of oid. With group
// replication on, the replica answers; otherwise the live view is
// navigated (query shipping).
func (m *Manager) Children(oid catalog.OID) []catalog.OID {
	m.met.childLookups.Inc()
	m.mu.RLock()
	if m.opts.ReplicateGroups {
		out := append([]catalog.OID(nil), m.groupRep[oid]...)
		m.mu.RUnlock()
		return out
	}
	v := m.views[oid]
	m.mu.RUnlock()
	if v == nil {
		return nil
	}
	children, err := core.Children(v)
	if err != nil {
		return nil
	}
	var out []catalog.OID
	for _, c := range children {
		if oid, ok := m.oidOfView(c); ok {
			out = append(out, oid)
		}
	}
	return out
}

// AppendChildren appends the direct children of oid to dst and returns
// the extended slice. With group replication on (the default) this
// copies straight out of the replica under a read lock into the
// caller's buffer, avoiding the per-call allocation of Children — the
// iQL evaluator's expansion loops call this once per frontier view.
func (m *Manager) AppendChildren(dst []catalog.OID, oid catalog.OID) []catalog.OID {
	m.met.childLookups.Inc()
	m.mu.RLock()
	if m.opts.ReplicateGroups {
		dst = append(dst, m.groupRep[oid]...)
		m.mu.RUnlock()
		return dst
	}
	m.mu.RUnlock()
	return append(dst, m.Children(oid)...)
}

// oidOfView resolves a live view back to its OID (linear in the worst
// case; only used on the query-shipping path).
func (m *Manager) oidOfView(v core.ResourceView) (catalog.OID, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for oid, w := range m.views {
		if w == v {
			return oid, true
		}
	}
	return 0, false
}

// Parents returns the views oid is directly related from (the reverse
// edges maintained alongside the group replica; they power backward
// expansion).
func (m *Manager) Parents(oid catalog.OID) []catalog.OID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]catalog.OID(nil), m.parentRep[oid]...)
}

// LookupNameTerm returns the OIDs of views whose name contains the term.
func (m *Manager) LookupNameTerm(term string) []catalog.OID {
	return toOIDs(m.nameIdx.Lookup(term))
}

// MatchNames returns the OIDs of views whose full name matches the
// wildcard pattern ('*' any run, '?' one rune); matching is
// case-insensitive, as iQL name steps are. Patterns without wildcard
// metacharacters resolve through the exact-name lane of the name
// replica.
func (m *Manager) MatchNames(pattern string) []catalog.OID {
	m.met.nameMatches.Inc()
	lowered := strings.ToLower(pattern)
	m.mu.RLock()
	var out []catalog.OID
	if !wildcard.IsPattern(lowered) {
		for oid := range m.byLowerName[lowered] {
			out = append(out, oid)
		}
	} else {
		for oid, name := range m.nameLower {
			if wildcard.MatchLowered(lowered, name) {
				out = append(out, oid)
			}
		}
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContentPhrase returns the OIDs of views whose content contains the
// phrase (consecutive tokens).
func (m *Manager) ContentPhrase(phrase string) []catalog.OID {
	m.met.phraseLookups.Inc()
	return toOIDs(m.contentIdx.Phrase(phrase))
}

// ContentPhraseFreqs returns, for views whose content contains the
// phrase, the number of occurrences — the term-frequency signal iQL
// result ranking uses.
func (m *Manager) ContentPhraseFreqs(phrase string) map[catalog.OID]int {
	hits := m.contentIdx.PhraseHits(phrase)
	out := make(map[catalog.OID]int, len(hits))
	for _, h := range hits {
		out[catalog.OID(h.Doc)] = h.Freq
	}
	return out
}

// ContentAnd returns the OIDs of views whose content contains every
// term.
func (m *Manager) ContentAnd(terms ...string) []catalog.OID {
	return toOIDs(m.contentIdx.And(terms...))
}

// ContentOr returns the OIDs of views whose content contains any term.
func (m *Manager) ContentOr(terms ...string) []catalog.OID {
	return toOIDs(m.contentIdx.Or(terms...))
}

// TupleQuery returns the OIDs of views whose tuple attribute satisfies
// (op, value), answered from the vertically partitioned tuple index.
func (m *Manager) TupleQuery(attr string, op tupleindex.Op, value core.Value) []catalog.OID {
	m.met.tupleQueries.Inc()
	ids := m.tupleIdx.Query(attr, op, value)
	out := make([]catalog.OID, len(ids))
	for i, id := range ids {
		out[i] = catalog.OID(id)
	}
	return out
}

// Tuple returns the replicated tuple component of oid.
func (m *Manager) Tuple(oid catalog.OID) (core.TupleComponent, bool) {
	return m.tupleIdx.Tuple(tupleindex.DocID(oid))
}

// ImageMatch is one image-similarity result.
type ImageMatch struct {
	OID        catalog.OID
	Similarity float64
}

// SimilarImages returns the k binary-content views most similar to oid
// under the histogram index (requires Options.IndexImages).
func (m *Manager) SimilarImages(oid catalog.OID, k int) []ImageMatch {
	hits := m.imageIdx.Similar(imageindex.DocID(oid), k)
	out := make([]ImageMatch, len(hits))
	for i, h := range hits {
		out[i] = ImageMatch{OID: catalog.OID(h.Doc), Similarity: h.Similarity}
	}
	return out
}

// ImageCount returns the number of binary contents in the similarity
// index.
func (m *Manager) ImageCount() int { return m.imageIdx.Len() }

func toOIDs(ids []textindex.DocID) []catalog.OID {
	out := make([]catalog.OID, len(ids))
	for i, id := range ids {
		out[i] = catalog.OID(id)
	}
	return out
}

// WildcardMatch reports whether name matches pattern; see
// internal/wildcard for the semantics.
func WildcardMatch(pattern, name string) bool {
	return wildcard.Match(pattern, name)
}
