package rvm

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/store"
)

// probeDigest renders the query-relevant observables of a manager into
// one comparable string: catalog entries, group edges, and the answers
// of every index family. Two managers with equal probe digests answer
// the test queries identically.
func probeDigest(m *Manager) string {
	var b strings.Builder
	oids := m.AllOIDs()
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	fmt.Fprintf(&b, "count=%d\n", m.Count())
	for _, oid := range oids {
		e, err := m.Entry(oid)
		if err != nil {
			fmt.Fprintf(&b, "%d: missing\n", oid)
			continue
		}
		// Children order is the group component's (meaningful); parents
		// are a set, so normalize their order before comparing.
		parents := m.Parents(oid)
		sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
		fmt.Fprintf(&b, "%d: %q %s %s %s kids=%v parents=%v\n",
			oid, e.Name, e.Class, e.Source, e.URI, m.Children(oid), parents)
	}
	fmt.Fprintf(&b, "tex=%v\n", m.MatchNames("*.tex"))
	fmt.Fprintf(&b, "indexing=%v\n", m.ContentPhrase("indexing"))
	fmt.Fprintf(&b, "sections=%v\n", m.OIDsByClass("latex.section"))
	return b.String()
}

// replicate feeds every WAL record above fromLSN into the follower.
func replicate(t *testing.T, st *store.Store, fl *Manager, fromLSN uint64) uint64 {
	t.Helper()
	recs, next, ok, err := st.TailSince(fromLSN)
	if err != nil || !ok {
		t.Fatalf("TailSince: ok=%v err=%v", ok, err)
	}
	for _, tr := range recs {
		if err := fl.ApplyRecord(tr.Rec); err != nil {
			t.Fatalf("ApplyRecord LSN %d: %v", tr.LSN, err)
		}
	}
	return next - 1
}

func newFollower() *Manager {
	return NewWithCatalog(Options{ReplicateGroups: true}, catalog.New())
}

func durableLeader(t *testing.T) (*Manager, *store.Store) {
	t.Helper()
	st, _, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	m, _, _ := testSetup(t, Options{ReplicateGroups: true, Store: st})
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	return m, st
}

func TestApplyRecordReproducesLeader(t *testing.T) {
	leader, st := durableLeader(t)
	fl := newFollower()
	replicate(t, st, fl, 0)

	want, got := probeDigest(leader), probeDigest(fl)
	if got != want {
		t.Fatalf("follower probes diverge:\nleader:\n%s\nfollower:\n%s", want, got)
	}
	if fl.Count() == 0 {
		t.Fatal("follower replicated nothing")
	}
}

func TestApplyRecordIdempotent(t *testing.T) {
	leader, st := durableLeader(t)
	fl := newFollower()
	replicate(t, st, fl, 0)
	v1 := fl.Version()
	// Re-apply the entire log — the overlapping-batch case. Every probe
	// must be unchanged, and unchanged re-upserts must not journal.
	replicate(t, st, fl, 0)
	if got, want := probeDigest(fl), probeDigest(leader); got != want {
		t.Fatalf("double apply diverged:\n%s\nvs\n%s", got, want)
	}
	// Edges/meta records bump the version (cache invalidation), but no
	// Added/Updated change records may appear for identical re-upserts.
	for _, ch := range fl.Changes(v1) {
		if ch.Kind == ChangeAdded || ch.Kind == ChangeUpdated {
			t.Fatalf("idempotent re-apply journaled %v for OID %d", ch.Kind, ch.OID)
		}
	}
}

func TestApplyRecordRemoveAndUnknowns(t *testing.T) {
	leader, st := durableLeader(t)
	fl := newFollower()
	replicate(t, st, fl, 0)

	// Removing a view that does not exist is a no-op, not an error.
	if err := fl.ApplyRecord(store.Record{Kind: store.KindRemove, OID: 99999}); err != nil {
		t.Fatalf("remove of unknown OID: %v", err)
	}
	if fl.Count() != leader.Count() {
		t.Fatal("no-op remove changed the count")
	}
	// Snapshot end markers are tolerated no-ops.
	if err := fl.ApplyRecord(store.Record{Kind: store.KindSnapshotEnd}); err != nil {
		t.Fatalf("snapshot-end marker: %v", err)
	}
	// An upsert without a view and an unknown kind are hard errors.
	if err := fl.ApplyRecord(store.Record{Kind: store.KindUpsert}); err == nil {
		t.Fatal("upsert without view accepted")
	}
	if err := fl.ApplyRecord(store.Record{Kind: store.Kind(250)}); err == nil {
		t.Fatal("unknown kind accepted")
	}

	// A real removal deletes the view and its postings.
	victim := fl.MatchNames("notes.txt")
	if len(victim) != 1 {
		t.Fatalf("notes.txt matches = %v", victim)
	}
	if err := fl.ApplyRecord(store.Record{Kind: store.KindRemove, OID: victim[0]}); err != nil {
		t.Fatal(err)
	}
	if got := fl.MatchNames("notes.txt"); len(got) != 0 {
		t.Fatalf("removed view still matches: %v", got)
	}
	if fl.Count() != leader.Count()-1 {
		t.Fatalf("count %d after removal, want %d", fl.Count(), leader.Count()-1)
	}
}

func TestApplyRecordEdgesReplace(t *testing.T) {
	_, st := durableLeader(t)
	fl := newFollower()
	replicate(t, st, fl, 0)

	roots := fl.MatchNames("vldb 2006.tex")
	if len(roots) != 1 {
		t.Fatalf("vldb 2006.tex matches = %v", roots)
	}
	parent := roots[0]
	before := fl.Children(parent)
	if len(before) == 0 {
		t.Fatal("tex root has no derived children")
	}
	// An edge commit is a full replacement for its source: shipping one
	// that keeps only the first child must shrink the group replica.
	if err := fl.ApplyRecord(store.Record{
		Kind:   store.KindEdges,
		Source: "filesystem",
		Edges:  []store.EdgeList{{Parent: parent, Children: before[:1]}},
	}); err != nil {
		t.Fatal(err)
	}
	after := fl.Children(parent)
	if len(after) != 1 || after[0] != before[0] {
		t.Fatalf("edges not replaced: before=%v after=%v", before, after)
	}
	if ps := fl.Parents(before[0]); len(ps) != 1 || ps[0] != parent {
		t.Fatalf("reverse edge wrong: %v", ps)
	}
}

func TestApplyRecordDropSource(t *testing.T) {
	_, st := durableLeader(t)
	fl := newFollower()
	replicate(t, st, fl, 0)
	if err := fl.ApplyRecord(store.Record{Kind: store.KindDropSource, Source: "email"}); err != nil {
		t.Fatal(err)
	}
	for _, oid := range fl.AllOIDs() {
		if e, err := fl.Entry(oid); err == nil && e.Source == "email" {
			t.Fatalf("email view %d survived drop", oid)
		}
	}
	if fl.Count() == 0 {
		t.Fatal("drop removed the other source too")
	}
}

func TestResetFromStateEquivalence(t *testing.T) {
	leader, st := durableLeader(t)
	fl := newFollower()
	replicate(t, st, fl, 0)
	// Pollute the follower, then reset from a cloned leader state — the
	// full-transfer install path — and require convergence again.
	if err := fl.ApplyRecord(store.Record{Kind: store.KindDropSource, Source: "email"}); err != nil {
		t.Fatal(err)
	}
	state, _ := st.CloneState()
	fl.ResetFromState(state)
	if got, want := probeDigest(fl), probeDigest(leader); got != want {
		t.Fatalf("reset diverged:\n%s\nvs\n%s", got, want)
	}
	// The version must advance so version-keyed caches invalidate.
	v := fl.Version()
	fl.ResetFromState(state)
	if fl.Version() <= v {
		t.Fatal("ResetFromState did not bump the version")
	}
}
