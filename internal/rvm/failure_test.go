package rvm

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sources"
)

// flakySource fails its Root call a configurable number of times before
// succeeding — a subsystem that is temporarily unreachable.
type flakySource struct {
	id        string
	failures  int
	rootCalls int
	root      core.ResourceView
}

func (s *flakySource) ID() string { return s.id }
func (s *flakySource) Root() (core.ResourceView, error) {
	s.rootCalls++
	if s.rootCalls <= s.failures {
		return nil, fmt.Errorf("flaky: attempt %d refused", s.rootCalls)
	}
	return s.root, nil
}
func (s *flakySource) Changes() <-chan sources.Change { return nil }
func (s *flakySource) Close() error                   { return nil }

func flakyRoot() core.ResourceView {
	child := sources.Annotate(core.NewView("doc.txt", core.ClassFile).
		WithContent(core.StringContent("flaky but present")), "/doc.txt", true)
	root := core.NewView("flaky", "").WithGroup(core.SetGroup(child))
	return sources.Annotate(root, "/", true)
}

func TestSyncRecoversAfterSourceFailure(t *testing.T) {
	m := New(DefaultOptions())
	src := &flakySource{id: "flaky", failures: 2, root: flakyRoot()}
	if err := m.AddSource(src); err != nil {
		t.Fatal(err)
	}
	// Two failing syncs...
	for i := 0; i < 2; i++ {
		if _, err := m.SyncSource("flaky"); err == nil {
			t.Fatalf("attempt %d should fail", i+1)
		}
	}
	if m.Count() != 0 {
		t.Errorf("failed syncs registered %d views", m.Count())
	}
	// ...then recovery.
	timing, err := m.SyncSource("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if timing.Views != 2 {
		t.Errorf("views = %d", timing.Views)
	}
	if got := m.ContentOr("flaky"); len(got) != 1 {
		t.Errorf("content not indexed after recovery: %v", got)
	}
}

// brokenGroupView yields an iterator that errors mid-iteration — a
// subsystem that dies while being walked.
type brokenGroup struct{ after int }

func (b brokenGroup) Iter() core.ViewIter {
	i := 0
	return core.IterFunc(func() (core.ResourceView, error) {
		if i >= b.after {
			return nil, errors.New("connection reset")
		}
		i++
		return core.NewView(fmt.Sprintf("item-%d", i), ""), nil
	})
}
func (b brokenGroup) Finite() bool { return true }
func (b brokenGroup) Len() int     { return core.LenUnknown }

type staticSource struct {
	id   string
	root core.ResourceView
}

func (s *staticSource) ID() string                       { return s.id }
func (s *staticSource) Root() (core.ResourceView, error) { return s.root, nil }
func (s *staticSource) Changes() <-chan sources.Change   { return nil }
func (s *staticSource) Close() error                     { return nil }

func TestSyncSurfacesMidWalkError(t *testing.T) {
	m := New(DefaultOptions())
	root := sources.Annotate((&core.StaticView{VName: "bad"}).
		WithGroup(core.Group{Set: brokenGroup{after: 2}, Seq: core.NoViews()}), "/", true)
	m.AddSource(&staticSource{id: "bad", root: root})
	_, err := m.SyncSource("bad")
	if err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Errorf("err = %v", err)
	}
}

func TestSyncMalformedContentTolerated(t *testing.T) {
	// Malformed XML and LaTeX never fail a sync: the converter reports
	// the error and the file keeps an empty derived subgraph.
	m, fs, _ := testSetup(t, DefaultOptions())
	fs.WriteFile("/Projects/PIM/broken.xml", []byte("<unclosed"))
	fs.WriteFile("/Projects/PIM/broken.tex", []byte("\\begin{figure} never closed"))
	if _, err := m.SyncAll(); err != nil {
		t.Fatalf("malformed content failed the sync: %v", err)
	}
	e, err := m.Catalog().ByURI("filesystem", "/Projects/PIM/broken.xml")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Children(e.OID)) != 0 {
		t.Error("broken XML produced derived views")
	}
	// The raw bytes are still content-indexed.
	if got := m.ContentOr("unclosed"); len(got) == 0 {
		t.Error("broken file content not searchable")
	}
}

func TestRemoveSourceViewsOnPermanentFailure(t *testing.T) {
	// A source that succeeds once and then returns an empty graph:
	// every previously registered view must be deregistered.
	m := New(DefaultOptions())
	full := flakyRoot()
	empty := sources.Annotate(core.NewView("flaky", ""), "/", true)
	src := &staticSource{id: "s", root: full}
	m.AddSource(src)
	m.SyncAll()
	if m.Count() != 2 {
		t.Fatalf("count = %d", m.Count())
	}
	src.root = empty
	timing, err := m.SyncSource("s")
	if err != nil {
		t.Fatal(err)
	}
	if timing.Removed != 1 {
		t.Errorf("removed = %d", timing.Removed)
	}
	if m.Count() != 1 {
		t.Errorf("count = %d", m.Count())
	}
}

func TestSlowWatcherDoesNotBlockSource(t *testing.T) {
	// A subscriber that never drains must not block writes (events are
	// dropped, matching OS file-event semantics).
	m, fs, _ := testSetup(t, DefaultOptions())
	m.SyncAll()
	if _, err := fs.MkdirAll("/private"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := fs.WriteFile(fmt.Sprintf("/private/f%04d.txt", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// The write loop completing at all is the assertion; also the
	// source stays consistent after a final resync.
	if _, err := m.SyncSource("filesystem"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Catalog().ByURI("filesystem", "/private/f4999.txt"); err != nil {
		t.Error("late file missing after resync")
	}
}

var _ = io.EOF
