package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/store"
)

// This file is the backend conformance suite: every test runs against
// both storage engines through the factory, pinning the shared
// append/tail/recover/drop/digest semantics plus the crash matrix. A
// third backend only has to pass this suite (and the root-level
// durability harnesses) to be a drop-in.

var backends = []Backend{BackendWAL, BackendCompact}

func upsert(oid catalog.OID, source, uri string) store.Record {
	return store.Record{Kind: store.KindUpsert, View: &store.ViewRecord{Entry: catalog.Entry{
		OID: oid, Name: filepath.Base(uri), Class: "file", Source: source,
		URI: uri, ContentSize: -1,
	}}}
}

func edges(source string, parent catalog.OID, children ...catalog.OID) store.Record {
	return store.Record{Kind: store.KindEdges, Source: source,
		Edges: []store.EdgeList{{Parent: parent, Children: children}}}
}

// workload is a small mixed-record history exercising every record
// kind; sourceOf routes each record the way the RVM would.
func workload() []store.Record {
	return []store.Record{
		upsert(1, "fs", "/a"),
		upsert(2, "fs", "/b"),
		edges("fs", 1, 2),
		upsert(3, "mail", "/inbox/1"),
		edges("mail", 3),
		{Kind: store.KindRemove, OID: 2},
		upsert(4, "fs", "/c"),
		edges("fs", 1, 4),
		{Kind: store.KindMeta, NextOID: 9},
	}
}

func sourceOf(rec store.Record) string {
	switch rec.Kind {
	case store.KindUpsert:
		return rec.View.Entry.Source
	case store.KindEdges:
		return rec.Source
	case store.KindRemove:
		return "fs"
	default:
		return ""
	}
}

func mustOpenB(t *testing.T, b Backend, dir string, opts Options) (Engine, store.RecoveryInfo) {
	t.Helper()
	opts.Backend = b
	eng, info, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, info
}

func appendAll(t *testing.T, eng Engine, recs []store.Record) {
	t.Helper()
	for _, rec := range recs {
		if err := eng.Append(sourceOf(rec), rec); err != nil {
			t.Fatal(err)
		}
	}
}

// referenceDigest runs the first n workload records through a clean
// engine of the same backend and returns its digest — the oracle the
// crash matrix compares recovered states against.
func referenceDigest(t *testing.T, b Backend, n int) string {
	t.Helper()
	eng, _ := mustOpenB(t, b, t.TempDir(), Options{})
	defer eng.Close()
	appendAll(t, eng, workload()[:n])
	return eng.Digest()
}

func TestConformanceAppendReopenEquivalence(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			dir := t.TempDir()
			eng, _ := mustOpenB(t, b, dir, Options{})
			appendAll(t, eng, workload())
			want := eng.Digest()
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}

			eng2, info := mustOpenB(t, b, dir, Options{})
			defer eng2.Close()
			if got := eng2.Digest(); got != want {
				t.Fatalf("recovered digest %s != shadow digest %s", got, want)
			}
			if len(info.Warnings) != 0 {
				t.Fatalf("clean recovery produced warnings: %v", info.Warnings)
			}
			if st := eng2.State(); len(st.Views) != 3 {
				t.Fatalf("recovered %d views, want 3", len(st.Views))
			}
			if st := eng2.State(); st.NextOID != 9 {
				t.Fatalf("recovered NextOID %d, want 9", st.NextOID)
			}
		})
	}
}

func TestConformanceDeadAfterClose(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			eng, _ := mustOpenB(t, b, t.TempDir(), Options{})
			eng.Close()
			if err := eng.Append("fs", upsert(1, "fs", "/a")); err == nil {
				t.Fatal("append after close succeeded")
			}
		})
	}
}

func TestConformanceSnapshotCompaction(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			dir := t.TempDir()
			eng, _ := mustOpenB(t, b, dir, Options{})
			appendAll(t, eng, workload())
			want := eng.Digest()
			if eng.SnapshotSeq() != 0 {
				t.Fatalf("snapshot seq %d before first snapshot", eng.SnapshotSeq())
			}
			if err := eng.Snapshot(); err != nil {
				t.Fatal(err)
			}
			seq := eng.SnapshotSeq()
			if seq == 0 {
				t.Fatal("snapshot seq still 0 after snapshot")
			}
			if eng.BaseLSN() != eng.NextLSN() {
				t.Fatalf("base LSN %d != next LSN %d after compaction", eng.BaseLSN(), eng.NextLSN())
			}
			if got := eng.Digest(); got != want {
				t.Fatalf("compaction changed the digest: %s != %s", got, want)
			}
			// Appends continue; recovery = compacted form + tail.
			if err := eng.Append("fs", upsert(10, "fs", "/post")); err != nil {
				t.Fatal(err)
			}
			if err := eng.Append("fs", edges("fs", 1, 4, 10)); err != nil {
				t.Fatal(err)
			}
			want2 := eng.Digest()
			if want2 == want {
				t.Fatal("digest did not change after post-snapshot append")
			}
			// A second compaction with more history moves the sequence on.
			if err := eng.Snapshot(); err != nil {
				t.Fatal(err)
			}
			if eng.SnapshotSeq() <= seq {
				t.Fatalf("snapshot seq %d did not advance past %d", eng.SnapshotSeq(), seq)
			}
			eng.Close()

			eng2, info := mustOpenB(t, b, dir, Options{})
			defer eng2.Close()
			if got := eng2.Digest(); got != want2 {
				t.Fatalf("recovered digest %s != %s", got, want2)
			}
			if info.SnapshotSeq == 0 {
				t.Fatal("recovery did not report the compaction")
			}
			if len(info.Warnings) != 0 {
				t.Fatalf("clean recovery produced warnings: %v", info.Warnings)
			}
		})
	}
}

func TestConformanceTailSince(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			eng, _ := mustOpenB(t, b, t.TempDir(), Options{})
			defer eng.Close()
			recs := workload()
			appendAll(t, eng, recs)

			// Full tail from zero: every record in strictly increasing LSN
			// order.
			tail, next, ok, err := eng.TailSince(0)
			if err != nil || !ok {
				t.Fatalf("TailSince(0): ok=%v err=%v", ok, err)
			}
			if len(tail) != len(recs) {
				t.Fatalf("tailed %d records, want %d", len(tail), len(recs))
			}
			if next != eng.NextLSN() {
				t.Fatalf("tail next %d != engine next %d", next, eng.NextLSN())
			}
			for i := 1; i < len(tail); i++ {
				if tail[i].LSN <= tail[i-1].LSN {
					t.Fatalf("tail LSNs not strictly increasing: %d after %d", tail[i].LSN, tail[i-1].LSN)
				}
			}
			// A mid-log cursor resumes exactly after its position.
			mid := tail[4].LSN
			tail2, _, ok, err := eng.TailSince(mid)
			if err != nil || !ok {
				t.Fatalf("TailSince(mid): ok=%v err=%v", ok, err)
			}
			if len(tail2) != len(recs)-5 {
				t.Fatalf("mid tail %d records, want %d", len(tail2), len(recs)-5)
			}
			if tail2[0].LSN <= mid {
				t.Fatalf("mid tail starts at %d, want > %d", tail2[0].LSN, mid)
			}

			// Compaction drops history below the watermark: an old cursor
			// must be told to fall back to a full-state transfer.
			if err := eng.Snapshot(); err != nil {
				t.Fatal(err)
			}
			if _, _, ok, err := eng.TailSince(mid); err != nil || ok {
				t.Fatalf("TailSince below base after compaction: ok=%v err=%v, want ok=false", ok, err)
			}
			// The watermark cursor itself still works (empty tail).
			tail3, _, ok, err := eng.TailSince(eng.NextLSN() - 1)
			if err != nil || !ok {
				t.Fatalf("TailSince(at watermark): ok=%v err=%v", ok, err)
			}
			if len(tail3) != 0 {
				t.Fatalf("watermark tail has %d records, want 0", len(tail3))
			}
		})
	}
}

func TestConformanceCloneStateIsolated(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			eng, _ := mustOpenB(t, b, t.TempDir(), Options{})
			defer eng.Close()
			appendAll(t, eng, workload())
			clone, next := eng.CloneState()
			if next != eng.NextLSN() {
				t.Fatalf("clone next %d != %d", next, eng.NextLSN())
			}
			want := clone.Digest()
			if err := eng.Append("fs", upsert(20, "fs", "/new")); err != nil {
				t.Fatal(err)
			}
			if clone.Digest() != want {
				t.Fatal("append mutated a cloned state")
			}
		})
	}
}

func TestConformanceDropSource(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			dir := t.TempDir()
			eng, _ := mustOpenB(t, b, dir, Options{})
			appendAll(t, eng, workload())
			// The compact backend materializes per-source artifacts at
			// compaction time; the WAL backend holds them between
			// snapshots. Arrange for both to have one before the drop.
			if b == BackendCompact {
				if err := eng.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
			seg, ok := eng.(interface{ HasSegment(string) bool })
			if !ok {
				t.Fatalf("%T lacks the HasSegment tooling hook", eng)
			}
			if !seg.HasSegment("mail") {
				t.Fatal("mail has no per-source artifact after compaction")
			}
			if err := eng.DropSource("mail", 9); err != nil {
				t.Fatal(err)
			}
			if seg.HasSegment("mail") {
				t.Fatal("mail artifact survived DropSource")
			}
			// Stray trailing records for the dropped source are suppressed
			// until an upsert re-adds it.
			if err := eng.Append("mail", edges("mail", 3)); err != nil {
				t.Fatal(err)
			}
			for _, v := range eng.State().Views {
				if v.Entry.Source == "mail" {
					t.Fatalf("dropped source still has view %d", v.Entry.OID)
				}
			}
			if _, ok := eng.State().Edges["mail"]; ok {
				t.Fatal("suppressed edge record reached the state")
			}
			if err := eng.Append("mail", upsert(11, "mail", "/inbox/2")); err != nil {
				t.Fatal(err)
			}
			if _, ok := eng.State().Views[11]; !ok {
				t.Fatal("re-added source's upsert was suppressed")
			}
			if eng.State().NextOID != 11 {
				t.Fatalf("NextOID %d, want 11", eng.State().NextOID)
			}
			want := eng.Digest()
			eng.Close()

			eng2, _ := mustOpenB(t, b, dir, Options{})
			defer eng2.Close()
			if got := eng2.Digest(); got != want {
				t.Fatalf("recovered digest %s != %s after drop", got, want)
			}
		})
	}
}

// TestConformanceCrashMatrix is the write-path crash matrix run through
// the interface: for every record position k and both crash flavors
// (clean boundary, torn mid-frame), the recovered state must equal the
// reference state holding exactly the first k-1 records, and only the
// torn flavor may warn.
func TestConformanceCrashMatrix(t *testing.T) {
	recs := workload()
	for _, b := range backends {
		for _, flavor := range []string{"boundary", "torn"} {
			point := store.FaultAppend
			if flavor == "torn" {
				point = store.FaultTorn
			}
			t.Run(fmt.Sprintf("%s/%s", b, flavor), func(t *testing.T) {
				for k := 1; k <= len(recs); k++ {
					dir := t.TempDir()
					inj := fault.New(1)
					inj.Add(fault.Rule{Point: point, Kind: fault.Error, After: k - 1, Times: 1})
					eng, _ := mustOpenB(t, b, dir, Options{Faults: inj})
					var failed error
					for _, rec := range recs {
						if failed = eng.Append(sourceOf(rec), rec); failed != nil {
							break
						}
					}
					if !errors.Is(failed, store.ErrCrashed) {
						t.Fatalf("k=%d: crash did not surface ErrCrashed: %v", k, failed)
					}
					// Post-crash the engine refuses everything.
					if err := eng.Append("fs", upsert(99, "fs", "/late")); !errors.Is(err, store.ErrCrashed) {
						t.Fatalf("k=%d: append after crash: %v", k, err)
					}

					eng2, info := mustOpenB(t, b, dir, Options{})
					if got, want := eng2.Digest(), referenceDigest(t, b, k-1); got != want {
						t.Fatalf("k=%d: recovered digest %s != reference prefix digest %s", k, got, want)
					}
					if flavor == "torn" && info.TornTails == 0 {
						t.Fatalf("k=%d: torn crash recovered without a torn-tail warning", k)
					}
					if flavor == "boundary" && len(info.Warnings) != 0 {
						t.Fatalf("k=%d: boundary crash produced warnings: %v", k, info.Warnings)
					}
					eng2.Close()
				}
			})
		}
	}
}

// TestConformanceDoubleCrash arms the replay fault: a crash in the
// middle of recovery itself must surface ErrCrashed, and a subsequent
// clean open must still reconstruct the full state (recovery is
// re-entrant).
func TestConformanceDoubleCrash(t *testing.T) {
	recs := workload()
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			dir := t.TempDir()
			eng, _ := mustOpenB(t, b, dir, Options{})
			appendAll(t, eng, recs)
			want := eng.Digest()
			eng.Close()

			for k := 1; k <= len(recs); k++ {
				inj := fault.New(1)
				inj.Add(fault.Rule{Point: store.FaultReplay, Kind: fault.Error, After: k - 1, Times: 1})
				if _, _, err := Open(dir, Options{Backend: b, Faults: inj}); !errors.Is(err, store.ErrCrashed) {
					t.Fatalf("k=%d: recovery crash surfaced %v, want ErrCrashed", k, err)
				}
			}
			eng2, _ := mustOpenB(t, b, dir, Options{})
			defer eng2.Close()
			if got := eng2.Digest(); got != want {
				t.Fatalf("digest after crashed recoveries %s != %s", got, want)
			}
		})
	}
}

// TestConformanceCrashDuringSnapshot arms the snapshot fault: a crash
// before the compaction writes anything must leave the pre-snapshot
// directory fully recoverable with no compaction recorded.
func TestConformanceCrashDuringSnapshot(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			dir := t.TempDir()
			inj := fault.New(1)
			inj.Add(fault.Rule{Point: store.FaultSnapshot, Kind: fault.Error, Times: 1})
			eng, _ := mustOpenB(t, b, dir, Options{Faults: inj})
			appendAll(t, eng, workload())
			want := eng.Digest()
			if err := eng.Snapshot(); !errors.Is(err, store.ErrCrashed) {
				t.Fatalf("snapshot crash surfaced %v, want ErrCrashed", err)
			}

			eng2, info := mustOpenB(t, b, dir, Options{})
			defer eng2.Close()
			if info.SnapshotSeq != 0 {
				t.Fatalf("crashed snapshot left seq %d, want 0", info.SnapshotSeq)
			}
			if got := eng2.Digest(); got != want {
				t.Fatalf("recovered digest %s != %s", got, want)
			}
		})
	}
}

// TestDirLockExclusive pins the data-dir lock satellite: a second open
// of a live directory fails with a clear error for every backend pair
// (same backend: the lock; other backend: the layout-mismatch check,
// which fires before the lock is even attempted), and closing the
// first engine releases the lock.
func TestDirLockExclusive(t *testing.T) {
	for _, b := range backends {
		for _, second := range backends {
			t.Run(fmt.Sprintf("%s-then-%s", b, second), func(t *testing.T) {
				dir := t.TempDir()
				eng, _ := mustOpenB(t, b, dir, Options{})
				want := "locked"
				if second != b {
					want = "was created by the"
				}
				if _, _, err := Open(dir, Options{Backend: second}); err == nil {
					t.Fatal("second open of a live dir succeeded")
				} else if !strings.Contains(err.Error(), want) {
					t.Fatalf("second open failed without a clear error (want %q): %v", want, err)
				}
				if err := eng.Close(); err != nil {
					t.Fatal(err)
				}
				eng2, _ := mustOpenB(t, b, dir, Options{})
				eng2.Close()
			})
		}
	}
}

// TestBackendMismatchRefused pins the layout guard: a directory created
// by one backend cannot be reopened — even after a clean close — with
// the other, which would otherwise lock the directory and silently
// report an empty dataspace next to the existing data.
func TestBackendMismatchRefused(t *testing.T) {
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			other := BackendCompact
			if b == BackendCompact {
				other = BackendWAL
			}
			dir := t.TempDir()
			eng, _ := mustOpenB(t, b, dir, Options{})
			appendAll(t, eng, []store.Record{upsert(1, "fs", "a")})
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := Open(dir, Options{Backend: other}); err == nil {
				t.Fatalf("%s dir opened with %s backend", b, other)
			} else if !strings.Contains(err.Error(), "was created by the "+b.String()) {
				t.Fatalf("mismatch error does not name the creating backend: %v", err)
			}
			// The right backend still opens it.
			eng2, _ := mustOpenB(t, b, dir, Options{})
			defer eng2.Close()
			if eng2.State().Views[1] == nil {
				t.Fatal("data lost after refused mismatch open")
			}
		})
	}
}

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		err  bool
	}{
		{"", BackendWAL, false},
		{"wal", BackendWAL, false},
		{"WAL", BackendWAL, false},
		{"compact", BackendCompact, false},
		{"lsm", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if c.err != (err != nil) || got != c.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", c.in, got, err)
		}
	}
	if BackendWAL.String() != "wal" || BackendCompact.String() != "compact" {
		t.Fatal("backend names changed")
	}
}
