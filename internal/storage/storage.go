// Package storage is the pluggable storage-engine seam between the
// Resource View Manager and the durability layer. It defines the Engine
// interface every backend satisfies — the append/tail/snapshot/drop/
// digest contract the RVM persist path, the facade and the replication
// leader are written against — and a factory that selects a backend for
// a data directory.
//
// Two backends ship today:
//
//   - BackendWAL (internal/store): checksummed per-source WAL segments
//     merged by global LSN plus atomic snapshots. The write-optimized
//     default.
//   - BackendCompact (compact.go): one immutable, sorted, checksummed
//     segment file per source, rebuilt by snapshot-compaction, plus a
//     single append tail. Read-optimized; cold starts scan per-source
//     segments in ascending-OID order, which feeds the sort-based bulk
//     index build directly.
//
// Both backends share the record, frame and snapshot formats of
// internal/store, the fault-injection points (the crash matrix runs
// unchanged against either), the exclusive data-dir lock, and the
// replication tail surface (internal/repl ships from either). The
// conformance suite (conformance_test.go) pins the shared semantics.
// See docs/PERSISTENCE.md.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/store"
)

// Backend selects a storage engine implementation.
type Backend int

const (
	// BackendWAL is the write-optimized default: per-source WAL segments
	// plus atomic snapshots (internal/store).
	BackendWAL Backend = iota
	// BackendCompact is the read-optimized engine: one immutable sorted
	// segment per source, rebuilt by compaction, plus an append tail.
	BackendCompact
)

// String renders the backend name ParseBackend accepts.
func (b Backend) String() string {
	switch b {
	case BackendWAL:
		return "wal"
	case BackendCompact:
		return "compact"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend parses a backend name; "" selects the default (wal).
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(s) {
	case "", "wal":
		return BackendWAL, nil
	case "compact":
		return BackendCompact, nil
	default:
		return 0, fmt.Errorf("storage: unknown backend %q (wal|compact)", s)
	}
}

// Options tunes an engine; the non-Backend fields carry the same
// semantics as store.Options.
type Options struct {
	// Backend selects the engine implementation (default BackendWAL).
	Backend Backend
	// Sync selects the fsync policy (default store.SyncOnCommit).
	Sync store.SyncPolicy
	// Metrics receives the engine's instruments; nil leaves it
	// uninstrumented.
	Metrics *obs.Registry
	// Faults is consulted at the store.Fault* points; nil injects
	// nothing.
	Faults *fault.Injector
}

// Engine is the storage contract every backend satisfies. All methods
// are safe for concurrent use, and every implementation shares the
// recovery contract of internal/store: recover the last good prefix,
// truncate torn tails with a warning, never panic on corrupt input, and
// refuse every operation with store.ErrCrashed after an injected crash
// or unrecoverable I/O error.
type Engine interface {
	// Append logs one record for source (source "" targets the engine's
	// meta stream), applies it to the shadow state, and fsyncs according
	// to the policy — write-ahead order: the record is durable before
	// the caller touches any in-memory replica.
	Append(source string, rec store.Record) error
	// DropSource durably removes a source: the drop (plus a Meta record
	// pinning the OID counter) is committed so the source's views never
	// resurrect, and its per-source storage is deleted.
	DropSource(source string, nextOID catalog.OID) error
	// Snapshot compacts the durable state (WAL: snapshot + truncate;
	// compact: rewrite per-source segments + truncate the tail).
	Snapshot() error
	// SnapshotSeq identifies the newest compaction (0 = none yet);
	// monotonically increasing.
	SnapshotSeq() uint64
	// State returns the shadow state: the graph a recovery of the
	// current directory would reconstruct. Callers must not mutate it.
	State() *store.State
	// Digest returns the stable-serialization digest of the durable
	// state.
	Digest() string
	// Dir returns the data directory.
	Dir() string
	// NextLSN returns the LSN the next appended record will receive.
	NextLSN() uint64
	// BaseLSN returns the lowest LSN the log still covers (older history
	// lives only in compacted form).
	BaseLSN() uint64
	// TailSince returns every record with LSN > fromLSN in global-LSN
	// order plus the next LSN; ok is false when compaction dropped the
	// history below fromLSN+1 and the caller must fall back to a
	// full-state transfer.
	TailSince(fromLSN uint64) ([]store.TailRecord, uint64, bool, error)
	// CloneState returns a deep copy of the shadow state and the next
	// LSN — a consistent full-state image for replication fallback.
	CloneState() (*store.State, uint64)
	// Close flushes, releases the data-dir lock and makes the engine
	// unusable.
	Close() error
}

// Both backends satisfy the contract.
var (
	_ Engine = (*store.Store)(nil)
	_ Engine = (*CompactStore)(nil)
)

// Open opens (creating if needed) the engine selected by opts.Backend
// at dir and recovers its state. Open takes an exclusive lock on the
// directory — a second open of the same dir fails until the first
// engine closes or its process dies — and refuses a directory the
// other backend created: the layouts are disjoint, so a mismatched
// open would silently start empty next to the existing data.
func Open(dir string, opts Options) (Engine, store.RecoveryInfo, error) {
	if err := checkLayout(dir, opts.Backend); err != nil {
		return nil, store.RecoveryInfo{}, err
	}
	switch opts.Backend {
	case BackendCompact:
		c, info, err := OpenCompact(dir, opts)
		if err != nil {
			return nil, info, err
		}
		return c, info, nil
	default:
		s, info, err := store.Open(dir, store.Options{Sync: opts.Sync, Metrics: opts.Metrics, Faults: opts.Faults})
		if err != nil {
			return nil, info, err
		}
		return s, info, nil
	}
}

// checkLayout refuses to open dir with backend b when the directory
// holds the other backend's layout (the compact backend's "compact"
// subdirectory vs. the WAL backend's "wal" subdirectory or snapshot
// files). Without this a mismatched -backend flag would lock the
// directory, see none of the existing files, and report an empty
// dataspace — indistinguishable from data loss.
func checkLayout(dir string, b Backend) error {
	has := func(name string) bool {
		_, err := os.Stat(filepath.Join(dir, name))
		return err == nil
	}
	switch b {
	case BackendCompact:
		snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
		if has("wal") || len(snaps) > 0 {
			return fmt.Errorf("storage: %s was created by the wal backend; reopen it with Backend=wal", dir)
		}
	default:
		if has("compact") {
			return fmt.Errorf("storage: %s was created by the compact backend; reopen it with Backend=compact", dir)
		}
	}
	return nil
}
