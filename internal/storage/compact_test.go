package storage

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

var updateFixtures = flag.Bool("update", false, "regenerate the compacted-segment fixture under testdata/store")

// fixtureDir is the shared binary-fixture directory (the root corruption
// suite keeps its WAL and snapshot goldens there too).
func fixtureDir() string { return filepath.Join("..", "..", "testdata", "store") }

const segFixture = "compact.seg"

// buildFixtureSegment renders the canonical segment for the "fs" slice
// of the conformance workload at watermark 42 — the committed fuzz seed
// and format-stability witness.
func buildFixtureSegment(tb testing.TB) []byte {
	tb.Helper()
	st := store.NewState()
	for _, rec := range workload() {
		st.Apply(rec)
	}
	img, err := encodeSegment(sourceSegmentRecords(st, "fs"), 42)
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

func loadFixtureSegment(tb testing.TB) []byte {
	tb.Helper()
	b, err := os.ReadFile(filepath.Join(fixtureDir(), segFixture))
	if err != nil {
		tb.Fatalf("missing fixture (run go test ./internal/storage -update): %v", err)
	}
	return b
}

func TestSegmentFixtureBytesStable(t *testing.T) {
	img := buildFixtureSegment(t)
	if *updateFixtures {
		if err := os.MkdirAll(fixtureDir(), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(fixtureDir(), segFixture), img, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(img, loadFixtureSegment(t)) {
		t.Fatal("re-rendering the fixture produced different segment bytes: the compacted format is nondeterministic or drifted (run with -update if deliberate)")
	}
}

func TestSegmentRoundtrip(t *testing.T) {
	img := buildFixtureSegment(t)
	recs, watermark, err := DecodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	if watermark != 42 {
		t.Fatalf("watermark %d, want 42", watermark)
	}
	// fs holds views 1 and 4 (2 was removed) plus one edges record.
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
	if recs[0].Kind != store.KindUpsert || recs[0].View.Entry.OID != 1 {
		t.Fatalf("first record %+v, want upsert of OID 1", recs[0])
	}
	if recs[1].Kind != store.KindUpsert || recs[1].View.Entry.OID != 4 {
		t.Fatalf("second record %+v, want upsert of OID 4 (ascending-OID order)", recs[1])
	}
	if recs[2].Kind != store.KindEdges || recs[2].Source != "fs" {
		t.Fatalf("third record %+v, want the fs edges", recs[2])
	}
}

func TestSegmentDecodeRejectsDamage(t *testing.T) {
	img := buildFixtureSegment(t)
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("NOTASEG1\n"), img[len(SegmentMagic):]...),
		"truncated tail":  img[:len(img)-3],
		"missing end":     img[:len(img)-12], // cut the SnapshotEnd frame entirely
		"trailing frames": append(append([]byte(nil), img...), img[len(SegmentMagic):]...),
		"flipped byte": func() []byte {
			mut := append([]byte(nil), img...)
			mut[len(mut)/2] ^= 0x40
			return mut
		}(),
	}
	for name, b := range cases {
		if _, _, err := DecodeSegment(b); err == nil {
			t.Errorf("%s: DecodeSegment accepted damaged input", name)
		}
	}
}

// TestCompactCorruptSegmentSkipped pins the documented degradation: a
// damaged (immutable, externally corrupted) source segment is skipped
// whole with a warning, the other sources and the tail survive.
func TestCompactCorruptSegmentSkipped(t *testing.T) {
	dir := t.TempDir()
	eng, _ := mustOpenB(t, BackendCompact, dir, Options{})
	appendAll(t, eng, workload())
	if err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("rss", upsert(12, "rss", "/feed/1")); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	segPath := filepath.Join(dir, "compact", segmentFileName("fs"))
	img, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0xff
	if err := os.WriteFile(segPath, img, 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, info := mustOpenB(t, BackendCompact, dir, Options{})
	defer eng2.Close()
	if len(info.Warnings) == 0 || !strings.Contains(strings.Join(info.Warnings, "\n"), "skipping segment") {
		t.Fatalf("corrupt segment not skipped with a warning: %+v", info.Warnings)
	}
	st := eng2.State()
	for _, v := range st.Views {
		if v.Entry.Source == "fs" {
			t.Fatalf("view %d survived from the corrupt fs segment", v.Entry.OID)
		}
	}
	if _, ok := st.Views[3]; !ok {
		t.Fatal("mail segment lost alongside the corrupt fs one")
	}
	if _, ok := st.Views[12]; !ok {
		t.Fatal("tail record lost alongside the corrupt segment")
	}
}

// TestCompactStaleSegmentNotResurrected pins the deletion-durability
// crash window: a compaction that retires a source (all its views
// removed) and crashes between the meta.seg write and the stale-segment
// sweep leaves an old-watermark segment next to a new-watermark
// meta.seg. Recovery must delete that leftover, not apply it — its
// remove records sit below the new watermark and are never replayed, so
// applying it would permanently resurrect the deleted views.
func TestCompactStaleSegmentNotResurrected(t *testing.T) {
	dir := t.TempDir()
	eng, _ := mustOpenB(t, BackendCompact, dir, Options{})
	appendAll(t, eng, workload())
	if err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "compact", segmentFileName("mail"))
	staleImg, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Retire mail purely via logged records (DropSource would unlink the
	// segment itself; the Snapshot sweep is the path under test).
	if err := eng.Append("mail", store.Record{Kind: store.KindRemove, OID: 3}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if eng.(*CompactStore).HasSegment("mail") {
		t.Fatal("compaction left the retired mail segment behind")
	}
	want := eng.Digest()
	eng.Close()

	// Reconstruct the crash artifact: old mail segment back on disk next
	// to the newer meta.seg and the already-truncated tail.
	if err := os.WriteFile(segPath, staleImg, 0o644); err != nil {
		t.Fatal(err)
	}
	eng2, _ := mustOpenB(t, BackendCompact, dir, Options{})
	defer eng2.Close()
	if got := eng2.Digest(); got != want {
		t.Fatalf("stale segment changed the recovered digest: %s != %s", got, want)
	}
	if _, ok := eng2.State().Views[3]; ok {
		t.Fatal("removed view 3 resurrected from the stale segment")
	}
	if eng2.(*CompactStore).HasSegment("mail") {
		t.Fatal("recovery left the stale segment in place")
	}
}

// TestCompactCorruptMetaRefused pins the meta.seg exception to the
// tolerate-corruption rule: meta.seg alone pins the OID counter past
// dropped sources, so a damaged one fails the open instead of silently
// regressing NextOID.
func TestCompactCorruptMetaRefused(t *testing.T) {
	dir := t.TempDir()
	eng, _ := mustOpenB(t, BackendCompact, dir, Options{})
	appendAll(t, eng, workload())
	if err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	metaPath := filepath.Join(dir, "compact", metaSegmentFile)
	orig, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), orig...)
	img[len(img)/2] ^= 0xff
	if err := os.WriteFile(metaPath, img, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(dir, Options{Backend: BackendCompact}); err == nil {
		t.Fatal("open succeeded with a corrupt meta.seg")
	} else if !strings.Contains(err.Error(), metaSegmentFile) {
		t.Fatalf("open error does not name meta.seg: %v", err)
	}
	// The failed open released the lock; an intact directory still opens.
	if err := os.WriteFile(metaPath, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	eng2, _ := mustOpenB(t, BackendCompact, dir, Options{})
	eng2.Close()
}

// TestCompactStaleTailSkipped pins the compaction commit point: tail
// records below the meta watermark (left behind when a crash hits
// between the meta.seg write and the tail truncation) are not replayed
// over the segments that already cover them.
func TestCompactStaleTailSkipped(t *testing.T) {
	dir := t.TempDir()
	eng, _ := mustOpenB(t, BackendCompact, dir, Options{})
	appendAll(t, eng, workload())
	want := eng.Digest()
	if err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	// Reconstruct the pre-truncation tail: stale sub-watermark records —
	// including a Meta with a lower OID counter, the dangerous case —
	// prepended before the (currently empty) post-compaction log.
	var stale []byte
	var err error
	if stale, err = store.AppendFrame(stale, 1, upsert(1, "fs", "/a")); err != nil {
		t.Fatal(err)
	}
	if stale, err = store.AppendFrame(stale, 2, store.Record{Kind: store.KindMeta, NextOID: 1}); err != nil {
		t.Fatal(err)
	}
	tailPath := filepath.Join(dir, "compact", tailFile)
	if err := os.WriteFile(tailPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, info := mustOpenB(t, BackendCompact, dir, Options{})
	defer eng2.Close()
	if info.WALRecords != 0 {
		t.Fatalf("replayed %d stale tail records, want 0", info.WALRecords)
	}
	if got := eng2.Digest(); got != want {
		t.Fatalf("stale tail changed the recovered digest: %s != %s", got, want)
	}
	if eng2.State().NextOID != 9 {
		t.Fatalf("stale Meta rolled the OID counter back to %d", eng2.State().NextOID)
	}
}
