package storage

import (
	"bytes"
	"testing"

	"repro/internal/store"
)

// FuzzSegmentDecode fuzzes the compacted-segment decoder. The decoder
// is the trust boundary for everything under <dir>/compact/src-*.seg:
// recovery feeds it raw file bytes and relies on it to either return a
// fully-validated record set or reject the whole segment. The invariants:
//
//  1. it never panics, whatever the input;
//  2. the end marker never leaks into the decoded record set;
//  3. whatever it accepts survives a re-encode/re-decode round trip
//     byte-stably — the encoder is a fixed point, so accepted data is
//     representable in the canonical format.
func FuzzSegmentDecode(f *testing.F) {
	valid := buildFixtureSegment(f)
	f.Add(valid)
	f.Add(loadFixtureSegment(f))
	f.Add([]byte{})
	f.Add([]byte(SegmentMagic))
	f.Add(valid[:len(SegmentMagic)+5])                       // torn mid-header
	f.Add(valid[:len(valid)-3])                              // torn mid-frame
	f.Add(append(append([]byte(nil), valid...), 0, 0, 0, 0)) // zero-padded tail
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x01
	f.Add(flip)
	empty, err := encodeSegment(nil, 7) // magic + end marker only
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, watermark, err := DecodeSegment(data)
		if err != nil {
			return
		}
		for _, rec := range recs {
			if rec.Kind == store.KindSnapshotEnd {
				t.Fatal("end marker leaked into the decoded record set")
			}
		}
		enc1, err := encodeSegment(recs, watermark)
		if err != nil {
			t.Fatalf("re-encoding an accepted segment failed: %v", err)
		}
		recs2, wm2, err := DecodeSegment(enc1)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded segment failed: %v", err)
		}
		if wm2 != watermark {
			t.Fatalf("watermark drifted across round trip: %d != %d", wm2, watermark)
		}
		enc2, err := encodeSegment(recs2, wm2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("encode/decode is not a fixed point for accepted input")
		}
	})
}
