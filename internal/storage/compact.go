package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/store"
)

// CompactStore is the read-optimized storage engine: one immutable,
// sorted, checksummed segment file per source plus a single append
// tail. A compaction (Snapshot) rewrites every source's segment from
// the shadow state and truncates the tail, so steady-state recovery is
// a sequential scan of sorted segments — which feeds the sort-based
// bulk index build directly — instead of an LSN merge across per-source
// WALs.
//
// Layout under <dir>/compact/:
//
//	src-<hex(source)>.seg  one sorted segment per source (views by
//	                       ascending OID, then one Edges record), framed
//	                       at the compaction watermark, SnapshotEnd
//	                       terminated; written atomically, immutable
//	meta.seg               Meta record (OID counter) at the watermark
//	tail.wal               WAL-framed records since the last compaction
//
// Crash safety relies on ordering, not on a manifest: segments are
// rewritten first, then stale segments of no-longer-live sources are
// removed, then — after a directory fsync — meta.seg is written (the
// commit point) and fsynced, and only then is the tail truncated. Every
// crash window leaves a directory whose replay (segments, then tail
// records at or above the meta watermark) reconstructs the same state,
// because upserts carry full view state and edge commits are full
// replacements, and because before the commit point the not-yet-
// truncated tail still carries every remove/drop record a stale segment
// would need. As a backstop, recovery deletes any source segment whose
// watermark predates meta.seg's: it can only be a leftover of a
// compaction that had already retired its source.
type CompactStore struct {
	dir    string
	segDir string
	opts   Options
	met    compactMetrics

	mu      sync.Mutex
	dead    error // non-nil after a crash; every op returns it
	state   *store.State
	nextLSN uint64
	baseLSN uint64 // tail serves LSNs >= baseLSN; older history is compacted
	snapSeq uint64 // watermark LSN of the newest completed compaction
	tail    *os.File
	dropped map[string]bool // sources whose segments were dropped
	lock    *store.DirLock  // exclusive data-dir lock, held for the engine's lifetime
}

type compactMetrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	compactions *obs.Counter
	compactNs   *obs.Histogram
	recoveryNs  *obs.Histogram
	replayed    *obs.Counter
	warnings    *obs.Counter
}

func newCompactMetrics(reg *obs.Registry) compactMetrics {
	return compactMetrics{
		appends:     reg.Counter("cstore_appends_total"),
		appendBytes: reg.Counter("cstore_append_bytes_total"),
		fsyncs:      reg.Counter("cstore_fsyncs_total"),
		compactions: reg.Counter("cstore_compactions_total"),
		compactNs:   reg.Histogram("cstore_compaction_ns", nil),
		recoveryNs:  reg.Histogram("cstore_recovery_ns", nil),
		replayed:    reg.Counter("cstore_replayed_records_total"),
		warnings:    reg.Counter("cstore_recovery_warnings_total"),
	}
}

// OpenCompact opens (creating if needed) the compacted engine at dir
// and recovers its state: every valid segment is applied, then the tail
// is replayed in LSN order, skipping records the newest compaction
// already covers. Like store.Open it tolerates most corruption — a
// damaged source segment is skipped with a warning (a replica re-syncs;
// see docs/PERSISTENCE.md), a torn tail is truncated — with one
// exception: a damaged meta.seg fails the open, because it alone pins
// the OID counter past dropped sources and silently dropping that pin
// would let a primary re-issue their OIDs.
func OpenCompact(dir string, opts Options) (*CompactStore, store.RecoveryInfo, error) {
	start := time.Now()
	c := &CompactStore{
		dir:     dir,
		segDir:  filepath.Join(dir, "compact"),
		opts:    opts,
		met:     newCompactMetrics(opts.Metrics),
		state:   store.NewState(),
		nextLSN: 1,
		dropped: make(map[string]bool),
	}
	if err := os.MkdirAll(c.segDir, 0o755); err != nil {
		return nil, store.RecoveryInfo{}, err
	}
	lock, err := store.AcquireDirLock(dir)
	if err != nil {
		return nil, store.RecoveryInfo{}, err
	}
	c.lock = lock
	opened := false
	defer func() {
		if !opened {
			if c.tail != nil {
				c.tail.Close()
			}
			lock.Release()
		}
	}()
	tr := obs.NewTrace("recovery")
	info := store.RecoveryInfo{Trace: tr}

	// --- Phase 1: apply the compacted segments. -----------------------
	sp := tr.Root().Start("load segments")
	ents, err := os.ReadDir(c.segDir)
	if err != nil {
		return nil, info, err
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			// A compaction died mid-write; the rename never happened.
			os.Remove(filepath.Join(c.segDir, e.Name()))
			continue
		}
		if strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic; segments touch disjoint sources
	log := obs.Logger("storage/compact")

	// meta.seg first: it is written after every source segment, so its
	// watermark marks the newest *completed* compaction — the commit
	// point every other segment and the tail are judged against. Unlike
	// a source segment, a damaged meta.seg cannot be warn-and-skipped:
	// it alone pins the OID counter past DropSource, and losing the pin
	// would let a primary re-issue dropped sources' OIDs.
	if img, err := os.ReadFile(filepath.Join(c.segDir, metaSegmentFile)); err == nil {
		recs, watermark, derr := DecodeSegment(img)
		if derr != nil {
			return nil, info, fmt.Errorf("storage: %s invalid: %w (the OID-counter pin is unrecoverable; restore the file or re-sync the directory)",
				metaSegmentFile, derr)
		}
		for _, rec := range recs {
			c.state.Apply(rec)
		}
		if watermark >= c.nextLSN {
			c.nextLSN = watermark + 1
		}
		c.baseLSN = watermark
		c.snapSeq = watermark
	} else if !os.IsNotExist(err) {
		return nil, info, err
	}
	segCount := 0
	for _, name := range names {
		if _, ok := sourceOfSegmentFile(name); !ok {
			continue
		}
		img, err := os.ReadFile(filepath.Join(c.segDir, name))
		if err != nil {
			return nil, info, err
		}
		recs, watermark, derr := DecodeSegment(img)
		if derr != nil {
			info.Warnings = append(info.Warnings,
				fmt.Sprintf("%s invalid, skipping segment: %v", name, derr))
			continue
		}
		if watermark < c.baseLSN {
			// Leftover of a compaction that had retired this source and
			// crashed between the meta.seg write and the stale-segment
			// sweep. Applying it would resurrect data whose remove/drop
			// records sit below the new watermark (and so are never
			// replayed); finish the interrupted removal instead.
			os.Remove(filepath.Join(c.segDir, name))
			log.Debug("removed stale segment left by an interrupted compaction",
				"segment", name, "watermark", watermark, "meta_watermark", c.baseLSN)
			continue
		}
		for _, rec := range recs {
			c.state.Apply(rec)
		}
		if watermark >= c.nextLSN {
			c.nextLSN = watermark + 1
		}
		segCount++
	}
	info.SnapshotSeq = c.snapSeq
	info.SnapshotViews = len(c.state.Views)
	sp.SetInt("segments", int64(segCount))
	sp.SetInt("views", int64(info.SnapshotViews))
	sp.Finish()

	// --- Phase 2: replay the tail in LSN order. -----------------------
	sp = tr.Root().Start("replay tail")
	tailPath := filepath.Join(c.segDir, tailFile)
	var tailRecs []store.TailRecord
	if b, err := os.ReadFile(tailPath); err == nil {
		res, rerr := store.ReplayBytes(b, func(lsn uint64, rec store.Record) error {
			tailRecs = append(tailRecs, store.TailRecord{LSN: lsn, Rec: rec})
			return nil
		})
		if rerr != nil {
			return nil, info, rerr
		}
		if res.Warning != "" {
			info.TornTails++
			info.Warnings = append(info.Warnings,
				fmt.Sprintf("%s: %s (truncating tail)", tailFile, res.Warning))
			if err := os.Truncate(tailPath, int64(res.GoodOffset)); err != nil {
				return nil, info, err
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, info, err
	}
	applied := 0
	for _, trec := range tailRecs {
		if trec.LSN >= c.nextLSN {
			c.nextLSN = trec.LSN + 1
		}
		if trec.LSN < c.baseLSN {
			// A crash hit between meta.seg and the tail truncation: the
			// compaction already folded this record into the segments.
			continue
		}
		if err := c.opts.Faults.Fail(store.FaultReplay); err != nil {
			// A crash during recovery replay: the directory is untouched
			// beyond the (idempotent) cleanup above, so a second recovery
			// must reach the same state.
			return nil, info, fmt.Errorf("%w: %w", store.ErrCrashed, err)
		}
		c.state.Apply(trec.Rec)
		applied++
	}
	info.WALRecords = applied
	sp.SetInt("records", int64(applied))
	sp.Finish()
	tr.Finish()

	f, err := os.OpenFile(tailPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, info, err
	}
	c.tail = f

	info.Views = len(c.state.Views)
	info.Elapsed = time.Since(start)
	c.met.replayed.Add(int64(info.WALRecords))
	c.met.warnings.Add(int64(len(info.Warnings)))
	c.met.recoveryNs.Observe(int64(info.Elapsed))
	for _, w := range info.Warnings {
		log.Warn("recovery tolerated corruption", "detail", w)
	}
	log.Debug("recovered", "views", info.Views, "tail_records", info.WALRecords,
		"watermark", c.snapSeq, "elapsed", info.Elapsed)
	opened = true
	return c, info, nil
}

// crash marks the engine dead and returns the wrapped cause. The dir
// lock is released: a really-crashed process loses its flock, and the
// crash-matrix tests reopen the directory within one process.
func (c *CompactStore) crash(cause error) error {
	c.dead = fmt.Errorf("%w: %w", store.ErrCrashed, cause)
	c.lock.Release()
	return c.dead
}

// Append logs one record to the tail, applies it to the shadow state
// and fsyncs according to the policy — write-ahead order. The source
// only routes the drop-suppression bookkeeping; every record lands in
// the single tail.
func (c *CompactStore) Append(source string, rec store.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return c.dead
	}
	if c.dropped[source] {
		// Same contract as the WAL store: stray trailing records for a
		// just-dropped source are meaningless until it is re-added, which
		// necessarily starts with an Upsert.
		if rec.Kind != store.KindUpsert {
			return nil
		}
		delete(c.dropped, source)
	}
	return c.appendLocked(rec)
}

func (c *CompactStore) appendLocked(rec store.Record) error {
	lsn := c.nextLSN
	frame, err := store.AppendFrame(nil, lsn, rec)
	if err != nil {
		return err
	}
	if err := c.opts.Faults.Fail(store.FaultAppend); err != nil {
		return c.crash(err)
	}
	if err := c.opts.Faults.Fail(store.FaultTorn); err != nil {
		// Simulate a crash mid-write: half the frame reaches the disk.
		c.tail.Write(frame[:len(frame)/2])
		c.tail.Sync()
		return c.crash(err)
	}
	if _, err := c.tail.Write(frame); err != nil {
		return c.crash(err)
	}
	c.nextLSN = lsn + 1
	c.met.appends.Inc()
	c.met.appendBytes.Add(int64(len(frame)))

	// Keep the shadow state exactly equal to what a replay of the bytes
	// just written would produce: apply the decoded payload, not the
	// caller's record (roundtripping normalizes times and nil slices).
	// A frame the store itself just encoded must decode; continuing past
	// a failure would let the shadow state silently diverge from what
	// recovery reconstructs, so it is fatal.
	payload := frame[8:]
	_, n := binary.Uvarint(payload)
	if n <= 0 {
		return c.crash(fmt.Errorf("storage: re-decoding appended frame: bad LSN varint"))
	}
	decoded, derr := store.DecodeRecord(payload[n:])
	if derr != nil {
		return c.crash(fmt.Errorf("storage: re-decoding appended frame: %w", derr))
	}
	c.state.Apply(decoded)

	commit := rec.Kind == store.KindEdges || rec.Kind == store.KindDropSource || rec.Kind == store.KindMeta
	if c.opts.Sync == store.SyncAlways || (c.opts.Sync == store.SyncOnCommit && commit) {
		if err := c.opts.Faults.Fail(store.FaultFsync); err != nil {
			return c.crash(err)
		}
		if err := c.tail.Sync(); err != nil {
			return c.crash(err)
		}
		c.met.fsyncs.Inc()
	}
	return nil
}

// DropSource durably removes a source: a DropSource record (plus a Meta
// record pinning the OID counter) is committed to the tail, then the
// source's compacted segment is deleted. Both crash windows replay
// safely — the drop record's LSN orders it after everything the deleted
// segment held.
func (c *CompactStore) DropSource(source string, nextOID catalog.OID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return c.dead
	}
	if err := c.appendLocked(store.Record{Kind: store.KindDropSource, Source: source}); err != nil {
		return err
	}
	if err := c.appendLocked(store.Record{Kind: store.KindMeta, NextOID: nextOID}); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(c.segDir, segmentFileName(source))); err != nil && !os.IsNotExist(err) {
		return c.crash(err)
	}
	c.dropped[source] = true
	if err := syncDir(c.segDir); err != nil {
		return c.crash(err)
	}
	return nil
}

// HasSegment reports whether a compacted segment file exists for source
// (test and tooling hook).
func (c *CompactStore) HasSegment(source string) bool {
	_, err := os.Stat(filepath.Join(c.segDir, segmentFileName(source)))
	return err == nil
}

// Snapshot compacts: every live source's segment is rewritten from the
// shadow state at the current watermark, stale segments are removed,
// meta.seg is updated, and the tail is truncated — with a directory
// fsync between each step so the order holds through power loss. Write
// order makes every crash window recoverable (see the type comment);
// replaying sub-watermark tail records is skipped on recovery, so a
// completed meta.seg write is the commit point.
func (c *CompactStore) Snapshot() error {
	start := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return c.dead
	}
	if err := c.opts.Faults.Fail(store.FaultSnapshot); err != nil {
		return c.crash(err)
	}
	watermark := c.nextLSN

	// Live sources: everything the shadow state mentions.
	live := make(map[string]bool)
	for _, v := range c.state.Views {
		live[v.Entry.Source] = true
	}
	for src := range c.state.Edges {
		live[src] = true
	}
	srcs := make([]string, 0, len(live))
	for src := range live {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)

	for _, src := range srcs {
		img, err := encodeSegment(sourceSegmentRecords(c.state, src), watermark)
		if err != nil {
			return err
		}
		if err := writeFileAtomic(filepath.Join(c.segDir, segmentFileName(src)), img); err != nil {
			return c.crash(err)
		}
	}

	// Remove segments of sources that no longer exist — strictly BEFORE
	// the commit point: once meta.seg's watermark passes the tail's
	// remove/drop records, a surviving stale segment would resurrect
	// deleted data on recovery. In this window the not-yet-truncated
	// tail still carries those records, so replay converges either way.
	ents, err := os.ReadDir(c.segDir)
	if err != nil {
		return c.crash(err)
	}
	for _, e := range ents {
		if src, ok := sourceOfSegmentFile(e.Name()); ok && !live[src] {
			if err := os.Remove(filepath.Join(c.segDir, e.Name())); err != nil && !os.IsNotExist(err) {
				return c.crash(err)
			}
		}
	}
	// Make the segment renames and removals durable before meta.seg can
	// land: on power loss, new meta over old segments would lose every
	// record between the two watermarks.
	if err := syncDir(c.segDir); err != nil {
		return c.crash(err)
	}

	metaImg, err := encodeSegment([]store.Record{{Kind: store.KindMeta, NextOID: c.state.NextOID}}, watermark)
	if err != nil {
		return err
	}
	// The commit point: once meta.seg carries the new watermark, recovery
	// ignores the (now redundant) tail below it.
	if err := writeFileAtomic(filepath.Join(c.segDir, metaSegmentFile), metaImg); err != nil {
		return c.crash(err)
	}
	// ... and the commit point must be durable before the tail goes:
	// recovery may skip sub-watermark tail records only because meta.seg
	// promises the segments cover them.
	if err := syncDir(c.segDir); err != nil {
		return c.crash(err)
	}

	// The segments are durable: the tail is now redundant.
	if err := c.tail.Close(); err != nil {
		return c.crash(err)
	}
	f, err := os.OpenFile(filepath.Join(c.segDir, tailFile), os.O_CREATE|os.O_TRUNC|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return c.crash(err)
	}
	c.tail = f
	if err := syncDir(c.segDir); err != nil {
		return c.crash(err)
	}

	c.baseLSN = watermark
	c.snapSeq = watermark
	c.met.compactions.Inc()
	c.met.compactNs.ObserveSince(start)
	obs.Logger("storage/compact").Debug("compacted", "watermark", watermark,
		"sources", len(srcs), "views", len(c.state.Views), "elapsed", time.Since(start))
	return nil
}

// SnapshotSeq identifies the newest completed compaction by its
// watermark LSN (0 = never compacted); monotonically non-decreasing.
func (c *CompactStore) SnapshotSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapSeq
}

// State returns the shadow state. Callers must not mutate it.
func (c *CompactStore) State() *store.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Digest returns the stable-serialization digest of the durable state.
func (c *CompactStore) Digest() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.Digest()
}

// Dir returns the data directory.
func (c *CompactStore) Dir() string { return c.dir }

// NextLSN returns the LSN the next appended record will receive.
func (c *CompactStore) NextLSN() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextLSN
}

// BaseLSN returns the lowest LSN the tail still serves (0 before any
// compaction: the tail covers everything).
func (c *CompactStore) BaseLSN() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.baseLSN
}

// TailSince returns every tail record with LSN > fromLSN in LSN order
// plus the next LSN; ok is false when a compaction dropped the history
// below fromLSN+1 and the caller must fall back to CloneState. Reads
// happen under the engine mutex, so a half-written frame or concurrent
// truncation can never be observed.
func (c *CompactStore) TailSince(fromLSN uint64) ([]store.TailRecord, uint64, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, 0, false, c.dead
	}
	if fromLSN+1 < c.baseLSN {
		return nil, c.nextLSN, false, nil
	}
	b, err := os.ReadFile(filepath.Join(c.segDir, tailFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, false, err
	}
	var out []store.TailRecord
	res, rerr := store.ReplayBytes(b, func(lsn uint64, rec store.Record) error {
		if lsn > fromLSN {
			out = append(out, store.TailRecord{LSN: lsn, Rec: rec})
		}
		return nil
	})
	if rerr != nil {
		return nil, 0, false, rerr
	}
	if res.Warning != "" {
		// Appends hold the mutex for the full frame write, so a torn tail
		// here is real on-disk damage, not a read race.
		return nil, 0, false, fmt.Errorf("storage: tail %s: %s", tailFile, res.Warning)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out, c.nextLSN, true, nil
}

// CloneState returns a deep copy of the shadow state and the next LSN —
// a consistent full-state image for replication fallback.
func (c *CompactStore) CloneState() (*store.State, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.Clone(), c.nextLSN
}

// Close fsyncs and closes the tail and releases the data-dir lock. The
// engine is unusable afterwards.
func (c *CompactStore) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	if c.tail != nil {
		if c.opts.Sync != store.SyncNever {
			if err := c.tail.Sync(); err != nil {
				errs = append(errs, err)
			}
		}
		if err := c.tail.Close(); err != nil {
			errs = append(errs, err)
		}
		c.tail = nil
	}
	if c.dead == nil {
		c.dead = errors.New("storage: compact store closed")
	}
	if err := c.lock.Release(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
