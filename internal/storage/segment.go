package storage

import (
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/store"
)

// SegmentMagic heads every compacted segment file. A segment is written
// atomically (tmp + rename) and is immutable afterwards, so — like a
// snapshot — it is all-or-nothing: any damage invalidates the whole
// file rather than yielding a partial source.
const SegmentMagic = "IDMCSEG1\n"

// segmentFileName maps a source id to its compacted segment file name;
// hex keeps arbitrary ids filesystem-safe and cannot collide with
// "meta.seg" or "tail.wal".
func segmentFileName(source string) string {
	return "src-" + hex.EncodeToString([]byte(source)) + ".seg"
}

// metaSegmentFile carries the OID counter and the compaction watermark.
const metaSegmentFile = "meta.seg"

// tailFile is the single append log carrying every record since the
// last compaction, in the WAL frame format (no magic — byte-compatible
// with a store WAL segment, so ReplayBytes and the replication shipping
// format apply unchanged).
const tailFile = "tail.wal"

// sourceOfSegmentFile inverts segmentFileName ("" for meta/unparseable).
func sourceOfSegmentFile(name string) (string, bool) {
	if !strings.HasPrefix(name, "src-") || !strings.HasSuffix(name, ".seg") {
		return "", false
	}
	b, err := hex.DecodeString(strings.TrimSuffix(strings.TrimPrefix(name, "src-"), ".seg"))
	if err != nil {
		return "", false
	}
	return string(b), true
}

// encodeSegment renders one compacted segment image: magic, the records
// framed in the WAL format (each frame carrying the compaction's LSN
// watermark), then a SnapshotEnd frame. For a source segment the
// records are its views in ascending OID order followed by one Edges
// record — a sorted scan a cold start can feed straight into the bulk
// index build.
func encodeSegment(recs []store.Record, watermark uint64) ([]byte, error) {
	b := []byte(SegmentMagic)
	var err error
	for _, rec := range recs {
		if b, err = store.AppendFrame(b, watermark, rec); err != nil {
			return nil, err
		}
	}
	return store.AppendFrame(b, watermark, store.Record{Kind: store.KindSnapshotEnd})
}

// DecodeSegment parses a compacted segment image into its records and
// LSN watermark. All-or-nothing: bad magic, a torn or corrupt frame, a
// missing end marker, or trailing frames all invalidate the whole
// segment. Never panics on arbitrary input (FuzzSegmentDecode).
func DecodeSegment(b []byte) ([]store.Record, uint64, error) {
	if len(b) < len(SegmentMagic) {
		return nil, 0, fmt.Errorf("storage: segment: truncated header")
	}
	if string(b[:len(SegmentMagic)]) != SegmentMagic {
		return nil, 0, fmt.Errorf("storage: segment: bad magic")
	}
	var recs []store.Record
	var watermark uint64
	ended := false
	res, err := store.ReplayBytes(b[len(SegmentMagic):], func(lsn uint64, rec store.Record) error {
		if ended {
			return fmt.Errorf("storage: segment: frames after end marker")
		}
		if rec.Kind == store.KindSnapshotEnd {
			ended = true
			watermark = lsn
			return nil
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if res.Warning != "" {
		return nil, 0, fmt.Errorf("storage: segment: %s", res.Warning)
	}
	if !ended {
		return nil, 0, fmt.Errorf("storage: segment: missing end marker")
	}
	return recs, watermark, nil
}

// sourceSegmentRecords flattens one source's slice of the state into
// the canonical segment sequence: views ascending by OID, then one
// Edges record (parents ascending, child order preserved).
func sourceSegmentRecords(st *store.State, source string) []store.Record {
	var oids []catalog.OID
	for oid, v := range st.Views {
		if v.Entry.Source == source {
			oids = append(oids, oid)
		}
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	recs := make([]store.Record, 0, len(oids)+1)
	for _, oid := range oids {
		recs = append(recs, store.Record{Kind: store.KindUpsert, View: st.Views[oid]})
	}
	if edges := st.Edges[source]; len(edges) > 0 {
		parents := make([]catalog.OID, 0, len(edges))
		for p := range edges {
			parents = append(parents, p)
		}
		sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
		rec := store.Record{Kind: store.KindEdges, Source: source}
		for _, p := range parents {
			rec.Edges = append(rec.Edges, store.EdgeList{Parent: p, Children: edges[p]})
		}
		recs = append(recs, rec)
	}
	return recs
}

// writeFileAtomic writes b to path via tmp + fsync + rename.
func writeFileAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory, making the renames and unlinks inside it
// durable against power loss. The compaction path crashes the engine on
// failure: its crash-ordering argument (segments, then stale-segment
// removal, then meta.seg, then the tail truncate) only holds if each
// batch of directory operations reaches disk before the next begins.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
