// Package xmlkit instantiates the XML data model in iDM (§3.3 of the
// paper). It parses XML into a small information-set tree (document,
// element, attribute, character information items — the core subset the
// paper covers) and converts that tree into a resource view graph
// following the xmldoc / xmlelem / xmltext resource view classes of
// Table 1: element attributes become the τ component, character data
// becomes xmltext views with the characters in the χ component, and the
// ordered children become the group sequence Q.
package xmlkit

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// NodeKind discriminates infoset items.
type NodeKind int

// Infoset item kinds.
const (
	// KindDocument is the document information item.
	KindDocument NodeKind = iota
	// KindElement is an element information item.
	KindElement
	// KindText is a character information item run.
	KindText
)

// Node is one information item of a parsed XML document.
type Node struct {
	Kind NodeKind
	// Name is the element name (elements only).
	Name string
	// Attrs are the element's attributes in document order.
	Attrs []Attr
	// Text is the character data (text nodes only).
	Text string
	// Children are the ordered child items (document and elements).
	Children []*Node
}

// Attr is one attribute information item.
type Attr struct {
	Name  string
	Value string
}

// ParseError reports malformed XML input.
type ParseError struct {
	Err error
}

func (e *ParseError) Error() string { return fmt.Sprintf("xmlkit: parse: %v", e.Err) }
func (e *ParseError) Unwrap() error { return e.Err }

// Parse reads an XML document into an infoset tree rooted at a document
// item. Whitespace-only text runs between elements are dropped;
// CDATA and character data inside elements are preserved.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	doc := &Node{Kind: KindDocument}
	stack := []*Node{doc}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, &ParseError{err}
		}
		top := stack[len(stack)-1]
		switch t := tok.(type) {
		case xml.StartElement:
			el := &Node{Kind: KindElement, Name: t.Name.Local}
			for _, a := range t.Attr {
				el.Attrs = append(el.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			top.Children = append(top.Children, el)
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 1 {
				return nil, &ParseError{fmt.Errorf("unexpected end element %q", t.Name.Local)}
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			top.Children = append(top.Children, &Node{Kind: KindText, Text: text})
		// Comments, directives and processing instructions are outside
		// the core infoset subset the paper instantiates; skip them.
		default:
		}
	}
	if len(stack) != 1 {
		return nil, &ParseError{fmt.Errorf("unclosed element %q", stack[len(stack)-1].Name)}
	}
	if rootCount := countElements(doc); rootCount == 0 {
		return nil, &ParseError{fmt.Errorf("document has no root element")}
	} else if rootCount > 1 {
		return nil, &ParseError{fmt.Errorf("document has %d root elements", rootCount)}
	}
	return doc, nil
}

func countElements(doc *Node) int {
	n := 0
	for _, c := range doc.Children {
		if c.Kind == KindElement {
			n++
		}
	}
	return n
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// Root returns the root element of a document item.
func (n *Node) Root() *Node {
	if n.Kind != KindDocument {
		return nil
	}
	for _, c := range n.Children {
		if c.Kind == KindElement {
			return c
		}
	}
	return nil
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// InnerText concatenates all character data beneath n in document order.
func (n *Node) InnerText() string {
	var b strings.Builder
	var rec func(*Node)
	rec = func(m *Node) {
		if m.Kind == KindText {
			b.WriteString(m.Text)
			return
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return b.String()
}

// CountNodes returns the number of element and text items in the tree
// (excluding the document item itself). This is the number of resource
// views ToViews derives from the document, minus one for the xmldoc view.
func CountNodes(n *Node) int {
	count := 0
	var rec func(*Node)
	rec = func(m *Node) {
		if m.Kind != KindDocument {
			count++
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return count
}

// ToViews converts a parsed document item into an iDM resource view graph
// per §3.3: the result is an xmldoc view whose group sequence holds the
// root xmlelem view. Element attributes populate τ (all attribute values
// are string-domain), character data populates xmltext views' χ, and
// element children populate the group sequence Q in document order.
func ToViews(doc *Node) (core.ResourceView, error) {
	if doc == nil || doc.Kind != KindDocument {
		return nil, fmt.Errorf("xmlkit: ToViews requires a document item")
	}
	root := doc.Root()
	if root == nil {
		return nil, fmt.Errorf("xmlkit: document has no root element")
	}
	rootView := elementToView(root)
	docView := &core.StaticView{
		VClass: core.ClassXMLDoc,
		VGroup: core.SeqGroup(rootView),
	}
	return docView, nil
}

func elementToView(el *Node) core.ResourceView {
	v := core.NewView(el.Name, core.ClassXMLElem)
	if len(el.Attrs) > 0 {
		schema := make(core.Schema, len(el.Attrs))
		tuple := make(core.Tuple, len(el.Attrs))
		for i, a := range el.Attrs {
			schema[i] = core.Attribute{Name: a.Name, Domain: core.DomainString}
			tuple[i] = core.String(a.Value)
		}
		v.VTuple = core.TupleComponent{Schema: schema, Tuple: tuple}
	}
	if len(el.Children) > 0 {
		children := make([]core.ResourceView, 0, len(el.Children))
		for _, c := range el.Children {
			switch c.Kind {
			case KindElement:
				children = append(children, elementToView(c))
			case KindText:
				children = append(children, (&core.StaticView{
					VClass: core.ClassXMLText,
				}).WithContent(core.StringContent(c.Text)))
			}
		}
		v.VGroup = core.SeqGroup(children...)
	}
	return v
}

// LazyDocView wraps raw XML bytes as a lazy xmldoc resource view: the
// document is parsed only when the group component is first requested,
// implementing the lazy conversion of §4.1 ("the subgraph representing
// the contents ... may be transformed to an iDM graph if a user requests
// that information"). Parse errors surface as an empty group.
func LazyDocView(raw []byte, onErr func(error)) core.ResourceView {
	return &core.LazyView{
		VClass: core.ClassXMLDoc,
		GroupFn: func() core.Group {
			doc, err := Parse(strings.NewReader(string(raw)))
			if err != nil {
				if onErr != nil {
					onErr(err)
				}
				return core.EmptyGroup()
			}
			root := doc.Root()
			if root == nil {
				return core.EmptyGroup()
			}
			return core.SeqGroup(elementToView(root))
		},
	}
}
