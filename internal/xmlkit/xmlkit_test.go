package xmlkit

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// paperFragment is the ActiveXML-style fragment of §4.3.1.
const paperFragment = `<dep>
  <sc>web.server.com/GetDepartments()</sc>
  <deplist>
    <entry name="acct"><name>Accounting</name></entry>
  </deplist>
</dep>`

func TestParseStructure(t *testing.T) {
	doc, err := ParseString(paperFragment)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if root == nil || root.Name != "dep" {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("dep has %d children, want 2", len(root.Children))
	}
	sc := root.Children[0]
	if sc.Name != "sc" || sc.InnerText() != "web.server.com/GetDepartments()" {
		t.Errorf("sc = %+v", sc)
	}
	entry := root.Children[1].Children[0]
	if v, ok := entry.Attr("name"); !ok || v != "acct" {
		t.Errorf("entry attr = %q, %v", v, ok)
	}
	if _, ok := entry.Attr("missing"); ok {
		t.Error("phantom attribute found")
	}
}

func TestParseDropsWhitespaceText(t *testing.T) {
	doc, err := ParseString("<a>\n  <b>x</b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if len(root.Children) != 1 {
		t.Errorf("root children = %d, want 1 (whitespace dropped)", len(root.Children))
	}
}

func TestParsePreservesMixedContent(t *testing.T) {
	doc, err := ParseString("<p>hello <b>bold</b> world</p>")
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if len(root.Children) != 3 {
		t.Fatalf("mixed content children = %d, want 3", len(root.Children))
	}
	if root.InnerText() != "hello bold world" {
		t.Errorf("InnerText = %q", root.InnerText())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"<a>",
		"<a></b>",
		"text only",
		"<a/><b/>",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", bad)
		}
	}
}

func TestParseErrorType(t *testing.T) {
	_, err := ParseString("<a>")
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Errorf("err %T is not *ParseError", err)
	}
}

func asParseError(err error, target **ParseError) bool {
	for err != nil {
		if pe, ok := err.(*ParseError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestCountNodes(t *testing.T) {
	doc, _ := ParseString(paperFragment)
	// dep, sc, sc-text, deplist, entry, name, name-text = 7
	if n := CountNodes(doc); n != 7 {
		t.Errorf("CountNodes = %d, want 7", n)
	}
}

func TestToViewsClassesAndShape(t *testing.T) {
	doc, _ := ParseString(paperFragment)
	dv, err := ToViews(doc)
	if err != nil {
		t.Fatal(err)
	}
	if dv.Class() != core.ClassXMLDoc || dv.Name() != "" {
		t.Errorf("doc view class=%q name=%q", dv.Class(), dv.Name())
	}
	seq, _ := core.CollectViews(dv.Group().Seq, 0)
	if len(seq) != 1 {
		t.Fatalf("doc group Q has %d views, want 1 (root)", len(seq))
	}
	root := seq[0]
	if root.Name() != "dep" || root.Class() != core.ClassXMLElem {
		t.Errorf("root view name=%q class=%q", root.Name(), root.Class())
	}
	children, _ := core.CollectIter(root.Group().Iter(), 0)
	if len(children) != 2 {
		t.Fatalf("dep has %d child views", len(children))
	}
	// Attributes land in τ.
	entrySeq, _ := core.CollectViews(children[1].Group().Seq, 0)
	entry := entrySeq[0]
	if v, ok := entry.Tuple().Get("name"); !ok || v.Str != "acct" {
		t.Errorf("entry τ attr = %v, %v", v, ok)
	}
	// The whole graph conforms to the standard registry classes.
	reg := core.StandardRegistry()
	err = core.Walk(dv, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		if v.Class() == "" {
			t.Errorf("view %q has no class", core.NameOf(v))
			return nil
		}
		return reg.Conforms(v, v.Class(), 0)
	})
	if err != nil {
		t.Errorf("conformance walk: %v", err)
	}
}

func TestToViewsTextContent(t *testing.T) {
	doc, _ := ParseString("<name>Accounting</name>")
	dv, _ := ToViews(doc)
	seq, _ := core.CollectViews(dv.Group().Seq, 0)
	elemChildren, _ := core.CollectViews(seq[0].Group().Seq, 0)
	if len(elemChildren) != 1 {
		t.Fatalf("children = %d", len(elemChildren))
	}
	text := elemChildren[0]
	if text.Class() != core.ClassXMLText {
		t.Errorf("class = %q", text.Class())
	}
	b, _ := core.ReadAllContent(text.Content(), 0)
	if string(b) != "Accounting" {
		t.Errorf("χ = %q", b)
	}
}

func TestToViewsRequiresDocument(t *testing.T) {
	if _, err := ToViews(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := ToViews(&Node{Kind: KindElement, Name: "a"}); err == nil {
		t.Error("element item accepted as document")
	}
}

func TestLazyDocView(t *testing.T) {
	v := LazyDocView([]byte("<a><b>x</b></a>"), nil)
	if v.Class() != core.ClassXMLDoc {
		t.Errorf("class = %q", v.Class())
	}
	seq, _ := core.CollectViews(v.Group().Seq, 0)
	if len(seq) != 1 || seq[0].Name() != "a" {
		t.Fatalf("lazy root = %v", seq)
	}
}

func TestLazyDocViewMalformed(t *testing.T) {
	var captured error
	v := LazyDocView([]byte("<unclosed"), func(err error) { captured = err })
	if !v.Group().IsEmpty() {
		t.Error("malformed XML should yield empty group")
	}
	if captured == nil {
		t.Error("error callback not invoked")
	}
}

// Property: for generated nested documents, the number of views reachable
// from the xmldoc view equals CountNodes + 1.
func TestViewCountMatchesNodeCountQuick(t *testing.T) {
	f := func(depth, width uint8) bool {
		d := int(depth%4) + 1
		w := int(width%3) + 1
		var build func(level int) string
		build = func(level int) string {
			if level == 0 {
				return "leaf"
			}
			var b strings.Builder
			for i := 0; i < w; i++ {
				b.WriteString("<n>")
				b.WriteString(build(level - 1))
				b.WriteString("</n>")
			}
			return b.String()
		}
		src := "<root>" + build(d) + "</root>"
		doc, err := ParseString(src)
		if err != nil {
			return false
		}
		dv, err := ToViews(doc)
		if err != nil {
			return false
		}
		n, err := core.CountReachable(dv, core.WalkOptions{MaxDepth: -1})
		return err == nil && n == CountNodes(doc)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
