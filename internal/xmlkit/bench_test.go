package xmlkit

import (
	"strings"
	"testing"
)

func benchDoc() string {
	var b strings.Builder
	b.WriteString("<dataset>")
	for i := 0; i < 200; i++ {
		b.WriteString(`<record id="1" kind="bench"><title>some title</title><body>body text here</body></record>`)
	}
	b.WriteString("</dataset>")
	return b.String()
}

func BenchmarkParse(b *testing.B) {
	src := benchDoc()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToViews(b *testing.B) {
	doc, err := ParseString(benchDoc())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ToViews(doc); err != nil {
			b.Fatal(err)
		}
	}
}
