package rss

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func seedServer() *Server {
	s := NewServer()
	s.CreateFeed("dbnews")
	s.Publish("dbnews", Item{
		Title:       "VLDB 2006 accepted papers",
		Description: "iDM paper accepted",
		PubDate:     time.Date(2006, 5, 1, 12, 0, 0, 0, time.UTC),
	})
	s.Publish("dbnews", Item{
		Title:       "Dataspaces tutorial",
		Description: "Franklin, Halevy, Maier",
		PubDate:     time.Date(2006, 6, 1, 12, 0, 0, 0, time.UTC),
	})
	return s
}

func TestFetchAndParseRoundtrip(t *testing.T) {
	s := seedServer()
	data, err := s.FetchDocument("dbnews")
	if err != nil {
		t.Fatal(err)
	}
	title, items, err := ParseDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	if title != "dbnews" || len(items) != 2 {
		t.Fatalf("title=%q items=%d", title, len(items))
	}
	if items[0].Title != "VLDB 2006 accepted papers" {
		t.Errorf("item[0] = %+v", items[0])
	}
	if items[0].GUID == "" || items[1].GUID == "" {
		t.Error("GUIDs not assigned")
	}
	if items[0].PubDate.IsZero() {
		t.Error("pubDate lost in roundtrip")
	}
}

func TestFetchUnknownFeed(t *testing.T) {
	s := NewServer()
	if _, err := s.FetchDocument("nope"); !errors.Is(err, ErrNoFeed) {
		t.Errorf("err = %v", err)
	}
}

func TestParseMalformed(t *testing.T) {
	if _, _, err := ParseDocument([]byte("<rss><unclosed")); err == nil {
		t.Error("malformed document accepted")
	}
}

func TestClientPollDeltas(t *testing.T) {
	s := seedServer()
	c := NewClient(s, "dbnews")
	first, err := c.Poll()
	if err != nil || len(first) != 2 {
		t.Fatalf("first poll: %d items, %v", len(first), err)
	}
	second, err := c.Poll()
	if err != nil || len(second) != 0 {
		t.Fatalf("second poll: %d items (want 0 — nothing new)", len(second))
	}
	s.Publish("dbnews", Item{Title: "New post"})
	third, err := c.Poll()
	if err != nil || len(third) != 1 || third[0].Title != "New post" {
		t.Fatalf("third poll: %+v, %v", third, err)
	}
}

func TestServerLatencyAndFetchCount(t *testing.T) {
	s := seedServer()
	s.SetLatency(2 * time.Millisecond)
	start := time.Now()
	s.FetchDocument("dbnews")
	if time.Since(start) < 2*time.Millisecond {
		t.Error("latency not charged")
	}
	if s.Fetches() != 1 {
		t.Errorf("fetches = %d", s.Fetches())
	}
}

func TestItemToView(t *testing.T) {
	v := ItemToView(Item{Title: "A & B", Description: "d<e>", GUID: "g1"})
	if v.Class() != core.ClassXMLDoc {
		t.Errorf("class = %q", v.Class())
	}
	seq, _ := core.CollectViews(v.Group().Seq, 0)
	if len(seq) != 1 || seq[0].Name() != "item" {
		t.Fatalf("root = %v", seq)
	}
	// Escaping survived the roundtrip into the view graph.
	var text string
	core.Walk(seq[0], core.WalkOptions{MaxDepth: -1}, func(w core.ResourceView, _ int) error {
		if w.Class() == core.ClassXMLText {
			b, _ := core.ReadAllContent(w.Content(), 0)
			text += string(b)
		}
		return nil
	})
	if !strings.Contains(text, "A & B") || !strings.Contains(text, "d<e>") {
		t.Errorf("text = %q", text)
	}
}

func TestDocumentView(t *testing.T) {
	s := seedServer()
	v := DocumentView(s, "dbnews")
	if v.Name() != "dbnews" || v.Class() != core.ClassXMLDoc {
		t.Errorf("name=%q class=%q", v.Name(), v.Class())
	}
	seq, _ := core.CollectViews(v.Group().Seq, 0)
	if len(seq) != 1 || seq[0].Name() != "rss" {
		t.Fatalf("root element = %v", seq)
	}
	// Lazy: a fetch happened only when the group was requested.
	if s.Fetches() != 1 {
		t.Errorf("fetches = %d, want 1", s.Fetches())
	}
	n, _ := core.CountReachable(v, core.WalkOptions{MaxDepth: -1})
	if n < 10 {
		t.Errorf("reachable views = %d, want a full item tree", n)
	}
}

func TestDocumentViewUnknownFeed(t *testing.T) {
	s := NewServer()
	v := DocumentView(s, "nope")
	if !v.Group().IsEmpty() {
		t.Error("unknown feed should yield empty group")
	}
}

func TestFeedsSorted(t *testing.T) {
	s := NewServer()
	s.CreateFeed("z")
	s.CreateFeed("a")
	s.Publish("m", Item{Title: "x"})
	feeds := s.Feeds()
	if len(feeds) != 3 || feeds[0] != "a" || feeds[2] != "z" {
		t.Errorf("feeds = %v", feeds)
	}
}
