// Package rss implements a simulated RSS/ATOM feed server and client:
// the rssatom substrate of §3.4 of the iDM paper. As the paper observes,
// RSS/ATOM "streams" are really just XML documents republished on a web
// server with no change notifications, so clients must poll. The Server
// here renders its feeds to RSS 2.0 XML on every fetch; the Client polls,
// detects new items by GUID, and exposes them as iDM views — either as a
// single xmldoc (one option in Table 1) or as a pseudo data stream of
// xmldoc views (the other option).
package rss

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/xmlkit"
)

// ErrNoFeed is returned for unknown feed names.
var ErrNoFeed = errors.New("rss: no such feed")

// Item is one feed entry.
type Item struct {
	Title       string
	Description string
	GUID        string
	PubDate     time.Time
}

// Server hosts named feeds and renders them to XML on demand. Server is
// safe for concurrent use.
type Server struct {
	mu      sync.RWMutex
	feeds   map[string][]Item
	latency time.Duration
	fetches int64
}

// NewServer returns an empty feed server.
func NewServer() *Server { return &Server{feeds: make(map[string][]Item)} }

// SetLatency configures the simulated per-fetch latency.
func (s *Server) SetLatency(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latency = d
}

// Fetches returns the number of document fetches served.
func (s *Server) Fetches() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fetches
}

// CreateFeed registers an empty feed.
func (s *Server) CreateFeed(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.feeds[name]; !ok {
		s.feeds[name] = nil
	}
}

// Publish appends an item to a feed, creating the feed if necessary.
// Items without a GUID get one derived from the feed position.
func (s *Server) Publish(feed string, it Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it.GUID == "" {
		it.GUID = fmt.Sprintf("%s-%d", feed, len(s.feeds[feed])+1)
	}
	s.feeds[feed] = append(s.feeds[feed], it)
}

// Feeds lists feed names in sorted order.
func (s *Server) Feeds() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.feeds))
	for n := range s.feeds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// rssXML mirrors the RSS 2.0 document structure for rendering and
// parsing.
type rssXML struct {
	XMLName xml.Name   `xml:"rss"`
	Version string     `xml:"version,attr"`
	Channel channelXML `xml:"channel"`
}

type channelXML struct {
	Title string    `xml:"title"`
	Items []itemXML `xml:"item"`
}

type itemXML struct {
	Title       string `xml:"title"`
	Description string `xml:"description"`
	GUID        string `xml:"guid"`
	PubDate     string `xml:"pubDate"`
}

// FetchDocument renders the feed to RSS 2.0 XML — what a web server would
// return for the feed URL. Latency, if configured, is charged.
func (s *Server) FetchDocument(feed string) ([]byte, error) {
	s.mu.Lock()
	items, ok := s.feeds[feed]
	s.fetches++
	lat := s.latency
	snapshot := append([]Item(nil), items...)
	s.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFeed, feed)
	}
	doc := rssXML{Version: "2.0", Channel: channelXML{Title: feed}}
	for _, it := range snapshot {
		doc.Channel.Items = append(doc.Channel.Items, itemXML{
			Title:       it.Title,
			Description: it.Description,
			GUID:        it.GUID,
			PubDate:     it.PubDate.Format(time.RFC1123Z),
		})
	}
	return xml.MarshalIndent(doc, "", "  ")
}

// ParseDocument parses an RSS 2.0 document back into items.
func ParseDocument(data []byte) (title string, items []Item, err error) {
	var doc rssXML
	if err := xml.Unmarshal(data, &doc); err != nil {
		return "", nil, fmt.Errorf("rss: parse: %w", err)
	}
	for _, it := range doc.Channel.Items {
		item := Item{Title: it.Title, Description: it.Description, GUID: it.GUID}
		if t, err := time.Parse(time.RFC1123Z, it.PubDate); err == nil {
			item.PubDate = t
		}
		items = append(items, item)
	}
	return doc.Channel.Title, items, nil
}

// Client polls a feed and tracks seen GUIDs so that Poll returns only new
// items — the polling facility that converts the republished document
// into a pseudo data stream (§4.4.1, footnote 5).
type Client struct {
	server *Server
	feed   string
	mu     sync.Mutex
	seen   map[string]bool
}

// NewClient returns a client for one feed on the server.
func NewClient(server *Server, feed string) *Client {
	return &Client{server: server, feed: feed, seen: make(map[string]bool)}
}

// Poll fetches the feed document and returns items not seen before.
func (c *Client) Poll() ([]Item, error) {
	data, err := c.server.FetchDocument(c.feed)
	if err != nil {
		return nil, err
	}
	_, items, err := ParseDocument(data)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var fresh []Item
	for _, it := range items {
		if !c.seen[it.GUID] {
			c.seen[it.GUID] = true
			fresh = append(fresh, it)
		}
	}
	return fresh, nil
}

// ItemToView converts one feed item into an xmldoc resource view (each
// message of an rssatom stream is an XML document, Table 1).
func ItemToView(it Item) core.ResourceView {
	src := fmt.Sprintf(
		"<item><title>%s</title><description>%s</description><guid>%s</guid></item>",
		xmlEscape(it.Title), xmlEscape(it.Description), xmlEscape(it.GUID))
	return xmlkit.LazyDocView([]byte(src), nil)
}

// DocumentView exposes the feed's current state as a single lazy xmldoc
// view — the alternative representation Table 1 notes for RSS/ATOM.
func DocumentView(server *Server, feed string) core.ResourceView {
	return &core.LazyView{
		VName:  feed,
		VClass: core.ClassXMLDoc,
		GroupFn: func() core.Group {
			data, err := server.FetchDocument(feed)
			if err != nil {
				return core.EmptyGroup()
			}
			doc, err := xmlkit.Parse(strings.NewReader(string(data)))
			if err != nil {
				return core.EmptyGroup()
			}
			dv, err := xmlkit.ToViews(doc)
			if err != nil {
				return core.EmptyGroup()
			}
			return dv.Group()
		},
	}
}

func xmlEscape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}
