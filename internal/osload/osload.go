// Package osload imports a real directory tree from the host operating
// system into a virtual filesystem, so an iDM PDSMS can index actual
// personal files (the situation of the paper's evaluation, which ran
// over one author's real home directory). Hidden entries are skipped by
// default and file sizes are bounded; symlinks are not followed (the
// vfs has its own folder-link mechanism).
package osload

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/vfs"
)

// Options tunes the import.
type Options struct {
	// MaxFileBytes skips files larger than this; <= 0 applies 1 MiB.
	MaxFileBytes int64
	// IncludeHidden imports dot-files and dot-directories too.
	IncludeHidden bool
}

// Stats reports what was imported.
type Stats struct {
	Folders      int
	Files        int
	SkippedLarge int
	SkippedOther int
	Bytes        int64
}

// Load walks root and mirrors its folders and regular files into the
// virtual filesystem under "/". Unreadable entries are counted and
// skipped rather than failing the import.
func Load(vf *vfs.FS, root string, opts Options) (Stats, error) {
	if opts.MaxFileBytes <= 0 {
		opts.MaxFileBytes = 1 << 20
	}
	var st Stats
	root = filepath.Clean(root)
	info, err := os.Stat(root)
	if err != nil {
		return st, fmt.Errorf("osload: %w", err)
	}
	if !info.IsDir() {
		return st, fmt.Errorf("osload: %s is not a directory", root)
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			st.SkippedOther++
			if d != nil && d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil || rel == "." {
			return nil
		}
		if !opts.IncludeHidden && isHidden(rel) {
			if d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		vpath := "/" + filepath.ToSlash(rel)
		switch {
		case d.IsDir():
			if _, err := vf.MkdirAll(vpath); err != nil {
				st.SkippedOther++
				return filepath.SkipDir
			}
			st.Folders++
		case d.Type().IsRegular():
			fi, err := d.Info()
			if err != nil {
				st.SkippedOther++
				return nil
			}
			if fi.Size() > opts.MaxFileBytes {
				st.SkippedLarge++
				return nil
			}
			b, err := os.ReadFile(path)
			if err != nil {
				st.SkippedOther++
				return nil
			}
			if _, err := vf.WriteFile(vpath, b); err != nil {
				st.SkippedOther++
				return nil
			}
			st.Files++
			st.Bytes += int64(len(b))
		default:
			// Symlinks, devices, sockets: not part of the model.
			st.SkippedOther++
		}
		return nil
	})
	return st, err
}

func isHidden(rel string) bool {
	for _, part := range strings.Split(filepath.ToSlash(rel), "/") {
		if strings.HasPrefix(part, ".") {
			return true
		}
	}
	return false
}
