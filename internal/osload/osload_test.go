package osload

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

func buildTree(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	mk := func(rel string, content []byte) {
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk("papers/vldb.tex", []byte("\\section{Intro}\nreal file content"))
	mk("papers/notes.txt", []byte("plain notes"))
	mk("photos/big.jpg", make([]byte, 4096))
	mk(".git/config", []byte("hidden"))
	mk(".hidden.txt", []byte("hidden file"))
	return dir
}

func TestLoadMirrorsTree(t *testing.T) {
	dir := buildTree(t)
	vf := vfs.New()
	st, err := Load(vf, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 3 || st.Folders != 2 {
		t.Errorf("stats = %+v", st)
	}
	b, err := vf.ReadFile("/papers/vldb.tex")
	if err != nil || string(b) == "" {
		t.Errorf("vldb.tex: %q, %v", b, err)
	}
	if vf.Exists("/.git/config") || vf.Exists("/.hidden.txt") {
		t.Error("hidden entries imported")
	}
}

func TestLoadIncludeHidden(t *testing.T) {
	dir := buildTree(t)
	vf := vfs.New()
	st, err := Load(vf, dir, Options{IncludeHidden: true})
	if err != nil {
		t.Fatal(err)
	}
	if !vf.Exists("/.git/config") || !vf.Exists("/.hidden.txt") {
		t.Error("hidden entries missing")
	}
	if st.Files != 5 {
		t.Errorf("files = %d", st.Files)
	}
}

func TestLoadSizeBound(t *testing.T) {
	dir := buildTree(t)
	vf := vfs.New()
	st, err := Load(vf, dir, Options{MaxFileBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedLarge != 1 {
		t.Errorf("skipped large = %d", st.SkippedLarge)
	}
	if vf.Exists("/photos/big.jpg") {
		t.Error("oversized file imported")
	}
}

func TestLoadErrors(t *testing.T) {
	vf := vfs.New()
	if _, err := Load(vf, filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Error("missing root accepted")
	}
	f := filepath.Join(t.TempDir(), "afile")
	os.WriteFile(f, []byte("x"), 0o644)
	if _, err := Load(vf, f, Options{}); err == nil {
		t.Error("file root accepted")
	}
}
