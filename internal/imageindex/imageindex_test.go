package imageindex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// synth produces a synthetic "image": bytes drawn around a center value
// with noise, so images with nearby centers have similar histograms.
func synth(rng *rand.Rand, center byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		v := int(center) + rng.Intn(33) - 16
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out[i] = byte(v)
	}
	return out
}

func TestSimilarRanksByDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ix := New()
	ix.Add(1, synth(rng, 40, 4096))  // dark
	ix.Add(2, synth(rng, 44, 4096))  // dark, close to 1
	ix.Add(3, synth(rng, 200, 4096)) // bright
	ix.Add(4, synth(rng, 204, 4096)) // bright, close to 3

	// Bright images share no bins with the dark query, so their cosine
	// is 0 and they are filtered: only doc 2 can match.
	got := ix.Similar(1, 2)
	if len(got) != 1 {
		t.Fatalf("matches = %v", got)
	}
	if got[0].Doc != 2 {
		t.Errorf("nearest to 1 = %d, want 2", got[0].Doc)
	}
	if got[0].Similarity < 0.5 {
		t.Errorf("similarity = %v", got[0].Similarity)
	}
	got = ix.Similar(3, 1)
	if len(got) != 1 || got[0].Doc != 4 {
		t.Errorf("nearest to 3 = %v, want 4", got)
	}
	// Self is excluded.
	for _, m := range ix.Similar(1, 10) {
		if m.Doc == 1 {
			t.Error("self in results")
		}
	}
}

func TestSimilarTo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix := New()
	ix.Add(1, synth(rng, 30, 2048))
	ix.Add(2, synth(rng, 220, 2048))
	got := ix.SimilarTo(synth(rng, 28, 2048), 1)
	if len(got) != 1 || got[0].Doc != 1 {
		t.Errorf("query by content = %v", got)
	}
}

func TestUnknownAndEmpty(t *testing.T) {
	ix := New()
	if got := ix.Similar(99, 5); got != nil {
		t.Errorf("unknown doc = %v", got)
	}
	ix.Add(1, nil) // empty content: zero histogram
	ix.Add(2, []byte{1, 2, 3})
	if got := ix.Similar(2, 5); len(got) != 0 {
		t.Errorf("zero histogram matched: %v", got)
	}
	if got := ix.Similar(2, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
}

func TestDeleteAndSize(t *testing.T) {
	ix := New()
	ix.Add(1, []byte{1, 2, 3})
	ix.Add(2, []byte{1, 2, 250}) // shares the low bin with doc 1
	before := ix.SizeBytes()
	ix.Delete(1)
	if ix.Len() != 1 || ix.SizeBytes() >= before {
		t.Errorf("len=%d size=%d", ix.Len(), ix.SizeBytes())
	}
	if got := ix.SimilarTo([]byte{1, 2, 3}, 5); len(got) != 1 || got[0].Doc != 2 {
		t.Errorf("after delete = %v", got)
	}
}

// Property: identical content has similarity 1 (within float error) and
// tops the ranking; similarity is symmetric.
func TestSelfSimilarityQuick(t *testing.T) {
	f := func(data []byte, other []byte) bool {
		if len(data) == 0 || len(other) == 0 {
			return true
		}
		ix := New()
		ix.Add(1, data)
		ix.Add(2, other)
		got := ix.SimilarTo(data, 2)
		if len(got) == 0 || got[0].Doc != 1 && got[0].Similarity < 0.9999 {
			return false
		}
		// Symmetry.
		a := ix.Similar(1, 1)
		b := ix.Similar(2, 1)
		if len(a) != len(b) {
			return false
		}
		if len(a) == 1 {
			diff := a[0].Similarity - b[0].Similarity
			if diff < -1e-9 || diff > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
