// Cursor-based pagination for imemexd query results.
//
// A cursor is an opaque, resumable position in a query's result set.
// Result rows are ordered by their OID key — the tuple of catalog OIDs
// in the row, compared lexicographically — which is stable across
// query re-evaluation, dataspace mutation and tenant eviction: OIDs
// are assigned once and never reused for a live view, so a row's key
// never changes and rows only ever sort into one place. Resuming a
// cursor re-evaluates the query (cheap against the replica, and served
// by the version-keyed cache when nothing changed) and returns the
// rows strictly after the cursor's key: a client walking pages sees
// every row at most once and in strictly increasing key order, even
// while rows are added or removed underneath it.
package server

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	idm "repro"
)

// pageCursor is the decoded cursor. The wire form is unpadded
// URL-base64 over compact JSON — opaque to clients, versioned and
// query-bound so a cursor can only resume the query that minted it.
type pageCursor struct {
	// V is the cursor format version (currently 1).
	V int `json:"v"`
	// Q is the FNV-64a hash of the query text the cursor belongs to.
	Q string `json:"q"`
	// Last is the OID key of the last row the previous page returned.
	Last []uint64 `json:"last"`
}

// cursorVersion is the only format this build mints and accepts.
const cursorVersion = 1

// maxCursorKey bounds the row-key arity a cursor may carry (rows are
// one item, or two for joins; a little headroom costs nothing).
const maxCursorKey = 8

// queryHash binds a cursor to its query text.
func queryHash(q string) string {
	h := fnv.New64a()
	h.Write([]byte(q))
	return fmt.Sprintf("%016x", h.Sum64())
}

// encodeCursor mints the opaque wire form.
func encodeCursor(qhash string, last []uint64) string {
	b, _ := json.Marshal(pageCursor{V: cursorVersion, Q: qhash, Last: last})
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodeCursor parses and validates an opaque cursor. Every failure is
// a client error: cursors are never trusted (they cross the network),
// so decoding is strict — exact version, known fields only, bounded
// key arity — and can reject but never panic (FuzzServerRequest pins
// that).
func decodeCursor(s string) (pageCursor, error) {
	var c pageCursor
	if len(s) > 1024 {
		return c, fmt.Errorf("cursor too long (%d bytes)", len(s))
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return c, fmt.Errorf("cursor is not valid base64: %v", err)
	}
	if err := json.Unmarshal(raw, &c); err != nil {
		return c, fmt.Errorf("cursor does not decode: %v", err)
	}
	if c.V != cursorVersion {
		return c, fmt.Errorf("cursor version %d not supported", c.V)
	}
	if len(c.Last) == 0 || len(c.Last) > maxCursorKey {
		return c, fmt.Errorf("cursor key arity %d out of range", len(c.Last))
	}
	return c, nil
}

// rowKey is one row's sort key: its OIDs in column order.
func rowKey(row idm.Row) []uint64 {
	k := make([]uint64, len(row))
	for i, item := range row {
		k[i] = uint64(item.OID)
	}
	return k
}

// compareKeys orders OID keys lexicographically; shorter keys sort
// before longer ones sharing a prefix.
func compareKeys(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// paginate orders res.Rows by OID key, skips past the cursor (nil
// means "from the start"), and returns up to limit rows plus the next
// cursor ("" when the page reaches the end). total is the full result
// cardinality at this evaluation.
func paginate(res *idm.Result, qhash string, cur *pageCursor, limit int) (rows []idm.Row, next string, total int) {
	sorted := make([]idm.Row, len(res.Rows))
	copy(sorted, res.Rows)
	sort.Slice(sorted, func(i, j int) bool {
		return compareKeys(rowKey(sorted[i]), rowKey(sorted[j])) < 0
	})
	total = len(sorted)
	start := 0
	if cur != nil {
		// First row strictly after the cursor key.
		start = sort.Search(len(sorted), func(i int) bool {
			return compareKeys(rowKey(sorted[i]), cur.Last) > 0
		})
	}
	end := start + limit
	if end > len(sorted) {
		end = len(sorted)
	}
	rows = sorted[start:end]
	if end < len(sorted) && len(rows) > 0 {
		next = encodeCursor(qhash, rowKey(rows[len(rows)-1]))
	}
	return rows, next, total
}
