package server

import (
	"flag"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	idm "repro"
)

// The load harness scales via flags so `make load-smoke` can run a
// quick 20×5 soak while the full gate drives hundreds of tenants:
//
//	go test -race ./internal/server -run TestLoadConcurrentTenants \
//	    -args -load-tenants=200 -load-clients=3 -load-iters=1
var (
	loadTenants = flag.Int("load-tenants", 200, "TestLoadConcurrentTenants: concurrent tenants")
	loadClients = flag.Int("load-clients", 3, "TestLoadConcurrentTenants: clients per tenant")
	loadIters   = flag.Int("load-iters", 1, "TestLoadConcurrentTenants: iterations per client")
)

// errSink collects goroutine failures for reporting on the main
// goroutine (t.Fatal is not goroutine-safe).
type errSink struct {
	mu   sync.Mutex
	errs []string
	n    int
}

func (s *errSink) addf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	if len(s.errs) < 20 {
		s.errs = append(s.errs, fmt.Sprintf(format, args...))
	}
}

func (s *errSink) report(t *testing.T) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.errs {
		t.Error(e)
	}
	if s.n > len(s.errs) {
		t.Errorf("... and %d more errors", s.n-len(s.errs))
	}
}

// TestLoadConcurrentTenants is the headline load/soak harness: hundreds
// of tenants × several clients each hammer one daemon through a real
// HTTP listener, with the open-tenant cap far below the tenant count so
// every phase churns through lazy opens and LRU evictions. It asserts
//
//   - isolation: no client ever sees a row from another tenant (by
//     marker query and by row path);
//   - cursor stability: every paginated walk returns exactly the
//     tenant's rows, each at most once, in strictly increasing key
//     order, across evictions happening underneath;
//   - eviction/reopen correctness: reopen churn actually happened, and
//     a full daemon restart reproduces every tenant's digest;
//   - backpressure: saturation surfaces as 429 (absorbed by client
//     retry), never as errors or hangs.
func TestLoadConcurrentTenants(t *testing.T) {
	nT, nC, iters := *loadTenants, *loadClients, *loadIters
	names := make([]string, nT)
	tokens := make(map[string]string, nT)
	for i := range names {
		names[i] = fmt.Sprintf("tenant%03d", i)
		tokens[names[i]] = fmt.Sprintf("tok-%03d-secret", i)
	}
	capTenants := 16
	if capTenants >= nT {
		capTenants = (nT + 1) / 2 // keep the cap well below the tenant count
	}
	root := t.TempDir()
	cfg := Config{
		Root:           root,
		MaxOpenTenants: capTenants,
		MaxConcurrent:  512,
		Fsync:          idm.SyncNever, // clean closes; digest stability still asserted
		Tokens:         tokens,
		Quota:          Quota{MaxConcurrentQueries: nC + 2},
	}
	srv, c := newTestServer(t, cfg)
	c.hc = &http.Client{
		Timeout: 120 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}

	marker := func(i int) string { return fmt.Sprintf("loadmark%03dx", i) }
	const filesPerTenant = 3

	// Phase 1: seed every tenant (bounded fan-out).
	var (
		wg   sync.WaitGroup
		sink errSink
		pool = make(chan struct{}, 32)
	)
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pool <- struct{}{}
			defer func() { <-pool }()
			if err := seedTenant(c, names[i], marker(i), filesPerTenant); err != nil {
				sink.addf("seed: %v", err)
			}
		}(i)
	}
	wg.Wait()
	sink.report(t)
	if t.Failed() {
		t.Fatal("seeding failed; not starting load")
	}

	// Phase 2: concurrent load.
	var leaks, walks atomic.Int64
	for i := 0; i < nT; i++ {
		for j := 0; j < nC; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				name, mark := names[i], marker(i)
				other := marker((i + 1) % nT)
				for it := 0; it < iters; it++ {
					// Paginated walk of this tenant's rows at a page
					// size that forces multiple pages.
					rows, err := c.paginateAll(name, fmt.Sprintf("%q", mark), 2)
					if err != nil {
						sink.addf("%s walk: %v", name, err)
						continue
					}
					walks.Add(1)
					if len(rows) != filesPerTenant {
						sink.addf("%s walk: %d rows, want %d", name, len(rows), filesPerTenant)
					}
					last := uint64(0)
					for _, row := range rows {
						if !strings.Contains(row[0].Path, name) {
							leaks.Add(1)
							sink.addf("%s walk: foreign row %s", name, row[0].Path)
						}
						if row[0].OID <= last {
							sink.addf("%s walk: keys not strictly increasing (%d after %d)",
								name, row[0].OID, last)
						}
						last = row[0].OID
					}

					// Cross-tenant probe: another tenant's marker must
					// answer zero rows here.
					if nT == 1 {
						continue
					}
					resp, code, err := c.query(name, fmt.Sprintf("%q", other), "", 0)
					if err != nil {
						sink.addf("%s probe: %v", name, err)
					} else if code != http.StatusOK {
						sink.addf("%s probe: status %d", name, code)
					} else if resp.Total != 0 {
						leaks.Add(int64(resp.Total))
						sink.addf("%s probe: sees %d of %s's rows", name, resp.Total, other)
					}

					// Mixed ops: digests, checkpoints, syncs, and the
					// occasional forced eviction mid-load.
					switch (i + j + it) % 4 {
					case 0:
						if d, err := c.digest(name); err != nil || d == "" {
							sink.addf("%s digest: %q %v", name, d, err)
						}
					case 1:
						if code, b, err := c.retry429("POST", name, "/checkpoint", map[string]any{}); err != nil || code != http.StatusOK {
							sink.addf("%s checkpoint: %d %v %s", name, code, err, b)
						}
					case 2:
						if code, b, err := c.retry429("POST", name, "/sync", map[string]any{}); err != nil || code != http.StatusOK {
							sink.addf("%s sync: %d %v %s", name, code, err, b)
						}
					case 3:
						if (i*31+j)%10 == 0 {
							if code, b, err := c.do("POST", name, "/evict", nil); err != nil || code != http.StatusOK {
								sink.addf("%s evict: %d %v %s", name, code, err, b)
							}
						}
					}
				}
			}(i, j)
		}
	}
	wg.Wait()
	sink.report(t)

	if n := leaks.Load(); n != 0 {
		t.Fatalf("%d cross-tenant leaks", n)
	}
	if walks.Load() == 0 {
		t.Fatal("no successful walks")
	}
	snap := srv.Metrics().Snapshot()
	if capTenants < nT && snap.Counters["srv_tenant_evictions_total"] == 0 {
		t.Error("no evictions despite cap below tenant count")
	}
	if snap.Counters["srv_tenant_opens_total"] <= int64(nT) {
		t.Errorf("tenant opens %d suggest no reopen churn (want > %d)",
			snap.Counters["srv_tenant_opens_total"], nT)
	}
	t.Logf("load: %d tenants × %d clients × %d iters, cap %d: %d requests, %d opens, %d evictions, %d throttled",
		nT, nC, iters, capTenants,
		snap.Counters["srv_requests_total"],
		snap.Counters["srv_tenant_opens_total"],
		snap.Counters["srv_tenant_evictions_total"],
		snap.Counters["srv_throttled_total"])

	// Phase 3: record every tenant's digest, restart the daemon over
	// the same root, and require byte-identical digests.
	digests := make(map[string]string, nT)
	for _, name := range names {
		d, err := c.digest(name)
		if err != nil {
			t.Fatalf("pre-restart digest %s: %v", name, err)
		}
		if d == "" {
			t.Fatalf("pre-restart digest %s: empty", name)
		}
		digests[name] = d
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	_, c2 := newTestServer(t, cfg2)
	c2.hc = c.hc
	mismatches := 0
	for _, name := range names {
		d, err := c2.digest(name)
		if err != nil {
			t.Fatalf("post-restart digest %s: %v", name, err)
		}
		if d != digests[name] {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("tenant %s digest changed across daemon restart: %s != %s", name, d, digests[name])
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d tenants lost state across restart", mismatches, nT)
	}
}
