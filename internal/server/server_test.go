package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	idm "repro"
)

// newTestServer builds a Server over a temp root and a real HTTP
// listener. Zero-value Config fields take the package defaults; the
// caller usually sets MaxOpenTenants/Quota/Tokens.
func newTestServer(t *testing.T, cfg Config) (*Server, *tclient) {
	t.Helper()
	if cfg.Root == "" {
		cfg.Root = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	hc := ts.Client()
	hc.Timeout = 60 * time.Second
	return srv, &tclient{t: t, base: ts.URL, tokens: cfg.Tokens, hc: hc}
}

// tclient is the harness's API client.
type tclient struct {
	t      *testing.T
	base   string
	tokens map[string]string
	hc     *http.Client
}

// do issues one request; goroutine-safe (no Fatal).
func (c *tclient) do(method, tenant, path string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+"/v1/t/"+tenant+path, rd)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tok := c.tokens[tenant]; tok != "" {
		req.Header.Set("Authorization", "Bearer "+tok)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// must is do + Fatal on transport error or unexpected status. Main
// goroutine only.
func (c *tclient) must(method, tenant, path string, body any, want int) []byte {
	c.t.Helper()
	code, b, err := c.do(method, tenant, path, body)
	if err != nil {
		c.t.Fatalf("%s %s%s: %v", method, tenant, path, err)
	}
	if code != want {
		c.t.Fatalf("%s %s%s: status %d (want %d): %s", method, tenant, path, code, want, b)
	}
	return b
}

// retry429 is do with bounded retry on backpressure. Goroutine-safe.
func (c *tclient) retry429(method, tenant, path string, body any) (int, []byte, error) {
	for attempt := 0; ; attempt++ {
		code, b, err := c.do(method, tenant, path, body)
		if err != nil || code != http.StatusTooManyRequests || attempt >= 100 {
			return code, b, err
		}
		time.Sleep(time.Duration(5+attempt) * time.Millisecond)
	}
}

// seedTenant registers an fs source with n files, each holding the
// tenant's marker word, and syncs.
func seedTenant(c *tclient, tenant, marker string, n int) error {
	files := map[string]string{}
	for i := 0; i < n; i++ {
		files[fmt.Sprintf("/docs/%s-f%02d.txt", tenant, i)] =
			fmt.Sprintf("document %02d of %s carrying %s", i, tenant, marker)
	}
	code, b, err := c.retry429("POST", tenant, "/sources",
		map[string]any{"id": "docs", "files": files, "sync": true})
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("seed %s: status %d: %s", tenant, code, b)
	}
	return nil
}

// query runs one paginated query call.
func (c *tclient) query(tenant, q, cursor string, limit int) (queryResponse, int, error) {
	body := map[string]any{"q": q}
	if cursor != "" {
		body["cursor"] = cursor
	}
	if limit > 0 {
		body["limit"] = limit
	}
	code, b, err := c.retry429("POST", tenant, "/query", body)
	var resp queryResponse
	if err != nil || code != http.StatusOK {
		return resp, code, err
	}
	return resp, code, json.Unmarshal(b, &resp)
}

// paginateAll walks a query to exhaustion and returns all rows in page
// order.
func (c *tclient) paginateAll(tenant, q string, limit int) ([][]itemJSON, error) {
	var all [][]itemJSON
	cursor := ""
	for page := 0; ; page++ {
		if page > 10000 {
			return nil, fmt.Errorf("pagination of %q did not terminate", q)
		}
		resp, code, err := c.query(tenant, q, cursor, limit)
		if err != nil {
			return nil, err
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("query %q page %d: status %d", q, page, code)
		}
		all = append(all, resp.Rows...)
		if resp.NextCursor == "" {
			return all, nil
		}
		cursor = resp.NextCursor
	}
}

// digest fetches a tenant's durable-state digest.
func (c *tclient) digest(tenant string) (string, error) {
	code, b, err := c.retry429("GET", tenant, "/digest", nil)
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("digest %s: status %d: %s", tenant, code, b)
	}
	var out struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return "", err
	}
	return out.Digest, nil
}

// --- unit/integration tests ------------------------------------------

func TestTenantNameValidation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	for _, bad := range []string{"bad.name", "-lead", "a b", strings.Repeat("x", 80)} {
		code, _, err := c.do("POST", bad, "/query", map[string]any{"q": `"x"`})
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusBadRequest {
			t.Errorf("tenant %q: status %d, want 400", bad, code)
		}
	}
	// A valid name is accepted (empty dataspace answers zero rows).
	resp, code, err := c.query("good-name_1", `"x"`, "", 0)
	if err != nil || code != http.StatusOK {
		t.Fatalf("valid tenant rejected: %d %v", code, err)
	}
	if resp.Total != 0 {
		t.Errorf("fresh tenant has %d rows", resp.Total)
	}
}

func TestBearerAuth(t *testing.T) {
	tokens := map[string]string{"alice": "s3cret"}
	_, c := newTestServer(t, Config{Tokens: tokens})

	// No token.
	noAuth := &tclient{t: t, base: c.base, tokens: nil, hc: c.hc}
	code, _, err := noAuth.do("GET", "alice", "/sources", nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusUnauthorized {
		t.Errorf("missing token: status %d, want 401", code)
	}
	// Wrong token.
	wrong := &tclient{t: t, base: c.base, tokens: map[string]string{"alice": "wrong"}, hc: c.hc}
	if code, _, _ := wrong.do("GET", "alice", "/sources", nil); code != http.StatusUnauthorized {
		t.Errorf("wrong token: status %d, want 401", code)
	}
	// Unknown tenant, any token.
	mallory := &tclient{t: t, base: c.base, tokens: map[string]string{"mallory": "s3cret"}, hc: c.hc}
	if code, _, _ := mallory.do("GET", "mallory", "/sources", nil); code != http.StatusUnauthorized {
		t.Errorf("unknown tenant: status %d, want 401", code)
	}
	// Right token.
	c.must("GET", "alice", "/sources", nil, http.StatusOK)
}

func TestSourceQuota429(t *testing.T) {
	_, c := newTestServer(t, Config{Quota: Quota{MaxSources: 2}})
	c.must("POST", "a", "/sources", map[string]any{"id": "s1", "files": map[string]string{"/f": "x"}}, http.StatusOK)
	c.must("POST", "a", "/sources", map[string]any{"id": "s2", "files": map[string]string{"/f": "x"}}, http.StatusOK)
	code, b, err := c.do("POST", "a", "/sources", map[string]any{"id": "s3", "files": map[string]string{"/f": "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota add: status %d, want 429: %s", code, b)
	}
	// Duplicate id is a conflict, not a quota trip.
	code, _, _ = c.do("POST", "a", "/sources", map[string]any{"id": "s1", "files": map[string]string{"/f": "x"}})
	if code != http.StatusConflict {
		t.Errorf("duplicate source id: status %d, want 409", code)
	}
	// Removing frees quota.
	c.must("DELETE", "a", "/sources/s2", nil, http.StatusOK)
	c.must("POST", "a", "/sources", map[string]any{"id": "s3", "files": map[string]string{"/f": "x"}}, http.StatusOK)
}

// TestQuerySlotThrottle pins per-tenant admission control: a slow
// client streaming its request body holds one of the tenant's query
// slots, so with MaxConcurrentQueries=1 a concurrent query gets 429 +
// Retry-After — and other tenants are unaffected.
func TestQuerySlotThrottle(t *testing.T) {
	_, c := newTestServer(t, Config{Quota: Quota{MaxConcurrentQueries: 1}})
	if err := seedTenant(c, "slow", "slowmark", 2); err != nil {
		t.Fatal(err)
	}
	if err := seedTenant(c, "fast", "fastmark", 2); err != nil {
		t.Fatal(err)
	}

	// Slow client: the request body arrives... eventually.
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", c.base+"/v1/t/slow/query", pr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := c.hc.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slow request finished with %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	// Give the slow request time to occupy the slot.
	waitFor(t, 5*time.Second, func() bool {
		code, _, err := c.do("POST", "slow", "/query", map[string]any{"q": `"slowmark"`})
		if err != nil {
			t.Fatal(err)
		}
		return code == http.StatusTooManyRequests
	}, "concurrent query never saw 429 while the slot was held")

	// The other tenant keeps its own slots.
	if _, code, err := c.query("fast", `"fastmark"`, "", 0); err != nil || code != http.StatusOK {
		t.Fatalf("other tenant throttled too: %d %v", code, err)
	}

	// Completing the body releases the slot.
	if _, err := pw.Write([]byte(`{"q":"\"slowmark\""}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, code, err := c.query("slow", `"slowmark"`, "", 0); err != nil || code != http.StatusOK {
		t.Fatalf("slot not released: %d %v", code, err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestCursorPagination pins the cursor contract: pages are disjoint,
// keys strictly increase across pages, the union is the full result,
// and mutation between pages neither duplicates nor loses rows that
// existed untouched throughout.
func TestCursorPagination(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := seedTenant(c, "pag", "pagedoc", 20); err != nil {
		t.Fatal(err)
	}

	full, err := c.paginateAll("pag", `"pagedoc"`, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 20 {
		t.Fatalf("full query returned %d rows, want 20", len(full))
	}

	// Page through at 7/page, mutating between pages: a second source
	// with more matching docs lands mid-pagination.
	var paged [][]itemJSON
	cursor := ""
	page := 0
	for {
		resp, code, err := c.query("pag", `"pagedoc"`, cursor, 7)
		if err != nil || code != http.StatusOK {
			t.Fatalf("page %d: %d %v", page, code, err)
		}
		if len(resp.Rows) > 7 {
			t.Fatalf("page %d: %d rows over limit", page, len(resp.Rows))
		}
		paged = append(paged, resp.Rows...)
		if page == 0 {
			extra := map[string]string{}
			for i := 0; i < 5; i++ {
				extra[fmt.Sprintf("/late/l%02d.txt", i)] = fmt.Sprintf("late pagedoc %02d", i)
			}
			c.must("POST", "pag", "/sources",
				map[string]any{"id": "late", "files": extra, "sync": true}, http.StatusOK)
		}
		if resp.NextCursor == "" {
			break
		}
		cursor = resp.NextCursor
		page++
	}

	// Keys strictly increase → no duplicates, stable order.
	seen := map[uint64]bool{}
	last := uint64(0)
	for i, row := range paged {
		oid := row[0].OID
		if seen[oid] {
			t.Fatalf("row %d: OID %d returned twice", i, oid)
		}
		seen[oid] = true
		if oid <= last {
			t.Fatalf("row %d: OID %d not strictly increasing after %d", i, oid, last)
		}
		last = oid
	}
	// Every original row survived the interleaved mutation.
	for _, row := range full {
		if !seen[row[0].OID] {
			t.Errorf("original row OID %d (%s) lost during mutation-interleaved pagination",
				row[0].OID, row[0].Path)
		}
	}
	if len(paged) < 20 {
		t.Fatalf("paged union has %d rows, want >= 20", len(paged))
	}

	// Cursor misuse is a clean 400.
	resp, _, err := c.query("pag", `"pagedoc"`, "", 7)
	if err != nil || resp.NextCursor == "" {
		t.Fatal("no cursor to misuse")
	}
	code, _, _ := c.do("POST", "pag", "/query", map[string]any{"q": `"different"`, "cursor": resp.NextCursor})
	if code != http.StatusBadRequest {
		t.Errorf("cursor on different query: status %d, want 400", code)
	}
	code, _, _ = c.do("POST", "pag", "/query", map[string]any{"q": `"pagedoc"`, "cursor": "!!garbage!!"})
	if code != http.StatusBadRequest {
		t.Errorf("garbage cursor: status %d, want 400", code)
	}
}

// TestEvictionDigestStability pins eviction/reopen correctness with a
// cap of 1: every access of the other tenant evicts the first, and the
// digest must be identical across each evict/reopen cycle.
func TestEvictionDigestStability(t *testing.T) {
	srv, c := newTestServer(t, Config{MaxOpenTenants: 1})
	if err := seedTenant(c, "ta", "amark", 5); err != nil {
		t.Fatal(err)
	}
	da, err := c.digest("ta")
	if err != nil {
		t.Fatal(err)
	}
	if da == "" {
		t.Fatal("empty digest for a durable tenant")
	}
	if err := seedTenant(c, "tb", "bmark", 5); err != nil {
		t.Fatal(err)
	}
	db, err := c.digest("tb")
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		got, err := c.digest("ta") // evicts tb, reopens ta
		if err != nil {
			t.Fatal(err)
		}
		if got != da {
			t.Fatalf("cycle %d: ta digest changed across eviction: %s != %s", i, got, da)
		}
		got, err = c.digest("tb") // evicts ta, reopens tb
		if err != nil {
			t.Fatal(err)
		}
		if got != db {
			t.Fatalf("cycle %d: tb digest changed across eviction: %s != %s", i, got, db)
		}
	}
	if n := srv.OpenTenants(); n > 1 {
		t.Errorf("open tenants %d exceeds cap 1 at rest", n)
	}
	if v := srv.Metrics().Snapshot().Counters["srv_tenant_evictions_total"]; v == 0 {
		t.Error("no evictions recorded despite cap 1")
	}
}

// TestCursorResumesAcrossEviction: a cursor minted before its tenant
// was evicted resumes on the reopened tenant with exactly the rows an
// uninterrupted walk would have returned.
func TestCursorResumesAcrossEviction(t *testing.T) {
	_, c := newTestServer(t, Config{MaxOpenTenants: 1})
	if err := seedTenant(c, "ca", "camark", 12); err != nil {
		t.Fatal(err)
	}
	reference, err := c.paginateAll("ca", `"camark"`, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reference) != 12 {
		t.Fatalf("reference walk: %d rows, want 12", len(reference))
	}

	resp, code, err := c.query("ca", `"camark"`, "", 5)
	if err != nil || code != http.StatusOK || resp.NextCursor == "" {
		t.Fatalf("page 1: %d %v", code, err)
	}
	got := resp.Rows

	// Evict ca by touching another tenant under cap 1.
	if err := seedTenant(c, "cb", "cbmark", 2); err != nil {
		t.Fatal(err)
	}

	cursor := resp.NextCursor
	for cursor != "" {
		resp, code, err := c.query("ca", `"camark"`, cursor, 5)
		if err != nil || code != http.StatusOK {
			t.Fatalf("resumed page: %d %v", code, err)
		}
		got = append(got, resp.Rows...)
		cursor = resp.NextCursor
	}
	if len(got) != len(reference) {
		t.Fatalf("resumed walk: %d rows, reference %d", len(got), len(reference))
	}
	for i := range got {
		if got[i][0].OID != reference[i][0].OID {
			t.Fatalf("row %d diverged after eviction: OID %d != %d", i, got[i][0].OID, reference[i][0].OID)
		}
	}
}

// TestTenantIsolation: two tenants with adjacent data; each sees only
// its own rows, and a query for the other tenant's marker is empty.
func TestTenantIsolation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := seedTenant(c, "iso1", "onlyone", 4); err != nil {
		t.Fatal(err)
	}
	if err := seedTenant(c, "iso2", "onlytwo", 4); err != nil {
		t.Fatal(err)
	}
	r1, _, err := c.query("iso1", `"onlytwo"`, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Total != 0 {
		t.Fatalf("tenant iso1 sees %d of iso2's rows", r1.Total)
	}
	r2, _, err := c.query("iso2", `"onlytwo"`, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Total != 4 {
		t.Fatalf("tenant iso2 sees %d of its own rows, want 4", r2.Total)
	}
	for _, row := range r2.Rows {
		if !strings.Contains(row[0].Path, "iso2") {
			t.Errorf("foreign row leaked into iso2: %s", row[0].Path)
		}
	}
}

func TestHealthAndDebugSurface(t *testing.T) {
	_, c := newTestServer(t, Config{})
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if err := seedTenant(c, "dbg", "dbgmark", 2); err != nil {
		t.Fatal(err)
	}
	prom, err := c.hc.Get(c.base + "/debug/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	b, _ := io.ReadAll(prom.Body)
	for _, series := range []string{"srv_requests_total", "srv_tenants_open", "srv_tenant_opens_total"} {
		if !strings.Contains(string(b), series) {
			t.Errorf("prom exposition missing %s", series)
		}
	}
}

// TestCheckpointAndDatasetSource covers the remaining endpoints: a
// dataset source indexes the synthetic paper dataspace, checkpoint
// compacts and reports the digest.
func TestCheckpointAndDatasetSource(t *testing.T) {
	_, c := newTestServer(t, Config{})
	c.must("POST", "ds", "/sources",
		map[string]any{"type": "dataset", "scale": 0.002, "seed": 7, "sync": true}, http.StatusOK)
	resp, code, err := c.query("ds", `//*`, "", 50)
	if err != nil || code != http.StatusOK {
		t.Fatalf("dataset query: %d %v", code, err)
	}
	if resp.Total == 0 {
		t.Fatal("dataset source indexed no views")
	}
	b := c.must("POST", "ds", "/checkpoint", map[string]any{}, http.StatusOK)
	var out struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(b, &out); err != nil || out.Digest == "" {
		t.Fatalf("checkpoint digest: %q err %v", out.Digest, err)
	}
	d, err := c.digest("ds")
	if err != nil {
		t.Fatal(err)
	}
	if d != out.Digest {
		t.Fatalf("digest after checkpoint %s != checkpoint digest %s", d, out.Digest)
	}
}

// TestBackendCompact runs a seed + evict + digest cycle on the compact
// backend: the server seam is backend-agnostic.
func TestBackendCompact(t *testing.T) {
	_, c := newTestServer(t, Config{MaxOpenTenants: 1, Backend: idm.BackendCompact})
	if err := seedTenant(c, "cpa", "cpamark", 4); err != nil {
		t.Fatal(err)
	}
	d1, err := c.digest("cpa")
	if err != nil {
		t.Fatal(err)
	}
	if err := seedTenant(c, "cpb", "cpbmark", 4); err != nil {
		t.Fatal(err)
	}
	d2, err := c.digest("cpa")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("compact-backend digest drifted across eviction: %s != %s", d1, d2)
	}
}
