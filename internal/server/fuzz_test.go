package server

import (
	"bytes"
	"net/http/httptest"
	"testing"
)

// FuzzServerRequest beats on the daemon's request-decoding surface:
// the strict JSON decoder behind /query and /sources, and the opaque
// cursor parser. All three must reject garbage with an error — never
// panic, never accept a cursor that fails to round-trip.
func FuzzServerRequest(f *testing.F) {
	f.Add([]byte(`{"q":"\"alpha\"","limit":3}`))
	f.Add([]byte(`{"q":"//docs//*","cursor":"` + encodeCursor(queryHash(`//docs//*`), []uint64{42}) + `"}`))
	f.Add([]byte(`{"q":"x","cursor":"!!not base64!!"}`))
	f.Add([]byte(`{"id":"docs","files":{"/a.txt":"hello"},"sync":true}`))
	f.Add([]byte(`{"type":"dataset","scale":0.01,"seed":7}`))
	f.Add([]byte(`{"q":"x"} trailing`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`eyJ2IjoxLCJxIjoiMDAwMDAwMDAwMDAwMDAwMCIsImxhc3QiOlsxXX0`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, body []byte) {
		// Query body path.
		var qr queryRequest
		r := httptest.NewRequest("POST", "/v1/t/fuzz/query", bytes.NewReader(body))
		if err := decodeJSON(httptest.NewRecorder(), r, &qr); err == nil && qr.Cursor != "" {
			checkCursor(t, qr.Cursor)
		}
		// Source body path.
		var sr sourceRequest
		r = httptest.NewRequest("POST", "/v1/t/fuzz/sources", bytes.NewReader(body))
		if err := decodeJSON(httptest.NewRecorder(), r, &sr); err == nil {
			_ = validTenantName(sr.ID)
		}
		// The raw input as a cursor string.
		checkCursor(t, string(body))
	})
}

// checkCursor decodes s and, when it parses, requires a lossless
// re-encode/re-decode round trip.
func checkCursor(t *testing.T, s string) {
	c, err := decodeCursor(s)
	if err != nil {
		return
	}
	if len(c.Last) == 0 || len(c.Last) > maxCursorKey {
		t.Fatalf("decodeCursor accepted out-of-range key arity %d", len(c.Last))
	}
	re := encodeCursor(c.Q, c.Last)
	c2, err := decodeCursor(re)
	if err != nil {
		t.Fatalf("re-encoded cursor does not decode: %v", err)
	}
	if c2.Q != c.Q || compareKeys(c2.Last, c.Last) != 0 {
		t.Fatalf("cursor round trip changed: %+v != %+v", c2, c)
	}
}
