// Package server is imemexd: a multi-tenant HTTP/JSON daemon hosting
// many isolated personal dataspaces. Each tenant is a full idm.System
// — its own data directory, catalog, indexes and WAL under
// Root/<tenant> — opened lazily on first request and LRU-evicted under
// a configurable open-tenant cap. Requests authenticate with a
// per-tenant bearer token, are admission-controlled by a global
// in-flight cap and per-tenant query slots (saturation answers 429
// with Retry-After, never queues unboundedly), and large results page
// through opaque resumable cursors over stable OID order (cursor.go).
// The obs debug surface (/debug/metrics, /debug/metrics/prom,
// /debug/pprof) is mounted over the server's own registry, which
// carries the srv_* series. See docs/SERVER.md.
package server

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	pathpkg "path"
	"strings"
	"sync/atomic"
	"time"

	idm "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/store"
)

// Quota bounds one tenant's resource use.
type Quota struct {
	// MaxSources caps registered sources per tenant (default 16).
	MaxSources int
	// MaxResultRows caps the query page size (default 1000); requests
	// asking for more are clamped, larger results page via cursors.
	MaxResultRows int
	// MaxConcurrentQueries caps in-flight queries per tenant (default
	// 4); excess queries get 429 + Retry-After.
	MaxConcurrentQueries int
}

// Config tunes a Server.
type Config struct {
	// Root is the data root; tenant t lives in Root/t.
	Root string
	// Backend selects the per-tenant storage engine (default wal).
	Backend idm.StorageBackend
	// Fsync selects the per-tenant WAL flush policy.
	Fsync idm.SyncPolicy
	// MaxOpenTenants caps concurrently open tenant Systems; the least
	// recently used idle tenant is evicted (cleanly closed) to admit a
	// new one. Default 32.
	MaxOpenTenants int
	// MaxConcurrent caps in-flight /v1 requests across all tenants
	// (global backpressure; default 256). Excess requests get 429.
	MaxConcurrent int
	// Quota is the per-tenant resource policy (zero fields take
	// defaults).
	Quota Quota
	// Tokens maps tenant name → bearer token. nil disables auth (every
	// tenant name is open); non-nil requires a matching token and
	// rejects tenants without one.
	Tokens map[string]string
	// TenantParallelism sets each tenant System's per-query worker
	// count (default 1: serial per query, concurrent across queries).
	TenantParallelism int
	// Metrics receives the srv_* series and backs /debug; nil creates
	// a fresh registry.
	Metrics *obs.Registry
	// Faults, when set, is handed to every tenant System's storage
	// layer — the chaos harness's hook. Testing only.
	Faults *fault.Injector
	// Now supplies the tenants' clock (default time.Now).
	Now func() time.Time
}

// serverMetrics bundles the daemon's srv_* instruments.
type serverMetrics struct {
	requests        *obs.Counter
	throttled       *obs.Counter
	unauthorized    *obs.Counter
	queries         *obs.Counter
	queryNs         *obs.Histogram
	tenantsOpen     *obs.Gauge
	tenantOpens     *obs.Counter
	tenantEvictions *obs.Counter
	tenantCrashes   *obs.Counter
}

// Server is the imemexd daemon: an http.Handler plus the tenant table.
type Server struct {
	cfg     Config
	metrics *obs.Registry
	met     serverMetrics
	tenants *tenantTable
	sem     chan struct{}
	mux     *http.ServeMux
	closed  atomic.Bool
	start   time.Time
}

// New builds a Server over cfg.Root (created if missing).
func New(cfg Config) (*Server, error) {
	if cfg.Root == "" {
		return nil, errors.New("server: Config.Root is required")
	}
	if cfg.MaxOpenTenants <= 0 {
		cfg.MaxOpenTenants = 32
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 256
	}
	if cfg.Quota.MaxSources <= 0 {
		cfg.Quota.MaxSources = 16
	}
	if cfg.Quota.MaxResultRows <= 0 {
		cfg.Quota.MaxResultRows = 1000
	}
	if cfg.Quota.MaxConcurrentQueries <= 0 {
		cfg.Quota.MaxConcurrentQueries = 4
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		metrics: reg,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		start:   time.Now(),
	}
	s.met = serverMetrics{
		requests:        reg.Counter("srv_requests_total"),
		throttled:       reg.Counter("srv_throttled_total"),
		unauthorized:    reg.Counter("srv_unauthorized_total"),
		queries:         reg.Counter("srv_queries_total"),
		queryNs:         reg.Histogram("srv_query_ns", nil),
		tenantsOpen:     reg.Gauge("srv_tenants_open"),
		tenantOpens:     reg.Counter("srv_tenant_opens_total"),
		tenantEvictions: reg.Counter("srv_tenant_evictions_total"),
		tenantCrashes:   reg.Counter("srv_tenant_crashes_total"),
	}
	s.tenants = newTenantTable(s)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("/debug/", obs.HandlerWith(reg, nil))
	mux.HandleFunc("POST /v1/t/{tenant}/query", s.tenantHandler(s.handleQuery))
	mux.HandleFunc("POST /v1/t/{tenant}/sync", s.tenantHandler(s.handleSync))
	mux.HandleFunc("POST /v1/t/{tenant}/checkpoint", s.tenantHandler(s.handleCheckpoint))
	mux.HandleFunc("GET /v1/t/{tenant}/digest", s.tenantHandler(s.handleDigest))
	mux.HandleFunc("GET /v1/t/{tenant}/sources", s.tenantHandler(s.handleSourcesList))
	mux.HandleFunc("POST /v1/t/{tenant}/sources", s.tenantHandler(s.handleSourceAdd))
	mux.HandleFunc("DELETE /v1/t/{tenant}/sources/{id}", s.tenantHandler(s.handleSourceRemove))
	mux.HandleFunc("POST /v1/t/{tenant}/evict", s.handleEvict)
	s.mux = mux
	return s, nil
}

// Metrics returns the server's registry (srv_* series plus whatever
// the caller shares into it).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// OpenTenants reports the number of currently open tenant Systems.
func (s *Server) OpenTenants() int { return s.tenants.openCount() }

// Close stops admitting requests and cleanly closes every open tenant
// (flushing their stores and releasing their locks). Idempotent.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.tenants.closeAll()
	return nil
}

// Serve binds addr (":0" picks a port) and serves in the background;
// returns the bound address and a shutdown func that also closes every
// tenant.
func (s *Server) Serve(addr string) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	return ln.Addr().String(), func() {
		hs.Close()
		s.Close()
	}, nil
}

// ServeHTTP dispatches to the mux behind a closed-check.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.met.requests.Inc()
	s.mux.ServeHTTP(w, r)
}

// --- middleware -------------------------------------------------------

// tenantHandler wraps h with tenant-name validation, bearer auth,
// global admission control and tenant acquire/release.
func (s *Server) tenantHandler(h func(http.ResponseWriter, *http.Request, *entry)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		if !validTenantName(name) {
			writeErr(w, http.StatusBadRequest, "invalid tenant name")
			return
		}
		if !s.authorize(w, r, name) {
			return
		}
		// Global admission: never queue; saturated means 429 now.
		select {
		case s.sem <- struct{}{}:
		default:
			s.throttle(w, "server at capacity")
			return
		}
		defer func() { <-s.sem }()
		e, err := s.tenants.acquire(name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		defer s.tenants.release(e)
		atomic.AddInt64(&e.requests, 1)
		s.metrics.Counter("srv_tenant_" + name + "_requests_total").Inc()
		h(w, r, e)
	}
}

// authorize enforces the per-tenant bearer token; with no token table
// the server is open. Writes the 401 itself when rejecting.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request, tenant string) bool {
	if s.cfg.Tokens == nil {
		return true
	}
	want, ok := s.cfg.Tokens[tenant]
	tok, okHdr := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	// Compare even for unknown tenants so the timing does not
	// distinguish "no such tenant" from "wrong token".
	match := subtle.ConstantTimeCompare([]byte(tok), []byte(want)) == 1
	if !ok || !okHdr || !match {
		s.met.unauthorized.Inc()
		w.Header().Set("WWW-Authenticate", `Bearer realm="imemexd"`)
		writeErr(w, http.StatusUnauthorized, "missing or invalid bearer token")
		return false
	}
	return true
}

// throttle answers backpressure/quota saturation: always 429 with a
// Retry-After so well-behaved clients back off instead of erroring.
func (s *Server) throttle(w http.ResponseWriter, msg string) {
	s.met.throttled.Inc()
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusTooManyRequests, msg)
}

// crashed checks an error from a tenant operation for a storage crash
// and, when found, dooms the tenant: the next request reopens the
// directory and recovers. Reports whether it handled the error.
func (s *Server) crashed(e *entry, err error) bool {
	if err == nil || !errors.Is(err, store.ErrCrashed) {
		return false
	}
	s.met.tenantCrashes.Inc()
	s.tenants.doom(e.name)
	return true
}

// --- wire types -------------------------------------------------------

type queryRequest struct {
	// Q is the iQL query text.
	Q string `json:"q"`
	// Cursor resumes a previous page (opaque, from next_cursor).
	Cursor string `json:"cursor,omitempty"`
	// Limit is the requested page size (clamped to the tenant quota).
	Limit int `json:"limit,omitempty"`
}

type itemJSON struct {
	OID    uint64 `json:"oid"`
	Name   string `json:"name"`
	Class  string `json:"class"`
	Source string `json:"source"`
	Path   string `json:"path"`
	URI    string `json:"uri"`
}

type queryResponse struct {
	Columns    []string     `json:"columns"`
	Rows       [][]itemJSON `json:"rows"`
	Total      int          `json:"total"`
	NextCursor string       `json:"next_cursor,omitempty"`
	Stale      bool         `json:"stale,omitempty"`
}

type sourceRequest struct {
	// ID names the source (fs type; the dataset type uses fixed ids).
	ID string `json:"id"`
	// Type is "fs" (default; inline files) or "dataset" (the synthetic
	// paper-shaped dataspace: filesystem+email+rss+reldb).
	Type string `json:"type,omitempty"`
	// Files maps path → content for fs sources.
	Files map[string]string `json:"files,omitempty"`
	// Scale/Seed tune dataset sources.
	Scale float64 `json:"scale,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	// Sync triggers an index sync after adding.
	Sync bool `json:"sync,omitempty"`
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"open_tenants": s.tenants.openCount(),
		"uptime_ms":    time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, e *entry) {
	// The per-tenant query slot is taken before the body is read: a
	// slow client streaming its request occupies its own tenant's
	// slots (and trips that tenant's 429), not the whole server.
	select {
	case e.qsem <- struct{}{}:
	default:
		s.throttle(w, "tenant query limit reached")
		return
	}
	defer func() { <-e.qsem }()

	var req queryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Q == "" {
		writeErr(w, http.StatusBadRequest, "q is required")
		return
	}
	qhash := queryHash(req.Q)
	var cur *pageCursor
	if req.Cursor != "" {
		c, err := decodeCursor(req.Cursor)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		if c.Q != qhash {
			writeErr(w, http.StatusBadRequest, "cursor belongs to a different query")
			return
		}
		cur = &c
	}
	limit := req.Limit
	if limit <= 0 || limit > s.cfg.Quota.MaxResultRows {
		limit = s.cfg.Quota.MaxResultRows
	}

	start := time.Now()
	res, err := e.sys.Query(req.Q)
	s.met.queries.Inc()
	s.met.queryNs.ObserveSince(start)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	rows, next, total := paginate(res, qhash, cur, limit)
	resp := queryResponse{
		Columns:    res.Columns,
		Rows:       make([][]itemJSON, 0, len(rows)),
		Total:      total,
		NextCursor: next,
		Stale:      res.Stale,
	}
	for _, row := range rows {
		jr := make([]itemJSON, len(row))
		for i, item := range row {
			jr[i] = itemJSON{
				OID:    uint64(item.OID),
				Name:   item.Name,
				Class:  item.Class,
				Source: item.Source,
				Path:   item.Path,
				URI:    item.URI,
			}
		}
		resp.Rows = append(resp.Rows, jr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request, e *entry) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	start := time.Now()
	rep, err := e.sys.Index()
	if err != nil {
		if s.crashed(e, err) {
			writeErr(w, http.StatusInternalServerError,
				"tenant storage crashed during sync; it will recover on the next request")
			return
		}
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sources":    len(rep.Timings),
		"views":      rep.TotalViews(),
		"elapsed_ms": time.Since(start).Milliseconds(),
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, e *entry) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if err := e.sys.Checkpoint(); err != nil {
		if s.crashed(e, err) {
			writeErr(w, http.StatusInternalServerError,
				"tenant storage crashed during checkpoint; it will recover on the next request")
			return
		}
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"digest": e.sys.StateDigest()})
}

func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request, e *entry) {
	writeJSON(w, http.StatusOK, map[string]any{
		"digest": e.sys.StateDigest(),
		"views":  e.sys.Count(),
	})
}

func (s *Server) handleSourcesList(w http.ResponseWriter, r *http.Request, e *entry) {
	srcs := e.sys.Sources()
	if srcs == nil {
		srcs = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sources": srcs})
}

func (s *Server) handleSourceAdd(w http.ResponseWriter, r *http.Request, e *entry) {
	var req sourceRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	have := len(e.sys.Sources())
	switch req.Type {
	case "", "fs":
		if req.ID == "" {
			writeErr(w, http.StatusBadRequest, "id is required")
			return
		}
		// A duplicate id is a conflict, not a quota trip.
		for _, id := range e.sys.Sources() {
			if id == req.ID {
				writeErr(w, http.StatusConflict, fmt.Sprintf("source %q already registered", req.ID))
				return
			}
		}
		if have+1 > s.cfg.Quota.MaxSources {
			s.throttle(w, fmt.Sprintf("source quota reached (%d)", s.cfg.Quota.MaxSources))
			return
		}
		fs := idm.NewFileSystem()
		for path, content := range req.Files {
			if dir := pathpkg.Dir(path); dir != "/" && dir != "." {
				if _, err := fs.MkdirAll(dir); err != nil {
					writeErr(w, http.StatusBadRequest, fmt.Sprintf("folder %s: %v", dir, err))
					return
				}
			}
			if _, err := fs.WriteFile(path, []byte(content)); err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Sprintf("file %s: %v", path, err))
				return
			}
		}
		if err := e.sys.AddFileSystem(req.ID, fs); err != nil {
			writeErr(w, http.StatusConflict, err.Error())
			return
		}
	case "dataset":
		if have+4 > s.cfg.Quota.MaxSources {
			s.throttle(w, fmt.Sprintf("source quota reached (%d)", s.cfg.Quota.MaxSources))
			return
		}
		scale := req.Scale
		if scale <= 0 {
			scale = 0.01
		}
		data := idm.GenerateDataset(idm.DatasetConfig{Scale: scale, Seed: req.Seed})
		if err := e.sys.AddDataset(data); err != nil {
			writeErr(w, http.StatusConflict, err.Error())
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown source type %q (fs|dataset)", req.Type))
		return
	}
	if req.Sync {
		if _, err := e.sys.Index(); err != nil {
			if s.crashed(e, err) {
				writeErr(w, http.StatusInternalServerError,
					"tenant storage crashed during sync; it will recover on the next request")
				return
			}
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sources": e.sys.Sources()})
}

func (s *Server) handleSourceRemove(w http.ResponseWriter, r *http.Request, e *entry) {
	id := r.PathValue("id")
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if err := e.sys.RemoveSource(id); err != nil {
		if s.crashed(e, err) {
			writeErr(w, http.StatusInternalServerError,
				"tenant storage crashed during source removal; it will recover on the next request")
			return
		}
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": id})
}

// handleEvict force-evicts a tenant without opening it: idle tenants
// close immediately, busy ones drain first (the chaos lane's
// mid-request eviction). Deliberately NOT behind acquire — eviction of
// a closed tenant must not open it.
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if !validTenantName(name) {
		writeErr(w, http.StatusBadRequest, "invalid tenant name")
		return
	}
	if !s.authorize(w, r, name) {
		return
	}
	wasOpen, pending := s.tenants.doom(name)
	if wasOpen && !pending {
		s.met.tenantEvictions.Inc()
	}
	writeJSON(w, http.StatusOK, map[string]any{"was_open": wasOpen, "draining": pending})
}

// --- JSON helpers -----------------------------------------------------

// maxBodyBytes bounds request bodies; inline fs sources fit well
// within it.
const maxBodyBytes = 8 << 20

// decodeJSON strictly decodes the request body into v (unknown fields
// and trailing garbage are errors — the fuzz target beats on this
// path).
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
