// Tenant lifecycle: one durable idm.System per tenant, opened lazily
// on first request and LRU-evicted under Config.MaxOpenTenants.
//
// Invariants the table maintains (the load/chaos harnesses beat on
// them):
//
//   - at most one open System per tenant name at a time — an eviction's
//     Close fully finishes (releasing the data-dir flock) before any
//     reopen of the same tenant starts;
//   - eviction only closes Systems with zero in-flight requests; a
//     forced eviction (admin endpoint, storage crash) marks the tenant
//     doomed and the last request out closes it;
//   - concurrent first requests for one tenant share a single open —
//     losers wait on the winner's ready channel.
package server

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	idm "repro"
)

// tenantNameRE is the allowed tenant-name shape: it is used as a
// directory name under Root, so it is locked down hard (no separators,
// no dots, no empties).
var tenantNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

func validTenantName(s string) bool { return tenantNameRE.MatchString(s) }

// entry is one open (or opening, or draining) tenant.
type entry struct {
	name string

	// ready is closed once the open attempt finished; sys/err are
	// immutable afterwards.
	ready chan struct{}
	sys   *idm.System
	err   error

	// gone is closed once the entry is fully closed and its flock
	// released; acquire loops for the same name wait on it.
	gone chan struct{}

	// refs, doomed and elem are guarded by the table mutex.
	refs   int
	doomed bool
	elem   *list.Element

	// writeMu serializes mutations (sync, source add/remove,
	// checkpoint) per tenant; queries run concurrently.
	writeMu sync.Mutex
	// qsem bounds concurrent queries per tenant (admission control).
	qsem chan struct{}

	// requests counts this tenant's requests (srv_tenant_* metric).
	requests int64
}

// tenantTable is the open-tenant registry: map + LRU list + in-flight
// close tracking.
type tenantTable struct {
	srv *Server

	mu      sync.Mutex
	open    map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	closing map[string]chan struct{}
}

func newTenantTable(srv *Server) *tenantTable {
	return &tenantTable{
		srv:     srv,
		open:    make(map[string]*entry),
		lru:     list.New(),
		closing: make(map[string]chan struct{}),
	}
}

// acquire returns the tenant's entry with one reference held, opening
// the System (and evicting LRU victims over the cap) when needed.
func (t *tenantTable) acquire(name string) (*entry, error) {
	for {
		t.mu.Lock()
		// A close of this tenant is in flight (eviction or drain):
		// wait for the flock to be released, then retry.
		if ch, ok := t.closing[name]; ok {
			t.mu.Unlock()
			<-ch
			continue
		}
		if e, ok := t.open[name]; ok {
			if e.doomed {
				// Marked for eviction: let it drain and reopen fresh.
				gone := e.gone
				t.mu.Unlock()
				<-gone
				continue
			}
			e.refs++
			t.lru.MoveToFront(e.elem)
			t.mu.Unlock()
			<-e.ready
			if e.err != nil {
				// The opener removed the entry already; our ref dies
				// with it.
				return nil, e.err
			}
			return e, nil
		}

		// Not open: make room, then open. Victims are closed outside
		// the lock (Close fsyncs); the closing map keeps their names
		// unreopenable until the flock is free.
		victims := t.evictLocked(t.srv.cfg.MaxOpenTenants - 1)
		e := &entry{
			name:  name,
			ready: make(chan struct{}),
			gone:  make(chan struct{}),
			refs:  1,
			qsem:  make(chan struct{}, t.srv.cfg.Quota.MaxConcurrentQueries),
		}
		e.elem = t.lru.PushFront(e)
		t.open[name] = e
		t.srv.met.tenantsOpen.Set(int64(len(t.open)))
		t.mu.Unlock()

		for _, v := range victims {
			t.closeEntry(v)
		}

		e.sys, e.err = t.srv.openTenant(name)
		close(e.ready)
		if e.err != nil {
			t.mu.Lock()
			delete(t.open, name)
			t.lru.Remove(e.elem)
			t.srv.met.tenantsOpen.Set(int64(len(t.open)))
			t.mu.Unlock()
			close(e.gone)
			return nil, e.err
		}
		t.srv.met.tenantOpens.Inc()
		return e, nil
	}
}

// release drops one reference; the last reference out of a doomed
// entry closes it.
func (t *tenantTable) release(e *entry) {
	t.mu.Lock()
	e.refs--
	if e.refs == 0 && e.doomed {
		if cur, ok := t.open[e.name]; ok && cur == e {
			t.removeLocked(e)
			t.mu.Unlock()
			t.closeEntry(e)
			return
		}
	}
	t.mu.Unlock()
}

// doom marks a tenant for eviction: closed immediately when idle,
// otherwise by the last in-flight request. Reports whether the tenant
// was open and whether the close is still pending on active requests.
func (t *tenantTable) doom(name string) (wasOpen, pending bool) {
	t.mu.Lock()
	e, ok := t.open[name]
	if !ok {
		t.mu.Unlock()
		return false, false
	}
	e.doomed = true
	if e.refs > 0 {
		t.mu.Unlock()
		return true, true
	}
	t.removeLocked(e)
	t.mu.Unlock()
	t.closeEntry(e)
	return true, false
}

// evictLocked evicts least-recently-used idle entries until at most
// target remain open, returning the victims for the caller to close
// outside the lock. Busy entries (in-flight requests, opens in
// progress) are skipped: the cap is enforced against idle tenants, so
// a fully-busy table may transiently overshoot rather than fail or
// block requests.
func (t *tenantTable) evictLocked(target int) []*entry {
	if target < 0 {
		target = 0
	}
	var victims []*entry
	el := t.lru.Back()
	for el != nil && len(t.open) > target {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.refs == 0 && !e.doomed {
			e.doomed = true
			t.removeLocked(e)
			victims = append(victims, e)
			t.srv.met.tenantEvictions.Inc()
		}
		el = prev
	}
	return victims
}

// removeLocked unlinks e from the table and registers its in-flight
// close so acquires of the same name wait for the flock.
func (t *tenantTable) removeLocked(e *entry) {
	delete(t.open, e.name)
	t.lru.Remove(e.elem)
	t.closing[e.name] = e.gone
	t.srv.met.tenantsOpen.Set(int64(len(t.open)))
}

// closeEntry closes a removed entry's System and publishes completion.
// Safe on entries whose store already crashed: System.Close is
// idempotent and returns ErrClosed/nil rather than panicking.
func (t *tenantTable) closeEntry(e *entry) {
	if e.sys != nil {
		e.sys.Close()
	}
	t.mu.Lock()
	delete(t.closing, e.name)
	t.mu.Unlock()
	close(e.gone)
}

// closeAll dooms every open tenant and waits until each has fully
// closed. Used by Server.Close for a clean daemon shutdown.
func (t *tenantTable) closeAll() {
	t.mu.Lock()
	var waits []chan struct{}
	var idle []*entry
	for _, e := range t.open {
		waits = append(waits, e.gone)
		if e.doomed {
			continue
		}
		e.doomed = true
		if e.refs == 0 {
			t.removeLocked(e)
			idle = append(idle, e)
		}
	}
	for _, ch := range t.closing {
		waits = append(waits, ch)
	}
	t.mu.Unlock()
	for _, e := range idle {
		t.closeEntry(e)
	}
	for _, ch := range waits {
		<-ch
	}
}

// openCount reports how many tenants are currently open.
func (t *tenantTable) openCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open)
}

// openTenant opens (or recovers) one tenant's durable System rooted at
// Root/<name>.
func (s *Server) openTenant(name string) (*idm.System, error) {
	dir := filepath.Join(s.cfg.Root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	par := s.cfg.TenantParallelism
	if par <= 0 {
		// Per-query parallelism is counterproductive when many tenants
		// share the cores; serial per query, concurrent across queries.
		par = 1
	}
	sys, _, err := idm.OpenDurable(idm.Config{
		DataDir:      dir,
		Backend:      s.cfg.Backend,
		Fsync:        s.cfg.Fsync,
		Faults:       s.cfg.Faults,
		Parallelism:  par,
		QueryLogSize: -1, // per-tenant query logs off; the server has srv_* metrics
		Now:          s.cfg.Now,
	})
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	return sys, nil
}
