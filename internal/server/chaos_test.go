package server

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

// chaosSeed replays a specific chaos schedule:
//
//	go test -race ./internal/server -run TestServerChaos -args -server-chaos-seed=42
var chaosSeed = flag.Int64("server-chaos-seed", 1, "TestServerChaos: fault/op schedule seed")

// TestServerChaos is the seeded chaos lane: a handful of tenants under
// a tiny open-tenant cap, with probabilistic storage faults injected
// underneath (append errors → storage crash, fsync latency, torn
// writes), clients forcing mid-request evictions and dribbling request
// bodies in slowly. The daemon may answer 200, 429 or 500 — never any
// other status, never a transport error, never a hang — and once the
// faults are disarmed every tenant must converge: syncs succeed,
// queries answer the tenant's full row set, and digests survive an
// eviction cycle.
func TestServerChaos(t *testing.T) {
	const (
		nTenants = 12
		nClients = 2
		nOps     = 25
	)
	inj := fault.New(*chaosSeed)
	root := t.TempDir()
	srv, c := newTestServer(t, Config{
		Root:           root,
		MaxOpenTenants: 3,
		Faults:         inj,
	})
	_ = srv

	names := make([]string, nTenants)
	for i := range names {
		names[i] = fmt.Sprintf("chaos%02d", i)
		if err := seedTenant(c, names[i], chaosMarker(i), 3); err != nil {
			t.Fatal(err)
		}
	}

	// Arm the storage faults only after seeding, so every tenant starts
	// from a known committed state.
	inj.Add(fault.Rule{Point: store.FaultAppend, Kind: fault.Error, P: 0.05})
	inj.Add(fault.Rule{Point: store.FaultTorn, Kind: fault.Error, P: 0.02})
	inj.Add(fault.Rule{Point: store.FaultSnapshot, Kind: fault.Error, P: 0.05})
	inj.Add(fault.Rule{Point: store.FaultFsync, Kind: fault.Latency, P: 0.10, Latency: 2 * time.Millisecond})

	var (
		wg   sync.WaitGroup
		sink errSink
	)
	okStatus := map[int]bool{
		http.StatusOK:              true,
		http.StatusTooManyRequests: true,
		// Storage crash mid-operation; the tenant recovers on the next
		// request.
		http.StatusInternalServerError: true,
	}
	for i := 0; i < nTenants; i++ {
		for j := 0; j < nClients; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*chaosSeed + int64(i*nClients+j)))
				name := names[i]
				q := fmt.Sprintf("%q", chaosMarker(i))
				for op := 0; op < nOps; op++ {
					var code int
					var err error
					switch rng.Intn(7) {
					case 0, 1: // query (sometimes paginated)
						_, code, err = c.query(name, q, "", 1+rng.Intn(3))
						if code == http.StatusTooManyRequests {
							code = http.StatusOK // retry429 exhausted; still a valid answer
						}
					case 2: // sync (may crash the store)
						code, _, err = c.do("POST", name, "/sync", map[string]any{})
					case 3: // checkpoint
						code, _, err = c.do("POST", name, "/checkpoint", map[string]any{})
					case 4: // forced mid-load eviction
						code, _, err = c.do("POST", name, "/evict", nil)
					case 5: // slow client: body dribbles in
						code, err = slowQuery(c, name, q, 5*time.Millisecond)
					case 6: // write: a fresh scratch source + sync appends
						// to the WAL, giving the armed faults something
						// to bite on. Content carries no tenant marker.
						code, _, err = c.do("POST", name, "/sources", map[string]any{
							"id":    fmt.Sprintf("w%02d-%02d-%02d", i, j, op),
							"files": map[string]string{"/s.txt": fmt.Sprintf("scratch write %d %d %d", i, j, op)},
							"sync":  true,
						})
					}
					if err != nil {
						sink.addf("%s op %d: transport error: %v", name, op, err)
						continue
					}
					if !okStatus[code] {
						sink.addf("%s op %d: unexpected status %d", name, op, code)
					}
				}
			}(i, j)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		t.Fatal("chaos lane hung")
	}
	sink.report(t)
	if inj.FiredTotal() == 0 {
		t.Error("chaos lane injected zero faults; the schedule is not exercising storage")
	}
	t.Logf("chaos: %d faults injected (seed %d)", inj.FiredTotal(), *chaosSeed)

	// Disarm and converge: every tenant must come back healthy.
	inj.Reset()
	for i, name := range names {
		var lastCode int
		var lastBody []byte
		converged := false
		for attempt := 0; attempt < 20; attempt++ {
			lastCode, lastBody, _ = c.retry429("POST", name, "/sync", map[string]any{})
			if lastCode == http.StatusOK {
				converged = true
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if !converged {
			t.Fatalf("%s never converged: last sync %d %s", name, lastCode, lastBody)
		}
		resp, code, err := c.query(name, fmt.Sprintf("%q", chaosMarker(i)), "", 0)
		if err != nil || code != http.StatusOK {
			t.Fatalf("%s post-chaos query: %d %v", name, code, err)
		}
		if resp.Total != 3 {
			t.Errorf("%s post-chaos rows %d, want 3 (committed seed state lost?)", name, resp.Total)
		}
		d1, err := c.digest(name)
		if err != nil || d1 == "" {
			t.Fatalf("%s post-chaos digest: %q %v", name, d1, err)
		}
		// Digest survives a full evict/reopen cycle.
		if code, b, err := c.do("POST", name, "/evict", nil); err != nil || code != http.StatusOK {
			t.Fatalf("%s post-chaos evict: %d %v %s", name, code, err, b)
		}
		d2, err := c.digest(name)
		if err != nil {
			t.Fatal(err)
		}
		if d2 != d1 {
			t.Errorf("%s digest changed across post-chaos eviction: %s != %s", name, d2, d1)
		}
	}
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %d", resp.StatusCode)
	}
}

func chaosMarker(i int) string { return fmt.Sprintf("chaosmark%02dz", i) }

// slowQuery sends a well-formed query whose body arrives in two
// installments separated by delay — the slow-client lane. The server
// must either answer it (200) or shed it (429), holding only the slow
// tenant's own query slot meanwhile.
func slowQuery(c *tclient, tenant, q string, delay time.Duration) (int, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", c.base+"/v1/t/"+tenant+"/query", pr)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tok := c.tokens[tenant]; tok != "" {
		req.Header.Set("Authorization", "Bearer "+tok)
	}
	body := []byte(fmt.Sprintf(`{"q":%q}`, q))
	go func() {
		pw.Write(body[:len(body)/2])
		time.Sleep(delay)
		pw.Write(body[len(body)/2:])
		pw.Close()
	}()
	resp, err := c.hc.Do(req)
	if err != nil {
		pr.Close()
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
