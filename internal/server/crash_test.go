package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/store"
)

// TestServerCrashRecovery reuses the durability-matrix pattern at the
// daemon level: a tenant's storage is crashed by a fault injected at
// the WAL append point mid-sync, the request surfaces it as a 500, and
// the next request transparently reopens the directory and recovers —
// with the reopened digest equal to the pre-crash committed digest
// (the fault fires on the first append of the failed batch, so nothing
// of it is durable). Untouched tenants ride through the victim's crash
// unchanged, and a full daemon restart reproduces every digest.
func TestServerCrashRecovery(t *testing.T) {
	inj := fault.New(1)
	root := t.TempDir()
	cfg := Config{Root: root, MaxOpenTenants: 4, Faults: inj}
	srv, c := newTestServer(t, cfg)

	// A bystander tenant proves crash isolation.
	if err := seedTenant(c, "bystander", "calmmark", 3); err != nil {
		t.Fatal(err)
	}
	byDigest, err := c.digest("bystander")
	if err != nil {
		t.Fatal(err)
	}

	// Victim: commit a known state, record its digest.
	if err := seedTenant(c, "victim", "victmark", 3); err != nil {
		t.Fatal(err)
	}
	preCrash, err := c.digest("victim")
	if err != nil {
		t.Fatal(err)
	}
	if preCrash == "" {
		t.Fatal("empty pre-crash digest")
	}

	// Register more data, then crash the WAL on the first append of the
	// sync that would commit it.
	c.must("POST", "victim", "/sources", map[string]any{
		"id": "extra",
		"files": map[string]string{
			"/extra/x.txt": "extra victmark payload one",
			"/extra/y.txt": "extra victmark payload two",
		},
	}, http.StatusOK)
	inj.Add(fault.Rule{Point: store.FaultAppend, Kind: fault.Error, Times: 1})
	code, body, err := c.do("POST", "victim", "/sync", map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusInternalServerError {
		t.Fatalf("faulted sync: status %d, want 500: %s", code, body)
	}
	if !strings.Contains(string(body), "crashed") {
		t.Errorf("faulted sync error does not mention the crash: %s", body)
	}
	if got := srv.Metrics().Snapshot().Counters["srv_tenant_crashes_total"]; got == 0 {
		t.Error("srv_tenant_crashes_total not incremented")
	}

	// The next request reopens the directory and recovers; the durable
	// state must be exactly the pre-crash committed state.
	recovered, err := c.digest("victim")
	if err != nil {
		t.Fatalf("post-crash digest (recovery reopen): %v", err)
	}
	if recovered != preCrash {
		t.Fatalf("post-crash reopen digest %s != pre-crash %s", recovered, preCrash)
	}
	// Committed rows survived; the uncommitted batch did not.
	resp, code, err := c.query("victim", `"victmark"`, "", 0)
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-crash query: %d %v", code, err)
	}
	if resp.Total != 3 {
		t.Fatalf("post-crash query sees %d rows, want the 3 committed ones", resp.Total)
	}

	// Convergence: re-register both sources (plugin registration is
	// session-scoped; see docs/SERVER.md) and resync — the previously
	// crashed batch now commits.
	files := map[string]string{}
	for i := 0; i < 3; i++ {
		// Same paths and contents seedTenant used, so the resync upserts
		// onto the recovered views' stable OIDs.
		files[fmt.Sprintf("/docs/victim-f%02d.txt", i)] =
			fmt.Sprintf("document %02d of victim carrying victmark", i)
	}
	c.must("POST", "victim", "/sources", map[string]any{"id": "docs", "files": files}, http.StatusOK)
	c.must("POST", "victim", "/sources", map[string]any{
		"id": "extra",
		"files": map[string]string{
			"/extra/x.txt": "extra victmark payload one",
			"/extra/y.txt": "extra victmark payload two",
		},
		"sync": true,
	}, http.StatusOK)
	resp, code, err = c.query("victim", `"victmark"`, "", 0)
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-recovery query: %d %v", code, err)
	}
	if resp.Total != 5 {
		t.Fatalf("post-recovery query sees %d rows, want 5", resp.Total)
	}
	final, err := c.digest("victim")
	if err != nil {
		t.Fatal(err)
	}

	// The bystander never noticed.
	if d, err := c.digest("bystander"); err != nil || d != byDigest {
		t.Fatalf("bystander digest drifted across the victim's crash: %s != %s (%v)", d, byDigest, err)
	}

	// Daemon restart: both tenants come back with identical digests.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.Faults = nil
	_, c2 := newTestServer(t, cfg)
	if d, err := c2.digest("victim"); err != nil || d != final {
		t.Fatalf("victim digest across daemon restart: %s != %s (%v)", d, final, err)
	}
	if d, err := c2.digest("bystander"); err != nil || d != byDigest {
		t.Fatalf("bystander digest across daemon restart: %s != %s (%v)", d, byDigest, err)
	}
}
