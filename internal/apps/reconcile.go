// Package apps implements the PIM applications the paper's conclusion
// plans "on top of the iMeMex platform": reference reconciliation
// (finding the mentions of one real-world person across subsystems —
// contacts relations, email headers) and content clustering (grouping
// views by textual similarity). Both run purely against the Resource
// View Manager's unified dataspace, which is the paper's point: one
// model underneath makes cross-subsystem applications short.
package apps

import (
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/rvm"
)

// Mention is one occurrence of a person reference in the dataspace.
type Mention struct {
	// OID is the view the mention occurs in.
	OID catalog.OID
	// Name and Email are the extracted fields; either may be empty.
	Name  string
	Email string
	// Where labels the component the mention came from
	// ("contacts.tuple", "email.from", "email.to").
	Where string
}

// Entity is one reconciled person: the union of all mentions judged to
// refer to the same individual.
type Entity struct {
	// CanonicalName is the longest name seen across the mentions.
	CanonicalName string
	// Emails and Names are the distinct values seen, sorted.
	Emails []string
	Names  []string
	// Mentions lists every occurrence, ordered by OID.
	Mentions []Mention
}

// Reconcile extracts person mentions from every managed view and merges
// them: mentions sharing an email address (case-insensitive) are the
// same entity, and a name-only mention merges into the entity whose
// name matches case-insensitively when that match is unambiguous.
func Reconcile(m *rvm.Manager) []Entity {
	mentions := extractMentions(m)

	// Union-find over mention indices.
	parent := make([]int, len(mentions))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Pass 1: exact email linkage.
	byEmail := make(map[string]int)
	for i, mm := range mentions {
		if mm.Email == "" {
			continue
		}
		key := strings.ToLower(mm.Email)
		if j, ok := byEmail[key]; ok {
			union(i, j)
		} else {
			byEmail[key] = i
		}
	}
	// Pass 2: name linkage. A full name (two or more tokens) is treated
	// as identifying: every mention carrying it merges, even across
	// different email addresses (the same person using two accounts).
	// Single-token names — often derived from email local parts — are
	// too ambiguous and merge only a name-only group into a unique
	// email-bearing one.
	nameGroups := make(map[string][]int)
	for i, mm := range mentions {
		if mm.Name == "" {
			continue
		}
		key := strings.ToLower(strings.TrimSpace(mm.Name))
		nameGroups[key] = append(nameGroups[key], i)
	}
	for key, idxs := range nameGroups {
		if strings.ContainsRune(key, ' ') {
			for _, i := range idxs[1:] {
				union(idxs[0], i)
			}
			continue
		}
		roots := make(map[int]bool)
		for _, i := range idxs {
			roots[find(i)] = true
		}
		if len(roots) != 2 {
			continue
		}
		var ids []int
		for g := range roots {
			ids = append(ids, g)
		}
		aHasEmail := groupHasEmail(mentions, find, ids[0])
		bHasEmail := groupHasEmail(mentions, find, ids[1])
		if aHasEmail != bHasEmail {
			union(ids[0], ids[1])
		}
	}

	// Collect entities.
	groups := make(map[int][]int)
	for i := range mentions {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var out []Entity
	for _, idxs := range groups {
		e := Entity{}
		emails := map[string]bool{}
		names := map[string]bool{}
		for _, i := range idxs {
			mm := mentions[i]
			e.Mentions = append(e.Mentions, mm)
			if mm.Email != "" {
				emails[strings.ToLower(mm.Email)] = true
			}
			if mm.Name != "" {
				names[mm.Name] = true
				if len(mm.Name) > len(e.CanonicalName) {
					e.CanonicalName = mm.Name
				}
			}
		}
		for em := range emails {
			e.Emails = append(e.Emails, em)
		}
		for n := range names {
			e.Names = append(e.Names, n)
		}
		sort.Strings(e.Emails)
		sort.Strings(e.Names)
		sort.Slice(e.Mentions, func(i, j int) bool { return e.Mentions[i].OID < e.Mentions[j].OID })
		if e.CanonicalName == "" && len(e.Emails) > 0 {
			e.CanonicalName = e.Emails[0]
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Mentions) != len(out[j].Mentions) {
			return len(out[i].Mentions) > len(out[j].Mentions)
		}
		return out[i].CanonicalName < out[j].CanonicalName
	})
	return out
}

func groupHasEmail(mentions []Mention, find func(int) int, root int) bool {
	for i := range mentions {
		if find(i) == root && mentions[i].Email != "" {
			return true
		}
	}
	return false
}

// extractMentions pulls person references out of tuple components: rows
// of relations with name/email attributes, and the from/to headers of
// email messages.
func extractMentions(m *rvm.Manager) []Mention {
	var out []Mention
	for _, oid := range m.AllOIDs() {
		e, err := m.Entry(oid)
		if err != nil {
			continue
		}
		tc, ok := m.Tuple(oid)
		if !ok {
			continue
		}
		switch e.Class {
		case core.ClassTuple:
			name, hasName := tc.Get("name")
			email, hasEmail := tc.Get("email")
			if hasName || hasEmail {
				mm := Mention{OID: oid, Where: "contacts.tuple"}
				if hasName {
					mm.Name = name.String()
				}
				if hasEmail {
					mm.Email = email.String()
				}
				out = append(out, mm)
			}
		case core.ClassEmailMessage:
			if from, ok := tc.Get("from"); ok && from.String() != "" {
				out = append(out, mentionFromAddress(oid, from.String(), "email.from"))
			}
			if to, ok := tc.Get("to"); ok && to.String() != "" {
				for _, addr := range strings.Split(to.String(), ",") {
					addr = strings.TrimSpace(addr)
					if addr != "" {
						out = append(out, mentionFromAddress(oid, addr, "email.to"))
					}
				}
			}
		}
	}
	return out
}

// mentionFromAddress parses "Name <user@host>" or a bare address.
func mentionFromAddress(oid catalog.OID, addr, where string) Mention {
	mm := Mention{OID: oid, Where: where}
	if i := strings.IndexByte(addr, '<'); i >= 0 {
		if j := strings.IndexByte(addr[i:], '>'); j > 0 {
			mm.Name = strings.TrimSpace(addr[:i])
			mm.Email = strings.TrimSpace(addr[i+1 : i+j])
			return mm
		}
	}
	if strings.ContainsRune(addr, '@') {
		mm.Email = addr
		// Derive a display name from the local part ("alice" → "Alice").
		local := addr[:strings.IndexByte(addr, '@')]
		local = strings.Map(func(r rune) rune {
			if r == '.' || r == '_' || r == '-' {
				return ' '
			}
			return r
		}, local)
		mm.Name = strings.Title(strings.ToLower(strings.TrimSpace(local)))
	} else {
		mm.Name = addr
	}
	return mm
}
