package apps

import (
	"strings"
	"testing"
	"time"

	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/mail"
	"repro/internal/relstore"
	"repro/internal/rvm"
	"repro/internal/sources/fsplugin"
	"repro/internal/sources/mailplugin"
	"repro/internal/sources/relplugin"
	"repro/internal/vfs"
)

func reconcileSetup(t *testing.T) *rvm.Manager {
	t.Helper()
	db := relstore.NewDB("persdb")
	schema := core.Schema{
		{Name: "name", Domain: core.DomainString},
		{Name: "email", Domain: core.DomainString},
	}
	db.CreateRelation("contacts", schema)
	db.Insert("contacts", core.Tuple{core.String("Alice Average"), core.String("alice@example.org")})
	db.Insert("contacts", core.Tuple{core.String("Bob Builder"), core.String("bob@example.org")})

	store := mail.NewStore()
	msgs := []*mail.Message{
		{Folder: "INBOX", From: "alice@example.org", To: []string{"me@example.org"},
			Subject: "hi", Date: time.Now()},
		{Folder: "INBOX", From: "Alice Average <alice@other.com>", To: []string{"bob@example.org"},
			Subject: "again", Date: time.Now()},
		{Folder: "INBOX", From: "carol@example.org", To: []string{"me@example.org"},
			Subject: "new person", Date: time.Now()},
	}
	for _, m := range msgs {
		store.Append(m)
	}

	m := rvm.New(rvm.DefaultOptions())
	if err := m.AddSource(relplugin.New("reldb", db)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSource(mailplugin.New("email", store, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	return m
}

func findEntity(entities []Entity, email string) *Entity {
	for i := range entities {
		for _, e := range entities[i].Emails {
			if e == email {
				return &entities[i]
			}
		}
	}
	return nil
}

func TestReconcileMergesAcrossSubsystems(t *testing.T) {
	m := reconcileSetup(t)
	entities := Reconcile(m)
	if len(entities) == 0 {
		t.Fatal("no entities")
	}

	alice := findEntity(entities, "alice@example.org")
	if alice == nil {
		t.Fatal("alice entity missing")
	}
	// The contacts tuple and the email.from mention share the address;
	// the "Alice Average <alice@other.com>" mention joins by name.
	wheres := map[string]bool{}
	for _, mm := range alice.Mentions {
		wheres[mm.Where] = true
	}
	if !wheres["contacts.tuple"] || !wheres["email.from"] {
		t.Errorf("alice mentions span %v, want contacts + email", wheres)
	}
	if alice.CanonicalName != "Alice Average" {
		t.Errorf("canonical = %q", alice.CanonicalName)
	}
	found := false
	for _, e := range alice.Emails {
		if e == "alice@other.com" {
			found = true
		}
	}
	if !found {
		t.Errorf("name linkage missed alice@other.com: %v", alice.Emails)
	}

	// Bob appears in contacts and as a recipient.
	bob := findEntity(entities, "bob@example.org")
	if bob == nil {
		t.Fatal("bob entity missing")
	}
	wheres = map[string]bool{}
	for _, mm := range bob.Mentions {
		wheres[mm.Where] = true
	}
	if !wheres["contacts.tuple"] || !wheres["email.to"] {
		t.Errorf("bob mentions span %v", wheres)
	}

	// Carol exists only in email and must not merge with anyone.
	carol := findEntity(entities, "carol@example.org")
	if carol == nil {
		t.Fatal("carol entity missing")
	}
	if len(carol.Emails) != 1 {
		t.Errorf("carol merged with others: %v", carol.Emails)
	}
}

func TestMentionFromAddressParsing(t *testing.T) {
	mm := mentionFromAddress(1, "Alice Average <alice@example.org>", "email.from")
	if mm.Name != "Alice Average" || mm.Email != "alice@example.org" {
		t.Errorf("parsed %+v", mm)
	}
	mm = mentionFromAddress(1, "jens.dittrich@inf.ethz.ch", "email.from")
	if mm.Email != "jens.dittrich@inf.ethz.ch" || !strings.Contains(mm.Name, "Jens") {
		t.Errorf("parsed %+v", mm)
	}
	mm = mentionFromAddress(1, "Just A Name", "email.from")
	if mm.Name != "Just A Name" || mm.Email != "" {
		t.Errorf("parsed %+v", mm)
	}
}

func clusterSetup(t *testing.T) *rvm.Manager {
	t.Helper()
	fs := vfs.New()
	fs.MkdirAll("/docs")
	base := "the imemex data model unifies personal information management across subsystems "
	fs.WriteFile("/docs/draft-v1.txt", []byte(base+"first draft with notes"))
	fs.WriteFile("/docs/draft-v2.txt", []byte(base+"second draft with edits"))
	fs.WriteFile("/docs/draft-final.txt", []byte(base+"final version polished"))
	fs.WriteFile("/docs/recipe.txt", []byte("flour sugar butter eggs oven bake thirty minutes cool"))
	fs.WriteFile("/docs/shopping.txt", []byte("milk bread cheese apples bananas coffee"))

	m := rvm.New(rvm.DefaultOptions())
	if err := m.AddSource(fsplugin.New("filesystem", fs, convert.Default().Func())); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SyncAll(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClusterContentGroupsSimilarDocs(t *testing.T) {
	m := clusterSetup(t)
	clusters := ClusterContent(m, DefaultClusterOptions())
	if len(clusters) < 3 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	// The largest cluster holds the three drafts.
	biggest := clusters[0]
	if len(biggest.Members) != 3 {
		t.Fatalf("biggest cluster = %d members (%q)", len(biggest.Members), biggest.Label)
	}
	names := map[string]bool{}
	for _, oid := range biggest.Members {
		names[m.NameOf(oid)] = true
	}
	for _, want := range []string{"draft-v1.txt", "draft-v2.txt", "draft-final.txt"} {
		if !names[want] {
			t.Errorf("cluster misses %s: %v", want, names)
		}
	}
	if biggest.Label == "" {
		t.Error("cluster has no label")
	}
	// Recipe and shopping list stay separate.
	for _, c := range clusters[1:] {
		if len(c.Members) != 1 {
			t.Errorf("unexpected multi-doc cluster: %v (%q)", c.Members, c.Label)
		}
	}
}

func TestClusterThresholdExtremes(t *testing.T) {
	m := clusterSetup(t)
	// At similarity ~0 every pair with ANY shared token merges; the
	// recipe and shopping list share no tokens with anything, so three
	// clusters remain (drafts, recipe, shopping).
	all := ClusterContent(m, ClusterOptions{MinJaccard: 0.0001, TopTokens: 64, BaseOnly: true})
	if len(all) != 3 {
		t.Errorf("near-zero threshold gave %d clusters", len(all))
	}
	// At similarity 1.0 only identical signatures merge.
	strict := ClusterContent(m, ClusterOptions{MinJaccard: 1.0, TopTokens: 64, BaseOnly: true})
	if len(strict) != 5 {
		t.Errorf("strict threshold gave %d clusters, want 5 singletons", len(strict))
	}
}

func TestJaccard(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if got := jaccard(a, b); got < 0.32 || got > 0.34 {
		t.Errorf("jaccard = %v, want 1/3", got)
	}
	if jaccard(nil, a) != 0 {
		t.Error("empty set similarity must be 0")
	}
	if jaccard(a, a) != 1 {
		t.Error("self similarity must be 1")
	}
}
