package apps

import (
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/rvm"
	"repro/internal/textindex"
)

// ClusterOptions tunes content clustering.
type ClusterOptions struct {
	// MinJaccard is the token-set similarity two documents need to land
	// in the same cluster; <= 0 applies 0.5.
	MinJaccard float64
	// TopTokens bounds each document's signature to its most frequent
	// tokens; <= 0 applies 64.
	TopTokens int
	// MaxContentBytes bounds how much content is read per view; <= 0
	// applies 256 KiB.
	MaxContentBytes int64
	// BaseOnly restricts clustering to base items (skipping derived
	// views, whose text duplicates their file's). Default true via
	// DefaultClusterOptions.
	BaseOnly bool
}

// DefaultClusterOptions clusters base items at 0.5 Jaccard similarity.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{MinJaccard: 0.5, TopTokens: 64, BaseOnly: true}
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.MinJaccard <= 0 {
		o.MinJaccard = 0.5
	}
	if o.TopTokens <= 0 {
		o.TopTokens = 64
	}
	if o.MaxContentBytes <= 0 {
		o.MaxContentBytes = 256 << 10
	}
	return o
}

// Cluster is one group of textually similar views.
type Cluster struct {
	// Members are the clustered views, ascending.
	Members []catalog.OID
	// Label lists tokens shared by the whole cluster (up to five).
	Label string
}

// ClusterContent groups content-bearing views by token-set similarity
// (single-link, greedy): each view joins the first cluster whose
// representative signature is at least MinJaccard similar, else founds
// its own.
func ClusterContent(m *rvm.Manager, opts ClusterOptions) []Cluster {
	o := opts.withDefaults()

	type doc struct {
		oid    catalog.OID
		tokens map[string]bool
	}
	var docs []doc
	for _, oid := range m.AllOIDs() {
		e, err := m.Entry(oid)
		if err != nil || !e.HasContent {
			continue
		}
		if o.BaseOnly && e.Derived {
			continue
		}
		v, ok := m.View(oid)
		if !ok {
			continue
		}
		content := v.Content()
		if core.IsEmptyContent(content) || !content.Finite() {
			continue
		}
		b, err := core.ReadAllContent(content, o.MaxContentBytes)
		if err != nil || len(b) == 0 {
			continue
		}
		sig := signature(string(b), o.TopTokens)
		if len(sig) == 0 {
			continue
		}
		docs = append(docs, doc{oid: oid, tokens: sig})
	}

	type cluster struct {
		members []catalog.OID
		// shared holds the intersection of all members' signatures.
		shared map[string]bool
		// rep is the founder's signature, used for similarity tests.
		rep map[string]bool
	}
	var clusters []*cluster
	for _, d := range docs {
		placed := false
		for _, c := range clusters {
			if jaccard(d.tokens, c.rep) >= o.MinJaccard {
				c.members = append(c.members, d.oid)
				for tok := range c.shared {
					if !d.tokens[tok] {
						delete(c.shared, tok)
					}
				}
				placed = true
				break
			}
		}
		if !placed {
			shared := make(map[string]bool, len(d.tokens))
			for tok := range d.tokens {
				shared[tok] = true
			}
			clusters = append(clusters, &cluster{
				members: []catalog.OID{d.oid},
				shared:  shared,
				rep:     d.tokens,
			})
		}
	}

	out := make([]Cluster, 0, len(clusters))
	for _, c := range clusters {
		sort.Slice(c.members, func(i, j int) bool { return c.members[i] < c.members[j] })
		out = append(out, Cluster{Members: c.members, Label: label(c.shared)})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out
}

// signature returns the top-k most frequent tokens of text (ties by
// lexicographic order), excluding one-character tokens.
func signature(text string, k int) map[string]bool {
	freq := make(map[string]int)
	for _, tok := range textindex.Tokenize(text) {
		if len(tok) > 1 {
			freq[tok]++
		}
	}
	type tf struct {
		tok string
		n   int
	}
	all := make([]tf, 0, len(freq))
	for tok, n := range freq {
		all = append(all, tf{tok, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].tok < all[j].tok
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make(map[string]bool, len(all))
	for _, e := range all {
		out[e.tok] = true
	}
	return out
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(small) > len(big) {
		small, big = big, small
	}
	inter := 0
	for tok := range small {
		if big[tok] {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

func label(shared map[string]bool) string {
	toks := make([]string, 0, len(shared))
	for tok := range shared {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	if len(toks) > 5 {
		toks = toks[:5]
	}
	return strings.Join(toks, " ")
}
