package wildcard

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchTable(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"", "", true},
		{"", "x", false},
		{"*", "", true},
		{"*", "anything at all", true},
		{"?", "x", true},
		{"?", "", false},
		{"?", "xy", false},
		{"abc", "abc", true},
		{"abc", "ABC", true}, // case-insensitive
		{"abc", "abd", false},
		{"?onclusion*", "Conclusion", true},
		{"?onclusion*", "conclusions", true},
		{"?onclusion*", "onclusion", false},
		{"*Vision", "The Dataspace Vision", true},
		{"*Vision", "Vision", true},
		{"*Vision", "Visionary", false},
		{"VLDB200?", "VLDB2006", true},
		{"VLDB200?", "VLDB2016", false},
		{"*.tex", "vldb 2006.tex", true},
		{"*.tex", "notes.texx", false},
		{"a*b*c", "abc", true},
		{"a*b*c", "axxbyyc", true},
		{"a*b*c", "acb", false},
		{"**", "x", true},
		{"*?*", "", false},
		{"*?*", "x", true},
		{"figure*", "figure", true},
		{"figure*", "figures", true},
		{"figure*", "fig", false},
	}
	for _, c := range cases {
		if got := Match(c.pattern, c.name); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestIsPattern(t *testing.T) {
	if IsPattern("plain.tex") {
		t.Error("plain name misdetected as pattern")
	}
	if !IsPattern("*.tex") || !IsPattern("?onclusion") {
		t.Error("wildcards not detected")
	}
}

// Property: every string matches itself, "*"+s, s+"*", and "*" alone;
// replacing any single character with '?' still matches.
func TestMatchIdentityQuick(t *testing.T) {
	f := func(s string) bool {
		// Strip metacharacters so s is a literal name.
		s = strings.Map(func(r rune) rune {
			if r == '*' || r == '?' {
				return 'x'
			}
			return r
		}, s)
		if !Match(s, s) || !Match("*"+s, s) || !Match(s+"*", s) || !Match("*", s) {
			return false
		}
		if len(s) > 0 {
			runes := []rune(s)
			runes[0] = '?'
			if !Match(string(runes), s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a match against a prefix pattern agrees with HasPrefix.
func TestMatchPrefixQuick(t *testing.T) {
	f := func(prefix, rest string) bool {
		clean := func(s string) string {
			return strings.Map(func(r rune) rune {
				if r == '*' || r == '?' {
					return 'y'
				}
				return r
			}, strings.ToLower(s))
		}
		p, r := clean(prefix), clean(rest)
		return Match(p+"*", p+r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchLowered(t *testing.T) {
	if !MatchLowered("a*c", "abc") {
		t.Error("lowered match failed")
	}
	// MatchLowered does not fold case — that is the caller's job.
	if MatchLowered("abc", "ABC") {
		t.Error("MatchLowered should not fold case")
	}
}
