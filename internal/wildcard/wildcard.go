// Package wildcard implements the name-pattern matching of iQL name
// steps: '*' matches any (possibly empty) run of characters, '?' matches
// exactly one character, and matching is case-insensitive. Patterns like
// ?onclusion*, *Vision and VLDB200? appear in the paper's evaluation
// queries (Table 4).
package wildcard

import "strings"

// Match reports whether name matches pattern.
func Match(pattern, name string) bool {
	return match(strings.ToLower(pattern), strings.ToLower(name))
}

// MatchLowered is Match for inputs already folded to lower case; callers
// that match one pattern against many names fold the pattern once and
// cache the lowered names.
func MatchLowered(pattern, name string) bool { return match(pattern, name) }

// IsPattern reports whether s contains wildcard metacharacters.
func IsPattern(s string) bool {
	return strings.ContainsAny(s, "*?")
}

// match is an iterative two-pointer matcher with backtracking on '*'.
// It operates on runes so that '?' matches exactly one character, not
// one byte.
func match(pattern, name string) bool {
	p := []rune(pattern)
	s := []rune(name)
	pi, si := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '?' || p[pi] == s[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '*':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '*' {
		pi++
	}
	return pi == len(p)
}
