package wildcard

import "testing"

// TestMatchEdgeCases pins the corner semantics the two-pointer matcher
// must hold: empty patterns, empty names, star runs at both boundaries,
// and '?' over multi-byte runes.
func TestMatchEdgeCases(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		// Empty pattern matches only the empty name.
		{"", "", true},
		{"", "a", false},
		{"", "anything", false},
		// Bare stars match everything, including the empty name.
		{"*", "", true},
		{"**", "", true},
		{"***", "abc", true},
		// '**' collapses to '*' at every position.
		{"**abc", "abc", true},
		{"abc**", "abc", true},
		{"a**c", "abc", true},
		{"a**c", "ac", true},
		{"**a**c**", "xxaxxcxx", true},
		// Stars at boundaries.
		{"*abc", "abc", true},
		{"*abc", "xabc", true},
		{"*abc", "abx", false},
		{"abc*", "abc", true},
		{"abc*", "abcx", true},
		{"abc*", "xabc", false},
		// '?' needs exactly one character; it cannot match empty.
		{"?", "", false},
		{"?", "a", true},
		{"?", "ab", false},
		{"a?c", "ac", false},
		// '?' counts runes, not bytes.
		{"?", "ü", true},
		{"s?n", "søn", true},
		{"??", "日本", true},
		{"?", "日本", false},
		// Case folding applies to both sides.
		{"ABC*", "abcd", true},
		{"*vision", "GrandVision", true},
		// Pattern longer than name, trailing stars aside.
		{"abcd", "abc", false},
		{"abc*d", "abc", false},
		{"abc*", "ab", false},
		// Star backtracking: first star anchor must be revisited.
		{"*ab*ab", "abab", true},
		{"*ab*ab", "abxab", true},
		{"*ab*ab", "ab", false},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "acb", false},
	}
	for _, tc := range cases {
		if got := Match(tc.pattern, tc.name); got != tc.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tc.pattern, tc.name, got, tc.want)
		}
	}
}

// TestIsPatternEdgeCases: the empty string and plain names are not
// patterns; any '*' or '?' anywhere makes one.
func TestIsPatternEdgeCases(t *testing.T) {
	for s, want := range map[string]bool{
		"": false, "plain": false, "a.b-c": false,
		"*": true, "?": true, "mid*dle": true, "end?": true,
	} {
		if got := IsPattern(s); got != want {
			t.Errorf("IsPattern(%q) = %v, want %v", s, got, want)
		}
	}
}
