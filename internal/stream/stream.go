// Package stream implements the data-stream infrastructure of §3.4 and
// §4.4 of the iDM paper: infinite sequences of resource views, a
// push-based publish/subscribe broker ("need to push", §4.4.2), sliding
// stream windows (used by the Replica&Indexes module to manage infinite
// group components), and a generic polling facility that converts the
// state of a pull-only source (POP/IMAP mailboxes, RSS/ATOM documents)
// into a pseudo data stream.
package stream

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Event is one change notification flowing through the broker: a new or
// updated resource view on a topic.
type Event struct {
	// Topic names the stream the event belongs to.
	Topic string
	// Seq is the broker-assigned, per-topic sequence number.
	Seq uint64
	// View is the resource view the event carries.
	View core.ResourceView
}

// Operator is a push-based operator per §4.4.2: it registers for changes
// and processes incoming events immediately, enabling data-driven stream
// processing in the spirit of DSMSs.
type Operator interface {
	OnEvent(Event)
}

// OperatorFunc adapts a function to the Operator interface.
type OperatorFunc func(Event)

// OnEvent implements Operator.
func (f OperatorFunc) OnEvent(e Event) { f(e) }

// Filter wraps an operator so that it only sees events whose view
// satisfies pred.
func Filter(pred func(core.ResourceView) bool, next Operator) Operator {
	return OperatorFunc(func(e Event) {
		if pred(e.View) {
			next.OnEvent(e)
		}
	})
}

// Broker is a topic-based push broker. Subscribed operators are invoked
// synchronously, in subscription order, on the publisher's goroutine —
// push-based processing with no polling anywhere. Broker is safe for
// concurrent use.
type Broker struct {
	// met is published atomically: SetMetrics may be called after
	// publishers are already running.
	met atomic.Pointer[brokerMetrics]

	mu     sync.RWMutex
	subs   map[string]map[int]Operator
	order  map[string][]int
	nextID int
	seqs   map[string]uint64
	closed bool
}

// brokerMetrics bundles the broker's instruments (stream_* series).
type brokerMetrics struct {
	published   *obs.Counter
	deliveries  *obs.Counter
	subscribers *obs.Gauge
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		subs:  make(map[string]map[int]Operator),
		order: make(map[string][]int),
		seqs:  make(map[string]uint64),
	}
}

// SetMetrics registers the broker's instruments in reg: events
// published, operator deliveries, and the live subscriber count. A nil
// registry leaves the broker uninstrumented.
func (b *Broker) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	b.met.Store(&brokerMetrics{
		published:   reg.Counter("stream_events_published_total"),
		deliveries:  reg.Counter("stream_deliveries_total"),
		subscribers: reg.Gauge("stream_subscribers"),
	})
}

// Subscribe registers op for all future events on topic and returns a
// cancel function that removes the subscription. The cancel function is
// idempotent.
func (b *Broker) Subscribe(topic string, op Operator) (cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return func() {}
	}
	b.nextID++
	id := b.nextID
	if b.subs[topic] == nil {
		b.subs[topic] = make(map[int]Operator)
	}
	b.subs[topic][id] = op
	b.order[topic] = append(b.order[topic], id)
	if bm := b.met.Load(); bm != nil {
		bm.subscribers.Add(1)
	}
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, live := b.subs[topic][id]; !live {
			return
		}
		delete(b.subs[topic], id)
		if bm := b.met.Load(); bm != nil {
			bm.subscribers.Add(-1)
		}
	}
}

// Publish delivers view to every operator subscribed to topic and
// returns the event's sequence number.
func (b *Broker) Publish(topic string, view core.ResourceView) uint64 {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0
	}
	b.seqs[topic]++
	e := Event{Topic: topic, Seq: b.seqs[topic], View: view}
	ops := make([]Operator, 0, len(b.subs[topic]))
	for _, id := range b.order[topic] {
		if op, live := b.subs[topic][id]; live {
			ops = append(ops, op)
		}
	}
	b.mu.Unlock()
	if bm := b.met.Load(); bm != nil {
		bm.published.Inc()
		bm.deliveries.Add(int64(len(ops)))
	}
	for _, op := range ops {
		op.OnEvent(e)
	}
	return e.Seq
}

// Close stops the broker; further publishes and subscriptions are no-ops.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.subs = make(map[string]map[int]Operator)
	b.order = make(map[string][]int)
	if bm := b.met.Load(); bm != nil {
		bm.subscribers.Set(0)
	}
}

// Window is a sliding window over a stream: it retains the most recent
// capacity views, in arrival order. Infinite group components are
// "managed using a stream window" (§5.2). Window implements Operator so
// it may subscribe to a broker topic directly. Window is safe for
// concurrent use.
type Window struct {
	mu    sync.RWMutex
	buf   []core.ResourceView
	start int
	count int
	total uint64
}

// NewWindow returns a window retaining the most recent capacity views;
// capacity must be positive.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 1
	}
	return &Window{buf: make([]core.ResourceView, capacity)}
}

// OnEvent implements Operator, adding the event's view to the window.
func (w *Window) OnEvent(e Event) { w.Add(e.View) }

// Add appends a view, evicting the oldest when the window is full.
func (w *Window) Add(v core.ResourceView) {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := (w.start + w.count) % len(w.buf)
	w.buf[i] = v
	if w.count < len(w.buf) {
		w.count++
	} else {
		w.start = (w.start + 1) % len(w.buf)
	}
	w.total++
}

// Snapshot returns the windowed views from oldest to newest.
func (w *Window) Snapshot() []core.ResourceView {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]core.ResourceView, w.count)
	for i := 0; i < w.count; i++ {
		out[i] = w.buf[(w.start+i)%len(w.buf)]
	}
	return out
}

// Len returns the number of views currently in the window.
func (w *Window) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.count
}

// Total returns the number of views ever added.
func (w *Window) Total() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.total
}

// Views exposes the current window state as a finite iDM view collection
// (the Option 1 "model the state" choice of §4.4.1).
func (w *Window) Views() core.Views {
	return core.FuncViews(func() core.ViewIter {
		snap := w.Snapshot()
		return core.SliceViews(snap...).Iter()
	}, true, core.LenUnknown)
}

// chanViews adapts a channel of views to an infinite core.Views — the
// Option 2 "model the stream" choice of §4.4.1. The collection is
// one-shot: views consumed by one iterator are not seen by another, just
// as messages delivered by a stateless stream cannot be retrieved twice.
type chanViews struct{ ch <-chan core.ResourceView }

func (c chanViews) Iter() core.ViewIter {
	return core.IterFunc(func() (core.ResourceView, error) {
		v, ok := <-c.ch
		if !ok {
			return nil, io.EOF
		}
		return v, nil
	})
}
func (c chanViews) Finite() bool { return false }
func (c chanViews) Len() int     { return core.LenUnknown }

// InfiniteViews wraps a channel as an infinite one-shot view collection.
func InfiniteViews(ch <-chan core.ResourceView) core.Views { return chanViews{ch} }

// StreamView builds a datstream-class resource view whose group sequence
// is the given infinite collection (Table 1, class datstream).
func StreamView(name string, seq core.Views) core.ResourceView {
	return (&core.StaticView{VName: name, VClass: core.ClassDatStream}).
		WithGroup(core.Group{Set: core.NoViews(), Seq: seq})
}

// Poller converts a pull-only source into a pseudo data stream (§4.4.1):
// it invokes poll on every interval and publishes each returned view to
// the broker topic. Stop terminates the goroutine.
type Poller struct {
	stop chan struct{}
	done chan struct{}
}

// StartPoller begins polling. poll returns the views that are new since
// the previous call (the poller carries no cursor; sources track their
// own, e.g. a last-seen UID).
func StartPoller(b *Broker, topic string, interval time.Duration, poll func() []core.ResourceView) *Poller {
	p := &Poller{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				for _, v := range poll() {
					b.Publish(topic, v)
				}
			}
		}
	}()
	return p
}

// Stop terminates the poller and waits for its goroutine to exit.
func (p *Poller) Stop() {
	close(p.stop)
	<-p.done
}
