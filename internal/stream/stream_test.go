package stream

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func view(name string) core.ResourceView { return core.NewView(name, "") }

func TestBrokerPublishSubscribe(t *testing.T) {
	b := NewBroker()
	var got []string
	b.Subscribe("tuples", OperatorFunc(func(e Event) {
		got = append(got, e.View.Name())
	}))
	b.Publish("tuples", view("t1"))
	b.Publish("tuples", view("t2"))
	b.Publish("other", view("x")) // different topic, not delivered
	if len(got) != 2 || got[0] != "t1" || got[1] != "t2" {
		t.Errorf("delivered %v", got)
	}
}

func TestBrokerSequenceNumbersPerTopic(t *testing.T) {
	b := NewBroker()
	var seqs []uint64
	b.Subscribe("a", OperatorFunc(func(e Event) { seqs = append(seqs, e.Seq) }))
	b.Publish("a", view("1"))
	b.Publish("b", view("x"))
	b.Publish("a", view("2"))
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("seqs = %v", seqs)
	}
}

func TestBrokerClose(t *testing.T) {
	b := NewBroker()
	n := 0
	b.Subscribe("t", OperatorFunc(func(Event) { n++ }))
	b.Close()
	if seq := b.Publish("t", view("x")); seq != 0 || n != 0 {
		t.Errorf("publish after close: seq=%d delivered=%d", seq, n)
	}
	b.Subscribe("t", OperatorFunc(func(Event) { n++ })) // no-op
	b.Publish("t", view("y"))
	if n != 0 {
		t.Error("subscription after close delivered events")
	}
}

func TestBrokerSubscriptionCancel(t *testing.T) {
	b := NewBroker()
	var a, c int
	cancelA := b.Subscribe("t", OperatorFunc(func(Event) { a++ }))
	b.Subscribe("t", OperatorFunc(func(Event) { c++ }))
	b.Publish("t", view("1"))
	cancelA()
	b.Publish("t", view("2"))
	if a != 1 || c != 2 {
		t.Errorf("a=%d c=%d, want 1, 2", a, c)
	}
	cancelA() // idempotent
	b.Publish("t", view("3"))
	if a != 1 {
		t.Error("cancelled subscriber still receiving")
	}
}

func TestFilterOperator(t *testing.T) {
	b := NewBroker()
	var got []string
	b.Subscribe("msgs", Filter(
		func(v core.ResourceView) bool { return v.Name() != "spam" },
		OperatorFunc(func(e Event) { got = append(got, e.View.Name()) }),
	))
	b.Publish("msgs", view("ham"))
	b.Publish("msgs", view("spam"))
	b.Publish("msgs", view("eggs"))
	if len(got) != 2 || got[0] != "ham" || got[1] != "eggs" {
		t.Errorf("filtered = %v", got)
	}
}

func TestWindowSliding(t *testing.T) {
	w := NewWindow(3)
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		w.Add(view(n))
	}
	snap := w.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("window len = %d", len(snap))
	}
	want := []string{"c", "d", "e"}
	for i, v := range snap {
		if v.Name() != want[i] {
			t.Errorf("snap[%d] = %q, want %q", i, v.Name(), want[i])
		}
	}
	if w.Total() != 5 || w.Len() != 3 {
		t.Errorf("total=%d len=%d", w.Total(), w.Len())
	}
}

func TestWindowPartiallyFilled(t *testing.T) {
	w := NewWindow(10)
	w.Add(view("only"))
	if snap := w.Snapshot(); len(snap) != 1 || snap[0].Name() != "only" {
		t.Errorf("snap = %v", snap)
	}
}

func TestWindowAsOperator(t *testing.T) {
	b := NewBroker()
	w := NewWindow(2)
	b.Subscribe("s", w)
	b.Publish("s", view("1"))
	b.Publish("s", view("2"))
	b.Publish("s", view("3"))
	snap := w.Snapshot()
	if len(snap) != 2 || snap[0].Name() != "2" {
		t.Errorf("window after pushes: %v", snap)
	}
}

func TestWindowViewsSnapshotSemantics(t *testing.T) {
	w := NewWindow(5)
	w.Add(view("a"))
	vs := w.Views()
	if !vs.Finite() {
		t.Error("window state must be finite (Option 1)")
	}
	got, _ := core.CollectViews(vs, 0)
	if len(got) != 1 {
		t.Fatalf("got %d", len(got))
	}
	w.Add(view("b"))
	// A fresh iteration observes the new state.
	got, _ = core.CollectViews(vs, 0)
	if len(got) != 2 {
		t.Errorf("fresh iteration sees %d views, want 2", len(got))
	}
}

func TestInfiniteViewsOneShot(t *testing.T) {
	ch := make(chan core.ResourceView, 4)
	ch <- view("m1")
	ch <- view("m2")
	vs := InfiniteViews(ch)
	if vs.Finite() {
		t.Error("stream views must be infinite")
	}
	it := vs.Iter()
	v1, _ := it.Next()
	if v1.Name() != "m1" {
		t.Errorf("first = %q", v1.Name())
	}
	// A second iterator shares the channel: one-shot semantics, m1 is gone.
	it2 := vs.Iter()
	v2, _ := it2.Next()
	if v2.Name() != "m2" {
		t.Errorf("second iterator got %q, want m2 (one-shot)", v2.Name())
	}
	close(ch)
	if _, err := it.Next(); err != io.EOF {
		t.Errorf("closed channel: %v", err)
	}
}

func TestStreamViewClass(t *testing.T) {
	ch := make(chan core.ResourceView)
	sv := StreamView("inbox", InfiniteViews(ch))
	if sv.Class() != core.ClassDatStream {
		t.Errorf("class = %q", sv.Class())
	}
	if sv.Group().Seq.Finite() {
		t.Error("stream view sequence must be infinite")
	}
}

func TestPollerPublishes(t *testing.T) {
	b := NewBroker()
	var count int64
	b.Subscribe("poll", OperatorFunc(func(Event) { atomic.AddInt64(&count, 1) }))
	var mu sync.Mutex
	pending := []core.ResourceView{view("p1"), view("p2")}
	p := StartPoller(b, "poll", time.Millisecond, func() []core.ResourceView {
		mu.Lock()
		defer mu.Unlock()
		out := pending
		pending = nil
		return out
	})
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt64(&count) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if got := atomic.LoadInt64(&count); got != 2 {
		t.Errorf("published %d events, want 2", got)
	}
}

func TestPollerStopTerminates(t *testing.T) {
	b := NewBroker()
	p := StartPoller(b, "t", time.Hour, func() []core.ResourceView { return nil })
	done := make(chan struct{})
	go func() { p.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not return")
	}
}

// Property: a window of capacity c holding n adds retains min(n, c) views
// and they are the most recent ones in order.
func TestWindowPropertyQuick(t *testing.T) {
	f := func(cap8, n8 uint8) bool {
		capacity := int(cap8%16) + 1
		n := int(n8 % 64)
		w := NewWindow(capacity)
		views := make([]core.ResourceView, n)
		for i := 0; i < n; i++ {
			views[i] = view("v")
			w.Add(views[i])
		}
		snap := w.Snapshot()
		wantLen := n
		if wantLen > capacity {
			wantLen = capacity
		}
		if len(snap) != wantLen {
			return false
		}
		for i := 0; i < wantLen; i++ {
			if snap[i] != views[n-wantLen+i] {
				return false
			}
		}
		return w.Total() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
