// Package fault is a deterministic fault-injection harness for the
// dataspace's source layer. The iDM paper's PDSMS assumes intermittently
// reachable data sources (laptops, IMAP servers, network shares); this
// package lets tests and chaos drills make that volatility reproducible:
// an Injector holds seeded rules that fire at named failure points inside
// the Data Source Plugins — I/O errors, latency spikes, partial reads,
// corrupted converter output — so resilience code paths (retry, breaker,
// degraded reads) can be exercised deterministically.
//
// Points are slash-separated names such as "mail/root" or "fs/read";
// rules match points with the same wildcard syntax iQL name steps use
// ('*' and '?'). All Injector methods are safe on a nil receiver, so
// plugins consult their injector unconditionally.
package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/wildcard"
)

// ErrInjected is the sentinel wrapped by every injected error, so callers
// can distinguish harness-made failures from real ones.
var ErrInjected = errors.New("injected fault")

// IsInjected reports whether err originates from an Injector.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Kind classifies what a rule injects.
type Kind int

// Fault kinds.
const (
	// Error makes the point return an error.
	Error Kind = iota
	// Latency delays the point without failing it.
	Latency
	// PartialRead truncates a reader mid-stream and fails the read.
	PartialRead
	// Corrupt flips bytes in converter input.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Latency:
		return "latency"
	case PartialRead:
		return "partial"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule arms one failure point (or a wildcard family of points).
type Rule struct {
	// Point names the failure point, e.g. "mail/root"; '*' and '?' are
	// wildcards, so "*/root" arms every plugin's Root call.
	Point string
	Kind  Kind
	// P is the per-call firing probability; 0 means always (P=1).
	P float64
	// After skips the first After matching calls before the rule may
	// fire (e.g. "first sync succeeds, second fails").
	After int
	// Times caps how often the rule fires; 0 means unlimited.
	Times int
	// Latency is the injected delay for Latency rules.
	Latency time.Duration
	// Err overrides the injected error; nil yields a generic one.
	Err error
	// Fraction tunes PartialRead (fraction of bytes delivered, default
	// 0.5) and Corrupt (fraction of bytes flipped, default 0.05).
	Fraction float64
}

type ruleState struct {
	Rule
	calls int // matching calls observed
	fired int // times actually injected
}

// Injector evaluates rules at failure points. The zero of *Injector (nil)
// injects nothing. All methods are concurrency-safe; randomness is drawn
// from a single seeded generator so a given seed replays the same fault
// schedule.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	fired map[string]int
	sleep func(time.Duration) // test hook; defaults to time.Sleep
}

// New returns an empty injector whose probabilistic decisions derive from
// seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		fired: make(map[string]int),
		sleep: time.Sleep,
	}
}

// Add arms a rule and returns the injector for chaining. Safe to call
// while the system runs.
func (in *Injector) Add(r Rule) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &ruleState{Rule: r})
	return in
}

// Reset disarms all rules and clears counters.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
	in.fired = make(map[string]int)
}

// SetSleep replaces the latency sleeper (test hook).
func (in *Injector) SetSleep(f func(time.Duration)) {
	if in == nil || f == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sleep = f
}

// match decides whether rule rs fires for point now; caller holds in.mu.
func (in *Injector) matchLocked(rs *ruleState, point string, kinds ...Kind) bool {
	ok := false
	for _, k := range kinds {
		if rs.Kind == k {
			ok = true
			break
		}
	}
	if !ok || !wildcard.Match(rs.Point, point) {
		return false
	}
	rs.calls++
	if rs.calls <= rs.After {
		return false
	}
	if rs.Times > 0 && rs.fired >= rs.Times {
		return false
	}
	if rs.P > 0 && rs.P < 1 && in.rng.Float64() >= rs.P {
		return false
	}
	rs.fired++
	in.fired[point]++
	return true
}

// Fail evaluates Error and Latency rules at point: latency rules sleep,
// and the first firing error rule's error is returned. A nil result means
// the point proceeds normally.
func (in *Injector) Fail(point string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	var delay time.Duration
	var err error
	sleep := in.sleep
	for _, rs := range in.rules {
		if rs.Kind == Latency && in.matchLocked(rs, point, Latency) {
			delay += rs.Latency
		}
	}
	for _, rs := range in.rules {
		if rs.Kind == Error && in.matchLocked(rs, point, Error) {
			if rs.Err != nil {
				err = fmt.Errorf("%w at %s: %w", ErrInjected, point, rs.Err)
			} else {
				err = fmt.Errorf("%w at %s", ErrInjected, point)
			}
			break
		}
	}
	in.mu.Unlock()
	if delay > 0 {
		sleep(delay)
	}
	return err
}

// Hit evaluates Error rules at point as a pure decision — "should this
// point misbehave now?" — without constructing an error. Chaos switches
// that mutate data instead of failing a call (the replication transport
// dropping, duplicating, reordering or tearing a shipped batch) consult
// it; the rule bookkeeping (After/Times/P, Fired counters) is shared
// with Fail, so a given seed replays the same chaos schedule.
func (in *Injector) Hit(point string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.Kind == Error && in.matchLocked(rs, point, Error) {
			return true
		}
	}
	return false
}

// Reader wraps r with any PartialRead rule armed at point: the stream is
// truncated to a fraction of limit bytes and then fails with an injected
// error, modelling a connection dropped mid-transfer. limit should be the
// expected payload size; with limit <= 0 the cut happens after the first
// 512 bytes.
func (in *Injector) Reader(point string, r io.Reader, limit int64) io.Reader {
	if in == nil {
		return r
	}
	in.mu.Lock()
	var frac float64 = -1
	for _, rs := range in.rules {
		if rs.Kind == PartialRead && in.matchLocked(rs, point, PartialRead) {
			frac = rs.Fraction
			break
		}
	}
	in.mu.Unlock()
	if frac < 0 {
		return r
	}
	if frac == 0 {
		frac = 0.5
	}
	cut := int64(512)
	if limit > 0 {
		cut = int64(float64(limit) * frac)
	}
	return &partialReader{r: io.LimitReader(r, cut), point: point}
}

type partialReader struct {
	r     io.Reader
	point string
}

func (p *partialReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	if err == io.EOF {
		err = fmt.Errorf("%w at %s: short read", ErrInjected, p.point)
	}
	return n, err
}

// Corrupt applies any Corrupt rule armed at point to data, flipping a
// deterministic selection of bytes in a copy (the input is not mutated).
// Without a firing rule data is returned unchanged.
func (in *Injector) Corrupt(point string, data []byte) []byte {
	if in == nil || len(data) == 0 {
		return data
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.Kind == Corrupt && in.matchLocked(rs, point, Corrupt) {
			frac := rs.Fraction
			if frac <= 0 {
				frac = 0.05
			}
			out := make([]byte, len(data))
			copy(out, data)
			flips := int(float64(len(out)) * frac)
			if flips < 1 {
				flips = 1
			}
			for i := 0; i < flips; i++ {
				out[in.rng.Intn(len(out))] ^= 0xff
			}
			return out
		}
	}
	return data
}

// Fired returns how many times faults were injected at point (exact point
// name, not pattern).
func (in *Injector) Fired(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}

// FiredTotal returns the total number of injected faults.
func (in *Injector) FiredTotal() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, c := range in.fired {
		n += c
	}
	return n
}

// ParseRule parses a command-line fault spec of the form
//
//	point:kind[:p[:times]]
//
// e.g. "mail/root:error", "fs/read:partial:0.5", "*/root:latency:1:3".
// Latency rules get a default 50ms delay (append "@dur" to the kind to
// override, e.g. "mail/root:latency@200ms").
func ParseRule(spec string) (Rule, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || parts[0] == "" {
		return Rule{}, fmt.Errorf("fault spec %q: want point:kind[:p[:times]]", spec)
	}
	r := Rule{Point: parts[0]}
	kind := parts[1]
	if at := strings.IndexByte(kind, '@'); at >= 0 {
		d, err := time.ParseDuration(kind[at+1:])
		if err != nil {
			return Rule{}, fmt.Errorf("fault spec %q: bad duration: %v", spec, err)
		}
		r.Latency = d
		kind = kind[:at]
	}
	switch kind {
	case "error":
		r.Kind = Error
	case "latency":
		r.Kind = Latency
		if r.Latency == 0 {
			r.Latency = 50 * time.Millisecond
		}
	case "partial":
		r.Kind = PartialRead
	case "corrupt":
		r.Kind = Corrupt
	default:
		return Rule{}, fmt.Errorf("fault spec %q: unknown kind %q", spec, kind)
	}
	if len(parts) > 2 && parts[2] != "" {
		p, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || p < 0 || p > 1 {
			return Rule{}, fmt.Errorf("fault spec %q: bad probability %q", spec, parts[2])
		}
		r.P = p
	}
	if len(parts) > 3 && parts[3] != "" {
		n, err := strconv.Atoi(parts[3])
		if err != nil || n < 0 {
			return Rule{}, fmt.Errorf("fault spec %q: bad times %q", spec, parts[3])
		}
		r.Times = n
	}
	return r, nil
}
