package fault

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fail("fs/root"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	r := in.Reader("fs/read", strings.NewReader("hello"), 5)
	b, err := io.ReadAll(r)
	if err != nil || string(b) != "hello" {
		t.Fatalf("nil injector altered reader: %q %v", b, err)
	}
	if got := in.Corrupt("fs/convert", []byte("abc")); string(got) != "abc" {
		t.Fatalf("nil injector corrupted data: %q", got)
	}
	in.Add(Rule{Point: "x", Kind: Error})
	in.Reset()
	if in.Fired("x") != 0 || in.FiredTotal() != 0 {
		t.Fatal("nil injector counted fires")
	}
}

func TestErrorRuleFiresAndCounts(t *testing.T) {
	in := New(1).Add(Rule{Point: "mail/root", Kind: Error})
	err := in.Fail("mail/root")
	if !IsInjected(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	if err := in.Fail("fs/root"); err != nil {
		t.Fatalf("unrelated point failed: %v", err)
	}
	if got := in.Fired("mail/root"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	if got := in.FiredTotal(); got != 1 {
		t.Fatalf("FiredTotal = %d, want 1", got)
	}
}

func TestErrOverrideWrapsBoth(t *testing.T) {
	custom := errors.New("connection reset")
	in := New(1).Add(Rule{Point: "fs/root", Kind: Error, Err: custom})
	err := in.Fail("fs/root")
	if !IsInjected(err) || !errors.Is(err, custom) {
		t.Fatalf("want wrapped custom error, got %v", err)
	}
}

func TestAfterAndTimes(t *testing.T) {
	in := New(1).Add(Rule{Point: "fs/root", Kind: Error, After: 2, Times: 1})
	var outcomes []bool
	for i := 0; i < 5; i++ {
		outcomes = append(outcomes, in.Fail("fs/root") != nil)
	}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("call %d: fired=%v, want %v (schedule %v)", i, outcomes[i], want[i], outcomes)
		}
	}
}

func TestProbabilityIsDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(seed).Add(Rule{Point: "p", Kind: Error, P: 0.5})
		out := make([]bool, 32)
		for i := range out {
			out[i] = in.Fail("p") != nil
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("P=0.5 fired %d/32 times; want a mix", fires)
	}
}

func TestWildcardPoints(t *testing.T) {
	in := New(1).Add(Rule{Point: "*/root", Kind: Error})
	for _, p := range []string{"fs/root", "mail/root", "rss/root"} {
		if in.Fail(p) == nil {
			t.Fatalf("pattern */root did not match %s", p)
		}
	}
	if in.Fail("fs/read") != nil {
		t.Fatal("pattern */root matched fs/read")
	}
}

func TestLatencyRuleSleeps(t *testing.T) {
	in := New(1).Add(Rule{Point: "fs/root", Kind: Latency, Latency: 30 * time.Millisecond})
	var slept time.Duration
	in.SetSleep(func(d time.Duration) { slept += d })
	if err := in.Fail("fs/root"); err != nil {
		t.Fatalf("latency rule returned error: %v", err)
	}
	if slept != 30*time.Millisecond {
		t.Fatalf("slept %v, want 30ms", slept)
	}
}

func TestPartialReadTruncatesAndErrors(t *testing.T) {
	in := New(1).Add(Rule{Point: "fs/read", Kind: PartialRead, Fraction: 0.5})
	payload := strings.Repeat("x", 100)
	r := in.Reader("fs/read", strings.NewReader(payload), int64(len(payload)))
	b, err := io.ReadAll(r)
	if !IsInjected(err) {
		t.Fatalf("want injected short-read error, got %v", err)
	}
	if len(b) != 50 {
		t.Fatalf("delivered %d bytes, want 50", len(b))
	}
	// Exhausted rule (Times defaults to unlimited here, but a fresh point
	// with no rule) leaves the stream intact.
	r2 := in.Reader("mail/fetch", strings.NewReader(payload), int64(len(payload)))
	if b2, err := io.ReadAll(r2); err != nil || len(b2) != 100 {
		t.Fatalf("unarmed point altered stream: %d bytes, %v", len(b2), err)
	}
}

func TestCorruptFlipsBytesWithoutMutatingInput(t *testing.T) {
	in := New(3).Add(Rule{Point: "fs/convert", Kind: Corrupt, Fraction: 0.2})
	orig := []byte(strings.Repeat("a", 64))
	got := in.Corrupt("fs/convert", orig)
	if string(orig) != strings.Repeat("a", 64) {
		t.Fatal("Corrupt mutated its input")
	}
	if string(got) == string(orig) {
		t.Fatal("Corrupt returned unchanged data")
	}
	if len(got) != len(orig) {
		t.Fatalf("Corrupt changed length: %d != %d", len(got), len(orig))
	}
}

func TestReset(t *testing.T) {
	in := New(1).Add(Rule{Point: "p", Kind: Error})
	if in.Fail("p") == nil {
		t.Fatal("rule did not fire")
	}
	in.Reset()
	if in.Fail("p") != nil {
		t.Fatal("rule survived Reset")
	}
	if in.FiredTotal() != 0 {
		t.Fatal("counters survived Reset")
	}
}

func TestParseRule(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
		ok   bool
	}{
		{"mail/root:error", Rule{Point: "mail/root", Kind: Error}, true},
		{"fs/read:partial:0.5", Rule{Point: "fs/read", Kind: PartialRead, P: 0.5}, true},
		{"*/root:latency:1:3", Rule{Point: "*/root", Kind: Latency, P: 1, Times: 3, Latency: 50 * time.Millisecond}, true},
		{"mail/root:latency@200ms", Rule{Point: "mail/root", Kind: Latency, Latency: 200 * time.Millisecond}, true},
		{"x:corrupt", Rule{Point: "x", Kind: Corrupt}, true},
		{"noseparator", Rule{}, false},
		{":error", Rule{}, false},
		{"x:bogus", Rule{}, false},
		{"x:error:2", Rule{}, false},
		{"x:error:0.5:-1", Rule{}, false},
		{"x:latency@nope", Rule{}, false},
	}
	for _, c := range cases {
		got, err := ParseRule(c.spec)
		if c.ok != (err == nil) {
			t.Fatalf("ParseRule(%q) err = %v, want ok=%v", c.spec, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseRule(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}
