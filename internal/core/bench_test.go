package core

import "testing"

// benchGraph builds a tree of the given fanout and depth with a few
// cross edges.
func benchGraph(fanout, depth int) ResourceView {
	var build func(d int) *StaticView
	var all []*StaticView
	build = func(d int) *StaticView {
		v := NewView("n", ClassFolder)
		all = append(all, v)
		if d == 0 {
			return v
		}
		children := make([]ResourceView, fanout)
		for i := range children {
			children[i] = build(d - 1)
		}
		v.VGroup = SetGroup(children...)
		return v
	}
	root := build(depth)
	// Cross edges every 7th node back to the root (cycles).
	for i := 6; i < len(all); i += 7 {
		existing, _ := CollectIter(all[i].Group().Iter(), 0)
		all[i].VGroup = SetGroup(append(existing, root)...)
	}
	return root
}

func BenchmarkWalkGraph(b *testing.B) {
	root := benchGraph(4, 6) // ~5.5k nodes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := CountReachable(root, WalkOptions{MaxDepth: -1})
		if err != nil || n == 0 {
			b.Fatal(n, err)
		}
	}
}

func BenchmarkIndirectlyRelated(b *testing.B) {
	root := benchGraph(4, 6)
	var leaf ResourceView
	Walk(root, WalkOptions{MaxDepth: -1}, func(v ResourceView, d int) error {
		leaf = v
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IndirectlyRelated(root, leaf, WalkOptions{MaxDepth: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConforms(b *testing.B) {
	reg := StandardRegistry()
	f := fileView("bench.txt", 100, "content")
	d := folderView("dir", f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Conforms(d, ClassFolder, 0); err != nil {
			b.Fatal(err)
		}
	}
}
