package core

// Systematic conformance tests for every resource view class of Table 1
// of the paper: for each class, a canonical instance that must conform
// and a perturbed instance that must be rejected.

import (
	"testing"
	"time"
)

func table1FSTuple() TupleComponent {
	now := time.Date(2005, 3, 19, 11, 54, 0, 0, time.UTC)
	return TupleComponent{
		Schema: FSSchema,
		Tuple:  Tuple{Int(4096), Time(now), Time(now)},
	}
}

func relTuple() *StaticView {
	return (&StaticView{VClass: ClassTuple}).WithTuple(TupleComponent{
		Schema: Schema{{Name: "id", Domain: DomainInt}},
		Tuple:  Tuple{Int(1)},
	})
}

func xmlTextView(s string) *StaticView {
	return (&StaticView{VClass: ClassXMLText}).WithContent(StringContent(s))
}

func xmlElemView(name string, children ...ResourceView) *StaticView {
	v := NewView(name, ClassXMLElem)
	if len(children) > 0 {
		v.VGroup = SeqGroup(children...)
	}
	return v
}

func xmlDocView() *StaticView {
	return (&StaticView{VClass: ClassXMLDoc}).
		WithGroup(SeqGroup(xmlElemView("root", xmlTextView("x"))))
}

func TestTable1Conformance(t *testing.T) {
	reg := StandardRegistry()
	infiniteTuples := Group{Set: NoViews(), Seq: infiniteTupleViews{}}
	infiniteDocs := Group{Set: NoViews(), Seq: FuncViews(func() ViewIter {
		return IterFunc(func() (ResourceView, error) { return xmlDocView(), nil })
	}, false, LenUnknown)}

	cases := []struct {
		class string
		good  ResourceView
		bad   ResourceView
		why   string
	}{
		{
			class: ClassFile,
			good: NewView("a.txt", ClassFile).WithTuple(table1FSTuple()).
				WithContent(StringContent("bytes")),
			bad: (&StaticView{VClass: ClassFile}).WithTuple(table1FSTuple()),
			why: "file needs a name N_f",
		},
		{
			class: ClassFolder,
			good: NewView("dir", ClassFolder).WithTuple(table1FSTuple()).
				WithGroup(SetGroup(NewView("f.txt", ClassFile).
					WithTuple(table1FSTuple()).WithContent(StringContent("x")))),
			bad: NewView("dir", ClassFolder).WithTuple(table1FSTuple()).
				WithContent(StringContent("folders have no content")),
			why: "folder χ must be empty",
		},
		{
			class: ClassTuple,
			good:  relTuple(),
			bad:   NewView("named", ClassTuple).WithTuple(relTuple().VTuple),
			why:   "tuple views are nameless",
		},
		{
			class: ClassRelation,
			good: NewView("contacts", ClassRelation).
				WithGroup(SetGroup(relTuple(), relTuple())),
			bad: NewView("contacts", ClassRelation).
				WithGroup(SetGroup(xmlTextView("not a tuple"))),
			why: "relation children must be tuple-class",
		},
		{
			class: ClassRelDB,
			good: NewView("db", ClassRelDB).
				WithGroup(SetGroup(NewView("r", ClassRelation).WithGroup(SetGroup(relTuple())))),
			bad: NewView("db", ClassRelDB).
				WithGroup(SetGroup(relTuple())),
			why: "reldb children must be relations",
		},
		{
			class: ClassXMLText,
			good:  xmlTextView("chars"),
			bad:   &StaticView{VClass: ClassXMLText},
			why:   "xmltext needs non-empty χ",
		},
		{
			class: ClassXMLElem,
			good:  xmlElemView("dep", xmlTextView("x"), xmlElemView("leaf")),
			bad: NewView("dep", ClassXMLElem).
				WithGroup(SetGroup(xmlTextView("x"))),
			why: "xmlelem children live in the ordered sequence Q, not S",
		},
		{
			class: ClassXMLDoc,
			good:  xmlDocView(),
			bad:   &StaticView{VClass: ClassXMLDoc},
			why:   "xmldoc needs its root element in Q",
		},
		{
			class: ClassXMLFile,
			good: NewView("a.xml", ClassXMLFile).WithTuple(table1FSTuple()).
				WithContent(StringContent("<a/>")).
				WithGroup(SeqGroup(xmlDocView())),
			bad: NewView("a.xml", ClassXMLFile).WithTuple(table1FSTuple()).
				WithContent(StringContent("<a/>")).
				WithGroup(SeqGroup(xmlElemView("a"))),
			why: "xmlfile's Q must hold an xmldoc, not a bare element",
		},
		{
			class: ClassDatStream,
			good:  (&StaticView{VClass: ClassDatStream}).WithGroup(infiniteTuples),
			bad: (&StaticView{VClass: ClassDatStream}).
				WithGroup(SeqGroup(relTuple())),
			why: "datstream sequences are infinite",
		},
		{
			class: ClassTupStream,
			good:  (&StaticView{VClass: ClassTupStream}).WithGroup(infiniteTuples),
			bad: (&StaticView{VClass: ClassTupStream}).WithGroup(Group{
				Set: NoViews(),
				Seq: FuncViews(func() ViewIter {
					return IterFunc(func() (ResourceView, error) { return xmlTextView("x"), nil })
				}, false, LenUnknown),
			}),
			why: "tupstream items must be tuples",
		},
		{
			class: ClassRSSAtom,
			good:  (&StaticView{VClass: ClassRSSAtom}).WithGroup(infiniteDocs),
			bad:   (&StaticView{VClass: ClassRSSAtom}).WithGroup(infiniteTuples),
			why:   "rssatom items must be xml documents",
		},
	}
	for _, c := range cases {
		if err := reg.Conforms(c.good, c.class, 8); err != nil {
			t.Errorf("canonical %s rejected: %v", c.class, err)
		}
		if err := reg.Conforms(c.bad, c.class, 8); err == nil {
			t.Errorf("%s: perturbed instance accepted (%s)", c.class, c.why)
		}
	}
}
