// Package core implements the iMeMex Data Model (iDM) as defined in
// "iDM: A Unified and Versatile Data Model for Personal Dataspace
// Management" (Dittrich and Vaz Salles, VLDB 2006).
//
// The central abstraction is the ResourceView: a 4-tuple of a name
// component, a tuple component, a content component and a group
// component. Resource views are linked into arbitrary directed graphs by
// their group components, and every component may be computed lazily,
// may be intensional (the result of running a query or calling a remote
// service) and — for content and group — may be infinite.
package core

import (
	"fmt"
	"strconv"
	"time"
)

// Domain identifies the set of atomic values an attribute ranges over.
// Domains follow the relational definitions the paper adopts from
// Elmasri/Navathe: a domain is a set of atomic values.
type Domain int

// The atomic domains supported by tuple components.
const (
	DomainNull Domain = iota
	DomainString
	DomainInt
	DomainFloat
	DomainBool
	DomainTime
	DomainBytes
)

// String returns the conventional lower-case name of the domain.
func (d Domain) String() string {
	switch d {
	case DomainNull:
		return "null"
	case DomainString:
		return "string"
	case DomainInt:
		return "int"
	case DomainFloat:
		return "float"
	case DomainBool:
		return "bool"
	case DomainTime:
		return "date"
	case DomainBytes:
		return "bytes"
	default:
		return fmt.Sprintf("domain(%d)", int(d))
	}
}

// Value is one atomic value of a tuple component. It is a tagged union:
// Kind selects which of the payload fields is meaningful. The zero Value
// is the null value.
type Value struct {
	Kind  Domain
	Str   string
	Int   int64
	Float float64
	Bool  bool
	Time  time.Time
	Bytes []byte
}

// Null returns the null value.
func Null() Value { return Value{} }

// String wraps s as a string value.
func String(s string) Value { return Value{Kind: DomainString, Str: s} }

// Int wraps i as an integer value.
func Int(i int64) Value { return Value{Kind: DomainInt, Int: i} }

// Float wraps f as a floating-point value.
func Float(f float64) Value { return Value{Kind: DomainFloat, Float: f} }

// Bool wraps b as a boolean value.
func Bool(b bool) Value { return Value{Kind: DomainBool, Bool: b} }

// Time wraps t as a date value.
func Time(t time.Time) Value { return Value{Kind: DomainTime, Time: t} }

// BytesValue wraps b as a byte-string value. The slice is not copied.
func BytesValue(b []byte) Value { return Value{Kind: DomainBytes, Bytes: b} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == DomainNull }

// String renders the value for display and for content-style matching.
func (v Value) String() string {
	switch v.Kind {
	case DomainNull:
		return "null"
	case DomainString:
		return v.Str
	case DomainInt:
		return strconv.FormatInt(v.Int, 10)
	case DomainFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case DomainBool:
		return strconv.FormatBool(v.Bool)
	case DomainTime:
		return v.Time.Format("2006-01-02 15:04:05")
	case DomainBytes:
		return string(v.Bytes)
	default:
		return fmt.Sprintf("value(kind=%d)", int(v.Kind))
	}
}

// AsFloat converts numeric values to float64 for mixed-type comparison.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case DomainInt:
		return float64(v.Int), true
	case DomainFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// ErrIncomparable is returned by Compare when two values cannot be
// ordered relative to each other.
var ErrIncomparable = fmt.Errorf("core: values are not comparable")

// Compare orders two values. It returns a negative number, zero, or a
// positive number as a sorts before, equal to, or after b. Integers and
// floats compare numerically against each other. Null sorts before every
// non-null value and equal to itself. Values of unrelated domains return
// ErrIncomparable.
func Compare(a, b Value) (int, error) {
	if a.Kind == DomainNull || b.Kind == DomainNull {
		switch {
		case a.Kind == b.Kind:
			return 0, nil
		case a.Kind == DomainNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if af, ok := a.AsFloat(); ok {
		if bf, ok := b.AsFloat(); ok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			default:
				return 0, nil
			}
		}
		return 0, ErrIncomparable
	}
	if a.Kind != b.Kind {
		return 0, ErrIncomparable
	}
	switch a.Kind {
	case DomainString:
		switch {
		case a.Str < b.Str:
			return -1, nil
		case a.Str > b.Str:
			return 1, nil
		default:
			return 0, nil
		}
	case DomainBool:
		switch {
		case a.Bool == b.Bool:
			return 0, nil
		case !a.Bool:
			return -1, nil
		default:
			return 1, nil
		}
	case DomainTime:
		switch {
		case a.Time.Before(b.Time):
			return -1, nil
		case a.Time.After(b.Time):
			return 1, nil
		default:
			return 0, nil
		}
	case DomainBytes:
		as, bs := string(a.Bytes), string(b.Bytes)
		switch {
		case as < bs:
			return -1, nil
		case as > bs:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, ErrIncomparable
	}
}

// Equal reports whether two values are equal under Compare semantics.
// Incomparable values are never equal.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}
