package core

import (
	"sync"
	"testing"
	"time"
)

func TestStaticViewComponents(t *testing.T) {
	now := time.Now()
	v := NewView("PIM", ClassFolder).
		WithTuple(fsTuple(4096, now, now)).
		WithGroup(SetGroup(namedViews("vldb2006.tex", "Grant.doc")...))
	if v.Name() != "PIM" || v.Class() != ClassFolder {
		t.Errorf("name=%q class=%q", v.Name(), v.Class())
	}
	if size, ok := v.Tuple().Get("size"); !ok || size.Int != 4096 {
		t.Errorf("size = %v, %v", size, ok)
	}
	if !IsEmptyContent(v.Content()) {
		t.Error("folder content should be empty")
	}
	children, _ := Children(v)
	if len(children) != 2 {
		t.Errorf("children = %d, want 2", len(children))
	}
}

func TestZeroStaticViewIsEmpty(t *testing.T) {
	var v StaticView
	if v.Name() != "" || !v.Tuple().IsEmpty() || !IsEmptyContent(v.Content()) || !v.Group().IsEmpty() {
		t.Error("zero StaticView should have four empty components")
	}
}

func TestLazyViewMemoization(t *testing.T) {
	var tupleCalls, contentCalls, groupCalls int
	v := &LazyView{
		VName:  "lazy",
		VClass: ClassFile,
		TupleFn: func() TupleComponent {
			tupleCalls++
			return fsTuple(1, time.Now(), time.Now())
		},
		ContentFn: func() Content {
			contentCalls++
			return StringContent("bytes")
		},
		GroupFn: func() Group {
			groupCalls++
			return SeqGroup(namedViews("child")...)
		},
	}
	for i := 0; i < 5; i++ {
		v.Tuple()
		v.Content()
		v.Group()
	}
	if tupleCalls != 1 || contentCalls != 1 || groupCalls != 1 {
		t.Errorf("supplier calls = %d/%d/%d, want 1/1/1", tupleCalls, contentCalls, groupCalls)
	}
}

func TestLazyViewNilSuppliers(t *testing.T) {
	v := &LazyView{VName: "empty"}
	if !v.Tuple().IsEmpty() {
		t.Error("nil TupleFn should yield empty tuple")
	}
	if !IsEmptyContent(v.Content()) {
		t.Error("nil ContentFn should yield empty content")
	}
	if !v.Group().IsEmpty() {
		t.Error("nil GroupFn should yield empty group")
	}
}

func TestLazyViewConcurrentAccess(t *testing.T) {
	calls := 0
	v := &LazyView{
		VName: "concurrent",
		GroupFn: func() Group {
			calls++
			return SetGroup(namedViews("a", "b", "c")...)
		},
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := v.Group()
			if got, _ := CollectIter(g.Iter(), 0); len(got) != 3 {
				t.Errorf("got %d children", len(got))
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Errorf("GroupFn called %d times under concurrency, want 1", calls)
	}
}

func TestNameOfNil(t *testing.T) {
	if NameOf(nil) != "<nil>" {
		t.Errorf("NameOf(nil) = %q", NameOf(nil))
	}
}
