package core

import (
	"fmt"
	"sort"
)

// Presence constrains whether a component must be empty, must be
// non-empty, or may be either (restriction 1 of Definition 2).
type Presence int

// Presence constraint values.
const (
	Any Presence = iota
	MustBeEmpty
	MustBePresent
)

func (p Presence) String() string {
	switch p {
	case Any:
		return "any"
	case MustBeEmpty:
		return "empty"
	case MustBePresent:
		return "present"
	default:
		return fmt.Sprintf("presence(%d)", int(p))
	}
}

// Finiteness constrains whether a content or group element must be
// finite or infinite (restriction 3 of Definition 2).
type Finiteness int

// Finiteness constraint values.
const (
	AnyExtent Finiteness = iota
	MustBeFinite
	MustBeInfinite
)

func (f Finiteness) String() string {
	switch f {
	case AnyExtent:
		return "any"
	case MustBeFinite:
		return "finite"
	case MustBeInfinite:
		return "infinite"
	default:
		return fmt.Sprintf("finiteness(%d)", int(f))
	}
}

// Class is a resource view class (Definition 2): a named set of formal
// restrictions on the four components of the views that obey to it.
// Classes form a generalization hierarchy via Parent: a view obeying a
// class automatically obeys all generalizations of that class.
type Class struct {
	// Name identifies the class, e.g. "file" or "xmlelem".
	Name string
	// Parent names the direct generalization of this class, or "".
	Parent string

	// Presence restrictions per component (restriction 1).
	NamePresence    Presence
	TuplePresence   Presence
	ContentPresence Presence
	SetPresence     Presence
	SeqPresence     Presence

	// TupleSchema, when non-nil, is the schema W that τ components must
	// carry (restriction 2). Views may extend the schema with further
	// attributes; the required attributes must appear with the required
	// domains.
	TupleSchema Schema

	// Extent restrictions (restriction 3).
	ContentExtent Finiteness
	SetExtent     Finiteness
	SeqExtent     Finiteness

	// ChildClasses, when non-nil, lists the acceptable classes for every
	// directly related view (restriction 4). A child conforms when its
	// class is one of these or a specialization of one of these.
	// Class-less children are rejected when ChildClasses is non-nil.
	ChildClasses []string
}

// Registry holds a set of resource view classes organized in a
// generalization hierarchy. The zero Registry is empty and ready to use.
// Registry is not safe for concurrent mutation; populate it up front.
type Registry struct {
	classes map[string]*Class
}

// NewRegistry returns an empty class registry.
func NewRegistry() *Registry { return &Registry{classes: make(map[string]*Class)} }

// Register adds c to the registry. It returns an error when the name is
// empty, already taken, or the parent (if named) is unknown.
func (r *Registry) Register(c *Class) error {
	if c == nil || c.Name == "" {
		return fmt.Errorf("core: class must have a name")
	}
	if r.classes == nil {
		r.classes = make(map[string]*Class)
	}
	if _, dup := r.classes[c.Name]; dup {
		return fmt.Errorf("core: class %q already registered", c.Name)
	}
	if c.Parent != "" {
		if _, ok := r.classes[c.Parent]; !ok {
			return fmt.Errorf("core: class %q names unknown parent %q", c.Name, c.Parent)
		}
	}
	r.classes[c.Name] = c
	return nil
}

// MustRegister is Register but panics on error; for static class tables.
func (r *Registry) MustRegister(c *Class) {
	if err := r.Register(c); err != nil {
		panic(err)
	}
}

// Lookup returns the class with the given name.
func (r *Registry) Lookup(name string) (*Class, bool) {
	c, ok := r.classes[name]
	return c, ok
}

// Names returns all registered class names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.classes))
	for n := range r.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsA reports whether class name is ancestor or a (transitive)
// specialization of ancestor. Every class is-a itself.
func (r *Registry) IsA(name, ancestor string) bool {
	for name != "" {
		if name == ancestor {
			return true
		}
		c, ok := r.classes[name]
		if !ok {
			return false
		}
		name = c.Parent
	}
	return false
}

// ConformanceError reports a violated class restriction.
type ConformanceError struct {
	Class  string
	View   string
	Reason string
}

func (e *ConformanceError) Error() string {
	return fmt.Sprintf("core: view %q does not conform to class %q: %s", e.View, e.Class, e.Reason)
}

// Conforms checks that view v satisfies every restriction of the class
// chain starting at className (the class and all its generalizations).
// Child-class restrictions are checked one level deep over the finite
// prefix of the group component (at most probe children per collection;
// probe <= 0 applies a default of 1024).
func (r *Registry) Conforms(v ResourceView, className string, probe int) error {
	if probe <= 0 {
		probe = 1024
	}
	name := className
	for name != "" {
		c, ok := r.classes[name]
		if !ok {
			return &ConformanceError{Class: className, View: NameOf(v), Reason: fmt.Sprintf("unknown class %q", name)}
		}
		if err := r.conformsOne(v, c, probe); err != nil {
			return err
		}
		name = c.Parent
	}
	return nil
}

func (r *Registry) conformsOne(v ResourceView, c *Class, probe int) error {
	fail := func(format string, args ...any) error {
		return &ConformanceError{Class: c.Name, View: NameOf(v), Reason: fmt.Sprintf(format, args...)}
	}

	// Restriction 1: presence of components.
	if err := checkPresence(c.NamePresence, v.Name() != ""); err != "" {
		return fail("name component %s", err)
	}
	tc := v.Tuple()
	if err := checkPresence(c.TuplePresence, !tc.IsEmpty()); err != "" {
		return fail("tuple component %s", err)
	}
	content := v.Content()
	hasContent := !IsEmptyContent(content)
	if err := checkPresence(c.ContentPresence, hasContent); err != "" {
		return fail("content component %s", err)
	}
	g := v.Group()
	if err := checkPresence(c.SetPresence, !viewsEmpty(g.Set)); err != "" {
		return fail("group set %s", err)
	}
	if err := checkPresence(c.SeqPresence, !viewsEmpty(g.Seq)); err != "" {
		return fail("group sequence %s", err)
	}

	// Restriction 2: schema of τ.
	if c.TupleSchema != nil {
		for _, want := range c.TupleSchema {
			i := tc.Schema.IndexOf(want.Name)
			if i < 0 {
				return fail("tuple schema lacks required attribute %q", want.Name)
			}
			if tc.Schema[i].Domain != want.Domain {
				return fail("attribute %q has domain %s, class requires %s",
					want.Name, tc.Schema[i].Domain, want.Domain)
			}
		}
		if err := tc.Validate(); err != nil {
			return fail("invalid tuple component: %v", err)
		}
	}

	// Restriction 3: finiteness of χ and γ.
	if hasContent {
		if err := checkExtent(c.ContentExtent, content.Finite()); err != "" {
			return fail("content component %s", err)
		}
	}
	if g.Set != nil && !viewsEmpty(g.Set) {
		if err := checkExtent(c.SetExtent, g.Set.Finite()); err != "" {
			return fail("group set %s", err)
		}
	}
	if g.Seq != nil && !viewsEmpty(g.Seq) {
		if err := checkExtent(c.SeqExtent, g.Seq.Finite()); err != "" {
			return fail("group sequence %s", err)
		}
	}

	// Restriction 4: classes of directly related resource views.
	if c.ChildClasses != nil {
		children, err := CollectIter(g.Iter(), probe)
		if err != nil {
			return fail("iterating group component: %v", err)
		}
		for _, child := range children {
			if !r.anyIsA(child.Class(), c.ChildClasses) {
				return fail("directly related view %q has class %q, allowed: %v",
					NameOf(child), child.Class(), c.ChildClasses)
			}
		}
	}
	return nil
}

func (r *Registry) anyIsA(class string, allowed []string) bool {
	for _, a := range allowed {
		if r.IsA(class, a) {
			return true
		}
	}
	return false
}

func checkPresence(p Presence, present bool) string {
	switch p {
	case MustBeEmpty:
		if present {
			return "must be empty"
		}
	case MustBePresent:
		if !present {
			return "must be non-empty"
		}
	}
	return ""
}

func checkExtent(f Finiteness, finite bool) string {
	switch f {
	case MustBeFinite:
		if !finite {
			return "must be finite"
		}
	case MustBeInfinite:
		if finite {
			return "must be infinite"
		}
	}
	return ""
}
