package core

import (
	"errors"
	"testing"
	"testing/quick"
)

// paperGraph builds the cyclic example of Figure 1: Projects → PIM →
// All Projects → Projects, with PIM also containing two documents.
func paperGraph() (projects, pim, allProjects, vldb, grant *StaticView) {
	projects = NewView("Projects", ClassFolder)
	pim = NewView("PIM", ClassFolder)
	allProjects = NewView("All Projects", ClassFolder)
	vldb = NewView("vldb 2006.tex", ClassLatexFile)
	grant = NewView("Grant.doc", ClassFile)

	projects.VGroup = SetGroup(pim)
	pim.VGroup = SetGroup(vldb, grant, allProjects)
	allProjects.VGroup = SetGroup(projects)
	return
}

func TestWalkVisitsAllOnce(t *testing.T) {
	projects, _, _, _, _ := paperGraph()
	visits := map[string]int{}
	err := Walk(projects, WalkOptions{MaxDepth: -1}, func(v ResourceView, _ int) error {
		visits[v.Name()]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 5 {
		t.Errorf("visited %d distinct views, want 5: %v", len(visits), visits)
	}
	for name, n := range visits {
		if n != 1 {
			t.Errorf("view %q visited %d times", name, n)
		}
	}
}

func TestWalkDepthLimit(t *testing.T) {
	projects, _, _, _, _ := paperGraph()
	var names []string
	Walk(projects, WalkOptions{MaxDepth: 1}, func(v ResourceView, d int) error {
		names = append(names, v.Name())
		if d > 1 {
			t.Errorf("view %q at depth %d exceeds limit", v.Name(), d)
		}
		return nil
	})
	if len(names) != 2 { // Projects, PIM
		t.Errorf("visited %v, want 2 views", names)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	projects, _, _, _, _ := paperGraph()
	count := 0
	err := Walk(projects, WalkOptions{MaxDepth: -1}, func(v ResourceView, _ int) error {
		count++
		if count == 2 {
			return ErrWalkStop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ErrWalkStop leaked: %v", err)
	}
	if count != 2 {
		t.Errorf("visited %d views after stop, want 2", count)
	}
}

func TestWalkPropagatesError(t *testing.T) {
	projects, _, _, _, _ := paperGraph()
	boom := errors.New("boom")
	err := Walk(projects, WalkOptions{MaxDepth: -1}, func(ResourceView, int) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestWalkNilRoot(t *testing.T) {
	if err := Walk(nil, WalkOptions{}, func(ResourceView, int) error { return nil }); err != nil {
		t.Errorf("nil root: %v", err)
	}
}

func TestIndirectlyRelated(t *testing.T) {
	projects, pim, allProjects, vldb, _ := paperGraph()
	cases := []struct {
		from, to ResourceView
		want     bool
		label    string
	}{
		{projects, vldb, true, "Projects →* vldb"},
		{pim, projects, true, "PIM →* Projects (via All Projects)"},
		{projects, projects, true, "Projects →* Projects (cycle)"},
		{vldb, projects, false, "vldb has no outgoing edges"},
		{allProjects, vldb, true, "All Projects →* vldb"},
	}
	for _, c := range cases {
		got, err := IndirectlyRelated(c.from, c.to, WalkOptions{MaxDepth: -1})
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.label, got, c.want)
		}
	}
}

func TestIndirectlyRelatedSelfNoCycle(t *testing.T) {
	leaf := NewView("leaf", "")
	got, err := IndirectlyRelated(leaf, leaf, WalkOptions{MaxDepth: -1})
	if err != nil || got {
		t.Errorf("acyclic self-relation = %v, %v; want false", got, err)
	}
}

func TestHasCycle(t *testing.T) {
	projects, _, _, vldb, _ := paperGraph()
	cyc, err := HasCycle(projects, WalkOptions{MaxDepth: -1})
	if err != nil || !cyc {
		t.Errorf("paper graph cycle = %v, %v; want true", cyc, err)
	}
	cyc, err = HasCycle(vldb, WalkOptions{MaxDepth: -1})
	if err != nil || cyc {
		t.Errorf("leaf cycle = %v, %v; want false", cyc, err)
	}
	// A diamond DAG is not a cycle.
	d := NewView("d", "")
	b := (&StaticView{VName: "b"}).WithGroup(SetGroup(d))
	c := (&StaticView{VName: "c"}).WithGroup(SetGroup(d))
	a := (&StaticView{VName: "a"}).WithGroup(SetGroup(b, c))
	cyc, err = HasCycle(a, WalkOptions{MaxDepth: -1})
	if err != nil || cyc {
		t.Errorf("diamond DAG cycle = %v, %v; want false", cyc, err)
	}
}

func TestCountReachable(t *testing.T) {
	projects, _, _, _, _ := paperGraph()
	n, err := CountReachable(projects, WalkOptions{MaxDepth: -1})
	if err != nil || n != 5 {
		t.Errorf("CountReachable = %d, %v; want 5", n, err)
	}
}

func TestWalkInfiniteGroupBounded(t *testing.T) {
	stream := (&StaticView{VName: "stream", VClass: ClassDatStream}).
		WithGroup(Group{Set: NoViews(), Seq: counterViews{}})
	n, err := CountReachable(stream, WalkOptions{MaxDepth: -1, InfinitePrefix: 100})
	if err != nil {
		t.Fatal(err)
	}
	if n != 101 { // stream + 100 prefix items
		t.Errorf("reachable = %d, want 101", n)
	}
}

func TestWalkBudgetExceeded(t *testing.T) {
	stream := (&StaticView{VName: "stream"}).
		WithGroup(Group{Set: NoViews(), Seq: counterViews{}})
	_, err := CountReachable(stream, WalkOptions{MaxDepth: -1, Budget: 10, InfinitePrefix: 1000})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

// Property: for a random tree, Walk visits exactly the number of created
// nodes and Collect returns them in pre-order with the root first.
func TestWalkTreePropertyQuick(t *testing.T) {
	f := func(shape []uint8) bool {
		if len(shape) > 64 {
			shape = shape[:64]
		}
		root := NewView("root", "")
		nodes := []*StaticView{root}
		total := 1
		for i, s := range shape {
			parent := nodes[i%len(nodes)]
			n := int(s % 4)
			var children []ResourceView
			for j := 0; j < n; j++ {
				c := NewView("n", "")
				nodes = append(nodes, c)
				children = append(children, c)
				total++
			}
			if len(children) > 0 {
				existing, _ := CollectIter(parent.Group().Iter(), 0)
				parent.VGroup = SetGroup(append(existing, children...)...)
			}
		}
		got, err := Collect(root, WalkOptions{MaxDepth: -1})
		if err != nil || len(got) != total {
			return false
		}
		return got[0] == ResourceView(root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
