package core

import (
	"io"
	"testing"
	"testing/quick"
)

func namedViews(names ...string) []ResourceView {
	out := make([]ResourceView, len(names))
	for i, n := range names {
		out[i] = NewView(n, "")
	}
	return out
}

func TestSliceViewsIteration(t *testing.T) {
	vs := namedViews("a", "b", "c")
	col := SliceViews(vs...)
	if !col.Finite() || col.Len() != 3 {
		t.Fatalf("finite=%v len=%d", col.Finite(), col.Len())
	}
	got, err := CollectViews(col, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != vs[i] {
			t.Errorf("position %d: got %q", i, NameOf(v))
		}
	}
	// A second iteration starts fresh.
	again, _ := CollectViews(col, 0)
	if len(again) != 3 {
		t.Errorf("second iteration returned %d views", len(again))
	}
}

func TestGroupIterOrderSetThenSeq(t *testing.T) {
	s := namedViews("s1", "s2")
	q := namedViews("q1")
	g := Group{Set: SliceViews(s...), Seq: SliceViews(q...)}
	got, err := CollectIter(g.Iter(), 0)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"s1", "s2", "q1"}
	if len(got) != len(names) {
		t.Fatalf("got %d views, want %d", len(got), len(names))
	}
	for i, v := range got {
		if v.Name() != names[i] {
			t.Errorf("position %d: %q, want %q", i, v.Name(), names[i])
		}
	}
}

func TestEmptyGroup(t *testing.T) {
	g := EmptyGroup()
	if !g.IsEmpty() {
		t.Error("EmptyGroup not empty")
	}
	got, err := CollectIter(g.Iter(), 0)
	if err != nil || len(got) != 0 {
		t.Errorf("empty group iterated %d views, err %v", len(got), err)
	}
	var zero Group
	if !zero.IsEmpty() {
		t.Error("zero Group should be empty")
	}
	if vs, err := CollectIter(zero.Iter(), 0); err != nil || len(vs) != 0 {
		t.Errorf("zero group iterated %d views, err %v", len(vs), err)
	}
}

// counterViews is an infinite collection of fresh views.
type counterViews struct{}

func (counterViews) Iter() ViewIter {
	i := 0
	return IterFunc(func() (ResourceView, error) {
		i++
		return NewView("item", ""), nil
	})
}
func (counterViews) Finite() bool { return false }
func (counterViews) Len() int     { return LenUnknown }

func TestInfiniteViewsCollectLimited(t *testing.T) {
	col := counterViews{}
	if col.Finite() {
		t.Fatal("counterViews must be infinite")
	}
	got, err := CollectViews(col, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Errorf("collected %d views, want 50", len(got))
	}
}

func TestFuncViews(t *testing.T) {
	calls := 0
	col := FuncViews(func() ViewIter {
		calls++
		return &sliceIter{views: namedViews("x")}
	}, true, 1)
	CollectViews(col, 0)
	CollectViews(col, 0)
	if calls != 2 {
		t.Errorf("generator called %d times, want 2", calls)
	}
}

func TestCheckGroupInvariant(t *testing.T) {
	shared := NewView("shared", "")
	bad := Group{
		Set: SliceViews(shared, NewView("a", "")),
		Seq: SliceViews(NewView("b", ""), shared),
	}
	if err := CheckGroupInvariant(bad, 0); err == nil {
		t.Error("S ∩ Q ≠ ∅ accepted")
	}
	good := Group{
		Set: SliceViews(namedViews("a", "b")...),
		Seq: SliceViews(namedViews("c")...),
	}
	if err := CheckGroupInvariant(good, 0); err != nil {
		t.Errorf("disjoint group rejected: %v", err)
	}
	if err := CheckGroupInvariant(EmptyGroup(), 0); err != nil {
		t.Errorf("empty group rejected: %v", err)
	}
}

func TestCheckGroupInvariantInfinite(t *testing.T) {
	// Infinite collections are probed, not drained.
	g := Group{Set: counterViews{}, Seq: SliceViews(namedViews("q")...)}
	if err := CheckGroupInvariant(g, 10); err != nil {
		t.Errorf("infinite set probe failed: %v", err)
	}
}

func TestChainIterPropagatesError(t *testing.T) {
	boom := io.ErrUnexpectedEOF
	bad := FuncViews(func() ViewIter {
		return IterFunc(func() (ResourceView, error) { return nil, boom })
	}, true, LenUnknown)
	g := Group{Set: bad, Seq: NoViews()}
	if _, err := CollectIter(g.Iter(), 0); err != boom {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

// Property: collecting a group built from disjoint slices preserves count
// and the disjointness invariant holds.
func TestGroupInvariantPropertyQuick(t *testing.T) {
	f := func(nSet, nSeq uint8) bool {
		s := make([]ResourceView, nSet%32)
		for i := range s {
			s[i] = NewView("s", "")
		}
		q := make([]ResourceView, nSeq%32)
		for i := range q {
			q[i] = NewView("q", "")
		}
		g := Group{Set: SliceViews(s...), Seq: SliceViews(q...)}
		if err := CheckGroupInvariant(g, 0); err != nil {
			return false
		}
		all, err := CollectIter(g.Iter(), 0)
		return err == nil && len(all) == len(s)+len(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
