package core

import (
	"errors"
	"fmt"
)

// Resource views form arbitrary directed graphs through their group
// components (Definition 1 (iii)/(iv)): V_i → V_k when V_k appears in
// V_i's group, and V_i →* V_k (indirectly related) when a path of direct
// relations exists. The graph may contain cycles (e.g. folder links), so
// every traversal here tracks visited views by identity.

// ErrWalkStop may be returned by a WalkFunc to terminate a walk early
// without reporting an error to the caller.
var ErrWalkStop = errors.New("core: walk stopped")

// ErrBudgetExceeded is returned when a traversal touches more views than
// its budget allows; it guards traversals against infinite group
// components.
var ErrBudgetExceeded = errors.New("core: traversal budget exceeded")

// WalkFunc is invoked for every view reached during a walk. depth is the
// number of direct relations followed from the root (the root itself has
// depth 0).
type WalkFunc func(v ResourceView, depth int) error

// WalkOptions tunes graph traversals.
type WalkOptions struct {
	// MaxDepth bounds how many direct relations are followed from the
	// root; 0 visits only the root, negative means unbounded.
	MaxDepth int
	// Budget bounds the total number of views visited; <= 0 applies
	// DefaultBudget. Traversals over graphs with infinite group
	// components stop with ErrBudgetExceeded once the budget is spent.
	Budget int
	// InfinitePrefix bounds how many children are drawn from an
	// infinite group collection; <= 0 applies DefaultInfinitePrefix.
	InfinitePrefix int
}

// Traversal guard defaults.
const (
	DefaultBudget         = 1 << 20
	DefaultInfinitePrefix = 4096
)

func (o WalkOptions) withDefaults() WalkOptions {
	if o.Budget <= 0 {
		o.Budget = DefaultBudget
	}
	if o.InfinitePrefix <= 0 {
		o.InfinitePrefix = DefaultInfinitePrefix
	}
	return o
}

// Walk performs a depth-first pre-order traversal of the resource view
// graph rooted at root, visiting the group set before the group sequence
// at every view and visiting every view at most once (cycles are safe).
// fn returning ErrWalkStop ends the walk cleanly.
func Walk(root ResourceView, opts WalkOptions, fn WalkFunc) error {
	if root == nil {
		return nil
	}
	o := opts.withDefaults()
	seen := make(map[ResourceView]bool)
	budget := o.Budget
	err := walk(root, 0, o, seen, &budget, fn)
	if errors.Is(err, ErrWalkStop) {
		return nil
	}
	return err
}

func walk(v ResourceView, depth int, o WalkOptions, seen map[ResourceView]bool, budget *int, fn WalkFunc) error {
	if v == nil || seen[v] {
		return nil
	}
	if *budget <= 0 {
		return ErrBudgetExceeded
	}
	*budget--
	seen[v] = true
	if err := fn(v, depth); err != nil {
		return err
	}
	if o.MaxDepth >= 0 && depth >= o.MaxDepth {
		return nil
	}
	children, err := directChildren(v, o.InfinitePrefix)
	if err != nil {
		return err
	}
	for _, c := range children {
		if err := walk(c, depth+1, o, seen, budget, fn); err != nil {
			return err
		}
	}
	return nil
}

// directChildren collects the views directly related to v: the group set
// followed by the group sequence. Infinite collections contribute at
// most prefix views each.
func directChildren(v ResourceView, prefix int) ([]ResourceView, error) {
	g := v.Group()
	var out []ResourceView
	for _, part := range []Views{g.Set, g.Seq} {
		if part == nil {
			continue
		}
		lim := 0
		if !part.Finite() {
			lim = prefix
		}
		vs, err := CollectViews(part, lim)
		if err != nil {
			return out, fmt.Errorf("core: reading group of %q: %w", NameOf(v), err)
		}
		out = append(out, vs...)
	}
	return out, nil
}

// Children returns the views directly related to v (V_i → V_k), drawing
// at most DefaultInfinitePrefix views from infinite collections.
func Children(v ResourceView) ([]ResourceView, error) {
	return directChildren(v, DefaultInfinitePrefix)
}

// Collect returns every view reachable from root (including root itself)
// in pre-order.
func Collect(root ResourceView, opts WalkOptions) ([]ResourceView, error) {
	var out []ResourceView
	err := Walk(root, opts, func(v ResourceView, _ int) error {
		out = append(out, v)
		return nil
	})
	return out, err
}

// IndirectlyRelated reports whether from →* to: a non-empty path of
// direct relations leads from from to to. A view is not indirectly
// related to itself unless it lies on a cycle.
func IndirectlyRelated(from, to ResourceView, opts WalkOptions) (bool, error) {
	if from == nil || to == nil {
		return false, nil
	}
	o := opts.withDefaults()
	if o.MaxDepth == 0 {
		o.MaxDepth = -1
	}
	found := false
	seen := make(map[ResourceView]bool)
	budget := o.Budget
	// Start from the children so that the path is non-empty.
	children, err := directChildren(from, o.InfinitePrefix)
	if err != nil {
		return false, err
	}
	for _, c := range children {
		err := walk(c, 1, o, seen, &budget, func(v ResourceView, _ int) error {
			if v == to {
				found = true
				return ErrWalkStop
			}
			return nil
		})
		if errors.Is(err, ErrWalkStop) || found {
			return true, nil
		}
		if err != nil {
			return false, err
		}
	}
	return found, nil
}

// CountReachable returns the number of distinct views reachable from root
// including root itself.
func CountReachable(root ResourceView, opts WalkOptions) (int, error) {
	n := 0
	err := Walk(root, opts, func(ResourceView, int) error {
		n++
		return nil
	})
	return n, err
}

// HasCycle reports whether the subgraph reachable from root contains a
// directed cycle. It runs an iterative three-color depth-first search.
func HasCycle(root ResourceView, opts WalkOptions) (bool, error) {
	if root == nil {
		return false, nil
	}
	o := opts.withDefaults()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ResourceView]int)
	type frame struct {
		v        ResourceView
		children []ResourceView
		next     int
	}
	push := func(stack []frame, v ResourceView) ([]frame, error) {
		color[v] = gray
		ch, err := directChildren(v, o.InfinitePrefix)
		if err != nil {
			return stack, err
		}
		return append(stack, frame{v: v, children: ch}), nil
	}
	stack, err := push(nil, root)
	if err != nil {
		return false, err
	}
	budget := o.Budget
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next >= len(top.children) {
			color[top.v] = black
			stack = stack[:len(stack)-1]
			continue
		}
		c := top.children[top.next]
		top.next++
		switch color[c] {
		case gray:
			return true, nil
		case white:
			if budget--; budget <= 0 {
				return false, ErrBudgetExceeded
			}
			stack, err = push(stack, c)
			if err != nil {
				return false, err
			}
		}
	}
	return false, nil
}
