package core

import (
	"testing"
	"time"
)

func fsTuple(size int64, ctime, mtime time.Time) TupleComponent {
	return TupleComponent{
		Schema: FSSchema,
		Tuple:  Tuple{Int(size), Time(ctime), Time(mtime)},
	}
}

func TestSchemaIndexOfCaseInsensitive(t *testing.T) {
	s := Schema{{Name: "Size", Domain: DomainInt}, {Name: "lastModified", Domain: DomainTime}}
	if i := s.IndexOf("size"); i != 0 {
		t.Errorf("IndexOf(size) = %d, want 0", i)
	}
	if i := s.IndexOf("LASTMODIFIED"); i != 1 {
		t.Errorf("IndexOf(LASTMODIFIED) = %d, want 1", i)
	}
	if i := s.IndexOf("missing"); i != -1 {
		t.Errorf("IndexOf(missing) = %d, want -1", i)
	}
}

func TestSchemaEqual(t *testing.T) {
	a := Schema{{Name: "x", Domain: DomainInt}}
	b := Schema{{Name: "x", Domain: DomainInt}}
	c := Schema{{Name: "x", Domain: DomainString}}
	if !a.Equal(b) {
		t.Error("identical schemas should be equal")
	}
	if a.Equal(c) {
		t.Error("schemas with different domains must differ")
	}
	if a.Equal(append(b, Attribute{Name: "y", Domain: DomainInt})) {
		t.Error("schemas with different arity must differ")
	}
}

func TestTupleComponentEmpty(t *testing.T) {
	if !EmptyTuple().IsEmpty() {
		t.Error("EmptyTuple should be empty")
	}
	if EmptyTuple().String() != "()" {
		t.Errorf("empty tuple renders %q, want ()", EmptyTuple().String())
	}
	tc := fsTuple(1, time.Now(), time.Now())
	if tc.IsEmpty() {
		t.Error("non-empty tuple reported empty")
	}
}

func TestTupleComponentValidate(t *testing.T) {
	now := time.Now()
	good := fsTuple(4096, now, now)
	if err := good.Validate(); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}

	arity := TupleComponent{Schema: FSSchema, Tuple: Tuple{Int(1)}}
	if err := arity.Validate(); err == nil {
		t.Error("arity mismatch accepted")
	}

	wrongDomain := TupleComponent{
		Schema: FSSchema,
		Tuple:  Tuple{String("big"), Time(now), Time(now)},
	}
	if err := wrongDomain.Validate(); err == nil {
		t.Error("domain mismatch accepted")
	}

	withNull := TupleComponent{
		Schema: FSSchema,
		Tuple:  Tuple{Null(), Time(now), Time(now)},
	}
	if err := withNull.Validate(); err != nil {
		t.Errorf("null value rejected: %v", err)
	}

	intForFloat := TupleComponent{
		Schema: Schema{{Name: "w", Domain: DomainFloat}},
		Tuple:  Tuple{Int(3)},
	}
	if err := intForFloat.Validate(); err != nil {
		t.Errorf("int-for-float coercion rejected: %v", err)
	}
}

func TestTupleComponentGet(t *testing.T) {
	now := time.Date(2005, 9, 22, 16, 14, 0, 0, time.UTC)
	tc := fsTuple(4096, now, now)
	v, ok := tc.Get("size")
	if !ok || v.Int != 4096 {
		t.Errorf("Get(size) = %v, %v; want 4096, true", v, ok)
	}
	if _, ok := tc.Get("owner"); ok {
		t.Error("Get(owner) should report missing")
	}
}

func TestTupleComponentString(t *testing.T) {
	tc := TupleComponent{
		Schema: Schema{{Name: "size", Domain: DomainInt}},
		Tuple:  Tuple{Int(7)},
	}
	want := "(<size: int>, <7>)"
	if got := tc.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
