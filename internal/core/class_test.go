package core

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&Class{Name: "base"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&Class{Name: "base"}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register(&Class{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(&Class{Name: "child", Parent: "missing"}); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := r.Register(&Class{Name: "child", Parent: "base"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("child"); !ok {
		t.Error("registered class not found")
	}
}

func TestRegistryIsA(t *testing.T) {
	r := StandardRegistry()
	cases := []struct {
		class, ancestor string
		want            bool
	}{
		{ClassXMLFile, ClassFile, true},
		{ClassLatexFile, ClassFile, true},
		{ClassTupStream, ClassDatStream, true},
		{ClassRSSAtom, ClassDatStream, true},
		{ClassFigure, ClassEnvironment, true},
		{ClassFile, ClassXMLFile, false},
		{ClassFolder, ClassFile, false},
		{ClassFile, ClassFile, true},
		{ClassAttachment, ClassFile, true},
		{"nosuch", ClassFile, false},
	}
	for _, c := range cases {
		if got := r.IsA(c.class, c.ancestor); got != c.want {
			t.Errorf("IsA(%q, %q) = %v, want %v", c.class, c.ancestor, got, c.want)
		}
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := StandardRegistry()
	names := r.Names()
	if len(names) < 12 {
		t.Fatalf("only %d classes registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func fileView(name string, size int64, content string) *StaticView {
	now := time.Now()
	return NewView(name, ClassFile).
		WithTuple(fsTuple(size, now, now)).
		WithContent(StringContent(content))
}

func folderView(name string, children ...ResourceView) *StaticView {
	now := time.Now()
	return NewView(name, ClassFolder).
		WithTuple(fsTuple(4096, now, now)).
		WithGroup(SetGroup(children...))
}

func TestConformsFileAndFolder(t *testing.T) {
	r := StandardRegistry()
	f := fileView("a.txt", 10, "0123456789")
	if err := r.Conforms(f, ClassFile, 0); err != nil {
		t.Errorf("file view rejected: %v", err)
	}
	d := folderView("docs", f)
	if err := r.Conforms(d, ClassFolder, 0); err != nil {
		t.Errorf("folder view rejected: %v", err)
	}
}

func TestConformsRejectsMissingName(t *testing.T) {
	r := StandardRegistry()
	v := &StaticView{VClass: ClassFile, VTuple: fsTuple(1, time.Now(), time.Now())}
	err := r.Conforms(v, ClassFile, 0)
	if err == nil || !strings.Contains(err.Error(), "name") {
		t.Errorf("nameless file accepted: %v", err)
	}
}

func TestConformsRejectsMissingSchema(t *testing.T) {
	r := StandardRegistry()
	v := NewView("f", ClassFile).WithTuple(TupleComponent{
		Schema: Schema{{Name: "size", Domain: DomainInt}},
		Tuple:  Tuple{Int(1)},
	})
	err := r.Conforms(v, ClassFile, 0)
	if err == nil {
		t.Error("file without full W_FS schema accepted")
	}
}

func TestConformsRejectsWrongChildClass(t *testing.T) {
	r := StandardRegistry()
	tupleChild := (&StaticView{VClass: ClassTuple}).WithTuple(TupleComponent{
		Schema: Schema{{Name: "id", Domain: DomainInt}},
		Tuple:  Tuple{Int(1)},
	})
	d := folderView("docs", tupleChild)
	if err := r.Conforms(d, ClassFolder, 0); err == nil {
		t.Error("folder with relational tuple child accepted")
	}
}

func TestConformsSubclassChildAccepted(t *testing.T) {
	r := StandardRegistry()
	now := time.Now()
	xmlf := NewView("a.xml", ClassXMLFile).
		WithTuple(fsTuple(5, now, now)).
		WithContent(StringContent("<a/>"))
	// xmlfile is-a file, so a folder may contain it.
	d := folderView("docs", xmlf)
	if err := r.Conforms(d, ClassFolder, 0); err != nil {
		t.Errorf("folder with xmlfile child rejected: %v", err)
	}
}

func TestConformsXMLElement(t *testing.T) {
	r := StandardRegistry()
	text := (&StaticView{VClass: ClassXMLText}).WithContent(StringContent("Accounting"))
	elem := NewView("name", ClassXMLElem).WithGroup(SeqGroup(text))
	if err := r.Conforms(elem, ClassXMLElem, 0); err != nil {
		t.Errorf("xmlelem rejected: %v", err)
	}
	if err := r.Conforms(text, ClassXMLText, 0); err != nil {
		t.Errorf("xmltext rejected: %v", err)
	}
}

func TestConformsXMLTextRejectsName(t *testing.T) {
	r := StandardRegistry()
	bad := NewView("named", ClassXMLText).WithContent(StringContent("x"))
	if err := r.Conforms(bad, ClassXMLText, 0); err == nil {
		t.Error("named xmltext accepted (class requires empty η)")
	}
}

// infiniteTupleViews simulates an infinite tuple stream.
type infiniteTupleViews struct{}

func (infiniteTupleViews) Iter() ViewIter {
	return IterFunc(func() (ResourceView, error) {
		v := &StaticView{VClass: ClassTuple}
		v.VTuple = TupleComponent{
			Schema: Schema{{Name: "n", Domain: DomainInt}},
			Tuple:  Tuple{Int(1)},
		}
		return v, nil
	})
}
func (infiniteTupleViews) Finite() bool { return false }
func (infiniteTupleViews) Len() int     { return LenUnknown }

func TestConformsDatStreamRequiresInfinite(t *testing.T) {
	r := StandardRegistry()
	finite := (&StaticView{VClass: ClassDatStream}).WithGroup(SeqGroup(namedViews("a")...))
	if err := r.Conforms(finite, ClassDatStream, 0); err == nil {
		t.Error("finite sequence accepted as datstream")
	}
	infinite := (&StaticView{VClass: ClassTupStream}).
		WithGroup(Group{Set: NoViews(), Seq: infiniteTupleViews{}})
	if err := r.Conforms(infinite, ClassTupStream, 8); err != nil {
		t.Errorf("tuple stream rejected: %v", err)
	}
}

func TestConformsUnknownClass(t *testing.T) {
	r := StandardRegistry()
	if err := r.Conforms(NewView("v", "nosuch"), "nosuch", 0); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestConformanceErrorMessage(t *testing.T) {
	e := &ConformanceError{Class: "file", View: "a.txt", Reason: "boom"}
	msg := e.Error()
	for _, want := range []string{"file", "a.txt", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q lacks %q", msg, want)
		}
	}
}

func TestPresenceAndFinitenessStrings(t *testing.T) {
	if Any.String() != "any" || MustBeEmpty.String() != "empty" || MustBePresent.String() != "present" {
		t.Error("Presence.String mismatch")
	}
	if AnyExtent.String() != "any" || MustBeFinite.String() != "finite" || MustBeInfinite.String() != "infinite" {
		t.Error("Finiteness.String mismatch")
	}
}
